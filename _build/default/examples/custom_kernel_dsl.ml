(* Modeling a new kernel in the extended-Aspen DSL (paper §III-D):
   a 5-point 2-D stencil written as a template, evaluated on several
   machines without touching any OCaml modeling code.

   Run with: dune exec examples/custom_kernel_dsl.exe *)

let source =
  {|
machine laptop {
  cache  { assoc = 8; sets = 8192; line = 64 }   // 4MB LLC
  memory { fit = 5000 }
  perf   { flops = 50e9; bandwidth = 25e9 }
}

machine hpc_node {
  cache  { assoc = 16; sets = 16384; line = 64 } // 16MB LLC
  memory { fit = 1300 }                          // SECDED main memory
  perf   { flops = 500e9; bandwidth = 200e9 }
}

app stencil2d {
  param n = 512          // grid edge
  param sweeps = 4

  // The 5-point sweep: four neighbour streams plus the centre write,
  // advancing one element per iteration until the grid boundary --
  // exactly the paper's MG smoother template, in two dimensions.
  data G {
    size = 8 * n * n
    pattern template(elem = 8, shape = (n, n)) {
      repeat sweeps {
        range step 1
          from (G(1, 0), G(1, 2), G(0, 1), G(2, 1), G(1, 1))
          to   (G(n-2, n-3), G(n-2, n-1), G(n-3, n-2), G(n-1, n-2), G(n-2, n-2))
      }
    }
  }

  // The right-hand side is read once per sweep.
  data B {
    pattern stream(elem = 8, count = n * n * sweeps, stride = 1)
  }

  flops 6 * n * n * sweeps
}
|}

let () =
  let file = Aspen.Parser.parse_file source in
  List.iter
    (fun machine_name ->
      let machine = Aspen.Compile.find_machine file machine_name in
      let app = Aspen.Compile.find_app file "stencil2d" in
      let dvf = Aspen.Compile.dvf machine app in
      Printf.printf "--- %s ---\n" machine_name;
      Format.printf "%a@.@." Core.Dvf.pp_app dvf)
    [ "laptop"; "hpc_node" ];
  (* Parameters can be overridden without editing the model text — the
     fast design-space exploration the paper advertises. *)
  Printf.printf "grid-size sweep on the laptop machine:\n";
  let machine = Aspen.Compile.find_machine file "laptop" in
  List.iter
    (fun n ->
      let app =
        Aspen.Compile.find_app ~overrides:[ ("n", float_of_int n) ] file
          "stencil2d"
      in
      let dvf = Aspen.Compile.dvf machine app in
      Printf.printf "  n = %4d: DVF_a = %.6g\n" n dvf.Core.Dvf.total)
    [ 128; 256; 512; 1024 ]
