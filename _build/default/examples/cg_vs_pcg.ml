(* Algorithm-optimization study (paper §V-A, Fig. 6): is preconditioned CG
   more or less vulnerable than plain CG, and how does the answer depend
   on the problem size?

   Run with: dune exec examples/cg_vs_pcg.exe [-- n1 n2 ...] *)

let () =
  let sizes =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> List.map int_of_string args
    | _ -> [ 100; 200; 400; 600; 800 ]
  in
  Printf.printf
    "Solving the same SPD system with CG and Jacobi-PCG; iteration counts\n\
     are measured on the real solvers, DVF from the analytical models.\n\n";
  let rows = Core.Experiments.fig6 ~sizes () in
  Dvf_util.Table.print (Core.Experiments.fig6_table rows);
  List.iter
    (fun (r : Core.Experiments.fig6_row) ->
      let ratio = r.Core.Experiments.pcg_dvf /. r.Core.Experiments.cg_dvf in
      Printf.printf "n=%4d: PCG is %.2fx %s vulnerable than CG\n"
        r.Core.Experiments.n
        (if ratio > 1.0 then ratio else 1.0 /. ratio)
        (if ratio > 1.0 then "MORE" else "less"))
    rows;
  print_newline ();
  Printf.printf
    "The paper's conclusion holds: the optimization is resilience-neutral\n\
     or harmful on small inputs (extra working set) and beneficial on large\n\
     ones (faster convergence shortens the exposure window).\n"
