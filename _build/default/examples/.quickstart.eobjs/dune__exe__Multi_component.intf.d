examples/multi_component.mli:
