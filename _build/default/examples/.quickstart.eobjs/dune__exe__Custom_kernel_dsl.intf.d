examples/custom_kernel_dsl.mli:
