examples/custom_kernel_dsl.ml: Aspen Core Format List Printf
