examples/selective_protection.ml: Cachesim Core Dvf_util List Printf String
