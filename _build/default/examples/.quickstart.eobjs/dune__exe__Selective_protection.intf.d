examples/selective_protection.mli:
