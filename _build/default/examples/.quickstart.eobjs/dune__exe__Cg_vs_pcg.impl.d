examples/cg_vs_pcg.ml: Array Core Dvf_util List Printf Sys
