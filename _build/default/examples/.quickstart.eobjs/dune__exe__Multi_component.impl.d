examples/multi_component.ml: Cachesim Core Dvf_util List
