examples/quickstart.mli:
