examples/cg_vs_pcg.mli:
