examples/quickstart.ml: Access_patterns Cachesim Core Format List
