examples/trace_explorer.mli:
