examples/trace_explorer.ml: Access_patterns Cachesim Dvf_util Format Kernels List Memtrace Printf
