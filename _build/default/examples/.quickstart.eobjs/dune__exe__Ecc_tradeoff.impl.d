examples/ecc_tradeoff.ml: Cachesim Core Dvf_util List Printf
