examples/ecc_tradeoff.mli:
