(** A single memory reference in a trace.

    [addr] is a byte address in the simulated address space laid out by
    {!Region}; [size] is the reference width in bytes; [owner] identifies
    the data structure the address belongs to. *)

type t = {
  owner : int;
  write : bool;
  addr : int;
  size : int;
}

val read : owner:int -> addr:int -> size:int -> t
val write : owner:int -> addr:int -> size:int -> t
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
