type sink = Event.t -> unit

type t = { mutable sinks : sink list; mutable count : int }

let create () = { sinks = []; count = 0 }

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let cache_sink cache (e : Event.t) =
  Cachesim.Cache.access cache ~owner:e.owner ~write:e.write ~addr:e.addr
    ~size:e.size

let buffer_sink () =
  let buf = ref [] in
  let sink e = buf := e :: !buf in
  (sink, fun () -> List.rev !buf)

let counting_sink () =
  let n = ref 0 in
  let sink _ = incr n in
  (sink, fun () -> !n)

let emit t e =
  t.count <- t.count + 1;
  List.iter (fun sink -> sink e) t.sinks

let read t ~owner ~addr ~size = emit t (Event.read ~owner ~addr ~size)
let write t ~owner ~addr ~size = emit t (Event.write ~owner ~addr ~size)

let events_emitted t = t.count

let null = lazy (create ())
