(** Trace recording: where instrumented kernels send their references.

    A recorder fans each {!Event.t} out to zero or more sinks.  The usual
    setup streams events straight into a {!Cachesim.Cache} (no trace is
    materialized — multi-gigabyte traces never touch memory), but tests and
    the trace-explorer example also attach a buffering sink. *)

type t

type sink = Event.t -> unit

val create : unit -> t

val add_sink : t -> sink -> unit

val cache_sink : Cachesim.Cache.t -> sink
(** Forward each event into the cache simulator. *)

val buffer_sink : unit -> sink * (unit -> Event.t list)
(** [buffer_sink ()] returns a sink and a function extracting everything
    recorded so far (in order). *)

val counting_sink : unit -> sink * (unit -> int)

val emit : t -> Event.t -> unit
val read : t -> owner:int -> addr:int -> size:int -> unit
val write : t -> owner:int -> addr:int -> size:int -> unit

val events_emitted : t -> int
(** Total events seen by this recorder. *)

val null : t Lazy.t
(** A shared recorder with no sinks, for running kernels untraced. *)
