lib/trace/recorder.mli: Cachesim Event Lazy
