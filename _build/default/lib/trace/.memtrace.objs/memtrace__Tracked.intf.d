lib/trace/tracked.mli: Recorder Region
