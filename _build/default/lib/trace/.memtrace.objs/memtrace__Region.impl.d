lib/trace/region.ml: Hashtbl List Printf
