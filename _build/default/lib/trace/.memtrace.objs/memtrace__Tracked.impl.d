lib/trace/tracked.ml: Array Recorder Region
