lib/trace/region.mli:
