lib/trace/recorder.ml: Cachesim Event List
