lib/trace/event.ml: Format
