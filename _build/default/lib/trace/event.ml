type t = {
  owner : int;
  write : bool;
  addr : int;
  size : int;
}

let read ~owner ~addr ~size = { owner; write = false; addr; size }
let write ~owner ~addr ~size = { owner; write = true; addr; size }

let pp fmt t =
  Format.fprintf fmt "%s owner=%d addr=0x%x size=%d"
    (if t.write then "W" else "R")
    t.owner t.addr t.size

let equal a b =
  a.owner = b.owner && a.write = b.write && a.addr = b.addr && a.size = b.size
