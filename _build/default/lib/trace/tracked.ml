type 'a t = {
  storage : 'a array;
  region : Region.region;
  recorder : Recorder.t;
}

let create registry recorder ~name ~elem_size storage =
  let region =
    Region.register registry ~name ~elements:(Array.length storage) ~elem_size
  in
  { storage; region; recorder }

let make registry recorder ~name ~elem_size n init =
  create registry recorder ~name ~elem_size (Array.make n init)

let init registry recorder ~name ~elem_size n f =
  create registry recorder ~name ~elem_size (Array.init n f)

let length t = Array.length t.storage
let region t = t.region

let emit t i ~write =
  let addr = Region.elem_addr t.region i in
  if write then
    Recorder.write t.recorder ~owner:t.region.Region.id ~addr
      ~size:t.region.Region.elem_size
  else
    Recorder.read t.recorder ~owner:t.region.Region.id ~addr
      ~size:t.region.Region.elem_size

let get t i =
  emit t i ~write:false;
  t.storage.(i)

let set t i v =
  emit t i ~write:true;
  t.storage.(i) <- v

let get_silent t i = t.storage.(i)
let set_silent t i v = t.storage.(i) <- v

let touch t i = emit t i ~write:false
let touch_write t i = emit t i ~write:true

let to_array t = Array.copy t.storage
let unsafe_storage t = t.storage
