(** Instrumented arrays — the reproduction's Pin.

    A tracked array couples real storage with a {!Region} so that every
    [get]/[set] both performs the computation and emits the corresponding
    memory reference.  Kernels written against this module therefore
    produce numerically correct results *and* a faithful per-structure
    address stream, which is what Pin gave the paper's authors.

    The [elem_size] of the region may differ from OCaml's in-memory
    representation (e.g. a "4-byte integer array" is stored in an OCaml
    [int array] but traced with [elem_size = 4]); the trace reflects the
    modeled layout, not OCaml's. *)

type 'a t

val create :
  Region.t -> Recorder.t -> name:string -> elem_size:int -> 'a array -> 'a t
(** Wrap [storage]; registers a region of [Array.length storage] elements.
    The array is owned by the tracked wrapper afterwards. *)

val make :
  Region.t -> Recorder.t -> name:string -> elem_size:int -> int -> 'a -> 'a t
(** [make reg rec ~name ~elem_size n init] wraps [Array.make n init]. *)

val init :
  Region.t -> Recorder.t -> name:string -> elem_size:int -> int ->
  (int -> 'a) -> 'a t
(** Like [Array.init]; construction is untraced (the paper's models ignore
    initialization phases — "we focus on the major computation parts ...
    and ignore initialization and finalization"). *)

val length : 'a t -> int
val region : 'a t -> Region.region

val get : 'a t -> int -> 'a
(** Traced element read. *)

val set : 'a t -> int -> 'a -> unit
(** Traced element write. *)

val get_silent : 'a t -> int -> 'a
(** Untraced read (for initialization/verification code). *)

val set_silent : 'a t -> int -> 'a -> unit
(** Untraced write. *)

val touch : 'a t -> int -> unit
(** Emit a read of element [i] without using the value — models accesses to
    fields our OCaml representation stores elsewhere (e.g. a tree node's
    child pointers). *)

val touch_write : 'a t -> int -> unit
(** Emit a write of element [i] without storing a value (the counterpart of
    {!touch} for modeled stores, e.g. accumulating a force into a particle
    record). *)

val to_array : 'a t -> 'a array
(** Untraced snapshot copy. *)

val unsafe_storage : 'a t -> 'a array
(** The live backing store, for kernels' untraced fast paths; mutating it
    bypasses tracing by design. *)
