type t = { tree : int array }

let create n =
  if n < 0 then invalid_arg "Fenwick.create: negative size";
  { tree = Array.make (n + 1) 0 }

let size t = Array.length t.tree - 1

let add t i delta =
  if i < 0 || i >= size t then invalid_arg "Fenwick.add: index out of range";
  let i = ref (i + 1) in
  let n = Array.length t.tree in
  while !i < n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let prefix_sum t i =
  let i = min i (size t - 1) in
  if i < 0 then 0
  else begin
    let acc = ref 0 in
    let i = ref (i + 1) in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc
  end

let range_sum t ~lo ~hi =
  if hi < lo then 0 else prefix_sum t hi - prefix_sum t (lo - 1)

let total t = prefix_sum t (size t - 1)
