type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; header = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let rows_in_order t = List.rev t.rows

let widths t =
  let n = List.length t.header in
  let w = Array.make n 0 in
  let measure cells =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
  in
  measure t.header;
  List.iter (function Cells c -> measure c | Separator -> ()) (rows_in_order t);
  w

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let hline () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  hline ();
  line (List.map (fun _ -> Left) t.header) t.header;
  hline ();
  List.iter
    (function
      | Cells c -> line t.aligns c
      | Separator -> hline ())
    (rows_in_order t);
  hline ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_field cells));
    Buffer.add_char buf '\n'
  in
  line t.header;
  List.iter (function Cells c -> line c | Separator -> ()) (rows_in_order t);
  Buffer.contents buf

let cell_float ?(digits = 4) x =
  let a = abs_float x in
  if x = 0.0 then "0"
  else if a >= 1.0e7 || a < 1.0e-4 then Printf.sprintf "%.*e" (max 1 (digits - 1)) x
  else if Float.is_integer x && a < 1.0e7 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*g" (digits + 2) x

let cell_int = string_of_int
