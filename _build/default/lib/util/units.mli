(** Unit conversions used by the DVF definition (paper Eq. 1).

    FIT is "failures per billion device-hours per Mbit"; execution time is
    measured in seconds; data-structure sizes in bytes.  Keeping the
    conversions in one place keeps Eq. 1 readable and testable. *)

val bytes_of_kib : int -> int
val bytes_of_mib : int -> int

val mbit_of_bytes : int -> float
(** [mbit_of_bytes b] is the size in megabits ([8 b / 1e6]).  The FIT rates
    in Table VII are quoted per Mbit (decimal mega, following the memory
    reliability literature the paper cites). *)

val hours_of_seconds : float -> float

val expected_errors : fit:float -> seconds:float -> bytes:int -> float
(** [expected_errors ~fit ~seconds ~bytes] is [N_error = FIT * T * S_d] in
    physical units: expected number of failures striking the structure
    during execution. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size: "8KB", "4MB", "512B", ... *)

val pp_count : Format.formatter -> float -> unit
(** Large counts with engineering notation: "1.25e6". *)

val parse_size : string -> int option
(** Parse "8KB", "4MB", "32", "512B" into bytes (binary units: KB=1024). *)
