(** Fenwick (binary indexed) tree over [0 .. n-1] with integer weights.

    Used by the template-pattern model to compute LRU stack (reuse)
    distances in O(log n) per access. *)

type t

val create : int -> t
(** All-zero tree of the given size.  Raises [Invalid_argument] if the size
    is negative. *)

val size : t -> int

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] at index [i]. *)

val prefix_sum : t -> int -> int
(** [prefix_sum t i] is the sum of weights at indices [0 .. i] ([0] when
    [i < 0]). *)

val range_sum : t -> lo:int -> hi:int -> int
(** Sum over [lo .. hi] inclusive; 0 when the range is empty. *)

val total : t -> int
