type t = { probs : float array }

let create w =
  if Array.length w = 0 then invalid_arg "Dist.create: empty weight array";
  Array.iter
    (fun x ->
      if x < 0.0 || Float.is_nan x then
        invalid_arg "Dist.create: negative or NaN weight")
    w;
  let total = Maths.sum w in
  if total <= 0.0 then invalid_arg "Dist.create: all weights zero";
  { probs = Array.map (fun x -> x /. total) w }

let point ~support v =
  if v < 0 || v > support then invalid_arg "Dist.point: value out of support";
  let w = Array.make (support + 1) 0.0 in
  w.(v) <- 1.0;
  { probs = w }

let of_fun ~support f =
  if support < 0 then invalid_arg "Dist.of_fun: negative support";
  create (Array.init (support + 1) f)

let prob d v = if v < 0 || v >= Array.length d.probs then 0.0 else d.probs.(v)
let support d = Array.length d.probs - 1

let expectation d =
  let acc = ref 0.0 in
  Array.iteri (fun v p -> acc := !acc +. (float_of_int v *. p)) d.probs;
  !acc

let variance d =
  let mu = expectation d in
  let acc = ref 0.0 in
  Array.iteri
    (fun v p ->
      let dv = float_of_int v -. mu in
      acc := !acc +. (dv *. dv *. p))
    d.probs;
  !acc

let map_value f d =
  let n = Array.length d.probs in
  let w = Array.make n 0.0 in
  Array.iteri
    (fun v p ->
      let v' = Maths.clampi ~lo:0 ~hi:(n - 1) (f v) in
      w.(v') <- w.(v') +. p)
    d.probs;
  { probs = w }

let clamp_upper hi d = map_value (fun v -> min v hi) d

let total_mass d = Maths.sum d.probs

let to_list d =
  Array.to_list (Array.mapi (fun v p -> (v, p)) d.probs)

let pp fmt d =
  Format.fprintf fmt "@[<h>{";
  Array.iteri
    (fun v p ->
      if p > 1e-12 then Format.fprintf fmt " %d:%.4f" v p)
    d.probs;
  Format.fprintf fmt " }@]"
