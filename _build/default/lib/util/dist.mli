(** Finite discrete distributions over integer support.

    The reuse model (paper Eq. 8–15) manipulates small distributions over
    [0 .. associativity]; this module gives them a first-class
    representation with the operations the model needs. *)

type t
(** A distribution with support [\[0; n\]], represented densely. *)

val create : float array -> t
(** [create w] builds a distribution from non-negative weights [w]
    (index = value), normalizing them to sum to 1.  Raises
    [Invalid_argument] on an empty or all-zero array or on a negative
    weight. *)

val point : support:int -> int -> t
(** [point ~support v] is the distribution over [\[0;support\]] that puts all
    mass on [v]. *)

val of_fun : support:int -> (int -> float) -> t
(** [of_fun ~support f] tabulates [f 0 .. f support] and normalizes. *)

val prob : t -> int -> float
(** [prob d v] is P[d = v]; 0 outside the support. *)

val support : t -> int
(** Largest value of the support (inclusive). *)

val expectation : t -> float
val variance : t -> float

val map_value : (int -> int) -> t -> t
(** [map_value f d] pushes the distribution forward through [f]; values are
    clamped to [\[0; support d\]]. *)

val clamp_upper : int -> t -> t
(** [clamp_upper hi d] moves all mass above [hi] onto [hi] — used for
    Eq. 8's saturation of per-set block counts at the associativity. *)

val total_mass : t -> float
(** Always 1.0 up to float rounding; exposed for property tests. *)

val to_list : t -> (int * float) list
(** Support/probability pairs in increasing value order, zero entries
    included. *)

val pp : Format.formatter -> t -> unit
