lib/util/dist.mli: Format
