lib/util/table.mli:
