lib/util/maths.mli:
