lib/util/dist.ml: Array Float Format Maths
