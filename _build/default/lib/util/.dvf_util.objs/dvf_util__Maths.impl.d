lib/util/maths.ml: Array Float Lazy
