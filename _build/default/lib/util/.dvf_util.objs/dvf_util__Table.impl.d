lib/util/table.ml: Array Buffer Float List Printf String
