lib/util/rng.mli:
