lib/util/fenwick.mli:
