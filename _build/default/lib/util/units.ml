let bytes_of_kib k = k * 1024
let bytes_of_mib m = m * 1024 * 1024

let mbit_of_bytes b = 8.0 *. float_of_int b /. 1.0e6

let hours_of_seconds s = s /. 3600.0

let expected_errors ~fit ~seconds ~bytes =
  if fit < 0.0 then invalid_arg "Units.expected_errors: negative FIT";
  if seconds < 0.0 then invalid_arg "Units.expected_errors: negative time";
  if bytes < 0 then invalid_arg "Units.expected_errors: negative size";
  (* FIT = failures / (1e9 hours * Mbit) *)
  fit /. 1.0e9 *. hours_of_seconds seconds *. mbit_of_bytes bytes

let pp_bytes fmt b =
  if b >= 1024 * 1024 && b mod (1024 * 1024) = 0 then
    Format.fprintf fmt "%dMB" (b / (1024 * 1024))
  else if b >= 1024 && b mod 1024 = 0 then Format.fprintf fmt "%dKB" (b / 1024)
  else Format.fprintf fmt "%dB" b

let pp_count fmt x =
  if Float.is_integer x && abs_float x < 1.0e7 then
    Format.fprintf fmt "%.0f" x
  else Format.fprintf fmt "%.4g" x

let parse_size s =
  let s = String.trim s in
  let num_end =
    let rec loop i =
      if i < String.length s && (s.[i] >= '0' && s.[i] <= '9') then
        loop (i + 1)
      else i
    in
    loop 0
  in
  if num_end = 0 then None
  else
    let n = int_of_string (String.sub s 0 num_end) in
    let suffix =
      String.uppercase_ascii
        (String.trim (String.sub s num_end (String.length s - num_end)))
    in
    match suffix with
    | "" | "B" -> Some n
    | "K" | "KB" | "KIB" -> Some (bytes_of_kib n)
    | "M" | "MB" | "MIB" -> Some (bytes_of_mib n)
    | "G" | "GB" | "GIB" -> Some (n * 1024 * 1024 * 1024)
    | _ -> None
