(** Plain-text table rendering for the experiment harness.

    Every figure/table reproduction prints through this module so the bench
    output has a uniform look and can be diffed between runs; [to_csv] gives
    a machine-readable export of the same rows. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width does not match the header. *)

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string
(** Box-drawn ASCII rendering. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_csv : t -> string
(** Header + rows as RFC-4180-ish CSV (quotes fields containing commas). *)

val cell_float : ?digits:int -> float -> string
(** Consistent float formatting for table cells ([digits] defaults to 4,
    engineering notation for very large/small magnitudes). *)

val cell_int : int -> string
