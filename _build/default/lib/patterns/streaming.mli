(** Streaming access-pattern model (paper §III-C, Eq. 3–4 and three cases).

    A streaming access is a single sequential traverse of a data structure
    with fixed stride; every main-memory access is a compulsory miss.  The
    parameter triple matches the paper's Aspen syntax [(E, N, S)]: element
    size in bytes, number of elements, stride in {e elements}
    (the paper's VM example "(8,200,4)" is 8-byte elements, 200 of them,
    stride 8*4 = 32 bytes). *)

type t = {
  elem_size : int;     (** E, bytes *)
  elements : int;      (** number of elements in the structure *)
  stride : int;        (** stride in elements, >= 1 *)
  writeback : bool;
      (** The traverse also writes its elements, so every touched line is
          eventually evicted dirty: main-memory traffic doubles (the cache
          simulator counts misses + writebacks the same way). *)
}

val make :
  ?writeback:bool -> elem_size:int -> elements:int -> stride:int -> unit -> t
(** Raises [Invalid_argument] on non-positive [elem_size]/[stride] or a
    negative element count.  [writeback] defaults to [false]. *)

val data_bytes : t -> int
(** D = elements * elem_size. *)

val stride_bytes : t -> int
(** S = stride * elem_size. *)

val nonalignment_probability : elem_size:int -> line:int -> float
(** Eq. 3: [p = ((E-1) mod CL) / CL] — probability that an element straddles
    one more line than [floor(E/CL)], under the paper's uniform-placement
    assumption. *)

val accesses_per_element : elem_size:int -> line:int -> float
(** Eq. 4, corrected: [AE = ceil(E/CL) + p].  The paper prints
    [floor(E/CL) + p], which equals this whenever [CL] divides [E] (true
    for every element size in the paper's experiments) but undercounts by
    one line otherwise — an element of 47 bytes in 32-byte lines spans 2
    or 3 lines, never 1. *)

val main_memory_accesses : line:int -> t -> float
(** Expected number of main-memory accesses for one full traverse:
    - [CL <= E], stride > 1 element: [ceil(D/S) * AE];
    - [CL <= E], unit stride:        [ceil(D/CL)];
    - [E < CL <= S]:                 [ceil(D/S) * (1 + p)];
    - [S < CL]:                      [ceil(D/CL)];
    doubled when [writeback] is set (each compulsory load of a streaming
    traverse touches a distinct line, so dirty evictions mirror the
    loads one-for-one). *)

val touched_elements : t -> int
(** [ceil (elements / stride)] — how many elements one traverse visits. *)

val footprint_bytes : line:int -> t -> float
(** Expected number of distinct bytes of cache traffic (accesses * CL);
    used by the DVF engine for working-set reporting. *)

val pp : Format.formatter -> t -> unit
