lib/patterns/compose.mli: Cachesim Streaming Template
