lib/patterns/template.mli: Cachesim Format
