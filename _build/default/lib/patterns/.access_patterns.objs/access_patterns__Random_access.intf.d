lib/patterns/random_access.mli: Cachesim Format
