lib/patterns/app_spec.mli: Cachesim Compose Pattern
