lib/patterns/template_lang.ml: Array Format List
