lib/patterns/pattern.mli: Cachesim Format Random_access Streaming Template
