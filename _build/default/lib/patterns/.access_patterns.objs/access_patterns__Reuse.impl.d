lib/patterns/reuse.ml: Array Cachesim Dvf_util Float
