lib/patterns/template.ml: Array Cachesim Dvf_util Format Hashtbl
