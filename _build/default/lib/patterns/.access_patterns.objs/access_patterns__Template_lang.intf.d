lib/patterns/template_lang.mli: Format
