lib/patterns/reuse.mli: Cachesim Dvf_util
