lib/patterns/pattern.ml: Array Cachesim Random_access Streaming Template
