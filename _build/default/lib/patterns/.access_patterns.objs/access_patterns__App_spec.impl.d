lib/patterns/app_spec.ml: Compose List Pattern
