lib/patterns/compose.ml: Array Cachesim Dvf_util Hashtbl List Reuse Streaming Template
