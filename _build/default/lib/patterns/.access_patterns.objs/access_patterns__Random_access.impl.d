lib/patterns/random_access.ml: Cachesim Dvf_util Float Format
