lib/patterns/streaming.mli: Format
