lib/patterns/streaming.ml: Dvf_util Format
