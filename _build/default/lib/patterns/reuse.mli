(** Data-reuse access-pattern model (paper §III-C, Eq. 8–15).

    Estimates how many cache blocks of a target structure [A] survive in an
    LRU cache while interfering structures [B] are accessed in between, and
    hence how many main-memory accesses each {e reuse} of [A] costs.

    Block placement is a Bernoulli process over the [NA] cache sets
    (Eq. 8; the printed equation omits the binomial coefficient, which we
    restore — the text specifies a Bernoulli trial and the distribution
    does not normalize without it), saturated at the associativity [CA].
    Two interference scenarios are modeled (paper's discussion around
    Eq. 10–12):

    - [`Lru_protected] — [A] was just accessed, so LRU evicts non-[A]
      blocks first (Eq. 11): [A] keeps [x] blocks per set if [x+y <= CA],
      else [CA - y].
    - [`Concurrent] — [A] and [B] were loaded concurrently; evictions hit
      any of the [I] resident blocks uniformly (Eq. 10 + 12, hypergeometric
      eviction with [I = E(X_{A+B})]).

    All quantities are per cache set; totals multiply by [NA] (Eq. 15 and
    the closing miss formula [F_A - NA * E(R_A)]). *)

type scenario = [ `Lru_protected | `Concurrent ]

type allocation = [ `Bernoulli | `Uniform ]
(** How a structure's blocks map to cache sets.  [`Bernoulli] is the
    paper's Eq. 8 (independent uniform placement of each block).
    [`Uniform] models a {e contiguous} structure, whose consecutive line
    addresses stripe evenly across the sets — the per-set count is then
    [floor(F/NA)] or [ceil(F/NA)] rather than binomial.  Contiguous arrays
    are the common case in the six kernels, and the Bernoulli variance
    otherwise manufactures phantom conflict misses for working sets that
    actually fit (see the ablation bench); [`Uniform] is therefore the
    default throughout. *)

val occupancy_dist :
  ?alloc:allocation -> cache:Cachesim.Config.t -> blocks:int -> unit ->
  Dvf_util.Dist.t
(** Eq. 8: distribution of the number of blocks a structure of [blocks]
    cache blocks leaves in one set when it has the cache to itself,
    saturated at [CA]. *)

val expected_occupancy :
  ?alloc:allocation -> cache:Cachesim.Config.t -> blocks:int -> unit -> float
(** Eq. 9: expectation of {!occupancy_dist}. *)

val survivor_dist :
  ?alloc:allocation -> cache:Cachesim.Config.t -> fa:int -> fb:int ->
  scenario:scenario -> unit -> Dvf_util.Dist.t
(** Eq. 13–14: distribution of [R_A], the blocks of [A] (of [fa] total
    blocks) still in a set after the interfering structure(s) [B] (of [fb]
    blocks) have been accessed. *)

val expected_survivors :
  ?alloc:allocation -> cache:Cachesim.Config.t -> fa:int -> fb:int ->
  scenario:scenario -> unit -> float
(** Eq. 15: [E(R_A)]. *)

val misses_per_reuse :
  ?alloc:allocation -> cache:Cachesim.Config.t -> fa:int -> fb:int ->
  scenario:scenario -> unit -> float
(** [max 0 (F_A - NA * E(R_A))], capped at [F_A]: main-memory accesses
    needed to re-reference all of [A] once after the interference. *)

val blocks_of_bytes : cache:Cachesim.Config.t -> int -> int
(** [ceil (bytes / CL)] — helper to express structure sizes in blocks. *)
