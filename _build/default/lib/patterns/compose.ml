module Maths = Dvf_util.Maths

type occurrence_pattern =
  | Stream of Streaming.t
  | Tmpl of Template.t
  | Reuse_only

type occurrence = {
  structure : string;
  pattern : occurrence_pattern;
  times : int;
}

let occ ?(times = 1) structure pattern =
  if times < 1 then invalid_arg "Compose.occ: times < 1";
  { structure; pattern; times }

type phase = occurrence list

type structure = {
  name : string;
  bytes : int;
}

type t = {
  structures : structure list;
  order : phase list;
  iterations : int;
}

let make ~structures ~order ~iterations =
  if iterations < 1 then invalid_arg "Compose.make: iterations < 1";
  if structures = [] then invalid_arg "Compose.make: no structures";
  let declared = List.map (fun s -> s.name) structures in
  List.iter
    (fun phase ->
      List.iter
        (fun occ ->
          if not (List.mem occ.structure declared) then
            invalid_arg
              ("Compose.make: occurrence of undeclared structure "
              ^ occ.structure))
        phase)
    order;
  { structures; order; iterations }

let find_structure t name = List.find (fun s -> s.name = name) t.structures

let structure_blocks ~cache s =
  Reuse.blocks_of_bytes ~cache s.bytes

(* Blocks one occurrence touches. *)
let occurrence_blocks ~cache s occ =
  let line = cache.Cachesim.Config.line in
  let cap = structure_blocks ~cache s in
  match occ.pattern with
  | Stream st ->
      min cap (int_of_float (ceil (Streaming.main_memory_accesses ~line st)))
  | Tmpl tp ->
      let trace, _ = Template.block_trace ~line tp in
      let distinct = Hashtbl.create 64 in
      Array.iter (fun b -> Hashtbl.replace distinct b ()) trace;
      min cap (Hashtbl.length distinct)
  | Reuse_only -> cap

let footprint_blocks ~cache t name =
  let s = find_structure t name in
  let best = ref 0 in
  List.iter
    (fun phase ->
      List.iter
        (fun occ ->
          if occ.structure = name then
            best := max !best (occurrence_blocks ~cache s occ))
        phase)
    t.order;
  if !best = 0 then structure_blocks ~cache s else !best

(* Cold (first-touch) cost of an occurrence. *)
let first_touch_cost ~cache s occ =
  let line = cache.Cachesim.Config.line in
  match occ.pattern with
  | Stream st -> Streaming.main_memory_accesses ~line st
  | Tmpl tp -> Template.main_memory_accesses ~cache tp
  | Reuse_only -> float_of_int (structure_blocks ~cache s)

let main_memory_accesses ~cache t =
  let totals = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace totals s.name 0.0) t.structures;
  let add name v =
    Hashtbl.replace totals name (Hashtbl.find totals name +. v)
  in
  (* Global stream of phases over two simulated iterations: iteration 1 is
     the cold pass, iteration 2 reaches the steady state (every reuse then
     sees the wrap-around history).  last_seen maps structure -> global
     phase index of its previous occurrence. *)
  let footprint = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.replace footprint s.name (footprint_blocks ~cache t s.name))
    t.structures;
  let phases = Array.of_list t.order in
  let nphases = Array.length phases in
  let last_seen : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let iteration_cost = Array.make 2 0.0 in
  for sim_iter = 0 to 1 do
    for p = 0 to nphases - 1 do
      let gidx = (sim_iter * nphases) + p in
      let phase = phases.(p) in
      List.iter
        (fun occ ->
          let s = find_structure t occ.structure in
          let base_cost =
            match Hashtbl.find_opt last_seen occ.structure with
            | None -> first_touch_cost ~cache s occ
            | Some prev ->
                (* Interference set: structures touched in the open
                   interval (prev, gidx) plus the co-occupants of this
                   phase. *)
                let interferers = Hashtbl.create 8 in
                for g = prev + 1 to gidx - 1 do
                  List.iter
                    (fun o ->
                      if o.structure <> occ.structure then
                        Hashtbl.replace interferers o.structure ())
                    phases.(g mod nphases)
                done;
                List.iter
                  (fun o ->
                    if o.structure <> occ.structure then
                      Hashtbl.replace interferers o.structure ())
                  phase;
                let fb =
                  Hashtbl.fold
                    (fun name () acc -> acc + Hashtbl.find footprint name)
                    interferers 0
                in
                let fa = Hashtbl.find footprint occ.structure in
                let scenario =
                  if List.length phase > 1 then `Concurrent else `Lru_protected
                in
                Reuse.misses_per_reuse ~cache ~fa ~fb ~scenario ()
          in
          let repeat_cost =
            (* Within-phase repeats: each re-traverse contends with the
               slice of the co-occupants' footprint interleaved with it
               (e.g. one matrix row per vector re-read in a matvec). *)
            if occ.times <= 1 then 0.0
            else begin
              let co_fb =
                List.fold_left
                  (fun acc o ->
                    if o.structure = occ.structure then acc
                    else acc + Hashtbl.find footprint o.structure)
                  0 phase
              in
              let fa = Hashtbl.find footprint occ.structure in
              let per_repeat_fb = co_fb / occ.times in
              float_of_int (occ.times - 1)
              *. Reuse.misses_per_reuse ~cache ~fa ~fb:per_repeat_fb
                   ~scenario:`Concurrent ()
            end
          in
          let cost = base_cost +. repeat_cost in
          iteration_cost.(sim_iter) <- iteration_cost.(sim_iter) +. cost;
          add occ.structure
            (if sim_iter = 0 then cost
             else cost *. float_of_int (t.iterations - 1));
          Hashtbl.replace last_seen occ.structure gidx)
        phase
    done
  done;
  List.map (fun s -> (s.name, Hashtbl.find totals s.name)) t.structures

let total ~cache t =
  Maths.sum (Array.of_list (List.map snd (main_memory_accesses ~cache t)))

let references ~cache t =
  let per_occurrence s occ =
    let base =
      match occ.pattern with
      | Stream st ->
          let per = float_of_int (Streaming.touched_elements st) in
          if st.Streaming.writeback then 2.0 *. per else per
      | Tmpl tp -> float_of_int (Array.length tp.Template.refs)
      | Reuse_only -> float_of_int (structure_blocks ~cache s)
    in
    base *. float_of_int occ.times
  in
  List.map
    (fun s ->
      let per_iteration =
        List.fold_left
          (fun acc phase ->
            List.fold_left
              (fun acc occ ->
                if occ.structure = s.name then acc +. per_occurrence s occ
                else acc)
              acc phase)
          0.0 t.order
      in
      (s.name, per_iteration *. float_of_int t.iterations))
    t.structures
