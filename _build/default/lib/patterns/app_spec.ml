type structure = {
  name : string;
  bytes : int;
  pattern : Pattern.t option;
}

type t = {
  app_name : string;
  structures : structure list;
  composition : Compose.t option;
}

let make ~app_name ~structures ?composition () =
  if structures = [] then invalid_arg "App_spec.make: no structures";
  let covered name =
    match composition with
    | None -> false
    | Some c ->
        List.exists (fun s -> s.Compose.name = name) c.Compose.structures
  in
  List.iter
    (fun s ->
      match s.pattern with
      | Some _ -> ()
      | None ->
          if not (covered s.name) then
            invalid_arg
              ("App_spec.make: structure " ^ s.name
             ^ " has no pattern and is not in the composition"))
    structures;
  { app_name; structures; composition }

let main_memory_accesses ~cache t =
  let from_composition =
    match t.composition with
    | None -> []
    | Some c -> Compose.main_memory_accesses ~cache c
  in
  List.map
    (fun s ->
      let standalone =
        match s.pattern with
        | Some p -> Pattern.main_memory_accesses ~cache p
        | None -> 0.0
      in
      let composed =
        match List.assoc_opt s.name from_composition with
        | Some v -> v
        | None -> 0.0
      in
      (s.name, standalone +. composed))
    t.structures

let structure_bytes t = List.map (fun s -> (s.name, s.bytes)) t.structures

let total_bytes t = List.fold_left (fun acc s -> acc + s.bytes) 0 t.structures

let cache_references ~cache t =
  let from_composition =
    match t.composition with
    | None -> []
    | Some c -> Compose.references ~cache c
  in
  List.map
    (fun s ->
      let standalone =
        match s.pattern with
        | Some p -> Pattern.references p
        | None -> 0.0
      in
      let composed =
        match List.assoc_opt s.name from_composition with
        | Some v -> v
        | None -> 0.0
      in
      (s.name, standalone +. composed))
    t.structures
