module Maths = Dvf_util.Maths

type t = {
  elements : int;
  elem_size : int;
  visits : int;
  iterations : int;
  cache_ratio : float;
  run_length : int;
  resident_bytes : int;
}

let make ?(run_length = 1) ?(resident_bytes = 0) ~elements ~elem_size ~visits
    ~iterations ~cache_ratio () =
  if elements <= 0 then invalid_arg "Random_access.make: elements <= 0";
  if elem_size <= 0 then invalid_arg "Random_access.make: elem_size <= 0";
  if visits < 0 then invalid_arg "Random_access.make: negative visits";
  if visits > elements then
    invalid_arg "Random_access.make: visits exceed element count";
  if iterations < 0 then invalid_arg "Random_access.make: negative iterations";
  if not (cache_ratio > 0.0 && cache_ratio <= 1.0) then
    invalid_arg "Random_access.make: cache_ratio outside (0,1]";
  if run_length < 1 || run_length > max 1 visits then
    invalid_arg "Random_access.make: run_length outside [1, visits]";
  if resident_bytes < 0 then
    invalid_arg "Random_access.make: negative resident_bytes";
  { elements; elem_size; visits; iterations; cache_ratio; run_length;
    resident_bytes }

let cache_share ~cache t =
  Float.max 0.0
    ((float_of_int (Cachesim.Config.capacity cache) *. t.cache_ratio)
    -. float_of_int t.resident_bytes)

let cached_elements ~cache t =
  int_of_float (cache_share ~cache t /. float_of_int t.elem_size)

let fits_in_cache ~cache t =
  float_of_int (t.elem_size * t.elements) <= cache_share ~cache t

let miss_pmf ~cache t ~x =
  (* X = k - (visited elements found among the m cached ones);
     the in-cache count is Hypergeom(total=N, marked=k, drawn=m). *)
  let m = cached_elements ~cache t in
  Maths.hypergeom_pmf ~total:t.elements ~marked:t.visits ~drawn:m
    (t.visits - x)

let expected_misses_per_iteration ~cache t =
  let m = cached_elements ~cache t in
  if m >= t.elements then 0.0
  else begin
    let k = t.visits in
    (* Explicit Eq. 6 sum over the support; equals k * (1 - m/N). *)
    let upper = min (t.elements - m) k in
    let acc = ref 0.0 in
    for x = 1 to upper do
      acc := !acc +. (float_of_int x *. miss_pmf ~cache t ~x)
    done;
    !acc
  end

let compulsory_accesses ~cache t =
  let line = cache.Cachesim.Config.line in
  float_of_int (Maths.cdiv (t.elem_size * t.elements) line)

let reload_blocks_per_iteration ~cache t =
  if fits_in_cache ~cache t then 0.0
  else begin
    let line = cache.Cachesim.Config.line in
    let xe = expected_misses_per_iteration ~cache t in
    let belm =
      if line < t.elem_size then
        float_of_int (Maths.cdiv t.elem_size line) *. xe
      else begin
        (* Small elements: the paper charges one block per missing
           element (an upper bound); contiguous runs share lines, so a
           run of [run_length] missing elements loads only
           ceil(run*E/CL) blocks. *)
        let blocks_per_run = Maths.cdiv (t.run_length * t.elem_size) line in
        xe *. float_of_int blocks_per_run /. float_of_int t.run_length
      end
    in
    let total_blocks =
      float_of_int (t.elem_size * t.elements) /. float_of_int line
    in
    let cached_blocks =
      cache_share ~cache t /. float_of_int line
    in
    let bout = total_blocks -. cached_blocks in
    Float.max 0.0 (Float.min belm bout)
  end

let main_memory_accesses ~cache t =
  compulsory_accesses ~cache t
  +. (reload_blocks_per_iteration ~cache t *. float_of_int t.iterations)

let pp fmt t =
  Format.fprintf fmt "random(N=%d,E=%d,k=%d,iter=%d,r=%g,run=%d)" t.elements
    t.elem_size t.visits t.iterations t.cache_ratio t.run_length
