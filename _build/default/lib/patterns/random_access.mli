(** Random access-pattern model (paper §III-C, Eq. 5–7).

    Models a loop of [iterations] iterations, each randomly visiting
    [visits] (the paper's [k]) distinct elements of the structure, after an
    initial construction traverse.  Cache interference between concurrently
    accessed structures is modeled by granting each structure a fraction
    [cache_ratio] (the paper's [r]) of the cache, proportional to its
    size. *)

type t = {
  elements : int;      (** N *)
  elem_size : int;     (** E, bytes *)
  visits : int;        (** k: average distinct elements visited per iteration *)
  iterations : int;    (** iter *)
  cache_ratio : float; (** r in (0, 1] *)
  run_length : int;
      (** Spatial contiguity of the visits: the [k] elements arrive in
          contiguous runs of this many elements (1 = the paper's model,
          fully scattered).  The paper notes its [Belm = XE] "is the
          largest possible number of needed cache blocks (the number of
          needed cache blocks could be smaller)"; gathers like XSBench's
          per-nuclide row reads share lines, and this parameter supplies
          the sharing factor: a missing run of [run_length] elements
          needs only [ceil(run_length * E / CL)] blocks. *)
  resident_bytes : int;
      (** Bytes of permanently cache-resident data competing with the
          random visits — e.g. the hot upper levels of the Barnes–Hut
          tree, which every traversal revisits and LRU never evicts.
          Subtracted from the structure's cache share at evaluation time
          (0 = the paper's model). *)
}

val make :
  ?run_length:int -> ?resident_bytes:int -> elements:int -> elem_size:int ->
  visits:int -> iterations:int -> cache_ratio:float -> unit -> t
(** Validates: positive sizes/counts, [visits <= elements],
    [0 < cache_ratio <= 1], [1 <= run_length <= max 1 visits],
    [resident_bytes >= 0].  [run_length] defaults to 1 and
    [resident_bytes] to 0. *)

val cached_elements : cache:Cachesim.Config.t -> t -> int
(** [m = Cc * r / E]: how many elements fit in the structure's share of the
    cache. *)

val fits_in_cache : cache:Cachesim.Config.t -> t -> bool
(** First case: [E * N <= Cc * r]. *)

val miss_pmf : cache:Cachesim.Config.t -> t -> x:int -> float
(** Eq. 5: probability that exactly [x] of the [k] visited elements are not
    cached, i.e. [k - X ~ Hypergeom(N, k, m)]. *)

val expected_misses_per_iteration : cache:Cachesim.Config.t -> t -> float
(** Eq. 6: [XE].  Equals the closed-form hypergeometric mean
    [k * (1 - m/N)]; both forms are implemented and cross-checked in the
    test suite. *)

val reload_blocks_per_iteration : cache:Cachesim.Config.t -> t -> float
(** Eq. 7: [Breload = min(Belm, Bout)], clamped to be non-negative. *)

val compulsory_accesses : cache:Cachesim.Config.t -> t -> float
(** [ceil (E*N / CL)]: the construction traverse. *)

val main_memory_accesses : cache:Cachesim.Config.t -> t -> float
(** Total: [ceil(E*N/CL) + Breload * iter] (second case), or just the
    compulsory accesses when the structure fits in its cache share. *)

val pp : Format.formatter -> t -> unit
