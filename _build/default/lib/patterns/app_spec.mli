(** Application model: named data structures plus their access patterns.

    This is the analytical (CGPMAC) description of one kernel — the same
    information the paper's extended-Aspen programs carry: the major data
    structures, each with a size and either a standalone pattern or a role
    in an access-order composition.  It is what the DVF engine evaluates
    and what Fig. 4 verifies against the cache simulator. *)

type structure = {
  name : string;
  bytes : int;                     (** S_d *)
  pattern : Pattern.t option;
      (** [None] when the structure's traffic comes from the
          composition. *)
}

type t = {
  app_name : string;
  structures : structure list;
  composition : Compose.t option;
      (** Couples the structures whose [pattern] is [None] (and possibly
          re-touches others). *)
}

val make :
  app_name:string -> structures:structure list ->
  ?composition:Compose.t -> unit -> t
(** Checks that every pattern-less structure is covered by the
    composition; raises [Invalid_argument] otherwise. *)

val main_memory_accesses :
  cache:Cachesim.Config.t -> t -> (string * float) list
(** Estimated [N_ha] per structure, in declaration order.  A structure
    appearing both standalone and in the composition gets the sum. *)

val structure_bytes : t -> (string * int) list

val total_bytes : t -> int
(** Working-set size: sum of structure sizes. *)

val cache_references : cache:Cachesim.Config.t -> t -> (string * float) list
(** Estimated program references (cache accesses) per structure — the
    [N_ha] term when DVF is evaluated for the cache component itself
    (see {!Pattern.references}). *)
