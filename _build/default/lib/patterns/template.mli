(** Template-based access-pattern model (paper §III-C, "Template-Based
    Access Pattern").

    The user supplies the access template — the ordered sequence of element
    references the pseudocode performs (see {!Template_lang} for the
    generator syntax that builds these sequences).  The model lowers
    elements to cache blocks and runs the paper's two-step algorithm:

    + a block referenced for the first time is a main-memory access;
    + a re-referenced block is a main-memory access iff the distance to its
      previous reference exceeds the maximum available cache capacity.

    "Distance" is the LRU stack distance (number of {e distinct} blocks
    referenced in between), computed exactly with a Fenwick tree; with an
    LRU cache of [B] available blocks, a re-reference misses iff its stack
    distance is at least [B].  A [`Raw] distance variant (plain count of
    intervening references, the literal reading of the paper's "distance")
    is kept for the ablation bench. *)

type distance_kind = [ `Stack | `Raw ]

type t = {
  elem_size : int;       (** E, bytes *)
  refs : int array;      (** element indices in access order *)
  writes : bool array option;
      (** Per-reference store flags (same length as [refs]); [None] means
          all reads.  Stores dirty their block, and a dirty block's
          eviction is a writeback — counted as a main-memory access, like
          the cache simulator's misses + writebacks. *)
  cache_ratio : float;   (** share of the cache available, (0,1] *)
  distance : distance_kind;
}

val make :
  ?cache_ratio:float -> ?distance:distance_kind -> ?writes:bool array ->
  elem_size:int -> int array -> t
(** [make ~elem_size refs] with [cache_ratio] defaulting to 1.0 and
    [distance] to [`Stack].  Raises [Invalid_argument] on a non-positive
    element size, negative indices, a ratio outside (0,1], or a [writes]
    array whose length differs from [refs]. *)

val block_trace : line:int -> t -> int array * bool array
(** Element references lowered to cache-block ids with their store flags.
    An element spanning several blocks contributes each of its blocks in
    order. *)

val available_blocks : cache:Cachesim.Config.t -> t -> int
(** [floor (Cc * r / CL)], at least 1. *)

val main_memory_accesses : cache:Cachesim.Config.t -> t -> float
(** Misses plus writebacks for one execution of the template (dirty
    blocks still resident at the end count as written back, matching an
    end-of-run cache flush). *)

val misses_on_blocks : capacity:int -> distance:distance_kind -> int array -> int
(** The bare two-step algorithm (read-only trace) on an explicit block
    trace with a given block capacity; exposed for tests and for
    {!Compose}. *)

val accesses_on_blocks :
  capacity:int -> distance:distance_kind -> writes:bool array option ->
  int array -> int * int
(** [(misses, writebacks)] on an explicit block trace. *)

val pp : Format.formatter -> t -> unit
