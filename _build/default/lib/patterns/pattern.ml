type t =
  | Stream of Streaming.t
  | Random of Random_access.t
  | Templated of Template.t

let main_memory_accesses ~cache = function
  | Stream s ->
      Streaming.main_memory_accesses ~line:cache.Cachesim.Config.line s
  | Random r -> Random_access.main_memory_accesses ~cache r
  | Templated t -> Template.main_memory_accesses ~cache t

let data_bytes = function
  | Stream s -> Streaming.data_bytes s
  | Random r -> r.Random_access.elements * r.Random_access.elem_size
  | Templated t ->
      (* Extent implied by the largest referenced element. *)
      let hi = Array.fold_left max 0 t.Template.refs in
      (hi + 1) * t.Template.elem_size

let references = function
  | Stream s ->
      let per_traverse = float_of_int (Streaming.touched_elements s) in
      if s.Streaming.writeback then 2.0 *. per_traverse else per_traverse
  | Random r ->
      float_of_int r.Random_access.elements
      +. (float_of_int r.Random_access.visits
         *. float_of_int r.Random_access.iterations)
  | Templated t -> float_of_int (Array.length t.Template.refs)

let class_letter = function
  | Stream _ -> "s"
  | Random _ -> "r"
  | Templated _ -> "t"

let pp fmt = function
  | Stream s -> Streaming.pp fmt s
  | Random r -> Random_access.pp fmt r
  | Templated t -> Template.pp fmt t
