module Fenwick = Dvf_util.Fenwick

type distance_kind = [ `Stack | `Raw ]

type t = {
  elem_size : int;
  refs : int array;
  writes : bool array option;
  cache_ratio : float;
  distance : distance_kind;
}

let make ?(cache_ratio = 1.0) ?(distance = `Stack) ?writes ~elem_size refs =
  if elem_size <= 0 then invalid_arg "Template.make: elem_size <= 0";
  if not (cache_ratio > 0.0 && cache_ratio <= 1.0) then
    invalid_arg "Template.make: cache_ratio outside (0,1]";
  Array.iter
    (fun i -> if i < 0 then invalid_arg "Template.make: negative element index")
    refs;
  (match writes with
  | Some w when Array.length w <> Array.length refs ->
      invalid_arg "Template.make: writes length mismatch"
  | _ -> ());
  { elem_size; refs; writes; cache_ratio; distance }

let block_trace ~line t =
  if line <= 0 then invalid_arg "Template.block_trace: line <= 0";
  let blocks = ref [] and flags = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun pos elem ->
      let w = match t.writes with Some ws -> ws.(pos) | None -> false in
      let first_byte = elem * t.elem_size in
      let last_byte = first_byte + t.elem_size - 1 in
      for b = first_byte / line to last_byte / line do
        blocks := b :: !blocks;
        flags := w :: !flags;
        incr count
      done)
    t.refs;
  let arr = Array.make !count 0 and warr = Array.make !count false in
  let rec fill i bs ws =
    match (bs, ws) with
    | [], [] -> ()
    | b :: bs, w :: ws ->
        arr.(i) <- b;
        warr.(i) <- w;
        fill (i - 1) bs ws
    | _ -> assert false
  in
  fill (!count - 1) !blocks !flags;
  (arr, warr)

let available_blocks ~cache t =
  let cc = float_of_int (Cachesim.Config.capacity cache) in
  let line = float_of_int cache.Cachesim.Config.line in
  max 1 (int_of_float (cc *. t.cache_ratio /. line))

(* The two-step algorithm with LRU stack distances (number of distinct
   blocks touched since the previous reference to the same block,
   computed exactly with a Fenwick tree over timestamps) plus writeback
   accounting: a block's generation is dirty once any store touches it;
   when a dirty generation is evicted — detected at the re-reference miss
   or at the final flush — one writeback is charged. *)
let run_stack ~capacity trace wflags =
  let n = Array.length trace in
  let misses = ref 0 and writebacks = ref 0 in
  if n > 0 then begin
    let fen = Fenwick.create n in
    let last = Hashtbl.create 1024 in
    let dirty = Hashtbl.create 1024 in
    Array.iteri
      (fun time block ->
        let w = match wflags with Some ws -> ws.(time) | None -> false in
        let missed =
          match Hashtbl.find_opt last block with
          | None -> true
          | Some prev ->
              let between = Fenwick.range_sum fen ~lo:(prev + 1) ~hi:(time - 1) in
              let m = between >= capacity in
              Fenwick.add fen prev (-1);
              m
        in
        if missed then begin
          incr misses;
          if Hashtbl.find_opt dirty block = Some true then incr writebacks;
          Hashtbl.replace dirty block w
        end
        else if w then Hashtbl.replace dirty block true;
        Fenwick.add fen time 1;
        Hashtbl.replace last block time)
      trace;
    Hashtbl.iter (fun _ d -> if d then incr writebacks) dirty
  end;
  (!misses, !writebacks)

(* Literal reading of the paper: distance = raw number of intervening
   references.  Retained for the ablation study. *)
let run_raw ~capacity trace wflags =
  let last = Hashtbl.create 1024 in
  let dirty = Hashtbl.create 1024 in
  let misses = ref 0 and writebacks = ref 0 in
  Array.iteri
    (fun time block ->
      let w = match wflags with Some ws -> ws.(time) | None -> false in
      let missed =
        match Hashtbl.find_opt last block with
        | None -> true
        | Some prev -> time - prev - 1 >= capacity
      in
      if missed then begin
        incr misses;
        if Hashtbl.find_opt dirty block = Some true then incr writebacks;
        Hashtbl.replace dirty block w
      end
      else if w then Hashtbl.replace dirty block true;
      Hashtbl.replace last block time)
    trace;
  Hashtbl.iter (fun _ d -> if d then incr writebacks) dirty;
  (!misses, !writebacks)

let accesses_on_blocks ~capacity ~distance ~writes trace =
  if capacity <= 0 then invalid_arg "Template.accesses_on_blocks: capacity <= 0";
  (match writes with
  | Some w when Array.length w <> Array.length trace ->
      invalid_arg "Template.accesses_on_blocks: writes length mismatch"
  | _ -> ());
  match distance with
  | `Stack -> run_stack ~capacity trace writes
  | `Raw -> run_raw ~capacity trace writes

let misses_on_blocks ~capacity ~distance trace =
  fst (accesses_on_blocks ~capacity ~distance ~writes:None trace)

let main_memory_accesses ~cache t =
  let trace, wflags = block_trace ~line:cache.Cachesim.Config.line t in
  let capacity = available_blocks ~cache t in
  let writes = if t.writes = None then None else Some wflags in
  let misses, writebacks =
    accesses_on_blocks ~capacity ~distance:t.distance ~writes trace
  in
  float_of_int (misses + writebacks)

let pp fmt t =
  Format.fprintf fmt "template(E=%d,|refs|=%d,r=%g%s)" t.elem_size
    (Array.length t.refs) t.cache_ratio
    (match t.writes with Some _ -> ",rw" | None -> "")
