(** Composition of access patterns along an access order (paper §III-D,
    the Conjugate Gradient example).

    The paper describes complex kernels by three coupled inputs: a list of
    data structures, an access {e order} such as [r (A p) p (x p) (A p) r (r p)]
    — parenthesized groups are accessed concurrently — and a per-occurrence
    pattern string such as [s (t t) s (s s) (t t) s (s s)].  One iteration
    of the kernel's main loop performs the phases in order; the loop runs
    [iterations] times.

    Cost semantics implemented here (CGPMAC's coarse-grained reuse
    analysis):

    - the {e first} occurrence of a structure is charged by its occurrence
      pattern (streaming / template model — compulsory traffic);
    - every later occurrence is charged by the reuse model ({!Reuse}) with
      [F_A] = the structure's footprint in blocks and [F_B] = the combined
      footprint of the {e distinct other} structures touched strictly
      between the two occurrences plus the co-occupants of the current
      phase; the scenario is [`Concurrent] when the occurrence shares its
      phase, [`Lru_protected] otherwise;
    - iteration 1 is simulated cold and iteration 2 with wrap-around
      history; total cost = cold + (iterations - 1) * steady-state. *)

type occurrence_pattern =
  | Stream of Streaming.t
  | Tmpl of Template.t
  | Reuse_only
      (** A full re-traverse whose cost comes entirely from the reuse
          model (the paper's "reuse" pattern class). *)

type occurrence = {
  structure : string;
  pattern : occurrence_pattern;
  times : int;
      (** Traverse repetitions {e within} the phase, >= 1.  A dense
          matrix–vector product reads the vector once per matrix row:
          the vector occurrence has [times = rows].  Repeats after the
          first are charged by the reuse model against the co-occupants'
          footprint divided by [times] (the slice of the streaming
          partner interleaved with each repeat), scenario
          [`Concurrent]. *)
}

val occ : ?times:int -> string -> occurrence_pattern -> occurrence
(** Occurrence constructor; [times] defaults to 1. *)

type phase = occurrence list
(** Occurrences within a phase are concurrent (a parenthesized group). *)

type structure = {
  name : string;
  bytes : int;       (** S_d, for footprints and DVF *)
}

type t = {
  structures : structure list;
  order : phase list;
  iterations : int;
}

val make : structures:structure list -> order:phase list -> iterations:int -> t
(** Validates that every occurrence references a declared structure and
    [iterations >= 1]. *)

val footprint_blocks : cache:Cachesim.Config.t -> t -> string -> int
(** Blocks the named structure occupies: the max over its occurrences of
    the occurrence footprint, bounded by [ceil (bytes / CL)]. *)

val main_memory_accesses :
  cache:Cachesim.Config.t -> t -> (string * float) list
(** Estimated main-memory accesses per structure over the full run, in
    declaration order. *)

val total : cache:Cachesim.Config.t -> t -> float

val references : cache:Cachesim.Config.t -> t -> (string * float) list
(** Estimated {e program references} (cache accesses) per structure over
    the whole run: streaming/template occurrences contribute their
    reference counts, [Reuse_only] a full block re-traverse, [times]
    multiplies — the input for cache-component DVF. *)
