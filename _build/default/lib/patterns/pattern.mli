(** Unified view of a single data structure's access pattern.

    The DVF engine needs one number per data structure — the estimated main
    memory accesses [N_ha].  A structure is described either by one of the
    three standalone patterns, or it takes part in a {!Compose.t}
    composition (evaluated at the application level, since composition
    couples structures together). *)

type t =
  | Stream of Streaming.t
  | Random of Random_access.t
  | Templated of Template.t

val main_memory_accesses : cache:Cachesim.Config.t -> t -> float

val data_bytes : t -> int
(** The structure's size [S_d] implied by the pattern parameters. *)

val references : t -> float
(** Estimated number of {e program references} the pattern performs —
    accesses that reach the cache, as opposed to the main-memory accesses
    of {!main_memory_accesses}.  Streaming: one per visited element;
    random: the construction pass plus [k * iter]; template: the
    reference-stream length.  This is the [N_ha] of the {e cache} when
    DVF is evaluated for the cache component itself (paper §I: "the
    definition of DVF is also applicable to other hardware components
    (e.g., cache hierarchy)"). *)

val class_letter : t -> string
(** "s", "r" or "t" — the paper's pattern-class abbreviations. *)

val pp : Format.formatter -> t -> unit
