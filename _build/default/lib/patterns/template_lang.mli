(** Symbolic template language (paper §III-C / §III-D).

    The paper lets users write templates over data-structure {e elements},
    "expressed in a regular expression similar to the one in Matlab", e.g.
    for the MG smoother:

    {v (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1))
         : 1 :
       (R(n3-1,n2-2,n1), R(n3-1,n2,n1), R(n3-2,n2-1,n1), R(n3,n2-1,n1)) v}

    — four reference streams that advance by one element per iteration
    until each reaches its stop reference.  This module is the evaluated
    form: integer index expressions over named dimensions, multi-index
    references linearized row-major (paper: [R(i,j,k) = i*n2*n1 + j*n1 + k]),
    and generators that expand to the flat element-index sequence consumed
    by {!Template}. *)

module Expr : sig
  type t =
    | Int of int
    | Var of string
    | Add of t * t
    | Sub of t * t
    | Mul of t * t
    | Div of t * t    (** integer division, truncating *)
    | Neg of t

  type env = (string * int) list

  val eval : env -> t -> int
  (** Raises [Failure] on unknown variables or division by zero. *)

  val pp : Format.formatter -> t -> unit
end

type reference = Expr.t list
(** A multi-index reference like [R(i, j-1, k)]; its length must equal the
    number of dimensions of the shape it is evaluated against. *)

type t =
  | Refs of reference list
      (** Literal sequence of references, emitted once in order. *)
  | Range of { start : reference list; step : Expr.t; stop : reference list }
      (** [G] parallel streams: iteration [t] emits, for each stream [g],
          the element [linear(start_g) + t * step]; runs until the first
          stream reaches its [linear(stop_g)] (the paper's MG template has
          slightly unequal stream spans — the sweep stops at the grid
          boundary). *)
  | Pass of { start : Expr.t; count : Expr.t; stride : Expr.t }
      (** A strided sweep: [start + i*stride] for [i = 0 .. count-1], in
          element units — the building block for FFT butterfly passes. *)
  | Zip of { streams : (reference * Expr.t) list; count : Expr.t }
      (** Parallel streams with {e per-stream} steps: iteration [t] emits
          [linear(start_g) + t*step_g] for each stream — e.g. a multigrid
          restriction reads the fine grid with step 2 while writing the
          coarse grid with step 1. *)
  | Repeat of Expr.t * t list
      (** Repeat a sub-template a computed number of times. *)
  | Seq of t list

val linearize : shape:int list -> int list -> int
(** Row-major linearization; [shape] gives the extent of each index slot,
    outermost first, so with [shape = \[n3; n2; n1\]] the reference
    [(i, j, k)] maps to [i*n2*n1 + j*n1 + k].  Raises [Invalid_argument] on
    a rank mismatch. *)

val expand : env:Expr.env -> shape:Expr.t list -> t -> int array
(** Evaluate shape and generators under [env] and produce the element-index
    sequence.  Raises [Failure] on inconsistent range streams (mismatched
    iteration counts, step evaluating to 0, stop not reachable from start
    with the given step). *)

val expansion_length : env:Expr.env -> shape:Expr.t list -> t -> int
(** Length of [expand] without materializing it (used for sanity limits). *)

val pp : Format.formatter -> t -> unit
