type t = {
  elem_size : int;
  elements : int;
  stride : int;
  writeback : bool;
}

let make ?(writeback = false) ~elem_size ~elements ~stride () =
  if elem_size <= 0 then invalid_arg "Streaming.make: elem_size <= 0";
  if elements < 0 then invalid_arg "Streaming.make: negative elements";
  if stride <= 0 then invalid_arg "Streaming.make: stride <= 0";
  { elem_size; elements; stride; writeback }

let data_bytes t = t.elements * t.elem_size
let stride_bytes t = t.stride * t.elem_size

let nonalignment_probability ~elem_size ~line =
  if elem_size <= 0 then invalid_arg "Streaming.nonalignment_probability";
  if line <= 0 then invalid_arg "Streaming.nonalignment_probability";
  float_of_int ((elem_size - 1) mod line) /. float_of_int line

(* The paper's Eq. 4 writes AE = floor(E/CL) + p, which coincides with the
   true expectation only when CL divides E: an element of E bytes at a
   uniformly random offset spans ceil(E/CL) lines plus one more with
   probability p = ((E-1) mod CL)/CL.  We implement the corrected
   ceil-based form (identical to the paper's for all its experiments,
   which use power-of-two element sizes). *)
let accesses_per_element ~elem_size ~line =
  float_of_int (Dvf_util.Maths.cdiv elem_size line)
  +. nonalignment_probability ~elem_size ~line

let touched_elements t = Dvf_util.Maths.cdiv t.elements t.stride

let main_memory_accesses ~line t =
  if line <= 0 then invalid_arg "Streaming.main_memory_accesses: line <= 0";
  let wb_factor = if t.writeback then 2.0 else 1.0 in
  if t.elements = 0 then 0.0
  else
    wb_factor
    *.
    begin
    let d = data_bytes t in
    let s = stride_bytes t in
    let e = t.elem_size in
    let p = nonalignment_probability ~elem_size:e ~line in
    if line <= e then
      if s > e then
        (* Strided large elements: each visited element loads its own
           lines; no sharing between elements. *)
        float_of_int (Dvf_util.Maths.cdiv d s) *. accesses_per_element ~elem_size:e ~line
      else
        (* Unit stride: the traverse touches every line exactly once. *)
        float_of_int (Dvf_util.Maths.cdiv d line)
    else if line <= s then
      (* E < CL <= S: each visited element costs 1 or 2 lines. *)
      float_of_int (Dvf_util.Maths.cdiv d s) *. (1.0 +. p)
    else
      (* S < CL: consecutive visits share lines; every line is loaded. *)
      float_of_int (Dvf_util.Maths.cdiv d line)
  end

let footprint_bytes ~line t = main_memory_accesses ~line t *. float_of_int line

let pp fmt t =
  Format.fprintf fmt "stream(E=%d,N=%d,S=%d%s)" t.elem_size t.elements
    t.stride
    (if t.writeback then ",wb" else "")
