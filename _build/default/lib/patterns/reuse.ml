module Maths = Dvf_util.Maths
module Dist = Dvf_util.Dist

type scenario = [ `Lru_protected | `Concurrent ]
type allocation = [ `Bernoulli | `Uniform ]

let occupancy_dist ?(alloc = `Uniform) ~cache ~blocks () =
  if blocks < 0 then invalid_arg "Reuse.occupancy_dist: negative blocks";
  let ca = cache.Cachesim.Config.associativity in
  let na = cache.Cachesim.Config.sets in
  match alloc with
  | `Bernoulli ->
      (* Eq. 8 with the binomial coefficient restored; per-set counts
         saturate at the associativity. *)
      let p = 1.0 /. float_of_int na in
      Dist.of_fun ~support:ca (fun x ->
          if x < ca then Maths.binomial_pmf ~n:blocks ~p x
          else Maths.binomial_sf ~n:blocks ~p ca)
  | `Uniform ->
      (* Contiguous layout: consecutive lines stripe round-robin over the
         sets, so each set holds floor(F/NA) or ceil(F/NA) blocks. *)
      let base = blocks / na in
      let frac = float_of_int (blocks mod na) /. float_of_int na in
      let lo = min base ca and hi = min (base + 1) ca in
      let w = Array.make (ca + 1) 0.0 in
      w.(lo) <- w.(lo) +. (1.0 -. frac);
      w.(hi) <- w.(hi) +. frac;
      Dist.create w

let expected_occupancy ?alloc ~cache ~blocks () =
  Dist.expectation (occupancy_dist ?alloc ~cache ~blocks ())

(* Conditional distribution of R_A given per-set occupancies (x, y). *)
let conditional_survivors ~cache ~combined_resident ~scenario ~x ~y =
  let ca = cache.Cachesim.Config.associativity in
  if x + y <= ca then Dist.point ~support:ca x
  else
    match scenario with
    | `Lru_protected ->
        (* Eq. 11: A was just accessed, so LRU evicts B's blocks first;
           A loses only the (x + y - CA) overflow. *)
        Dist.point ~support:ca (max 0 (ca - y))
    | `Concurrent ->
        (* Eq. 12: y replacement victims drawn uniformly from the I
           resident blocks, x of which belong to A; R_A = x - evicted_A. *)
        let i = max combined_resident x in
        let drawn = min y i in
        Dist.of_fun ~support:ca (fun r ->
            if r > x then 0.0
            else Maths.hypergeom_pmf ~total:i ~marked:x ~drawn (x - r))

let survivor_dist ?(alloc = `Uniform) ~cache ~fa ~fb ~scenario () =
  if fa < 0 || fb < 0 then invalid_arg "Reuse.survivor_dist: negative blocks";
  let ca = cache.Cachesim.Config.associativity in
  let da = occupancy_dist ~alloc ~cache ~blocks:fa () in
  let db = occupancy_dist ~alloc ~cache ~blocks:fb () in
  let combined_resident =
    (* I in Eq. 12: expected per-set blocks when A and B are regarded as
       one combined structure (Eq. 8-9 applied to F_A + F_B). *)
    int_of_float
      (Float.round (expected_occupancy ~alloc ~cache ~blocks:(fa + fb) ()))
  in
  let weights = Array.make (ca + 1) 0.0 in
  for x = 0 to ca do
    for y = 0 to ca do
      let w = Dist.prob da x *. Dist.prob db y in
      if w > 0.0 then begin
        let cond =
          conditional_survivors ~cache ~combined_resident ~scenario ~x ~y
        in
        for r = 0 to ca do
          weights.(r) <- weights.(r) +. (w *. Dist.prob cond r)
        done
      end
    done
  done;
  Dist.create weights

let expected_survivors ?alloc ~cache ~fa ~fb ~scenario () =
  Dist.expectation (survivor_dist ?alloc ~cache ~fa ~fb ~scenario ())

let misses_per_reuse ?alloc ~cache ~fa ~fb ~scenario () =
  let na = float_of_int cache.Cachesim.Config.sets in
  let e_ra = expected_survivors ?alloc ~cache ~fa ~fb ~scenario () in
  Maths.clamp ~lo:0.0 ~hi:(float_of_int fa) (float_of_int fa -. (na *. e_ra))

let blocks_of_bytes ~cache bytes =
  if bytes < 0 then invalid_arg "Reuse.blocks_of_bytes: negative size";
  if bytes = 0 then 0 else Maths.cdiv bytes cache.Cachesim.Config.line
