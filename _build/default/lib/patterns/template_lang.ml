module Expr = struct
  type t =
    | Int of int
    | Var of string
    | Add of t * t
    | Sub of t * t
    | Mul of t * t
    | Div of t * t
    | Neg of t

  type env = (string * int) list

  let rec eval env = function
    | Int n -> n
    | Var v -> (
        match List.assoc_opt v env with
        | Some n -> n
        | None -> failwith ("Template_lang: unbound dimension variable " ^ v))
    | Add (a, b) -> eval env a + eval env b
    | Sub (a, b) -> eval env a - eval env b
    | Mul (a, b) -> eval env a * eval env b
    | Div (a, b) ->
        let d = eval env b in
        if d = 0 then failwith "Template_lang: division by zero";
        eval env a / d
    | Neg a -> -eval env a

  let rec pp fmt = function
    | Int n -> Format.pp_print_int fmt n
    | Var v -> Format.pp_print_string fmt v
    | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
    | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
    | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
    | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b
    | Neg a -> Format.fprintf fmt "(-%a)" pp a
end

type reference = Expr.t list

type t =
  | Refs of reference list
  | Range of { start : reference list; step : Expr.t; stop : reference list }
  | Pass of { start : Expr.t; count : Expr.t; stride : Expr.t }
  | Zip of { streams : (reference * Expr.t) list; count : Expr.t }
  | Repeat of Expr.t * t list
  | Seq of t list

let linearize ~shape indices =
  if List.length shape <> List.length indices then
    invalid_arg "Template_lang.linearize: rank mismatch";
  (* Row-major strides: stride of slot m is the product of the extents of
     the slots after it. *)
  let rec strides = function
    | [] -> []
    | _ :: rest ->
        let s = List.fold_left ( * ) 1 rest in
        s :: strides rest
  in
  List.fold_left2 (fun acc i s -> acc + (i * s)) 0 indices (strides shape)

let eval_ref env shape_ints r =
  linearize ~shape:shape_ints (List.map (Expr.eval env) r)

(* Iteration count of a range generator: the sweep "advances accesses ...
   until reaching the grid boundary", so it stops when the FIRST stream
   reaches its stop reference (the paper's own MG example has slightly
   unequal stream spans). *)
let range_iterations env shape_ints ~start ~step ~stop =
  let step_v = Expr.eval env step in
  if step_v = 0 then failwith "Template_lang: range step is zero";
  if List.length start <> List.length stop then
    failwith "Template_lang: range start/stop stream counts differ";
  if start = [] then failwith "Template_lang: empty range";
  let spans =
    List.map2
      (fun s e ->
        let os = eval_ref env shape_ints s and oe = eval_ref env shape_ints e in
        let span = oe - os in
        if span mod step_v <> 0 || span / step_v < 0 then
          failwith "Template_lang: range stop not reachable from start";
        (span / step_v) + 1)
      start stop
  in
  List.fold_left min max_int spans

let rec length_of env shape_ints = function
  | Refs rs -> List.length rs
  | Range { start; step; stop } ->
      range_iterations env shape_ints ~start ~step ~stop * List.length start
  | Pass { count; _ } ->
      let c = Expr.eval env count in
      if c < 0 then failwith "Template_lang: negative pass count";
      c
  | Zip { streams; count } ->
      let c = Expr.eval env count in
      if c < 0 then failwith "Template_lang: negative zip count";
      c * List.length streams
  | Repeat (n, body) ->
      let reps = Expr.eval env n in
      if reps < 0 then failwith "Template_lang: negative repeat count";
      reps * List.fold_left (fun acc g -> acc + length_of env shape_ints g) 0 body
  | Seq gs -> List.fold_left (fun acc g -> acc + length_of env shape_ints g) 0 gs

let shape_of env shape = List.map (Expr.eval env) shape

let expansion_length ~env ~shape t = length_of env (shape_of env shape) t

let expand ~env ~shape t =
  let shape_ints = shape_of env shape in
  let total = length_of env shape_ints t in
  let out = Array.make total 0 in
  let pos = ref 0 in
  let push v =
    out.(!pos) <- v;
    incr pos
  in
  let rec go = function
    | Refs rs -> List.iter (fun r -> push (eval_ref env shape_ints r)) rs
    | Range { start; step; stop } ->
        let iters = range_iterations env shape_ints ~start ~step ~stop in
        let step_v = Expr.eval env step in
        let origins = List.map (eval_ref env shape_ints) start in
        for it = 0 to iters - 1 do
          List.iter (fun o -> push (o + (it * step_v))) origins
        done
    | Pass { start; count; stride } ->
        let s = Expr.eval env start
        and c = Expr.eval env count
        and st = Expr.eval env stride in
        for i = 0 to c - 1 do
          push (s + (i * st))
        done
    | Zip { streams; count } ->
        let c = Expr.eval env count in
        let resolved =
          List.map
            (fun (r, step) -> (eval_ref env shape_ints r, Expr.eval env step))
            streams
        in
        for t = 0 to c - 1 do
          List.iter (fun (o, st) -> push (o + (t * st))) resolved
        done
    | Repeat (n, body) ->
        for _ = 1 to Expr.eval env n do
          List.iter go body
        done
    | Seq gs -> List.iter go gs
  in
  go t;
  assert (!pos = total);
  out

let rec pp fmt = function
  | Refs rs ->
      Format.fprintf fmt "refs(%d)" (List.length rs)
  | Range { start; _ } -> Format.fprintf fmt "range[%d streams]" (List.length start)
  | Pass { start; count; stride } ->
      Format.fprintf fmt "pass(%a,%a,%a)" Expr.pp start Expr.pp count Expr.pp
        stride
  | Zip { streams; count } ->
      Format.fprintf fmt "zip[%d streams x %a]" (List.length streams) Expr.pp
        count
  | Repeat (n, body) ->
      Format.fprintf fmt "repeat(%a){%a}" Expr.pp n
        (Format.pp_print_list pp) body
  | Seq gs -> Format.fprintf fmt "seq{%a}" (Format.pp_print_list pp) gs
