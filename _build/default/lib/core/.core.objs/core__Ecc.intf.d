lib/core/ecc.mli: Access_patterns Cachesim Dvf
