lib/core/perf.mli: Access_patterns Cachesim
