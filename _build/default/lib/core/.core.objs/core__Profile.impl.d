lib/core/profile.ml: Access_patterns Cachesim Dvf Dvf_util Ecc Format List Perf Workloads
