lib/core/selective.ml: Array Dvf Dvf_util Ecc List Printf String
