lib/core/selective.mli: Dvf Dvf_util Ecc
