lib/core/experiments.mli: Cachesim Dvf_util Perf Workloads
