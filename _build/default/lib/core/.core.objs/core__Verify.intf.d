lib/core/verify.mli: Cachesim Dvf_util Workloads
