lib/core/ecc.ml: Dvf Dvf_util
