lib/core/dvf.mli: Access_patterns Cachesim Format
