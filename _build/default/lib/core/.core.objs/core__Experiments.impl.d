lib/core/experiments.ml: Cachesim Dvf Dvf_util Ecc Format Kernels List Perf Printf String Workloads
