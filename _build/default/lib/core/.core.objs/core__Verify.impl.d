lib/core/verify.ml: Access_patterns Cachesim Dvf_util List Memtrace Printf Workloads
