lib/core/component.mli: Access_patterns Cachesim Dvf Dvf_util
