lib/core/profile.mli: Cachesim Dvf_util Perf Workloads
