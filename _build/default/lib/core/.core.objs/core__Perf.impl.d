lib/core/perf.ml: Access_patterns Cachesim Float List
