lib/core/workloads.mli: Access_patterns Memtrace
