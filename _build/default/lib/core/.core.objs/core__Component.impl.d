lib/core/component.ml: Access_patterns Cachesim Dvf Dvf_util Ecc Format List Printf
