lib/core/workloads.ml: Access_patterns Kernels Memtrace
