lib/core/dvf.ml: Access_patterns Array Dvf_util Format List
