(** DVF for hardware components beyond main memory.

    The paper limits its experiments to main memory but states (§I) that
    "the definition of DVF is also applicable to other hardware
    components (e.g., cache hierarchy, register file ...)".  This module
    instantiates Eq. 1 for the last-level cache:

    - [S_d] becomes the structure's {e resident} footprint in the cache —
      capped by its proportional share of the capacity, since errors can
      only strike the bytes actually held in SRAM;
    - [N_ha] becomes the structure's {e program references} (every load
      and store reaches the cache, not just the misses) — estimated
      analytically by {!Access_patterns.App_spec.cache_references};
    - FIT is the cache's own failure rate.  SRAM cells are more
      susceptible per bit than DRAM but caches are small; the default
      follows the soft-error literature's ~10^-3 FIT/bit order:
      1000 FIT/Mbit.

    Comparing a structure's memory-DVF and cache-DVF tells a designer
    {e which component's} protection (DRAM ECC vs cache parity/ECC) that
    structure needs most. *)

type component_dvf = {
  memory : Dvf.app_dvf;
  cache : Dvf.app_dvf;
}

val default_cache_fit : float
(** 1000 FIT/Mbit. *)

val cache_dvf :
  ?fit:float -> cache:Cachesim.Config.t -> time:float ->
  Access_patterns.App_spec.t -> Dvf.app_dvf
(** Eq. 1 instantiated for the LLC as described above. *)

val both :
  ?memory_fit:float -> ?cache_fit:float -> cache:Cachesim.Config.t ->
  time:float -> Access_patterns.App_spec.t -> component_dvf
(** Memory DVF (the paper's) and cache DVF side by side.
    [memory_fit] defaults to the unprotected 5000 FIT/Mbit. *)

val to_table : component_dvf -> Dvf_util.Table.t
(** Per-structure comparison: sizes, resident bytes, both DVFs, and which
    component dominates each structure's vulnerability. *)
