module Table = Dvf_util.Table

type component_dvf = {
  memory : Dvf.app_dvf;
  cache : Dvf.app_dvf;
}

let default_cache_fit = 1000.0

(* A structure's bytes resident in the cache: its own size, capped by its
   proportional share of the capacity (the paper's cache-splitting rule
   for concurrently-live structures). *)
let resident_bytes ~cache spec (s : Access_patterns.App_spec.structure) =
  let total = Access_patterns.App_spec.total_bytes spec in
  if total = 0 then 0
  else begin
    let capacity = Cachesim.Config.capacity cache in
    let share =
      float_of_int capacity *. float_of_int s.Access_patterns.App_spec.bytes
      /. float_of_int total
    in
    min s.Access_patterns.App_spec.bytes (int_of_float share)
  end

let cache_dvf ?(fit = default_cache_fit) ~cache ~time spec =
  let refs = Access_patterns.App_spec.cache_references ~cache spec in
  let counts =
    List.map
      (fun (s : Access_patterns.App_spec.structure) ->
        ( s.Access_patterns.App_spec.name,
          resident_bytes ~cache spec s,
          List.assoc s.Access_patterns.App_spec.name refs ))
      spec.Access_patterns.App_spec.structures
  in
  Dvf.of_counts ~fit ~time
    ~app_name:(spec.Access_patterns.App_spec.app_name ^ " (LLC)")
    counts

let both ?(memory_fit = Ecc.fit Ecc.No_ecc) ?cache_fit ~cache ~time spec =
  {
    memory = Dvf.of_spec ~cache ~fit:memory_fit ~time spec;
    cache = cache_dvf ?fit:cache_fit ~cache ~time spec;
  }

let to_table t =
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "Component DVF: %s (memory FIT %g, cache FIT %g)"
           t.memory.Dvf.app_name t.memory.Dvf.fit t.cache.Dvf.fit)
      [
        ("structure", Table.Left); ("S_d", Table.Right);
        ("resident", Table.Right); ("memory DVF", Table.Right);
        ("cache DVF", Table.Right); ("dominant", Table.Left);
      ]
  in
  List.iter2
    (fun (m : Dvf.structure_dvf) (c : Dvf.structure_dvf) ->
      Table.add_row tbl
        [
          m.Dvf.name;
          Format.asprintf "%a" Dvf_util.Units.pp_bytes m.Dvf.bytes;
          Format.asprintf "%a" Dvf_util.Units.pp_bytes c.Dvf.bytes;
          Table.cell_float m.Dvf.dvf; Table.cell_float c.Dvf.dvf;
          (if m.Dvf.dvf >= c.Dvf.dvf then "memory" else "cache");
        ])
    t.memory.Dvf.structures t.cache.Dvf.structures;
  Table.add_sep tbl;
  Table.add_row tbl
    [
      "total"; ""; ""; Table.cell_float t.memory.Dvf.total;
      Table.cell_float t.cache.Dvf.total; "";
    ];
  tbl
