(** ECC protection schemes and their FIT rates (paper Table VII, §V-B).

    The table quotes post-protection error rates for main memory:
    no ECC 5000 FIT/Mbit, chipkill-correct 0.02, SECDED 1300, drawn from
    the memory-reliability studies the paper cites.  Applying ECC also
    costs performance; §V-B sweeps a hypothetical degradation from 0 to
    30 % and finds DVF minimized near 5 % — because past some point the
    longer exposure time outweighs the lower error rate. *)

type scheme = No_ecc | Secded | Chipkill

val all : scheme list
(** In Table VII order. *)

val name : scheme -> string

val fit : scheme -> float
(** FIT/Mbit with the scheme in place (Table VII). *)

val degraded_time : base_time:float -> degradation:float -> float
(** [base_time * (1 + degradation)]; [degradation] is a fraction
    (0.05 = 5 %).  Raises [Invalid_argument] if [degradation < 0]. *)

val effective_fit :
  ?full_strength_degradation:float -> degradation:float -> scheme -> float
(** The error rate actually achieved when the system is willing to pay
    [degradation] of performance for protection.  Fig. 7's U-shape — DVF
    falling until ~5 % degradation and rising afterwards — implies the
    paper treats the protection strength as scaling with the invested
    overhead: below full strength the scheme only partially corrects.
    We model this with log-linear interpolation from the unprotected FIT
    down to the scheme's Table VII FIT, reached at
    [full_strength_degradation] (default 0.05, the paper's observed
    optimum); beyond that the FIT stays at the scheme's floor while the
    exposure time keeps growing. *)

val protected_dvf :
  ?full_strength_degradation:float -> cache:Cachesim.Config.t ->
  base_time:float -> degradation:float -> scheme ->
  Access_patterns.App_spec.t -> Dvf.app_dvf
(** DVF of the application with {!effective_fit} and the degraded
    execution time — the quantity Fig. 7 sweeps. *)

val optimal_degradation :
  ?full_strength_degradation:float -> cache:Cachesim.Config.t ->
  base_time:float -> max_degradation:float -> steps:int -> scheme ->
  Access_patterns.App_spec.t -> float * float
(** Grid search over [0, max_degradation]: the [(degradation, dvf)] pair
    minimizing DVF. *)
