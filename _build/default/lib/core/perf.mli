(** Aspen-style analytical performance model.

    DVF's [T] term needs an execution time.  The paper measures native
    wall-clock; our substitute is the classic roofline bound Aspen itself
    uses for coarse modeling:
    {v T = max(flops / peak_flops, bytes_moved / memory_bandwidth) v}
    with [bytes_moved = N_ha * CL].  Absolute DVF magnitudes shift with
    the machine constants, but every Fig. 5–7 comparison is between runs
    on the same machine model, so the conclusions are unaffected. *)

type machine = {
  name : string;
  peak_flops : float;       (** flop/s *)
  memory_bandwidth : float; (** bytes/s *)
}

val default_machine : machine
(** A 2014-era compute node: 100 Gflop/s, 50 GB/s. *)

val make_machine :
  name:string -> peak_flops:float -> memory_bandwidth:float -> machine
(** Raises [Invalid_argument] on non-positive rates. *)

val execution_time :
  machine -> cache:Cachesim.Config.t -> flops:int -> n_ha:float -> float
(** Roofline time for a phase with [flops] operations and [n_ha]
    main-memory accesses of one cache line each. *)

val app_time :
  machine -> cache:Cachesim.Config.t -> flops:int ->
  Access_patterns.App_spec.t -> float
(** [execution_time] with [n_ha] summed over the spec's structures. *)
