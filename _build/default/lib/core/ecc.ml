type scheme = No_ecc | Secded | Chipkill

let all = [ No_ecc; Chipkill; Secded ]

let name = function
  | No_ecc -> "No ECC"
  | Secded -> "SECDED"
  | Chipkill -> "Chipkill correct"

(* Table VII. *)
let fit = function
  | No_ecc -> 5000.0
  | Secded -> 1300.0
  | Chipkill -> 0.02

let degraded_time ~base_time ~degradation =
  if degradation < 0.0 then invalid_arg "Ecc.degraded_time: negative degradation";
  base_time *. (1.0 +. degradation)

let effective_fit ?(full_strength_degradation = 0.05) ~degradation scheme =
  if degradation < 0.0 then invalid_arg "Ecc.effective_fit: negative degradation";
  if full_strength_degradation <= 0.0 then
    invalid_arg "Ecc.effective_fit: non-positive full_strength_degradation";
  let base = fit No_ecc in
  let floor_fit = fit scheme in
  let strength =
    Dvf_util.Maths.clamp ~lo:0.0 ~hi:1.0
      (degradation /. full_strength_degradation)
  in
  (* Log-linear: FIT falls exponentially from the unprotected rate to the
     scheme's floor as the invested overhead approaches full strength. *)
  base *. ((floor_fit /. base) ** strength)

let protected_dvf ?full_strength_degradation ~cache ~base_time ~degradation
    scheme spec =
  let fit = effective_fit ?full_strength_degradation ~degradation scheme in
  let time = degraded_time ~base_time ~degradation in
  Dvf.of_spec ~cache ~fit ~time spec

let optimal_degradation ?full_strength_degradation ~cache ~base_time
    ~max_degradation ~steps scheme spec =
  if steps < 1 then invalid_arg "Ecc.optimal_degradation: steps < 1";
  let best = ref (0.0, infinity) in
  for i = 0 to steps do
    let d = max_degradation *. float_of_int i /. float_of_int steps in
    let dvf =
      (protected_dvf ?full_strength_degradation ~cache ~base_time
         ~degradation:d scheme spec)
        .Dvf.total
    in
    if dvf < snd !best then best := (d, dvf)
  done;
  !best
