(** The six numerical kernels (paper Table II) with the paper's input
    sizes (Tables V and VI) packaged for the experiment drivers.

    An {!instance} bundles everything an experiment needs: the CGPMAC
    application spec (for the analytical side), the flop count (for the
    performance model), and — when tractable — a traced runner (for the
    cache-simulator side of Fig. 4). *)

type kernel = VM | CG | NB | MG | FT | MC

val all : kernel list
(** Table II order. *)

val name : kernel -> string
val computational_class : kernel -> string
(** Table II's "computational method class". *)

val major_structures : kernel -> string list
(** Table II's "major data structures". *)

val pattern_classes : kernel -> string
(** Table II's "memory access patterns" summary. *)

val example_benchmark : kernel -> string
(** Table II's "example benchmarks" — what the paper ran; ours are
    reimplementations. *)

type instance = {
  kernel : kernel;
  label : string;                     (** e.g. "CG 500x500" *)
  spec : Access_patterns.App_spec.t;
  flops : int;
  trace : Memtrace.Region.t -> Memtrace.Recorder.t -> unit;
}

val verification_instance : kernel -> instance
(** Table V input sizes — small enough for trace-driven simulation. *)

val profiling_instance : kernel -> instance
(** Table VI input sizes (MG's class W scaled to 64^3 as documented in
    DESIGN.md). *)

val input_size_description : [ `Verification | `Profiling ] -> kernel -> string
(** The "Input size" column of Table V / Table VI. *)
