(** The Data Vulnerability Factor (paper §III-A, Eq. 1–2).

    For a data structure [d]:
    {v DVF_d = N_error * N_ha = FIT * T * S_d * N_ha v}
    where FIT is the memory failure rate (failures per 10^9 hours per
    Mbit), [T] the application execution time, [S_d] the structure's
    size, and [N_ha] the number of main-memory accesses attributable to
    the structure (estimated by the CGPMAC models).  The application DVF
    is the sum over its major data structures (Eq. 2).

    Units: [N_error] is computed in physical units (expected failures
    striking the structure during the run), which for realistic FIT rates
    is a very small number; the paper plots unit-free DVF values of
    O(0.01)–O(10^4) without stating a normalization.  We therefore report
    [DVF = N_error * N_ha * scale] with a fixed documented
    [scale = 1e9] (equivalently: FIT interpreted as failures per hour per
    Mbit).  All of the paper's conclusions are comparative, so the scale
    cancels; it only places the numbers in a readable range.

    A weighted generalization [DVF = N_error^alpha * N_ha^beta] (the
    refinement sketched in §III-A) is available through [?alpha] and
    [?beta]. *)

type structure_dvf = {
  name : string;
  bytes : int;            (** S_d *)
  n_ha : float;           (** estimated main-memory accesses *)
  n_error : float;        (** FIT * T * S_d, scaled as documented above *)
  dvf : float;
}

type app_dvf = {
  app_name : string;
  fit : float;            (** FIT used, failures / (10^9 h * Mbit) *)
  time : float;           (** T in seconds *)
  structures : structure_dvf list;
  total : float;          (** DVF_a, Eq. 2 *)
}

val scale : float
(** The fixed normalization constant (1e9). *)

val structure :
  ?alpha:float -> ?beta:float -> fit:float -> time:float -> bytes:int ->
  n_ha:float -> string -> structure_dvf
(** Eq. 1 for one structure.  [alpha]/[beta] default to 1 (the paper's
    straight product).  Raises [Invalid_argument] on negative inputs. *)

val of_spec :
  ?alpha:float -> ?beta:float -> cache:Cachesim.Config.t -> fit:float ->
  time:float -> Access_patterns.App_spec.t -> app_dvf
(** Evaluate a CGPMAC application spec: per-structure [N_ha] from the
    access-pattern models, Eq. 1 per structure, Eq. 2 for the total. *)

val of_counts :
  ?alpha:float -> ?beta:float -> fit:float -> time:float ->
  app_name:string -> (string * int * float) list -> app_dvf
(** Build from explicit [(name, bytes, n_ha)] triples — e.g. when [N_ha]
    comes from the cache simulator instead of the analytical models. *)

val pp_app : Format.formatter -> app_dvf -> unit
