type machine = {
  name : string;
  peak_flops : float;
  memory_bandwidth : float;
}

let make_machine ~name ~peak_flops ~memory_bandwidth =
  if peak_flops <= 0.0 then invalid_arg "Perf.make_machine: peak_flops <= 0";
  if memory_bandwidth <= 0.0 then
    invalid_arg "Perf.make_machine: memory_bandwidth <= 0";
  { name; peak_flops; memory_bandwidth }

let default_machine =
  make_machine ~name:"node-2014" ~peak_flops:100.0e9 ~memory_bandwidth:50.0e9

let execution_time machine ~cache ~flops ~n_ha =
  if flops < 0 then invalid_arg "Perf.execution_time: negative flops";
  if n_ha < 0.0 then invalid_arg "Perf.execution_time: negative n_ha";
  let compute = float_of_int flops /. machine.peak_flops in
  let bytes = n_ha *. float_of_int cache.Cachesim.Config.line in
  let memory = bytes /. machine.memory_bandwidth in
  Float.max compute memory

let app_time machine ~cache ~flops spec =
  let n_ha =
    List.fold_left
      (fun acc (_, v) -> acc +. v)
      0.0
      (Access_patterns.App_spec.main_memory_accesses ~cache spec)
  in
  execution_time machine ~cache ~flops ~n_ha
