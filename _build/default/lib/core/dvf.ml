module Units = Dvf_util.Units

type structure_dvf = {
  name : string;
  bytes : int;
  n_ha : float;
  n_error : float;
  dvf : float;
}

type app_dvf = {
  app_name : string;
  fit : float;
  time : float;
  structures : structure_dvf list;
  total : float;
}

let scale = 1.0e9

let structure ?(alpha = 1.0) ?(beta = 1.0) ~fit ~time ~bytes ~n_ha name =
  if n_ha < 0.0 then invalid_arg "Dvf.structure: negative N_ha";
  let n_error = Units.expected_errors ~fit ~seconds:time ~bytes *. scale in
  let dvf =
    if alpha = 1.0 && beta = 1.0 then n_error *. n_ha
    else (n_error ** alpha) *. (n_ha ** beta)
  in
  { name; bytes; n_ha; n_error; dvf }

let total_of structures =
  Dvf_util.Maths.sum (Array.of_list (List.map (fun s -> s.dvf) structures))

let of_counts ?alpha ?beta ~fit ~time ~app_name counts =
  let structures =
    List.map
      (fun (name, bytes, n_ha) ->
        structure ?alpha ?beta ~fit ~time ~bytes ~n_ha name)
      counts
  in
  { app_name; fit; time; structures; total = total_of structures }

let of_spec ?alpha ?beta ~cache ~fit ~time spec =
  let n_has = Access_patterns.App_spec.main_memory_accesses ~cache spec in
  let sizes = Access_patterns.App_spec.structure_bytes spec in
  let counts =
    List.map
      (fun (name, n_ha) -> (name, List.assoc name sizes, n_ha))
      n_has
  in
  of_counts ?alpha ?beta ~fit ~time
    ~app_name:spec.Access_patterns.App_spec.app_name counts

let pp_app fmt t =
  Format.fprintf fmt "@[<v>%s (FIT=%g, T=%.4gs):@," t.app_name t.fit t.time;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-8s S_d=%a N_ha=%a DVF=%.6g@," s.name
        Units.pp_bytes s.bytes Units.pp_count s.n_ha s.dvf)
    t.structures;
  Format.fprintf fmt "  total DVF_a = %.6g@]" t.total
