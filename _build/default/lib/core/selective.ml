let rank (app : Dvf.app_dvf) =
  List.sort
    (fun (a : Dvf.structure_dvf) b -> compare b.Dvf.dvf a.Dvf.dvf)
    app.Dvf.structures

let protect_structures ~scheme ~names (app : Dvf.app_dvf) =
  List.iter
    (fun name ->
      if
        not
          (List.exists (fun (s : Dvf.structure_dvf) -> s.Dvf.name = name)
             app.Dvf.structures)
      then invalid_arg ("Selective.protect_structures: unknown structure " ^ name))
    names;
  let protected_fit = Ecc.fit scheme in
  let counts =
    List.map
      (fun (s : Dvf.structure_dvf) -> (s.Dvf.name, s.Dvf.bytes, s.Dvf.n_ha))
      app.Dvf.structures
  in
  (* Eq. 1 is linear in FIT, so recompute each structure with its own
     rate and sum. *)
  let structures =
    List.map
      (fun (name, bytes, n_ha) ->
        let fit = if List.mem name names then protected_fit else app.Dvf.fit in
        Dvf.structure ~fit ~time:app.Dvf.time ~bytes ~n_ha name)
      counts
  in
  let total =
    Dvf_util.Maths.sum
      (Array.of_list (List.map (fun (s : Dvf.structure_dvf) -> s.Dvf.dvf) structures))
  in
  { app with Dvf.structures; total }

type coverage_point = {
  protected_count : int;
  protected_names : string list;
  residual_dvf : float;
  residual_fraction : float;
}

let coverage_curve ~scheme (app : Dvf.app_dvf) =
  let ranked = List.map (fun (s : Dvf.structure_dvf) -> s.Dvf.name) (rank app) in
  let unprotected_total = app.Dvf.total in
  List.init
    (List.length ranked + 1)
    (fun k ->
      let names = List.filteri (fun i _ -> i < k) ranked in
      let residual = (protect_structures ~scheme ~names app).Dvf.total in
      {
        protected_count = k;
        protected_names = names;
        residual_dvf = residual;
        residual_fraction =
          (if unprotected_total = 0.0 then 0.0 else residual /. unprotected_total);
      })

let structures_for_target ~scheme ~target_fraction app =
  if not (target_fraction > 0.0 && target_fraction <= 1.0) then
    invalid_arg "Selective.structures_for_target: target outside (0,1]";
  let curve = coverage_curve ~scheme app in
  match
    List.find_opt (fun p -> p.residual_fraction <= target_fraction) curve
  with
  | Some p -> p.protected_names
  | None ->
      invalid_arg
        "Selective.structures_for_target: target unreachable with this scheme"

let to_table points =
  let t =
    Dvf_util.Table.create ~title:"Selective protection coverage"
      [
        ("protected", Dvf_util.Table.Right);
        ("structures", Dvf_util.Table.Left);
        ("residual DVF", Dvf_util.Table.Right);
        ("fraction", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Dvf_util.Table.add_row t
        [
          string_of_int p.protected_count;
          (if p.protected_names = [] then "-"
           else String.concat ", " p.protected_names);
          Dvf_util.Table.cell_float p.residual_dvf;
          Printf.sprintf "%.1f%%" (100.0 *. p.residual_fraction);
        ])
    points;
  t
