type kernel = VM | CG | NB | MG | FT | MC

let all = [ VM; CG; NB; MG; FT; MC ]

let name = function
  | VM -> "VM"
  | CG -> "CG"
  | NB -> "NB"
  | MG -> "MG"
  | FT -> "FT"
  | MC -> "MC"

let computational_class = function
  | VM -> "Dense linear algebra"
  | CG -> "Sparse linear algebra"
  | NB -> "N-body method"
  | MG -> "Structured grids"
  | FT -> "Spectral methods"
  | MC -> "Monte Carlo"

let major_structures = function
  | VM -> [ "A"; "B"; "C" ]
  | CG -> [ "A"; "x"; "p"; "r" ]
  | NB -> [ "T"; "P" ]
  | MG -> [ "R" ]
  | FT -> [ "X" ]
  | MC -> [ "G"; "E" ]

let pattern_classes = function
  | VM -> "Streaming"
  | CG -> "Template+Reuse+Streaming"
  | NB -> "Random"
  | MG -> "Template-based"
  | FT -> "Template-based"
  | MC -> "Random"

let example_benchmark = function
  | VM -> "Homemade code"
  | CG -> "NPB CG"
  | NB -> "Barnes-Hut (GitHub)"
  | MG -> "NPB MG"
  | FT -> "NPB FT"
  | MC -> "XSBench"

type instance = {
  kernel : kernel;
  label : string;
  spec : Access_patterns.App_spec.t;
  flops : int;
  trace : Memtrace.Region.t -> Memtrace.Recorder.t -> unit;
}

let vm_instance p label =
  {
    kernel = VM;
    label;
    spec = Kernels.Vm.spec p;
    flops = Kernels.Vm.flop_count p;
    trace = (fun reg rc -> ignore (Kernels.Vm.run reg rc p));
  }

let cg_instance p label =
  (* The spec's iteration count is what the kernel actually executes
     (capped by max_iterations), measured on an untraced run. *)
  let result = Kernels.Cg.run_untraced p in
  {
    kernel = CG;
    label;
    spec = Kernels.Cg.spec ~iterations:result.Kernels.Cg.iterations p;
    flops = result.Kernels.Cg.flops;
    trace = (fun reg rc -> ignore (Kernels.Cg.run reg rc p));
  }

let nb_instance p label =
  let result = Kernels.Barnes_hut.run_untraced p in
  {
    kernel = NB;
    label;
    spec = Kernels.Barnes_hut.spec ~result p;
    flops = result.Kernels.Barnes_hut.flops;
    trace = (fun reg rc -> ignore (Kernels.Barnes_hut.run reg rc p));
  }

let mg_instance p label =
  let result = Kernels.Multigrid.run_untraced p in
  {
    kernel = MG;
    label;
    spec = Kernels.Multigrid.spec p;
    flops = result.Kernels.Multigrid.flops;
    trace = (fun reg rc -> ignore (Kernels.Multigrid.run reg rc p));
  }

let ft_instance p label =
  let result = Kernels.Fft.run_untraced p in
  {
    kernel = FT;
    label;
    spec = Kernels.Fft.spec p;
    flops = result.Kernels.Fft.flops;
    trace = (fun reg rc -> ignore (Kernels.Fft.run reg rc p));
  }

let mc_instance p label =
  let result = Kernels.Monte_carlo.run_untraced p in
  {
    kernel = MC;
    label;
    spec = Kernels.Monte_carlo.spec p;
    flops = result.Kernels.Monte_carlo.flops;
    trace = (fun reg rc -> ignore (Kernels.Monte_carlo.run reg rc p));
  }

let verification_instance = function
  | VM -> vm_instance Kernels.Vm.verification "VM 10^3"
  | CG ->
      (* Trace-driven simulation of the full 500x500 solve is feasible
         but slow in CI; 8 capped iterations exercise every phase. *)
      cg_instance
        (Kernels.Cg.make_params ~max_iterations:8 ~tolerance:0.0 500)
        "CG 500x500 (8 iters)"
  | NB -> nb_instance Kernels.Barnes_hut.verification "NB 1000 particles"
  | MG -> mg_instance (Kernels.Multigrid.make_params ~v_cycles:1 32) "MG 32^3"
  | FT -> ft_instance Kernels.Fft.verification "FT 2^14"
  | MC -> mc_instance Kernels.Monte_carlo.verification "MC 10^3 lookups"

let profiling_instance = function
  | VM -> vm_instance Kernels.Vm.profiling "VM 10^5"
  | CG ->
      cg_instance
        (Kernels.Cg.make_params ~max_iterations:25 ~tolerance:0.0 800)
        "CG 800x800"
  | NB -> nb_instance Kernels.Barnes_hut.profiling "NB 6000 particles"
  | MG -> mg_instance Kernels.Multigrid.profiling "MG 64^3"
  | FT -> ft_instance Kernels.Fft.profiling "FT 2^11"
  | MC -> mc_instance Kernels.Monte_carlo.profiling "MC 10^5 lookups"

let input_size_description mode kernel =
  match (mode, kernel) with
  | `Verification, VM -> "10^3 integer array"
  | `Verification, CG -> "500x500 double matrix"
  | `Verification, NB -> "1000 particles"
  | `Verification, MG -> "Problem class = S (32^3)"
  | `Verification, FT -> "Problem class = S (2^14 points)"
  | `Verification, MC -> "Size = small, lookups = 10^3"
  | `Profiling, VM -> "10^5 integer array"
  | `Profiling, CG -> "800x800 double matrix"
  | `Profiling, NB -> "6000 particles"
  | `Profiling, MG -> "Problem class = W (scaled to 64^3)"
  | `Profiling, FT -> "Problem class = S (2^11 points, ~32KB)"
  | `Profiling, MC -> "Size = small (16384x32 grid), lookups = 10^5"
