(** Selective protection — the use the paper builds DVF for.

    §I: "selectively apply protection mechanisms to its critical
    components ... selective use of these safeguards is critical when
    balancing their benefits against the costs of their respective
    overheads"; §III-A: "we use DVF to determine if a data structure is
    vulnerable and whether we should enforce extra protection".

    Given an application's per-structure DVF, this module ranks the
    structures and evaluates what protecting only the top-k buys: each
    protected structure's [N_error] scales by the protected/unprotected
    FIT ratio (Eq. 1 is linear in FIT), unprotected structures keep
    theirs.  The coverage curve answers the designer's question: how few
    structures must be hardened to remove most of the vulnerability? *)

val rank : Dvf.app_dvf -> Dvf.structure_dvf list
(** Structures sorted by descending DVF. *)

val protect_structures :
  scheme:Ecc.scheme -> names:string list -> Dvf.app_dvf -> Dvf.app_dvf
(** Re-evaluate with the scheme's FIT applied to the named structures
    only (the paper's per-structure protection, e.g. software ABFT or a
    protected memory region).  Unknown names raise
    [Invalid_argument]. *)

type coverage_point = {
  protected_count : int;
  protected_names : string list;  (** in protection order *)
  residual_dvf : float;
  residual_fraction : float;      (** residual / unprotected total *)
}

val coverage_curve : scheme:Ecc.scheme -> Dvf.app_dvf -> coverage_point list
(** Protecting the top-0, top-1, ..., all structures in {!rank} order. *)

val structures_for_target :
  scheme:Ecc.scheme -> target_fraction:float -> Dvf.app_dvf -> string list
(** The smallest DVF-ranked prefix whose protection brings the residual
    DVF to at most [target_fraction] of the unprotected total.  Raises
    [Invalid_argument] if the target is outside (0, 1] or unreachable
    even with everything protected. *)

val to_table : coverage_point list -> Dvf_util.Table.t
