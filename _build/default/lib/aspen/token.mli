(** Lexical tokens of the extended-Aspen modeling language. *)

type t =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Lbrace          (** [{] *)
  | Rbrace          (** [}] *)
  | Lparen          (** [(] *)
  | Rparen          (** [)] *)
  | Comma
  | Semicolon
  | Colon
  | Equals
  | Star
  | Plus
  | Minus
  | Slash
  | Caret
  | Eof

type located = {
  token : t;
  line : int;   (** 1-based *)
  col : int;    (** 1-based *)
}

val pp : Format.formatter -> t -> unit
val describe : t -> string
(** Human-readable form for error messages ("identifier 'foo'", "'{'"). *)
