(** Pretty-printer for Aspen ASTs.

    [parse (print ast) = ast] up to redundant parentheses; the round trip
    is property-tested.  Used by the CLI's [dvf parse] subcommand to echo
    the normalized model. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_pattern : Format.formatter -> Ast.pattern -> unit
val pp_app : Format.formatter -> Ast.app -> unit
val pp_machine : Format.formatter -> Ast.machine -> unit
val pp_file : Format.formatter -> Ast.file -> unit
val to_string : Ast.file -> string
