lib/aspen/lexer.mli: Token
