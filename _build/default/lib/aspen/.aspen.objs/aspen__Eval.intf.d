lib/aspen/eval.mli: Access_patterns Ast
