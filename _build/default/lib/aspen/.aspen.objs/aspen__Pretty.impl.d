lib/aspen/pretty.ml: Ast Float Format List
