lib/aspen/ast.ml:
