lib/aspen/parser.ml: Ast Errors Lexer List Printf Token
