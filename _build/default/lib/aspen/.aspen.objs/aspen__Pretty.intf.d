lib/aspen/pretty.mli: Ast Format
