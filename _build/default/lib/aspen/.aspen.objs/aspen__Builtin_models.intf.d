lib/aspen/builtin_models.mli: Ast
