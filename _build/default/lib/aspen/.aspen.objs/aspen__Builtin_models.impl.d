lib/aspen/builtin_models.ml: List Parser String
