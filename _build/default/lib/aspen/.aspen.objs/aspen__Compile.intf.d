lib/aspen/compile.mli: Access_patterns Ast Cachesim Core Eval
