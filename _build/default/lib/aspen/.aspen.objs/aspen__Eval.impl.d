lib/aspen/eval.ml: Access_patterns Ast Errors Float List Printf
