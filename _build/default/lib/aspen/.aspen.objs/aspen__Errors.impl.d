lib/aspen/errors.ml: Printf
