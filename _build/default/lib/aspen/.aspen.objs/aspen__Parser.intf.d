lib/aspen/parser.mli: Ast
