lib/aspen/errors.mli:
