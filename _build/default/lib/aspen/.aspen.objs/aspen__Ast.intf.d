lib/aspen/ast.mli:
