lib/aspen/token.mli: Format
