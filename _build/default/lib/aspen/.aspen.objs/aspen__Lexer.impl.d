lib/aspen/lexer.ml: Buffer Errors List Printf String Token
