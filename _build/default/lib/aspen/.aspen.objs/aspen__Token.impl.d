lib/aspen/token.ml: Format Printf
