lib/aspen/compile.ml: Access_patterns Array Ast Cachesim Core Errors Eval Float List Printf
