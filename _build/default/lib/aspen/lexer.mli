(** Hand-written lexer for the extended-Aspen language.

    Supports [//] line comments and [/* ... */] block comments, decimal
    integers, floats (with optional exponent, e.g. [50e9]), double-quoted
    strings, and the punctuation in {!Token.t}.  Raises {!Errors.Error}
    on malformed input. *)

val tokenize : string -> Token.located list
(** The whole input, ending with an [Eof] token. *)
