let machines =
  {|
// Table IV cache configurations; main memory without ECC (Table VII).
machine small_verif {
  cache  { assoc = 4; sets = 64; line = 32 }
  memory { fit = 5000 }
  perf   { flops = 100e9; bandwidth = 50e9 }
}

machine large_verif {
  cache  { assoc = 16; sets = 4096; line = 64 }
  memory { fit = 5000 }
  perf   { flops = 100e9; bandwidth = 50e9 }
}

machine prof_16kb {
  cache  { assoc = 2; sets = 1024; line = 8 }
  memory { fit = 5000 }
}

machine prof_128kb {
  cache  { assoc = 4; sets = 2048; line = 16 }
  memory { fit = 5000 }
}

machine prof_1mb {
  cache  { assoc = 6; sets = 4096; line = 32 }
  memory { fit = 5000 }
}

machine prof_8mb {
  cache  { assoc = 8; sets = 8192; line = 64 }
  memory { fit = 5000 }
}
|}

let vm =
  {|
// Vector multiplication (Algorithm 1): C_i += A_{i*sa} * B_{i*sb}.
// Streaming patterns; A's larger stride is what makes it the most
// vulnerable structure in Fig. 5(a).
app vm {
  param n = 100000
  param esize = 4
  param stride_a = 4

  data A { pattern stream(elem = esize, count = n * stride_a, stride = stride_a) }
  data B { pattern stream(elem = esize, count = n, stride = 1) }
  data C { pattern stream(elem = esize, count = n, stride = 1, writeback) }

  flops 2 * n
}
|}

let cg =
  {|
// Conjugate gradient (Algorithm 4), paper access order:
//   r (A p) p (x p) (A p) r (r p)   with patterns s (tt) s (ss) (tt) s (ss).
// The matrix-vector phases stream A and re-touch p once per row.
app cg {
  param n = 500
  param iters = 8

  data A { size = 8 * n * n }
  data x { size = 8 * n }
  data p { size = 8 * n }
  data r { size = 8 * n }

  order iterations = iters {
    phase { r : stream(elem = 8, count = n, stride = 1) }
    phase { A : stream(elem = 8, count = n * n, stride = 1);
            p : reuse * n }
    phase { p : stream(elem = 8, count = n, stride = 1) }
    phase { x : stream(elem = 8, count = n, stride = 1, writeback);
            p : stream(elem = 8, count = n, stride = 1) }
    phase { A : stream(elem = 8, count = n * n, stride = 1);
            p : reuse * n }
    phase { r : stream(elem = 8, count = n, stride = 1, writeback) }
    phase { r : stream(elem = 8, count = n, stride = 1);
            p : stream(elem = 8, count = n, stride = 1, writeback) }
  }

  flops iters * (4 * n * n + 10 * n)
}
|}

let nb =
  {|
// Barnes-Hut (Algorithm 2) with the paper's literal example parameters:
// 1000 tree nodes of 32 bytes, 200 comparisons per body, 1000 bodies.
app nb {
  param nodes = 1000
  param bodies = 1000
  param k = 200

  data T { pattern random(elems = nodes, elem = 32, visits = k,
                          iters = bodies, ratio = 1.0) }
  data P { pattern stream(elem = 32, count = bodies, stride = 1, writeback) }

  flops 12 * k * bodies
}
|}

let mg =
  {|
// Multi-grid smoother (Algorithm 3): four reference streams advancing by
// one element per iteration from the paper's start references to the grid
// boundary, linearized as R(i,j,k) = i*n2*n1 + j*n1 + k.
app mg {
  param n1 = 32
  param n2 = 32
  param n3 = 32

  data R {
    size = 8 * n1 * n2 * n3
    pattern template(elem = 8, shape = (n3, n2, n1)) {
      range step 1
        from (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1))
        to   (R(n3-1, n2-2, n1), R(n3-1, n2, n1),
              R(n3-2, n2-1, n1), R(n3, n2-1, n1))
    }
  }

  flops 4 * n1 * n2 * n3
}
|}

let ft =
  {|
// 1-D FFT: a bit-reversal pass then log2(n) butterfly passes, each a full
// traverse of the signal -- the repeated-traversal template whose DVF
// jumps once the cache no longer holds the array (Fig. 5(e)).
app ft {
  param n = 2048
  param passes = 12   // 1 + log2 n

  data X {
    size = 16 * n
    pattern template(elem = 16) {
      repeat passes {
        pass(start = 0, count = n, stride = 1)
      }
    }
  }

  flops 5 * n * passes
}
|}

let mc =
  {|
// Monte Carlo cross-section lookups (XSBench): the unionized grid G and
// the nuclide data E are accessed randomly and concurrently; each gets a
// cache share proportional to its size (paper SS III-C). A lookup reads 2
// adjacent grid points and gathers 2 rows of 16 nuclide values.
app mc {
  param grid = 4096
  param nuclides = 16
  param lookups = 100000

  data G { pattern random(elems = grid, elem = 8, visits = 2,
                          iters = lookups, ratio = 1 / 17, run = 2) }
  data E { pattern random(elems = grid * nuclides, elem = 8,
                          visits = 2 * nuclides, iters = lookups,
                          ratio = 16 / 17, run = nuclides) }

  flops 4 * nuclides * lookups
}
|}

let sources =
  [
    ("machines", machines); ("vm", vm); ("cg", cg); ("nb", nb); ("mg", mg);
    ("ft", ft); ("mc", mc);
  ]

let everything = String.concat "\n" (List.map snd sources)

let load () = Parser.parse_file everything
