type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      let line = st.line and col = st.col in
      advance st;
      advance st;
      let rec loop () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            loop ()
        | None, _ -> Errors.fail ~line ~col "unterminated block comment"
      in
      loop ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let line = st.line and col = st.col in
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      let next = peek2 st in
      let exp_ok =
        match next with
        | Some c when is_digit c -> true
        | Some ('+' | '-') -> true
        | _ -> false
      in
      if exp_ok then begin
        is_float := true;
        advance st;
        (match peek st with Some ('+' | '-') -> advance st | _ -> ());
        if not (match peek st with Some c -> is_digit c | None -> false) then
          Errors.fail ~line ~col "malformed exponent";
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
      end
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  let token =
    if !is_float then Token.Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some n -> Token.Int n
      | None -> Token.Float (float_of_string text)
  in
  { Token.token; line; col }

let lex_ident st =
  let line = st.line and col = st.col in
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  { Token.token = Token.Ident (String.sub st.src start (st.pos - start)); line; col }

let lex_string st =
  let line = st.line and col = st.col in
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; loop ()
        | Some c -> Buffer.add_char buf c; advance st; loop ()
        | None -> Errors.fail ~line ~col "unterminated string")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
    | None -> Errors.fail ~line ~col "unterminated string"
  in
  loop ();
  { Token.token = Token.Str (Buffer.contents buf); line; col }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let push token = out := token :: !out in
  let rec loop () =
    skip_trivia st;
    let line = st.line and col = st.col in
    let simple token =
      advance st;
      push { Token.token; line; col }
    in
    match peek st with
    | None -> push { Token.token = Token.Eof; line; col }
    | Some c when is_digit c ->
        push (lex_number st);
        loop ()
    | Some c when is_ident_start c ->
        push (lex_ident st);
        loop ()
    | Some '"' ->
        push (lex_string st);
        loop ()
    | Some '{' -> simple Token.Lbrace; loop ()
    | Some '}' -> simple Token.Rbrace; loop ()
    | Some '(' -> simple Token.Lparen; loop ()
    | Some ')' -> simple Token.Rparen; loop ()
    | Some ',' -> simple Token.Comma; loop ()
    | Some ';' -> simple Token.Semicolon; loop ()
    | Some ':' -> simple Token.Colon; loop ()
    | Some '=' -> simple Token.Equals; loop ()
    | Some '*' -> simple Token.Star; loop ()
    | Some '+' -> simple Token.Plus; loop ()
    | Some '-' -> simple Token.Minus; loop ()
    | Some '/' -> simple Token.Slash; loop ()
    | Some '^' -> simple Token.Caret; loop ()
    | Some c ->
        Errors.fail ~line ~col (Printf.sprintf "unexpected character %C" c)
  in
  loop ();
  List.rev !out
