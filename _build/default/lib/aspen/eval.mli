(** Expression evaluation over a parameter environment. *)

type env = (string * float) list

val expr : env -> Ast.expr -> float
(** Raises {!Errors.Error} (position 0,0) on unbound variables or
    division by zero. *)

val int_expr : env -> Ast.expr -> int
(** [expr] then checked to be integral (within 1e-9) — sizes, counts and
    strides must be whole numbers. *)

val to_template_expr : Ast.expr -> Access_patterns.Template_lang.Expr.t
(** Lower an index expression to the template language (integer
    semantics).  Constant subexpressions may be float-valued as long as
    they evaluate to integers; [^] is only allowed with a constant
    integer exponent. *)
