type t =
  | Ident of string
  | Int of int
  | Float of float
  | Str of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Colon
  | Equals
  | Star
  | Plus
  | Minus
  | Slash
  | Caret
  | Eof

type located = {
  token : t;
  line : int;
  col : int;
}

let pp fmt = function
  | Ident s -> Format.fprintf fmt "%s" s
  | Int n -> Format.fprintf fmt "%d" n
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Lbrace -> Format.pp_print_string fmt "{"
  | Rbrace -> Format.pp_print_string fmt "}"
  | Lparen -> Format.pp_print_string fmt "("
  | Rparen -> Format.pp_print_string fmt ")"
  | Comma -> Format.pp_print_string fmt ","
  | Semicolon -> Format.pp_print_string fmt ";"
  | Colon -> Format.pp_print_string fmt ":"
  | Equals -> Format.pp_print_string fmt "="
  | Star -> Format.pp_print_string fmt "*"
  | Plus -> Format.pp_print_string fmt "+"
  | Minus -> Format.pp_print_string fmt "-"
  | Slash -> Format.pp_print_string fmt "/"
  | Caret -> Format.pp_print_string fmt "^"
  | Eof -> Format.pp_print_string fmt "<eof>"

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Int n -> Printf.sprintf "integer %d" n
  | Float f -> Printf.sprintf "number %g" f
  | Str s -> Printf.sprintf "string %S" s
  | Eof -> "end of input"
  | t -> Printf.sprintf "'%s'" (Format.asprintf "%a" pp t)
