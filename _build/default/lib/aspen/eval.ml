module TE = Access_patterns.Template_lang.Expr

type env = (string * float) list

let fail message = Errors.fail ~line:0 ~col:0 message

let rec expr env = function
  | Ast.Num f -> f
  | Ast.Var name -> (
      match List.assoc_opt name env with
      | Some v -> v
      | None -> fail (Printf.sprintf "unbound parameter '%s'" name))
  | Ast.Neg e -> -.expr env e
  | Ast.Binop (op, a, b) -> (
      let va = expr env a and vb = expr env b in
      match op with
      | Ast.Add -> va +. vb
      | Ast.Sub -> va -. vb
      | Ast.Mul -> va *. vb
      | Ast.Div ->
          if vb = 0.0 then fail "division by zero";
          va /. vb
      | Ast.Pow -> va ** vb)

let int_expr env e =
  let v = expr env e in
  let r = Float.round v in
  if Float.abs (v -. r) > 1e-9 then
    fail (Printf.sprintf "expected an integer value, got %g" v);
  int_of_float r

let rec to_template_expr = function
  | Ast.Num f ->
      let r = Float.round f in
      if Float.abs (f -. r) > 1e-9 then
        fail (Printf.sprintf "template index literal %g is not an integer" f);
      TE.Int (int_of_float r)
  | Ast.Var name -> TE.Var name
  | Ast.Neg e -> TE.Neg (to_template_expr e)
  | Ast.Binop (Ast.Add, a, b) -> TE.Add (to_template_expr a, to_template_expr b)
  | Ast.Binop (Ast.Sub, a, b) -> TE.Sub (to_template_expr a, to_template_expr b)
  | Ast.Binop (Ast.Mul, a, b) -> TE.Mul (to_template_expr a, to_template_expr b)
  | Ast.Binop (Ast.Div, a, b) -> TE.Div (to_template_expr a, to_template_expr b)
  | Ast.Binop (Ast.Pow, base, e) -> (
      (* Expand constant integer powers into repeated multiplication. *)
      match e with
      | Ast.Num f when Float.is_integer f && f >= 0.0 && f <= 16.0 ->
          let n = int_of_float f in
          if n = 0 then TE.Int 1
          else begin
            let b = to_template_expr base in
            let rec build k acc = if k = 1 then acc else build (k - 1) (TE.Mul (acc, b)) in
            build n b
          end
      | _ -> fail "template indices only support constant integer exponents")
