exception Error of { line : int; col : int; message : string }

let fail ~line ~col message = raise (Error { line; col; message })

let to_string = function
  | Error { line; col; message } ->
      Some (Printf.sprintf "line %d, column %d: %s" line col message)
  | _ -> None
