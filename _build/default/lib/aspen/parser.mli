(** Recursive-descent parser for the extended-Aspen language.

    Raises {!Errors.Error} with the offending position on syntax errors. *)

val parse_file : string -> Ast.file
(** Parse a whole source text. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (for tests and the CLI's [--eval]). *)
