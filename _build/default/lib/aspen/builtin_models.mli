(** The paper's Aspen programs (§III-D) as embedded DSL sources.

    One source per Table II kernel plus the Table IV machines.  The same
    texts are installed under [models/*.aspen] for use with the CLI; the
    embedded copies keep the library self-contained and are what the test
    suite parses. *)

val machines : string
(** The six Table IV cache configurations as [machine] declarations
    (FIT = 5000, no ECC). *)

val vm : string
(** Vector multiplication: three streaming structures (Algorithm 1). *)

val cg : string
(** Conjugate gradient: the access-order composition
    [r (A p) p (x p) (A p) r (r p)] (Algorithm 4). *)

val nb : string
(** Barnes–Hut with the paper's literal random-access example parameters
    [(1000, 32, 200, 1000, 1.0)] (Algorithm 2). *)

val mg : string
(** The Multi-grid smoother template of Algorithm 3, four reference
    streams advancing to the grid boundary. *)

val ft : string
(** 1-D FFT: repeated full traversals of one structure. *)

val mc : string
(** Monte Carlo: two concurrent random structures with size-proportional
    cache shares. *)

val sources : (string * string) list
(** [(name, source)] for all of the above, machines first. *)

val everything : string
(** All sources concatenated into one parseable file. *)

val load : unit -> Ast.file
(** Parse {!everything}. *)
