(** Error reporting for the Aspen front end. *)

exception Error of { line : int; col : int; message : string }

val fail : line:int -> col:int -> string -> 'a
(** Raise {!Error}. *)

val to_string : exn -> string option
(** Render an {!Error} as "line L, column C: message"; [None] for other
    exceptions. *)
