(** Lowering of Aspen ASTs onto the CGPMAC model library and the DVF
    engine — the role the paper's extended Aspen compiler plays in its
    Fig. 3 workflow. *)

type machine = {
  machine_name : string;
  cache : Cachesim.Config.t;
  fit : float;                 (** FIT/Mbit; defaults to 5000 (no ECC) *)
  perf : Core.Perf.machine;
}

type app = {
  app_name : string;
  spec : Access_patterns.App_spec.t;
  flops : int;                 (** 0 when not declared *)
  declared_time : float option;
  env : Eval.env;              (** evaluated parameters *)
}

val compile_machine : Ast.machine -> machine
(** Requires a [cache] section with [assoc], [sets] and [line]; [memory]
    ([fit]) and [perf] ([flops], [bandwidth]) are optional.  Raises
    {!Errors.Error} on missing or unknown fields. *)

val compile_app : ?overrides:Eval.env -> Ast.app -> app
(** Evaluate parameters (later declarations may refer to earlier ones;
    [overrides] win over declared values), lower every data declaration
    and the order block.  Raises {!Errors.Error} on semantic problems
    (undeclared structures in phases, missing pattern arguments,
    pattern-less structures not covered by the order, ...). *)

val machines : Ast.file -> machine list
val apps : ?overrides:Eval.env -> Ast.file -> app list

val find_machine : Ast.file -> string -> machine
(** Raises {!Errors.Error} when absent. *)

val find_app : ?overrides:Eval.env -> Ast.file -> string -> app

val execution_time : machine -> app -> float
(** The app's declared [time] if present, otherwise the roofline model on
    the machine's [perf] section. *)

val dvf : machine -> app -> Core.Dvf.app_dvf
(** The Fig. 3 pipeline: N_ha from the pattern models on the machine's
    cache, T from {!execution_time}, FIT from the machine — Eq. 1/2. *)
