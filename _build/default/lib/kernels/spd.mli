(** Shared SPD test problem for the CG / PCG study (Fig. 6).

    The system is tridiagonal with diagonal [d_i = 3 + (i/20)(n/800)^2] and
    off-diagonal -1, stored {e dense} (the paper's CG benchmark operates
    on a dense double matrix).  Two properties matter:

    - the condition number grows with [n], so plain CG needs more
      iterations on larger problems;
    - the diagonal spread also grows with [n]: at small sizes the diagonal
      is nearly constant and Jacobi preconditioning buys almost nothing
      (PCG performs like CG but carries extra structures — slightly worse
      DVF), while at large sizes the spread is an order of magnitude and
      PCG converges far faster — producing exactly the Fig. 6
      crossover. *)

val diagonal : n:int -> int -> float
(** [diagonal ~n i] is [d_i] for an n-unknown system. *)

val fill_matrix : int -> (int -> int -> float -> unit) -> unit
(** [fill_matrix n set] calls [set i j a_ij] for every entry. *)

val known_solution : Dvf_util.Rng.t -> int -> float array
(** Random target solution in [-1, 1)^n. *)

val rhs_of_solution : int -> float array -> float array
(** [b = A x*], computed from the tridiagonal stencil directly. *)

val matvec_dense : n:int -> float array -> float array -> float array -> unit
(** [matvec_dense ~n a x y] sets [y <- A x] for a dense row-major [a];
    untraced helper for tests. *)
