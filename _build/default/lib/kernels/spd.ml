let diagonal ~n i =
  let scale = float_of_int n /. 800.0 in
  3.0 +. (float_of_int i /. 20.0 *. scale *. scale)

let fill_matrix n set =
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v =
        if i = j then diagonal ~n i
        else if abs (i - j) = 1 then -1.0
        else 0.0
      in
      set i j v
    done
  done

let known_solution rng n =
  Array.init n (fun _ -> Dvf_util.Rng.float rng 2.0 -. 1.0)

let rhs_of_solution n xstar =
  Array.init n (fun i ->
      let acc = ref (diagonal ~n i *. xstar.(i)) in
      if i > 0 then acc := !acc -. xstar.(i - 1);
      if i < n - 1 then acc := !acc -. xstar.(i + 1);
      !acc)

let matvec_dense ~n a x y =
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    let base = i * n in
    for j = 0 to n - 1 do
      acc := !acc +. (a.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done
