type t = {
  n : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let create ~n ~row_ptr ~col_idx ~values =
  if n < 0 then invalid_arg "Csr.create: negative dimension";
  if Array.length row_ptr <> n + 1 then
    invalid_arg "Csr.create: row_ptr must have n+1 entries";
  if row_ptr.(0) <> 0 then invalid_arg "Csr.create: row_ptr must start at 0";
  let nnz = row_ptr.(n) in
  if Array.length col_idx <> nnz || Array.length values <> nnz then
    invalid_arg "Csr.create: col_idx/values length must equal row_ptr.(n)";
  for i = 0 to n - 1 do
    if row_ptr.(i + 1) < row_ptr.(i) then
      invalid_arg "Csr.create: row_ptr must be monotone";
    for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if col_idx.(k) < 0 || col_idx.(k) >= n then
        invalid_arg "Csr.create: column index out of range";
      if k > row_ptr.(i) && col_idx.(k) <= col_idx.(k - 1) then
        invalid_arg "Csr.create: column indices must be strictly increasing per row"
    done
  done;
  { n; row_ptr; col_idx; values }

let nnz t = t.row_ptr.(t.n)

let laplacian_2d k =
  if k < 2 then invalid_arg "Csr.laplacian_2d: k < 2";
  let n = k * k in
  let row_ptr = Array.make (n + 1) 0 in
  let cols = ref [] and vals = ref [] in
  let count = ref 0 in
  let push c v =
    cols := c :: !cols;
    vals := v :: !vals;
    incr count
  in
  for row = 0 to n - 1 do
    let i = row / k and j = row mod k in
    (* Columns in increasing order: (i-1,j), (i,j-1), (i,j), (i,j+1),
       (i+1,j). *)
    if i > 0 then push (row - k) (-1.0);
    if j > 0 then push (row - 1) (-1.0);
    push row 4.0;
    if j < k - 1 then push (row + 1) (-1.0);
    if i < k - 1 then push (row + k) (-1.0);
    row_ptr.(row + 1) <- !count
  done;
  let col_idx = Array.of_list (List.rev !cols) in
  let values = Array.of_list (List.rev !vals) in
  create ~n ~row_ptr ~col_idx ~values

let spd_tridiagonal n =
  if n < 2 then invalid_arg "Csr.spd_tridiagonal: n < 2";
  let row_ptr = Array.make (n + 1) 0 in
  let cols = ref [] and vals = ref [] in
  let count = ref 0 in
  let push c v =
    cols := c :: !cols;
    vals := v :: !vals;
    incr count
  in
  for i = 0 to n - 1 do
    if i > 0 then push (i - 1) (-1.0);
    push i (Spd.diagonal ~n i);
    if i < n - 1 then push (i + 1) (-1.0);
    row_ptr.(i + 1) <- !count
  done;
  create ~n ~row_ptr
    ~col_idx:(Array.of_list (List.rev !cols))
    ~values:(Array.of_list (List.rev !vals))

let of_dense n a =
  if Array.length a <> n * n then invalid_arg "Csr.of_dense: size mismatch";
  let row_ptr = Array.make (n + 1) 0 in
  let cols = ref [] and vals = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v = a.((i * n) + j) in
      if v <> 0.0 then begin
        cols := j :: !cols;
        vals := v :: !vals;
        incr count
      end
    done;
    row_ptr.(i + 1) <- !count
  done;
  create ~n ~row_ptr
    ~col_idx:(Array.of_list (List.rev !cols))
    ~values:(Array.of_list (List.rev !vals))

let spmv t x y =
  if Array.length x <> t.n || Array.length y <> t.n then
    invalid_arg "Csr.spmv: vector length mismatch";
  for i = 0 to t.n - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

let to_dense t =
  let a = Array.make (t.n * t.n) 0.0 in
  for i = 0 to t.n - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      a.((i * t.n) + t.col_idx.(k)) <- t.values.(k)
    done
  done;
  a

let row_bounds t i =
  if i < 0 || i >= t.n then invalid_arg "Csr.row_bounds: row out of range";
  (t.row_ptr.(i), t.row_ptr.(i + 1))
