lib/kernels/spd.ml: Array Dvf_util
