lib/kernels/pcg.ml: Access_patterns Array Dvf_util Float List Memtrace Spd
