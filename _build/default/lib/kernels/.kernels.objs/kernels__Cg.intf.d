lib/kernels/cg.mli: Access_patterns Memtrace
