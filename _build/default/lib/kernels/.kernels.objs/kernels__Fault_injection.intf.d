lib/kernels/fault_injection.mli: Cg Dvf_util Vm
