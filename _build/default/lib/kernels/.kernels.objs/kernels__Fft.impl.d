lib/kernels/fft.ml: Access_patterns Array Complex Dvf_util Float Memtrace
