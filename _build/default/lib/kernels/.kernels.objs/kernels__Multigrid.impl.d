lib/kernels/multigrid.ml: Access_patterns Array Dvf_util Memtrace
