lib/kernels/cg.ml: Access_patterns Array Dvf_util Float List Memtrace Spd
