lib/kernels/sparse_cg.ml: Access_patterns Array Cg Csr Dvf_util Float List Memtrace Spd
