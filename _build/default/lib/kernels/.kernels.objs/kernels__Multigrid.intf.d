lib/kernels/multigrid.mli: Access_patterns Memtrace
