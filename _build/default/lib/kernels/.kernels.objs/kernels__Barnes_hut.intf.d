lib/kernels/barnes_hut.mli: Access_patterns Memtrace
