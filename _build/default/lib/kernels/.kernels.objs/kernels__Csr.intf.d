lib/kernels/csr.mli:
