lib/kernels/csr.ml: Array List Spd
