lib/kernels/monte_carlo.ml: Access_patterns Array Dvf_util Memtrace
