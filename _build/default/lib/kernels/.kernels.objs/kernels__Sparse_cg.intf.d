lib/kernels/sparse_cg.mli: Access_patterns Memtrace
