lib/kernels/fault_injection.ml: Array Cg Dvf_util Float Hashtbl Int64 List Printf Spd Vm
