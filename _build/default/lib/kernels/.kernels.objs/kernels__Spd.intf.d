lib/kernels/spd.mli: Dvf_util
