lib/kernels/barnes_hut.ml: Access_patterns Array Dvf_util Float Memtrace
