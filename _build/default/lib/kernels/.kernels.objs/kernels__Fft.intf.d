lib/kernels/fft.mli: Access_patterns Complex Memtrace
