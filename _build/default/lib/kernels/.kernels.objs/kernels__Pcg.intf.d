lib/kernels/pcg.mli: Access_patterns Memtrace
