lib/kernels/vm.ml: Access_patterns Memtrace
