lib/kernels/vm.mli: Access_patterns Memtrace
