lib/kernels/monte_carlo.mli: Access_patterns Memtrace
