module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  n : int;
  stride_a : int;
  stride_b : int;
  elem_size : int;
}

let make_params ?(stride_a = 4) ?(stride_b = 1) ?(elem_size = 4) n =
  if n <= 0 then invalid_arg "Vm.make_params: n <= 0";
  if stride_a <= 0 || stride_b <= 0 then invalid_arg "Vm.make_params: stride <= 0";
  if elem_size <= 0 then invalid_arg "Vm.make_params: elem_size <= 0";
  { n; stride_a; stride_b; elem_size }

let verification = make_params 1_000
let profiling = make_params 100_000

type result = { checksum : float; flops : int }

let run registry recorder p =
  let init_a i = float_of_int ((i mod 97) + 1) in
  let init_b i = float_of_int ((i mod 89) + 1) /. 8.0 in
  let a =
    Tracked.init registry recorder ~name:"A" ~elem_size:p.elem_size
      (p.n * p.stride_a) init_a
  in
  let b =
    Tracked.init registry recorder ~name:"B" ~elem_size:p.elem_size
      (p.n * p.stride_b) init_b
  in
  let c =
    Tracked.make registry recorder ~name:"C" ~elem_size:p.elem_size p.n 0.0
  in
  for i = 0 to p.n - 1 do
    let ai = Tracked.get a (i * p.stride_a) in
    let bi = Tracked.get b (i * p.stride_b) in
    let ci = Tracked.get c i in
    Tracked.set c i (ci +. (ai *. bi))
  done;
  let checksum = ref 0.0 in
  for i = 0 to p.n - 1 do
    checksum := !checksum +. Tracked.get_silent c i
  done;
  { checksum = !checksum; flops = 2 * p.n }

let spec p =
  let stream name elements stride =
    {
      Ap.App_spec.name;
      bytes = elements * p.elem_size;
      pattern =
        Some
          (Ap.Pattern.Stream
             (Ap.Streaming.make ~elem_size:p.elem_size ~elements ~stride ()));
    }
  in
  Ap.App_spec.make ~app_name:"VM"
    ~structures:
      [
        stream "A" (p.n * p.stride_a) p.stride_a;
        stream "B" (p.n * p.stride_b) p.stride_b;
        (* C is read-modify-written with unit stride: every touched line
           is also evicted dirty. *)
        {
          Ap.App_spec.name = "C";
          bytes = p.n * p.elem_size;
          pattern =
            Some
              (Ap.Pattern.Stream
                 (Ap.Streaming.make ~writeback:true ~elem_size:p.elem_size
                    ~elements:p.n ~stride:1 ()));
        };
      ]
    ()

let flop_count p = 2 * p.n
