module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type params = {
  n : int;
  max_iterations : int;
  tolerance : float;
  seed : int;
}

let make_params ?(max_iterations = 15) ?(tolerance = 1e-10) ?(seed = 1) n =
  if n <= 1 then invalid_arg "Cg.make_params: n <= 1";
  if max_iterations < 1 then invalid_arg "Cg.make_params: max_iterations < 1";
  { n; max_iterations; tolerance; seed }

let verification = make_params 500
let profiling = make_params 800

type result = {
  iterations : int;
  residual : float;
  solution_error : float;
  flops : int;
}

let fill_matrix = Spd.fill_matrix
let known_solution = Spd.known_solution
let rhs_of_solution = Spd.rhs_of_solution

let flop_count ~iterations p =
  iterations * ((2 * 2 * p.n * p.n) + (10 * p.n))

(* The CG loop against abstract vector/matrix operations, so the traced
   and untraced variants share one control flow (and thus one iteration
   count). *)
module type Vector_ops = sig
  val n : int
  val a_row_dot_p : int -> float
  val get_x : int -> float
  val set_x : int -> float -> unit
  val get_p : int -> float
  val set_p : int -> float -> unit
  val get_r : int -> float
  val set_r : int -> float -> unit
end

let iterate ?(on_iteration = fun _ -> ()) (module O : Vector_ops)
    ~max_iterations ~tolerance =
  let n = O.n in
  let iterations = ref 0 in
  let rr = ref 0.0 in
  (* Phase r: rho = r.r *)
  for i = 0 to n - 1 do
    let ri = O.get_r i in
    rr := !rr +. (ri *. ri)
  done;
  let continue_ = ref (sqrt !rr >= tolerance) in
  while !continue_ && !iterations < max_iterations do
    incr iterations;
    on_iteration !iterations;
    (* Phase (A p): denominator p . (A p), streaming A with p reused per
       row. *)
    let den = ref 0.0 in
    for i = 0 to n - 1 do
      den := !den +. (O.get_p i *. O.a_row_dot_p i)
    done;
    let alpha = !rr /. !den in
    (* Phases p (x p): x <- x + alpha p *)
    for i = 0 to n - 1 do
      O.set_x i (O.get_x i +. (alpha *. O.get_p i))
    done;
    (* Phase (A p) again: r <- r - alpha (A p) *)
    for i = 0 to n - 1 do
      O.set_r i (O.get_r i -. (alpha *. O.a_row_dot_p i))
    done;
    (* Phase r: rho' = r.r *)
    let rr' = ref 0.0 in
    for i = 0 to n - 1 do
      let ri = O.get_r i in
      rr' := !rr' +. (ri *. ri)
    done;
    let beta = !rr' /. !rr in
    rr := !rr';
    (* Phase (r p): p <- r + beta p *)
    for i = 0 to n - 1 do
      O.set_p i (O.get_r i +. (beta *. O.get_p i))
    done;
    if sqrt !rr < tolerance then continue_ := false
  done;
  (!iterations, sqrt !rr)

let build_result p ~iterations ~residual ~x_get xstar =
  let err = ref 0.0 in
  for i = 0 to p.n - 1 do
    err := Float.max !err (abs_float (x_get i -. xstar.(i)))
  done;
  {
    iterations;
    residual;
    solution_error = !err;
    flops = flop_count ~iterations p;
  }

let run registry recorder p =
  let n = p.n in
  let rng = Dvf_util.Rng.create p.seed in
  let xstar = known_solution rng n in
  let b = rhs_of_solution n xstar in
  let a = Tracked.make registry recorder ~name:"A" ~elem_size:8 (n * n) 0.0 in
  fill_matrix n (fun i j v -> Tracked.set_silent a ((i * n) + j) v);
  let x = Tracked.make registry recorder ~name:"x" ~elem_size:8 n 0.0 in
  let pvec = Tracked.init registry recorder ~name:"p" ~elem_size:8 n (fun i -> b.(i)) in
  let r = Tracked.init registry recorder ~name:"r" ~elem_size:8 n (fun i -> b.(i)) in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (Tracked.get a ((i * n) + j) *. Tracked.get pvec j)
      done;
      !acc

    let get_x = Tracked.get x
    let set_x = Tracked.set x
    let get_p = Tracked.get pvec
    let set_p = Tracked.set pvec
    let get_r = Tracked.get r
    let set_r = Tracked.set r
  end in
  let iterations, residual =
    iterate (module O) ~max_iterations:p.max_iterations ~tolerance:p.tolerance
  in
  build_result p ~iterations ~residual
    ~x_get:(fun i -> Tracked.get_silent x i)
    xstar

let run_untraced p =
  let n = p.n in
  let rng = Dvf_util.Rng.create p.seed in
  let xstar = known_solution rng n in
  let b = rhs_of_solution n xstar in
  let a = Array.make (n * n) 0.0 in
  fill_matrix n (fun i j v -> a.((i * n) + j) <- v);
  let x = Array.make n 0.0 in
  let pvec = Array.copy b in
  let r = Array.copy b in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        acc := !acc +. (a.(base + j) *. pvec.(j))
      done;
      !acc

    let get_x i = x.(i)
    let set_x i v = x.(i) <- v
    let get_p i = pvec.(i)
    let set_p i v = pvec.(i) <- v
    let get_r i = r.(i)
    let set_r i v = r.(i) <- v
  end in
  let iterations, residual =
    iterate (module O) ~max_iterations:p.max_iterations ~tolerance:p.tolerance
  in
  build_result p ~iterations ~residual ~x_get:(fun i -> x.(i)) xstar

let spec ?iterations p =
  let iterations =
    match iterations with Some i -> max 1 i | None -> p.max_iterations
  in
  let n = p.n in
  let vec_bytes = 8 * n in
  let structures =
    [
      { Ap.App_spec.name = "A"; bytes = 8 * n * n; pattern = None };
      { Ap.App_spec.name = "x"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "p"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "r"; bytes = vec_bytes; pattern = None };
    ]
  in
  let stream ?writeback ?(elements = n) ?(stride = 1) name =
    Ap.Compose.occ name
      (Ap.Compose.Stream
         (Ap.Streaming.make ?writeback ~elem_size:8 ~elements ~stride ()))
  in
  let matrix_stream =
    Ap.Compose.occ "A"
      (Ap.Compose.Stream
         (Ap.Streaming.make ~elem_size:8 ~elements:(n * n) ~stride:1 ()))
  in
  let p_in_matvec = Ap.Compose.occ ~times:n "p" Ap.Compose.Reuse_only in
  (* Paper §III-D: order r (A p) p (x p) (A p) r (r p), patterns
     s (t t) s (s s) (t t) s (s s). *)
  let order =
    [
      [ stream "r" ];
      [ matrix_stream; p_in_matvec ];
      [ stream "p" ];
      [ stream ~writeback:true "x"; stream "p" ];
      [ matrix_stream; p_in_matvec ];
      [ stream ~writeback:true "r" ];
      [ stream "r"; stream ~writeback:true "p" ];
    ]
  in
  let composition =
    Ap.Compose.make
      ~structures:
        (List.map
           (fun (s : Ap.App_spec.structure) ->
             { Ap.Compose.name = s.Ap.App_spec.name; bytes = s.Ap.App_spec.bytes })
           structures)
      ~order ~iterations
  in
  Ap.App_spec.make ~app_name:"CG" ~structures ~composition ()
