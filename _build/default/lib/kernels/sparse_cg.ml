module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type problem = [ `Laplacian_2d of int | `Tridiagonal of int ]

type params = {
  problem : problem;
  max_iterations : int;
  tolerance : float;
  seed : int;
}

let make_params ?(max_iterations = 25) ?(tolerance = 1e-10) ?(seed = 1) problem =
  (match problem with
  | `Laplacian_2d k when k < 2 -> invalid_arg "Sparse_cg.make_params: k < 2"
  | `Tridiagonal n when n < 2 -> invalid_arg "Sparse_cg.make_params: n < 2"
  | _ -> ());
  if max_iterations < 1 then invalid_arg "Sparse_cg.make_params: max_iterations < 1";
  { problem; max_iterations; tolerance; seed }

let verification = make_params (`Laplacian_2d 64)

type result = {
  n : int;
  nnz : int;
  iterations : int;
  residual : float;
  solution_error : float;
  flops : int;
}

let matrix p =
  match p.problem with
  | `Laplacian_2d k -> Csr.laplacian_2d k
  | `Tridiagonal n -> Csr.spd_tridiagonal n

let flop_count ~iterations ~n ~nnz =
  iterations * ((2 * 2 * nnz) + (10 * n))

let finish ~matrix:m ~iterations ~residual ~x_get xstar =
  let err = ref 0.0 in
  for i = 0 to m.Csr.n - 1 do
    err := Float.max !err (abs_float (x_get i -. xstar.(i)))
  done;
  {
    n = m.Csr.n;
    nnz = Csr.nnz m;
    iterations;
    residual;
    solution_error = !err;
    flops = flop_count ~iterations ~n:m.Csr.n ~nnz:(Csr.nnz m);
  }

let problem_data p =
  let m = matrix p in
  let rng = Dvf_util.Rng.create p.seed in
  let xstar = Spd.known_solution rng m.Csr.n in
  let b = Array.make m.Csr.n 0.0 in
  Csr.spmv m xstar b;
  (m, xstar, b)

let run registry recorder p =
  let m, xstar, b = problem_data p in
  let n = m.Csr.n in
  let a_vals =
    Tracked.create registry recorder ~name:"a" ~elem_size:8
      (Array.copy m.Csr.values)
  in
  let colidx =
    Tracked.create registry recorder ~name:"colidx" ~elem_size:4
      (Array.copy m.Csr.col_idx)
  in
  let rowstr =
    Tracked.create registry recorder ~name:"rowstr" ~elem_size:4
      (Array.copy m.Csr.row_ptr)
  in
  let x = Tracked.make registry recorder ~name:"x" ~elem_size:8 n 0.0 in
  let pvec = Tracked.init registry recorder ~name:"p" ~elem_size:8 n (fun i -> b.(i)) in
  let r = Tracked.init registry recorder ~name:"r" ~elem_size:8 n (fun i -> b.(i)) in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let start = Tracked.get rowstr i in
      let stop = Tracked.get rowstr (i + 1) in
      let acc = ref 0.0 in
      for k = start to stop - 1 do
        let col = Tracked.get colidx k in
        acc := !acc +. (Tracked.get a_vals k *. Tracked.get pvec col)
      done;
      !acc

    let get_x = Tracked.get x
    let set_x = Tracked.set x
    let get_p = Tracked.get pvec
    let set_p = Tracked.set pvec
    let get_r = Tracked.get r
    let set_r = Tracked.set r
  end in
  let iterations, residual =
    Cg.iterate (module O) ~max_iterations:p.max_iterations
      ~tolerance:p.tolerance
  in
  finish ~matrix:m ~iterations ~residual
    ~x_get:(fun i -> Tracked.get_silent x i)
    xstar

let run_untraced p =
  let m, xstar, b = problem_data p in
  let n = m.Csr.n in
  let x = Array.make n 0.0 in
  let pvec = Array.copy b in
  let r = Array.copy b in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      for k = m.Csr.row_ptr.(i) to m.Csr.row_ptr.(i + 1) - 1 do
        acc := !acc +. (m.Csr.values.(k) *. pvec.(m.Csr.col_idx.(k)))
      done;
      !acc

    let get_x i = x.(i)
    let set_x i v = x.(i) <- v
    let get_p i = pvec.(i)
    let set_p i v = pvec.(i) <- v
    let get_r i = r.(i)
    let set_r i v = r.(i) <- v
  end in
  let iterations, residual =
    Cg.iterate (module O) ~max_iterations:p.max_iterations
      ~tolerance:p.tolerance
  in
  finish ~matrix:m ~iterations ~residual ~x_get:(fun i -> x.(i)) xstar

let spec ?iterations p =
  let m = matrix p in
  let n = m.Csr.n and nnz = Csr.nnz m in
  let iterations =
    match iterations with Some i -> max 1 i | None -> p.max_iterations
  in
  let vec_bytes = 8 * n in
  let structures =
    [
      { Ap.App_spec.name = "a"; bytes = 8 * nnz; pattern = None };
      { Ap.App_spec.name = "colidx"; bytes = 4 * nnz; pattern = None };
      { Ap.App_spec.name = "rowstr"; bytes = 4 * (n + 1); pattern = None };
      { Ap.App_spec.name = "x"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "p"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "r"; bytes = vec_bytes; pattern = None };
    ]
  in
  let stream ?writeback ~elem_size ~elements name =
    Ap.Compose.occ name
      (Ap.Compose.Stream
         (Ap.Streaming.make ?writeback ~elem_size ~elements ~stride:1 ()))
  in
  let vec ?writeback name = stream ?writeback ~elem_size:8 ~elements:n name in
  let matvec_phase =
    [
      stream ~elem_size:8 ~elements:nnz "a";
      stream ~elem_size:4 ~elements:nnz "colidx";
      (* rowstr is read twice per row, but the second read is the next
         row's first: one sequential traverse of n+1 pointers. *)
      stream ~elem_size:4 ~elements:(n + 1) "rowstr";
      (* p's gather order IS the sparsity pattern: the matvec reads
         p.(col_idx.(k)) for k = 0..nnz-1 — a template-based access (the
         paper classifies CG as Template+Reuse+Streaming), known to the
         modeler from the matrix structure. *)
      Ap.Compose.occ "p"
        (Ap.Compose.Tmpl (Ap.Template.make ~elem_size:8 (Array.copy m.Csr.col_idx)));
    ]
  in
  let order =
    [
      [ vec "r" ];
      matvec_phase;
      [ vec "p" ];
      [ vec ~writeback:true "x"; vec "p" ];
      matvec_phase;
      [ vec ~writeback:true "r" ];
      [ vec "r"; vec ~writeback:true "p" ];
    ]
  in
  let composition =
    Ap.Compose.make
      ~structures:
        (List.map
           (fun (s : Ap.App_spec.structure) ->
             { Ap.Compose.name = s.Ap.App_spec.name; bytes = s.Ap.App_spec.bytes })
           structures)
      ~order ~iterations
  in
  Ap.App_spec.make ~app_name:"CG-sparse" ~structures ~composition ()
