type outcome = Benign | Sdc | Detected

type campaign = {
  structure : string;
  trials : int;
  benign : int;
  sdc : int;
  detected : int;
}

let sdc_rate c =
  if c.trials = 0 then 0.0 else float_of_int c.sdc /. float_of_int c.trials

let unsafe_rate c =
  if c.trials = 0 then 0.0
  else float_of_int (c.sdc + c.detected) /. float_of_int c.trials

let flip_bit v ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Fault_injection.flip_bit: bit outside 0..63";
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float v) (Int64.shift_left 1L bit))

let tally structure outcomes =
  List.fold_left
    (fun c o ->
      match o with
      | Benign -> { c with benign = c.benign + 1 }
      | Sdc -> { c with sdc = c.sdc + 1 }
      | Detected -> { c with detected = c.detected + 1 })
    { structure; trials = List.length outcomes; benign = 0; sdc = 0; detected = 0 }
    outcomes

(* --- VM --- *)

(* The same arithmetic as Vm.run, open-coded so a flip can be injected
   before a chosen loop iteration. *)
let vm_trial (p : Vm.params) ~rng ~structure =
  let n = p.Vm.n in
  let a = Array.init (n * p.Vm.stride_a) (fun i -> float_of_int ((i mod 97) + 1)) in
  let b =
    Array.init (n * p.Vm.stride_b) (fun i -> float_of_int ((i mod 89) + 1) /. 8.0)
  in
  let c = Array.make n 0.0 in
  let flip_at = Dvf_util.Rng.int rng (n + 1) in
  let bit = Dvf_util.Rng.int rng 64 in
  let inject () =
    let target =
      match structure with "A" -> a | "B" -> b | "C" -> c | _ -> assert false
    in
    let e = Dvf_util.Rng.int rng (Array.length target) in
    target.(e) <- flip_bit target.(e) ~bit
  in
  for i = 0 to n - 1 do
    if i = flip_at then inject ();
    c.(i) <- c.(i) +. (a.(i * p.Vm.stride_a) *. b.(i * p.Vm.stride_b))
  done;
  if flip_at = n then inject ();
  let checksum = Dvf_util.Maths.sum c in
  checksum

let vm_clean_checksum p =
  (* A no-op "injection": flipping bit 0 of an element twice would be
     cleaner, but simplest is a campaign-free reference run. *)
  let n = p.Vm.n in
  let a = Array.init (n * p.Vm.stride_a) (fun i -> float_of_int ((i mod 97) + 1)) in
  let b =
    Array.init (n * p.Vm.stride_b) (fun i -> float_of_int ((i mod 89) + 1) /. 8.0)
  in
  let c = Array.make n 0.0 in
  for i = 0 to n - 1 do
    c.(i) <- c.(i) +. (a.(i * p.Vm.stride_a) *. b.(i * p.Vm.stride_b))
  done;
  Dvf_util.Maths.sum c

let classify_value ~clean ~tol corrupted =
  if Float.is_nan corrupted || Float.abs corrupted = Float.infinity then Detected
  else if Dvf_util.Maths.rel_error ~expected:clean ~actual:corrupted > tol then Sdc
  else Benign

let vm_campaign ?(trials = 400) ?(seed = 1234) p =
  let clean = vm_clean_checksum p in
  List.map
    (fun structure ->
      let rng = Dvf_util.Rng.create (seed + Hashtbl.hash structure) in
      let outcomes =
        List.init trials (fun _ ->
            classify_value ~clean ~tol:1e-12 (vm_trial p ~rng ~structure))
      in
      tally structure outcomes)
    [ "A"; "B"; "C" ]

(* --- CG --- *)

let cg_trial (p : Cg.params) ~rng ~structure ~clean_iterations xstar =
  let n = p.Cg.n in
  let b = Spd.rhs_of_solution n xstar in
  let a = Array.make (n * n) 0.0 in
  Spd.fill_matrix n (fun i j v -> a.((i * n) + j) <- v);
  let x = Array.make n 0.0 in
  let pvec = Array.copy b in
  let r = Array.copy b in
  let flip_at = 1 + Dvf_util.Rng.int rng clean_iterations in
  let bit = Dvf_util.Rng.int rng 64 in
  let inject () =
    let target =
      match structure with
      | "A" -> a
      | "x" -> x
      | "p" -> pvec
      | "r" -> r
      | _ -> assert false
    in
    let e = Dvf_util.Rng.int rng (Array.length target) in
    target.(e) <- flip_bit target.(e) ~bit
  in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        acc := !acc +. (a.(base + j) *. pvec.(j))
      done;
      !acc

    let get_x i = x.(i)
    let set_x i v = x.(i) <- v
    let get_p i = pvec.(i)
    let set_p i v = pvec.(i) <- v
    let get_r i = r.(i)
    let set_r i v = r.(i) <- v
  end in
  let _, residual =
    Cg.iterate
      ~on_iteration:(fun k -> if k = flip_at then inject ())
      (module O)
      ~max_iterations:(4 * clean_iterations)
      ~tolerance:p.Cg.tolerance
  in
  if Float.is_nan residual || not (residual <= p.Cg.tolerance) then Detected
  else begin
    let err = ref 0.0 in
    for i = 0 to n - 1 do
      err := Float.max !err (Float.abs (x.(i) -. xstar.(i)))
    done;
    if !err > 1e-5 then Sdc else Benign
  end

let cg_campaign ?(trials = 200) ?(seed = 91) p =
  let clean = Cg.run_untraced p in
  let clean_iterations = max 1 clean.Cg.iterations in
  let rng0 = Dvf_util.Rng.create p.Cg.seed in
  let xstar = Spd.known_solution rng0 p.Cg.n in
  List.map
    (fun structure ->
      let rng = Dvf_util.Rng.create (seed + Hashtbl.hash structure) in
      let outcomes =
        List.init trials (fun _ ->
            cg_trial p ~rng ~structure ~clean_iterations xstar)
      in
      tally structure outcomes)
    [ "A"; "x"; "p"; "r" ]

let to_table campaigns =
  let t =
    Dvf_util.Table.create ~title:"Fault-injection campaign"
      [
        ("structure", Dvf_util.Table.Left); ("trials", Dvf_util.Table.Right);
        ("benign", Dvf_util.Table.Right); ("SDC", Dvf_util.Table.Right);
        ("detected", Dvf_util.Table.Right); ("SDC rate", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun c ->
      Dvf_util.Table.add_row t
        [
          c.structure; string_of_int c.trials; string_of_int c.benign;
          string_of_int c.sdc; string_of_int c.detected;
          Printf.sprintf "%.2f" (sdc_rate c);
        ])
    campaigns;
  t

let rank_by_sdc campaigns =
  List.map
    (fun c -> c.structure)
    (List.sort
       (fun a b ->
         match compare b.sdc a.sdc with
         | 0 -> compare a.structure b.structure
         | c -> c)
       campaigns)
