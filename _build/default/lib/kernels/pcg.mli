(** Preconditioned Conjugate Gradient (paper Algorithm 5, §V-A).

    Solves the same SPD system as {!Cg} with a Jacobi preconditioner.  The
    paper's PCG carries "an auxiliary matrix M and an auxiliary vector z".
    Two storage modes are provided:

    - [`Vector] (default): M is the inverse diagonal, an O(n) structure.
      This is the mode that reproduces Fig. 6 — PCG's working set is only
      two vectors larger than CG's, so at large problem sizes its much
      smaller iteration count wins on both time and traffic, while at
      small sizes the extra structures make it slightly more vulnerable.
    - [`Dense_matrix]: M stored as an explicit dense n x n matrix applied
      by a full matrix–vector product.  Its O(n^2) footprint and traffic
      grow faster than the O(sqrt n) iteration gain, so PCG then {e never}
      wins — the ablation bench uses this mode to show how storage choices
      for the same algorithm invert the resilience conclusion. *)

type preconditioner = [ `Dense_matrix | `Vector ]

type params = {
  n : int;
  max_iterations : int;
  tolerance : float;
  seed : int;
  preconditioner : preconditioner;
}

val make_params :
  ?max_iterations:int -> ?tolerance:float -> ?seed:int ->
  ?preconditioner:preconditioner -> int -> params

val profiling : params
(** 800 x 800, matching {!Cg.profiling}. *)

type result = {
  iterations : int;
  residual : float;
  solution_error : float;
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
(** Traced structures: "A", "M", "x", "p", "r", "z" (8-byte elements).
    In [`Vector] mode M has n elements instead of n^2. *)

val run_untraced : params -> result

val spec : ?iterations:int -> params -> Access_patterns.App_spec.t
(** CGPMAC description of one PCG iteration (CG's order extended with the
    preconditioner solve and the z-vector phases). *)

val flop_count : iterations:int -> params -> int
