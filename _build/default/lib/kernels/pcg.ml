module Tracked = Memtrace.Tracked
module Ap = Access_patterns

type preconditioner = [ `Dense_matrix | `Vector ]

type params = {
  n : int;
  max_iterations : int;
  tolerance : float;
  seed : int;
  preconditioner : preconditioner;
}

let make_params ?(max_iterations = 15) ?(tolerance = 1e-10) ?(seed = 1)
    ?(preconditioner = `Vector) n =
  if n <= 1 then invalid_arg "Pcg.make_params: n <= 1";
  if max_iterations < 1 then invalid_arg "Pcg.make_params: max_iterations < 1";
  { n; max_iterations; tolerance; seed; preconditioner }

let profiling = make_params 800

type result = {
  iterations : int;
  residual : float;
  solution_error : float;
  flops : int;
}

let flop_count ~iterations p =
  let matvec = 2 * p.n * p.n in
  let precond =
    match p.preconditioner with
    | `Dense_matrix -> matvec
    | `Vector -> p.n
  in
  iterations * ((2 * matvec) + precond + (12 * p.n))

module type Ops = sig
  val n : int
  val a_row_dot_p : int -> float
  val apply_precond : unit -> unit (* z <- M^-1 r *)
  val get_x : int -> float
  val set_x : int -> float -> unit
  val get_p : int -> float
  val set_p : int -> float -> unit
  val get_r : int -> float
  val set_r : int -> float -> unit
  val get_z : int -> float
end

let pcg_loop (module O : Ops) ~max_iterations ~tolerance =
  let n = O.n in
  let iterations = ref 0 in
  (* z0 = M^-1 r0; p0 = z0. *)
  O.apply_precond ();
  for i = 0 to n - 1 do
    O.set_p i (O.get_z i)
  done;
  let rz = ref 0.0 in
  let rnorm = ref 0.0 in
  for i = 0 to n - 1 do
    rz := !rz +. (O.get_r i *. O.get_z i);
    let ri = O.get_r i in
    rnorm := !rnorm +. (ri *. ri)
  done;
  let continue_ = ref (sqrt !rnorm >= tolerance) in
  while !continue_ && !iterations < max_iterations do
    incr iterations;
    (* alpha = (r.z) / (p.(A p)) with the matvec streamed twice, mirroring
       the paper's CG structure. *)
    let den = ref 0.0 in
    for i = 0 to n - 1 do
      den := !den +. (O.get_p i *. O.a_row_dot_p i)
    done;
    let alpha = !rz /. !den in
    for i = 0 to n - 1 do
      O.set_x i (O.get_x i +. (alpha *. O.get_p i))
    done;
    for i = 0 to n - 1 do
      O.set_r i (O.get_r i -. (alpha *. O.a_row_dot_p i))
    done;
    let rn = ref 0.0 in
    for i = 0 to n - 1 do
      let ri = O.get_r i in
      rn := !rn +. (ri *. ri)
    done;
    if sqrt !rn < tolerance then continue_ := false
    else begin
      (* z <- M^-1 r; beta = (z.r)_new / (z.r)_old; p <- z + beta p. *)
      O.apply_precond ();
      let rz' = ref 0.0 in
      for i = 0 to n - 1 do
        rz' := !rz' +. (O.get_r i *. O.get_z i)
      done;
      let beta = !rz' /. !rz in
      rz := !rz';
      for i = 0 to n - 1 do
        O.set_p i (O.get_z i +. (beta *. O.get_p i))
      done
    end;
    rnorm := !rn
  done;
  (!iterations, sqrt !rnorm)

let finish p ~iterations ~residual ~x_get xstar =
  let err = ref 0.0 in
  for i = 0 to p.n - 1 do
    err := Float.max !err (abs_float (x_get i -. xstar.(i)))
  done;
  { iterations; residual; solution_error = !err; flops = flop_count ~iterations p }

let precond_elements p =
  match p.preconditioner with `Dense_matrix -> p.n * p.n | `Vector -> p.n

let run registry recorder p =
  let n = p.n in
  let rng = Dvf_util.Rng.create p.seed in
  let xstar = Spd.known_solution rng n in
  let b = Spd.rhs_of_solution n xstar in
  let a = Tracked.make registry recorder ~name:"A" ~elem_size:8 (n * n) 0.0 in
  Spd.fill_matrix n (fun i j v -> Tracked.set_silent a ((i * n) + j) v);
  let m =
    Tracked.make registry recorder ~name:"M" ~elem_size:8 (precond_elements p) 0.0
  in
  (match p.preconditioner with
  | `Dense_matrix ->
      for i = 0 to n - 1 do
        Tracked.set_silent m ((i * n) + i) (1.0 /. Spd.diagonal ~n i)
      done
  | `Vector ->
      for i = 0 to n - 1 do
        Tracked.set_silent m i (1.0 /. Spd.diagonal ~n i)
      done);
  let x = Tracked.make registry recorder ~name:"x" ~elem_size:8 n 0.0 in
  let pvec = Tracked.make registry recorder ~name:"p" ~elem_size:8 n 0.0 in
  let r = Tracked.init registry recorder ~name:"r" ~elem_size:8 n (fun i -> b.(i)) in
  let z = Tracked.make registry recorder ~name:"z" ~elem_size:8 n 0.0 in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := !acc +. (Tracked.get a ((i * n) + j) *. Tracked.get pvec j)
      done;
      !acc

    let apply_precond () =
      match p.preconditioner with
      | `Dense_matrix ->
          for i = 0 to n - 1 do
            let acc = ref 0.0 in
            for j = 0 to n - 1 do
              acc := !acc +. (Tracked.get m ((i * n) + j) *. Tracked.get r j)
            done;
            Tracked.set z i !acc
          done
      | `Vector ->
          for i = 0 to n - 1 do
            Tracked.set z i (Tracked.get m i *. Tracked.get r i)
          done

    let get_x = Tracked.get x
    let set_x = Tracked.set x
    let get_p = Tracked.get pvec
    let set_p = Tracked.set pvec
    let get_r = Tracked.get r
    let set_r = Tracked.set r
    let get_z = Tracked.get z
  end in
  let iterations, residual =
    pcg_loop (module O) ~max_iterations:p.max_iterations ~tolerance:p.tolerance
  in
  finish p ~iterations ~residual
    ~x_get:(fun i -> Tracked.get_silent x i)
    xstar

let run_untraced p =
  let n = p.n in
  let rng = Dvf_util.Rng.create p.seed in
  let xstar = Spd.known_solution rng n in
  let b = Spd.rhs_of_solution n xstar in
  let a = Array.make (n * n) 0.0 in
  Spd.fill_matrix n (fun i j v -> a.((i * n) + j) <- v);
  let minv_diag = Array.init n (fun i -> 1.0 /. Spd.diagonal ~n i) in
  let x = Array.make n 0.0 in
  let pvec = Array.make n 0.0 in
  let r = Array.copy b in
  let z = Array.make n 0.0 in
  let module O = struct
    let n = n

    let a_row_dot_p i =
      let acc = ref 0.0 in
      let base = i * n in
      for j = 0 to n - 1 do
        acc := !acc +. (a.(base + j) *. pvec.(j))
      done;
      !acc

    let apply_precond () =
      (* Numerically the dense and vector modes are identical (the dense
         M holds the inverse diagonal); only the traced traffic differs. *)
      for i = 0 to n - 1 do
        z.(i) <- minv_diag.(i) *. r.(i)
      done

    let get_x i = x.(i)
    let set_x i v = x.(i) <- v
    let get_p i = pvec.(i)
    let set_p i v = pvec.(i) <- v
    let get_r i = r.(i)
    let set_r i v = r.(i) <- v
    let get_z i = z.(i)
  end in
  let iterations, residual =
    pcg_loop (module O) ~max_iterations:p.max_iterations ~tolerance:p.tolerance
  in
  finish p ~iterations ~residual ~x_get:(fun i -> x.(i)) xstar

let spec ?iterations p =
  let iterations =
    match iterations with Some i -> max 1 i | None -> p.max_iterations
  in
  let n = p.n in
  let vec_bytes = 8 * n in
  let m_elements = precond_elements p in
  let structures =
    [
      { Ap.App_spec.name = "A"; bytes = 8 * n * n; pattern = None };
      { Ap.App_spec.name = "M"; bytes = 8 * m_elements; pattern = None };
      { Ap.App_spec.name = "x"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "p"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "r"; bytes = vec_bytes; pattern = None };
      { Ap.App_spec.name = "z"; bytes = vec_bytes; pattern = None };
    ]
  in
  let stream ?writeback ?(elements = n) name =
    Ap.Compose.occ name
      (Ap.Compose.Stream
         (Ap.Streaming.make ?writeback ~elem_size:8 ~elements ~stride:1 ()))
  in
  let a_phase =
    [ stream ~elements:(n * n) "A";
      Ap.Compose.occ ~times:n "p" Ap.Compose.Reuse_only ]
  in
  let m_phase =
    match p.preconditioner with
    | `Dense_matrix ->
        [ stream ~elements:(n * n) "M";
          Ap.Compose.occ ~times:n "r" Ap.Compose.Reuse_only;
          stream ~writeback:true "z" ]
    | `Vector -> [ stream "M"; stream "r"; stream ~writeback:true "z" ]
  in
  let order =
    [
      [ stream "r"; stream "z" ];            (* rho = r.z *)
      a_phase;                               (* p.(A p) *)
      [ stream ~writeback:true "x"; stream "p" ];
      a_phase;                               (* r update *)
      [ stream ~writeback:true "r" ];
      m_phase;                               (* z = M^-1 r *)
      [ stream "z"; stream "r" ];            (* beta *)
      [ stream ~writeback:true "p"; stream "z" ];
    ]
  in
  let composition =
    Ap.Compose.make
      ~structures:
        (List.map
           (fun (s : Ap.App_spec.structure) ->
             { Ap.Compose.name = s.Ap.App_spec.name; bytes = s.Ap.App_spec.bytes })
           structures)
      ~order ~iterations
  in
  Ap.App_spec.make ~app_name:"PCG" ~structures ~composition ()
