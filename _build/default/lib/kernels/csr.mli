(** Compressed-sparse-row matrices.

    Table II classifies CG as {e sparse} linear algebra (NPB CG operates
    on a random sparse matrix); {!Sparse_cg} builds on this
    representation.  Indices are [int]s but traced as 4-byte entries, the
    storage NPB uses. *)

type t = private {
  n : int;                (** square dimension *)
  row_ptr : int array;    (** length n+1, row_ptr.(0) = 0 *)
  col_idx : int array;    (** length nnz, column of each entry, sorted per row *)
  values : float array;   (** length nnz *)
}

val create :
  n:int -> row_ptr:int array -> col_idx:int array -> values:float array -> t
(** Validates monotone [row_ptr], matching lengths and in-range sorted
    column indices; raises [Invalid_argument] otherwise. *)

val nnz : t -> int

val laplacian_2d : int -> t
(** [laplacian_2d k] is the 5-point Laplacian on a k x k grid
    (n = k^2, SPD, ~5 nonzeros per row) — the standard sparse test
    problem. *)

val spd_tridiagonal : int -> t
(** The {!Spd} dense test system in CSR form (for cross-checking the
    sparse solver against the dense one). *)

val of_dense : int -> float array -> t
(** [of_dense n a] compresses a row-major dense matrix, dropping exact
    zeros. *)

val spmv : t -> float array -> float array -> unit
(** [spmv a x y] sets [y <- A x]; untraced reference implementation. *)

val to_dense : t -> float array
(** Row-major expansion, for tests. *)

val row_bounds : t -> int -> int * int
(** [(start, stop)] half-open range into [col_idx]/[values] for a row. *)
