(** Conjugate Gradient (paper Table II / Algorithm 4).

    Dense symmetric positive-definite system [A x = b] solved by the
    classic CG recurrence.  Following the paper's access-order string
    [r (A p) p (x p) (A p) r (r p)], the implementation performs {e two}
    matrix–vector products per iteration (for the alpha denominator and
    for the residual update) instead of keeping an auxiliary [q] vector —
    exactly four major data structures: A, x, p, r.

    The default system is a diagonally dominant dense SPD matrix (a
    shifted 1-D Laplacian plus small symmetric noise), for which CG
    converges in a problem-size-dependent number of iterations. *)

type params = {
  n : int;               (** unknowns; A is n x n doubles *)
  max_iterations : int;
  tolerance : float;     (** stop when ||r||_2 < tolerance *)
  seed : int;            (** matrix/rhs generator seed *)
}

val make_params :
  ?max_iterations:int -> ?tolerance:float -> ?seed:int -> int -> params

val verification : params
(** Table V: 500 x 500 double matrix. *)

val profiling : params
(** Table VI: 800 x 800 double matrix. *)

type result = {
  iterations : int;       (** CG iterations actually run *)
  residual : float;       (** final ||r||_2 *)
  solution_error : float; (** ||x - x*||_inf against the generator's known solution *)
  flops : int;
}

(** The storage interface the CG recurrence runs against; the dense and
    sparse ({!Sparse_cg}) kernels, traced and untraced, all share the one
    loop in {!iterate}. *)
module type Vector_ops = sig
  val n : int
  val a_row_dot_p : int -> float
  (** row i of A, dotted with p *)

  val get_x : int -> float
  val set_x : int -> float -> unit
  val get_p : int -> float
  val set_p : int -> float -> unit
  val get_r : int -> float
  val set_r : int -> float -> unit
end

val iterate :
  ?on_iteration:(int -> unit) -> (module Vector_ops) -> max_iterations:int ->
  tolerance:float -> int * float
(** Run the CG recurrence (the paper's two-matvec phase order); returns
    [(iterations, final residual norm)].  Assumes [x = 0] and
    [p = r = b] on entry.  [on_iteration k] fires before iteration [k]
    (1-based) — the fault injector's hook. *)

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
(** Solve with tracing: structures "A", "x", "p", "r" (8-byte elements). *)

val run_untraced : params -> result
(** Same computation without a trace (for iteration counting and the
    performance model). *)

val spec : ?iterations:int -> params -> Access_patterns.App_spec.t
(** CGPMAC description using the paper's access order; [iterations]
    defaults to the count measured by {!run_untraced} on small systems or
    [max_iterations] otherwise. *)

val flop_count : iterations:int -> params -> int
(** ~ [2 * (2 n^2) + 10 n] flops per iteration (two dense matvecs plus
    vector ops). *)
