(** Sparse Conjugate Gradient over CSR storage — NPB CG's actual shape
    (Table II files CG under {e sparse} linear algebra; the paper's own
    experiments substitute a dense matrix, which {!Cg} reproduces, so this
    module is the reproduction's faithful-to-NPB extension).

    Traced structures, mirroring NPB CG's arrays:
    - "a"      — nonzero values, 8-byte doubles, streamed per matvec;
    - "colidx" — column indices, 4-byte ints, streamed per matvec;
    - "rowstr" — row pointers, 4-byte ints, streamed per matvec;
    - "x", "p", "r" — 8-byte vectors; [p] is gathered through [colidx]
      inside the matvec (banded locality for the built-in Laplacian).

    The solver reuses {!Cg.iterate}, so its recurrence, phase order and
    iteration counts are shared with the dense kernel. *)

type problem = [ `Laplacian_2d of int | `Tridiagonal of int ]
(** [`Laplacian_2d k] is the 5-point operator on a k x k grid
    (n = k^2); [`Tridiagonal n] is the {!Spd} system in sparse form. *)

type params = {
  problem : problem;
  max_iterations : int;
  tolerance : float;
  seed : int;
}

val make_params :
  ?max_iterations:int -> ?tolerance:float -> ?seed:int -> problem -> params

val verification : params
(** 64 x 64 Laplacian grid (n = 4096, nnz ~ 20k): bounded trace size. *)

type result = {
  n : int;
  nnz : int;
  iterations : int;
  residual : float;
  solution_error : float;
  flops : int;
}

val run : Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
val run_untraced : params -> result

val spec : ?iterations:int -> params -> Access_patterns.App_spec.t
(** The paper's CG access order with sparse structures: per matvec phase,
    "a"/"colidx" stream their nnz entries, "rowstr" streams its n+1
    pointers, and "p" is re-touched once per row. *)
