(** Vector Multiplication (paper Table II / Algorithm 1).

    [C_i <- C_i + A_{i*ja} * B_{i*jb}] for [i = 0 .. n-1]: three structures
    A, B, C, all streaming, A and B with configurable strides.  The paper's
    homemade VM kernel uses an integer array; we trace 4-byte elements by
    default but the element size is a parameter. *)

type params = {
  n : int;            (** loop trip count (elements of C touched) *)
  stride_a : int;     (** A's stride in elements *)
  stride_b : int;
  elem_size : int;    (** traced element size in bytes *)
}

val make_params :
  ?stride_a:int -> ?stride_b:int -> ?elem_size:int -> int -> params
(** [make_params n] with strides defaulting to 4 and 1 (so A shows the
    larger-stride behaviour Fig. 5(a) discusses) and 4-byte elements. *)

val verification : params
(** Table V: 10^3-element integer array. *)

val profiling : params
(** Table VI: 10^5-element integer array. *)

type result = { checksum : float; flops : int }

val run :
  Memtrace.Region.t -> Memtrace.Recorder.t -> params -> result
(** Execute the kernel with tracing.  A is registered with
    [n * stride_a] elements (the strided traverse spans that extent),
    similarly B; C has [n] elements. *)

val spec : params -> Access_patterns.App_spec.t
(** The analytical CGPMAC description (three streaming structures). *)

val flop_count : params -> int
(** 2 flops (mul+add) per iteration — input for the performance model. *)
