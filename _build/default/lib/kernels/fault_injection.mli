(** Statistical fault injection — the baseline methodology the paper
    argues DVF replaces (§I, §VI: "researchers have to perform a large
    amount of fault injection operations, which is prohibitively
    expensive").

    We implement it anyway, as the comparator: campaigns flip one random
    bit in one random element of one data structure at a uniformly random
    point of the execution, run to completion, and classify the outcome.
    Across many trials this estimates each structure's empirical
    vulnerability, which can be checked against the DVF ranking (the
    bench's [inject] section does exactly that).

    Outcome classes, following the soft-error literature:
    - [Benign]   — the final output matches the clean run (the flipped
                   value was dead, overwritten, or corrected);
    - [Sdc]      — silent data corruption: the run "succeeds" but its
                   output is wrong;
    - [Detected] — the application itself notices (NaN/Inf in the output,
                   or an iterative solver failing to converge). *)

type outcome = Benign | Sdc | Detected

type campaign = {
  structure : string;
  trials : int;
  benign : int;
  sdc : int;
  detected : int;
}

val sdc_rate : campaign -> float
(** [sdc / trials] — the probability that a single strike on this
    structure silently corrupts the output. *)

val unsafe_rate : campaign -> float
(** [(sdc + detected) / trials]. *)

val flip_bit : float -> bit:int -> float
(** Flip one bit (0..63) of a double's IEEE-754 representation. *)

val vm_campaign :
  ?trials:int -> ?seed:int -> Vm.params -> campaign list
(** One campaign per VM structure (A, B, C): the flip lands before a
    uniformly random loop iteration; the corrupted product is compared
    against the clean checksum.  [trials] defaults to 400. *)

val cg_campaign :
  ?trials:int -> ?seed:int -> Cg.params -> campaign list
(** One campaign per CG structure (A, x, p, r): the flip lands at a
    uniformly random iteration boundary of a converging solve.
    [Detected] = the solver fails to reach its tolerance within an
    iteration headroom; [Sdc] = it converges to a wrong solution.
    [trials] defaults to 200. *)

val to_table : campaign list -> Dvf_util.Table.t

val rank_by_sdc : campaign list -> string list
(** Structure names by descending SDC count (ties broken by name). *)
