lib/cachesim/config.ml: Dvf_util Format
