lib/cachesim/cache.mli: Config Stats
