lib/cachesim/cache.ml: Array Config Stats
