lib/cachesim/stats.mli:
