lib/cachesim/config.mli: Format
