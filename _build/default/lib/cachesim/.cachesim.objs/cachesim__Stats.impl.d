lib/cachesim/stats.ml: Array List
