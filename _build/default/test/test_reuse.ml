module R = Access_patterns.Reuse
module D = Dvf_util.Dist
module M = Dvf_util.Maths

let cache = Cachesim.Config.small_verification (* CA=4, NA=64, CL=32 *)

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let allocs = [ (`Bernoulli, "bernoulli"); (`Uniform, "uniform") ]

let test_occupancy_zero_blocks () =
  List.iter
    (fun (alloc, name) ->
      let d = R.occupancy_dist ~alloc ~cache ~blocks:0 () in
      checkf (name ^ ": all mass at 0") 1.0 (D.prob d 0))
    allocs

let test_occupancy_normalizes () =
  List.iter
    (fun (alloc, name) ->
      List.iter
        (fun blocks ->
          let d = R.occupancy_dist ~alloc ~cache ~blocks () in
          checkf ~eps:1e-7
            (Printf.sprintf "%s blocks=%d" name blocks)
            1.0 (D.total_mass d))
        [ 1; 10; 64; 256; 1000 ])
    allocs

let test_occupancy_mean_small () =
  (* Below the associativity clamp, E = blocks / NA for both allocation
     models (binomial mean and even striping agree). *)
  let blocks = 32 in
  List.iter
    (fun (alloc, name) ->
      checkf ~eps:1e-3
        (name ^ ": mean ~ F/NA")
        (float_of_int blocks /. 64.0)
        (R.expected_occupancy ~alloc ~cache ~blocks ()))
    allocs

let test_occupancy_saturates_at_associativity () =
  List.iter
    (fun (alloc, name) ->
      checkf ~eps:1e-6 (name ^ ": saturated") 4.0
        (R.expected_occupancy ~alloc ~cache ~blocks:1_000_000 ()))
    allocs

let test_uniform_occupancy_exact () =
  (* 96 contiguous blocks over 64 sets: 32 sets hold 2, 32 hold 1. *)
  let d = R.occupancy_dist ~alloc:`Uniform ~cache ~blocks:96 () in
  checkf "P(1)" 0.5 (D.prob d 1);
  checkf "P(2)" 0.5 (D.prob d 2);
  checkf "mean" 1.5 (D.expectation d)

let test_bernoulli_has_variance_uniform_does_not () =
  let b = R.occupancy_dist ~alloc:`Bernoulli ~cache ~blocks:64 () in
  let u = R.occupancy_dist ~alloc:`Uniform ~cache ~blocks:64 () in
  Alcotest.(check bool) "bernoulli spreads" true (D.variance b > 0.1);
  checkf "uniform is deterministic" 0.0 (D.variance u)

let test_occupancy_monotone () =
  List.iter
    (fun (alloc, name) ->
      let prev = ref 0.0 in
      List.iter
        (fun blocks ->
          let e = R.expected_occupancy ~alloc ~cache ~blocks () in
          Alcotest.(check bool)
            (Printf.sprintf "%s monotone at %d" name blocks)
            true (e >= !prev -. 1e-9);
          prev := e)
        [ 0; 8; 32; 128; 256; 512; 2048 ])
    allocs

let test_no_interference_keeps_everything () =
  let misses =
    R.misses_per_reuse ~cache ~fa:32 ~fb:0 ~scenario:`Lru_protected ()
  in
  checkf "no misses when fitting alone" 0.0 misses

let test_self_overflow_misses () =
  (* A alone larger than the cache: even without interference reuse
     misses the overflow. *)
  let fa = 1024 (* 4x the 256-block cache *) in
  let misses = R.misses_per_reuse ~cache ~fa ~fb:0 ~scenario:`Lru_protected () in
  checkf "overflow misses" (float_of_int (fa - Cachesim.Config.blocks cache)) misses

let test_interference_increases_misses () =
  let m0 = R.misses_per_reuse ~cache ~fa:128 ~fb:0 ~scenario:`Lru_protected () in
  let m1 = R.misses_per_reuse ~cache ~fa:128 ~fb:128 ~scenario:`Lru_protected () in
  let m2 = R.misses_per_reuse ~cache ~fa:128 ~fb:512 ~scenario:`Lru_protected () in
  Alcotest.(check bool) "fb=128 no worse than fb=0" true (m1 >= m0);
  Alcotest.(check bool) "fb=512 worse than fb=128" true (m2 >= m1)

let test_survivor_dist_normalizes () =
  List.iter
    (fun (fa, fb, scenario) ->
      List.iter
        (fun (alloc, name) ->
          let d = R.survivor_dist ~alloc ~cache ~fa ~fb ~scenario () in
          checkf ~eps:1e-6
            (Printf.sprintf "%s fa=%d fb=%d" name fa fb)
            1.0 (D.total_mass d))
        allocs)
    [
      (10, 10, `Lru_protected); (10, 10, `Concurrent);
      (300, 300, `Lru_protected); (300, 300, `Concurrent);
      (0, 100, `Lru_protected); (100, 0, `Concurrent);
    ]

let test_lru_protected_vs_concurrent () =
  (* LRU protection (A just accessed) must leave at least as many
     survivors as uniform concurrent eviction. *)
  List.iter
    (fun (fa, fb) ->
      let protected_ =
        R.expected_survivors ~cache ~fa ~fb ~scenario:`Lru_protected ()
      in
      let concurrent =
        R.expected_survivors ~cache ~fa ~fb ~scenario:`Concurrent ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "fa=%d fb=%d: %.3f >= %.3f" fa fb protected_ concurrent)
        true
        (protected_ >= concurrent -. 1e-9))
    [ (64, 64); (128, 256); (256, 128); (500, 500) ]

let test_misses_bounded_by_fa () =
  List.iter
    (fun (fa, fb) ->
      let m = R.misses_per_reuse ~cache ~fa ~fb ~scenario:`Concurrent () in
      Alcotest.(check bool) "bounded" true (m >= 0.0 && m <= float_of_int fa))
    [ (0, 0); (1, 1000); (1000, 1); (256, 256); (5000, 5000) ]

let test_blocks_of_bytes () =
  Alcotest.(check int) "exact" 4 (R.blocks_of_bytes ~cache 128);
  Alcotest.(check int) "round up" 5 (R.blocks_of_bytes ~cache 129);
  Alcotest.(check int) "zero" 0 (R.blocks_of_bytes ~cache 0)

(* Cross-check of the survivor model against the LRU cache simulator:
   load A (contiguous), access B (contiguous), re-traverse A. *)
let simulate_reuse ~fa ~fb =
  let line = cache.Cachesim.Config.line in
  let c = Cachesim.Cache.create cache in
  for b = 0 to fa - 1 do
    Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(b * line) ~size:1
  done;
  let b_base = 1 lsl 24 in
  for b = 0 to fb - 1 do
    Cachesim.Cache.access c ~owner:2 ~write:false ~addr:(b_base + (b * line)) ~size:1
  done;
  let before = (Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1).Cachesim.Stats.misses in
  for b = 0 to fa - 1 do
    Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(b * line) ~size:1
  done;
  let after = (Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1).Cachesim.Stats.misses in
  after - before

let test_model_tracks_simulation () =
  List.iter
    (fun (fa, fb) ->
      let sim = float_of_int (simulate_reuse ~fa ~fb) in
      let model = R.misses_per_reuse ~cache ~fa ~fb ~scenario:`Lru_protected () in
      Alcotest.(check bool)
        (Printf.sprintf "fa=%d fb=%d: model %.0f sim %.0f" fa fb model sim)
        true
        (abs_float (model -. sim) <= 0.15 *. float_of_int (max fa 32)))
    [ (64, 256); (128, 128); (128, 512); (256, 256); (100, 50) ]

let prop_survivors_normalize =
  QCheck.Test.make ~count:100 ~name:"survivor dist normalizes"
    QCheck.(quad (int_range 0 2000) (int_range 0 2000) bool bool)
    (fun (fa, fb, protected_, bernoulli) ->
      let scenario = if protected_ then `Lru_protected else `Concurrent in
      let alloc = if bernoulli then `Bernoulli else `Uniform in
      let d = R.survivor_dist ~alloc ~cache ~fa ~fb ~scenario () in
      M.approx_equal ~eps:1e-6 1.0 (D.total_mass d))

let prop_misses_monotone_in_fb =
  QCheck.Test.make ~count:50 ~name:"misses monotone in interference"
    QCheck.(pair (int_range 1 500) (int_range 0 500))
    (fun (fa, fb) ->
      let m1 = R.misses_per_reuse ~cache ~fa ~fb ~scenario:`Lru_protected () in
      let m2 = R.misses_per_reuse ~cache ~fa ~fb:(fb + 64) ~scenario:`Lru_protected () in
      m2 >= m1 -. 1e-6)

let suite =
  [
    Alcotest.test_case "occupancy zero blocks" `Quick test_occupancy_zero_blocks;
    Alcotest.test_case "Eq.8 normalizes" `Quick test_occupancy_normalizes;
    Alcotest.test_case "Eq.9 mean small" `Quick test_occupancy_mean_small;
    Alcotest.test_case "occupancy saturates at CA" `Quick
      test_occupancy_saturates_at_associativity;
    Alcotest.test_case "uniform occupancy exact" `Quick
      test_uniform_occupancy_exact;
    Alcotest.test_case "bernoulli vs uniform variance" `Quick
      test_bernoulli_has_variance_uniform_does_not;
    Alcotest.test_case "occupancy monotone" `Quick test_occupancy_monotone;
    Alcotest.test_case "no interference" `Quick
      test_no_interference_keeps_everything;
    Alcotest.test_case "self overflow misses" `Quick test_self_overflow_misses;
    Alcotest.test_case "interference increases misses" `Quick
      test_interference_increases_misses;
    Alcotest.test_case "Eq.13-14 normalize" `Quick test_survivor_dist_normalizes;
    Alcotest.test_case "Eq.11 vs Eq.12 ordering" `Quick
      test_lru_protected_vs_concurrent;
    Alcotest.test_case "misses bounded by F_A" `Quick test_misses_bounded_by_fa;
    Alcotest.test_case "blocks_of_bytes" `Quick test_blocks_of_bytes;
    Alcotest.test_case "model tracks simulation" `Quick
      test_model_tracks_simulation;
    QCheck_alcotest.to_alcotest prop_survivors_normalize;
    QCheck_alcotest.to_alcotest prop_misses_monotone_in_fb;
  ]
