module F = Dvf_util.Fenwick

let test_empty () =
  let t = F.create 10 in
  Alcotest.(check int) "size" 10 (F.size t);
  Alcotest.(check int) "prefix" 0 (F.prefix_sum t 9);
  Alcotest.(check int) "total" 0 (F.total t)

let test_single_add () =
  let t = F.create 8 in
  F.add t 3 5;
  Alcotest.(check int) "before" 0 (F.prefix_sum t 2);
  Alcotest.(check int) "at" 5 (F.prefix_sum t 3);
  Alcotest.(check int) "after" 5 (F.prefix_sum t 7)

let test_range_sum () =
  let t = F.create 10 in
  for i = 0 to 9 do
    F.add t i (i + 1)
  done;
  Alcotest.(check int) "full" 55 (F.range_sum t ~lo:0 ~hi:9);
  Alcotest.(check int) "middle" (3 + 4 + 5) (F.range_sum t ~lo:2 ~hi:4);
  Alcotest.(check int) "empty range" 0 (F.range_sum t ~lo:5 ~hi:4);
  Alcotest.(check int) "single" 7 (F.range_sum t ~lo:6 ~hi:6)

let test_negative_delta () =
  let t = F.create 4 in
  F.add t 1 3;
  F.add t 1 (-3);
  Alcotest.(check int) "cancelled" 0 (F.total t)

let test_bounds () =
  let t = F.create 4 in
  Alcotest.check_raises "too large" (Invalid_argument "Fenwick.add: index out of range")
    (fun () -> F.add t 4 1);
  Alcotest.check_raises "negative" (Invalid_argument "Fenwick.add: index out of range")
    (fun () -> F.add t (-1) 1)

let test_prefix_clamps () =
  let t = F.create 4 in
  F.add t 0 2;
  Alcotest.(check int) "negative index" 0 (F.prefix_sum t (-1));
  Alcotest.(check int) "index beyond size" 2 (F.prefix_sum t 100)

let prop_matches_naive =
  QCheck.Test.make ~count:200 ~name:"fenwick matches naive prefix sums"
    QCheck.(list_of_size (Gen.int_range 1 50) (pair (int_range 0 49) (int_range (-5) 5)))
    (fun ops ->
      let n = 50 in
      let t = F.create n in
      let ref_arr = Array.make n 0 in
      List.iter
        (fun (i, d) ->
          F.add t i d;
          ref_arr.(i) <- ref_arr.(i) + d)
        ops;
      let ok = ref true in
      let acc = ref 0 in
      for i = 0 to n - 1 do
        acc := !acc + ref_arr.(i);
        if F.prefix_sum t i <> !acc then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "single add" `Quick test_single_add;
    Alcotest.test_case "range sum" `Quick test_range_sum;
    Alcotest.test_case "negative delta" `Quick test_negative_delta;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "prefix clamps" `Quick test_prefix_clamps;
    QCheck_alcotest.to_alcotest prop_matches_naive;
  ]
