test/test_fault_injection.ml: Alcotest Dvf_util Int64 Kernels List Printf String
