test/test_cachesim.ml: Alcotest Array Cachesim Dvf_util Gen List QCheck QCheck_alcotest
