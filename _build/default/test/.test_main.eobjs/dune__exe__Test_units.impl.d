test/test_units.ml: Alcotest Dvf_util Format List Printf
