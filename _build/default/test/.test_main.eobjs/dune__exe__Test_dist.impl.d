test/test_dist.ml: Alcotest Array Dvf_util Gen List Printf QCheck QCheck_alcotest
