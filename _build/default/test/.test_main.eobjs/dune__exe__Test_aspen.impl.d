test/test_aspen.ml: Access_patterns Alcotest Array Aspen Cachesim Dvf_util Format Kernels List Printf QCheck QCheck_alcotest String
