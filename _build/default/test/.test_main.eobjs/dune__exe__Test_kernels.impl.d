test/test_kernels.ml: Access_patterns Alcotest Array Cachesim Complex Dvf_util Float Kernels List Memtrace Printf
