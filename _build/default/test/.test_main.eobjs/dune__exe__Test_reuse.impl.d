test/test_reuse.ml: Access_patterns Alcotest Cachesim Dvf_util List Printf QCheck QCheck_alcotest
