test/test_ecc.ml: Alcotest Cachesim Core Dvf_util Kernels List Printf
