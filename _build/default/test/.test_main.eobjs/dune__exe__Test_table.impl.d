test/test_table.ml: Alcotest Dvf_util List String
