test/test_rng.ml: Alcotest Array Dvf_util Hashtbl Int64 Printf
