test/test_fenwick.ml: Alcotest Array Dvf_util Gen List QCheck QCheck_alcotest
