test/test_component.ml: Access_patterns Alcotest Cachesim Core Dvf_util Kernels List Memtrace Printf String
