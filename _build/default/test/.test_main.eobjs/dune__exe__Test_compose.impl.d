test/test_compose.ml: Access_patterns Alcotest Cachesim Dvf_util List Printf
