test/test_random_access.ml: Access_patterns Alcotest Array Cachesim Dvf_util Printf QCheck QCheck_alcotest
