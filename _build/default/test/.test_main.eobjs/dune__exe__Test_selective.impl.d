test/test_selective.ml: Alcotest Cachesim Core Dvf_util Kernels List Printf String
