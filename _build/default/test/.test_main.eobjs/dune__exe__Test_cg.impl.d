test/test_cg.ml: Access_patterns Alcotest Cachesim Dvf_util Kernels List Memtrace Printf
