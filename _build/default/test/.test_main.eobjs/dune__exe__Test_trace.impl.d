test/test_trace.ml: Alcotest Array Cachesim List Memtrace
