test/test_vm.ml: Access_patterns Alcotest Cachesim Dvf_util Kernels List Memtrace Printf
