test/test_maths.ml: Alcotest Array Dvf_util List Printf QCheck QCheck_alcotest
