test/test_core_misc.ml: Access_patterns Alcotest Cachesim Core Dvf_util Float List Printf String
