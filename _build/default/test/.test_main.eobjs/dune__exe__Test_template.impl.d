test/test_template.ml: Access_patterns Alcotest Array Cachesim Dvf_util Expr Gen Hashtbl List Printf QCheck QCheck_alcotest
