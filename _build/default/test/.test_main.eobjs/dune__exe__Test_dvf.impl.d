test/test_dvf.ml: Access_patterns Alcotest Cachesim Core Dvf_util Kernels List Printf QCheck QCheck_alcotest
