test/test_sparse.ml: Access_patterns Alcotest Array Cachesim Core Dvf_util Kernels List Memtrace Printf
