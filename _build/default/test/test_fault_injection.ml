module Fi = Kernels.Fault_injection

let test_flip_bit_involution () =
  List.iter
    (fun v ->
      for bit = 0 to 63 do
        let flipped = Fi.flip_bit v ~bit in
        Alcotest.(check bool)
          (Printf.sprintf "flip changes %g bit %d" v bit)
          true
          (Int64.bits_of_float flipped <> Int64.bits_of_float v);
        Alcotest.(check (float 0.0)) "involution" v (Fi.flip_bit flipped ~bit)
      done)
    [ 0.0; 1.0; -3.25; 1e300; 4.9e-324 ]

let test_flip_bit_bounds () =
  Alcotest.check_raises "bit 64"
    (Invalid_argument "Fault_injection.flip_bit: bit outside 0..63") (fun () ->
      ignore (Fi.flip_bit 1.0 ~bit:64))

let test_vm_campaign_accounting () =
  let p = Kernels.Vm.make_params 200 in
  let campaigns = Fi.vm_campaign ~trials:100 p in
  Alcotest.(check int) "three structures" 3 (List.length campaigns);
  List.iter
    (fun c ->
      Alcotest.(check int) "outcomes partition trials" c.Fi.trials
        (c.Fi.benign + c.Fi.sdc + c.Fi.detected);
      Alcotest.(check bool) "some benign, some not" true
        (c.Fi.benign > 0 && c.Fi.benign < c.Fi.trials))
    campaigns

let test_vm_campaign_deterministic () =
  let p = Kernels.Vm.make_params 100 in
  let a = Fi.vm_campaign ~trials:50 ~seed:7 p in
  let b = Fi.vm_campaign ~trials:50 ~seed:7 p in
  Alcotest.(check bool) "same counts" true (a = b)

let test_vm_output_structure_always_vulnerable () =
  (* C is the output: a surviving flip in C always lands in the result,
     while flips in A/B after their last read are dead.  So C's combined
     unsafe rate is the highest rate among the three. *)
  let p = Kernels.Vm.make_params 300 in
  let campaigns = Fi.vm_campaign ~trials:300 p in
  let rate name =
    Fi.unsafe_rate (List.find (fun c -> c.Fi.structure = name) campaigns)
  in
  Alcotest.(check bool)
    (Printf.sprintf "C %.2f >= A %.2f" (rate "C") (rate "A"))
    true
    (rate "C" >= rate "A" -. 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "C %.2f >= B %.2f" (rate "C") (rate "B"))
    true
    (rate "C" >= rate "B" -. 0.05)

let test_cg_campaign_accounting () =
  let p = Kernels.Cg.make_params ~max_iterations:200 ~tolerance:1e-9 60 in
  let campaigns = Fi.cg_campaign ~trials:60 p in
  Alcotest.(check int) "four structures" 4 (List.length campaigns);
  List.iter
    (fun c ->
      Alcotest.(check int) "partition" c.Fi.trials
        (c.Fi.benign + c.Fi.sdc + c.Fi.detected))
    campaigns

let test_cg_per_structure_physics () =
  (* The empirically observed per-strike behaviour of CG:
     - x accumulates: a flip lands directly in the final solution (the
       highest SDC rate);
     - r feeds the recurrence: flips either converge to a wrong solution
       or break convergence;
     - p is rebuilt from r every iteration (p = r + beta p): corruption
       shows up as non-convergence (detected), almost never silently;
     - A is heavily logically masked (a dense-stored tridiagonal system
       is mostly zeros; most single-bit perturbations shift the solution
       by less than the tolerance).
     The masking on A is exactly the application-semantics effect DVF's
     exposure-based metric abstracts away -- worth pinning down. *)
  let p = Kernels.Cg.make_params ~max_iterations:200 ~tolerance:1e-9 60 in
  let campaigns = Fi.cg_campaign ~trials:150 p in
  let by name = List.find (fun c -> c.Fi.structure = name) campaigns in
  let sdc name = Fi.sdc_rate (by name) in
  Alcotest.(check bool)
    (Printf.sprintf "x %.2f > r %.2f > A %.2f (SDC)" (sdc "x") (sdc "r") (sdc "A"))
    true
    (sdc "x" > sdc "r" && sdc "r" > sdc "A");
  Alcotest.(check bool) "p corruptions are detected, not silent" true
    ((by "p").Fi.detected > 0 && sdc "p" <= 0.02)

let test_rank_and_table () =
  let p = Kernels.Vm.make_params 100 in
  let campaigns = Fi.vm_campaign ~trials:50 p in
  Alcotest.(check int) "rank covers all" 3
    (List.length (Fi.rank_by_sdc campaigns));
  Alcotest.(check bool) "table renders" true
    (String.length (Dvf_util.Table.render (Fi.to_table campaigns)) > 100)

let suite =
  [
    Alcotest.test_case "flip_bit involution" `Quick test_flip_bit_involution;
    Alcotest.test_case "flip_bit bounds" `Quick test_flip_bit_bounds;
    Alcotest.test_case "VM campaign accounting" `Quick
      test_vm_campaign_accounting;
    Alcotest.test_case "VM campaign deterministic" `Quick
      test_vm_campaign_deterministic;
    Alcotest.test_case "VM output structure most exposed" `Slow
      test_vm_output_structure_always_vulnerable;
    Alcotest.test_case "CG campaign accounting" `Slow test_cg_campaign_accounting;
    Alcotest.test_case "CG per-structure physics" `Slow
      test_cg_per_structure_physics;
    Alcotest.test_case "rank and table" `Quick test_rank_and_table;
  ]
