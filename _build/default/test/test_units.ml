module U = Dvf_util.Units
module M = Dvf_util.Maths

let checkf ?(eps = 1e-12) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_byte_conversions () =
  Alcotest.(check int) "8KB" 8192 (U.bytes_of_kib 8);
  Alcotest.(check int) "4MB" 4194304 (U.bytes_of_mib 4)

let test_mbit () =
  (* 1e6 bytes = 8 Mbit (decimal). *)
  checkf "mbit" 8.0 (U.mbit_of_bytes 1_000_000);
  checkf "125000 bytes = 1 Mbit" 1.0 (U.mbit_of_bytes 125_000)

let test_hours () = checkf "hours" 1.0 (U.hours_of_seconds 3600.0)

let test_expected_errors () =
  (* FIT 5000, 1 hour, 1 Mbit => 5000 / 1e9 failures. *)
  checkf "N_error" (5000.0 /. 1.0e9)
    (U.expected_errors ~fit:5000.0 ~seconds:3600.0 ~bytes:125_000)

let test_expected_errors_scales_linearly () =
  let base = U.expected_errors ~fit:100.0 ~seconds:10.0 ~bytes:1000 in
  checkf "2x fit" (2.0 *. base)
    (U.expected_errors ~fit:200.0 ~seconds:10.0 ~bytes:1000);
  checkf "2x time" (2.0 *. base)
    (U.expected_errors ~fit:100.0 ~seconds:20.0 ~bytes:1000);
  checkf "2x size" (2.0 *. base)
    (U.expected_errors ~fit:100.0 ~seconds:10.0 ~bytes:2000)

let test_expected_errors_rejects_negative () =
  Alcotest.check_raises "negative fit"
    (Invalid_argument "Units.expected_errors: negative FIT") (fun () ->
      ignore (U.expected_errors ~fit:(-1.0) ~seconds:1.0 ~bytes:1))

let test_pp_bytes () =
  let s b = Format.asprintf "%a" U.pp_bytes b in
  Alcotest.(check string) "bytes" "100B" (s 100);
  Alcotest.(check string) "kb" "8KB" (s 8192);
  Alcotest.(check string) "mb" "4MB" (s 4194304);
  Alcotest.(check string) "odd" "1025B" (s 1025)

let test_parse_size () =
  Alcotest.(check (option int)) "plain" (Some 512) (U.parse_size "512");
  Alcotest.(check (option int)) "b" (Some 512) (U.parse_size "512B");
  Alcotest.(check (option int)) "kb" (Some 8192) (U.parse_size "8KB");
  Alcotest.(check (option int)) "kb lower" (Some 8192) (U.parse_size "8kb");
  Alcotest.(check (option int)) "mb" (Some 4194304) (U.parse_size "4MB");
  Alcotest.(check (option int)) "junk" None (U.parse_size "MB");
  Alcotest.(check (option int)) "bad suffix" None (U.parse_size "4XB")

let test_parse_render_roundtrip () =
  List.iter
    (fun b ->
      let s = Format.asprintf "%a" U.pp_bytes b in
      Alcotest.(check (option int)) ("roundtrip " ^ s) (Some b) (U.parse_size s))
    [ 1; 100; 1024; 8192; 4194304; 7; 123456 ]

let suite =
  [
    Alcotest.test_case "byte conversions" `Quick test_byte_conversions;
    Alcotest.test_case "mbit" `Quick test_mbit;
    Alcotest.test_case "hours" `Quick test_hours;
    Alcotest.test_case "expected errors" `Quick test_expected_errors;
    Alcotest.test_case "expected errors linear" `Quick
      test_expected_errors_scales_linearly;
    Alcotest.test_case "expected errors rejects negative" `Quick
      test_expected_errors_rejects_negative;
    Alcotest.test_case "pp_bytes" `Quick test_pp_bytes;
    Alcotest.test_case "parse_size" `Quick test_parse_size;
    Alcotest.test_case "parse/render roundtrip" `Quick
      test_parse_render_roundtrip;
  ]
