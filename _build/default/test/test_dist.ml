module D = Dvf_util.Dist
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_create_normalizes () =
  let d = D.create [| 1.0; 1.0; 2.0 |] in
  checkf "p0" 0.25 (D.prob d 0);
  checkf "p1" 0.25 (D.prob d 1);
  checkf "p2" 0.5 (D.prob d 2);
  checkf "mass" 1.0 (D.total_mass d)

let test_create_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.create: empty weight array")
    (fun () -> ignore (D.create [||]));
  Alcotest.check_raises "zero"
    (Invalid_argument "Dist.create: all weights zero") (fun () ->
      ignore (D.create [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.create: negative or NaN weight") (fun () ->
      ignore (D.create [| 1.0; -0.5 |]))

let test_point () =
  let d = D.point ~support:4 2 in
  checkf "mass at 2" 1.0 (D.prob d 2);
  checkf "expectation" 2.0 (D.expectation d);
  checkf "variance" 0.0 (D.variance d);
  Alcotest.(check int) "support" 4 (D.support d)

let test_prob_outside_support () =
  let d = D.point ~support:3 1 in
  checkf "below" 0.0 (D.prob d (-1));
  checkf "above" 0.0 (D.prob d 4)

let test_expectation_variance () =
  (* Uniform over {0,1,2,3}: mean 1.5, variance 1.25. *)
  let d = D.create [| 1.0; 1.0; 1.0; 1.0 |] in
  checkf "mean" 1.5 (D.expectation d);
  checkf "var" 1.25 (D.variance d)

let test_map_value () =
  let d = D.create [| 0.5; 0.0; 0.5 |] in
  let doubled = D.map_value (fun v -> 2 * v) d in
  (* 2*2 = 4 clamps onto support max = 2. *)
  checkf "p0" 0.5 (D.prob doubled 0);
  checkf "p2 (clamped)" 0.5 (D.prob doubled 2)

let test_clamp_upper () =
  let d = D.create [| 0.1; 0.2; 0.3; 0.4 |] in
  let c = D.clamp_upper 1 d in
  checkf "p0" 0.1 (D.prob c 0);
  checkf "p1 absorbs" 0.9 (D.prob c 1);
  checkf "p2 emptied" 0.0 (D.prob c 2)

let test_of_fun () =
  let d = D.of_fun ~support:2 (fun v -> float_of_int (v + 1)) in
  checkf "p2" 0.5 (D.prob d 2)

let prop_expectation_within_support =
  QCheck.Test.make ~count:200 ~name:"expectation lies within support"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 10.0))
    (fun weights ->
      QCheck.assume (List.exists (fun w -> w > 0.0) weights);
      let d = D.create (Array.of_list weights) in
      let e = D.expectation d in
      e >= 0.0 && e <= float_of_int (D.support d))

let prop_mass_one =
  QCheck.Test.make ~count:200 ~name:"total mass is one"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 10.0))
    (fun weights ->
      QCheck.assume (List.exists (fun w -> w > 0.0) weights);
      let d = D.create (Array.of_list weights) in
      M.approx_equal ~eps:1e-9 1.0 (D.total_mass d))

let prop_clamp_preserves_mass =
  QCheck.Test.make ~count:200 ~name:"clamp_upper preserves mass"
    QCheck.(pair (int_range 0 10) (list_of_size (Gen.int_range 1 12) (float_range 0.1 5.0)))
    (fun (hi, weights) ->
      let d = D.create (Array.of_list weights) in
      M.approx_equal ~eps:1e-9 1.0 (D.total_mass (D.clamp_upper hi d)))

let suite =
  [
    Alcotest.test_case "create normalizes" `Quick test_create_normalizes;
    Alcotest.test_case "create rejects bad input" `Quick
      test_create_rejects_bad_input;
    Alcotest.test_case "point mass" `Quick test_point;
    Alcotest.test_case "prob outside support" `Quick test_prob_outside_support;
    Alcotest.test_case "expectation and variance" `Quick
      test_expectation_variance;
    Alcotest.test_case "map_value clamps" `Quick test_map_value;
    Alcotest.test_case "clamp_upper" `Quick test_clamp_upper;
    Alcotest.test_case "of_fun" `Quick test_of_fun;
    QCheck_alcotest.to_alcotest prop_expectation_within_support;
    QCheck_alcotest.to_alcotest prop_mass_one;
    QCheck_alcotest.to_alcotest prop_clamp_preserves_mass;
  ]
