module S = Access_patterns.Streaming
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_nonalignment_probability () =
  (* Eq. 3. *)
  checkf "E=8 CL=32" (7.0 /. 32.0) (S.nonalignment_probability ~elem_size:8 ~line:32);
  checkf "E=32 CL=32" (31.0 /. 32.0) (S.nonalignment_probability ~elem_size:32 ~line:32);
  checkf "E=33 CL=32" 0.0 (S.nonalignment_probability ~elem_size:33 ~line:32);
  checkf "E=1 CL=32" 0.0 (S.nonalignment_probability ~elem_size:1 ~line:32)

let test_accesses_per_element () =
  (* Eq. 4 (ceil-corrected): AE = ceil(E/CL) + p. *)
  checkf "E=64 CL=32" (2.0 +. (31.0 /. 32.0)) (S.accesses_per_element ~elem_size:64 ~line:32);
  checkf "E=32 CL=32" (1.0 +. (31.0 /. 32.0)) (S.accesses_per_element ~elem_size:32 ~line:32);
  (* Non-dividing element size: a 47-byte element spans 2 or 3 32-byte
     lines (the paper's floor form would claim 1 or 2). *)
  checkf "E=47 CL=32" (2.0 +. (14.0 /. 32.0)) (S.accesses_per_element ~elem_size:47 ~line:32);
  checkf "E=8 CL=32" (1.0 +. (7.0 /. 32.0)) (S.accesses_per_element ~elem_size:8 ~line:32)

let test_case1_strided_large_elements () =
  (* CL <= E, S > E: accesses = ceil(D/S) * AE. *)
  let t = S.make ~elem_size:64 ~elements:100 ~stride:2 () in
  let line = 32 in
  let d = 6400 and s = 128 in
  let ae = S.accesses_per_element ~elem_size:64 ~line in
  checkf "case 1 strided"
    (float_of_int (M.cdiv d s) *. ae)
    (S.main_memory_accesses ~line t)

let test_case1_unit_stride () =
  (* CL <= E, S = E: accesses = ceil(D/CL). *)
  let t = S.make ~elem_size:64 ~elements:100 ~stride:1 () in
  checkf "case 1 unit" (float_of_int (M.cdiv 6400 32))
    (S.main_memory_accesses ~line:32 t)

let test_case2 () =
  (* E < CL <= S: ceil(D/S) * (1 + p). *)
  let t = S.make ~elem_size:8 ~elements:200 ~stride:4 () in
  (* D = 1600, S = 32 bytes, CL = 32 = S. *)
  let p = S.nonalignment_probability ~elem_size:8 ~line:32 in
  checkf "case 2" (float_of_int (M.cdiv 1600 32) *. (1.0 +. p))
    (S.main_memory_accesses ~line:32 t)

let test_case3 () =
  (* S < CL: ceil(D/CL). *)
  let t = S.make ~elem_size:4 ~elements:1000 ~stride:4 () in
  (* S = 16 bytes < CL = 32. *)
  checkf "case 3" (float_of_int (M.cdiv 4000 32))
    (S.main_memory_accesses ~line:32 t)

let test_empty_structure () =
  let t = S.make ~elem_size:8 ~elements:0 ~stride:1 () in
  checkf "empty" 0.0 (S.main_memory_accesses ~line:32 t)

let test_writeback_doubles () =
  let base = S.make ~elem_size:4 ~elements:1000 ~stride:1 () in
  let wb = S.make ~writeback:true ~elem_size:4 ~elements:1000 ~stride:1 () in
  checkf "writeback doubles"
    (2.0 *. S.main_memory_accesses ~line:32 base)
    (S.main_memory_accesses ~line:32 wb)

let test_validation () =
  Alcotest.check_raises "bad elem" (Invalid_argument "Streaming.make: elem_size <= 0")
    (fun () -> ignore (S.make ~elem_size:0 ~elements:1 ~stride:1 ()));
  Alcotest.check_raises "bad stride" (Invalid_argument "Streaming.make: stride <= 0")
    (fun () -> ignore (S.make ~elem_size:1 ~elements:1 ~stride:0 ()))

(* Simulate an aligned streaming traverse through the cache simulator and
   compare.  Our simulated base is line-aligned, so the model's alignment
   term p can make it differ by at most one line per visited element. *)
let simulate_streaming ~cache t =
  let c = Cachesim.Cache.create cache in
  let visited = S.touched_elements t in
  let sbytes = S.stride_bytes t in
  for i = 0 to visited - 1 do
    Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(i * sbytes)
      ~size:t.S.elem_size
  done;
  let stats = Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1 in
  float_of_int stats.Cachesim.Stats.misses

let test_model_close_to_simulation () =
  List.iter
    (fun (e, n, s) ->
      let t = S.make ~elem_size:e ~elements:n ~stride:s () in
      let cache = Cachesim.Config.small_verification in
      let sim = simulate_streaming ~cache t in
      let model = S.main_memory_accesses ~line:cache.Cachesim.Config.line t in
      let slack = float_of_int (S.touched_elements t) +. 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "E=%d N=%d S=%d: model %.1f sim %.1f" e n s model sim)
        true
        (abs_float (model -. sim) <= slack))
    [ (4, 1000, 1); (4, 1000, 4); (8, 500, 2); (64, 100, 1); (64, 100, 2);
      (16, 300, 3); (32, 128, 1); (128, 64, 1) ]

let prop_model_vs_simulation =
  QCheck.Test.make ~count:100 ~name:"streaming model within a line/element of LRU sim"
    QCheck.(triple (int_range 1 128) (int_range 1 2000) (int_range 1 8))
    (fun (e, n, s) ->
      let t = S.make ~elem_size:e ~elements:n ~stride:s () in
      let cache = Cachesim.Config.small_verification in
      let sim = simulate_streaming ~cache t in
      let model = S.main_memory_accesses ~line:cache.Cachesim.Config.line t in
      abs_float (model -. sim) <= float_of_int (S.touched_elements t) +. 2.0)

let prop_monotone_in_elements =
  QCheck.Test.make ~count:100 ~name:"streaming accesses monotone in N"
    QCheck.(triple (int_range 1 64) (int_range 1 1000) (int_range 1 8))
    (fun (e, n, s) ->
      let t1 = S.make ~elem_size:e ~elements:n ~stride:s () in
      let t2 = S.make ~elem_size:e ~elements:(2 * n) ~stride:s () in
      S.main_memory_accesses ~line:32 t2 >= S.main_memory_accesses ~line:32 t1)

let suite =
  [
    Alcotest.test_case "Eq.3 nonalignment probability" `Quick
      test_nonalignment_probability;
    Alcotest.test_case "Eq.4 accesses per element" `Quick
      test_accesses_per_element;
    Alcotest.test_case "case 1 strided" `Quick test_case1_strided_large_elements;
    Alcotest.test_case "case 1 unit stride" `Quick test_case1_unit_stride;
    Alcotest.test_case "case 2" `Quick test_case2;
    Alcotest.test_case "case 3" `Quick test_case3;
    Alcotest.test_case "empty structure" `Quick test_empty_structure;
    Alcotest.test_case "writeback doubles" `Quick test_writeback_doubles;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "model close to simulation" `Quick
      test_model_close_to_simulation;
    QCheck_alcotest.to_alcotest prop_model_vs_simulation;
    QCheck_alcotest.to_alcotest prop_monotone_in_elements;
  ]
