module T = Access_patterns.Template
module L = Access_patterns.Template_lang

let small_cache = Cachesim.Config.small_verification (* 256 blocks of 32 B *)

(* --- Template (block-trace algorithm) --- *)

let test_first_touch_counts () =
  (* All-distinct trace: every access is a compulsory miss. *)
  let misses = T.misses_on_blocks ~capacity:4 ~distance:`Stack [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "compulsory" 5 misses

let test_reuse_within_capacity_hits () =
  (* Re-touch within capacity: second round all hits with capacity 3. *)
  let misses = T.misses_on_blocks ~capacity:3 ~distance:`Stack [| 1; 2; 3; 1; 2; 3 |] in
  Alcotest.(check int) "3 cold only" 3 misses

let test_reuse_beyond_capacity_misses () =
  (* Cyclic sweep over 4 blocks with capacity 3 thrashes: every access
     misses (the classic LRU worst case). *)
  let trace = Array.init 12 (fun i -> i mod 4) in
  let misses = T.misses_on_blocks ~capacity:3 ~distance:`Stack trace in
  Alcotest.(check int) "all miss" 12 misses

let test_stack_distance_ignores_duplicates () =
  (* 1 2 2 2 1: raw distance of the final 1 is 3, but only one distinct
     block intervenes, so with capacity 2 it hits under `Stack and misses
     under `Raw. *)
  let trace = [| 1; 2; 2; 2; 1 |] in
  Alcotest.(check int) "stack" 2 (T.misses_on_blocks ~capacity:2 ~distance:`Stack trace);
  Alcotest.(check int) "raw" 3 (T.misses_on_blocks ~capacity:2 ~distance:`Raw trace)

let test_empty_trace () =
  Alcotest.(check int) "empty" 0 (T.misses_on_blocks ~capacity:4 ~distance:`Stack [||])

let test_block_trace_lowering () =
  (* 16-byte elements over 32-byte lines: elements 0,1 share block 0;
     element 2 is in block 1. *)
  let t = T.make ~elem_size:16 [| 0; 1; 2 |] in
  Alcotest.(check (array int)) "blocks" [| 0; 0; 1 |]
    (fst (T.block_trace ~line:32 t));
  (* 64-byte elements span two 32-byte lines each; write flags follow the
     element. *)
  let t2 = T.make ~writes:[| false; true |] ~elem_size:64 [| 0; 1 |] in
  let blocks, writes = T.block_trace ~line:32 t2 in
  Alcotest.(check (array int)) "spanning" [| 0; 1; 2; 3 |] blocks;
  Alcotest.(check (array bool)) "write flags" [| false; false; true; true |] writes

let test_available_blocks_ratio () =
  let t = T.make ~cache_ratio:0.5 ~elem_size:8 [| 0 |] in
  Alcotest.(check int) "half the cache" 128 (T.available_blocks ~cache:small_cache t)

(* Compare the template model against the cache simulator on the same
   reference stream.  The model is fully associative; with a trace confined
   to few blocks per set the LRU simulation agrees closely. *)
let simulate_elements ~cache ~elem_size refs =
  let c = Cachesim.Cache.create cache in
  Array.iter
    (fun e ->
      Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(e * elem_size)
        ~size:elem_size)
    refs;
  let s = Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1 in
  s.Cachesim.Stats.misses

let test_model_matches_simulation_sequential () =
  (* Repeated sweep over a structure larger than the cache. *)
  let n = 600 (* 600 * 32 B = 18.75 KB > 8 KB *) in
  let refs = Array.init (3 * n) (fun i -> i mod n) in
  let t = T.make ~elem_size:32 refs in
  let model = T.main_memory_accesses ~cache:small_cache t in
  let sim = simulate_elements ~cache:small_cache ~elem_size:32 refs in
  let err = Dvf_util.Maths.rel_error ~expected:(float_of_int sim) ~actual:model in
  Alcotest.(check bool)
    (Printf.sprintf "model %.0f vs sim %d (err %.1f%%)" model sim (100.0 *. err))
    true (err <= 0.15)

let test_model_matches_simulation_small_working_set () =
  (* Working set fits: model and simulation must both report only cold
     misses. *)
  let n = 100 in
  let refs = Array.init (5 * n) (fun i -> i mod n) in
  let t = T.make ~elem_size:32 refs in
  let model = T.main_memory_accesses ~cache:small_cache t in
  let sim = simulate_elements ~cache:small_cache ~elem_size:32 refs in
  Alcotest.(check int) "sim cold only" n sim;
  Alcotest.(check (float 0.5)) "model cold only" (float_of_int n) model

(* --- Template_lang --- *)

let test_linearize_row_major () =
  (* Paper: R(i,j,k) = i*n2*n1 + j*n1 + k with shape [n3; n2; n1]. *)
  let shape = [ 8; 6; 4 ] in
  Alcotest.(check int) "R(2,1,1)" ((2 * 6 * 4) + (1 * 4) + 1)
    (L.linearize ~shape [ 2; 1; 1 ]);
  Alcotest.(check int) "origin" 0 (L.linearize ~shape [ 0; 0; 0 ])

let test_linearize_rank_mismatch () =
  Alcotest.check_raises "rank" (Invalid_argument "Template_lang.linearize: rank mismatch")
    (fun () -> ignore (L.linearize ~shape:[ 2; 2 ] [ 1 ]))

let test_expand_refs () =
  let open L in
  let g = Refs [ [ Expr.Int 3 ]; [ Expr.Int 1 ]; [ Expr.Int 4 ] ] in
  Alcotest.(check (array int)) "literal refs" [| 3; 1; 4 |]
    (expand ~env:[] ~shape:[ Expr.Int 10 ] g)

let test_expand_range_mg_style () =
  (* Two streams advancing by 1 from (0,0) and (0,2) to (0,3) and (0,5) in
     a 4x8 grid: stream offsets 0->3 and 2->5, interleaved round-robin. *)
  let open L in
  let shape = [ Expr.Var "n2"; Expr.Var "n1" ] in
  let env = [ ("n2", 4); ("n1", 8) ] in
  let g =
    Range
      {
        start = [ [ Expr.Int 0; Expr.Int 0 ]; [ Expr.Int 0; Expr.Int 2 ] ];
        step = Expr.Int 1;
        stop = [ [ Expr.Int 0; Expr.Int 3 ]; [ Expr.Int 0; Expr.Int 5 ] ];
      }
  in
  Alcotest.(check (array int)) "interleaved"
    [| 0; 2; 1; 3; 2; 4; 3; 5 |]
    (expand ~env ~shape g)

let test_expand_range_with_dim_exprs () =
  (* Stop expressed through dimension variables, like the paper's
     R(n3-1, n2-2, n1). *)
  let open L in
  let shape = [ Expr.Var "n"; Expr.Var "n" ] in
  let env = [ ("n", 4) ] in
  let g =
    Range
      {
        start = [ [ Expr.Int 0; Expr.Int 0 ] ];
        step = Expr.Int 1;
        stop = [ [ Expr.Sub (Expr.Var "n", Expr.Int 1); Expr.Sub (Expr.Var "n", Expr.Int 1) ] ];
      }
  in
  let out = expand ~env ~shape g in
  Alcotest.(check int) "covers the grid" 16 (Array.length out);
  Alcotest.(check int) "last" 15 out.(15)

let test_expand_pass () =
  let open L in
  let g = Pass { start = Expr.Int 2; count = Expr.Int 4; stride = Expr.Int 3 } in
  Alcotest.(check (array int)) "pass" [| 2; 5; 8; 11 |]
    (expand ~env:[] ~shape:[ Expr.Int 100 ] g)

let test_expand_repeat_seq () =
  let open L in
  let g =
    Repeat
      ( Expr.Int 2,
        [ Pass { start = Expr.Int 0; count = Expr.Int 2; stride = Expr.Int 1 } ] )
  in
  Alcotest.(check (array int)) "repeat" [| 0; 1; 0; 1 |]
    (expand ~env:[] ~shape:[ Expr.Int 10 ] g);
  let s = Seq [ g; Refs [ [ Expr.Int 9 ] ] ] in
  Alcotest.(check (array int)) "seq" [| 0; 1; 0; 1; 9 |]
    (expand ~env:[] ~shape:[ Expr.Int 10 ] s)

let test_expansion_length_agrees () =
  let open L in
  let g =
    Seq
      [
        Pass { start = Expr.Int 0; count = Expr.Int 7; stride = Expr.Int 2 };
        Repeat (Expr.Int 3, [ Refs [ [ Expr.Int 1 ]; [ Expr.Int 2 ] ] ]);
      ]
  in
  let shape = [ Expr.Int 100 ] in
  Alcotest.(check int) "length"
    (Array.length (expand ~env:[] ~shape g))
    (expansion_length ~env:[] ~shape g)

let test_range_errors () =
  let open L in
  let shape = [ Expr.Int 100 ] in
  Alcotest.check_raises "zero step" (Failure "Template_lang: range step is zero")
    (fun () ->
      ignore
        (expand ~env:[] ~shape
           (Range { start = [ [ Expr.Int 0 ] ]; step = Expr.Int 0; stop = [ [ Expr.Int 5 ] ] })));
  (* Unequal stream spans: the sweep stops when the first stream reaches
     its boundary (6 iterations here). *)
  Alcotest.(check int) "min span wins" 12
    (Array.length
       (expand ~env:[] ~shape
          (Range
             {
               start = [ [ Expr.Int 0 ]; [ Expr.Int 0 ] ];
               step = Expr.Int 1;
               stop = [ [ Expr.Int 5 ]; [ Expr.Int 7 ] ];
             })));
  Alcotest.check_raises "unbound var"
    (Failure "Template_lang: unbound dimension variable zz") (fun () ->
      ignore (expand ~env:[] ~shape (Refs [ [ Expr.Var "zz" ] ])))

(* Property: template-model misses never exceed trace length and never go
   below the distinct block count. *)
let prop_miss_bounds =
  QCheck.Test.make ~count:200 ~name:"template misses bounded"
    QCheck.(pair (int_range 1 64) (list_of_size (Gen.int_range 1 300) (int_range 0 63)))
    (fun (capacity, refs) ->
      let trace = Array.of_list refs in
      let distinct = Hashtbl.create 16 in
      Array.iter (fun b -> Hashtbl.replace distinct b ()) trace;
      let m = T.misses_on_blocks ~capacity ~distance:`Stack trace in
      m >= Hashtbl.length distinct && m <= Array.length trace)

(* Property: the stack-distance model agrees exactly with a
   fully-associative LRU simulation. *)
let prop_stack_matches_fully_associative_lru =
  QCheck.Test.make ~count:200 ~name:"stack model = fully-associative LRU"
    QCheck.(pair (int_range 1 16) (list_of_size (Gen.int_range 1 300) (int_range 0 40)))
    (fun (capacity, refs) ->
      let trace = Array.of_list refs in
      (* Reference fully-associative LRU. *)
      let lru = ref [] in
      let misses = ref 0 in
      Array.iter
        (fun b ->
          if List.mem b !lru then lru := b :: List.filter (fun x -> x <> b) !lru
          else begin
            incr misses;
            let kept = b :: !lru in
            lru :=
              (if List.length kept > capacity then
                 List.filteri (fun i _ -> i < capacity) kept
               else kept)
          end)
        trace;
      T.misses_on_blocks ~capacity ~distance:`Stack trace = !misses)

(* Reference fully-associative LRU with dirty bits, for the writeback
   accounting. *)
let reference_lru_with_writebacks ~capacity trace writes =
  let lru = ref [] (* (block, dirty), MRU first *) in
  let misses = ref 0 and writebacks = ref 0 in
  Array.iteri
    (fun i b ->
      let w = writes.(i) in
      match List.assoc_opt b !lru with
      | Some dirty ->
          lru := (b, dirty || w) :: List.remove_assoc b !lru
      | None ->
          incr misses;
          let kept = (b, w) :: !lru in
          if List.length kept > capacity then begin
            let rec split acc = function
              | [ (_, dirty) ] ->
                  if dirty then incr writebacks;
                  List.rev acc
              | x :: rest -> split (x :: acc) rest
              | [] -> assert false
            in
            lru := split [] kept
          end
          else lru := kept)
    trace;
  List.iter (fun (_, dirty) -> if dirty then incr writebacks) !lru;
  (!misses, !writebacks)

let prop_writebacks_match_reference =
  QCheck.Test.make ~count:200 ~name:"template writebacks = LRU reference"
    QCheck.(
      pair (int_range 1 12)
        (list_of_size (Gen.int_range 1 200) (pair (int_range 0 30) bool)))
    (fun (capacity, ops) ->
      let trace = Array.of_list (List.map fst ops) in
      let writes = Array.of_list (List.map snd ops) in
      let expected = reference_lru_with_writebacks ~capacity trace writes in
      let got =
        T.accesses_on_blocks ~capacity ~distance:`Stack ~writes:(Some writes)
          trace
      in
      got = expected)

let suite =
  [
    Alcotest.test_case "first touch counts" `Quick test_first_touch_counts;
    Alcotest.test_case "reuse within capacity hits" `Quick
      test_reuse_within_capacity_hits;
    Alcotest.test_case "reuse beyond capacity misses" `Quick
      test_reuse_beyond_capacity_misses;
    Alcotest.test_case "stack vs raw distance" `Quick
      test_stack_distance_ignores_duplicates;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    Alcotest.test_case "block lowering" `Quick test_block_trace_lowering;
    Alcotest.test_case "available blocks ratio" `Quick
      test_available_blocks_ratio;
    Alcotest.test_case "model vs simulation (thrash)" `Quick
      test_model_matches_simulation_sequential;
    Alcotest.test_case "model vs simulation (resident)" `Quick
      test_model_matches_simulation_small_working_set;
    Alcotest.test_case "linearize row major" `Quick test_linearize_row_major;
    Alcotest.test_case "linearize rank mismatch" `Quick
      test_linearize_rank_mismatch;
    Alcotest.test_case "expand literal refs" `Quick test_expand_refs;
    Alcotest.test_case "expand MG-style range" `Quick test_expand_range_mg_style;
    Alcotest.test_case "expand range with dims" `Quick
      test_expand_range_with_dim_exprs;
    Alcotest.test_case "expand pass" `Quick test_expand_pass;
    Alcotest.test_case "expand repeat/seq" `Quick test_expand_repeat_seq;
    Alcotest.test_case "expansion length agrees" `Quick
      test_expansion_length_agrees;
    Alcotest.test_case "range errors" `Quick test_range_errors;
    QCheck_alcotest.to_alcotest prop_miss_bounds;
    QCheck_alcotest.to_alcotest prop_stack_matches_fully_associative_lru;
    QCheck_alcotest.to_alcotest prop_writebacks_match_reference;
  ]
