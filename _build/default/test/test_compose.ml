module C = Access_patterns.Compose
module S = Access_patterns.Streaming

let cache = Cachesim.Config.small_verification

let stream_occ name elements =
  C.occ name (C.Stream (S.make ~elem_size:8 ~elements ~stride:1 ()))

let test_validation () =
  Alcotest.check_raises "undeclared"
    (Invalid_argument "Compose.make: occurrence of undeclared structure x")
    (fun () ->
      ignore
        (C.make
           ~structures:[ { C.name = "a"; bytes = 80 } ]
           ~order:[ [ stream_occ "x" 10 ] ]
           ~iterations:1));
  Alcotest.check_raises "iterations" (Invalid_argument "Compose.make: iterations < 1")
    (fun () ->
      ignore
        (C.make
           ~structures:[ { C.name = "a"; bytes = 80 } ]
           ~order:[ [ stream_occ "a" 10 ] ]
           ~iterations:0))

let test_single_structure_single_phase () =
  (* One small structure swept once per iteration: cold cost on iteration
     1, then it stays resident — reuse cost ~0. *)
  let t =
    C.make
      ~structures:[ { C.name = "a"; bytes = 800 } ]
      ~order:[ [ stream_occ "a" 100 ] ]
      ~iterations:10
  in
  let costs = C.main_memory_accesses ~cache t in
  let a = List.assoc "a" costs in
  let cold = float_of_int (Dvf_util.Maths.cdiv 800 32) in
  Alcotest.(check bool)
    (Printf.sprintf "a=%.1f close to cold %.1f" a cold)
    true
    (a >= cold && a <= cold *. 1.5)

let test_thrashing_structures () =
  (* Two structures that together exceed the cache, alternating: each
     reuse pays. 600 blocks each in a 256-block cache. *)
  let bytes = 600 * 32 in
  let t =
    C.make
      ~structures:[ { C.name = "a"; bytes }; { C.name = "b"; bytes } ]
      ~order:[ [ stream_occ "a" (600 * 4) ]; [ stream_occ "b" (600 * 4) ] ]
      ~iterations:10
  in
  let costs = C.main_memory_accesses ~cache t in
  let a = List.assoc "a" costs in
  let cold = 600.0 in
  Alcotest.(check bool)
    (Printf.sprintf "a=%.0f should thrash well beyond cold %.0f" a cold)
    true
    (a > 3.0 *. cold)

let test_iterations_scale () =
  let mk iters =
    C.make
      ~structures:
        [ { C.name = "a"; bytes = 600 * 32 }; { C.name = "b"; bytes = 600 * 32 } ]
      ~order:[ [ stream_occ "a" 2400 ]; [ stream_occ "b" 2400 ] ]
      ~iterations:iters
  in
  let total_10 = C.total ~cache (mk 10) in
  let total_20 = C.total ~cache (mk 20) in
  (* Steady-state per-iteration cost is constant: doubling iterations
     roughly doubles total minus the cold part. *)
  Alcotest.(check bool)
    (Printf.sprintf "10 iters %.0f < 20 iters %.0f < 2.2x" total_10 total_20)
    true
    (total_20 > total_10 && total_20 < 2.2 *. total_10)

let test_footprint_blocks () =
  let t =
    C.make
      ~structures:[ { C.name = "a"; bytes = 3200 } ]
      ~order:[ [ stream_occ "a" 100 ] ]
      ~iterations:1
  in
  (* 100 8-byte elements unit stride = 800 bytes = 25 lines of 32 B. *)
  Alcotest.(check int) "footprint" 25 (C.footprint_blocks ~cache t "a")

let test_reuse_only_occurrence () =
  let t =
    C.make
      ~structures:[ { C.name = "a"; bytes = 3200 } ]
      ~order:[ [ C.occ "a" C.Reuse_only ] ]
      ~iterations:5
  in
  let a = List.assoc "a" (C.main_memory_accesses ~cache t) in
  (* Cold = 100 blocks; resident afterwards; total stays near cold. *)
  Alcotest.(check bool) (Printf.sprintf "a=%.1f" a) true (a >= 100.0 && a < 130.0)

(* Compare against a trace-driven simulation of the same phase structure:
   alternating full traverses of two structures, both streaming. *)
let simulate_alternating ~blocks_a ~blocks_b ~iterations =
  let line = cache.Cachesim.Config.line in
  let c = Cachesim.Cache.create cache in
  let b_base = 1 lsl 24 in
  for _ = 1 to iterations do
    for b = 0 to blocks_a - 1 do
      Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(b * line) ~size:1
    done;
    for b = 0 to blocks_b - 1 do
      Cachesim.Cache.access c ~owner:2 ~write:false ~addr:(b_base + (b * line)) ~size:1
    done
  done;
  let s1 = Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1 in
  float_of_int s1.Cachesim.Stats.misses

let test_compose_tracks_simulation () =
  List.iter
    (fun (blocks_a, blocks_b) ->
      let elements b = b * 4 (* 8-byte elements, 32-byte lines *) in
      let iterations = 10 in
      let t =
        C.make
          ~structures:
            [
              { C.name = "a"; bytes = blocks_a * 32 };
              { C.name = "b"; bytes = blocks_b * 32 };
            ]
          ~order:
            [ [ stream_occ "a" (elements blocks_a) ];
              [ stream_occ "b" (elements blocks_b) ] ]
          ~iterations
      in
      let model = List.assoc "a" (C.main_memory_accesses ~cache t) in
      let sim = simulate_alternating ~blocks_a ~blocks_b ~iterations in
      let err = Dvf_util.Maths.rel_error ~expected:sim ~actual:model in
      (* Coarse model: within 30% on thrashing mixes, and on fitting mixes
         both should be close to cold-only. *)
      Alcotest.(check bool)
        (Printf.sprintf "a=%d b=%d blocks: model %.0f sim %.0f (err %.0f%%)"
           blocks_a blocks_b model sim (100.0 *. err))
        true (err <= 0.30))
    [ (600, 600); (400, 400); (100, 50) ]

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "single structure stays resident" `Quick
      test_single_structure_single_phase;
    Alcotest.test_case "thrashing structures pay per reuse" `Quick
      test_thrashing_structures;
    Alcotest.test_case "iterations scale" `Quick test_iterations_scale;
    Alcotest.test_case "footprint blocks" `Quick test_footprint_blocks;
    Alcotest.test_case "reuse-only occurrence" `Quick test_reuse_only_occurrence;
    Alcotest.test_case "compose tracks simulation" `Quick
      test_compose_tracks_simulation;
  ]
