module R = Access_patterns.Random_access
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let small_cache = Cachesim.Config.small_verification (* 8 KB, 32 B lines *)

let test_fits_in_cache_compulsory_only () =
  (* 100 elements * 8 B = 800 B fits in 8 KB: only the construction pass. *)
  let t = R.make ~elements:100 ~elem_size:8 ~visits:10 ~iterations:1000
      ~cache_ratio:1.0 () in
  Alcotest.(check bool) "fits" true (R.fits_in_cache ~cache:small_cache t);
  checkf "compulsory only" (float_of_int (M.cdiv 800 32))
    (R.main_memory_accesses ~cache:small_cache t)

let test_miss_pmf_normalizes () =
  let t = R.make ~elements:2000 ~elem_size:8 ~visits:50 ~iterations:10
      ~cache_ratio:1.0 () in
  let acc = ref 0.0 in
  for x = 0 to t.R.visits do
    acc := !acc +. R.miss_pmf ~cache:small_cache t ~x
  done;
  checkf ~eps:1e-7 "pmf sums to 1" 1.0 !acc

let test_expected_misses_closed_form () =
  (* Eq. 6's sum equals the hypergeometric mean k * (1 - m/N). *)
  let t = R.make ~elements:2000 ~elem_size:8 ~visits:50 ~iterations:10
      ~cache_ratio:1.0 () in
  let m = R.cached_elements ~cache:small_cache t in
  let closed =
    float_of_int t.R.visits
    *. (1.0 -. (float_of_int m /. float_of_int t.R.elements))
  in
  checkf ~eps:1e-7 "matches closed form" closed
    (R.expected_misses_per_iteration ~cache:small_cache t)

let test_cache_ratio_shrinks_share () =
  let t1 = R.make ~elements:2000 ~elem_size:8 ~visits:50 ~iterations:100
      ~cache_ratio:1.0 () in
  let t05 = { t1 with R.cache_ratio = 0.5 } in
  Alcotest.(check bool) "smaller share, more misses" true
    (R.main_memory_accesses ~cache:small_cache t05
    > R.main_memory_accesses ~cache:small_cache t1)

let test_iterations_linear () =
  let t1 = R.make ~elements:2000 ~elem_size:8 ~visits:50 ~iterations:10
      ~cache_ratio:1.0 () in
  let t2 = { t1 with R.iterations = 20 } in
  let base = R.compulsory_accesses ~cache:small_cache t1 in
  checkf ~eps:1e-9 "reload scales with iterations"
    (2.0 *. (R.main_memory_accesses ~cache:small_cache t1 -. base))
    (R.main_memory_accesses ~cache:small_cache t2 -. base)

let test_breload_bounded_by_bout () =
  (* When nearly everything is visited each iteration, Belm can exceed the
     number of uncached blocks; Eq. 7 takes the min. *)
  let t = R.make ~elements:300 ~elem_size:32 ~visits:300 ~iterations:1
      ~cache_ratio:1.0 () in
  (* 300 * 32 B = 9600 B > 8 KB cache; Bout = 300 - 256 = 44 blocks. *)
  let reload = R.reload_blocks_per_iteration ~cache:small_cache t in
  let total_blocks = 300.0 and cached = float_of_int (Cachesim.Config.blocks small_cache) in
  Alcotest.(check bool)
    (Printf.sprintf "reload %.1f <= Bout %.1f" reload (total_blocks -. cached))
    true
    (reload <= total_blocks -. cached +. 1e-9)

let test_validation () =
  Alcotest.check_raises "visits > elements"
    (Invalid_argument "Random_access.make: visits exceed element count")
    (fun () ->
      ignore
        (R.make ~elements:10 ~elem_size:8 ~visits:11 ~iterations:1
           ~cache_ratio:1.0 ()));
  Alcotest.check_raises "ratio 0"
    (Invalid_argument "Random_access.make: cache_ratio outside (0,1]")
    (fun () ->
      ignore
        (R.make ~elements:10 ~elem_size:8 ~visits:1 ~iterations:1
           ~cache_ratio:0.0 ()))

(* Monte-Carlo cross-check: simulate the modeled process exactly (construct
   then randomly visit k distinct elements per iteration) through the LRU
   cache simulator and compare. *)
let simulate_random ~seed ~cache t =
  let rng = Dvf_util.Rng.create seed in
  let c = Cachesim.Cache.create cache in
  let n = t.R.elements and e = t.R.elem_size in
  for i = 0 to n - 1 do
    Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(i * e) ~size:e
  done;
  for _ = 1 to t.R.iterations do
    let chosen = Dvf_util.Rng.sample_without_replacement rng ~n ~k:t.R.visits in
    Array.iter
      (fun i -> Cachesim.Cache.access c ~owner:1 ~write:false ~addr:(i * e) ~size:e)
      chosen
  done;
  let stats = Cachesim.Stats.owner_counters (Cachesim.Cache.stats c) 1 in
  float_of_int stats.Cachesim.Stats.misses

let test_model_tracks_simulation () =
  (* 4000 * 8 B = 32 KB footprint in an 8 KB cache; heavy reuse misses. *)
  let t = R.make ~elements:4000 ~elem_size:8 ~visits:100 ~iterations:200
      ~cache_ratio:1.0 () in
  let sim =
    M.mean (Array.init 3 (fun s -> simulate_random ~seed:(s + 1) ~cache:small_cache t))
  in
  let model = R.main_memory_accesses ~cache:small_cache t in
  let err = M.rel_error ~expected:sim ~actual:model in
  Alcotest.(check bool)
    (Printf.sprintf "model %.0f vs sim %.0f (err %.1f%%)" model sim (100.0 *. err))
    true (err <= 0.20)

let prop_monotone_in_iterations =
  QCheck.Test.make ~count:50 ~name:"random accesses monotone in iterations"
    QCheck.(pair (int_range 100 5000) (int_range 1 100))
    (fun (n, iters) ->
      let t1 = R.make ~elements:n ~elem_size:8 ~visits:(min 50 n)
          ~iterations:iters ~cache_ratio:1.0 () in
      let t2 = { t1 with R.iterations = iters + 10 } in
      R.main_memory_accesses ~cache:small_cache t2
      >= R.main_memory_accesses ~cache:small_cache t1 -. 1e-9)

let prop_reload_nonnegative =
  QCheck.Test.make ~count:100 ~name:"reload blocks non-negative"
    QCheck.(quad (int_range 1 10000) (int_range 1 64) (int_range 0 200) (int_range 0 100))
    (fun (n, e, k, iters) ->
      let k = min k n in
      let t = R.make ~elements:n ~elem_size:e ~visits:k ~iterations:iters
          ~cache_ratio:1.0 () in
      R.reload_blocks_per_iteration ~cache:small_cache t >= 0.0)

let suite =
  [
    Alcotest.test_case "fits in cache: compulsory only" `Quick
      test_fits_in_cache_compulsory_only;
    Alcotest.test_case "Eq.5 pmf normalizes" `Quick test_miss_pmf_normalizes;
    Alcotest.test_case "Eq.6 matches closed form" `Quick
      test_expected_misses_closed_form;
    Alcotest.test_case "cache ratio shrinks share" `Quick
      test_cache_ratio_shrinks_share;
    Alcotest.test_case "iterations scale linearly" `Quick test_iterations_linear;
    Alcotest.test_case "Eq.7 bounded by Bout" `Quick test_breload_bounded_by_bout;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "model tracks LRU simulation" `Slow
      test_model_tracks_simulation;
    QCheck_alcotest.to_alcotest prop_monotone_in_iterations;
    QCheck_alcotest.to_alcotest prop_reload_nonnegative;
  ]
