module T = Dvf_util.Table

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_render_basic () =
  let t = T.create [ ("name", T.Left); ("value", T.Right) ] in
  T.add_row t [ "alpha"; "1" ];
  T.add_row t [ "b"; "22" ];
  let out = T.render t in
  Alcotest.(check bool) "has header cells" true
    (contains_substring out "name" && contains_substring out "value");
  Alcotest.(check bool) "has data" true
    (contains_substring out "alpha" && contains_substring out "22")

let test_title_rendered () =
  let t = T.create ~title:"Table IV" [ ("c", T.Left) ] in
  T.add_row t [ "x" ];
  Alcotest.(check bool) "title first" true
    (contains_substring (T.render t) "Table IV")

let test_alignment () =
  let t = T.create [ ("l", T.Left); ("r", T.Right) ] in
  T.add_row t [ "x"; "1" ];
  let out = T.render t in
  let row_line =
    List.find
      (fun l -> String.length l > 0 && l.[0] = '|' && String.contains l 'x')
      (String.split_on_char '\n' out)
  in
  Alcotest.(check bool) "x before 1" true
    (String.index row_line 'x' < String.index row_line '1')

let test_right_alignment_pads_left () =
  let t = T.create [ ("wide", T.Right) ] in
  T.add_row t [ "1" ];
  let out = T.render t in
  (* The cell "1" in a 4-wide column must be right aligned: "   1". *)
  Alcotest.(check bool) "right aligned" true (contains_substring out "   1 |")

let test_wrong_arity_rejected () =
  let t = T.create [ ("a", T.Left); ("b", T.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      T.add_row t [ "only one" ])

let test_csv () =
  let t = T.create [ ("k", T.Left); ("v", T.Right) ] in
  T.add_row t [ "plain"; "1" ];
  T.add_row t [ "with,comma"; "2" ];
  T.add_row t [ "with\"quote"; "3" ];
  let csv = T.to_csv t in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "k,v" (List.nth lines 0);
  Alcotest.(check string) "plain" "plain,1" (List.nth lines 1);
  Alcotest.(check string) "comma quoted" "\"with,comma\",2" (List.nth lines 2);
  Alcotest.(check string) "quote escaped" "\"with\"\"quote\",3" (List.nth lines 3)

let test_cell_float () =
  Alcotest.(check string) "zero" "0" (T.cell_float 0.0);
  Alcotest.(check string) "integer" "42" (T.cell_float 42.0);
  Alcotest.(check bool) "big uses e-notation" true
    (String.contains (T.cell_float 1.5e12) 'e');
  Alcotest.(check bool) "tiny uses e-notation" true
    (String.contains (T.cell_float 1.5e-7) 'e')

let test_separator_renders () =
  let t = T.create [ ("c", T.Left) ] in
  T.add_row t [ "a" ];
  T.add_sep t;
  T.add_row t [ "b" ];
  let out = T.render t in
  (* top + header sep + inner sep + bottom = 4 horizontal rules *)
  let rules =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && l.[0] = '+')
         (String.split_on_char '\n' out))
  in
  Alcotest.(check int) "rules" 4 rules

let suite =
  [
    Alcotest.test_case "render basic" `Quick test_render_basic;
    Alcotest.test_case "title rendered" `Quick test_title_rendered;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "right alignment pads" `Quick
      test_right_alignment_pads_left;
    Alcotest.test_case "wrong arity rejected" `Quick test_wrong_arity_rejected;
    Alcotest.test_case "csv escaping" `Quick test_csv;
    Alcotest.test_case "cell_float formats" `Quick test_cell_float;
    Alcotest.test_case "separators" `Quick test_separator_renders;
  ]
