module D = Core.Dvf
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_eq1_definition () =
  (* DVF_d = FIT * T * S_d * N_ha (with the documented 1e9 scale).
     FIT=5000, T=3600s (1h), S=125000 B (1 Mbit), N_ha=10:
     N_error = 5000/1e9 * 1 * 1 * 1e9 = 5000; DVF = 50000. *)
  let s = D.structure ~fit:5000.0 ~time:3600.0 ~bytes:125_000 ~n_ha:10.0 "x" in
  checkf "n_error" 5000.0 s.D.n_error;
  checkf "dvf" 50_000.0 s.D.dvf

let test_eq1_linearity () =
  let base = D.structure ~fit:100.0 ~time:10.0 ~bytes:1000 ~n_ha:5.0 "x" in
  let check2x msg s = checkf msg (2.0 *. base.D.dvf) s.D.dvf in
  check2x "2x fit" (D.structure ~fit:200.0 ~time:10.0 ~bytes:1000 ~n_ha:5.0 "x");
  check2x "2x time" (D.structure ~fit:100.0 ~time:20.0 ~bytes:1000 ~n_ha:5.0 "x");
  check2x "2x size" (D.structure ~fit:100.0 ~time:10.0 ~bytes:2000 ~n_ha:5.0 "x");
  check2x "2x accesses" (D.structure ~fit:100.0 ~time:10.0 ~bytes:1000 ~n_ha:10.0 "x")

let test_eq2_sum () =
  let app =
    D.of_counts ~fit:100.0 ~time:1.0 ~app_name:"demo"
      [ ("a", 1000, 10.0); ("b", 2000, 5.0); ("c", 500, 0.0) ]
  in
  let expected =
    List.fold_left (fun acc s -> acc +. s.D.dvf) 0.0 app.D.structures
  in
  checkf "DVF_a = sum DVF_d" expected app.D.total;
  Alcotest.(check int) "three structures" 3 (List.length app.D.structures)

let test_zero_accesses_zero_dvf () =
  let s = D.structure ~fit:5000.0 ~time:100.0 ~bytes:1000 ~n_ha:0.0 "idle" in
  checkf "zero" 0.0 s.D.dvf

let test_weighted_generalization () =
  (* alpha=1, beta=2 squares the access term. *)
  let s1 = D.structure ~fit:100.0 ~time:1.0 ~bytes:125_000 ~n_ha:3.0 "x" in
  let s2 = D.structure ~alpha:1.0 ~beta:2.0 ~fit:100.0 ~time:1.0 ~bytes:125_000 ~n_ha:3.0 "x" in
  checkf "beta=2" (s1.D.n_error *. 9.0) s2.D.dvf

let test_of_spec_matches_manual () =
  let spec = Kernels.Vm.spec Kernels.Vm.verification in
  let cache = Cachesim.Config.small_verification in
  let app = D.of_spec ~cache ~fit:5000.0 ~time:0.01 spec in
  let n_has = Access_patterns.App_spec.main_memory_accesses ~cache spec in
  List.iter
    (fun (s : D.structure_dvf) ->
      checkf ("n_ha for " ^ s.D.name) (List.assoc s.D.name n_has) s.D.n_ha)
    app.D.structures

let test_rejects_negative () =
  Alcotest.check_raises "negative n_ha"
    (Invalid_argument "Dvf.structure: negative N_ha") (fun () ->
      ignore (D.structure ~fit:1.0 ~time:1.0 ~bytes:1 ~n_ha:(-1.0) "x"))

let prop_dvf_monotone_in_every_factor =
  QCheck.Test.make ~count:100 ~name:"DVF monotone in each Eq.1 factor"
    QCheck.(
      quad (float_range 1.0 5000.0) (float_range 0.001 100.0)
        (int_range 1 1_000_000) (float_range 0.0 1.0e6))
    (fun (fit, time, bytes, n_ha) ->
      let d = (D.structure ~fit ~time ~bytes ~n_ha "x").D.dvf in
      let bigger =
        (D.structure ~fit:(fit *. 1.5) ~time ~bytes ~n_ha "x").D.dvf
      in
      bigger >= d -. 1e-12)

let suite =
  [
    Alcotest.test_case "Eq.1 definition and units" `Quick test_eq1_definition;
    Alcotest.test_case "Eq.1 linearity" `Quick test_eq1_linearity;
    Alcotest.test_case "Eq.2 summation" `Quick test_eq2_sum;
    Alcotest.test_case "zero accesses, zero DVF" `Quick
      test_zero_accesses_zero_dvf;
    Alcotest.test_case "weighted generalization" `Quick
      test_weighted_generalization;
    Alcotest.test_case "of_spec consistent" `Quick test_of_spec_matches_manual;
    Alcotest.test_case "rejects negative inputs" `Quick test_rejects_negative;
    QCheck_alcotest.to_alcotest prop_dvf_monotone_in_every_factor;
  ]
