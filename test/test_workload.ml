(* The open workload registry (Core.Workload): built-in coverage,
   case-insensitive lookup, duplicate rejection, and the self-describing
   unknown-name error. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_builtins_registered () =
  let names = Core.Workloads.names () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (List.mem name names))
    [ "VM"; "CG"; "NB"; "MG"; "FT"; "MC" ]

let test_of_name_roundtrip () =
  List.iter
    (fun (w : Core.Workload.t) ->
      let found = Core.Workloads.of_name w.Core.Workload.name in
      Alcotest.(check string)
        (w.Core.Workload.name ^ " round-trips")
        w.Core.Workload.name found.Core.Workload.name)
    (Core.Workloads.all ())

let test_find_case_insensitive () =
  List.iter
    (fun name ->
      match Core.Workloads.find name with
      | Some w ->
          Alcotest.(check string) (name ^ " resolves") "CG"
            w.Core.Workload.name
      | None -> Alcotest.fail (name ^ " should resolve"))
    [ "CG"; "cg"; "Cg" ]

let test_unknown_name_lists_candidates () =
  match Core.Workloads.of_name "no-such-workload" with
  | _ -> Alcotest.fail "lookup should have failed"
  | exception Invalid_argument m ->
      Alcotest.(check bool) "names the unknown" true
        (contains ~needle:"no-such-workload" m);
      (* The error is self-correcting: it lists what IS registered. *)
      List.iter
        (fun name ->
          Alcotest.(check bool) ("candidates include " ^ name) true
            (contains ~needle:name m))
        [ "VM"; "CG"; "NB"; "MG"; "FT"; "MC" ]

let test_duplicate_rejected () =
  (* Case differences don't evade the collision check. *)
  List.iter
    (fun name ->
      let clone = { Core.Workloads.vm with Core.Workload.name } in
      match Core.Workloads.register clone with
      | () -> Alcotest.fail ("duplicate " ^ name ^ " accepted")
      | exception Invalid_argument m ->
          Alcotest.(check bool) "error names the duplicate" true
            (contains ~needle:name m))
    [ "VM"; "vm" ]

let test_runtime_registration () =
  (* A fresh name registers, is visible through every lookup, and then
     collides with itself. *)
  let name = "test-registry-probe" in
  let w = { Core.Workloads.mc with Core.Workload.name } in
  Core.Workloads.register w;
  Alcotest.(check bool) "in names ()" true
    (List.mem name (Core.Workloads.names ()));
  (match Core.Workloads.find (String.uppercase_ascii name) with
  | Some found ->
      Alcotest.(check string) "found case-insensitively" name
        found.Core.Workload.name
  | None -> Alcotest.fail "runtime registration not visible");
  match Core.Workloads.register w with
  | () -> Alcotest.fail "re-registration accepted"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "built-ins registered" `Quick test_builtins_registered;
    Alcotest.test_case "of_name round trip" `Quick test_of_name_roundtrip;
    Alcotest.test_case "find is case-insensitive" `Quick
      test_find_case_insensitive;
    Alcotest.test_case "unknown name lists candidates" `Quick
      test_unknown_name_lists_candidates;
    Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "runtime registration" `Quick test_runtime_registration;
  ]
