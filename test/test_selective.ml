module S = Core.Selective
module D = Core.Dvf
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let demo_app =
  D.of_counts ~fit:5000.0 ~time:0.01 ~app_name:"demo"
    [ ("big", 1_000_000, 1000.0); ("mid", 100_000, 500.0); ("small", 1_000, 10.0) ]

let test_rank_descending () =
  let names = List.map (fun (s : D.structure_dvf) -> s.D.name) (S.rank demo_app) in
  Alcotest.(check (list string)) "order" [ "big"; "mid"; "small" ] names

let test_protect_scales_by_fit_ratio () =
  let protected_ =
    S.protect_structures ~scheme:Core.Ecc.Chipkill ~names:[ "big" ] demo_app
  in
  let get app name =
    (List.find (fun (s : D.structure_dvf) -> s.D.name = name) app.D.structures)
      .D.dvf
  in
  (* Protected structure's DVF scales by 0.02/5000; the others are
     untouched. *)
  checkf "big scaled"
    (get demo_app "big" *. (0.02 /. 5000.0))
    (get protected_ "big");
  checkf "mid untouched" (get demo_app "mid") (get protected_ "mid");
  checkf "total consistent"
    (get protected_ "big" +. get protected_ "mid" +. get protected_ "small")
    protected_.D.total

let test_protect_unknown_rejected () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Selective.protect_structures: unknown structure nope")
    (fun () ->
      ignore (S.protect_structures ~scheme:Core.Ecc.Secded ~names:[ "nope" ] demo_app))

let test_coverage_curve_monotone () =
  let curve = S.coverage_curve ~scheme:Core.Ecc.Chipkill demo_app in
  Alcotest.(check int) "k = 0..3" 4 (List.length curve);
  checkf "k=0 is unprotected" demo_app.D.total
    (List.hd curve).S.residual_dvf;
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "non-increasing" true
          (b.S.residual_dvf <= a.S.residual_dvf +. 1e-12);
        monotone rest
    | _ -> ()
  in
  monotone curve;
  let final = List.nth curve 3 in
  checkf ~eps:1e-6 "everything protected"
    (demo_app.D.total *. (0.02 /. 5000.0))
    final.S.residual_dvf

let test_structures_for_target () =
  (* "big" carries most of the DVF; chipkill on it alone reaches 40%. *)
  let names =
    S.structures_for_target ~scheme:Core.Ecc.Chipkill ~target_fraction:0.40
      demo_app
  in
  Alcotest.(check (list string)) "just the big one" [ "big" ] names;
  Alcotest.check_raises "unreachable"
    (Invalid_argument
       "Selective.structures_for_target: target unreachable with this scheme")
    (fun () ->
      ignore
        (S.structures_for_target ~scheme:Core.Ecc.Chipkill
           ~target_fraction:1e-9 demo_app))

let test_on_real_kernel () =
  (* VM: protecting A alone removes most of the vulnerability. *)
  let cache = Cachesim.Config.profiling_4mb in
  let spec = Kernels.Vm.spec Kernels.Vm.profiling in
  let app = D.of_spec ~cache ~fit:5000.0 ~time:1e-4 spec in
  let top = List.hd (S.rank app) in
  Alcotest.(check string) "A is the most vulnerable" "A" top.D.name;
  let curve = S.coverage_curve ~scheme:Core.Ecc.Chipkill app in
  let after_one = List.nth curve 1 in
  Alcotest.(check bool)
    (Printf.sprintf "one structure removes %.0f%%"
       (100.0 *. (1.0 -. after_one.S.residual_fraction)))
    true
    (after_one.S.residual_fraction < 0.25);
  Alcotest.(check bool) "table renders" true
    (String.length (Dvf_util.Table.render (S.to_table curve)) > 100)

let suite =
  [
    Alcotest.test_case "rank descending" `Quick test_rank_descending;
    Alcotest.test_case "protect scales by FIT ratio" `Quick
      test_protect_scales_by_fit_ratio;
    Alcotest.test_case "unknown structure rejected" `Quick
      test_protect_unknown_rejected;
    Alcotest.test_case "coverage curve monotone" `Quick
      test_coverage_curve_monotone;
    Alcotest.test_case "structures for target" `Quick test_structures_for_target;
    Alcotest.test_case "on a real kernel" `Quick test_on_real_kernel;
  ]
