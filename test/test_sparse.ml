module C = Kernels.Csr
module S = Kernels.Sparse_cg

(* --- CSR --- *)

let test_create_validation () =
  Alcotest.check_raises "row_ptr length"
    (Invalid_argument "Csr.create: row_ptr must have n+1 entries") (fun () ->
      ignore (C.create ~n:2 ~row_ptr:[| 0; 1 |] ~col_idx:[| 0 |] ~values:[| 1.0 |]));
  Alcotest.check_raises "column order"
    (Invalid_argument "Csr.create: column indices must be strictly increasing per row")
    (fun () ->
      ignore
        (C.create ~n:2
           ~row_ptr:[| 0; 2; 2 |]
           ~col_idx:[| 1; 0 |]
           ~values:[| 1.0; 2.0 |]));
  Alcotest.check_raises "column range"
    (Invalid_argument "Csr.create: column index out of range") (fun () ->
      ignore
        (C.create ~n:2 ~row_ptr:[| 0; 1; 1 |] ~col_idx:[| 5 |] ~values:[| 1.0 |]))

let test_of_dense_roundtrip () =
  let n = 7 in
  let rng = Dvf_util.Rng.create 3 in
  let a =
    Array.init (n * n) (fun _ ->
        if Dvf_util.Rng.int rng 3 = 0 then Dvf_util.Rng.float rng 2.0 -. 1.0
        else 0.0)
  in
  let m = C.of_dense n a in
  Alcotest.(check (array (float 0.0))) "roundtrip" a (C.to_dense m)

let test_laplacian_shape () =
  let m = C.laplacian_2d 4 in
  Alcotest.(check int) "n" 16 m.C.n;
  (* Interior point has 5 entries; corner has 3. *)
  let s, e = C.row_bounds m 5 in
  Alcotest.(check int) "interior row" 5 (e - s);
  let s0, e0 = C.row_bounds m 0 in
  Alcotest.(check int) "corner row" 3 (e0 - s0);
  (* Symmetric. *)
  let d = C.to_dense m in
  for i = 0 to 15 do
    for j = 0 to 15 do
      Alcotest.(check (float 0.0)) "symmetric" d.((i * 16) + j) d.((j * 16) + i)
    done
  done

let test_spmv_matches_dense () =
  let m = C.laplacian_2d 5 in
  let n = m.C.n in
  let rng = Dvf_util.Rng.create 9 in
  let x = Array.init n (fun _ -> Dvf_util.Rng.float rng 2.0 -. 1.0) in
  let y = Array.make n 0.0 in
  C.spmv m x y;
  let d = C.to_dense m in
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (d.((i * n) + j) *. x.(j))
    done;
    Alcotest.(check (float 1e-12)) (Printf.sprintf "row %d" i) !acc y.(i)
  done

let test_tridiagonal_matches_dense_generator () =
  let n = 10 in
  let m = C.spd_tridiagonal n in
  let dense = Array.make (n * n) 0.0 in
  Kernels.Spd.fill_matrix n (fun i j v -> dense.((i * n) + j) <- v);
  Alcotest.(check (array (float 0.0))) "same matrix" dense (C.to_dense m)

(* --- Sparse CG --- *)

let test_solves_laplacian () =
  let p = S.make_params ~max_iterations:500 ~tolerance:1e-10 (`Laplacian_2d 16) in
  let r = S.run_untraced p in
  Alcotest.(check bool)
    (Printf.sprintf "converged in %d iters, err %.2e" r.S.iterations
       r.S.solution_error)
    true
    (r.S.residual < 1e-9 && r.S.solution_error < 1e-6)

let test_sparse_matches_dense_cg () =
  (* Same tridiagonal system: the sparse and dense solvers share the loop,
     so iteration counts and residuals agree exactly. *)
  let n = 120 in
  let sparse =
    S.run_untraced (S.make_params ~max_iterations:300 ~tolerance:1e-10 (`Tridiagonal n))
  in
  let dense =
    Kernels.Cg.run_untraced (Kernels.Cg.make_params ~max_iterations:300 ~tolerance:1e-10 n)
  in
  Alcotest.(check int) "same iterations" dense.Kernels.Cg.iterations sparse.S.iterations;
  Alcotest.(check (float 1e-9)) "same residual" dense.Kernels.Cg.residual sparse.S.residual

let test_traced_matches_untraced () =
  let p = S.make_params ~max_iterations:12 (`Laplacian_2d 20) in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let traced = S.run registry recorder p in
  let untraced = S.run_untraced p in
  Alcotest.(check int) "iterations" untraced.S.iterations traced.S.iterations;
  Alcotest.(check (float 1e-12)) "residual" untraced.S.residual traced.S.residual

let test_model_vs_simulation () =
  let p = S.make_params ~max_iterations:8 ~tolerance:0.0 (`Laplacian_2d 64) in
  List.iter
    (fun cfg ->
      let registry = Memtrace.Region.create () in
      let recorder = Memtrace.Recorder.create () in
      let cache = Cachesim.Cache.create cfg in
      ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
      let result = S.run registry recorder p in
      Cachesim.Cache.flush cache;
      let stats = Cachesim.Cache.stats cache in
      let spec = S.spec ~iterations:result.S.iterations p in
      let modeled = Access_patterns.App_spec.main_memory_accesses ~cache:cfg spec in
      let total_sim = ref 0.0 and total_model = ref 0.0 in
      List.iter
        (fun (name, model) ->
          let region = Memtrace.Region.lookup registry name in
          total_sim :=
            !total_sim
            +. float_of_int
                 (Cachesim.Stats.main_memory_accesses stats region.Memtrace.Region.id);
          total_model := !total_model +. model)
        modeled;
      let err = Dvf_util.Maths.rel_error ~expected:!total_sim ~actual:!total_model in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model %.0f vs sim %.0f (err %.1f%%)"
           cfg.Cachesim.Config.name !total_model !total_sim (100.0 *. err))
        true (err <= 0.15))
    Cachesim.Config.[ small_verification; large_verification ]

let test_sparse_dvf_below_dense () =
  (* Same tridiagonal system, same iteration budget: the sparse layout
     moves ~n^2 fewer bytes, so its DVF must be far smaller. *)
  let n = 300 in
  let iterations = 10 in
  let cache = Cachesim.Config.profiling_4mb in
  let sparse_spec =
    S.spec ~iterations (S.make_params (`Tridiagonal n))
  in
  let dense_spec =
    Kernels.Cg.spec ~iterations (Kernels.Cg.make_params n)
  in
  let dvf spec =
    (Core.Dvf.of_spec ~cache ~fit:5000.0 ~time:1e-3 spec).Core.Dvf.total
  in
  Alcotest.(check bool) "sparse <= dense / 10" true
    (dvf sparse_spec < dvf dense_spec /. 10.0)

let suite =
  [
    Alcotest.test_case "CSR validation" `Quick test_create_validation;
    Alcotest.test_case "of_dense round trip" `Quick test_of_dense_roundtrip;
    Alcotest.test_case "laplacian shape" `Quick test_laplacian_shape;
    Alcotest.test_case "spmv matches dense" `Quick test_spmv_matches_dense;
    Alcotest.test_case "tridiagonal matches Spd" `Quick
      test_tridiagonal_matches_dense_generator;
    Alcotest.test_case "solves the Laplacian" `Quick test_solves_laplacian;
    Alcotest.test_case "sparse = dense CG on same system" `Quick
      test_sparse_matches_dense_cg;
    Alcotest.test_case "traced = untraced" `Quick test_traced_matches_untraced;
    Alcotest.test_case "model vs simulation" `Slow test_model_vs_simulation;
    Alcotest.test_case "sparse DVF far below dense" `Quick
      test_sparse_dvf_below_dense;
  ]
