(* Telemetry collector: span nesting, counter/gauge semantics, fork/merge
   commutativity, the versioned JSON document, and the end-to-end
   guarantee that enabling metrics never changes computed results. *)

module T = Dvf_util.Telemetry
module J = Dvf_util.Json

(* A deterministic clock: every reading advances by [step] ns. *)
let fake_clock ?(step = 10L) () =
  let t = ref 0L in
  fun () ->
    t := Int64.add !t step;
    !t

(* --- the null collector --- *)

let test_null_is_inert () =
  Alcotest.(check bool) "disabled" false (T.enabled T.null);
  Alcotest.(check int64) "clock reads zero" 0L (T.now_ns T.null);
  T.add T.null "c";
  T.set_gauge T.null "g" 1.0;
  T.time_ns T.null "s" 5L;
  Alcotest.(check int) "counter stays zero" 0 (T.counter_value T.null "c");
  Alcotest.(check int64) "span stays zero" 0L (T.span_ns T.null "s");
  Alcotest.(check int) "span thunk runs" 41 (T.span T.null "s" (fun () -> 41));
  Alcotest.(check bool) "fork null is null" true (T.fork T.null == T.null)

(* --- span nesting --- *)

let test_span_nesting () =
  let t = T.create ~clock:(fake_clock ()) () in
  let result =
    T.span t "outer" (fun () ->
        T.span t "inner" (fun () -> ());
        T.span t "inner" (fun () -> ());
        "done")
  in
  Alcotest.(check string) "span returns thunk value" "done" result;
  Alcotest.(check int) "outer called once" 1 (T.span_calls t "outer");
  Alcotest.(check int) "inner nested under outer" 2
    (T.span_calls t "outer/inner");
  Alcotest.(check int) "no top-level inner" 0 (T.span_calls t "inner");
  (* Each inner span spends one clock step (start..stop); the outer span
     additionally covers both inner spans' readings. *)
  Alcotest.(check int64) "inner total" 20L (T.span_ns t "outer/inner");
  Alcotest.(check bool) "outer covers inner"
    true
    (Int64.compare (T.span_ns t "outer") (T.span_ns t "outer/inner") >= 0)

let test_span_exception_still_recorded () =
  let t = T.create ~clock:(fake_clock ()) () in
  (try T.span t "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Alcotest.(check int) "raising span counted" 1 (T.span_calls t "boom");
  Alcotest.(check bool) "raising span timed" true
    (Int64.compare (T.span_ns t "boom") 0L > 0);
  (* The stack unwound: a following span is top-level, not under boom. *)
  T.span t "after" (fun () -> ());
  Alcotest.(check int) "stack unwound" 1 (T.span_calls t "after");
  Alcotest.(check int) "not nested under boom" 0 (T.span_calls t "boom/after")

(* --- counters and gauges --- *)

let test_counters_and_gauges () =
  let t = T.create ~clock:(fake_clock ()) () in
  T.add t "c";
  T.add t ~n:41 "c";
  Alcotest.(check int) "accumulates" 42 (T.counter_value t "c");
  Alcotest.(check int) "unknown counter" 0 (T.counter_value t "nope");
  T.time_ns t "s" 2_000_000_000L;
  T.add t ~n:10 "events";
  T.gauge_rate t ~name:"rate" ~counter:"events" ~span:"s";
  (match J.member "gauges" (T.to_json t) with
  | Some (J.Obj gauges) ->
      Alcotest.(check (float 1e-9)) "rate = count / seconds" 5.0
        (match List.assoc "rate" gauges with
        | J.Float f -> f
        | _ -> nan)
  | _ -> Alcotest.fail "gauges section missing");
  (* A zero-duration span must not produce an infinite gauge. *)
  T.add t ~n:3 "zero_count";
  T.gauge_rate t ~name:"bad" ~counter:"zero_count" ~span:"never";
  match J.member "gauges" (T.to_json t) with
  | Some (J.Obj gauges) ->
      Alcotest.(check bool) "no infinite gauge" false
        (List.mem_assoc "bad" gauges)
  | _ -> Alcotest.fail "gauges section missing"

(* --- fork / merge --- *)

let record_worker_a t =
  T.add t ~n:3 "shared";
  T.add t ~n:1 "only_a";
  T.time_ns t "work" 100L

let record_worker_b t =
  T.add t ~n:4 "shared";
  T.time_ns t "work" 50L;
  T.time_ns t "b_phase" 7L

let test_merge_commutes () =
  let merged order =
    let parent = T.create ~clock:(fake_clock ()) () in
    let a = T.fork parent and b = T.fork parent in
    record_worker_a a;
    record_worker_b b;
    List.iter (fun src -> T.merge ~into:parent src) (order a b);
    T.to_json parent
  in
  let ab = merged (fun a b -> [ a; b ]) in
  let ba = merged (fun a b -> [ b; a ]) in
  Alcotest.(check bool) "merge order invisible" true (J.equal ab ba);
  match J.member "counters" ab with
  | Some (J.Obj counters) ->
      Alcotest.(check bool) "counters added" true
        (List.assoc "shared" counters = J.Int 7)
  | _ -> Alcotest.fail "counters section missing"

(* --- JSON document --- *)

let test_json_roundtrip_and_validate () =
  let t = T.create ~clock:(fake_clock ()) () in
  T.span t "phase" (fun () -> T.add t ~n:9 "n");
  T.set_gauge t "g" 1.25;
  let doc = T.to_json t in
  (match T.validate doc with
  | Ok () -> ()
  | Error m -> Alcotest.failf "fresh document invalid: %s" m);
  (* Serialize, reparse, compare structurally. *)
  (match J.of_string (J.to_string doc) with
  | Ok reparsed ->
      Alcotest.(check bool) "round-trips" true (J.equal doc reparsed)
  | Error m -> Alcotest.failf "reparse failed: %s" m);
  (* Compact form round-trips too. *)
  (match J.of_string (J.to_string ~indent:false doc) with
  | Ok reparsed ->
      Alcotest.(check bool) "compact round-trips" true (J.equal doc reparsed)
  | Error m -> Alcotest.failf "compact reparse failed: %s" m);
  (* Validation rejects a wrong schema name and a missing section. *)
  let reject label doc =
    match T.validate doc with
    | Ok () -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  reject "wrong schema"
    (J.Obj
       [
         ("schema", J.Str "not-dvf"); ("schema_version", J.Int 1);
         ("spans", J.Obj []); ("counters", J.Obj []); ("gauges", J.Obj []);
       ]);
  reject "missing counters"
    (J.Obj
       [
         ("schema", J.Str "dvf-telemetry"); ("schema_version", J.Int 1);
         ("spans", J.Obj []); ("gauges", J.Obj []);
       ]);
  reject "non-object" (J.List [])

(* --- results are telemetry-invariant and schedule-invariant --- *)

let rows_testable =
  Alcotest.testable
    (fun ppf (r : Core.Verify.row) ->
      Format.fprintf ppf "%s/%s/%s: sim %.17g model %.17g" r.Core.Verify.workload
        r.Core.Verify.cache.Cachesim.Config.name r.Core.Verify.structure
        r.Core.Verify.simulated r.Core.Verify.modeled)
    (fun a b -> compare a b = 0)

let test_verify_rows_identical_with_metrics () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let plain = Core.Verify.run_all ~jobs:1 ~workloads () in
  let serial_t = T.create () in
  let serial = Core.Verify.run_all ~jobs:1 ~telemetry:serial_t ~workloads () in
  let parallel_t = T.create () in
  let parallel =
    Core.Verify.run_all ~jobs:4 ~telemetry:parallel_t ~workloads ()
  in
  Alcotest.(check (list rows_testable))
    "telemetry does not change results" plain serial;
  Alcotest.(check (list rows_testable))
    "parallel rows bit-identical with metrics on" plain parallel;
  (* The deterministic telemetry fields agree across schedules too. *)
  List.iter
    (fun counter ->
      Alcotest.(check int)
        (counter ^ " schedule-independent")
        (T.counter_value serial_t counter)
        (T.counter_value parallel_t counter))
    [ "recorder/events"; "recorder/batches"; "cache/accesses" ];
  (* And both documents validate. *)
  List.iter
    (fun t ->
      match T.validate (T.to_json t) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "document invalid: %s" m)
    [ serial_t; parallel_t ]

let suite =
  [
    Alcotest.test_case "null collector is inert" `Quick test_null_is_inert;
    Alcotest.test_case "span nesting builds paths" `Quick test_span_nesting;
    Alcotest.test_case "span survives exceptions" `Quick
      test_span_exception_still_recorded;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "merge commutes" `Quick test_merge_commutes;
    Alcotest.test_case "JSON round-trip and validation" `Quick
      test_json_roundtrip_and_validate;
    Alcotest.test_case "verify rows identical with metrics" `Slow
      test_verify_rows_identical_with_metrics;
  ]
