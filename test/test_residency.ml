(* Cachesim.Residency: per-line residency-time accounting.

   The load-bearing properties: (1) the integrals are exact — an
   independent per-event census of resident lines reproduces every
   owner's residency time; (2) the histogram conserves the integral —
   each owner's bins sum to its clean/dirty times; (3) clock plumbing is
   invariant — batch walks, sharded replicas (merged with
   [Residency.sum]) and every timed-verify strategy/job count reproduce
   the serial per-event accumulator bit for bit. *)

module C = Cachesim
module R = Cachesim.Residency
module Mt = Memtrace

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let tiny = C.Config.make ~name:"tiny" ~associativity:2 ~sets:4 ~line:16

(* Same deterministic stream as test_hierarchy: mixes owners, strides
   and sizes, and overflows [tiny] enough to evict. *)
let synthetic_events n =
  List.init n (fun i ->
      let owner = 1 + (i mod 3) in
      let addr = (i * 24 mod 4096) + (i mod 7 * 4096) in
      let size = 1 + (i mod 9) in
      if i mod 4 = 0 then Mt.Event.write ~owner ~addr ~size
      else Mt.Event.read ~owner ~addr ~size)

let tape_of events =
  let tape = Mt.Tape.create ~chunk_events:256 () in
  List.iter (Mt.Tape.append tape) events;
  tape

let timed_cache ?bins ~horizon cfg =
  let cache = C.Cache.create cfg in
  let res = R.create ?bins ~horizon () in
  C.Cache.attach_residency cache res;
  (cache, res)

(* --- accumulator validation and clamping --- *)

let test_validation () =
  expect_invalid "bins 0" (fun () -> R.create ~bins:0 ~horizon:10 ());
  expect_invalid "negative horizon" (fun () -> R.create ~horizon:(-1) ());
  let r = R.create ~bins:4 ~horizon:10 () in
  expect_invalid "t1 < t0" (fun () ->
      R.record_interval r ~owner:1 ~dirty:false ~t0:5 ~t1:4);
  expect_invalid "negative owner" (fun () ->
      R.record_interval r ~owner:(-1) ~dirty:false ~t0:0 ~t1:1);
  (* Intervals are clamped to [0, horizon]. *)
  R.record_interval r ~owner:1 ~dirty:false ~t0:(-5) ~t1:3;
  R.record_interval r ~owner:1 ~dirty:true ~t0:8 ~t1:25;
  (* Entirely outside: a no-op, not an error. *)
  R.record_interval r ~owner:1 ~dirty:false ~t0:12 ~t1:30;
  let c = R.Snapshot.owner (R.snapshot r) 1 in
  Alcotest.(check int) "clean clamped at 0" 3 c.R.clean_time;
  Alcotest.(check int) "dirty clamped at horizon" 2 c.R.dirty_time;
  Alcotest.(check int) "bins" 4 (R.bins r);
  Alcotest.(check int) "horizon" 10 (R.horizon r);
  Alcotest.(check int) "bin width rounds up" 3 (R.bin_width r)

(* --- hand-computed mini-traces --- *)

(* Lines 0x000, 0x040 and 0x080 all map to set 0 of [tiny] (2-way), so
   the third install evicts.  Every interval below is checked by hand. *)
let test_hand_computed_evictions () =
  let cache, res = timed_cache ~horizon:4 tiny in
  (* t=0: write A (owner 1) — installs dirty.  t=1: read B (owner 1).
     t=2: read C (owner 2) — evicts A, dirty phase [0,2).  t=3: read A
     again (owner 1) — evicts B, clean phase [1,3).  Flush at 4 closes
     C [2,4) and the re-installed A [3,4), both clean. *)
  C.Cache.access cache ~owner:1 ~write:true ~addr:0 ~size:4;
  C.Cache.access cache ~owner:1 ~write:false ~addr:64 ~size:4;
  C.Cache.access cache ~owner:2 ~write:false ~addr:128 ~size:4;
  C.Cache.access cache ~owner:1 ~write:false ~addr:0 ~size:4;
  C.Cache.flush cache;
  let s = R.snapshot res in
  let o1 = R.Snapshot.owner s 1 and o2 = R.Snapshot.owner s 2 in
  Alcotest.(check int) "owner 1 dirty [0,2)" 2 o1.R.dirty_time;
  Alcotest.(check int) "owner 1 clean [1,3)+[3,4)" 3 o1.R.clean_time;
  Alcotest.(check int) "owner 1 fills" 3 o1.R.fills;
  Alcotest.(check int) "owner 1 evictions" 2 o1.R.evictions;
  Alcotest.(check int) "owner 1 flushes" 1 o1.R.flushes;
  Alcotest.(check int) "owner 2 clean [2,4)" 2 o2.R.clean_time;
  Alcotest.(check int) "owner 2 dirty" 0 o2.R.dirty_time;
  Alcotest.(check int) "owner 2 flushes" 1 o2.R.flushes;
  let t = R.Snapshot.totals s in
  Alcotest.(check int) "total resident time" 7 (R.Snapshot.resident_time t);
  Alcotest.(check (float 1e-9)) "mean resident lines" (7.0 /. 4.0)
    (R.Snapshot.mean_resident_lines s t)

(* A write hit on a clean line ends the clean phase and opens a dirty
   one at that instant. *)
let test_hand_computed_dirty_transition () =
  let cache, res = timed_cache ~horizon:3 tiny in
  C.Cache.access cache ~owner:1 ~write:false ~addr:0 ~size:4;
  C.Cache.access cache ~owner:1 ~write:true ~addr:0 ~size:4;
  C.Cache.access cache ~owner:1 ~write:false ~addr:0 ~size:4;
  C.Cache.flush cache;
  let c = R.Snapshot.owner (R.snapshot res) 1 in
  Alcotest.(check int) "clean phase [0,1)" 1 c.R.clean_time;
  Alcotest.(check int) "dirty phase [1,3)" 2 c.R.dirty_time;
  Alcotest.(check int) "one fill" 1 c.R.fills;
  Alcotest.(check int) "no evictions" 0 c.R.evictions;
  Alcotest.(check int) "one flush" 1 c.R.flushes;
  Alcotest.(check (float 1e-9)) "dirty fraction" (2.0 /. 3.0)
    (R.Snapshot.dirty_fraction c)

(* --- conservation against an independent census ---

   After each event, [Cache.resident_lines] counts each owner's lines
   directly from the cache contents.  Summing that census over all
   event ordinals must equal the accumulator's residency integral, and
   each owner's histogram must sum back to its integral. *)

let test_conservation_census () =
  let n = 3000 in
  let events = synthetic_events n in
  let cache, res = timed_cache ~horizon:n tiny in
  let owners = [ 1; 2; 3 ] in
  let census = Hashtbl.create 8 in
  List.iter
    (fun (e : Mt.Event.t) ->
      C.Cache.access cache ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
        ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size;
      List.iter
        (fun owner ->
          let resident = C.Cache.resident_lines cache ~owner in
          Hashtbl.replace census owner
            (resident
            + Option.value ~default:0 (Hashtbl.find_opt census owner)))
        owners)
    events;
  C.Cache.flush cache;
  let s = R.snapshot res in
  List.iter
    (fun owner ->
      let c = R.Snapshot.owner s owner in
      Alcotest.(check int)
        (Printf.sprintf "owner %d: integral = census" owner)
        (Hashtbl.find census owner)
        (R.Snapshot.resident_time c);
      Alcotest.(check int)
        (Printf.sprintf "owner %d: clean bins conserve" owner)
        c.R.clean_time
        (Array.fold_left ( + ) 0 c.R.clean_bins);
      Alcotest.(check int)
        (Printf.sprintf "owner %d: dirty bins conserve" owner)
        c.R.dirty_time
        (Array.fold_left ( + ) 0 c.R.dirty_bins);
      (* Every filled line eventually leaves: by eviction or by the
         end-of-run flush. *)
      Alcotest.(check int)
        (Printf.sprintf "owner %d: fills = evictions + flushes" owner)
        c.R.fills
        (c.R.evictions + c.R.flushes))
    owners;
  let t = R.Snapshot.totals s in
  Alcotest.(check int) "totals integral = census"
    (List.fold_left (fun acc o -> acc + Hashtbl.find census o) 0 owners)
    (R.Snapshot.resident_time t)

(* Conservation as a qcheck property over random traces and random bin
   counts: histogram sums equal the integrals, and the totals equal the
   per-owner sums. *)
let prop_conservation =
  QCheck.Test.make ~count:50 ~name:"residency conservation (random traces)"
    QCheck.(pair (list_of_size Gen.(1 -- 400) (triple small_nat bool small_nat))
              (1 -- 17))
    (fun (raw, bins) ->
      let n = List.length raw in
      let cache, res = timed_cache ~bins ~horizon:n tiny in
      List.iter
        (fun (a, write, o) ->
          C.Cache.access cache ~owner:(1 + (o mod 3)) ~write
            ~addr:(a * 8 mod 2048) ~size:4)
        raw;
      C.Cache.flush cache;
      let s = R.snapshot res in
      let check (c : R.counters) =
        c.R.clean_time = Array.fold_left ( + ) 0 c.R.clean_bins
        && c.R.dirty_time = Array.fold_left ( + ) 0 c.R.dirty_bins
        && c.R.fills = c.R.evictions + c.R.flushes
      in
      let per_owner_sum f =
        Array.fold_left (fun acc (_, c) -> acc + f c) 0 s.R.per_owner
      in
      check s.R.totals
      && Array.for_all (fun (_, c) -> check c) s.R.per_owner
      && R.Snapshot.resident_time s.R.totals
         = per_owner_sum R.Snapshot.resident_time
      && s.R.totals.R.fills = per_owner_sum (fun c -> c.R.fills))

(* --- clock plumbing invariance --- *)

let test_batch_matches_per_event () =
  let n = 2500 in
  let events = synthetic_events n in
  let serial_cache, serial_res = timed_cache ~horizon:n tiny in
  List.iter
    (fun (e : Mt.Event.t) ->
      C.Cache.access serial_cache ~owner:e.Mt.Event.owner
        ~write:e.Mt.Event.write ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size)
    events;
  C.Cache.flush serial_cache;
  let batch_cache, batch_res = timed_cache ~horizon:n tiny in
  Mt.Tape.replay (tape_of events) batch_cache;
  C.Cache.flush batch_cache;
  Alcotest.(check bool) "batch replay = per-event accesses" true
    (R.snapshot batch_res = R.snapshot serial_res);
  Alcotest.(check bool) "stats agree too" true
    (C.Stats.snapshot (C.Cache.stats batch_cache)
    = C.Stats.snapshot (C.Cache.stats serial_cache))

let test_sharded_merge_identity () =
  let tape = tape_of (synthetic_events 3000) in
  let n = Mt.Tape.length tape in
  let serial_cache, serial_res = timed_cache ~horizon:n tiny in
  Mt.Tape.replay tape serial_cache;
  C.Cache.flush serial_cache;
  let serial = R.snapshot serial_res in
  List.iter
    (fun shards ->
      let replicas =
        Array.init shards (fun shard ->
            let cache, res = timed_cache ~horizon:n tiny in
            Mt.Tape.replay_fused_sharded tape [| cache |] ~shards ~shard;
            C.Cache.flush cache;
            (cache, res))
      in
      let merged =
        R.sum (Array.to_list (Array.map snd replicas))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards merge to the serial accumulator" shards)
        true
        (R.snapshot merged = serial);
      let merged_stats =
        C.Stats.sum
          (Array.to_list (Array.map (fun (c, _) -> C.Cache.stats c) replicas))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards: stats unchanged by residency" shards)
        true
        (C.Stats.snapshot merged_stats
        = C.Stats.snapshot (C.Cache.stats serial_cache)))
    [ 1; 2; 8 ]

(* Attaching residency must not change what the cache computes. *)
let test_stats_unchanged_by_residency () =
  let events = synthetic_events 3000 in
  let plain = C.Cache.create tiny in
  Mt.Tape.replay (tape_of events) plain;
  C.Cache.flush plain;
  let timed, _ = timed_cache ~horizon:(List.length events) tiny in
  Mt.Tape.replay (tape_of events) timed;
  C.Cache.flush timed;
  Alcotest.(check bool) "stats identical with and without residency" true
    (C.Stats.snapshot (C.Cache.stats plain)
    = C.Stats.snapshot (C.Cache.stats timed))

(* --- merge / sum --- *)

let test_merge_and_sum () =
  let a = R.create ~bins:5 ~horizon:10 () in
  let b = R.create ~bins:5 ~horizon:10 () in
  R.record_interval a ~owner:1 ~dirty:false ~t0:0 ~t1:4;
  R.record_fill a ~owner:1;
  R.record_interval b ~owner:1 ~dirty:true ~t0:4 ~t1:10;
  R.record_interval b ~owner:2 ~dirty:false ~t0:2 ~t1:3;
  R.record_eviction b ~owner:1;
  let s = R.snapshot (R.sum [ a; b ]) in
  let o1 = R.Snapshot.owner s 1 in
  Alcotest.(check int) "summed clean" 4 o1.R.clean_time;
  Alcotest.(check int) "summed dirty" 6 o1.R.dirty_time;
  Alcotest.(check int) "summed fills" 1 o1.R.fills;
  Alcotest.(check int) "summed evictions" 1 o1.R.evictions;
  Alcotest.(check int) "second owner present" 1
    (R.Snapshot.resident_time (R.Snapshot.owner s 2));
  Alcotest.(check (list int)) "owners ascending" [ 1; 2 ]
    (R.Snapshot.owners s);
  expect_invalid "sum of nothing" (fun () -> ignore (R.sum []));
  expect_invalid "mismatched horizon" (fun () ->
      R.merge ~into:a (R.create ~bins:5 ~horizon:11 ()));
  expect_invalid "mismatched bins" (fun () ->
      R.merge ~into:a (R.create ~bins:4 ~horizon:10 ()));
  (* Absent owners read as zero, like Stats snapshots. *)
  Alcotest.(check int) "absent owner is zero" 0
    (R.Snapshot.resident_time (R.Snapshot.owner s 99))

(* --- timed verification rows --- *)

let test_timed_verify_strategies () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let replay =
    Core.Verify.run_all_timed ~jobs:1 ~strategy:Core.Verify.Replay ~workloads
      ()
  in
  Alcotest.(check bool) "rows exist" true (replay <> []);
  let fused =
    Core.Verify.run_all_timed ~jobs:1 ~strategy:Core.Verify.Fused ~workloads ()
  in
  Alcotest.(check bool) "fused = replay" true (fused = replay);
  List.iter
    (fun jobs ->
      let sharded =
        Core.Verify.run_all_timed ~jobs ~strategy:Core.Verify.Sharded
          ~workloads ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "sharded -j %d = replay" jobs)
        true (sharded = replay))
    [ 1; 2; 8 ];
  let wide =
    Core.Verify.run_all_timed ~jobs:2 ~strategy:Core.Verify.Sharded ~shards:16
      ~workloads ()
  in
  Alcotest.(check bool) "16 shards on 2 domains = replay" true (wide = replay);
  (* Each row's windows conserve its integrals. *)
  List.iter
    (fun (r : Core.Verify.time_row) ->
      let sum = Array.fold_left ( +. ) 0.0 in
      Alcotest.(check (float 1e-6)) "window conserves residency"
        (r.Core.Verify.clean_time +. r.Core.Verify.dirty_time)
        (sum r.Core.Verify.window);
      Alcotest.(check (float 1e-6)) "dirty window conserves dirty time"
        r.Core.Verify.dirty_time
        (sum r.Core.Verify.window_dirty))
    replay;
  (* Deeper hierarchies keep the invariance. *)
  let l2 =
    Core.Verify.run_all_timed ~jobs:1 ~strategy:Core.Verify.Replay ~workloads
      ~levels:2 ()
  in
  let l2_sharded =
    Core.Verify.run_all_timed ~jobs:2 ~strategy:Core.Verify.Sharded ~workloads
      ~levels:2 ()
  in
  Alcotest.(check bool) "levels:2 sharded -j2 = replay" true (l2_sharded = l2);
  expect_invalid "retrace rejected" (fun () ->
      ignore
        (Core.Verify.run_all_timed ~jobs:1 ~strategy:Core.Verify.Retrace
           ~workloads ()));
  expect_invalid "bins 0 rejected" (fun () ->
      ignore (Core.Verify.run_all_timed ~jobs:1 ~workloads ~bins:0 ()))

let suite =
  [
    Alcotest.test_case "validation and clamping" `Quick test_validation;
    Alcotest.test_case "hand-computed evictions" `Quick
      test_hand_computed_evictions;
    Alcotest.test_case "hand-computed dirty transition" `Quick
      test_hand_computed_dirty_transition;
    Alcotest.test_case "integral = per-event census" `Quick
      test_conservation_census;
    QCheck_alcotest.to_alcotest prop_conservation;
    Alcotest.test_case "batch clock = per-event clock" `Quick
      test_batch_matches_per_event;
    Alcotest.test_case "sharded replicas merge to serial" `Quick
      test_sharded_merge_identity;
    Alcotest.test_case "stats unchanged by residency" `Quick
      test_stats_unchanged_by_residency;
    Alcotest.test_case "merge and sum" `Quick test_merge_and_sum;
    Alcotest.test_case "timed verify rows invariant" `Quick
      test_timed_verify_strategies;
  ]
