module P = Dvf_util.Parallel

let test_empty_input () =
  Alcotest.(check (list int)) "map_list []" [] (P.map_list ~jobs:4 Fun.id []);
  Alcotest.(check int) "map [||]" 0 (Array.length (P.map ~jobs:4 Fun.id [||]))

let test_order_preserved_jobs_gt_items () =
  let out = P.map_list ~jobs:8 (fun x -> x * x) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "squares" [ 1; 4; 9 ] out

let test_order_preserved_items_gt_jobs () =
  let xs = List.init 100 Fun.id in
  let out = P.map_list ~jobs:3 (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "doubles in order" (List.map (fun x -> 2 * x) xs)
    out

let test_jobs_one_is_serial () =
  (* jobs = 1 must not spawn domains: side effects happen in the calling
     domain, in order. *)
  let self = Domain.self () in
  let trace = ref [] in
  let out =
    P.map_list ~jobs:1
      (fun x ->
        Alcotest.(check bool) "same domain" true (Domain.self () = self);
        trace := x :: !trace;
        x + 1)
      [ 10; 20; 30 ]
  in
  Alcotest.(check (list int)) "results" [ 11; 21; 31 ] out;
  Alcotest.(check (list int)) "in-order effects" [ 10; 20; 30 ]
    (List.rev !trace)

let test_exception_propagation () =
  let completed = Atomic.make 0 in
  let run () =
    P.map_list ~jobs:4
      (fun x ->
        if x = 3 then failwith "job 3 exploded";
        Atomic.incr completed;
        x)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  (match run () with
  | _ -> Alcotest.fail "expected the job's exception"
  | exception Failure m -> Alcotest.(check string) "message" "job 3 exploded" m);
  (* All other jobs still ran to completion before the re-raise. *)
  Alcotest.(check int) "other jobs completed" 7 (Atomic.get completed)

let test_first_failure_in_input_order () =
  (* Two failing jobs: the one earliest in the input is re-raised no
     matter which worker finishes first. *)
  match
    P.map_list ~jobs:4
      (fun x -> if x >= 5 then failwith (Printf.sprintf "boom %d" x) else x)
      [ 0; 5; 1; 6 ]
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "earliest job" "boom 5" m

let test_pool_reuse_and_shutdown () =
  let pool = P.Pool.create ~jobs:3 () in
  Alcotest.(check int) "size" 3 (P.Pool.size pool);
  let a = P.Pool.map_list pool (fun x -> x + 1) [ 1; 2; 3 ] in
  let b = P.Pool.map_list pool string_of_int [ 7; 8 ] in
  Alcotest.(check (list int)) "first map" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second map" [ "7"; "8" ] b;
  P.Pool.shutdown pool;
  match P.Pool.map_list pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "map after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_create_rejects_nonpositive_jobs () =
  match P.Pool.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs:0 must raise"
  | exception Invalid_argument _ -> ()

let test_with_pool_shuts_down_on_exception () =
  (* The worker domains must be joined even when the callback raises;
     if they weren't, the runtime would abort at exit with live domains. *)
  (match P.with_pool ~jobs:2 (fun _ -> failwith "escape") with
  | () -> Alcotest.fail "expected escape"
  | exception Failure m -> Alcotest.(check string) "escaped" "escape" m);
  Alcotest.(check pass) "pool cleaned up" () ()

(* The headline contract: a parallel verification sweep returns exactly
   the serial sweep's rows — same values (floats compared exactly), same
   order.  VM and MC are the two cheapest kernels. *)
let test_verify_run_all_deterministic () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let serial = Core.Verify.run_all ~jobs:1 ~workloads () in
  let parallel = Core.Verify.run_all ~jobs:4 ~workloads () in
  Alcotest.(check int) "row count" (List.length serial) (List.length parallel);
  Alcotest.(check bool) "rows bit-identical" true (serial = parallel)

let test_experiments_sweeps_deterministic () =
  let serial = Core.Experiments.fig6 ~jobs:1 ~sizes:[ 100; 200 ] () in
  let parallel = Core.Experiments.fig6 ~jobs:4 ~sizes:[ 100; 200 ] () in
  Alcotest.(check bool) "fig6 rows identical" true (serial = parallel);
  let instance = Core.Workloads.verification_instance Core.Workloads.vm in
  let caps = [ 4096; 8192; 16384 ] in
  let s = Core.Experiments.cache_sweep ~jobs:1 ~capacities:caps instance in
  let p = Core.Experiments.cache_sweep ~jobs:4 ~capacities:caps instance in
  Alcotest.(check bool) "cache_sweep rows identical" true (s = p)

let suite =
  [
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "order preserved (jobs > items)" `Quick
      test_order_preserved_jobs_gt_items;
    Alcotest.test_case "order preserved (items > jobs)" `Quick
      test_order_preserved_items_gt_jobs;
    Alcotest.test_case "jobs=1 is the serial path" `Quick
      test_jobs_one_is_serial;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "first failure in input order" `Quick
      test_first_failure_in_input_order;
    Alcotest.test_case "pool reuse and shutdown" `Quick
      test_pool_reuse_and_shutdown;
    Alcotest.test_case "nonpositive jobs rejected" `Quick
      test_create_rejects_nonpositive_jobs;
    Alcotest.test_case "with_pool cleans up on exception" `Quick
      test_with_pool_shuts_down_on_exception;
    Alcotest.test_case "verify sweep deterministic" `Slow
      test_verify_run_all_deterministic;
    Alcotest.test_case "experiment sweeps deterministic" `Slow
      test_experiments_sweeps_deterministic;
  ]
