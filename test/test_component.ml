(* Cache-component DVF (the paper's SS I generalization) and the
   reference-count estimators behind it. *)

module M = Dvf_util.Maths
module Ap = Access_patterns

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let cache = Cachesim.Config.small_verification

let test_pattern_references () =
  checkf "stream" 100.0
    (Ap.Pattern.references
       (Ap.Pattern.Stream (Ap.Streaming.make ~elem_size:8 ~elements:100 ~stride:1 ())));
  checkf "strided stream" 25.0
    (Ap.Pattern.references
       (Ap.Pattern.Stream (Ap.Streaming.make ~elem_size:8 ~elements:100 ~stride:4 ())));
  checkf "writeback doubles" 200.0
    (Ap.Pattern.references
       (Ap.Pattern.Stream
          (Ap.Streaming.make ~writeback:true ~elem_size:8 ~elements:100 ~stride:1 ())));
  checkf "random = construction + k*iter" (1000.0 +. (20.0 *. 50.0))
    (Ap.Pattern.references
       (Ap.Pattern.Random
          (Ap.Random_access.make ~elements:1000 ~elem_size:8 ~visits:20
             ~iterations:50 ~cache_ratio:1.0 ())));
  checkf "template = refs length" 7.0
    (Ap.Pattern.references
       (Ap.Pattern.Templated
          (Ap.Template.make ~elem_size:8 [| 0; 1; 2; 0; 1; 2; 0 |])))

let test_references_exceed_memory_accesses () =
  (* Every main-memory access is caused by a reference, never the other
     way round. *)
  List.iter
    (fun (w : Core.Workload.t) ->
      let instance = Core.Workloads.verification_instance w in
      let spec = instance.Core.Workload.spec in
      let refs = Ap.App_spec.cache_references ~cache spec in
      let mem = Ap.App_spec.main_memory_accesses ~cache spec in
      List.iter
        (fun (name, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: refs %.0f >= mem %.0f"
               w.Core.Workload.name name r (List.assoc name mem))
            true
            (r >= List.assoc name mem -. 1e-6))
        refs)
    [ Core.Workloads.vm; Core.Workloads.nb; Core.Workloads.mc ]

let test_reference_count_matches_trace () =
  (* For VM, the analytical reference count equals the traced event
     count exactly. *)
  let p = Kernels.Vm.verification in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let _ = Kernels.Vm.run registry recorder p in
  let spec = Kernels.Vm.spec p in
  let modeled =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0
      (Ap.App_spec.cache_references ~cache spec)
  in
  checkf "total references" (float_of_int (Memtrace.Recorder.events_emitted recorder))
    modeled

let test_cache_dvf_resident_capped () =
  let spec = Kernels.Vm.spec Kernels.Vm.profiling in
  let d = Core.Component.cache_dvf ~cache ~time:1e-3 spec in
  List.iter
    (fun (s : Core.Dvf.structure_dvf) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s resident %d <= capacity" s.Core.Dvf.name s.Core.Dvf.bytes)
        true
        (s.Core.Dvf.bytes <= Cachesim.Config.capacity cache))
    d.Core.Dvf.structures

let test_both_components () =
  let spec = Kernels.Vm.spec Kernels.Vm.verification in
  let both = Core.Component.both ~cache ~time:1e-3 spec in
  Alcotest.(check int) "same structure count"
    (List.length both.Core.Component.memory.Core.Dvf.structures)
    (List.length both.Core.Component.cache.Core.Dvf.structures);
  (* A small working set (4 KB of 8 KB cache): the cache sees far more
     accesses than memory, but holds far fewer vulnerable bytes; both
     DVFs must be positive and finite. *)
  Alcotest.(check bool) "memory positive" true
    (both.Core.Component.memory.Core.Dvf.total > 0.0);
  Alcotest.(check bool) "cache positive" true
    (both.Core.Component.cache.Core.Dvf.total > 0.0);
  let table = Core.Component.to_table both in
  Alcotest.(check bool) "table renders" true
    (String.length (Dvf_util.Table.render table) > 100)

let test_cache_fit_scales () =
  let spec = Kernels.Vm.spec Kernels.Vm.verification in
  let d1 = Core.Component.cache_dvf ~fit:100.0 ~cache ~time:1e-3 spec in
  let d2 = Core.Component.cache_dvf ~fit:200.0 ~cache ~time:1e-3 spec in
  checkf "linear in cache FIT" (2.0 *. d1.Core.Dvf.total) d2.Core.Dvf.total

let suite =
  [
    Alcotest.test_case "pattern reference counts" `Quick test_pattern_references;
    Alcotest.test_case "references >= memory accesses" `Quick
      test_references_exceed_memory_accesses;
    Alcotest.test_case "reference count matches trace" `Quick
      test_reference_count_matches_trace;
    Alcotest.test_case "resident bytes capped" `Quick
      test_cache_dvf_resident_capped;
    Alcotest.test_case "both components" `Quick test_both_components;
    Alcotest.test_case "cache FIT scales" `Quick test_cache_fit_scales;
  ]
