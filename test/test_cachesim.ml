module C = Cachesim

let tiny_config =
  (* 2-way, 2 sets, 16 B lines: 64 B cache, small enough to reason about
     every eviction by hand. *)
  C.Config.make ~name:"tiny" ~associativity:2 ~sets:2 ~line:16

let test_config_capacity () =
  Alcotest.(check int) "capacity" 64 (C.Config.capacity tiny_config);
  Alcotest.(check int) "blocks" 4 (C.Config.blocks tiny_config)

let test_config_validation () =
  Alcotest.check_raises "bad sets"
    (Invalid_argument "Config.make: sets must be a positive power of two (got 3)")
    (fun () -> ignore (C.Config.make ~name:"x" ~associativity:1 ~sets:3 ~line:16));
  Alcotest.check_raises "bad line"
    (Invalid_argument "Config.make: line must be a positive power of two (got 10)")
    (fun () -> ignore (C.Config.make ~name:"x" ~associativity:1 ~sets:2 ~line:10));
  Alcotest.check_raises "bad assoc"
    (Invalid_argument "Config.make: associativity must be positive (got 0)")
    (fun () -> ignore (C.Config.make ~name:"x" ~associativity:0 ~sets:2 ~line:16))

(* Regression: flooring log2 / sets-1 masking silently mis-indexed any
   non-power-of-two geometry, so every rejected shape here was once a
   wrong simulation instead of an error.  Zero and negative values must
   fail too (0 passes the [n land (n-1) = 0] bit test alone). *)
let test_config_rejects_all_bad_geometry () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  List.iter
    (fun sets ->
      expect_invalid
        (Printf.sprintf "sets=%d" sets)
        (fun () -> C.Config.make ~name:"x" ~associativity:1 ~sets ~line:16))
    [ 0; -1; 3; 6; 48; 100; 4095 ];
  List.iter
    (fun line ->
      expect_invalid
        (Printf.sprintf "line=%d" line)
        (fun () -> C.Config.make ~name:"x" ~associativity:1 ~sets:2 ~line))
    [ 0; -16; 3; 24; 48; 100 ];
  (* Non-power-of-two associativity is legal (Table IV's 1MB cache is
     6-way). *)
  ignore (C.Config.make ~name:"6-way" ~associativity:6 ~sets:2 ~line:16)

let test_is_power_of_two () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "is_power_of_two %d" n)
        expected
        (C.Config.is_power_of_two n))
    [ (1, true); (2, true); (64, true); (0, false); (-4, false); (6, false) ]

let test_stats_merge () =
  let a = C.Stats.create () in
  let b = C.Stats.create () in
  C.Stats.record_access a ~owner:1 ~write:false ~hit:false;
  C.Stats.record_access a ~owner:1 ~write:true ~hit:true;
  C.Stats.record_writeback a ~owner:1;
  C.Stats.record_access b ~owner:1 ~write:false ~hit:true;
  (* Owner 20 only exists in [b]: merge must grow the accumulator. *)
  C.Stats.record_access b ~owner:20 ~write:true ~hit:false;
  C.Stats.merge ~into:a b;
  let c1 = C.Stats.owner_counters a 1 in
  Alcotest.(check int) "reads" 2 c1.C.Stats.reads;
  Alcotest.(check int) "writes" 1 c1.C.Stats.writes;
  Alcotest.(check int) "hits" 2 c1.C.Stats.hits;
  Alcotest.(check int) "misses" 1 c1.C.Stats.misses;
  Alcotest.(check int) "writebacks" 1 c1.C.Stats.writebacks;
  let c20 = C.Stats.owner_counters a 20 in
  Alcotest.(check int) "grown owner misses" 1 c20.C.Stats.misses;
  (* [b] is untouched by the merge. *)
  Alcotest.(check int) "src untouched" 1 (C.Stats.owner_counters b 1).C.Stats.hits

let test_stats_sum_equals_combined_run () =
  (* Split one access stream across two caches; summed stats must equal
     the totals of each part combined (the parallel-sweep aggregation
     contract). *)
  let mk () = C.Cache.create tiny_config in
  let c1 = mk () and c2 = mk () in
  List.iter
    (fun (c, addr) -> C.Cache.access c ~owner:1 ~write:true ~addr ~size:4)
    [ (c1, 0); (c1, 32); (c2, 64); (c2, 96); (c2, 0) ];
  let summed = C.Stats.sum [ C.Cache.stats c1; C.Cache.stats c2 ] in
  let t = C.Stats.totals summed in
  Alcotest.(check int) "writes" 5 t.C.Stats.writes;
  Alcotest.(check int) "misses" 5 t.C.Stats.misses

let test_table_iv_presets () =
  Alcotest.(check int) "small verif 8KB" 8192
    (C.Config.capacity C.Config.small_verification);
  Alcotest.(check int) "16KB profiling" 16384
    (C.Config.capacity C.Config.profiling_16kb);
  Alcotest.(check int) "128KB profiling" 131072
    (C.Config.capacity C.Config.profiling_128kb);
  Alcotest.(check int) "768KB profiling (paper's \"1MB\")" 786432
    (C.Config.capacity C.Config.profiling_768kb);
  Alcotest.(check int) "4MB profiling (paper's \"8MB\")" 4194304
    (C.Config.capacity C.Config.profiling_4mb)

(* Regression for the mislabeled Table IV presets: the paper's "1MB" is
   really 768 KB and its "8MB" really 4 MB.  Every named config whose
   name is a byte size must render its parameter-derived capacity
   exactly, so a label can never drift from the geometry again. *)
let test_named_capacity_matches_name () =
  List.iter
    (fun (cfg : C.Config.t) ->
      let looks_like_size =
        String.length cfg.name > 2
        && (match cfg.name.[0] with '0' .. '9' -> true | _ -> false)
        && (String.length cfg.name >= 2
            && String.sub cfg.name (String.length cfg.name - 1) 1 = "B")
      in
      if looks_like_size then
        Alcotest.(check string)
          (Printf.sprintf "capacity renders as %s" cfg.name)
          cfg.name
          (Format.asprintf "%a" Dvf_util.Units.pp_bytes (C.Config.capacity cfg)))
    (C.Config.profiling_set @ C.Config.verification_set);
  (* All four profiling presets are size-named, so the check above is not
     vacuous. *)
  Alcotest.(check int) "size-named configs" 4
    (List.length
       (List.filter
          (fun (cfg : C.Config.t) ->
            match cfg.name.[0] with '0' .. '9' -> true | _ -> false)
          C.Config.profiling_set))

let test_cold_miss_then_hit () =
  let cache = C.Cache.create tiny_config in
  Alcotest.(check bool) "cold miss" false
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  Alcotest.(check bool) "hit" true
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  Alcotest.(check bool) "same line different byte" true
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:15)

let test_lru_eviction_order () =
  let cache = C.Cache.create tiny_config in
  (* Set 0 holds lines with (line mod 2 = 0): lines 0, 2, 4 (addresses 0,
     32, 64).  2-way: loading 0 then 2 then touching 0 again then loading
     4 must evict 2 (the LRU), not 0. *)
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:32);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:64);
  Alcotest.(check bool) "0 survives" true
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  Alcotest.(check bool) "32 evicted" false
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:32)

let test_set_mapping () =
  let cache = C.Cache.create tiny_config in
  (* Lines 0 and 1 (addresses 0 and 16) map to different sets and never
     conflict. *)
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:16);
  Alcotest.(check bool) "line 0 resident" true
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  Alcotest.(check bool) "line 1 resident" true
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:16)

let test_writeback_on_dirty_eviction () =
  let cache = C.Cache.create tiny_config in
  (* Dirty line 0 in set 0, then evict it with two more set-0 lines. *)
  ignore (C.Cache.touch_line cache ~owner:3 ~write:true ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:32);
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:64);
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:96);
  let c = C.Stats.owner_counters (C.Cache.stats cache) 3 in
  Alcotest.(check int) "one writeback" 1 c.C.Stats.writebacks

let test_clean_eviction_no_writeback () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:32);
  ignore (C.Cache.touch_line cache ~owner:3 ~write:false ~line_addr:64);
  let c = C.Stats.owner_counters (C.Cache.stats cache) 3 in
  Alcotest.(check int) "no writebacks" 0 c.C.Stats.writebacks

let test_writeback_attributed_to_line_owner () =
  let cache = C.Cache.create tiny_config in
  (* Owner 1 dirties a line; owner 2 evicts it.  The writeback belongs to
     owner 1. *)
  ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:2 ~write:false ~line_addr:32);
  ignore (C.Cache.touch_line cache ~owner:2 ~write:false ~line_addr:64);
  let s = C.Cache.stats cache in
  Alcotest.(check int) "owner 1 writeback" 1
    (C.Stats.owner_counters s 1).C.Stats.writebacks;
  Alcotest.(check int) "owner 2 none" 0
    (C.Stats.owner_counters s 2).C.Stats.writebacks

let test_access_spans_lines () =
  let cache = C.Cache.create tiny_config in
  (* A 20-byte access at address 10 touches lines 0 and 1. *)
  C.Cache.access cache ~owner:1 ~write:false ~addr:10 ~size:20;
  let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
  Alcotest.(check int) "two lookups" 2 (c.C.Stats.reads);
  Alcotest.(check int) "two misses" 2 c.C.Stats.misses

let test_flush_counts_dirty () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:16);
  C.Cache.flush cache;
  let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
  Alcotest.(check int) "one writeback from flush" 1 c.C.Stats.writebacks;
  (* After flush everything misses again. *)
  Alcotest.(check bool) "cold after flush" false
    (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0)

let test_invalidate_drops_silently () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:0);
  C.Cache.invalidate cache;
  let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
  Alcotest.(check int) "no writeback" 0 c.C.Stats.writebacks

let test_resident_lines () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:2 ~write:false ~line_addr:16);
  Alcotest.(check int) "owner 1" 1 (C.Cache.resident_lines cache ~owner:1);
  Alcotest.(check int) "owner 2" 1 (C.Cache.resident_lines cache ~owner:2)

let test_streaming_miss_count () =
  (* A unit-stride traverse of D bytes must miss exactly ceil(D/CL). *)
  let cache = C.Cache.create tiny_config in
  let bytes = 1000 in
  for addr = 0 to bytes - 1 do
    C.Cache.access cache ~owner:1 ~write:false ~addr ~size:1
  done;
  let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
  Alcotest.(check int) "compulsory misses" (Dvf_util.Maths.cdiv bytes 16)
    c.C.Stats.misses

let test_working_set_fits_no_capacity_misses () =
  (* 4 lines fit exactly; repeated traversal of 2 lines per set never
     misses after the first pass. *)
  let cache = C.Cache.create tiny_config in
  for _pass = 1 to 10 do
    List.iter
      (fun addr ->
        ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:addr))
      [ 0; 16; 32; 48 ]
  done;
  let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
  Alcotest.(check int) "only 4 cold misses" 4 c.C.Stats.misses

let test_stats_totals () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:5 ~write:true ~line_addr:16);
  let totals = C.Stats.totals (C.Cache.stats cache) in
  Alcotest.(check int) "reads" 1 totals.C.Stats.reads;
  Alcotest.(check int) "writes" 1 totals.C.Stats.writes;
  Alcotest.(check int) "misses" 2 totals.C.Stats.misses;
  Alcotest.(check (list int)) "owners" [ 1; 5 ]
    (C.Stats.owners (C.Cache.stats cache))

(* --- immutable snapshots --- *)

let test_snapshot_matches_live_counters () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:5 ~write:true ~line_addr:16);
  ignore (C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:0);
  let stats = C.Cache.stats cache in
  let snap = C.Stats.snapshot stats in
  Alcotest.(check bool) "totals agree" true
    (C.Stats.Snapshot.totals snap = C.Stats.totals stats);
  Alcotest.(check (list int)) "owners agree" (C.Stats.owners stats)
    (C.Stats.Snapshot.owners snap);
  List.iter
    (fun owner ->
      Alcotest.(check bool)
        (Printf.sprintf "owner %d counters agree" owner)
        true
        (C.Stats.Snapshot.owner snap owner = C.Stats.owner_counters stats owner);
      Alcotest.(check int)
        (Printf.sprintf "owner %d main memory agrees" owner)
        (C.Stats.main_memory_accesses stats owner)
        (C.Stats.Snapshot.owner_main_memory snap owner))
    (C.Stats.owners stats);
  Alcotest.(check int) "total main memory agrees"
    (C.Stats.total_main_memory_accesses stats)
    (C.Stats.Snapshot.total_main_memory snap);
  Alcotest.(check int) "accesses = reads + writes" 3
    (C.Stats.Snapshot.accesses (C.Stats.Snapshot.totals snap))

let test_snapshot_immutable_under_later_accesses () =
  let cache = C.Cache.create tiny_config in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:0);
  let snap = C.Stats.snapshot (C.Cache.stats cache) in
  for i = 1 to 10 do
    ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:(i * 16))
  done;
  C.Cache.flush cache;
  Alcotest.(check int) "snapshot frozen at capture" 1
    (C.Stats.Snapshot.accesses (C.Stats.Snapshot.totals snap));
  Alcotest.(check int) "unknown owner is zero" 0
    (C.Stats.Snapshot.accesses (C.Stats.Snapshot.owner snap 99))

(* Property: the simulator never reports more hits than lookups, and
   misses + hits = lookups. *)
let prop_stats_consistent =
  QCheck.Test.make ~count:100 ~name:"hits + misses = lookups"
    QCheck.(list_of_size (Gen.int_range 1 500) (pair (int_range 0 2048) bool))
    (fun ops ->
      let cache = C.Cache.create tiny_config in
      List.iter
        (fun (addr, write) ->
          ignore (C.Cache.touch_line cache ~owner:1 ~write ~line_addr:addr))
        ops;
      let c = C.Stats.owner_counters (C.Cache.stats cache) 1 in
      c.C.Stats.hits + c.C.Stats.misses = c.C.Stats.reads + c.C.Stats.writes)

(* Property: an LRU cache of B blocks total hits whenever the stack
   distance is < associativity within a set; cross-check against a naive
   per-set LRU list model. *)
let prop_matches_reference_lru =
  QCheck.Test.make ~count:100 ~name:"matches reference LRU model"
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 1023))
    (fun line_addrs ->
      let cache = C.Cache.create tiny_config in
      let sets = Array.make 2 [] in
      let ok = ref true in
      List.iter
        (fun addr ->
          let line = addr / 16 in
          let set = line mod 2 in
          let expected_hit = List.mem line sets.(set) in
          let lru = sets.(set) in
          let without = List.filter (fun l -> l <> line) lru in
          sets.(set) <- line :: (if List.length without > 1 then [ List.hd without ] else without);
          let got = C.Cache.touch_line cache ~owner:1 ~write:false ~line_addr:(line * 16) in
          if got <> expected_hit then ok := false)
        line_addrs;
      !ok)

let suite =
  [
    Alcotest.test_case "config capacity" `Quick test_config_capacity;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "config rejects all bad geometry" `Quick
      test_config_rejects_all_bad_geometry;
    Alcotest.test_case "is_power_of_two" `Quick test_is_power_of_two;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "stats sum equals combined run" `Quick
      test_stats_sum_equals_combined_run;
    Alcotest.test_case "Table IV presets" `Quick test_table_iv_presets;
    Alcotest.test_case "named capacities match names" `Quick
      test_named_capacity_matches_name;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "set mapping" `Quick test_set_mapping;
    Alcotest.test_case "writeback on dirty eviction" `Quick
      test_writeback_on_dirty_eviction;
    Alcotest.test_case "clean eviction no writeback" `Quick
      test_clean_eviction_no_writeback;
    Alcotest.test_case "writeback attribution" `Quick
      test_writeback_attributed_to_line_owner;
    Alcotest.test_case "access spans lines" `Quick test_access_spans_lines;
    Alcotest.test_case "flush counts dirty lines" `Quick
      test_flush_counts_dirty;
    Alcotest.test_case "invalidate drops silently" `Quick
      test_invalidate_drops_silently;
    Alcotest.test_case "resident lines" `Quick test_resident_lines;
    Alcotest.test_case "streaming miss count" `Quick test_streaming_miss_count;
    Alcotest.test_case "no capacity misses when fits" `Quick
      test_working_set_fits_no_capacity_misses;
    Alcotest.test_case "stats totals" `Quick test_stats_totals;
    Alcotest.test_case "snapshot matches live counters" `Quick
      test_snapshot_matches_live_counters;
    Alcotest.test_case "snapshot immutable" `Quick
      test_snapshot_immutable_under_later_accesses;
    QCheck_alcotest.to_alcotest prop_stats_consistent;
    QCheck_alcotest.to_alcotest prop_matches_reference_lru;
  ]
