(* Perf roofline, Workloads metadata, Verify/Profile drivers and the
   Experiments figures. *)

module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

(* --- Perf --- *)

let test_roofline_compute_bound () =
  let m = Core.Perf.make_machine ~name:"m" ~peak_flops:1e9 ~memory_bandwidth:1e12 in
  let cache = Cachesim.Config.profiling_4mb in
  (* 1e9 flops at 1 Gflop/s = 1 s; memory side is negligible. *)
  checkf "compute bound" 1.0
    (Core.Perf.execution_time m ~cache ~flops:1_000_000_000 ~n_ha:10.0)

let test_roofline_memory_bound () =
  let m = Core.Perf.make_machine ~name:"m" ~peak_flops:1e15 ~memory_bandwidth:64e6 in
  let cache = Cachesim.Config.profiling_4mb in
  (* 1e6 line transfers x 64 B at 64 MB/s = 1 s. *)
  checkf "memory bound" 1.0
    (Core.Perf.execution_time m ~cache ~flops:10 ~n_ha:1_000_000.0)

let test_roofline_is_max () =
  let m = Core.Perf.make_machine ~name:"m" ~peak_flops:1e9 ~memory_bandwidth:64e6 in
  let cache = Cachesim.Config.profiling_4mb in
  let t = Core.Perf.execution_time m ~cache ~flops:500_000_000 ~n_ha:500_000.0 in
  checkf "max of both" (Float.max 0.5 0.5) t

let test_perf_validation () =
  Alcotest.check_raises "bad flops"
    (Invalid_argument "Perf.make_machine: peak_flops <= 0") (fun () ->
      ignore (Core.Perf.make_machine ~name:"x" ~peak_flops:0.0 ~memory_bandwidth:1.0))

(* --- Workloads --- *)

let test_table2_metadata () =
  Alcotest.(check bool) "at least the six kernels" true
    (List.length (Core.Workloads.all ()) >= 6);
  Alcotest.(check (list string)) "CG structures" [ "A"; "x"; "p"; "r" ]
    Core.Workloads.cg.Core.Workload.major_structures;
  Alcotest.(check string) "MC benchmark" "XSBench"
    Core.Workloads.mc.Core.Workload.example_benchmark

let test_instances_consistent () =
  (* Spec structure names must cover Table II's major structures. *)
  List.iter
    (fun (w : Core.Workload.t) ->
      let instance = Core.Workloads.verification_instance w in
      let spec_names =
        List.map
          (fun (s : Access_patterns.App_spec.structure) ->
            s.Access_patterns.App_spec.name)
          instance.Core.Workload.spec.Access_patterns.App_spec.structures
      in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (w.Core.Workload.name ^ " declares " ^ name)
            true (List.mem name spec_names))
        w.Core.Workload.major_structures;
      Alcotest.(check bool)
        (w.Core.Workload.name ^ " has flops")
        true
        (instance.Core.Workload.flops > 0))
    [ Core.Workloads.vm; Core.Workloads.nb; Core.Workloads.mc ]

(* --- Verify --- *)

let test_verify_vm () =
  let rows =
    Core.Verify.run_all ~workloads:[ Core.Workloads.vm ] ()
  in
  (* 3 structures x 2 caches. *)
  Alcotest.(check int) "row count" 6 (List.length rows);
  List.iter
    (fun (r : Core.Verify.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s within 15%%" r.Core.Verify.structure
           r.Core.Verify.cache.Cachesim.Config.name)
        true
        (Core.Verify.error r <= 0.15))
    rows;
  List.iter
    (fun cache ->
      Alcotest.(check bool) "aggregate within 15%" true
        (Core.Verify.workload_error ~rows "VM" cache <= 0.15))
    Cachesim.Config.verification_set

(* --- Profile --- *)

let test_profile_vm_shapes () =
  let rows = Core.Profile.run_all ~workloads:[ Core.Workloads.vm ] () in
  (* 4 caches x (3 structures + 1 aggregate). *)
  Alcotest.(check int) "row count" 16 (List.length rows);
  let dvf structure cache =
    (List.find
       (fun (r : Core.Profile.row) ->
         r.Core.Profile.structure = structure
         && r.Core.Profile.cache.Cachesim.Config.name = cache)
       rows)
      .Core.Profile.dvf
  in
  (* Fig. 5(a): A dominates B and C on every cache. *)
  List.iter
    (fun cache ->
      Alcotest.(check bool) ("A > B on " ^ cache) true (dvf "A" cache > dvf "B" cache);
      Alcotest.(check bool) ("A > C on " ^ cache) true (dvf "A" cache > dvf "C" cache))
    [ "16KB"; "128KB"; "768KB"; "4MB" ];
  (* The aggregate is the sum of the structures. *)
  checkf ~eps:1e-9 "aggregate"
    (dvf "A" "4MB" +. dvf "B" "4MB" +. dvf "C" "4MB")
    (dvf "VM" "4MB")

let test_profile_ft_cliff () =
  let rows = Core.Profile.run_all ~workloads:[ Core.Workloads.ft ] () in
  let dvf cache =
    (List.find
       (fun (r : Core.Profile.row) ->
         r.Core.Profile.structure = "FT"
         && r.Core.Profile.cache.Cachesim.Config.name = cache)
       rows)
      .Core.Profile.dvf
  in
  (* Fig. 5(e): sudden jump once the cache is smaller than the working
     set (32 KB signal vs 16 KB cache), flat-ish among the larger caches. *)
  Alcotest.(check bool) "cliff at 16KB" true (dvf "16KB" > 20.0 *. dvf "128KB");
  Alcotest.(check bool) "no cliff between 128KB and 768KB" true
    (dvf "128KB" < 20.0 *. dvf "768KB")

(* --- Experiments --- *)

let test_fig6_crossover () =
  let rows = Core.Experiments.fig6 ~sizes:[ 100; 400; 800 ] () in
  let r100 = List.nth rows 0 and r800 = List.nth rows 2 in
  (* Small: PCG no better (paper: slightly worse, "pretty close"). *)
  Alcotest.(check bool) "PCG >= CG at n=100" true
    (r100.Core.Experiments.pcg_dvf >= r100.Core.Experiments.cg_dvf *. 0.99);
  (* Large: PCG clearly better. *)
  Alcotest.(check bool) "PCG < CG at n=800" true
    (r800.Core.Experiments.pcg_dvf < r800.Core.Experiments.cg_dvf);
  (* And the advantage grows with n. *)
  let ratio (r : Core.Experiments.fig6_row) =
    r.Core.Experiments.pcg_dvf /. r.Core.Experiments.cg_dvf
  in
  Alcotest.(check bool) "ratio improves" true (ratio r800 < ratio r100)

let test_fig7_shape () =
  let rows = Core.Experiments.fig7 ~steps:30 () in
  Alcotest.(check int) "31 points" 31 (List.length rows);
  let s_opt, c_opt = Core.Experiments.fig7_optimum rows in
  checkf ~eps:1e-6 "secded optimum 5%" 0.05 s_opt;
  checkf ~eps:1e-6 "chipkill optimum 5%" 0.05 c_opt;
  List.iter
    (fun (r : Core.Experiments.fig7_row) ->
      Alcotest.(check bool) "chipkill below secded" true
        (r.Core.Experiments.chipkill_dvf <= r.Core.Experiments.secded_dvf +. 1e-12))
    rows

let test_cache_sweep_ft_cliff () =
  let instance = Core.Workloads.profiling_instance Core.Workloads.ft in
  let rows = Core.Experiments.cache_sweep instance in
  (* N_ha is non-increasing in capacity, so with T fixed per row the DVF
     never *rises* with a bigger cache by more than the time term moves;
     check the strong property on N_ha via monotone DVF here since FT is
     memory-bound throughout. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "monotone at %d" b.Core.Experiments.capacity)
          true
          (b.Core.Experiments.dvf_a <= a.Core.Experiments.dvf_a +. 1e-9);
        check rest
    | _ -> ()
  in
  check rows;
  (* The 32 KB signal cliff sits between 16 KB and 64 KB. *)
  let dvf cap =
    (List.find (fun r -> r.Core.Experiments.capacity = cap) rows)
      .Core.Experiments.dvf_a
  in
  Alcotest.(check bool) "cliff" true (dvf 16384 > 10.0 *. dvf 65536)

let test_static_tables_render () =
  List.iter
    (fun table ->
      Alcotest.(check bool) "non-empty render" true
        (String.length (Dvf_util.Table.render (table ())) > 100))
    Core.Experiments.[ table2; table4; table5; table6; table7 ]

let suite =
  [
    Alcotest.test_case "roofline compute bound" `Quick
      test_roofline_compute_bound;
    Alcotest.test_case "roofline memory bound" `Quick test_roofline_memory_bound;
    Alcotest.test_case "roofline is max" `Quick test_roofline_is_max;
    Alcotest.test_case "perf validation" `Quick test_perf_validation;
    Alcotest.test_case "Table II metadata" `Quick test_table2_metadata;
    Alcotest.test_case "instances consistent" `Quick test_instances_consistent;
    Alcotest.test_case "verify VM" `Quick test_verify_vm;
    Alcotest.test_case "profile VM shapes" `Quick test_profile_vm_shapes;
    Alcotest.test_case "profile FT cliff" `Quick test_profile_ft_cliff;
    Alcotest.test_case "Fig.6 crossover" `Slow test_fig6_crossover;
    Alcotest.test_case "Fig.7 shape" `Quick test_fig7_shape;
    Alcotest.test_case "cache sweep FT cliff" `Quick test_cache_sweep_ft_cliff;
    Alcotest.test_case "static tables render" `Quick test_static_tables_render;
  ]
