(* The injection subsystem: per-kernel injectors (clean-reference and
   outcome-partition invariants), the serial/parallel campaign engine's
   bit-identity, and the DVF correlation report. *)

module Fi = Kernels.Fault_injection
module Inj = Core.Injection

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

let campaign = Alcotest.testable (fun ppf (c : Fi.campaign) ->
    Format.fprintf ppf "%s: %d/%d/%d of %d" c.Fi.structure c.Fi.benign
      c.Fi.sdc c.Fi.detected c.Fi.trials)
    ( = )

(* Small configurations so campaigns stay fast. *)
let nb_params = Kernels.Barnes_hut.make_params 80
let mg_params = Kernels.Multigrid.make_params ~v_cycles:1 8
let ft_params = Kernels.Fft.make_params 64
let mc_params = Kernels.Monte_carlo.make_params ~grid_points:128 ~nuclides:4 300

let injectors () =
  [
    Fi.nb_injector nb_params;
    Fi.mg_injector mg_params;
    Fi.ft_injector ft_params;
    Fi.mc_injector mc_params;
  ]

(* --- identity flips reproduce the clean run --- *)

let test_nb_identity_flip_is_clean () =
  let injected =
    Kernels.Barnes_hut.run_injected nb_params ~structure:`P ~flip_at:0
      ~pick:(fun _ -> 0) ~flip:Fun.id
  in
  let reference = (Kernels.Barnes_hut.run_untraced nb_params).Kernels.Barnes_hut.forces in
  Alcotest.(check int) "lengths" (Array.length reference) (Array.length injected);
  Array.iteri
    (fun i (fx, fy) ->
      let rx, ry = reference.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "force %d bit-identical" i)
        true
        (Int64.bits_of_float fx = Int64.bits_of_float rx
        && Int64.bits_of_float fy = Int64.bits_of_float ry))
    injected

let test_mg_identity_flip_is_clean () =
  let res, _ =
    Kernels.Multigrid.run_injected mg_params ~structure:`U ~flip_at:0
      ~pick:(fun _ -> 0) ~flip:Fun.id
  in
  let reference = Kernels.Multigrid.run_untraced mg_params in
  Alcotest.(check bool) "final residual bit-identical" true
    (Int64.bits_of_float res.Kernels.Multigrid.final_residual
    = Int64.bits_of_float reference.Kernels.Multigrid.final_residual)

let test_ft_identity_flip_is_clean () =
  let injected =
    Kernels.Fft.run_injected ft_params ~flip_at:0 ~pick:(fun _ -> 0)
      ~flip:Fun.id
  in
  let checksum =
    Array.fold_left (fun acc x -> acc +. Complex.norm x) 0.0 injected
  in
  let reference = Kernels.Fft.run_untraced ft_params in
  Alcotest.(check bool) "checksum bit-identical" true
    (Int64.bits_of_float checksum
    = Int64.bits_of_float reference.Kernels.Fft.checksum)

let test_mc_identity_flip_matches_untraced () =
  (* MC's injected loop interpolates from the grid values it reads, so
     it is numerically (not bit-) equivalent to the analytic loop. *)
  let injected =
    Kernels.Monte_carlo.run_injected mc_params ~structure:`G ~flip_at:0
      ~pick:(fun _ -> 0) ~flip:Fun.id
  in
  let reference = Kernels.Monte_carlo.run_untraced mc_params in
  Alcotest.(check bool) "totals agree to 1e-9" true
    (Dvf_util.Maths.rel_error
       ~expected:reference.Kernels.Monte_carlo.total_xs
       ~actual:injected.Kernels.Monte_carlo.total_xs
    < 1e-9)

(* --- every injector: determinism + outcome partition --- *)

let test_injector_invariants () =
  List.iter
    (fun (inj : Fi.injector) ->
      let a = Fi.run_campaigns ~seed:5 ~trials:25 inj in
      let b = Fi.run_campaigns ~seed:5 ~trials:25 inj in
      Alcotest.(check (list campaign)) (inj.Fi.label ^ " deterministic") a b;
      Alcotest.(check int)
        (inj.Fi.label ^ " one campaign per structure")
        (List.length inj.Fi.structures)
        (List.length a);
      List.iter
        (fun (c : Fi.campaign) ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s outcomes partition trials" inj.Fi.label
               c.Fi.structure)
            c.Fi.trials
            (c.Fi.benign + c.Fi.sdc + c.Fi.detected))
        a;
      (* A different seed draws different strikes somewhere. *)
      let c = Fi.run_campaigns ~seed:6 ~trials:25 inj in
      Alcotest.(check bool)
        (inj.Fi.label ^ " seed matters")
        true (a <> c);
      (* Strikes are not universally harmless: with high bits in play
         some trial must corrupt or crash the output. *)
      Alcotest.(check bool)
        (inj.Fi.label ^ " some non-benign outcome")
        true
        (List.exists (fun c -> c.Fi.sdc + c.Fi.detected > 0) a))
    (injectors ())

let test_injector_structures_match_spec () =
  (* The correlation report joins campaigns to spec structures by name;
     every injector must keep them aligned. *)
  List.iter
    (fun (inj : Fi.injector) ->
      let spec_names =
        List.map
          (fun (s : Access_patterns.App_spec.structure) ->
            s.Access_patterns.App_spec.name)
          inj.Fi.spec.Access_patterns.App_spec.structures
      in
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s in spec" inj.Fi.label s)
            true (List.mem s spec_names))
        inj.Fi.structures)
    (injectors ())

(* --- engine: parallel runs are bit-identical to serial --- *)

let test_parallel_matches_serial () =
  let inj = Fi.mc_injector mc_params in
  let serial = Fi.run_campaigns ~seed:11 ~trials:40 inj in
  let fake_workload name injector =
    Core.Workload.make ~name ~computational_class:"test"
      ~major_structures:inj.Fi.structures ~pattern_classes:"test"
      ~example_benchmark:"test"
      ~input_size:(fun _ -> "test")
      ~instance:(fun _ -> failwith "not used")
      ?injector ()
  in
  let w = fake_workload "MCTEST" (Some (fun () -> inj)) in
  List.iter
    (fun jobs ->
      match Inj.run ~seed:11 ~trials:40 ~jobs w with
      | None -> Alcotest.fail "injector went missing"
      | Some r ->
          Alcotest.(check (list campaign))
            (Printf.sprintf "-j %d bit-identical to serial" jobs)
            serial r.Inj.campaigns)
    [ 1; 4 ];
  Alcotest.(check (option reject)) "no injector -> None"
    None
    (Option.map ignore (Inj.run (fake_workload "NOINJ" None)))

let test_run_all_skips_and_shares_pool () =
  let inj = Fi.ft_injector ft_params in
  let mk name injector =
    Core.Workload.make ~name ~computational_class:"test"
      ~major_structures:[] ~pattern_classes:"test" ~example_benchmark:"test"
      ~input_size:(fun _ -> "test")
      ~instance:(fun _ -> failwith "not used")
      ?injector ()
  in
  let results =
    Inj.run_all ~seed:3 ~trials:10 ~jobs:2
      [ mk "A1" (Some (fun () -> inj)); mk "SKIP" None;
        mk "A2" (Some (fun () -> inj)) ]
  in
  Alcotest.(check (list string)) "skips injector-less workloads"
    [ "A1"; "A2" ]
    (List.map (fun r -> r.Inj.workload) results);
  let a1 = List.nth results 0 and a2 = List.nth results 1 in
  Alcotest.(check (list campaign)) "same injector+seed, same tallies"
    a1.Inj.campaigns a2.Inj.campaigns

(* --- registered workloads all carry injectors --- *)

let test_builtin_workloads_have_injectors () =
  List.iter
    (fun name ->
      let w = Core.Workloads.of_name name in
      Alcotest.(check bool) (name ^ " has injector") true
        (Option.is_some w.Core.Workload.injector))
    [ "VM"; "CG"; "NB"; "MG"; "FT"; "MC" ]

(* --- rank-by-rate regression (unequal trial counts) --- *)

let test_rank_by_rate_not_count () =
  let mk structure trials sdc =
    { Fi.structure; trials; benign = trials - sdc; sdc; detected = 0 }
  in
  (* B has more raw SDCs (12 > 10) but a 4x lower rate; ranking by count
     -- the old bug -- would put B first. *)
  Alcotest.(check (list string)) "rate beats count"
    [ "A"; "B" ]
    (Fi.rank_by_sdc [ mk "B" 400 12; mk "A" 100 10 ]);
  Alcotest.(check (list string)) "equal rates tie-break by name"
    [ "a"; "b"; "c" ]
    (Fi.rank_by_sdc [ mk "c" 300 30; mk "b" 100 10; mk "a" 200 20 ])

let test_table_has_rate_precision_and_ci () =
  let c = { Fi.structure = "S"; trials = 300; benign = 299; sdc = 1; detected = 0 } in
  let rendered = Dvf_util.Table.render (Fi.to_table [ c ]) in
  (* %.2f would print 0.00 for 1/300; the fix demands 4 decimals plus a
     Wilson interval column. *)
  Alcotest.(check bool) "rate printed as 0.0033" true
    (contains ~needle:"0.0033" rendered);
  Alcotest.(check bool) "CI column present" true
    (contains ~needle:"95% CI" rendered)

(* --- correlation --- *)

let test_correlate () =
  let results =
    Inj.run_all ~seed:2 ~trials:15 ~jobs:1
      [ Core.Workloads.of_name "VM"; Core.Workloads.of_name "FT" ]
  in
  let corr = Inj.correlate results in
  Alcotest.(check int) "one row per (workload, structure)" 4
    (List.length corr.Inj.rows);
  List.iter
    (fun (r : Inj.row) ->
      let lo, hi = r.Inj.ci in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: rate inside its CI" r.Inj.row_workload
           r.Inj.structure)
        true
        (lo <= r.Inj.rate && r.Inj.rate <= hi);
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: positive DVF" r.Inj.row_workload
           r.Inj.structure)
        true (r.Inj.dvf > 0.0))
    corr.Inj.rows;
  (* VM has 3 distinct structures; its rho is defined unless the rates
     all tie, and always within [-1, 1] when present. *)
  List.iter
    (fun (_, rho) ->
      Alcotest.(check bool) "rho in [-1,1]" true (rho >= -1.0 && rho <= 1.0))
    corr.Inj.per_workload;
  let table = Dvf_util.Table.render (Inj.correlation_table corr) in
  Alcotest.(check bool) "correlation table renders" true
    (String.length table > 100);
  let spearman_text = Format.asprintf "%a" Inj.pp_spearman corr in
  Alcotest.(check bool) "spearman report mentions the pooled rho" true
    (contains ~needle:"all structures" spearman_text)

let suite =
  [
    Alcotest.test_case "NB identity flip = clean run" `Quick
      test_nb_identity_flip_is_clean;
    Alcotest.test_case "MG identity flip = clean run" `Quick
      test_mg_identity_flip_is_clean;
    Alcotest.test_case "FT identity flip = clean run" `Quick
      test_ft_identity_flip_is_clean;
    Alcotest.test_case "MC identity flip ~ untraced" `Quick
      test_mc_identity_flip_matches_untraced;
    Alcotest.test_case "injector invariants (NB MG FT MC)" `Slow
      test_injector_invariants;
    Alcotest.test_case "injector structures match spec" `Quick
      test_injector_structures_match_spec;
    Alcotest.test_case "parallel bit-identical to serial" `Slow
      test_parallel_matches_serial;
    Alcotest.test_case "run_all skips and shares pool" `Quick
      test_run_all_skips_and_shares_pool;
    Alcotest.test_case "builtins carry injectors" `Quick
      test_builtin_workloads_have_injectors;
    Alcotest.test_case "rank by rate, not count" `Quick
      test_rank_by_rate_not_count;
    Alcotest.test_case "table precision and CI" `Quick
      test_table_has_rate_precision_and_ci;
    Alcotest.test_case "DVF correlation report" `Slow test_correlate;
  ]
