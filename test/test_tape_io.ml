(* Memtrace.Tape_io: the persistent tape format.

   The contract is bit-identity across the disk boundary: save then load
   must reproduce the meta, the region registry and the event stream
   exactly, and a loaded tape must replay — plain, fused and sharded —
   to the same statistics as the in-memory original.  Anything that
   violates the format (bad magic, foreign version, flipped payload
   byte, truncation, trailing garbage) must surface as a structured
   error, never as a silently wrong tape. *)

module C = Cachesim
module Mt = Memtrace

let snap cache = C.Stats.snapshot (C.Cache.stats cache)

(* Fresh scratch path per test; tests run with cwd = _build/default/test
   so plain relative names stay inside the sandbox. *)
let scratch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "tape_io_scratch_%d_%d.dvftape" (Unix.getpid ()) !counter

let with_tape_file f =
  let path = scratch () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let meta = { Mt.Tape_io.workload = "VM"; size = "n=64 (verification)"; seed = 7 }

(* A registry with a few regions plus a synthetic event stream touching
   them (same generator shape as test_tape.ml). *)
let make_registry () =
  let registry = Mt.Region.create () in
  ignore (Mt.Region.register registry ~name:"A" ~elements:512 ~elem_size:8);
  ignore (Mt.Region.register registry ~name:"B" ~elements:100 ~elem_size:4);
  ignore (Mt.Region.register registry ~name:"C" ~elements:1 ~elem_size:1);
  registry

let synthetic_events n =
  List.init n (fun i ->
      let owner = 1 + (i mod 3) in
      let addr = (i * 24 mod 4096) + (i mod 7 * 4096) in
      let size = 1 + (i mod 9) in
      if i mod 4 = 0 then Mt.Event.write ~owner ~addr ~size
      else Mt.Event.read ~owner ~addr ~size)

let make_tape ?(chunk_events = 64) n =
  let tape = Mt.Tape.create ~chunk_events () in
  List.iter (Mt.Tape.append tape) (synthetic_events n);
  tape

let load_exn path =
  match Mt.Tape_io.load path with
  | Ok v -> v
  | Error e -> Alcotest.failf "load %s: %s" path (Mt.Tape_io.error_to_string e)

let check_meta name (a : Mt.Tape_io.meta) (b : Mt.Tape_io.meta) =
  Alcotest.(check (triple string string int))
    name
    (a.Mt.Tape_io.workload, a.Mt.Tape_io.size, a.Mt.Tape_io.seed)
    (b.Mt.Tape_io.workload, b.Mt.Tape_io.size, b.Mt.Tape_io.seed)

let check_roundtrip n =
  with_tape_file (fun path ->
      let registry = make_registry () in
      let tape = make_tape n in
      Mt.Tape_io.save ~path ~meta ~registry ~tape;
      let meta', registry', tape' = load_exn path in
      check_meta "meta" meta meta';
      Alcotest.(check bool)
        "registry" true
        (Mt.Region.export registry = Mt.Region.export registry');
      Alcotest.(check int) "length" (Mt.Tape.length tape) (Mt.Tape.length tape');
      Alcotest.(check int) "chunks" (Mt.Tape.chunk_count tape)
        (Mt.Tape.chunk_count tape');
      (* The partition index written to the chunk table and adopted on
         load must equal the one capture built. *)
      Alcotest.(check bool) "partition index" true
        (Mt.Tape.chunk_infos tape = Mt.Tape.chunk_infos tape');
      Alcotest.(check bool) "events" true
        (List.for_all2 Mt.Event.equal (Mt.Tape.to_list tape)
           (Mt.Tape.to_list tape')))

(* --- round-trip bit-identity --- *)

let test_roundtrip_empty () = check_roundtrip 0
let test_roundtrip_one_event () = check_roundtrip 1

let test_roundtrip_multi_chunk () =
  (* 3 full chunks + a partial head (64-event chunks, 200 events). *)
  check_roundtrip 200

let test_roundtrip_exact_chunks () =
  (* Ends exactly on a chunk boundary: no partial head to restore. *)
  check_roundtrip 128

let test_loaded_tape_replays_identically () =
  with_tape_file (fun path ->
      let registry = make_registry () in
      let tape = make_tape 3000 in
      Mt.Tape_io.save ~path ~meta ~registry ~tape;
      let _, _, loaded = load_exn path in
      let caches () =
        Array.of_list (List.map C.Cache.create C.Config.verification_set)
      in
      (* Fused walk of the original vs the loaded copy. *)
      let original = caches () and fused = caches () in
      Mt.Tape.replay_fused tape original;
      Mt.Tape.replay_fused loaded fused;
      (* Sharded walk of the loaded copy, shards replayed sequentially
         into one cache array (bit-identical to fused by contract). *)
      let sharded = caches () in
      let shards = 4 in
      for shard = 0 to shards - 1 do
        Mt.Tape.replay_fused_sharded loaded sharded ~shards ~shard
      done;
      Array.iter C.Cache.flush original;
      Array.iter C.Cache.flush fused;
      Array.iter C.Cache.flush sharded;
      Array.iteri
        (fun i o ->
          Alcotest.(check bool)
            (Printf.sprintf "fused cache %d" i)
            true
            (snap o = snap fused.(i));
          Alcotest.(check bool)
            (Printf.sprintf "sharded cache %d" i)
            true
            (snap o = snap sharded.(i)))
        original)

let test_read_meta () =
  with_tape_file (fun path ->
      let registry = make_registry () in
      let tape = make_tape 10 in
      Mt.Tape_io.save ~path ~meta ~registry ~tape;
      match Mt.Tape_io.read_meta path with
      | Ok m -> check_meta "read_meta" meta m
      | Error e -> Alcotest.failf "read_meta: %s" (Mt.Tape_io.error_to_string e))

(* --- error surface --- *)

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let save_good path =
  Mt.Tape_io.save ~path ~meta ~registry:(make_registry ()) ~tape:(make_tape 200)

let expect_error name path check =
  match Mt.Tape_io.load path with
  | Ok _ -> Alcotest.failf "%s: load unexpectedly succeeded" name
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s (%s)" name (Mt.Tape_io.error_to_string e))
        true (check e)

(* --- legacy v1 format and version probing --- *)

let test_v1_roundtrip () =
  with_tape_file (fun path ->
      let registry = make_registry () in
      let tape = make_tape 200 in
      Mt.Tape_io.save_v1 ~path ~meta ~registry ~tape;
      (match Mt.Tape_io.read_version path with
      | Ok 1 -> ()
      | Ok v -> Alcotest.failf "save_v1 wrote version %d" v
      | Error e ->
          Alcotest.failf "read_version: %s" (Mt.Tape_io.error_to_string e));
      let meta', registry', tape' = load_exn path in
      check_meta "v1 meta" meta meta';
      Alcotest.(check bool) "v1 registry" true
        (Mt.Region.export registry = Mt.Region.export registry');
      Alcotest.(check bool) "v1 events" true
        (List.for_all2 Mt.Event.equal (Mt.Tape.to_list tape)
           (Mt.Tape.to_list tape'));
      (* The streamed v1 load rebuilds the partition index from the
         words, so it replays — and shards — exactly like the
         original. *)
      Alcotest.(check bool) "v1 partition index rebuilt" true
        (Mt.Tape.chunk_infos tape = Mt.Tape.chunk_infos tape');
      let cfg = C.Config.small_verification in
      let a = C.Cache.create cfg and b = C.Cache.create cfg in
      Mt.Tape.replay tape a;
      Mt.Tape.replay tape' b;
      C.Cache.flush a;
      C.Cache.flush b;
      Alcotest.(check bool) "v1 replay identical" true (snap a = snap b))

let test_read_version () =
  with_tape_file (fun path ->
      save_good path;
      (match Mt.Tape_io.read_version path with
      | Ok v ->
          Alcotest.(check int) "current files declare format_version"
            Mt.Tape_io.format_version v
      | Error e ->
          Alcotest.failf "read_version: %s" (Mt.Tape_io.error_to_string e));
      (* read_version reports whatever version a well-formed header
         declares — including ones [load] rejects — so Tape_store.list
         can label entries from foreign builds as stale, not corrupt. *)
      let b = Bytes.of_string (read_file path) in
      Bytes.set_int32_le b 8 99l;
      write_file path (Bytes.to_string b);
      (match Mt.Tape_io.read_version path with
      | Ok 99 -> ()
      | Ok v -> Alcotest.failf "expected Ok 99, got Ok %d" v
      | Error e ->
          Alcotest.failf "read_version: %s" (Mt.Tape_io.error_to_string e)))

let test_missing_file () =
  expect_error "missing file" "tape_io_no_such_file.dvftape" (function
    | Mt.Tape_io.Io_error _ -> true
    | _ -> false)

let test_bad_magic () =
  with_tape_file (fun path ->
      write_file path "definitely not a tape file, long enough to read\n";
      expect_error "bad magic" path (function
        | Mt.Tape_io.Bad_magic -> true
        | _ -> false))

let test_version_mismatch () =
  with_tape_file (fun path ->
      save_good path;
      (* The u32 format version sits right after the 8-byte magic. *)
      let b = Bytes.of_string (read_file path) in
      Bytes.set_int32_le b 8 99l;
      write_file path (Bytes.to_string b);
      expect_error "version mismatch" path (function
        | Mt.Tape_io.Version_mismatch 99 -> true
        | _ -> false))

let test_corrupt_payload () =
  with_tape_file (fun path ->
      save_good path;
      let b = Bytes.of_string (read_file path) in
      (* Flip one byte deep in the chunk payload: the checksum must
         catch it. *)
      let pos = Bytes.length b - 13 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_file path (Bytes.to_string b);
      expect_error "flipped payload byte" path (function
        | Mt.Tape_io.Corrupt _ -> true
        | _ -> false))

let test_corrupt_chunk_table () =
  with_tape_file (fun path ->
      save_good path;
      let b = Bytes.of_string (read_file path) in
      (* The payload is exactly 16 bytes/event at the tail; 16 bytes
         before it lands in the chunk-table region (the last entry's
         line range or the index checksum, depending on alignment
         padding).  Either way the index checksum must refuse the table
         before any deferred chunk is adopted. *)
      let total = Int64.to_int (Bytes.get_int64_le b 16) in
      let pos = Bytes.length b - (16 * total) - 16 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x08));
      write_file path (Bytes.to_string b);
      expect_error "corrupt chunk table" path (function
        | Mt.Tape_io.Corrupt _ -> true
        | _ -> false))

let test_truncated () =
  with_tape_file (fun path ->
      save_good path;
      let whole = read_file path in
      write_file path (String.sub whole 0 (String.length whole / 2));
      expect_error "truncated" path (function
        | Mt.Tape_io.Corrupt _ -> true
        | _ -> false))

let test_truncated_payload_tail () =
  with_tape_file (fun path ->
      save_good path;
      let whole = read_file path in
      (* Drop only the final 8 bytes: header and chunk table stay
         intact, so the exact-size check on the mapped payload is what
         must catch it — no partial chunk may be adopted. *)
      write_file path (String.sub whole 0 (String.length whole - 8));
      expect_error "truncated payload" path (function
        | Mt.Tape_io.Corrupt _ -> true
        | _ -> false))

let test_trailing_garbage () =
  with_tape_file (fun path ->
      save_good path;
      write_file path (read_file path ^ "x");
      expect_error "trailing garbage" path (function
        | Mt.Tape_io.Corrupt _ -> true
        | _ -> false))

let test_save_is_atomic () =
  with_tape_file (fun path ->
      save_good path;
      (* No .tmp debris left behind after a successful save. *)
      Alcotest.(check bool) "tmp removed" false (Sys.file_exists (path ^ ".tmp")))

(* --- eager vs lazy (mmap decode-on-demand) loads --- *)

let test_eager_and_lazy_loads_agree () =
  with_tape_file (fun path ->
      save_good path;
      let load ~eager =
        match Mt.Tape_io.load ~eager path with
        | Ok (_, _, t) -> t
        | Error e -> Alcotest.failf "load: %s" (Mt.Tape_io.error_to_string e)
      in
      let lazy_tape = load ~eager:false in
      let eager_tape = load ~eager:true in
      Alcotest.(check bool) "event streams agree" true
        (List.for_all2 Mt.Event.equal
           (Mt.Tape.to_list lazy_tape)
           (Mt.Tape.to_list eager_tape));
      let cfg = C.Config.large_verification in
      let a = C.Cache.create cfg and b = C.Cache.create cfg in
      Mt.Tape.replay lazy_tape a;
      Mt.Tape.replay eager_tape b;
      C.Cache.flush a;
      C.Cache.flush b;
      Alcotest.(check bool) "replays agree" true (snap a = snap b);
      (* materialize is idempotent on both. *)
      Mt.Tape.materialize lazy_tape;
      Mt.Tape.materialize lazy_tape;
      Alcotest.(check int) "materialize preserves length"
        (Mt.Tape.length eager_tape)
        (Mt.Tape.length lazy_tape))

(* --- fold_chunks (the walk everything else is built on) --- *)

let test_fold_chunks_equivalence () =
  let tape = make_tape ~chunk_events:16 100 in
  let total =
    Mt.Tape.fold_chunks tape ~init:0 ~f:(fun acc ~addrs:_ ~metas:_ ~len ->
        acc + len)
  in
  Alcotest.(check int) "fold covers every event" (Mt.Tape.length tape) total;
  (* Decoding through the fold agrees with Tape.to_list. *)
  let decoded =
    Mt.Tape.fold_chunks tape ~init:[] ~f:(fun acc ~addrs ~metas ~len ->
        let here = ref [] in
        for i = len - 1 downto 0 do
          let owner, write, size = C.Cache.unpack_access metas.(i) in
          here := { Mt.Event.owner; write; addr = addrs.(i); size } :: !here
        done;
        acc @ !here)
  in
  Alcotest.(check bool) "fold decodes to to_list" true
    (List.for_all2 Mt.Event.equal (Mt.Tape.to_list tape) decoded)

let test_hash_string_stable () =
  (* The content-addressing hash must be deterministic across runs —
     pin a few values so an accidental algorithm change is caught. *)
  let h = Mt.Tape_io.hash_string in
  Alcotest.(check bool) "distinct inputs, distinct hashes" true
    (h "" <> h "a" && h "a" <> h "b" && h "ab" <> h "ba");
  Alcotest.(check int) "same input, same hash" (h "v1|VM|n=64|0")
    (h "v1|VM|n=64|0")

let suite =
  [
    Alcotest.test_case "roundtrip: empty tape" `Quick test_roundtrip_empty;
    Alcotest.test_case "roundtrip: one event" `Quick test_roundtrip_one_event;
    Alcotest.test_case "roundtrip: multi-chunk + partial head" `Quick
      test_roundtrip_multi_chunk;
    Alcotest.test_case "roundtrip: exact chunk boundary" `Quick
      test_roundtrip_exact_chunks;
    Alcotest.test_case "loaded tape replays identically (fused + sharded)"
      `Quick test_loaded_tape_replays_identically;
    Alcotest.test_case "read_meta" `Quick test_read_meta;
    Alcotest.test_case "v1 roundtrip (legacy streamed load)" `Quick
      test_v1_roundtrip;
    Alcotest.test_case "read_version probes without loading" `Quick
      test_read_version;
    Alcotest.test_case "missing file is Io_error" `Quick test_missing_file;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
    Alcotest.test_case "corrupt payload" `Quick test_corrupt_payload;
    Alcotest.test_case "corrupt chunk table" `Quick test_corrupt_chunk_table;
    Alcotest.test_case "truncated file" `Quick test_truncated;
    Alcotest.test_case "truncated payload tail" `Quick
      test_truncated_payload_tail;
    Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
    Alcotest.test_case "eager and lazy loads agree" `Quick
      test_eager_and_lazy_loads_agree;
    Alcotest.test_case "save leaves no tmp file" `Quick test_save_is_atomic;
    Alcotest.test_case "fold_chunks equivalence" `Quick
      test_fold_chunks_equivalence;
    Alcotest.test_case "hash_string stable" `Quick test_hash_string_stable;
  ]
