module R = Dvf_util.Rng

let test_determinism () =
  let a = R.create 42 and b = R.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (R.bits64 a) (R.bits64 b)
  done

let test_different_seeds_differ () =
  let a = R.create 1 and b = R.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (R.bits64 a) (R.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = R.create 7 in
  ignore (R.bits64 a);
  let b = R.copy a in
  let va = R.bits64 a and vb = R.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb

let test_int_bounds () =
  let t = R.create 3 in
  for _ = 1 to 10_000 do
    let v = R.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_bad_bound () =
  let t = R.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: non-positive bound")
    (fun () -> ignore (R.int t 0))

let test_int_roughly_uniform () =
  let t = R.create 11 in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = R.int t 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d near %d" i c expected)
        true
        (abs (c - expected) < expected / 10))
    buckets

let test_float_bounds () =
  let t = R.create 5 in
  for _ = 1 to 10_000 do
    let v = R.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_gaussian_moments () =
  let t = R.create 13 in
  let n = 100_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = R.gaussian t in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) (Printf.sprintf "mean %.4f near 0" mean) true (abs_float mean < 0.02);
  Alcotest.(check bool) (Printf.sprintf "var %.4f near 1" var) true (abs_float (var -. 1.0) < 0.03)

let test_shuffle_is_permutation () =
  let t = R.create 17 in
  let a = Array.init 100 (fun i -> i) in
  R.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let t = R.create 23 in
  let s = R.sample_without_replacement t ~n:50 ~k:20 in
  Alcotest.(check int) "size" 20 (Array.length s);
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 50);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ())
    s

let test_sample_full_population () =
  let t = R.create 29 in
  let s = R.sample_without_replacement t ~n:10 ~k:10 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "covers population" (Array.init 10 (fun i -> i)) sorted

let test_split_independent () =
  let t = R.create 31 in
  let child = R.split t in
  (* Child and parent produce different streams. *)
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (R.bits64 t) (R.bits64 child)) then differs := true
  done;
  Alcotest.(check bool) "split differs from parent" true !differs


let test_sub_seed () =
  (* Deterministic, and collision-free across a dense coordinate grid --
     the property the [seed + Hashtbl.hash structure] scheme it replaced
     did not have. *)
  Alcotest.(check int) "deterministic" (R.sub_seed 7 3) (R.sub_seed 7 3);
  let seen = Hashtbl.create 4096 in
  for seed = 0 to 31 do
    for index = 0 to 63 do
      let s = R.sub_seed seed index in
      (match Hashtbl.find_opt seen s with
      | Some (seed', index') ->
          Alcotest.failf "collision: (%d,%d) and (%d,%d) -> %d" seed index
            seed' index' s
      | None -> ());
      Hashtbl.add seen s (seed, index)
    done
  done;
  (* Chaining derives a fresh stream per (structure, trial) coordinate. *)
  let a = R.create (R.sub_seed (R.sub_seed 1234 0) 0) in
  let b = R.create (R.sub_seed (R.sub_seed 1234 0) 1) in
  let c = R.create (R.sub_seed (R.sub_seed 1234 1) 0) in
  let da = R.bits64 a and db = R.bits64 b and dc = R.bits64 c in
  Alcotest.(check bool) "streams differ" true (da <> db && db <> dc && da <> dc)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick
      test_different_seeds_differ;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int roughly uniform" `Quick test_int_roughly_uniform;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "shuffle is permutation" `Quick
      test_shuffle_is_permutation;
    Alcotest.test_case "sample without replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample full population" `Quick
      test_sample_full_population;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "sub_seed derivation" `Quick test_sub_seed;
  ]
