module Cg = Kernels.Cg

let test_solves_system () =
  (* Fully converge on a small well-conditioned system. *)
  let p = Cg.make_params ~max_iterations:500 ~tolerance:1e-10 64 in
  let r = Cg.run_untraced p in
  Alcotest.(check bool)
    (Printf.sprintf "converged in %d iters, err %.2e" r.Cg.iterations
       r.Cg.solution_error)
    true
    (r.Cg.residual < 1e-9 && r.Cg.solution_error < 1e-6)

let test_traced_matches_untraced () =
  let p = Cg.make_params ~max_iterations:10 100 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let traced = Cg.run registry recorder p in
  let untraced = Cg.run_untraced p in
  Alcotest.(check int) "same iterations" untraced.Cg.iterations traced.Cg.iterations;
  Alcotest.(check (float 1e-12)) "same residual" untraced.Cg.residual traced.Cg.residual

let test_iterations_grow_with_n () =
  (* The conditioning of the generated system worsens with n, which is
     what drives Fig. 6. *)
  let iters n =
    (Cg.run_untraced (Cg.make_params ~max_iterations:2000 ~tolerance:1e-8 n)).Cg.iterations
  in
  let i100 = iters 100 and i400 = iters 400 in
  Alcotest.(check bool)
    (Printf.sprintf "iters(400)=%d > iters(100)=%d" i400 i100)
    true (i400 > i100)

let model_vs_sim cfg =
  let p = Cg.make_params ~max_iterations:8 ~tolerance:0.0 200 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let cache = Cachesim.Cache.create cfg in
  ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
  let res = Cg.run registry recorder p in
  Cachesim.Cache.flush cache;
  let stats = Cachesim.Cache.stats cache in
  let spec = Cg.spec ~iterations:res.Cg.iterations p in
  let modeled = Access_patterns.App_spec.main_memory_accesses ~cache:cfg spec in
  List.map
    (fun name ->
      let region = Memtrace.Region.lookup registry name in
      let sim =
        float_of_int
          (Cachesim.Stats.main_memory_accesses stats region.Memtrace.Region.id)
      in
      (name, sim, List.assoc name modeled))
    [ "A"; "x"; "p"; "r" ]

let test_model_within_tolerance () =
  (* Fig. 4(b): total estimate within 15%; the matrix A dominates. *)
  List.iter
    (fun cfg ->
      let rows = model_vs_sim cfg in
      let total_sim = List.fold_left (fun acc (_, s, _) -> acc +. s) 0.0 rows in
      let total_model = List.fold_left (fun acc (_, _, m) -> acc +. m) 0.0 rows in
      let err = Dvf_util.Maths.rel_error ~expected:total_sim ~actual:total_model in
      Alcotest.(check bool)
        (Printf.sprintf "%s: total model %.0f vs sim %.0f (err %.1f%%)"
           cfg.Cachesim.Config.name total_model total_sim (100.0 *. err))
        true (err <= 0.15);
      let a_sim = List.assoc "A" (List.map (fun (n, s, _) -> (n, s)) rows) in
      let a_model = List.assoc "A" (List.map (fun (n, _, m) -> (n, m)) rows) in
      let a_err = Dvf_util.Maths.rel_error ~expected:a_sim ~actual:a_model in
      Alcotest.(check bool)
        (Printf.sprintf "%s: A model %.0f vs sim %.0f (err %.1f%%)"
           cfg.Cachesim.Config.name a_model a_sim (100.0 *. a_err))
        true (a_err <= 0.15))
    Cachesim.Config.[ small_verification; large_verification ]

let suite =
  [
    Alcotest.test_case "solves the system" `Quick test_solves_system;
    Alcotest.test_case "traced matches untraced" `Quick
      test_traced_matches_untraced;
    Alcotest.test_case "iterations grow with n" `Slow
      test_iterations_grow_with_n;
    Alcotest.test_case "model within 15% of simulation" `Slow
      test_model_within_tolerance;
  ]
