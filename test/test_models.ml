(* The models/ directory: golden round-trip tests for every shipped
   .aspen file, and the equivalence contract behind the workload
   registry — for each of the six kernels, the Aspen-compiled spec must
   reproduce the native OCaml spec's N_ha exactly on every verification
   cache. *)

module A = Aspen

let model_names = List.map fst A.Builtin_models.sources

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let model_path name = Filename.concat "../models" (name ^ ".aspen")

(* --- the files track builtin_models.ml --- *)

let test_files_match_builtins () =
  List.iter
    (fun (name, source) ->
      Alcotest.(check string)
        (name ^ ".aspen in sync with Builtin_models")
        (String.trim source ^ "\n")
        (read_file (model_path name)))
    A.Builtin_models.sources

(* --- parse -> pretty-print -> re-parse is the identity on the AST --- *)

let test_files_roundtrip () =
  List.iter
    (fun name ->
      let ast = A.Parser.parse_file (read_file (model_path name)) in
      let reparsed = A.Parser.parse_file (A.Pretty.to_string ast) in
      Alcotest.(check bool)
        (name ^ ".aspen: pretty-printed AST re-parses equal")
        true (ast = reparsed))
    model_names

(* --- every file compiles --- *)

let test_files_compile () =
  List.iter
    (fun name ->
      let ast = A.Parser.parse_file (read_file (model_path name)) in
      let machines = A.Compile.machines ast in
      let apps = A.Compile.apps ast in
      Alcotest.(check bool)
        (name ^ ".aspen: declares a machine or an app")
        true
        (machines <> [] || apps <> []))
    model_names

(* --- Aspen spec == native spec, bit for bit --- *)

let check_equivalence name (native : Access_patterns.App_spec.t) overrides =
  let file = A.Builtin_models.load () in
  let app = A.Compile.find_app ~overrides file name in
  let model = app.A.Compile.spec in
  List.iter
    (fun cache ->
      let n = Access_patterns.App_spec.main_memory_accesses ~cache native in
      let m = Access_patterns.App_spec.main_memory_accesses ~cache model in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s: structure count" name
           cache.Cachesim.Config.name)
        (List.length n) (List.length m);
      List.iter2
        (fun (sn, nv) (sm, mv) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: structure order" name
               cache.Cachesim.Config.name)
            sn sm;
          (* Exact: the model is the same arithmetic, not an estimate. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s/%s: N_ha %.6f = %.6f" name
               cache.Cachesim.Config.name sn nv mv)
            true
            (Float.equal nv mv))
        n m)
    Cachesim.Config.verification_set

let test_equiv_vm () =
  let vm = Core.Workloads.verification_instance Core.Workloads.vm in
  check_equivalence "vm" vm.Core.Workload.spec [ ("n", 1000.) ]

let test_equiv_cg () =
  let cg = Core.Workloads.verification_instance Core.Workloads.cg in
  check_equivalence "cg" cg.Core.Workload.spec []

let test_equiv_nb () =
  (* The NB model's tree parameters are measurements of the octree the
     kernel actually builds, so take them from a live run. *)
  let p = Kernels.Barnes_hut.verification in
  let r = Kernels.Barnes_hut.run_untraced p in
  check_equivalence "nb"
    (Kernels.Barnes_hut.spec ~result:r p)
    [
      ("bodies", float_of_int p.Kernels.Barnes_hut.particles);
      ("passes", float_of_int p.Kernels.Barnes_hut.force_passes);
      ("nodes", float_of_int r.Kernels.Barnes_hut.nodes);
      ("hot", float_of_int r.Kernels.Barnes_hut.hot_nodes);
      ( "k",
        float_of_int
          (max 0
             (int_of_float
                (Float.round
                   (r.Kernels.Barnes_hut.avg_visits
                   -. r.Kernels.Barnes_hut.hot_visits)))) );
    ]

let test_equiv_mg () =
  let p = Kernels.Multigrid.make_params ~v_cycles:1 32 in
  check_equivalence "mg" (Kernels.Multigrid.spec p)
    [ ("m", 32.); ("cycles", 1.) ]

let test_equiv_ft () =
  check_equivalence "ft"
    (Kernels.Fft.spec Kernels.Fft.verification)
    [ ("n", 16384.) ]

let test_equiv_mc () =
  check_equivalence "mc"
    (Kernels.Monte_carlo.spec Kernels.Monte_carlo.verification)
    [ ("lookups", 1000.) ]

let suite =
  [
    Alcotest.test_case "files track builtin_models" `Quick
      test_files_match_builtins;
    Alcotest.test_case "parse/pretty/parse round trip" `Quick
      test_files_roundtrip;
    Alcotest.test_case "every file compiles" `Quick test_files_compile;
    Alcotest.test_case "VM model = native spec" `Quick test_equiv_vm;
    Alcotest.test_case "CG model = native spec" `Quick test_equiv_cg;
    Alcotest.test_case "NB model = native spec" `Quick test_equiv_nb;
    Alcotest.test_case "MG model = native spec" `Quick test_equiv_mg;
    Alcotest.test_case "FT model = native spec" `Quick test_equiv_ft;
    Alcotest.test_case "MC model = native spec" `Quick test_equiv_mc;
  ]
