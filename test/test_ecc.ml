module E = Core.Ecc
module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_table7_rates () =
  checkf "no ecc" 5000.0 (E.fit E.No_ecc);
  checkf "secded" 1300.0 (E.fit E.Secded);
  checkf "chipkill" 0.02 (E.fit E.Chipkill)

let test_degraded_time () =
  checkf "5%" 1.05 (E.degraded_time ~base_time:1.0 ~degradation:0.05);
  checkf "0%" 2.0 (E.degraded_time ~base_time:2.0 ~degradation:0.0);
  Alcotest.check_raises "negative"
    (Invalid_argument "Ecc.degraded_time: negative degradation") (fun () ->
      ignore (E.degraded_time ~base_time:1.0 ~degradation:(-0.1)))

let test_effective_fit_endpoints () =
  (* No investment: unprotected rate; full strength: the scheme floor. *)
  checkf "at 0" 5000.0 (E.effective_fit ~degradation:0.0 E.Secded);
  checkf "at full strength" 1300.0 (E.effective_fit ~degradation:0.05 E.Secded);
  checkf "beyond full strength" 1300.0 (E.effective_fit ~degradation:0.30 E.Secded);
  checkf "chipkill floor" 0.02 (E.effective_fit ~degradation:0.10 E.Chipkill)

let test_effective_fit_monotone () =
  let prev = ref infinity in
  for i = 0 to 20 do
    let d = 0.30 *. float_of_int i /. 20.0 in
    let f = E.effective_fit ~degradation:d E.Secded in
    Alcotest.(check bool) (Printf.sprintf "monotone at %.2f" d) true (f <= !prev +. 1e-9);
    prev := f
  done

let test_fig7_u_shape () =
  (* The optimum sits at the scheme's full-strength point. *)
  let cache = Cachesim.Config.profiling_4mb in
  let spec = Kernels.Vm.spec Kernels.Vm.profiling in
  let d_opt, dvf_opt =
    E.optimal_degradation ~cache ~base_time:1e-4 ~max_degradation:0.30
      ~steps:60 E.Secded spec
  in
  checkf ~eps:1e-6 "optimum at 5%" 0.05 d_opt;
  (* And the curve rises on both sides. *)
  let dvf d =
    (E.protected_dvf ~cache ~base_time:1e-4 ~degradation:d E.Secded spec)
      .Core.Dvf.total
  in
  Alcotest.(check bool) "rises before" true (dvf 0.0 > dvf_opt);
  Alcotest.(check bool) "rises after" true (dvf 0.30 > dvf_opt)

let test_chipkill_below_secded () =
  let cache = Cachesim.Config.profiling_4mb in
  let spec = Kernels.Vm.spec Kernels.Vm.profiling in
  List.iter
    (fun d ->
      let dvf scheme =
        (E.protected_dvf ~cache ~base_time:1e-4 ~degradation:d scheme spec)
          .Core.Dvf.total
      in
      Alcotest.(check bool)
        (Printf.sprintf "chipkill <= secded at %.2f" d)
        true
        (dvf E.Chipkill <= dvf E.Secded +. 1e-12))
    [ 0.0; 0.05; 0.10; 0.30 ]

let test_protection_reduces_dvf () =
  (* Fig. 7's headline: with any meaningful investment, DVF drops below
     the unprotected level. *)
  let cache = Cachesim.Config.profiling_4mb in
  let spec = Kernels.Vm.spec Kernels.Vm.profiling in
  let unprotected =
    (Core.Dvf.of_spec ~cache ~fit:(E.fit E.No_ecc) ~time:1e-4 spec).Core.Dvf.total
  in
  let protected_ =
    (E.protected_dvf ~cache ~base_time:1e-4 ~degradation:0.05 E.Secded spec)
      .Core.Dvf.total
  in
  Alcotest.(check bool) "secded helps" true (protected_ < unprotected)

let suite =
  [
    Alcotest.test_case "Table VII rates" `Quick test_table7_rates;
    Alcotest.test_case "degraded time" `Quick test_degraded_time;
    Alcotest.test_case "effective FIT endpoints" `Quick
      test_effective_fit_endpoints;
    Alcotest.test_case "effective FIT monotone" `Quick
      test_effective_fit_monotone;
    Alcotest.test_case "Fig.7 U-shape" `Quick test_fig7_u_shape;
    Alcotest.test_case "chipkill below SECDED" `Quick test_chipkill_below_secded;
    Alcotest.test_case "protection reduces DVF" `Quick
      test_protection_reduces_dvf;
  ]
