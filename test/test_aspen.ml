(* Lexer, parser, evaluator, compiler and pretty-printer of the
   extended-Aspen DSL. *)

module A = Aspen

let tokens src =
  List.map (fun t -> t.A.Token.token) (A.Lexer.tokenize src)

(* --- Lexer --- *)

let test_lex_punctuation () =
  Alcotest.(check int) "count" 10
    (List.length (tokens "{ } ( ) , ; : = * ")) (* 9 + Eof *)

let test_lex_numbers () =
  match tokens "42 3.5 50e9 1e-3" with
  | [ A.Token.Int 42; A.Token.Float a; A.Token.Float b; A.Token.Float c;
      A.Token.Eof ] ->
      Alcotest.(check (float 1e-9)) "3.5" 3.5 a;
      Alcotest.(check (float 1.0)) "50e9" 50e9 b;
      Alcotest.(check (float 1e-12)) "1e-3" 1e-3 c
  | ts -> Alcotest.failf "unexpected tokens (%d)" (List.length ts)

let test_lex_identifiers_and_keywords () =
  match tokens "app vm_2 _x" with
  | [ A.Token.Ident "app"; A.Token.Ident "vm_2"; A.Token.Ident "_x"; A.Token.Eof ] -> ()
  | _ -> Alcotest.fail "identifier lexing"

let test_lex_comments () =
  Alcotest.(check int) "line comment" 2
    (List.length (tokens "x // ignored to the end\n"));
  Alcotest.(check int) "block comment" 3
    (List.length (tokens "a /* skip { } */ b"))

let test_lex_positions () =
  let located = A.Lexer.tokenize "ab\n  cd" in
  match located with
  | [ a; b; _eof ] ->
      Alcotest.(check (pair int int)) "first" (1, 1) (a.A.Token.line, a.A.Token.col);
      Alcotest.(check (pair int int)) "second" (2, 3) (b.A.Token.line, b.A.Token.col)
  | _ -> Alcotest.fail "token count"

let test_lex_errors () =
  let expect_error src =
    match A.Lexer.tokenize src with
    | exception A.Errors.Error _ -> ()
    | _ -> Alcotest.failf "expected a lex error on %S" src
  in
  expect_error "@";
  expect_error "/* unterminated";
  expect_error "\"unterminated"

(* --- Parser: expressions --- *)

let eval src = A.Eval.expr [] (A.Parser.parse_expr src)

let test_expr_precedence () =
  Alcotest.(check (float 1e-9)) "mul before add" 14.0 (eval "2 + 3 * 4");
  Alcotest.(check (float 1e-9)) "parens" 20.0 (eval "(2 + 3) * 4");
  Alcotest.(check (float 1e-9)) "unary minus" (-6.0) (eval "-2 * 3");
  Alcotest.(check (float 1e-9)) "division" 2.5 (eval "5 / 2");
  Alcotest.(check (float 1e-9)) "power" 512.0 (eval "2 ^ 3 ^ 2");
  Alcotest.(check (float 1e-9)) "sub chain" (-4.0) (eval "1 - 2 - 3")

let test_expr_variables () =
  let e = A.Parser.parse_expr "n * esize + 1" in
  Alcotest.(check (float 1e-9)) "env" 33.0
    (A.Eval.expr [ ("n", 4.0); ("esize", 8.0) ] e);
  Alcotest.check_raises "unbound"
    (A.Errors.Error { line = 0; col = 0; message = "unbound parameter 'zz'" })
    (fun () -> ignore (A.Eval.expr [] (A.Parser.parse_expr "zz")))

let test_parse_errors_have_positions () =
  (match A.Parser.parse_file "app {" with
  | exception A.Errors.Error { line = 1; col; _ } ->
      Alcotest.(check bool) "column sensible" true (col >= 5)
  | _ -> Alcotest.fail "expected parse error");
  match A.Parser.parse_file "junk" with
  | exception A.Errors.Error { message; _ } ->
      Alcotest.(check bool) "mentions top level" true
        (String.length message > 0)
  | _ -> Alcotest.fail "expected parse error"

(* --- Full models --- *)

let vm_source =
  {|
app tiny {
  param n = 100
  data A { pattern stream(elem = 8, count = n, stride = 1) }
  data B { pattern stream(elem = 8, count = n, stride = 2, writeback) }
  flops 2 * n
}
|}

let test_compile_stream_app () =
  let file = A.Parser.parse_file vm_source in
  let app = A.Compile.find_app file "tiny" in
  Alcotest.(check int) "flops" 200 app.A.Compile.flops;
  let sizes = Access_patterns.App_spec.structure_bytes app.A.Compile.spec in
  Alcotest.(check int) "A size inferred" 800 (List.assoc "A" sizes);
  let cache = Cachesim.Config.small_verification in
  let nha =
    Access_patterns.App_spec.main_memory_accesses ~cache app.A.Compile.spec
  in
  (* A: 800 B unit stride over 32 B lines = 25; B: stride 2 -> 25 lines
     read + 25 written back. *)
  Alcotest.(check (float 0.01)) "A" 25.0 (List.assoc "A" nha);
  Alcotest.(check (float 0.01)) "B" 50.0 (List.assoc "B" nha)

let test_param_overrides () =
  let file = A.Parser.parse_file vm_source in
  let app = A.Compile.find_app ~overrides:[ ("n", 200.0) ] file "tiny" in
  Alcotest.(check int) "overridden flops" 400 app.A.Compile.flops

let test_params_can_reference_earlier_params () =
  let src = "app x { param a = 3  param b = a * 2  flops b  data D { pattern stream(elem = 8, count = b, stride = 1) } }" in
  let app = A.Compile.find_app (A.Parser.parse_file src) "x" in
  Alcotest.(check int) "b = 6" 6 app.A.Compile.flops

let test_compile_machine () =
  let file = A.Builtin_models.load () in
  let m = A.Compile.find_machine file "small_verif" in
  Alcotest.(check int) "capacity" 8192 (Cachesim.Config.capacity m.A.Compile.cache);
  Alcotest.(check (float 1e-9)) "fit" 5000.0 m.A.Compile.fit

let test_builtin_models_all_compile () =
  let file = A.Builtin_models.load () in
  Alcotest.(check int) "6 machines" 6 (List.length (A.Compile.machines file));
  Alcotest.(check int) "6 apps" 6 (List.length (A.Compile.apps file))

let test_dsl_vm_matches_ocaml_api () =
  (* The DSL's VM model and the kernel library's spec must agree
     exactly. *)
  let file = A.Builtin_models.load () in
  let app = A.Compile.find_app file "vm" in
  let cache = Cachesim.Config.profiling_4mb in
  let dsl = Access_patterns.App_spec.main_memory_accesses ~cache app.A.Compile.spec in
  let api =
    Access_patterns.App_spec.main_memory_accesses ~cache
      (Kernels.Vm.spec Kernels.Vm.profiling)
  in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "same structure" n2 n1;
      Alcotest.(check (float 1e-6)) ("N_ha for " ^ n1) v2 v1)
    dsl api

let test_dsl_mg_template () =
  (* The builtin MG model takes its V-cycle reference streams from the
     "mg/R"/"mg/U"/"mg/V" template providers; with an 8^3 grid and a
     2-level hierarchy the expansion is small enough to check against a
     direct provider call. *)
  let file = A.Builtin_models.load () in
  let overrides = [ ("m", 8.0); ("levels", 2.0) ] in
  let app = A.Compile.find_app ~overrides file "mg" in
  let env = [ ("m", 8); ("levels", 2); ("cycles", 1) ] in
  List.iter
    (fun (s : Access_patterns.App_spec.structure) ->
      let provider_name = "mg/" ^ s.Access_patterns.App_spec.name in
      match s.Access_patterns.App_spec.pattern with
      | Some (Access_patterns.Pattern.Templated t) ->
          let provider =
            match Access_patterns.Template_provider.find provider_name with
            | Some p -> p
            | None -> Alcotest.fail (provider_name ^ " not registered")
          in
          let refs, writes = provider env in
          Alcotest.(check bool)
            (provider_name ^ " produced refs")
            true
            (Array.length refs > 0);
          Alcotest.(check int)
            (provider_name ^ " refs match the compiled template")
            (Array.length refs)
            (Array.length t.Access_patterns.Template.refs);
          Alcotest.(check bool) (provider_name ^ " has writes") true
            (writes <> None)
      | _ ->
          Alcotest.fail
            (s.Access_patterns.App_spec.name ^ " should be templated"))
    app.A.Compile.spec.Access_patterns.App_spec.structures

let test_order_composition () =
  let src =
    {|
app mini_cg {
  param n = 64
  data A { size = 8 * n * n }
  data p { size = 8 * n }
  order iterations = 3 {
    phase { A : stream(elem = 8, count = n * n, stride = 1);
            p : reuse * n }
    phase { p : stream(elem = 8, count = n, stride = 1) }
  }
}
|}
  in
  let app = A.Compile.find_app (A.Parser.parse_file src) "mini_cg" in
  let cache = Cachesim.Config.small_verification in
  let nha =
    Access_patterns.App_spec.main_memory_accesses ~cache app.A.Compile.spec
  in
  (* A is 32 KB streamed 3 times through an 8 KB cache: ~1024 lines per
     traverse. *)
  let a = List.assoc "A" nha in
  (* Cold sweep (1024 lines) plus two reuse sweeps; the occupancy-based
     reuse model keeps ~CA*NA blocks resident, so each reuse costs
     1024 - 256 +- interference. *)
  Alcotest.(check bool) (Printf.sprintf "A ~ 3 sweeps (%.0f)" a) true
    (a > 2300.0 && a < 3100.0)

let test_generator_syntax () =
  (* The pass / zip / repeat generators in concrete syntax. *)
  let src =
    {|
app gens {
  param n = 16
  data X {
    size = 8 * n * n
    pattern template(elem = 8) {
      pass(start = 0, count = n, stride = 2)
      repeat 2 {
        refs (X(1), X(3))
      }
      zip count n {
        X(0) step 2;
        X(1) step 1
      }
    }
  }
}
|}
  in
  let app = A.Compile.find_app (A.Parser.parse_file src) "gens" in
  let s = List.hd app.A.Compile.spec.Access_patterns.App_spec.structures in
  match s.Access_patterns.App_spec.pattern with
  | Some (Access_patterns.Pattern.Templated t) ->
      let refs = t.Access_patterns.Template.refs in
      (* pass: 16 refs; repeat: 2*2; zip: 2 streams x 16. *)
      Alcotest.(check int) "total refs" (16 + 4 + 32) (Array.length refs);
      Alcotest.(check int) "pass first" 0 refs.(0);
      Alcotest.(check int) "pass second" 2 refs.(1);
      Alcotest.(check int) "repeat ref" 1 refs.(16);
      Alcotest.(check int) "zip stream 1 t=0" 0 refs.(20);
      Alcotest.(check int) "zip stream 2 t=0" 1 refs.(21);
      Alcotest.(check int) "zip stream 1 t=1" 2 refs.(22)
  | _ -> Alcotest.fail "expected a template"

let test_semantic_errors () =
  let expect_error src =
    match A.Compile.apps (A.Parser.parse_file src) with
    | exception A.Errors.Error _ -> ()
    | _ -> Alcotest.failf "expected a semantic error on %s" src
  in
  (* Missing pattern argument. *)
  expect_error "app x { data D { pattern stream(elem = 8) } }";
  (* Unknown pattern argument. *)
  expect_error "app x { data D { pattern stream(elem = 8, count = 1, bogus = 2) } }";
  (* Structure with neither size nor pattern. *)
  expect_error "app x { data D { } }";
  (* reuse outside an order. *)
  expect_error "app x { data D { pattern reuse } }";
  (* Undeclared structure in a phase. *)
  expect_error
    "app x { data D { size = 8 } order { phase { E : reuse } } }"

(* --- Pretty-printer round trip --- *)

let test_roundtrip_builtin_models () =
  let file = A.Builtin_models.load () in
  let printed = A.Pretty.to_string file in
  let reparsed = A.Parser.parse_file printed in
  Alcotest.(check int) "same decl count" (List.length file) (List.length reparsed);
  (* Semantics preserved: every app's N_ha agrees before and after. *)
  let cache = Cachesim.Config.small_verification in
  List.iter2
    (fun d1 d2 ->
      match (d1, d2) with
      | Aspen.Ast.App a1, Aspen.Ast.App a2 ->
          let n1 =
            Access_patterns.App_spec.main_memory_accesses ~cache
              (A.Compile.compile_app a1).A.Compile.spec
          in
          let n2 =
            Access_patterns.App_spec.main_memory_accesses ~cache
              (A.Compile.compile_app a2).A.Compile.spec
          in
          List.iter2
            (fun (s1, v1) (s2, v2) ->
              Alcotest.(check string) "structure" s1 s2;
              Alcotest.(check (float 1e-6)) (a1.Aspen.Ast.app_name ^ "/" ^ s1) v1 v2)
            n1 n2
      | Aspen.Ast.Machine m1, Aspen.Ast.Machine m2 ->
          Alcotest.(check string) "machine name" m1.Aspen.Ast.machine_name
            m2.Aspen.Ast.machine_name
      | _ -> Alcotest.fail "declaration order changed")
    file reparsed

let gen_expr =
  (* Depth-capped: unbounded sizes build arithmetic whose value overflows
     to infinity, and inf - inf = nan defeats any value comparison. *)
  let open QCheck.Gen in
  sized @@ fun size ->
  (fix (fun self n ->
         if n <= 0 then
           oneof
             [ map (fun i -> Aspen.Ast.Num (float_of_int i)) (int_range 0 1000);
               oneofl [ Aspen.Ast.Var "n"; Aspen.Ast.Var "k" ] ]
         else
           oneof
             [
               map2
                 (fun op (a, b) -> Aspen.Ast.Binop (op, a, b))
                 (oneofl Aspen.Ast.[ Add; Sub; Mul ])
                 (pair (self (n / 2)) (self (n / 2)));
               map (fun e -> Aspen.Ast.Neg e) (self (n - 1));
             ]))
    (min size 6)

let prop_expr_roundtrip =
  QCheck.Test.make ~count:200 ~name:"expr pretty/parse round trip"
    (QCheck.make gen_expr)
    (fun e ->
      let printed = Format.asprintf "%a" A.Pretty.pp_expr e in
      let reparsed = A.Parser.parse_expr printed in
      let env = [ ("n", 7.0); ("k", 3.0) ] in
      Dvf_util.Maths.approx_equal ~eps:1e-9 (A.Eval.expr env e)
        (A.Eval.expr env reparsed))

let suite =
  [
    Alcotest.test_case "lex punctuation" `Quick test_lex_punctuation;
    Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex identifiers" `Quick test_lex_identifiers_and_keywords;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex positions" `Quick test_lex_positions;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "expression variables" `Quick test_expr_variables;
    Alcotest.test_case "parse errors located" `Quick
      test_parse_errors_have_positions;
    Alcotest.test_case "compile stream app" `Quick test_compile_stream_app;
    Alcotest.test_case "param overrides" `Quick test_param_overrides;
    Alcotest.test_case "params reference params" `Quick
      test_params_can_reference_earlier_params;
    Alcotest.test_case "compile machine" `Quick test_compile_machine;
    Alcotest.test_case "builtin models compile" `Quick
      test_builtin_models_all_compile;
    Alcotest.test_case "DSL VM = OCaml API" `Quick test_dsl_vm_matches_ocaml_api;
    Alcotest.test_case "DSL MG template" `Quick test_dsl_mg_template;
    Alcotest.test_case "order composition" `Quick test_order_composition;
    Alcotest.test_case "generator syntax" `Quick test_generator_syntax;
    Alcotest.test_case "semantic errors" `Quick test_semantic_errors;
    Alcotest.test_case "round trip builtin models" `Quick
      test_roundtrip_builtin_models;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]
