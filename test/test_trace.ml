module Mt = Memtrace

let test_region_layout_disjoint () =
  let reg = Mt.Region.create () in
  let a = Mt.Region.register reg ~name:"A" ~elements:100 ~elem_size:8 in
  let b = Mt.Region.register reg ~name:"B" ~elements:50 ~elem_size:4 in
  let a_end = a.Mt.Region.base + a.Mt.Region.bytes in
  Alcotest.(check bool) "disjoint" true (b.Mt.Region.base >= a_end);
  Alcotest.(check bool) "line aligned" true (a.Mt.Region.base mod 64 = 0);
  Alcotest.(check bool) "set-decorrelated" true
    (a.Mt.Region.base mod 2048 <> b.Mt.Region.base mod 2048);
  Alcotest.(check bool) "nonzero base" true (a.Mt.Region.base > 0)

let test_region_duplicate_name_rejected () =
  let reg = Mt.Region.create () in
  ignore (Mt.Region.register reg ~name:"A" ~elements:1 ~elem_size:1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Region.register: duplicate region name A") (fun () ->
      ignore (Mt.Region.register reg ~name:"A" ~elements:1 ~elem_size:1))

let test_region_lookup () =
  let reg = Mt.Region.create () in
  let a = Mt.Region.register reg ~name:"A" ~elements:10 ~elem_size:8 in
  Alcotest.(check int) "lookup by name" a.Mt.Region.id
    (Mt.Region.lookup reg "A").Mt.Region.id;
  Alcotest.(check string) "owner name" "A" (Mt.Region.owner_name reg a.Mt.Region.id);
  Alcotest.(check string) "unknown owner" "<anon:99>" (Mt.Region.owner_name reg 99)

let test_elem_addr () =
  let reg = Mt.Region.create () in
  let a = Mt.Region.register reg ~name:"A" ~elements:10 ~elem_size:8 in
  Alcotest.(check int) "elem 0" a.Mt.Region.base (Mt.Region.elem_addr a 0);
  Alcotest.(check int) "elem 3" (a.Mt.Region.base + 24) (Mt.Region.elem_addr a 3);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Region.elem_addr: index 10 out of A") (fun () ->
      ignore (Mt.Region.elem_addr a 10))

let test_recorder_fanout () =
  let rec_ = Mt.Recorder.create () in
  let sink1, get1 = Mt.Recorder.buffer_sink () in
  let sink2, count2 = Mt.Recorder.counting_sink () in
  ignore (Mt.Recorder.add_sink rec_ sink1);
  ignore (Mt.Recorder.add_sink rec_ sink2);
  Mt.Recorder.read rec_ ~owner:1 ~addr:100 ~size:8;
  Mt.Recorder.write rec_ ~owner:2 ~addr:200 ~size:4;
  let events = get1 () in
  Alcotest.(check int) "buffered" 2 (List.length events);
  Alcotest.(check int) "counted" 2 (count2 ());
  Alcotest.(check int) "emitted" 2 (Mt.Recorder.events_emitted rec_);
  let first = List.hd events in
  Alcotest.(check bool) "first is read" false first.Mt.Event.write;
  Alcotest.(check int) "first addr" 100 first.Mt.Event.addr

let test_tracked_get_set () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let sink, get = Mt.Recorder.buffer_sink () in
  ignore (Mt.Recorder.add_sink rec_ sink);
  let arr = Mt.Tracked.make reg rec_ ~name:"X" ~elem_size:8 10 0.0 in
  Mt.Tracked.set arr 3 1.5;
  Alcotest.(check (float 0.0)) "get returns value" 1.5 (Mt.Tracked.get arr 3);
  let events = get () in
  Alcotest.(check int) "two events" 2 (List.length events);
  let w = List.nth events 0 and r = List.nth events 1 in
  Alcotest.(check bool) "write event" true w.Mt.Event.write;
  Alcotest.(check bool) "read event" false r.Mt.Event.write;
  let region = Mt.Tracked.region arr in
  Alcotest.(check int) "addr of elem 3"
    (Mt.Region.elem_addr region 3)
    w.Mt.Event.addr

let test_tracked_silent_ops_untraced () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let arr = Mt.Tracked.make reg rec_ ~name:"X" ~elem_size:4 5 0 in
  Mt.Tracked.set_silent arr 0 42;
  Alcotest.(check int) "silent get" 42 (Mt.Tracked.get_silent arr 0);
  Alcotest.(check int) "no events" 0 (Mt.Recorder.events_emitted rec_)

let test_tracked_init_untraced () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let arr = Mt.Tracked.init reg rec_ ~name:"X" ~elem_size:4 100 (fun i -> i * i) in
  Alcotest.(check int) "initialized" 81 (Mt.Tracked.get_silent arr 9);
  Alcotest.(check int) "init untraced" 0 (Mt.Recorder.events_emitted rec_)

let test_tracked_touch () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let sink, get = Mt.Recorder.buffer_sink () in
  ignore (Mt.Recorder.add_sink rec_ sink);
  let arr = Mt.Tracked.make reg rec_ ~name:"X" ~elem_size:32 4 () in
  Mt.Tracked.touch arr 2;
  match get () with
  | [ e ] ->
      Alcotest.(check bool) "is read" false e.Mt.Event.write;
      Alcotest.(check int) "size is elem_size" 32 e.Mt.Event.size
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_cache_sink_integration () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let cache = Cachesim.Cache.create Cachesim.Config.small_verification in
  ignore (Mt.Recorder.add_sink rec_ (Mt.Recorder.cache_sink cache));
  let arr = Mt.Tracked.make reg rec_ ~name:"X" ~elem_size:8 16 0.0 in
  (* Two sequential passes: first all misses (4 lines of 32 B hold 16
     8-byte elements), second all hits. *)
  for _pass = 1 to 2 do
    for i = 0 to 15 do
      ignore (Mt.Tracked.get arr i)
    done
  done;
  let owner = (Mt.Tracked.region arr).Mt.Region.id in
  let c = Cachesim.Stats.owner_counters (Cachesim.Cache.stats cache) owner in
  Alcotest.(check int) "misses" 4 c.Cachesim.Stats.misses;
  Alcotest.(check int) "hits" 28 c.Cachesim.Stats.hits

(* Regression: add_sink used to append with [sinks @ [sink]] (quadratic)
   — order across many sinks must stay registration order. *)
let test_sink_registration_order () =
  let rec_ = Mt.Recorder.create () in
  let seen = ref [] in
  for i = 0 to 99 do
    ignore (Mt.Recorder.add_sink rec_ (fun _ -> seen := i :: !seen))
  done;
  Mt.Recorder.read rec_ ~owner:1 ~addr:0 ~size:1;
  Alcotest.(check (list int)) "registration order" (List.init 100 Fun.id)
    (List.rev !seen)

(* Regression: [null] was one shared lazy recorder, so a sink added to it
   leaked into every later user.  Now each [null ()] is fresh and inert. *)
let test_null_recorder_inert_and_fresh () =
  let n1 = Mt.Recorder.null () in
  Alcotest.(check bool) "distinct values" false (n1 == Mt.Recorder.null ());
  (match Mt.Recorder.add_sink n1 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "null recorder accepted a sink");
  (match Mt.Recorder.add_batch_sink n1 (fun _ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "null recorder accepted a batch sink");
  Mt.Recorder.read n1 ~owner:1 ~addr:0 ~size:8;
  Alcotest.(check int) "events dropped" 0 (Mt.Recorder.events_emitted n1)

let test_buffered_chunks_and_flush () =
  let rec_ = Mt.Recorder.create ~buffer_capacity:4 () in
  let sink, get = Mt.Recorder.buffer_sink () in
  ignore (Mt.Recorder.add_sink rec_ sink);
  for i = 0 to 9 do
    Mt.Recorder.read rec_ ~owner:1 ~addr:(i * 8) ~size:8
  done;
  (* Two full chunks delivered, two events still pending. *)
  Alcotest.(check int) "delivered before flush" 8 (List.length (get ()));
  Alcotest.(check int) "pending" 2 (Mt.Recorder.pending rec_);
  Alcotest.(check int) "all counted" 10 (Mt.Recorder.events_emitted rec_);
  Mt.Recorder.flush rec_;
  Alcotest.(check int) "pending after flush" 0 (Mt.Recorder.pending rec_);
  let events = get () in
  Alcotest.(check int) "all delivered" 10 (List.length events);
  List.iteri
    (fun i (e : Mt.Event.t) ->
      Alcotest.(check int) (Printf.sprintf "event %d in order" i) (i * 8)
        e.Mt.Event.addr)
    events

let test_emit_batch_counts_and_order () =
  let rec_ = Mt.Recorder.create ~buffer_capacity:8 () in
  let sink, get = Mt.Recorder.buffer_sink () in
  let batch_chunks = ref [] in
  ignore (Mt.Recorder.add_sink rec_ sink);
  ignore
    (Mt.Recorder.add_batch_sink rec_ (fun events n ->
         batch_chunks := Array.to_list (Array.sub events 0 n) :: !batch_chunks));
  (* One buffered event, then a batch: flush-before-batch keeps order. *)
  Mt.Recorder.read rec_ ~owner:1 ~addr:0 ~size:8;
  let batch = Array.init 3 (fun i -> Mt.Event.read ~owner:1 ~addr:(8 * (i + 1)) ~size:8) in
  Mt.Recorder.emit_batch rec_ batch 3;
  Alcotest.(check int) "counted" 4 (Mt.Recorder.events_emitted rec_);
  let addrs = List.map (fun (e : Mt.Event.t) -> e.Mt.Event.addr) (get ()) in
  Alcotest.(check (list int)) "order preserved" [ 0; 8; 16; 24 ] addrs;
  Alcotest.(check int) "batch sink saw both chunks" 2
    (List.length !batch_chunks);
  Alcotest.check_raises "bad length"
    (Invalid_argument "Recorder.emit_batch: bad length 4 (array has 3)")
    (fun () -> Mt.Recorder.emit_batch rec_ batch 4)

(* The batched trace->cache fast path must produce bit-identical
   statistics to the historical per-event dispatch. *)
let test_buffered_cache_sink_equivalence () =
  let run make_recorder attach =
    let reg = Mt.Region.create () in
    let rec_ = make_recorder () in
    let cache = Cachesim.Cache.create Cachesim.Config.small_verification in
    attach rec_ cache;
    ignore (Kernels.Vm.run reg rec_ Kernels.Vm.verification);
    Mt.Recorder.flush rec_;
    Cachesim.Cache.flush cache;
    Cachesim.Stats.totals (Cachesim.Cache.stats cache)
  in
  let unbuffered =
    run
      (fun () -> Mt.Recorder.create ())
      (fun r c -> ignore (Mt.Recorder.add_sink r (Mt.Recorder.cache_sink c)))
  in
  let buffered =
    run
      (fun () -> Mt.Recorder.buffered ~buffer_capacity:64 ())
      (fun r c -> ignore (Mt.Recorder.add_batch_sink r (Mt.Recorder.cache_batch_sink c)))
  in
  Alcotest.(check bool) "identical stats" true (unbuffered = buffered);
  Alcotest.(check bool) "nonempty" true (unbuffered.Cachesim.Stats.misses > 0)

(* Unsubscription: O(1) removal that keeps every other sink's dispatch
   order, is idempotent, and rejects foreign handles. *)
let test_unsubscribe_detaches_sink () =
  let rec_ = Mt.Recorder.create () in
  let sink1, count1 = Mt.Recorder.counting_sink () in
  let sink2, count2 = Mt.Recorder.counting_sink () in
  let h1 = Mt.Recorder.add_sink rec_ sink1 in
  ignore (Mt.Recorder.add_sink rec_ sink2);
  Mt.Recorder.read rec_ ~owner:1 ~addr:0 ~size:8;
  Mt.Recorder.unsubscribe rec_ h1;
  Mt.Recorder.unsubscribe rec_ h1 (* idempotent *);
  Mt.Recorder.read rec_ ~owner:1 ~addr:8 ~size:8;
  Alcotest.(check int) "removed sink stops seeing events" 1 (count1 ());
  Alcotest.(check int) "other sink unaffected" 2 (count2 ());
  Alcotest.(check int) "recorder still counts" 2
    (Mt.Recorder.events_emitted rec_)

let test_unsubscribe_batch_sink () =
  let rec_ = Mt.Recorder.buffered ~buffer_capacity:2 () in
  let seen = ref 0 in
  let h = Mt.Recorder.add_batch_sink rec_ (fun _ n -> seen := !seen + n) in
  Mt.Recorder.read rec_ ~owner:1 ~addr:0 ~size:8;
  Mt.Recorder.flush rec_;
  Mt.Recorder.unsubscribe rec_ h;
  Mt.Recorder.read rec_ ~owner:1 ~addr:8 ~size:8;
  Mt.Recorder.flush rec_;
  Alcotest.(check int) "batch sink detached" 1 !seen

let test_unsubscribe_preserves_order () =
  let rec_ = Mt.Recorder.create () in
  let seen = ref [] in
  let handles =
    List.init 5 (fun i ->
        Mt.Recorder.add_sink rec_ (fun _ -> seen := i :: !seen))
  in
  Mt.Recorder.unsubscribe rec_ (List.nth handles 2);
  Mt.Recorder.read rec_ ~owner:1 ~addr:0 ~size:1;
  Alcotest.(check (list int)) "survivors keep registration order"
    [ 0; 1; 3; 4 ] (List.rev !seen)

let test_unsubscribe_foreign_handle_rejected () =
  let r1 = Mt.Recorder.create () in
  let r2 = Mt.Recorder.create () in
  let h = Mt.Recorder.add_sink r1 (fun _ -> ()) in
  ignore h;
  match Mt.Recorder.unsubscribe r2 h with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "foreign handle accepted"

let test_to_array_snapshot () =
  let reg = Mt.Region.create () in
  let rec_ = Mt.Recorder.create () in
  let arr = Mt.Tracked.init reg rec_ ~name:"X" ~elem_size:4 3 (fun i -> i) in
  let snap = Mt.Tracked.to_array arr in
  Mt.Tracked.set_silent arr 0 99;
  Alcotest.(check int) "snapshot unaffected" 0 snap.(0)

let suite =
  [
    Alcotest.test_case "region layout disjoint" `Quick
      test_region_layout_disjoint;
    Alcotest.test_case "duplicate name rejected" `Quick
      test_region_duplicate_name_rejected;
    Alcotest.test_case "region lookup" `Quick test_region_lookup;
    Alcotest.test_case "elem_addr" `Quick test_elem_addr;
    Alcotest.test_case "recorder fanout" `Quick test_recorder_fanout;
    Alcotest.test_case "tracked get/set traced" `Quick test_tracked_get_set;
    Alcotest.test_case "silent ops untraced" `Quick
      test_tracked_silent_ops_untraced;
    Alcotest.test_case "init untraced" `Quick test_tracked_init_untraced;
    Alcotest.test_case "touch" `Quick test_tracked_touch;
    Alcotest.test_case "cache sink integration" `Quick
      test_cache_sink_integration;
    Alcotest.test_case "sink registration order" `Quick
      test_sink_registration_order;
    Alcotest.test_case "null recorder inert and fresh" `Quick
      test_null_recorder_inert_and_fresh;
    Alcotest.test_case "buffered chunks and flush" `Quick
      test_buffered_chunks_and_flush;
    Alcotest.test_case "emit_batch counts and order" `Quick
      test_emit_batch_counts_and_order;
    Alcotest.test_case "buffered cache sink equivalence" `Quick
      test_buffered_cache_sink_equivalence;
    Alcotest.test_case "unsubscribe detaches sink" `Quick
      test_unsubscribe_detaches_sink;
    Alcotest.test_case "unsubscribe batch sink" `Quick
      test_unsubscribe_batch_sink;
    Alcotest.test_case "unsubscribe preserves order" `Quick
      test_unsubscribe_preserves_order;
    Alcotest.test_case "unsubscribe rejects foreign handle" `Quick
      test_unsubscribe_foreign_handle_rejected;
    Alcotest.test_case "to_array snapshot" `Quick test_to_array_snapshot;
  ]
