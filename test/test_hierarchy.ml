(* Cachesim.Hierarchy + set-sharded replay.

   Two load-bearing invariants: (1) the inter-level funnel is exact — a
   level's accesses equal the level above's misses plus writebacks, per
   owner, once the hierarchy is flushed; (2) partitioning by set index
   changes nothing — a 1-level hierarchy is bit-identical to the single
   cache it wraps, and sharded fused replay is bit-identical to the
   serial fused walk at every shard/job count. *)

module C = Cachesim
module Mt = Memtrace

let snap cache = C.Stats.snapshot (C.Cache.stats cache)

let check_snapshots name (a : C.Stats.snapshot) (b : C.Stats.snapshot) =
  Alcotest.(check bool) name true (a = b)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let tiny = C.Config.make ~name:"tiny" ~associativity:2 ~sets:4 ~line:16

(* Same deterministic stream as test_tape: mixes owners, strides, sizes
   and line-crossing accesses, and overflows [tiny] enough to evict. *)
let synthetic_events n =
  List.init n (fun i ->
      let owner = 1 + (i mod 3) in
      let addr = (i * 24 mod 4096) + (i mod 7 * 4096) in
      let size = 1 + (i mod 9) in
      if i mod 4 = 0 then Mt.Event.write ~owner ~addr ~size
      else Mt.Event.read ~owner ~addr ~size)

let tape_of events =
  let tape = Mt.Tape.create ~chunk_events:256 () in
  List.iter (Mt.Tape.append tape) events;
  tape

let level_snaps h =
  List.init (C.Hierarchy.depth h) (fun i ->
      snap (C.Hierarchy.level_cache h i))

(* --- Config.hierarchy_of --- *)

let test_hierarchy_of () =
  (match C.Config.hierarchy_of ~levels:1 tiny with
  | [ l1 ] -> Alcotest.(check bool) "level 1 is the base itself" true (l1 = tiny)
  | _ -> Alcotest.fail "levels:1 must yield one config");
  (match C.Config.hierarchy_of ~levels:3 tiny with
  | [ l1; l2; l3 ] ->
      Alcotest.(check bool) "L1 unchanged" true (l1 = tiny);
      Alcotest.(check string) "L2 name" "tiny/L2" l2.C.Config.name;
      Alcotest.(check string) "L3 name" "tiny/L3" l3.C.Config.name;
      Alcotest.(check int) "L2 sets = 8x" 32 l2.C.Config.sets;
      Alcotest.(check int) "L3 sets = 64x" 256 l3.C.Config.sets;
      List.iter
        (fun (cfg : C.Config.t) ->
          Alcotest.(check int) "line preserved" tiny.C.Config.line
            cfg.C.Config.line;
          Alcotest.(check int) "assoc preserved" tiny.C.Config.associativity
            cfg.C.Config.associativity)
        [ l2; l3 ]
  | _ -> Alcotest.fail "levels:3 must yield three configs");
  expect_invalid "levels 0" (fun () -> C.Config.hierarchy_of ~levels:0 tiny);
  expect_invalid "levels 4" (fun () -> C.Config.hierarchy_of ~levels:4 tiny)

let test_create_validation () =
  expect_invalid "empty" (fun () -> C.Hierarchy.create []);
  expect_invalid "mismatched line sizes" (fun () ->
      C.Hierarchy.create
        [ tiny; C.Config.make ~name:"wide" ~associativity:2 ~sets:4 ~line:32 ]);
  expect_invalid "bad funnel" (fun () ->
      C.Hierarchy.create ~funnel_events:0 [ tiny ]);
  let h = C.Hierarchy.create (C.Config.hierarchy_of ~levels:2 tiny) in
  Alcotest.(check int) "depth" 2 (C.Hierarchy.depth h);
  (* max_shards is the smallest set count over the levels — L1's here. *)
  Alcotest.(check int) "max_shards" 4 (C.Hierarchy.max_shards h);
  expect_invalid "level out of range" (fun () ->
      ignore (C.Hierarchy.level_cache h 2))

(* --- 1-level hierarchy == plain cache --- *)

let test_one_level_identity_synthetic () =
  let events = synthetic_events 3000 in
  let plain = C.Cache.create tiny in
  let h = C.Hierarchy.create [ tiny ] in
  List.iter
    (fun (e : Mt.Event.t) ->
      C.Cache.access plain ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
        ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size;
      C.Hierarchy.access h ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
        ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size)
    events;
  C.Cache.flush plain;
  C.Hierarchy.flush h;
  check_snapshots "1-level = plain cache" (snap plain)
    (snap (C.Hierarchy.level_cache h 0))

let capture_instance (instance : Core.Workload.instance) =
  let registry = Mt.Region.create () in
  let recorder = Mt.Recorder.buffered () in
  let tape = Mt.Tape.create () in
  ignore (Mt.Recorder.add_batch_sink recorder (Mt.Tape.batch_sink tape));
  instance.Core.Workload.trace registry recorder;
  Mt.Recorder.flush recorder;
  tape

let test_one_level_identity_all_workloads () =
  List.iter
    (fun workload ->
      let instance = Core.Workloads.verification_instance workload in
      let tape = capture_instance instance in
      List.iter
        (fun cfg ->
          let plain = C.Cache.create cfg in
          Mt.Tape.replay tape plain;
          C.Cache.flush plain;
          let h = C.Hierarchy.create [ cfg ] in
          Mt.Tape.replay_hierarchies tape [| h |];
          C.Hierarchy.flush h;
          check_snapshots
            (Printf.sprintf "%s on %s" instance.Core.Workload.workload
               cfg.C.Config.name)
            (snap plain)
            (snap (C.Hierarchy.level_cache h 0)))
        C.Config.verification_set)
    (Core.Workloads.all ())

(* --- the funnel invariant --- *)

let check_funnel_invariant name h =
  (* After flush, level i+1's lookups are exactly level i's demand fills
     (misses) plus its write-back spills — per owner, not just in
     total. *)
  for i = 0 to C.Hierarchy.depth h - 2 do
    let upper = C.Stats.snapshot (C.Cache.stats (C.Hierarchy.level_cache h i)) in
    let lower =
      C.Stats.snapshot (C.Cache.stats (C.Hierarchy.level_cache h (i + 1)))
    in
    let owners =
      List.sort_uniq compare
        (C.Stats.Snapshot.owners upper @ C.Stats.Snapshot.owners lower)
    in
    List.iter
      (fun owner ->
        let u = C.Stats.Snapshot.owner upper owner in
        let l = C.Stats.Snapshot.owner lower owner in
        Alcotest.(check int)
          (Printf.sprintf "%s: L%d accesses(owner %d) = L%d misses + writebacks"
             name (i + 2) owner (i + 1))
          (u.C.Stats.misses + u.C.Stats.writebacks)
          (C.Stats.Snapshot.accesses l))
      owners;
    let u = C.Stats.Snapshot.totals upper in
    let l = C.Stats.Snapshot.totals lower in
    Alcotest.(check int)
      (Printf.sprintf "%s: L%d total accesses" name (i + 2))
      (u.C.Stats.misses + u.C.Stats.writebacks)
      (C.Stats.Snapshot.accesses l)
  done

let test_funnel_invariant () =
  List.iter
    (fun levels ->
      let h = C.Hierarchy.create (C.Config.hierarchy_of ~levels tiny) in
      List.iter
        (fun (e : Mt.Event.t) ->
          C.Hierarchy.access h ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
            ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size)
        (synthetic_events 5000);
      C.Hierarchy.flush h;
      (* The stream overflows tiny, so the invariant is not vacuous. *)
      let l1 = C.Stats.Snapshot.totals (snap (C.Hierarchy.level_cache h 0)) in
      Alcotest.(check bool) "L1 missed" true (l1.C.Stats.misses > 0);
      Alcotest.(check bool) "L1 wrote back" true (l1.C.Stats.writebacks > 0);
      check_funnel_invariant (Printf.sprintf "%d-level" levels) h)
    [ 2; 3 ]

(* Flush-cascade attribution, checked against a four-event mini-trace
   computed by hand.  Lines A(0x00), B(0x40) and C(0x80) share L1 set 0
   of [tiny] (2-way), D(0x10) sits alone in set 1; L2 (8x the sets)
   never evicts.  The regression of interest: a dirty line flushed out
   of L1 must surface in L2 exactly once — as one write lookup charged
   to its owner — and each level's flush writebacks must stay with the
   owner of the dirty line, not the owner that triggered the flush. *)
let test_flush_attribution_mini_trace () =
  let h = C.Hierarchy.create (C.Config.hierarchy_of ~levels:2 tiny) in
  let access ~owner ~write addr =
    C.Hierarchy.access h ~owner ~write ~addr ~size:4
  in
  access ~owner:1 ~write:true 0x00;   (* A: miss, installs dirty *)
  access ~owner:1 ~write:false 0x40;  (* B: miss *)
  access ~owner:2 ~write:false 0x80;  (* C: miss, evicts dirty A *)
  access ~owner:3 ~write:true 0x10;   (* D: miss, installs dirty *)
  C.Hierarchy.flush h;
  let l1 = snap (C.Hierarchy.level_cache h 0) in
  let l2 = snap (C.Hierarchy.level_cache h 1) in
  let check name (s : C.Stats.snapshot) owner ~accesses ~misses ~writebacks =
    let c = C.Stats.Snapshot.owner s owner in
    Alcotest.(check int)
      (Printf.sprintf "%s owner %d accesses" name owner)
      accesses
      (C.Stats.Snapshot.accesses c);
    Alcotest.(check int)
      (Printf.sprintf "%s owner %d misses" name owner)
      misses c.C.Stats.misses;
    Alcotest.(check int)
      (Printf.sprintf "%s owner %d writebacks" name owner)
      writebacks c.C.Stats.writebacks
  in
  (* L1: owner 1 wrote A back on C's arrival; owner 3's D went back at
     flush.  Owner 2 triggered A's eviction but owns no writeback. *)
  check "L1" l1 1 ~accesses:2 ~misses:2 ~writebacks:1;
  check "L1" l1 2 ~accesses:1 ~misses:1 ~writebacks:0;
  check "L1" l1 3 ~accesses:1 ~misses:1 ~writebacks:1;
  (* L2: four demand fills plus exactly two write-back lookups — A's
     (mid-run, a hit over its own fill) and D's (from the flush
     cascade).  A and D are dirty in L2, so its own flush writes both
     back to memory, again charged to their owners. *)
  check "L2" l2 1 ~accesses:3 ~misses:2 ~writebacks:1;
  check "L2" l2 2 ~accesses:1 ~misses:1 ~writebacks:0;
  check "L2" l2 3 ~accesses:2 ~misses:1 ~writebacks:1;
  let t1 = C.Stats.Snapshot.totals l1 and t2 = C.Stats.Snapshot.totals l2 in
  Alcotest.(check int) "L2 accesses = L1 misses + writebacks"
    (t1.C.Stats.misses + t1.C.Stats.writebacks)
    (C.Stats.Snapshot.accesses t2);
  Alcotest.(check int) "L2 hit count: A's writeback found its fill" 2
    t2.C.Stats.hits

(* A small funnel buffer forces mid-batch drains; the traffic a level
   forwards must not depend on the buffer size. *)
let test_funnel_capacity_invariance () =
  let events = synthetic_events 4000 in
  let run funnel_events =
    let h =
      C.Hierarchy.create ~funnel_events (C.Config.hierarchy_of ~levels:2 tiny)
    in
    List.iter
      (fun (e : Mt.Event.t) ->
        C.Hierarchy.access h ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
          ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size)
      events;
    C.Hierarchy.flush h;
    level_snaps h
  in
  let tiny_buf = run 1 and small_buf = run 13 and big_buf = run 65536 in
  Alcotest.(check bool) "funnel 1 = funnel 13" true (tiny_buf = small_buf);
  Alcotest.(check bool) "funnel 13 = funnel 65536" true (small_buf = big_buf)

(* --- sharded walks are bit-identical --- *)

let test_cache_sharded_identity () =
  let tape = tape_of (synthetic_events 3000) in
  let configs = C.Config.verification_set in
  let serial = Array.of_list (List.map C.Cache.create configs) in
  Mt.Tape.replay_fused tape serial;
  Array.iter C.Cache.flush serial;
  List.iter
    (fun shards ->
      (* One private replica set per shard, statistics merged in shard
         order — the parallel plan, run here serially. *)
      let replicas =
        Array.init shards (fun shard ->
            let caches = Array.of_list (List.map C.Cache.create configs) in
            Mt.Tape.replay_fused_sharded tape caches ~shards ~shard;
            Array.iter C.Cache.flush caches;
            caches)
      in
      List.iteri
        (fun i (cfg : C.Config.t) ->
          let merged =
            C.Stats.sum
              (Array.to_list
                 (Array.map (fun caches -> C.Cache.stats caches.(i)) replicas))
          in
          Alcotest.(check bool)
            (Printf.sprintf "%d shards on %s" shards cfg.C.Config.name)
            true
            (C.Stats.snapshot merged = snap serial.(i)))
        configs)
    [ 1; 2; 8 ]

let test_hierarchy_sharded_identity () =
  let tape = tape_of (synthetic_events 3000) in
  let configs = C.Config.hierarchy_of ~levels:2 C.Config.small_verification in
  let serial = C.Hierarchy.create configs in
  Mt.Tape.replay_hierarchies tape [| serial |];
  C.Hierarchy.flush serial;
  let serial_levels = level_snaps serial in
  List.iter
    (fun shards ->
      let replicas =
        Array.init shards (fun shard ->
            let h = C.Hierarchy.create configs in
            Mt.Tape.replay_hierarchies_sharded tape [| h |] ~shards ~shard;
            C.Hierarchy.flush h;
            h)
      in
      let merged_levels =
        List.init (List.length configs) (fun level ->
            C.Stats.snapshot
              (C.Stats.sum
                 (Array.to_list
                    (Array.map
                       (fun h -> C.Cache.stats (C.Hierarchy.level_cache h level))
                       replicas))))
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards, both levels" shards)
        true
        (merged_levels = serial_levels))
    [ 1; 2; 8 ]

(* --- atomic batch validation (regression) ---

   [access_batch] used to validate per event mid-walk, so a bad event
   aborted the batch after mutating the cache.  Validation is now up
   front: a rejected batch must leave statistics and contents alone. *)

let test_failed_batch_leaves_cache_untouched () =
  let cache = C.Cache.create tiny in
  ignore (C.Cache.touch_line cache ~owner:1 ~write:true ~line_addr:0);
  ignore (C.Cache.touch_line cache ~owner:2 ~write:false ~line_addr:48);
  let before = snap cache in
  let meta = C.Cache.pack_access ~owner:1 ~write:true ~size:4 in
  let addrs = [| 0; 64; -8; 128 |] in
  let metas = [| meta; meta; meta; meta |] in
  Alcotest.check_raises "negative address rejected"
    (Invalid_argument "Cache.access_batch: negative address at index 2")
    (fun () -> C.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len:4);
  expect_invalid "sharded walk rejects it too" (fun () ->
      C.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len:4 ~shards:2
        ~shard:0);
  check_snapshots "stats untouched" before (snap cache);
  (* The valid prefix (indices 0..1) was not installed either. *)
  Alcotest.(check int) "no new resident lines" 0
    (C.Cache.resident_lines cache ~owner:1 - 1)

let test_sharded_argument_validation () =
  let cache = C.Cache.create tiny in
  let addrs = [| 0 |] in
  let metas = [| C.Cache.pack_access ~owner:1 ~write:false ~size:4 |] in
  expect_invalid "shards not a power of two" (fun () ->
      C.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len:1 ~shards:3
        ~shard:0);
  expect_invalid "shards zero" (fun () ->
      C.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len:1 ~shards:0
        ~shard:0);
  expect_invalid "shard out of range" (fun () ->
      C.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len:1 ~shards:2
        ~shard:2);
  expect_invalid "effective_shards validates" (fun () ->
      ignore (C.Cache.effective_shards cache ~shards:6));
  Alcotest.(check int) "effective_shards clamps to sets" 4
    (C.Cache.effective_shards cache ~shards:64);
  (* A shard beyond the clamp owns no sets: walking it is a no-op. *)
  C.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len:1 ~shards:64
    ~shard:33;
  Alcotest.(check int) "clamped shard is a no-op" 0
    (C.Stats.Snapshot.accesses (C.Stats.Snapshot.totals (snap cache)))

(* --- snapshot owner lookup (binary search) --- *)

let test_snapshot_owner_lookup () =
  let stats = C.Stats.create () in
  (* Insert owners far from sorted order; the snapshot must come out
     ascending and every lookup must land on the right entry. *)
  let owners = [ 40; 2; 1000; 0; 7; 31; 512 ] in
  List.iteri
    (fun i owner ->
      for _ = 0 to i do
        C.Stats.record_access stats ~owner ~write:(i mod 2 = 0) ~hit:false
      done)
    owners;
  let s = C.Stats.snapshot stats in
  let sorted = List.sort compare owners in
  Alcotest.(check (list int)) "per_owner ascending" sorted
    (Array.to_list (Array.map fst s.C.Stats.per_owner));
  List.iteri
    (fun i owner ->
      Alcotest.(check int)
        (Printf.sprintf "owner %d found" owner)
        (i + 1)
        (C.Stats.Snapshot.accesses (C.Stats.Snapshot.owner s owner)))
    owners;
  (* Absent owners — below, between and above the present range. *)
  List.iter
    (fun owner ->
      Alcotest.(check int)
        (Printf.sprintf "owner %d absent" owner)
        0
        (C.Stats.Snapshot.accesses (C.Stats.Snapshot.owner s owner)))
    [ -1; 1; 3; 30; 32; 511; 513; 999; 1001; max_int ]

(* --- Verify sweeps --- *)

let test_verify_sharded_identical () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let fused =
    Core.Verify.run_all ~jobs:1 ~strategy:Core.Verify.Fused ~workloads ()
  in
  List.iter
    (fun jobs ->
      let sharded =
        Core.Verify.run_all ~jobs ~strategy:Core.Verify.Sharded ~workloads ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "sharded -j %d = fused" jobs)
        true (sharded = fused))
    [ 1; 2; 8 ];
  (* An explicit shard count must not change the rows either. *)
  let wide =
    Core.Verify.run_all ~jobs:2 ~strategy:Core.Verify.Sharded ~shards:16
      ~workloads ()
  in
  Alcotest.(check bool) "16 shards on 2 domains = fused" true (wide = fused)

let test_run_all_levels () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let classic =
    Core.Verify.run_all ~jobs:1 ~strategy:Core.Verify.Fused ~workloads ()
  in
  (* levels:1 reports the same traffic the classic rows simulate. *)
  let l1 =
    Core.Verify.run_all_levels ~jobs:1 ~strategy:Core.Verify.Fused ~workloads
      ~levels:1 ()
  in
  Alcotest.(check int) "same row count at levels:1" (List.length classic)
    (List.length l1);
  List.iter2
    (fun (r : Core.Verify.row) (l : Core.Verify.level_row) ->
      Alcotest.(check string) "workload" r.Core.Verify.workload
        l.Core.Verify.l_workload;
      Alcotest.(check string) "structure" r.Core.Verify.structure
        l.Core.Verify.l_structure;
      Alcotest.(check int) "level" 1 l.Core.Verify.level;
      Alcotest.(check (float 0.0)) "misses + writebacks = simulated"
        r.Core.Verify.simulated
        (l.Core.Verify.misses +. l.Core.Verify.l_writebacks))
    classic l1;
  (* levels:2 rows obey the funnel invariant per workload/cache pair. *)
  let l2 =
    Core.Verify.run_all_levels ~jobs:1 ~strategy:Core.Verify.Fused ~workloads
      ~levels:2 ()
  in
  let keys =
    List.sort_uniq compare
      (List.map
         (fun (l : Core.Verify.level_row) ->
           (l.Core.Verify.l_workload, l.Core.Verify.base_cache.C.Config.name))
         l2)
  in
  Alcotest.(check int) "2 workloads x 2 geometries" 4 (List.length keys);
  List.iter
    (fun (wl, cache) ->
      let level n =
        List.filter
          (fun (l : Core.Verify.level_row) ->
            l.Core.Verify.l_workload = wl
            && l.Core.Verify.base_cache.C.Config.name = cache
            && l.Core.Verify.level = n)
          l2
      in
      let sum f rows = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s/%s: L2 accesses = L1 misses + writebacks" wl cache)
        (sum
           (fun (l : Core.Verify.level_row) ->
             l.Core.Verify.misses +. l.Core.Verify.l_writebacks)
           (level 1))
        (sum (fun (l : Core.Verify.level_row) -> l.Core.Verify.accesses)
           (level 2)))
    keys;
  (* Sharded and parallel runs reproduce the serial per-level rows. *)
  List.iter
    (fun jobs ->
      let sharded =
        Core.Verify.run_all_levels ~jobs ~strategy:Core.Verify.Sharded
          ~workloads ~levels:2 ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "sharded -j %d = fused (levels:2)" jobs)
        true (sharded = l2))
    [ 1; 2; 8 ];
  (* A hierarchy can only be driven from a captured tape. *)
  expect_invalid "retrace rejected" (fun () ->
      ignore
        (Core.Verify.run_all_levels ~jobs:1 ~strategy:Core.Verify.Retrace
           ~workloads ~levels:2 ()));
  expect_invalid "levels 0 rejected" (fun () ->
      ignore (Core.Verify.run_all_levels ~jobs:1 ~workloads ~levels:0 ()))

let suite =
  [
    Alcotest.test_case "Config.hierarchy_of" `Quick test_hierarchy_of;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "1-level = plain cache (synthetic)" `Quick
      test_one_level_identity_synthetic;
    Alcotest.test_case "1-level = plain cache (all workloads)" `Quick
      test_one_level_identity_all_workloads;
    Alcotest.test_case "funnel invariant (2 and 3 levels)" `Quick
      test_funnel_invariant;
    Alcotest.test_case "flush attribution (hand-computed)" `Quick
      test_flush_attribution_mini_trace;
    Alcotest.test_case "funnel capacity invariance" `Quick
      test_funnel_capacity_invariance;
    Alcotest.test_case "sharded fused = fused (caches)" `Quick
      test_cache_sharded_identity;
    Alcotest.test_case "sharded fused = fused (hierarchies)" `Quick
      test_hierarchy_sharded_identity;
    Alcotest.test_case "failed batch leaves cache untouched" `Quick
      test_failed_batch_leaves_cache_untouched;
    Alcotest.test_case "sharded argument validation" `Quick
      test_sharded_argument_validation;
    Alcotest.test_case "snapshot owner lookup" `Quick
      test_snapshot_owner_lookup;
    Alcotest.test_case "verify sharded strategy identical" `Quick
      test_verify_sharded_identical;
    Alcotest.test_case "per-level verification rows" `Quick
      test_run_all_levels;
  ]
