let () =
  Alcotest.run "dvf"
    [
      ("maths", Test_maths.suite);
      ("dist", Test_dist.suite);
      ("rng", Test_rng.suite);
      ("units", Test_units.suite);
      ("table", Test_table.suite);
      ("fenwick", Test_fenwick.suite);
      ("parallel", Test_parallel.suite);
      ("cachesim", Test_cachesim.suite);
      ("trace", Test_trace.suite);
      ("streaming", Test_streaming.suite);
      ("random-access", Test_random_access.suite);
      ("template", Test_template.suite);
      ("reuse", Test_reuse.suite);
      ("compose", Test_compose.suite);
      ("kernel-vm", Test_vm.suite);
      ("kernel-cg", Test_cg.suite);
      ("kernels", Test_kernels.suite);
      ("dvf", Test_dvf.suite);
      ("ecc", Test_ecc.suite);
      ("core-misc", Test_core_misc.suite);
      ("workload", Test_workload.suite);
      ("aspen", Test_aspen.suite);
      ("models", Test_models.suite);
      ("sparse", Test_sparse.suite);
      ("component", Test_component.suite);
      ("kernel-pcg", Test_pcg.suite);
      ("selective", Test_selective.suite);
      ("fault-injection", Test_fault_injection.suite);
      ("injection", Test_injection.suite);
      ("telemetry", Test_telemetry.suite);
      ("tape", Test_tape.suite);
      ("hierarchy", Test_hierarchy.suite);
    ]
