module Pcg = Kernels.Pcg
module Cg = Kernels.Cg

let test_solves_system () =
  let p = Pcg.make_params ~max_iterations:500 ~tolerance:1e-10 64 in
  let r = Pcg.run_untraced p in
  Alcotest.(check bool)
    (Printf.sprintf "converged in %d iters, err %.2e" r.Pcg.iterations
       r.Pcg.solution_error)
    true
    (r.Pcg.residual < 1e-9 && r.Pcg.solution_error < 1e-6)

let test_traced_matches_untraced () =
  List.iter
    (fun preconditioner ->
      let p = Pcg.make_params ~max_iterations:10 ~preconditioner 80 in
      let registry = Memtrace.Region.create () in
      let recorder = Memtrace.Recorder.create () in
      let traced = Pcg.run registry recorder p in
      let untraced = Pcg.run_untraced p in
      Alcotest.(check int) "iterations" untraced.Pcg.iterations traced.Pcg.iterations;
      Alcotest.(check (float 1e-12)) "residual" untraced.Pcg.residual
        traced.Pcg.residual)
    [ `Vector; `Dense_matrix ]

let test_converges_no_slower_than_cg_at_scale () =
  (* At n = 800 the diagonal spread is large and Jacobi pays off. *)
  let n = 800 in
  let pcg =
    Pcg.run_untraced (Pcg.make_params ~max_iterations:2000 ~tolerance:1e-8 n)
  in
  let cg =
    Cg.run_untraced (Cg.make_params ~max_iterations:2000 ~tolerance:1e-8 n)
  in
  Alcotest.(check bool)
    (Printf.sprintf "PCG %d < CG %d iterations" pcg.Pcg.iterations cg.Cg.iterations)
    true
    (2 * pcg.Pcg.iterations < cg.Cg.iterations)

let test_dense_preconditioner_traffic () =
  (* Dense M mode must register an n^2 structure; vector mode an n one. *)
  let n = 64 in
  let m_bytes preconditioner =
    let spec = Pcg.spec (Pcg.make_params ~preconditioner n) in
    List.assoc "M" (Access_patterns.App_spec.structure_bytes spec)
  in
  Alcotest.(check int) "vector M" (8 * n) (m_bytes `Vector);
  Alcotest.(check int) "dense M" (8 * n * n) (m_bytes `Dense_matrix)

let test_model_vs_simulation () =
  (* Fig. 4 methodology on PCG (vector mode, 6 structures). *)
  let p = Pcg.make_params ~max_iterations:8 ~tolerance:0.0 200 in
  List.iter
    (fun cfg ->
      let registry = Memtrace.Region.create () in
      let recorder = Memtrace.Recorder.create () in
      let cache = Cachesim.Cache.create cfg in
      ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
      let result = Pcg.run registry recorder p in
      Cachesim.Cache.flush cache;
      let stats = Cachesim.Cache.stats cache in
      let spec = Pcg.spec ~iterations:result.Pcg.iterations p in
      let modeled =
        Access_patterns.App_spec.main_memory_accesses ~cache:cfg spec
      in
      let sim = ref 0.0 and model = ref 0.0 in
      List.iter
        (fun (name, m) ->
          let region = Memtrace.Region.lookup registry name in
          sim :=
            !sim
            +. float_of_int
                 (Cachesim.Stats.main_memory_accesses stats
                    region.Memtrace.Region.id);
          model := !model +. m)
        modeled;
      let err = Dvf_util.Maths.rel_error ~expected:!sim ~actual:!model in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model %.0f vs sim %.0f (err %.1f%%)"
           cfg.Cachesim.Config.name !model !sim (100.0 *. err))
        true (err <= 0.15))
    Cachesim.Config.[ small_verification; large_verification ]

let suite =
  [
    Alcotest.test_case "solves the system" `Quick test_solves_system;
    Alcotest.test_case "traced = untraced (both modes)" `Quick
      test_traced_matches_untraced;
    Alcotest.test_case "beats CG at scale" `Slow
      test_converges_no_slower_than_cg_at_scale;
    Alcotest.test_case "preconditioner storage sizes" `Quick
      test_dense_preconditioner_traffic;
    Alcotest.test_case "model vs simulation" `Slow test_model_vs_simulation;
  ]
