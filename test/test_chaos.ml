(* Chaos campaigns and the Fault_model interface: deterministic,
   bit-identical at any job count, clean at kill fraction 0, and running
   on the same engine as bit-flip injection. *)

module Fi = Kernels.Fault_injection
module Fm = Core.Fault_model
module Sg = Core.Service_graph

let report () =
  match
    Core.Chaos.run ~trials:200 (Core.Service_workloads.workload ())
  with
  | Some r -> r
  | None -> Alcotest.fail "service_graph workload has no topology"

let row =
  Alcotest.testable
    (fun ppf (r : Core.Chaos.row) ->
      Format.fprintf ppf "%s: %d/%d avail %.4f dvf %.4g" r.Core.Chaos.endpoint
        r.Core.Chaos.lost r.Core.Chaos.trials r.Core.Chaos.availability
        r.Core.Chaos.dvf)
    ( = )

(* --- determinism and parallel bit-identity --- *)

let test_deterministic () =
  let a = report () and b = report () in
  Alcotest.(check (list row)) "same rows" a.Core.Chaos.rows b.Core.Chaos.rows;
  Alcotest.(check bool) "same report" true (a = b)

let test_jobs_bit_identity () =
  let w = Core.Service_workloads.workload () in
  let run jobs =
    match Core.Chaos.run ~trials:200 ~jobs w with
    | Some r -> r
    | None -> Alcotest.fail "no topology"
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check (list row))
        (Printf.sprintf "-j %d rows" jobs)
        serial.Core.Chaos.rows r.Core.Chaos.rows;
      Alcotest.(check string)
        (Printf.sprintf "-j %d table" jobs)
        (Dvf_util.Table.render (Core.Chaos.to_table serial))
        (Dvf_util.Table.render (Core.Chaos.to_table r)))
    [ 2; 8 ]

let test_seed_changes_tallies () =
  let w = Core.Service_workloads.workload () in
  let run seed =
    match Core.Chaos.run ~seed ~trials:200 w with
    | Some r -> r
    | None -> Alcotest.fail "no topology"
  in
  Alcotest.(check bool) "different seeds, different rows" true
    ((run 1).Core.Chaos.rows <> (run 2).Core.Chaos.rows)

(* --- identity kill: fraction 0 is a clean run --- *)

let test_identity_kill_is_clean () =
  let w = Core.Service_workloads.workload () in
  let r =
    match Core.Chaos.run ~trials:100 ~kill_fraction:0.0 w with
    | Some r -> r
    | None -> Alcotest.fail "no topology"
  in
  Alcotest.(check int) "nothing killed" 0 r.Core.Chaos.killed_per_trial;
  List.iter
    (fun (row : Core.Chaos.row) ->
      Alcotest.(check int) (row.Core.Chaos.endpoint ^ " lost") 0
        row.Core.Chaos.lost;
      Alcotest.(check (float 0.0))
        (row.Core.Chaos.endpoint ^ " availability")
        1.0 row.Core.Chaos.availability)
    r.Core.Chaos.rows;
  Alcotest.(check (float 0.0)) "no requests lost" 0.0
    r.Core.Chaos.requests_lost

let test_total_kill_loses_everything () =
  let w = Core.Service_workloads.workload () in
  let r =
    match Core.Chaos.run ~trials:50 ~kill_fraction:1.0 w with
    | Some r -> r
    | None -> Alcotest.fail "no topology"
  in
  List.iter
    (fun (row : Core.Chaos.row) ->
      Alcotest.(check (float 0.0))
        (row.Core.Chaos.endpoint ^ " availability")
        0.0 row.Core.Chaos.availability)
    r.Core.Chaos.rows

let test_kill_count () =
  Alcotest.(check int) "10% of 13 is 1" 1
    (Fm.kill_count ~kill_fraction:0.1 ~components:13);
  Alcotest.(check int) "0 kills nothing" 0
    (Fm.kill_count ~kill_fraction:0.0 ~components:13);
  Alcotest.(check int) "1 kills everything" 13
    (Fm.kill_count ~kill_fraction:1.0 ~components:13);
  Alcotest.check_raises "rejects 1.5"
    (Invalid_argument "Fault_model.kill_count: kill fraction 1.5 not in [0, 1]")
    (fun () -> ignore (Fm.kill_count ~kill_fraction:1.5 ~components:13))

(* --- Fault_model conformance: both implementations obey the contract --- *)

let models () =
  let vm = Fi.vm_injector Kernels.Vm.verification in
  [ Fm.of_injector vm; Fm.component_kill Sg.social_network ]

let test_model_targets_and_defaults () =
  List.iter
    (fun (m : Fm.t) ->
      Alcotest.(check bool) (m.Fm.model ^ " has targets") true (m.Fm.targets <> []);
      Alcotest.(check bool)
        (m.Fm.model ^ " positive default trials")
        true (m.Fm.default_trials > 0))
    (models ())

let test_model_trial_determinism () =
  (* Same derived RNG, same (target, trial) cell: outcome and stamp must
     repeat, and the stamp stays in [0, 1] — the bit-identity contract
     the parallel engine relies on. *)
  List.iter
    (fun (m : Fm.t) ->
      List.iteri
        (fun target _ ->
          for trial = 0 to 4 do
            let go () =
              m.Fm.trial ~target
                (Fi.trial_rng ~seed:99 ~structure_index:target ~trial)
            in
            let o1, s1 = go () in
            let o2, s2 = go () in
            Alcotest.(check bool)
              (Printf.sprintf "%s[%d] trial %d repeats" m.Fm.model target trial)
              true
              (o1 = o2 && s1 = s2);
            Alcotest.(check bool)
              (Printf.sprintf "%s[%d] stamp in range" m.Fm.model target)
              true
              (s1 >= 0.0 && s1 <= 1.0)
          done)
        m.Fm.targets)
    (models ())

let test_model_engine_parallel_identity () =
  List.iter
    (fun (m : Fm.t) ->
      let run jobs =
        Core.Injection.run_model ~trials:60 ~jobs ~workload:"conformance" m
      in
      Alcotest.(check bool)
        (m.Fm.model ^ " -j 2 matches -j 1")
        true
        (run 1 = run 2))
    (models ())

let test_of_injector_matches_inject () =
  (* The wrapped bit-flip model through the generic engine reproduces the
     historical injection campaigns bit for bit. *)
  let w = Core.Workloads.vm in
  let result =
    match Core.Injection.run ~trials:50 w with
    | Some r -> r
    | None -> Alcotest.fail "VM has no injector"
  in
  let inj =
    match w.Core.Workload.injector with
    | Some mk -> mk ()
    | None -> Alcotest.fail "VM has no injector"
  in
  let campaigns =
    Core.Injection.run_model ~trials:50 ~workload:w.Core.Workload.name
      (Fm.of_injector inj)
  in
  Alcotest.(check bool) "same campaigns" true
    (result.Core.Injection.campaigns = campaigns)

(* --- serve: the chaos op renders byte-identically to the CLI --- *)

let test_serve_chaos_round_trip () =
  let module Json = Dvf_util.Json in
  let srv = Core.Serve.create ~jobs:1 ~workloads:[] () in
  Fun.protect ~finally:(fun () -> Core.Serve.shutdown srv) @@ fun () ->
  let response =
    match
      Core.Serve.handle_line srv {|{"id":1,"op":"chaos","trials":200}|}
    with
    | Some r -> r
    | None -> Alcotest.fail "no response"
  in
  let resp =
    match Json.of_string response with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  (match Json.member "ok" resp with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail ("chaos op failed: " ^ response));
  let decoded =
    Core.Serve.chaos_report_of_result (Option.get (Json.member "result" resp))
  in
  let direct = report () in
  Alcotest.(check string) "tables byte-identical"
    (Dvf_util.Table.render (Core.Chaos.to_table direct))
    (Dvf_util.Table.render (Core.Chaos.to_table decoded));
  Alcotest.(check bool) "reports equal" true (decoded = direct)

let test_csv_shape () =
  let r = report () in
  let csv = Core.Chaos.to_csv [ r ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per endpoint"
    (1 + List.length r.Core.Chaos.rows)
    (List.length lines);
  Alcotest.(check string) "header"
    "workload,endpoint,weight,trials,lost,availability,ci_lo,ci_hi,dvf"
    (List.hd lines)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "bit-identical at -j 1/2/8" `Quick
      test_jobs_bit_identity;
    Alcotest.test_case "seed changes tallies" `Quick test_seed_changes_tallies;
    Alcotest.test_case "kill fraction 0 is a clean run" `Quick
      test_identity_kill_is_clean;
    Alcotest.test_case "kill fraction 1 loses everything" `Quick
      test_total_kill_loses_everything;
    Alcotest.test_case "kill_count rounding and bounds" `Quick test_kill_count;
    Alcotest.test_case "models expose targets and defaults" `Quick
      test_model_targets_and_defaults;
    Alcotest.test_case "model trials are deterministic" `Quick
      test_model_trial_determinism;
    Alcotest.test_case "engine parallel identity per model" `Quick
      test_model_engine_parallel_identity;
    Alcotest.test_case "of_injector matches dvf inject" `Quick
      test_of_injector_matches_inject;
    Alcotest.test_case "serve chaos op round-trips" `Quick
      test_serve_chaos_round_trip;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
  ]
