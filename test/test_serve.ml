(* Core.Serve and the dvf-query protocol.

   In-process tests drive handle_line/handle_batch directly and check
   the responses against the one-shot APIs they wrap (bit-identity of
   decoded rows).  The end-to-end test spawns the real `dvf serve`
   binary over pipes and asserts the daemon's verify rows equal the
   library's — the same comparison the CI smoke makes against `dvf
   verify` output. *)

module J = Dvf_util.Json

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let with_server ?(workloads = [ Core.Workloads.vm; Core.Workloads.mc ]) f =
  let srv = Core.Serve.create ~jobs:2 ~workloads () in
  Fun.protect ~finally:(fun () -> Core.Serve.shutdown srv) (fun () -> f srv)

let parse_exn line =
  match J.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "bad response %S: %s" line e

let field name = function
  | J.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> Alcotest.failf "response missing %S" name)
  | _ -> Alcotest.fail "response is not an object"

let respond srv request =
  match Core.Serve.handle_line srv request with
  | Some line -> parse_exn line
  | None -> Alcotest.failf "no response to %S" request

let check_envelope response =
  Alcotest.(check string) "schema" Core.Serve.schema
    (match field "schema" response with J.Str s -> s | _ -> "?");
  Alcotest.(check int) "schema_version" Core.Serve.schema_version
    (match field "schema_version" response with J.Int i -> i | _ -> -1)

let expect_ok response =
  check_envelope response;
  (match field "ok" response with
  | J.Bool true -> ()
  | _ -> Alcotest.failf "expected ok response, got %s" (J.to_string response));
  field "result" response

let expect_error response =
  check_envelope response;
  (match field "ok" response with
  | J.Bool false -> ()
  | _ -> Alcotest.failf "expected error response, got %s" (J.to_string response));
  match field "error" response with
  | J.Str msg -> msg
  | _ -> Alcotest.fail "error response without message"

(* --- basic protocol --- *)

let test_ping () =
  with_server (fun srv ->
      let response = respond srv {|{"id":42,"op":"ping"}|} in
      Alcotest.(check bool) "id echoed" true (field "id" response = J.Int 42);
      Alcotest.(check bool) "pong" true
        (field "pong" (expect_ok response) = J.Bool true))

let test_workloads () =
  with_server (fun srv ->
      let result = expect_ok (respond srv {|{"id":1,"op":"workloads"}|}) in
      match field "workloads" result with
      | J.List names ->
          Alcotest.(check (list string))
            "served names" [ "VM"; "MC" ]
            (List.map (function J.Str s -> s | _ -> "?") names)
      | _ -> Alcotest.fail "workloads is not a list")

let test_malformed_line () =
  with_server (fun srv ->
      let response = respond srv "this is not json" in
      let msg = expect_error response in
      Alcotest.(check bool) "id is null" true (field "id" response = J.Null);
      Alcotest.(check bool) "message mentions the parse" true
        (String.length msg > 0))

let test_unknown_op () =
  with_server (fun srv ->
      let msg = expect_error (respond srv {|{"id":1,"op":"bogus"}|}) in
      Alcotest.(check bool) "names the op" true (contains_substring msg "bogus"))

let test_unknown_workload () =
  with_server (fun srv ->
      let msg =
        expect_error (respond srv {|{"id":1,"op":"verify","workload":"nope"}|})
      in
      Alcotest.(check bool) "lists served workloads" true
        (contains_substring msg "VM"))

let test_blank_line_keepalive () =
  with_server (fun srv ->
      Alcotest.(check bool) "blank" true (Core.Serve.handle_line srv "" = None);
      Alcotest.(check bool) "whitespace" true
        (Core.Serve.handle_line srv "   \r" = None))

(* --- op results equal the one-shot APIs --- *)

let test_verify_rows_bit_identical () =
  with_server (fun srv ->
      let result =
        expect_ok (respond srv {|{"id":1,"op":"verify","workload":"VM"}|})
      in
      let served = Core.Serve.verify_rows_of_result result in
      let direct =
        Core.Verify.run_all ~jobs:1 ~workloads:[ Core.Workloads.vm ] ()
      in
      Alcotest.(check bool) "rows = run_all" true (served = direct))

let test_levels_rows_bit_identical () =
  with_server (fun srv ->
      let result =
        expect_ok
          (respond srv {|{"id":1,"op":"levels","workload":"VM","levels":2}|})
      in
      let served = Core.Serve.level_rows_of_result result in
      let direct =
        Core.Verify.run_all_levels ~jobs:1 ~levels:2
          ~workloads:[ Core.Workloads.vm ] ()
      in
      Alcotest.(check bool) "rows = run_all_levels" true (served = direct))

let test_dvf_rows_bit_identical () =
  with_server (fun srv ->
      let result =
        expect_ok (respond srv {|{"id":1,"op":"dvf","workload":"VM"}|})
      in
      let served = Core.Serve.profile_rows_of_result result in
      let direct =
        Core.Profile.run_all ~workloads:[ Core.Workloads.vm ] ()
      in
      Alcotest.(check bool) "rows = Profile.run_all" true (served = direct))

let test_sweep_rows_bit_identical () =
  with_server (fun srv ->
      let result =
        expect_ok
          (respond srv
             {|{"id":1,"op":"sweep","workload":"VM","capacities":[8192,65536]}|})
      in
      let served = Core.Serve.sweep_rows_of_result result in
      (* The daemon sweeps its warm verification capture (see the mli),
         so the reference sweep must run over the same instance. *)
      let instance = Core.Workloads.verification_instance Core.Workloads.vm in
      let capture = Core.Verify.capture instance in
      let direct =
        Core.Experiments.cache_sweep ~jobs:1 ~capacities:[ 8192; 65536 ]
          ~simulate:true ~capture instance
      in
      Alcotest.(check bool) "rows = cache_sweep" true (served = direct))

let test_sweep_requires_workload () =
  with_server (fun srv ->
      let msg = expect_error (respond srv {|{"id":1,"op":"sweep"}|}) in
      Alcotest.(check bool) "asks for a workload" true
        (contains_substring msg "workload"))

(* --- batches --- *)

let test_batch_order_and_equivalence () =
  with_server (fun srv ->
      let requests =
        [
          {|{"id":0,"op":"ping"}|};
          {|{"id":1,"op":"verify","workload":"VM"}|};
          {|{"id":2,"op":"workloads"}|};
          {|{"id":3,"op":"bogus"}|};
          {|{"id":4,"op":"dvf","workload":"MC"}|};
        ]
      in
      let batched = Core.Serve.handle_batch srv requests in
      Alcotest.(check int) "five responses" 5 (List.length batched);
      List.iteri
        (fun i line ->
          Alcotest.(check bool)
            (Printf.sprintf "id %d in order" i)
            true
            (field "id" (parse_exn line) = J.Int i))
        batched;
      (* A batch is just the serial map, faster. *)
      let serial = List.filter_map (Core.Serve.handle_line srv) requests in
      Alcotest.(check (list string)) "batch = serial" serial batched)

(* --- row codecs round-trip --- *)

let test_row_codecs_roundtrip () =
  let rows = Core.Verify.run_all ~jobs:1 ~workloads:[ Core.Workloads.vm ] () in
  List.iter
    (fun row ->
      let back =
        Core.Serve.verify_row_of_json (Core.Serve.verify_row_to_json row)
      in
      Alcotest.(check bool) "verify row" true (row = back))
    rows;
  let profile = Core.Profile.run_all ~workloads:[ Core.Workloads.vm ] () in
  List.iter
    (fun row ->
      let back =
        Core.Serve.profile_row_of_json (Core.Serve.profile_row_to_json row)
      in
      Alcotest.(check bool) "profile row (exact floats)" true (row = back))
    profile

(* --- tape info (the dvf tape info payload) --- *)

let test_tape_info () =
  let path = Printf.sprintf "serve_tape_info_%d.dvftape" (Unix.getpid ()) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let module Mt = Memtrace in
      let registry = Mt.Region.create () in
      ignore (Mt.Region.register registry ~name:"A" ~elements:256 ~elem_size:8);
      ignore (Mt.Region.register registry ~name:"B" ~elements:64 ~elem_size:4);
      let tape = Mt.Tape.create ~chunk_events:64 () in
      for i = 0 to 199 do
        Mt.Tape.append tape (Mt.Event.read ~owner:1 ~addr:(i * 32) ~size:4)
      done;
      Mt.Tape_io.save ~path
        ~meta:{ Mt.Tape_io.workload = "VM"; size = "n=64"; seed = 3 }
        ~registry ~tape;
      let info =
        match Core.Serve.tape_info_of_file path with
        | Ok i -> i
        | Error e ->
            Alcotest.failf "tape_info_of_file: %s" (Mt.Tape_io.error_to_string e)
      in
      Alcotest.(check int) "version" Mt.Tape_io.format_version
        info.Core.Serve.ti_version;
      Alcotest.(check string) "workload" "VM" info.Core.Serve.ti_workload;
      Alcotest.(check int) "events" 200 info.Core.Serve.ti_events;
      Alcotest.(check int) "chunks" 4 info.Core.Serve.ti_chunks;
      Alcotest.(check int) "regions" 2 info.Core.Serve.ti_regions;
      Alcotest.(check int) "granule" (1 lsl Mt.Tape.granule_shift)
        info.Core.Serve.ti_granule;
      Alcotest.(check int) "buckets" Mt.Tape.partition_buckets
        info.Core.Serve.ti_buckets;
      (* Addresses 0, 32, .. 199*32: granule lines 0 .. 796 step 4. *)
      Alcotest.(check int) "min line" 0 info.Core.Serve.ti_min_line;
      Alcotest.(check int) "max line" (199 * 4) info.Core.Serve.ti_max_line;
      Alcotest.(check int) "covered buckets (stride 4)"
        (Mt.Tape.partition_buckets / 4)
        info.Core.Serve.ti_buckets_covered;
      Alcotest.(check int) "no saturated chunks" 0
        info.Core.Serve.ti_saturated_chunks;
      (* The codec round-trips exactly and the JSON line is stable. *)
      let json = Core.Serve.tape_info_to_json info in
      Alcotest.(check bool) "json round-trip" true
        (Core.Serve.tape_info_of_json json = info);
      Alcotest.(check string) "json encoding stable"
        (J.to_string ~indent:false json)
        (J.to_string ~indent:false (Core.Serve.tape_info_to_json info));
      (* The rendered table is byte-stable across loads of the file. *)
      let render i = Dvf_util.Table.render (Core.Serve.tape_info_table i) in
      match Core.Serve.tape_info_of_file path with
      | Ok again -> Alcotest.(check string) "table stable" (render info) (render again)
      | Error e ->
          Alcotest.failf "second load: %s" (Mt.Tape_io.error_to_string e))

(* --- Json.parse_line (the protocol's framing helper) --- *)

let test_json_parse_line () =
  let ok = function Ok v -> v | Error e -> Alcotest.failf "parse_line: %s" e in
  Alcotest.(check bool) "blank is None" true (ok (J.parse_line "") = None);
  Alcotest.(check bool) "whitespace is None" true
    (ok (J.parse_line " \t ") = None);
  Alcotest.(check bool) "CR stripped" true
    (ok (J.parse_line "{\"a\":1}\r") = Some (J.Obj [ ("a", J.Int 1) ]));
  Alcotest.(check bool) "document parsed" true
    (ok (J.parse_line "[1,2]") = Some (J.List [ J.Int 1; J.Int 2 ]));
  (match J.parse_line "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match J.parse_line "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* --- end to end: the real binary over pipes --- *)

let test_end_to_end_binary () =
  let exe = "../bin/dvf_cli.exe" in
  if not (Sys.file_exists exe) then
    Alcotest.skip ()
  else begin
    let req_read, req_write = Unix.pipe ~cloexec:false () in
    let resp_read, resp_write = Unix.pipe ~cloexec:false () in
    let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process exe
        [| exe; "serve"; "-j"; "1"; "VM" |]
        req_read resp_write dev_null
    in
    Unix.close req_read;
    Unix.close resp_write;
    Unix.close dev_null;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close req_write with Unix.Unix_error _ -> ());
        (try Unix.close resp_read with Unix.Unix_error _ -> ());
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () ->
        let requests =
          {|{"id":1,"op":"ping"}
{"id":2,"op":"verify","workload":"VM"}
|}
        in
        let len = String.length requests in
        Alcotest.(check int) "request written" len
          (Unix.write_substring req_write requests 0 len);
        (* Closing stdin after the requests lets the daemon exit cleanly
           once it has answered. *)
        Unix.close req_write;
        let ic = Unix.in_channel_of_descr resp_read in
        let ping = parse_exn (input_line ic) in
        Alcotest.(check bool) "daemon pong" true
          (field "pong" (expect_ok ping) = J.Bool true);
        let verify = parse_exn (input_line ic) in
        let served = Core.Serve.verify_rows_of_result (expect_ok verify) in
        let direct =
          Core.Verify.run_all ~jobs:1 ~workloads:[ Core.Workloads.vm ] ()
        in
        Alcotest.(check bool) "daemon rows = library rows" true
          (served = direct))
  end

let suite =
  [
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "workloads" `Quick test_workloads;
    Alcotest.test_case "malformed line" `Quick test_malformed_line;
    Alcotest.test_case "unknown op" `Quick test_unknown_op;
    Alcotest.test_case "unknown workload" `Quick test_unknown_workload;
    Alcotest.test_case "blank line keep-alive" `Quick test_blank_line_keepalive;
    Alcotest.test_case "verify rows bit-identical" `Quick
      test_verify_rows_bit_identical;
    Alcotest.test_case "levels rows bit-identical" `Quick
      test_levels_rows_bit_identical;
    Alcotest.test_case "dvf rows bit-identical" `Quick
      test_dvf_rows_bit_identical;
    Alcotest.test_case "sweep rows bit-identical" `Quick
      test_sweep_rows_bit_identical;
    Alcotest.test_case "sweep requires a workload" `Quick
      test_sweep_requires_workload;
    Alcotest.test_case "batch order and equivalence" `Quick
      test_batch_order_and_equivalence;
    Alcotest.test_case "row codecs round-trip" `Quick test_row_codecs_roundtrip;
    Alcotest.test_case "tape info" `Quick test_tape_info;
    Alcotest.test_case "Json.parse_line" `Quick test_json_parse_line;
    Alcotest.test_case "end-to-end: dvf serve over pipes" `Quick
      test_end_to_end_binary;
  ]
