(* Service graphs: declaration validation, weight normalization,
   availability semantics (kill sets and reachability), and the
   determinism / spec agreement of the synthesized request traffic. *)

module Sg = Core.Service_graph

let expect_invalid ~needle f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument mentioning %S" needle
  | exception Invalid_argument msg ->
      let contains =
        let nl = String.length needle and hl = String.length msg in
        let rec go i =
          i + nl <= hl
          && (String.equal (String.sub msg i nl) needle || go (i + 1))
        in
        go 0
      in
      if not contains then
        Alcotest.failf "error %S does not mention %S" msg needle

let c ?kind ?calls name bytes = Sg.component ?kind ?calls ~name ~state_bytes:bytes ()

(* a -> b -> c, one endpoint on the far end. *)
let chain ?(weight = 1.0) () =
  Sg.make ~name:"chain" ~client:"a"
    ~components:
      [ c ~calls:[ "b" ] "a" 64; c ~calls:[ "c" ] "b" 64; c "c" 64 ]
    ~endpoints:[ Sg.endpoint ~name:"get" ~weight ~targets:[ "c" ] ]
    ()

(* --- validation --- *)

let test_rejects_cycle () =
  expect_invalid ~needle:"call cycle" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c ~calls:[ "b" ] "a" 64; c ~calls:[ "a" ] "b" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "b" ] ]
        ())

let test_rejects_self_call () =
  expect_invalid ~needle:"calls itself" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c ~calls:[ "a" ] "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "a" ] ]
        ())

let test_rejects_unknown_call_target () =
  expect_invalid ~needle:"unknown component" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c ~calls:[ "ghost" ] "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "a" ] ]
        ())

let test_rejects_unknown_endpoint_target () =
  expect_invalid ~needle:"targets unknown component" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "ghost" ] ]
        ())

let test_rejects_duplicate_component () =
  expect_invalid ~needle:"duplicate component" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c "a" 64; c "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "a" ] ]
        ())

let test_rejects_unknown_client () =
  expect_invalid ~needle:"not a declared component" (fun () ->
      Sg.make ~name:"g" ~client:"ghost"
        ~components:[ c "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "a" ] ]
        ())

let test_rejects_empty_targets () =
  expect_invalid ~needle:"has no targets" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c "a" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[] ]
        ())

let test_rejects_bad_weight () =
  expect_invalid ~needle:"weight must be positive" (fun () -> chain ~weight:0.0 ());
  expect_invalid ~needle:"weight must be positive" (fun () ->
      chain ~weight:Float.nan ())

let test_rejects_unreachable_target () =
  (* d is declared but no call edge leads to it from the client. *)
  expect_invalid ~needle:"not reachable from client" (fun () ->
      Sg.make ~name:"g" ~client:"a"
        ~components:[ c ~calls:[ "b" ] "a" 64; c "b" 64; c "d" 64 ]
        ~endpoints:[ Sg.endpoint ~name:"e" ~weight:1.0 ~targets:[ "d" ] ]
        ())

let test_normalizes_weights () =
  let g =
    Sg.make ~name:"g" ~client:"a"
      ~components:[ c ~calls:[ "b" ] "a" 64; c "b" 64 ]
      ~endpoints:
        [
          Sg.endpoint ~name:"hot" ~weight:3.0 ~targets:[ "b" ];
          Sg.endpoint ~name:"cold" ~weight:1.0 ~targets:[ "a" ];
        ]
      ()
  in
  let weights = List.map (fun (e : Sg.endpoint) -> e.Sg.weight) g.Sg.endpoints in
  Alcotest.(check (list (float 1e-12))) "3:1 normalizes to 0.75/0.25"
    [ 0.75; 0.25 ] weights

(* --- availability --- *)

let test_nothing_killed_serves_everything () =
  let g = Sg.social_network in
  List.iter
    (fun e ->
      Alcotest.(check bool) (e ^ " served") true (Sg.available g ~killed:[] e))
    (Sg.endpoint_names g)

let test_killing_client_loses_everything () =
  let g = Sg.social_network in
  List.iter
    (fun e ->
      Alcotest.(check bool) (e ^ " lost") false
        (Sg.available g ~killed:[ "nginx-web-server" ] e))
    (Sg.endpoint_names g)

let test_kill_isolates_by_endpoint () =
  let g = Sg.social_network in
  let killed = [ "home-timeline-service" ] in
  Alcotest.(check bool) "home-timeline lost" false
    (Sg.available g ~killed "home-timeline");
  (* compose-post fans out into the timeline services, so it dies too. *)
  Alcotest.(check bool) "compose-post lost" false
    (Sg.available g ~killed "compose-post");
  (* user-timeline's path avoids the killed service entirely. *)
  Alcotest.(check bool) "user-timeline survives" true
    (Sg.available g ~killed "user-timeline")

let test_reachability_break_loses_endpoint () =
  (* In the chain a -> b -> c, killing b leaves target c alive but
     unreachable: the endpoint must count as lost. *)
  let g = chain () in
  Alcotest.(check bool) "served when whole" true
    (Sg.available g ~killed:[] "get");
  Alcotest.(check bool) "lost when the middle dies" false
    (Sg.available g ~killed:[ "b" ] "get")

let test_available_rejects_unknown_names () =
  let g = chain () in
  expect_invalid ~needle:"unknown endpoint" (fun () ->
      Sg.available g ~killed:[] "ghost");
  expect_invalid ~needle:"unknown component" (fun () ->
      Sg.available g ~killed:[ "ghost" ] "get")

let test_evaluator_matches_available () =
  let g = Sg.social_network in
  let eval = Sg.evaluator g in
  let names = Array.of_list (Sg.component_names g) in
  let endpoints = Sg.endpoint_names g in
  (* Every single-kill set, every endpoint: the index-based fast path
     agrees with the by-name reference. *)
  Array.iteri
    (fun ki killed_name ->
      List.iteri
        (fun ei e ->
          Alcotest.(check bool)
            (Printf.sprintf "kill %s / %s" killed_name e)
            (Sg.available g ~killed:[ killed_name ] e)
            (eval ~killed:[| ki |] ~endpoint:ei))
        endpoints)
    names

(* --- synthesized traffic --- *)

let capture ?seed ~requests g =
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let sink, events = Memtrace.Recorder.buffer_sink () in
  ignore (Memtrace.Recorder.add_sink recorder sink);
  Sg.trace ?seed ~requests g registry recorder;
  Memtrace.Recorder.flush recorder;
  events ()

let test_trace_is_deterministic () =
  let g = Sg.social_network in
  let a = capture ~seed:7 ~requests:200 g in
  let b = capture ~seed:7 ~requests:200 g in
  Alcotest.(check int) "same length" (List.length a) (List.length b);
  Alcotest.(check bool) "same events" true (a = b);
  let other = capture ~seed:8 ~requests:200 g in
  Alcotest.(check bool) "seed changes the stream" true (a <> other)

let test_spec_structures_match_trace_regions () =
  let g = Sg.social_network in
  let spec = Sg.spec ~requests:200 g in
  let spec_names =
    List.map fst (Access_patterns.App_spec.structure_bytes spec)
  in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  Sg.trace ~requests:200 g registry recorder;
  let region_names =
    List.map
      (fun (r : Memtrace.Region.region) -> r.Memtrace.Region.name)
      (Memtrace.Region.regions registry)
  in
  Alcotest.(check (list string)) "one region per spec structure" spec_names
    region_names

let test_workload_flows_through_verify () =
  let w = Core.Service_workloads.workload () in
  let rows = Core.Verify.run_all ~workloads:[ w ] () in
  Alcotest.(check bool) "has rows" true (rows <> []);
  List.iter
    (fun (r : Core.Verify.row) ->
      Alcotest.(check bool)
        (r.Core.Verify.structure ^ " error finite")
        true
        (Float.is_finite (Core.Verify.error r)))
    rows

let suite =
  [
    Alcotest.test_case "rejects call cycles" `Quick test_rejects_cycle;
    Alcotest.test_case "rejects self-calls" `Quick test_rejects_self_call;
    Alcotest.test_case "rejects unknown call targets" `Quick
      test_rejects_unknown_call_target;
    Alcotest.test_case "rejects unknown endpoint targets" `Quick
      test_rejects_unknown_endpoint_target;
    Alcotest.test_case "rejects duplicate components" `Quick
      test_rejects_duplicate_component;
    Alcotest.test_case "rejects unknown client" `Quick
      test_rejects_unknown_client;
    Alcotest.test_case "rejects empty target lists" `Quick
      test_rejects_empty_targets;
    Alcotest.test_case "rejects bad weights" `Quick test_rejects_bad_weight;
    Alcotest.test_case "rejects unreachable targets" `Quick
      test_rejects_unreachable_target;
    Alcotest.test_case "normalizes endpoint weights" `Quick
      test_normalizes_weights;
    Alcotest.test_case "all alive serves every endpoint" `Quick
      test_nothing_killed_serves_everything;
    Alcotest.test_case "dead client loses every endpoint" `Quick
      test_killing_client_loses_everything;
    Alcotest.test_case "kills isolate by endpoint" `Quick
      test_kill_isolates_by_endpoint;
    Alcotest.test_case "reachability break loses the endpoint" `Quick
      test_reachability_break_loses_endpoint;
    Alcotest.test_case "available rejects unknown names" `Quick
      test_available_rejects_unknown_names;
    Alcotest.test_case "evaluator matches available" `Quick
      test_evaluator_matches_available;
    Alcotest.test_case "trace is deterministic" `Quick
      test_trace_is_deterministic;
    Alcotest.test_case "spec structures match trace regions" `Quick
      test_spec_structures_match_trace_regions;
    Alcotest.test_case "service workload flows through verify" `Quick
      test_workload_flows_through_verify;
  ]
