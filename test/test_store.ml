(* Memtrace.Tape_store: the content-addressed capture cache.

   Core behaviours under test: a miss captures and persists, a hit skips
   capture entirely and returns the identical tape; entries that cannot
   be trusted — stale format version, corrupt payload, provenance that
   does not match the key — are evicted and recaptured, never served;
   list/gc report and clear the untrustworthy entries. *)

module C = Cachesim
module Mt = Memtrace
module T = Dvf_util.Telemetry

let scratch_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "store_scratch_%d_%d" (Unix.getpid ()) !counter

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_store ?telemetry f =
  let dir = scratch_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () -> f (Mt.Tape_store.create ?telemetry ~dir ()))

let key = { Mt.Tape_store.workload = "VM"; size = "n=64 (verification)"; seed = 0 }

let synthetic_events n =
  List.init n (fun i ->
      let owner = 1 + (i mod 3) in
      let addr = (i * 24 mod 4096) + (i mod 7 * 4096) in
      let size = 1 + (i mod 9) in
      if i mod 4 = 0 then Mt.Event.write ~owner ~addr ~size
      else Mt.Event.read ~owner ~addr ~size)

let make_capture n () =
  let registry = Mt.Region.create () in
  ignore (Mt.Region.register registry ~name:"A" ~elements:256 ~elem_size:8);
  let tape = Mt.Tape.create ~chunk_events:64 () in
  List.iter (Mt.Tape.append tape) (synthetic_events n);
  (registry, tape)

let check_same_tape name expected actual =
  Alcotest.(check int)
    (name ^ ": length")
    (Mt.Tape.length expected) (Mt.Tape.length actual);
  Alcotest.(check bool) (name ^ ": events") true
    (List.for_all2 Mt.Event.equal (Mt.Tape.to_list expected)
       (Mt.Tape.to_list actual))

(* --- miss, save, hit --- *)

let test_find_on_empty () =
  with_store (fun store ->
      Alcotest.(check bool) "empty store misses" true
        (Mt.Tape_store.find store key = None))

let test_find_or_capture_once () =
  let telemetry = T.create () in
  with_store ~telemetry (fun store ->
      let captures = ref 0 in
      let capture () =
        incr captures;
        make_capture 200 ()
      in
      let _, tape1, hit1 = Mt.Tape_store.find_or_capture store key ~capture in
      Alcotest.(check bool) "first call misses" false hit1;
      Alcotest.(check int) "first call captures" 1 !captures;
      let _, tape2, hit2 = Mt.Tape_store.find_or_capture store key ~capture in
      Alcotest.(check bool) "second call hits" true hit2;
      Alcotest.(check int) "second call does not capture" 1 !captures;
      check_same_tape "hit returns the saved tape" tape1 tape2;
      Alcotest.(check int) "store/misses" 1 (T.counter_value telemetry "store/misses");
      Alcotest.(check int) "store/hits" 1 (T.counter_value telemetry "store/hits");
      Alcotest.(check bool) "save and load bytes counted" true
        (T.counter_value telemetry "store/save_bytes" > 0
        && T.counter_value telemetry "store/load_bytes"
           = T.counter_value telemetry "store/save_bytes"))

let test_distinct_keys_distinct_paths () =
  with_store (fun store ->
      let p k = Mt.Tape_store.path store k in
      Alcotest.(check bool) "workload distinguishes" true
        (p key <> p { key with Mt.Tape_store.workload = "CG" });
      Alcotest.(check bool) "size distinguishes" true
        (p key <> p { key with Mt.Tape_store.size = "other" });
      Alcotest.(check bool) "seed distinguishes" true
        (p key <> p { key with Mt.Tape_store.seed = 1 });
      (* Path is deterministic: same key, same file, across store
         handles. *)
      Alcotest.(check string) "stable" (p key) (p key))

(* --- eviction of untrustworthy entries --- *)

let patch_file path f =
  let ic = open_in_bin path in
  let b = Bytes.create (in_channel_length ic) in
  really_input ic b 0 (Bytes.length b);
  close_in ic;
  f b;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_corrupt_entry_evicted () =
  let telemetry = T.create () in
  with_store ~telemetry (fun store ->
      let registry, tape = make_capture 200 () in
      Mt.Tape_store.save store key ~registry ~tape;
      let path = Mt.Tape_store.path store key in
      patch_file path (fun b ->
          let pos = Bytes.length b - 9 in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1)));
      Alcotest.(check bool) "corrupt entry not served" true
        (Mt.Tape_store.find store key = None);
      Alcotest.(check bool) "corrupt entry removed" false (Sys.file_exists path);
      Alcotest.(check int) "store/evictions" 1
        (T.counter_value telemetry "store/evictions");
      (* find_or_capture recaptures over the evicted slot. *)
      let _, _, hit =
        Mt.Tape_store.find_or_capture store key ~capture:(make_capture 200)
      in
      Alcotest.(check bool) "recaptured" false hit;
      Alcotest.(check bool) "fresh entry back on disk" true
        (Sys.file_exists path))

let test_stale_version_evicted () =
  with_store (fun store ->
      let registry, tape = make_capture 64 () in
      Mt.Tape_store.save store key ~registry ~tape;
      let path = Mt.Tape_store.path store key in
      (* Rewrite the u32 format version after the 8-byte magic. *)
      patch_file path (fun b -> Bytes.set_int32_le b 8 9999l);
      Alcotest.(check bool) "stale entry not served" true
        (Mt.Tape_store.find store key = None);
      Alcotest.(check bool) "stale entry removed" false (Sys.file_exists path))

let test_meta_mismatch_evicted () =
  with_store (fun store ->
      (* A structurally valid tape whose provenance disagrees with the
         key it is filed under (e.g. a hash collision or a hand-renamed
         file) must not be served. *)
      let registry, tape = make_capture 64 () in
      Mt.Tape_io.save
        ~path:(Mt.Tape_store.path store key)
        ~meta:
          {
            Mt.Tape_io.workload = "CG";
            size = "someone else's capture";
            seed = 3;
          }
        ~registry ~tape;
      Alcotest.(check bool) "mismatched entry not served" true
        (Mt.Tape_store.find store key = None);
      Alcotest.(check bool) "mismatched entry removed" false
        (Sys.file_exists (Mt.Tape_store.path store key)))

let test_format_bump_retires_v1_entries () =
  with_store (fun store ->
      let registry, tape = make_capture 64 () in
      (* An entry left behind by a v1-era build: same logical key, but
         filed under the name that build computed (the key hash embeds
         the format version) and written in the v1 on-disk format. *)
      let v1_name =
        Printf.sprintf "%s-%016Lx.dvftape" key.Mt.Tape_store.workload
          (Int64.of_int
             (Mt.Tape_io.hash_string
                (Printf.sprintf "v1|%s|%s|%d" key.Mt.Tape_store.workload
                   key.Mt.Tape_store.size key.Mt.Tape_store.seed)))
      in
      let v1_path = Filename.concat (Mt.Tape_store.dir store) v1_name in
      Mt.Tape_io.save_v1 ~path:v1_path
        ~meta:
          {
            Mt.Tape_io.workload = key.Mt.Tape_store.workload;
            size = key.Mt.Tape_store.size;
            seed = key.Mt.Tape_store.seed;
          }
        ~registry ~tape;
      (* This build never probes the v1 name: a clean miss, and the old
         file is left for gc rather than eagerly evicted. *)
      Alcotest.(check bool) "v1 entry is not served" true
        (Mt.Tape_store.find store key = None);
      Alcotest.(check bool) "v1 file awaits gc" true (Sys.file_exists v1_path);
      (* list labels it stale — the file is readable (load still accepts
         v1) but its declared version is not this build's. *)
      (match Mt.Tape_store.list store with
      | [ e ] ->
          Alcotest.(check bool) "labelled Stale 1" true
            (e.Mt.Tape_store.status = `Stale 1)
      | es -> Alcotest.failf "expected one entry, got %d" (List.length es));
      (* find_or_capture recaptures under the current name... *)
      let _, _, hit =
        Mt.Tape_store.find_or_capture store key ~capture:(make_capture 64)
      in
      Alcotest.(check bool) "recaptured" false hit;
      Alcotest.(check bool) "current-format entry on disk" true
        (Sys.file_exists (Mt.Tape_store.path store key));
      (* ...and gc reaps the retired v1 file, keeping the fresh one. *)
      let removed = Mt.Tape_store.gc store in
      Alcotest.(check (list string)) "gc reaps the v1 entry" [ v1_name ] removed;
      Alcotest.(check bool) "fresh entry survives" true
        (Mt.Tape_store.find store key <> None))

(* --- list / gc --- *)

let test_list_and_gc () =
  with_store (fun store ->
      let registry, tape = make_capture 64 () in
      Mt.Tape_store.save store key ~registry ~tape;
      let cg_key = { key with Mt.Tape_store.workload = "CG" } in
      Mt.Tape_store.save store cg_key ~registry ~tape;
      let mc_key = { key with Mt.Tape_store.workload = "MC" } in
      Mt.Tape_store.save store mc_key ~registry ~tape;
      patch_file (Mt.Tape_store.path store cg_key) (fun b ->
          Bytes.set_int32_le b 8 9999l);
      patch_file (Mt.Tape_store.path store mc_key) (fun b ->
          Bytes.set b 0 'X');
      let entries = Mt.Tape_store.list store in
      Alcotest.(check int) "three entries" 3 (List.length entries);
      let count p = List.length (List.filter p entries) in
      Alcotest.(check int) "one ok" 1
        (count (fun e ->
             match e.Mt.Tape_store.status with `Ok _ -> true | _ -> false));
      Alcotest.(check int) "one stale" 1
        (count (fun e ->
             match e.Mt.Tape_store.status with `Stale 9999 -> true | _ -> false));
      Alcotest.(check int) "one corrupt" 1
        (count (fun e ->
             match e.Mt.Tape_store.status with `Corrupt _ -> true | _ -> false));
      let removed = Mt.Tape_store.gc store in
      Alcotest.(check int) "gc removes the bad pair" 2 (List.length removed);
      Alcotest.(check int) "good entry survives" 1
        (List.length (Mt.Tape_store.list store));
      Alcotest.(check bool) "good entry still loads" true
        (Mt.Tape_store.find store key <> None))

let test_gc_orphaned_temps () =
  with_store (fun store ->
      let registry, tape = make_capture 64 () in
      Mt.Tape_store.save store key ~registry ~tape;
      (* The residue of an interrupted atomic save: [Tape_io.save]
         writes [<entry>.tmp] and renames, so a lingering .tmp is
         garbage by construction. *)
      let orphan =
        Filename.concat (Mt.Tape_store.dir store) "dead.dvftape.tmp"
      in
      let oc = open_out_bin orphan in
      output_string oc "partial write";
      close_out oc;
      let removed = Mt.Tape_store.gc store in
      Alcotest.(check (list string)) "orphan removed"
        [ "dead.dvftape.tmp" ] removed;
      Alcotest.(check bool) "orphan gone from disk" false
        (Sys.file_exists orphan);
      Alcotest.(check bool) "live entry untouched" true
        (Mt.Tape_store.find store key <> None))

let entry_bytes store k =
  let ic = open_in_bin (Mt.Tape_store.path store k) in
  let n = in_channel_length ic in
  close_in ic;
  n

let set_mtime path mtime = Unix.utimes path mtime mtime

let test_gc_lru_budget () =
  let telemetry = T.create () in
  with_store ~telemetry (fun store ->
      let registry, tape = make_capture 64 () in
      let keys =
        List.map
          (fun w -> { key with Mt.Tape_store.workload = w })
          [ "VM"; "CG"; "MC" ]
      in
      List.iter (fun k -> Mt.Tape_store.save store k ~registry ~tape) keys;
      let sizes = List.map (entry_bytes store) keys in
      let total = List.fold_left ( + ) 0 sizes in
      let size_of k = entry_bytes store k in
      (* Pin explicit ages: VM oldest, CG middle, MC newest. *)
      List.iteri
        (fun i k -> set_mtime (Mt.Tape_store.path store k) (1000.0 +. float_of_int i))
        keys;
      (* A budget that already holds: nothing to do. *)
      Alcotest.(check (list string)) "within budget: no evictions" []
        (Mt.Tape_store.gc ~max_bytes:total store);
      (* Shave one byte off: exactly the oldest entry goes. *)
      let vm = List.nth keys 0 and cg = List.nth keys 1 in
      let mc = List.nth keys 2 in
      let removed = Mt.Tape_store.gc ~max_bytes:(total - 1) store in
      Alcotest.(check int) "one eviction" 1 (List.length removed);
      Alcotest.(check bool) "oldest (VM) evicted" false
        (Sys.file_exists (Mt.Tape_store.path store vm));
      Alcotest.(check bool) "newer entries survive" true
        (Sys.file_exists (Mt.Tape_store.path store cg)
        && Sys.file_exists (Mt.Tape_store.path store mc));
      (* A hit refreshes recency: touch CG older than MC, then read CG —
         the LRU victim must now be MC. *)
      set_mtime (Mt.Tape_store.path store cg) 2000.0;
      set_mtime (Mt.Tape_store.path store mc) 3000.0;
      Alcotest.(check bool) "hit on CG" true
        (Mt.Tape_store.find store cg <> None);
      let removed = Mt.Tape_store.gc ~max_bytes:(size_of cg) store in
      Alcotest.(check int) "one more eviction" 1 (List.length removed);
      Alcotest.(check bool) "recently-read CG survives" true
        (Sys.file_exists (Mt.Tape_store.path store cg));
      Alcotest.(check bool) "stale MC evicted" false
        (Sys.file_exists (Mt.Tape_store.path store mc));
      (* Zero budget empties the store; negative is an error. *)
      Alcotest.(check int) "zero budget clears the store" 1
        (List.length (Mt.Tape_store.gc ~max_bytes:0 store));
      Alcotest.(check int) "store empty" 0
        (List.length (Mt.Tape_store.list store));
      (match Mt.Tape_store.gc ~max_bytes:(-1) store with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative max_bytes must be rejected");
      Alcotest.(check int) "every removal counted as an eviction" 3
        (T.counter_value telemetry "store/evictions"))

let test_create_on_file_rejected () =
  let path = scratch_dir () in
  Fun.protect
    ~finally:(fun () -> remove_tree path)
    (fun () ->
      let oc = open_out path in
      close_out oc;
      match Mt.Tape_store.create ~dir:path () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument on a non-directory")

(* --- integration with Verify.capture --- *)

let test_verify_capture_through_store () =
  let telemetry = T.create () in
  with_store ~telemetry (fun store ->
      let instance = Core.Workloads.verification_instance Core.Workloads.vm in
      let cold = Core.Verify.capture ~telemetry ~store instance in
      Alcotest.(check int) "cold run captures" 1
        (T.counter_value telemetry "store/misses");
      let captured_before = T.counter_value telemetry "tape/capture_events" in
      Alcotest.(check bool) "kernel actually ran" true (captured_before > 0);
      let warm = Core.Verify.capture ~telemetry ~store instance in
      Alcotest.(check int) "warm run hits" 1
        (T.counter_value telemetry "store/hits");
      (* The acceptance invariant: a hit skips kernel execution, so the
         capture-event counter does not move. *)
      Alcotest.(check int) "no new capture events" captured_before
        (T.counter_value telemetry "tape/capture_events");
      check_same_tape "warm tape = cold tape" cold.Core.Verify.tape
        warm.Core.Verify.tape;
      Alcotest.(check bool) "registries agree" true
        (Mt.Region.export cold.Core.Verify.registry
        = Mt.Region.export warm.Core.Verify.registry))

let suite =
  [
    Alcotest.test_case "find on empty store" `Quick test_find_on_empty;
    Alcotest.test_case "find_or_capture captures once" `Quick
      test_find_or_capture_once;
    Alcotest.test_case "distinct keys, distinct paths" `Quick
      test_distinct_keys_distinct_paths;
    Alcotest.test_case "corrupt entry evicted" `Quick test_corrupt_entry_evicted;
    Alcotest.test_case "stale version evicted" `Quick test_stale_version_evicted;
    Alcotest.test_case "meta mismatch evicted" `Quick test_meta_mismatch_evicted;
    Alcotest.test_case "format bump retires v1 entries" `Quick
      test_format_bump_retires_v1_entries;
    Alcotest.test_case "list and gc" `Quick test_list_and_gc;
    Alcotest.test_case "gc removes orphaned temporaries" `Quick
      test_gc_orphaned_temps;
    Alcotest.test_case "gc enforces an LRU byte budget" `Quick
      test_gc_lru_budget;
    Alcotest.test_case "create on a file is rejected" `Quick
      test_create_on_file_rejected;
    Alcotest.test_case "Verify.capture through the store" `Quick
      test_verify_capture_through_store;
  ]
