(* Memtrace.Tape: capture-once/replay-many correctness.

   The tentpole invariant is bit-identity: replaying a captured tape into
   a cache must leave statistics identical to tracing the workload
   straight into that cache — for every builtin workload, every
   verification geometry, any chunking, and fused multi-cache walks. *)

module C = Cachesim
module Mt = Memtrace

let snap cache = C.Stats.snapshot (C.Cache.stats cache)

let check_snapshots name (a : C.Stats.snapshot) (b : C.Stats.snapshot) =
  Alcotest.(check bool) name true (a = b)

(* Deterministic synthetic event stream mixing owners, strides, sizes and
   line-crossing accesses. *)
let synthetic_events n =
  List.init n (fun i ->
      let owner = 1 + (i mod 3) in
      let addr = (i * 24 mod 4096) + (i mod 7 * 4096) in
      let size = 1 + (i mod 9) in
      if i mod 4 = 0 then Mt.Event.write ~owner ~addr ~size
      else Mt.Event.read ~owner ~addr ~size)

let drive_direct cfg events =
  let cache = C.Cache.create cfg in
  List.iter
    (fun (e : Mt.Event.t) ->
      C.Cache.access cache ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
        ~addr:e.Mt.Event.addr ~size:e.Mt.Event.size)
    events;
  C.Cache.flush cache;
  snap cache

let drive_tape ?chunk_events cfg events =
  let tape = Mt.Tape.create ?chunk_events () in
  List.iter (Mt.Tape.append tape) events;
  let cache = C.Cache.create cfg in
  Mt.Tape.replay tape cache;
  C.Cache.flush cache;
  (tape, snap cache)

(* --- packed event words --- *)

let test_pack_roundtrip () =
  List.iter
    (fun (owner, write, size) ->
      let meta = C.Cache.pack_access ~owner ~write ~size in
      Alcotest.(check (triple int bool int))
        (Printf.sprintf "owner=%d write=%b size=%d" owner write size)
        (owner, write, size)
        (C.Cache.unpack_access meta))
    [
      (0, false, 1); (0, true, 1); (1, false, 64); (7, true, 4096);
      (0, false, (1 lsl 30) - 1); (max_int lsr 31, true, 17);
    ]

let test_pack_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "size 0" (fun () ->
      C.Cache.pack_access ~owner:0 ~write:false ~size:0);
  expect_invalid "size too big" (fun () ->
      C.Cache.pack_access ~owner:0 ~write:false ~size:(1 lsl 30));
  expect_invalid "negative owner" (fun () ->
      C.Cache.pack_access ~owner:(-1) ~write:false ~size:1);
  expect_invalid "owner too big" (fun () ->
      C.Cache.pack_access ~owner:((max_int lsr 31) + 1) ~write:false ~size:1)

(* --- Cache.access_batch equals per-event Cache.access --- *)

let test_access_batch_equivalence () =
  let events = synthetic_events 2000 in
  let cfg = C.Config.small_verification in
  let direct = drive_direct cfg events in
  let n = List.length events in
  let addrs = Array.make n 0 and metas = Array.make n 0 in
  List.iteri
    (fun i (e : Mt.Event.t) ->
      addrs.(i) <- e.Mt.Event.addr;
      metas.(i) <-
        C.Cache.pack_access ~owner:e.Mt.Event.owner ~write:e.Mt.Event.write
          ~size:e.Mt.Event.size)
    events;
  let batched = C.Cache.create cfg in
  (* Split the stream at an arbitrary boundary: two batch calls must
     behave exactly like one. *)
  C.Cache.access_batch batched ~addrs ~metas ~pos:0 ~len:777;
  C.Cache.access_batch batched ~addrs ~metas ~pos:777 ~len:(n - 777);
  C.Cache.flush batched;
  check_snapshots "access_batch = access" direct (snap batched)

let test_access_batch_bad_range () =
  let cache = C.Cache.create C.Config.small_verification in
  let addrs = Array.make 4 0 and metas = Array.make 4 0 in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "len past end" (fun () ->
      C.Cache.access_batch cache ~addrs ~metas ~pos:2 ~len:3);
  expect_invalid "negative pos" (fun () ->
      C.Cache.access_batch cache ~addrs ~metas ~pos:(-1) ~len:1);
  expect_invalid "negative len" (fun () ->
      C.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len:(-1));
  expect_invalid "mismatched metas" (fun () ->
      C.Cache.access_batch cache ~addrs ~metas:(Array.make 2 0) ~pos:0 ~len:3)

(* --- chunk-boundary edge cases --- *)

let test_empty_tape () =
  let tape = Mt.Tape.create ~chunk_events:8 () in
  Alcotest.(check int) "length" 0 (Mt.Tape.length tape);
  Alcotest.(check int) "chunks" 0 (Mt.Tape.chunk_count tape);
  Alcotest.(check int) "to_list" 0 (List.length (Mt.Tape.to_list tape));
  let cache = C.Cache.create C.Config.small_verification in
  Mt.Tape.replay tape cache;
  Alcotest.(check int) "no accesses" 0
    (C.Stats.Snapshot.accesses (C.Stats.Snapshot.totals (snap cache)))

let test_exactly_one_chunk () =
  let events = synthetic_events 64 in
  let cfg = C.Config.small_verification in
  let tape, replayed = drive_tape ~chunk_events:64 cfg events in
  Alcotest.(check int) "length" 64 (Mt.Tape.length tape);
  Alcotest.(check int) "one chunk" 1 (Mt.Tape.chunk_count tape);
  check_snapshots "replay = direct" (drive_direct cfg events) replayed

let test_capacity_plus_one () =
  let events = synthetic_events 65 in
  let cfg = C.Config.small_verification in
  let tape, replayed = drive_tape ~chunk_events:64 cfg events in
  Alcotest.(check int) "length" 65 (Mt.Tape.length tape);
  Alcotest.(check int) "two chunks" 2 (Mt.Tape.chunk_count tape);
  check_snapshots "replay = direct" (drive_direct cfg events) replayed;
  (* Decoding across the chunk boundary preserves order and values. *)
  Alcotest.(check bool) "to_list roundtrip" true
    (List.for_all2 Mt.Event.equal events (Mt.Tape.to_list tape))

let test_chunking_invariance () =
  (* The same stream chunked three ways replays identically. *)
  let events = synthetic_events 500 in
  let cfg = C.Config.small_verification in
  let _, s1 = drive_tape ~chunk_events:1 cfg events in
  let _, s7 = drive_tape ~chunk_events:7 cfg events in
  let _, s10000 = drive_tape ~chunk_events:10000 cfg events in
  check_snapshots "chunk 1 = chunk 7" s1 s7;
  check_snapshots "chunk 7 = chunk 10000" s7 s10000

let test_append_validation () =
  let tape = Mt.Tape.create () in
  Alcotest.check_raises "negative address"
    (Invalid_argument "Tape.append: negative address") (fun () ->
      Mt.Tape.append tape (Mt.Event.read ~owner:0 ~addr:(-1) ~size:4));
  Alcotest.check_raises "bad chunk capacity"
    (Invalid_argument "Tape.create: chunk_events must be positive (got 0)")
    (fun () -> ignore (Mt.Tape.create ~chunk_events:0 ()))

(* --- bulk append (capture fast path) --- *)

let test_append_batch_equals_append () =
  let events = Array.of_list (synthetic_events 37) in
  let one_by_one = Mt.Tape.create ~chunk_events:8 () in
  Array.iter (Mt.Tape.append one_by_one) events;
  (* One bulk call crossing four chunk boundaries, and two split calls
     with the second starting mid-chunk: all three tapes must agree. *)
  let bulk = Mt.Tape.create ~chunk_events:8 () in
  Mt.Tape.append_batch bulk events (Array.length events);
  let split = Mt.Tape.create ~chunk_events:8 () in
  Mt.Tape.append_batch split (Array.sub events 0 11) 11;
  Mt.Tape.append_batch split (Array.sub events 11 26) 26;
  List.iter
    (fun (name, tape) ->
      Alcotest.(check int) (name ^ " length") 37 (Mt.Tape.length tape);
      Alcotest.(check int) (name ^ " chunks") 5 (Mt.Tape.chunk_count tape);
      Alcotest.(check bool) (name ^ " events") true
        (List.for_all2 Mt.Event.equal
           (Mt.Tape.to_list one_by_one)
           (Mt.Tape.to_list tape)))
    [ ("bulk", bulk); ("split", split) ];
  (* A batch can also consume a prefix of its array. *)
  let prefix = Mt.Tape.create ~chunk_events:8 () in
  Mt.Tape.append_batch prefix events 5;
  Alcotest.(check int) "prefix length" 5 (Mt.Tape.length prefix)

let test_append_batch_validation_is_atomic () =
  let tape = Mt.Tape.create ~chunk_events:8 () in
  let good = Array.of_list (synthetic_events 5) in
  Mt.Tape.append_batch tape good 5;
  let expect_untouched name f =
    (match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s: expected Invalid_argument" name);
    (* Up-front validation: nothing before the bad index was recorded. *)
    Alcotest.(check int) (name ^ ": length untouched") 5 (Mt.Tape.length tape);
    Alcotest.(check bool) (name ^ ": events untouched") true
      (List.for_all2 Mt.Event.equal (Array.to_list good) (Mt.Tape.to_list tape))
  in
  let with_bad_event e =
    let events = Array.of_list (synthetic_events 12) in
    events.(7) <- e;
    fun () -> Mt.Tape.append_batch tape events 12
  in
  expect_untouched "negative address mid-batch"
    (with_bad_event (Mt.Event.read ~owner:1 ~addr:(-4) ~size:4));
  expect_untouched "zero size mid-batch"
    (with_bad_event { Mt.Event.owner = 1; write = false; addr = 0; size = 0 });
  expect_untouched "negative owner mid-batch"
    (with_bad_event (Mt.Event.read ~owner:(-1) ~addr:0 ~size:4));
  expect_untouched "count past end" (fun () -> Mt.Tape.append_batch tape good 6);
  expect_untouched "negative count" (fun () ->
      Mt.Tape.append_batch tape good (-1))

(* Chunk accounting is tracked incrementally (recomputing it per append
   used to make telemetry sampling quadratic); it must stay consistent
   with the chunked layout at every single length. *)
let test_chunk_accounting_incremental () =
  let tape = Mt.Tape.create ~chunk_events:8 () in
  Alcotest.(check int) "empty chunk count" 0 (Mt.Tape.chunk_count tape);
  Alcotest.(check int) "empty tape still holds one chunk"
    (8 * Mt.Tape.bytes_per_event)
    (Mt.Tape.allocated_bytes tape);
  List.iteri
    (fun i e ->
      Mt.Tape.append tape e;
      let n = i + 1 in
      let chunks = Dvf_util.Maths.cdiv n 8 in
      Alcotest.(check int) (Printf.sprintf "chunks at %d" n) chunks
        (Mt.Tape.chunk_count tape);
      Alcotest.(check int)
        (Printf.sprintf "bytes at %d" n)
        (chunks * 8 * Mt.Tape.bytes_per_event)
        (Mt.Tape.allocated_bytes tape))
    (synthetic_events 40)

(* --- fused multi-cache replay --- *)

let test_fused_equals_sequential () =
  let events = synthetic_events 3000 in
  let tape = Mt.Tape.create ~chunk_events:256 () in
  List.iter (Mt.Tape.append tape) events;
  let caches = Array.of_list (List.map C.Cache.create C.Config.verification_set) in
  Mt.Tape.replay_fused tape caches;
  Array.iter C.Cache.flush caches;
  List.iteri
    (fun i cfg ->
      let sequential = C.Cache.create cfg in
      Mt.Tape.replay tape sequential;
      C.Cache.flush sequential;
      check_snapshots
        (Printf.sprintf "fused = sequential on %s" cfg.C.Config.name)
        (snap sequential) (snap caches.(i)))
    C.Config.verification_set

(* --- capture -> replay bit-identity on every builtin workload --- *)

let capture_instance (instance : Core.Workload.instance) =
  let registry = Mt.Region.create () in
  let recorder = Mt.Recorder.buffered () in
  let tape = Mt.Tape.create () in
  ignore (Mt.Recorder.add_batch_sink recorder (Mt.Tape.batch_sink tape));
  instance.Core.Workload.trace registry recorder;
  Mt.Recorder.flush recorder;
  tape

let direct_instance (instance : Core.Workload.instance) cfg =
  let registry = Mt.Region.create () in
  let recorder = Mt.Recorder.buffered () in
  let cache = C.Cache.create cfg in
  ignore (Mt.Recorder.add_batch_sink recorder (Mt.Recorder.cache_batch_sink cache));
  instance.Core.Workload.trace registry recorder;
  Mt.Recorder.flush recorder;
  C.Cache.flush cache;
  snap cache

let test_workload_bit_identity () =
  List.iter
    (fun workload ->
      let instance = Core.Workloads.verification_instance workload in
      let tape = capture_instance instance in
      Alcotest.(check bool)
        (Printf.sprintf "%s captured something" instance.Core.Workload.workload)
        true
        (Mt.Tape.length tape > 0);
      List.iter
        (fun cfg ->
          let replayed = C.Cache.create cfg in
          Mt.Tape.replay tape replayed;
          C.Cache.flush replayed;
          check_snapshots
            (Printf.sprintf "%s on %s" instance.Core.Workload.workload
               cfg.C.Config.name)
            (direct_instance instance cfg)
            (snap replayed))
        C.Config.verification_set)
    (Core.Workloads.all ())

(* --- pre-partitioned shard views --- *)

let test_partition_views_bit_identity () =
  (* Every workload, shards 1/2/8: replaying each shard's view — in
     shard order into one shared replica set — must be bit-identical to
     the fused full scan. *)
  let caches () =
    Array.of_list (List.map C.Cache.create C.Config.verification_set)
  in
  List.iter
    (fun workload ->
      let instance = Core.Workloads.verification_instance workload in
      let name = instance.Core.Workload.workload in
      let tape = capture_instance instance in
      let fused = caches () in
      Mt.Tape.replay_fused tape fused;
      Array.iter C.Cache.flush fused;
      List.iter
        (fun shards ->
          let views = Mt.Tape.partition tape (caches ()) ~shards in
          Alcotest.(check int)
            (Printf.sprintf "%s -j%d: one view per shard" name shards)
            shards (Array.length views);
          let replicas = caches () in
          Array.iteri
            (fun shard view ->
              Alcotest.(check int) "view shard" shard (Mt.Tape.view_shard view);
              Alcotest.(check int) "view shards" shards
                (Mt.Tape.view_shards view);
              Alcotest.(check int)
                (Printf.sprintf
                   "%s -j%d shard %d: walked + skipped covers the tape" name
                   shards shard)
                (Mt.Tape.chunk_count tape)
                (Mt.Tape.view_chunks view + Mt.Tape.view_chunks_skipped view);
              Mt.Tape.replay_view view replicas)
            views;
          Array.iter C.Cache.flush replicas;
          Array.iteri
            (fun i f ->
              check_snapshots
                (Printf.sprintf "%s: partitioned -j%d = fused (cache %d)" name
                   shards i)
                (snap f)
                (snap replicas.(i)))
            fused)
        [ 1; 2; 8 ])
    (Core.Workloads.all ())

let test_partition_skips_disjoint_chunks () =
  (* 8-byte lines make the granule line equal the cache line, so a chunk
     touching only even granule lines provably holds nothing for the odd
     shard of two — the index must skip it, and skipping must not change
     a single statistic. *)
  let cfg = C.Config.make ~name:"strided" ~associativity:2 ~sets:64 ~line:8 in
  let chunk_events = 16 in
  let tape = Mt.Tape.create ~chunk_events () in
  for chunk = 0 to 3 do
    for i = 0 to chunk_events - 1 do
      let line = (2 * i) + (chunk land 1) in
      Mt.Tape.append tape (Mt.Event.read ~owner:1 ~addr:(line * 8) ~size:4)
    done
  done;
  Alcotest.(check int) "four chunks" 4 (Mt.Tape.chunk_count tape);
  let caches () = [| C.Cache.create cfg |] in
  let fused = caches () in
  Mt.Tape.replay_fused tape fused;
  Array.iter C.Cache.flush fused;
  (* The on-the-fly sharded walk skips the foreign chunks... *)
  let sharded = caches () in
  let skipped = ref 0 in
  for shard = 0 to 1 do
    Mt.Tape.replay_fused_sharded ~skipped tape sharded ~shards:2 ~shard
  done;
  Array.iter C.Cache.flush sharded;
  Alcotest.(check int) "each shard skips its two foreign chunks" 4 !skipped;
  check_snapshots "sharded with skipping = fused" (snap fused.(0))
    (snap sharded.(0));
  (* ...and the pre-partitioned views exclude exactly the same chunks. *)
  let views = Mt.Tape.partition tape (caches ()) ~shards:2 in
  let replicas = caches () in
  Array.iter
    (fun view ->
      Alcotest.(check int) "view walks its two chunks" 2
        (Mt.Tape.view_chunks view);
      Alcotest.(check int) "view skips the two foreign chunks" 2
        (Mt.Tape.view_chunks_skipped view);
      Alcotest.(check int) "view events" (2 * chunk_events)
        (Mt.Tape.view_events view);
      Mt.Tape.replay_view view replicas)
    views;
  Array.iter C.Cache.flush replicas;
  check_snapshots "views = fused" (snap fused.(0)) (snap replicas.(0))

let test_partition_validation () =
  let cfg = C.Config.make ~name:"v8" ~associativity:2 ~sets:64 ~line:8 in
  let tape = Mt.Tape.create ~chunk_events:16 () in
  List.iter (Mt.Tape.append tape) (synthetic_events 64);
  (match Mt.Tape.partition tape [| C.Cache.create cfg |] ~shards:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-power-of-two shard count must be rejected");
  (* A view replayed into replicas of a different geometry must refuse
     rather than silently drop or duplicate lines. *)
  let views = Mt.Tape.partition tape [| C.Cache.create cfg |] ~shards:2 in
  match
    Mt.Tape.replay_view views.(0)
      [| C.Cache.create C.Config.small_verification |]
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "mismatched replica geometry must be rejected"

(* --- Verify strategies agree --- *)

let test_verify_strategies_identical () =
  let workloads = [ Core.Workloads.vm; Core.Workloads.mc ] in
  let run strategy = Core.Verify.run_all ~jobs:1 ~strategy ~workloads () in
  let retrace = run Core.Verify.Retrace in
  let replay = run Core.Verify.Replay in
  let fused = run Core.Verify.Fused in
  Alcotest.(check bool) "replay = retrace" true (replay = retrace);
  Alcotest.(check bool) "fused = retrace" true (fused = retrace);
  let parallel =
    Core.Verify.run_all ~jobs:4 ~strategy:Core.Verify.Replay ~workloads ()
  in
  Alcotest.(check bool) "parallel replay = serial" true (parallel = replay);
  (* The partitioned sharded engine, at widths below and above the
     smallest verification cache's set count (the central clamp), still
     reproduces the same rows. *)
  List.iter
    (fun shards ->
      let sharded =
        Core.Verify.run_all ~jobs:4 ~strategy:Core.Verify.Sharded ~shards
          ~workloads ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "sharded (%d shards) = retrace" shards)
        true (sharded = retrace))
    [ 2; 8; 256 ]

(* --- simulated cache sweep --- *)

let test_sweep_simulate () =
  let instance = Core.Workloads.verification_instance Core.Workloads.vm in
  let capacities = [ 8192; 65536 ] in
  let rows =
    Core.Experiments.cache_sweep ~jobs:1 ~capacities ~simulate:true instance
  in
  let parallel =
    Core.Experiments.cache_sweep ~jobs:4 ~capacities ~simulate:true instance
  in
  Alcotest.(check bool) "sweep -j4 = -j1" true (rows = parallel);
  List.iter
    (fun (r : Core.Experiments.sweep_row) ->
      match r.Core.Experiments.sim_n_ha with
      | None -> Alcotest.failf "missing sim_n_ha at %d" r.Core.Experiments.capacity
      | Some sim ->
          (* The fused sweep replay must agree exactly with tracing the
             workload directly into the same geometry. *)
          let direct = direct_instance instance r.Core.Experiments.sweep_cache in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "sim_n_ha at %d" r.Core.Experiments.capacity)
            (float_of_int (C.Stats.Snapshot.total_main_memory direct))
            sim)
    rows;
  (* Without [simulate] the column stays empty. *)
  let plain = Core.Experiments.cache_sweep ~jobs:1 ~capacities instance in
  Alcotest.(check bool) "no sim column" true
    (List.for_all
       (fun (r : Core.Experiments.sweep_row) ->
         r.Core.Experiments.sim_n_ha = None)
       plain)

let suite =
  [
    Alcotest.test_case "pack/unpack roundtrip" `Quick test_pack_roundtrip;
    Alcotest.test_case "pack validation" `Quick test_pack_validation;
    Alcotest.test_case "access_batch = access" `Quick
      test_access_batch_equivalence;
    Alcotest.test_case "access_batch bad range" `Quick
      test_access_batch_bad_range;
    Alcotest.test_case "empty tape" `Quick test_empty_tape;
    Alcotest.test_case "exactly one chunk" `Quick test_exactly_one_chunk;
    Alcotest.test_case "capacity + 1" `Quick test_capacity_plus_one;
    Alcotest.test_case "chunking invariance" `Quick test_chunking_invariance;
    Alcotest.test_case "append validation" `Quick test_append_validation;
    Alcotest.test_case "append_batch = append" `Quick
      test_append_batch_equals_append;
    Alcotest.test_case "append_batch validation is atomic" `Quick
      test_append_batch_validation_is_atomic;
    Alcotest.test_case "chunk accounting incremental" `Quick
      test_chunk_accounting_incremental;
    Alcotest.test_case "fused = sequential" `Quick test_fused_equals_sequential;
    Alcotest.test_case "capture/replay bit-identity (all workloads)" `Quick
      test_workload_bit_identity;
    Alcotest.test_case "partitioned views bit-identity (all workloads)" `Quick
      test_partition_views_bit_identity;
    Alcotest.test_case "partition skips disjoint chunks" `Quick
      test_partition_skips_disjoint_chunks;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
    Alcotest.test_case "verify strategies identical" `Quick
      test_verify_strategies_identical;
    Alcotest.test_case "simulated sweep" `Quick test_sweep_simulate;
  ]
