module M = Dvf_util.Maths

let checkf ?(eps = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.12g got %.12g" msg expected actual)
    true
    (M.approx_equal ~eps expected actual)

let test_lgamma_small_integers () =
  (* Gamma(n) = (n-1)! *)
  checkf "lgamma 1" 0.0 (M.lgamma 1.0);
  checkf "lgamma 2" 0.0 (M.lgamma 2.0);
  checkf "lgamma 5" (log 24.0) (M.lgamma 5.0);
  checkf "lgamma 11" (log 3628800.0) (M.lgamma 11.0)

let test_lgamma_half () =
  (* Gamma(1/2) = sqrt(pi) *)
  checkf "lgamma 0.5" (0.5 *. log M.pi) (M.lgamma 0.5);
  (* Gamma(3/2) = sqrt(pi)/2 *)
  checkf "lgamma 1.5" (log (sqrt M.pi /. 2.0)) (M.lgamma 1.5)

let test_log_factorial_matches_lgamma () =
  for n = 0 to 50 do
    checkf
      (Printf.sprintf "log %d!" n)
      (M.lgamma (float_of_int n +. 1.0))
      (M.log_factorial n)
  done;
  (* Beyond the memo table. *)
  checkf "log 2000!" (M.lgamma 2001.0) (M.log_factorial 2000)

let test_choose_exact_values () =
  checkf "C(0,0)" 1.0 (M.choose 0 0);
  checkf "C(5,2)" 10.0 (M.choose 5 2);
  checkf "C(10,5)" 252.0 (M.choose 10 5);
  checkf "C(52,5)" 2598960.0 (M.choose 52 5);
  Alcotest.(check (float 0.0)) "C(5,7)" 0.0 (M.choose 5 7);
  Alcotest.(check (float 0.0)) "C(5,-1)" 0.0 (M.choose 5 (-1))

let test_choose_symmetry () =
  for n = 1 to 40 do
    for k = 0 to n do
      checkf ~eps:1e-10
        (Printf.sprintf "C(%d,%d) symmetric" n k)
        (M.choose n k)
        (M.choose n (n - k))
    done
  done

let test_choose_pascal () =
  (* C(n,k) = C(n-1,k-1) + C(n-1,k), exercised across the exact/log-space
     implementation boundary. *)
  List.iter
    (fun (n, k) ->
      checkf ~eps:1e-9
        (Printf.sprintf "Pascal C(%d,%d)" n k)
        (M.choose (n - 1) (k - 1) +. M.choose (n - 1) k)
        (M.choose n k))
    [ (10, 3); (100, 50); (350, 40); (1000, 500) ]

let test_log_choose_large () =
  (* C(1e6, 3) = 1e6 * (1e6 - 1) * (1e6 - 2) / 6 *)
  let n = 1_000_000 in
  let expected =
    log (float_of_int n) +. log (float_of_int (n - 1))
    +. log (float_of_int (n - 2)) -. log 6.0
  in
  checkf ~eps:1e-9 "log C(1e6,3)" expected (M.log_choose n 3)

let test_binomial_pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let total = ref 0.0 in
      for k = 0 to n do
        total := !total +. M.binomial_pmf ~n ~p k
      done;
      checkf ~eps:1e-9 (Printf.sprintf "binomial(%d,%g) sums" n p) 1.0 !total)
    [ (10, 0.5); (100, 0.01); (64, 1.0 /. 64.0); (1, 0.3); (0, 0.7) ]

let test_binomial_pmf_known () =
  checkf "Bin(4,0.5) at 2" 0.375 (M.binomial_pmf ~n:4 ~p:0.5 2);
  checkf "Bin(3,0.25) at 0" (0.75 ** 3.0) (M.binomial_pmf ~n:3 ~p:0.25 0);
  checkf "Bin(3,1.0) at 3" 1.0 (M.binomial_pmf ~n:3 ~p:1.0 3);
  checkf "Bin(3,0.0) at 0" 1.0 (M.binomial_pmf ~n:3 ~p:0.0 0)

let test_binomial_sf () =
  (* P[Bin(4, 0.5) >= 2] = (6 + 4 + 1) / 16 *)
  checkf "sf" (11.0 /. 16.0) (M.binomial_sf ~n:4 ~p:0.5 2);
  checkf "sf 0" 1.0 (M.binomial_sf ~n:4 ~p:0.5 0);
  Alcotest.(check (float 0.0)) "sf beyond n" 0.0 (M.binomial_sf ~n:4 ~p:0.5 5)

let test_hypergeom_pmf_sums_to_one () =
  List.iter
    (fun (total, marked, drawn) ->
      let acc = ref 0.0 in
      for k = 0 to drawn do
        acc := !acc +. M.hypergeom_pmf ~total ~marked ~drawn k
      done;
      checkf ~eps:1e-9
        (Printf.sprintf "hypergeom(%d,%d,%d) sums" total marked drawn)
        1.0 !acc)
    [ (50, 10, 5); (100, 100, 10); (20, 0, 5); (7, 3, 7); (1000, 17, 40) ]

let test_hypergeom_known () =
  (* Drawing 2 from {2 marked, 2 unmarked}: P[both marked] = 1/6. *)
  checkf "both marked" (1.0 /. 6.0) (M.hypergeom_pmf ~total:4 ~marked:2 ~drawn:2 2);
  checkf "one marked" (4.0 /. 6.0) (M.hypergeom_pmf ~total:4 ~marked:2 ~drawn:2 1)

let test_hypergeom_mean_matches_pmf () =
  List.iter
    (fun (total, marked, drawn) ->
      let acc = ref 0.0 in
      for k = 0 to drawn do
        acc := !acc +. (float_of_int k *. M.hypergeom_pmf ~total ~marked ~drawn k)
      done;
      checkf ~eps:1e-9 "mean" (M.hypergeom_mean ~total ~marked ~drawn) !acc)
    [ (50, 10, 5); (100, 30, 50); (12, 12, 4) ]

let test_cdiv () =
  Alcotest.(check int) "7/2" 4 (M.cdiv 7 2);
  Alcotest.(check int) "8/2" 4 (M.cdiv 8 2);
  Alcotest.(check int) "0/5" 0 (M.cdiv 0 5);
  Alcotest.(check int) "1/5" 1 (M.cdiv 1 5);
  Alcotest.check_raises "negative" (Invalid_argument "Maths.cdiv: negative dividend")
    (fun () -> ignore (M.cdiv (-1) 5))

let test_kahan_sum () =
  (* Sum that naive accumulation gets wrong: 1 + 1e-16 * 10^8 *)
  let xs = Array.make 10_000_001 1e-9 in
  xs.(0) <- 1.0;
  checkf ~eps:1e-12 "kahan" (1.0 +. 0.01) (M.sum xs)

let test_stats_helpers () =
  checkf "mean" 2.0 (M.mean [| 1.0; 2.0; 3.0 |]);
  checkf "geomean" 2.0 (M.geomean [| 1.0; 2.0; 4.0 |]);
  checkf "rel_error" 0.5 (M.rel_error ~expected:2.0 ~actual:3.0);
  checkf "rel_error zero" 3.0 (M.rel_error ~expected:0.0 ~actual:3.0)

let test_clamp () =
  checkf "clamp mid" 0.5 (M.clamp ~lo:0.0 ~hi:1.0 0.5);
  checkf "clamp low" 0.0 (M.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  checkf "clamp high" 1.0 (M.clamp ~lo:0.0 ~hi:1.0 42.0);
  Alcotest.(check int) "clampi" 7 (M.clampi ~lo:0 ~hi:7 9)

(* Property tests. *)

let prop_binomial_normalizes =
  QCheck.Test.make ~count:200 ~name:"binomial pmf normalizes"
    QCheck.(pair (int_range 0 200) (float_range 0.0 1.0))
    (fun (n, p) ->
      let acc = ref 0.0 in
      for k = 0 to n do
        acc := !acc +. M.binomial_pmf ~n ~p k
      done;
      M.approx_equal ~eps:1e-7 1.0 !acc)

let prop_hypergeom_normalizes =
  QCheck.Test.make ~count:200 ~name:"hypergeom pmf normalizes"
    QCheck.(triple (int_range 1 300) (int_range 0 300) (int_range 0 300))
    (fun (total, marked, drawn) ->
      let marked = min marked total and drawn = min drawn total in
      let acc = ref 0.0 in
      for k = 0 to drawn do
        acc := !acc +. M.hypergeom_pmf ~total ~marked ~drawn k
      done;
      M.approx_equal ~eps:1e-7 1.0 !acc)

let prop_choose_monotone_in_n =
  QCheck.Test.make ~count:200 ~name:"C(n+1,k) >= C(n,k)"
    QCheck.(pair (int_range 1 400) (int_range 0 400))
    (fun (n, k) ->
      let k = min k n in
      M.choose (n + 1) k >= M.choose n k -. 1e-9)


let test_wilson_interval () =
  (* Symmetric case against hand-computed values. *)
  let lo, hi = M.wilson_interval ~successes:5 ~trials:10 () in
  Alcotest.(check (float 1e-3)) "5/10 lo" 0.2366 lo;
  Alcotest.(check (float 1e-3)) "5/10 hi" 0.7634 hi;
  (* Zero successes: lower bound exactly 0, upper still informative. *)
  let lo0, hi0 = M.wilson_interval ~successes:0 ~trials:10 () in
  Alcotest.(check (float 1e-12)) "0/10 lo" 0.0 lo0;
  Alcotest.(check bool) "0/10 hi in (0,0.35)" true (hi0 > 0.0 && hi0 < 0.35);
  (* All successes mirrors it. *)
  let lo1, hi1 = M.wilson_interval ~successes:10 ~trials:10 () in
  Alcotest.(check (float 1e-12)) "10/10 hi" 1.0 hi1;
  Alcotest.(check (float 1e-9)) "mirror" (1.0 -. hi0) lo1;
  (* z = 0 collapses to the point estimate. *)
  let loz, hiz = M.wilson_interval ~z:0.0 ~successes:3 ~trials:12 () in
  Alcotest.(check (float 1e-12)) "z=0 lo" 0.25 loz;
  Alcotest.(check (float 1e-12)) "z=0 hi" 0.25 hiz;
  (* Empty campaign (a routine case for time-binned injection): the
     vacuous interval, not an exception. *)
  let loe, hie = M.wilson_interval ~successes:0 ~trials:0 () in
  Alcotest.(check (float 1e-12)) "0 trials lo" 0.0 loe;
  Alcotest.(check (float 1e-12)) "0 trials hi" 1.0 hie;
  Alcotest.check_raises "negative trials"
    (Invalid_argument "Maths.wilson_interval: negative trials") (fun () ->
      ignore (M.wilson_interval ~successes:0 ~trials:(-1) ()));
  Alcotest.check_raises "successes without trials"
    (Invalid_argument "Maths.wilson_interval: successes outside 0..trials")
    (fun () -> ignore (M.wilson_interval ~successes:1 ~trials:0 ()))

let test_spearman () =
  let check_rho name expected xs ys =
    Alcotest.(check (float 1e-9)) name expected (M.spearman xs ys)
  in
  check_rho "monotone" 1.0 [| 1.0; 2.0; 5.0 |] [| 10.0; 20.0; 21.0 |];
  check_rho "reversed" (-1.0) [| 1.0; 2.0; 3.0 |] [| 3.0; 1.0; 0.5 |];
  (* Ties get fractional ranks: x = [1; 2.5; 2.5; 4] vs y = [1;2;3;4]. *)
  let rho = M.spearman [| 1.0; 2.0; 2.0; 3.0 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "ties: strong but imperfect" true
    (rho > 0.9 && rho < 1.0);
  (* Undefined cases: [spearman_opt] reports them, [spearman] collapses
     them to 0 — and never NaN or an exception. *)
  Alcotest.(check bool) "constant input undefined" true
    (M.spearman_opt [| 1.0; 1.0; 1.0 |] [| 1.0; 2.0; 3.0 |] = None);
  check_rho "constant input collapses to 0" 0.0 [| 1.0; 1.0; 1.0 |]
    [| 1.0; 2.0; 3.0 |];
  Alcotest.(check bool) "short input undefined" true
    (M.spearman_opt [| 1.0 |] [| 2.0 |] = None);
  check_rho "short input collapses to 0" 0.0 [| 1.0 |] [| 2.0 |];
  Alcotest.(check bool) "empty input undefined" true
    (M.spearman_opt [||] [||] = None);
  (* Defined results are clamped to [-1, 1] even with rounding noise. *)
  let xs = Array.init 64 (fun i -> float_of_int i *. 0.1)
  and ys = Array.init 64 (fun i -> float_of_int i *. 0.3) in
  Alcotest.(check (float 1e-12)) "clamped at 1" 1.0 (M.spearman xs ys);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Maths.spearman: length mismatch") (fun () ->
      ignore (M.spearman [| 1.0 |] [| 1.0; 2.0 |]))

let suite =
  [
    Alcotest.test_case "lgamma small integers" `Quick test_lgamma_small_integers;
    Alcotest.test_case "lgamma halves" `Quick test_lgamma_half;
    Alcotest.test_case "log_factorial vs lgamma" `Quick
      test_log_factorial_matches_lgamma;
    Alcotest.test_case "choose exact values" `Quick test_choose_exact_values;
    Alcotest.test_case "choose symmetry" `Quick test_choose_symmetry;
    Alcotest.test_case "choose Pascal rule" `Quick test_choose_pascal;
    Alcotest.test_case "log_choose large" `Quick test_log_choose_large;
    Alcotest.test_case "binomial sums to one" `Quick
      test_binomial_pmf_sums_to_one;
    Alcotest.test_case "binomial known values" `Quick test_binomial_pmf_known;
    Alcotest.test_case "binomial survival" `Quick test_binomial_sf;
    Alcotest.test_case "hypergeom sums to one" `Quick
      test_hypergeom_pmf_sums_to_one;
    Alcotest.test_case "hypergeom known values" `Quick test_hypergeom_known;
    Alcotest.test_case "hypergeom mean" `Quick test_hypergeom_mean_matches_pmf;
    Alcotest.test_case "cdiv" `Quick test_cdiv;
    Alcotest.test_case "kahan summation" `Quick test_kahan_sum;
    Alcotest.test_case "stats helpers" `Quick test_stats_helpers;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
    Alcotest.test_case "spearman" `Quick test_spearman;
    QCheck_alcotest.to_alcotest prop_binomial_normalizes;
    QCheck_alcotest.to_alcotest prop_hypergeom_normalizes;
    QCheck_alcotest.to_alcotest prop_choose_monotone_in_n;
  ]
