(* End-to-end check of the VM kernel: the analytical streaming model versus
   the cache simulator driven by the kernel's real trace (the Fig. 4
   methodology, on the smallest kernel). *)

let simulate_vm cache_config p =
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let cache = Cachesim.Cache.create cache_config in
  ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
  let result = Kernels.Vm.run registry recorder p in
  Cachesim.Cache.flush cache;
  (registry, Cachesim.Cache.stats cache, result)

let model_vs_sim_structure cache_config p name =
  let registry, stats, _ = simulate_vm cache_config p in
  let region = Memtrace.Region.lookup registry name in
  let measured =
    Cachesim.Stats.main_memory_accesses stats region.Memtrace.Region.id
  in
  let spec = Kernels.Vm.spec p in
  let modeled =
    List.assoc name
      (Access_patterns.App_spec.main_memory_accesses ~cache:cache_config spec)
  in
  (float_of_int measured, modeled)

let check_within pct name (measured, modeled) =
  let err = Dvf_util.Maths.rel_error ~expected:measured ~actual:modeled in
  Alcotest.(check bool)
    (Printf.sprintf "%s: model %.1f vs sim %.1f (err %.1f%%)" name modeled
       measured (100.0 *. err))
    true (err <= pct)

let test_verification_accuracy () =
  let p = Kernels.Vm.verification in
  List.iter
    (fun cfg ->
      List.iter
        (fun name ->
          check_within 0.15 name (model_vs_sim_structure cfg p name))
        [ "A"; "B"; "C" ])
    Cachesim.Config.[ small_verification; large_verification ]

let test_checksum_correct () =
  (* The kernel must compute the right product regardless of tracing. *)
  let p = Kernels.Vm.make_params ~stride_a:2 ~stride_b:1 100 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let r = Kernels.Vm.run registry recorder p in
  let expected = ref 0.0 in
  for i = 0 to 99 do
    let a = float_of_int ((i * 2 mod 97) + 1) in
    let b = float_of_int ((i mod 89) + 1) /. 8.0 in
    expected := !expected +. (a *. b)
  done;
  Alcotest.(check (float 1e-9)) "checksum" !expected r.Kernels.Vm.checksum

let test_stride_increases_accesses () =
  (* Fig. 5(a)'s driver: larger stride on A means more main-memory
     accesses than B and C at equal trip count. *)
  let p = Kernels.Vm.profiling in
  let cache = Cachesim.Config.profiling_4mb in
  let nha = Access_patterns.App_spec.main_memory_accesses ~cache (Kernels.Vm.spec p) in
  let a = List.assoc "A" nha and b = List.assoc "B" nha in
  Alcotest.(check bool) "A > B" true (a > b)

let test_trace_event_count () =
  (* 4 traced references per loop iteration (read A, B, C; write C). *)
  let p = Kernels.Vm.make_params 50 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let _ = Kernels.Vm.run registry recorder p in
  Alcotest.(check int) "events" (4 * 50) (Memtrace.Recorder.events_emitted recorder)

let suite =
  [
    Alcotest.test_case "verification accuracy <= 15%" `Quick
      test_verification_accuracy;
    Alcotest.test_case "checksum correct" `Quick test_checksum_correct;
    Alcotest.test_case "stride increases accesses" `Quick
      test_stride_increases_accesses;
    Alcotest.test_case "trace event count" `Quick test_trace_event_count;
  ]
