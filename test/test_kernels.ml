(* Correctness and model-vs-simulation tests for NB, MG, FT, MC — the
   remaining four kernels of Table II (VM and CG have their own suites). *)

module Nb = Kernels.Barnes_hut
module Mg = Kernels.Multigrid
module Ft = Kernels.Fft
module Mc = Kernels.Monte_carlo

(* Shared harness: run a traced kernel into a cache, compare per-structure
   simulated main-memory accesses against the analytical spec. *)
let run_into_cache cfg run =
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let cache = Cachesim.Cache.create cfg in
  ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
  let result = run registry recorder in
  Cachesim.Cache.flush cache;
  (registry, Cachesim.Cache.stats cache, result)

let compare_structures ~msg ~tolerance cfg registry stats spec names =
  let modeled = Access_patterns.App_spec.main_memory_accesses ~cache:cfg spec in
  let total_sim = ref 0.0 and total_model = ref 0.0 in
  List.iter
    (fun name ->
      let region = Memtrace.Region.lookup registry name in
      let sim =
        float_of_int
          (Cachesim.Stats.main_memory_accesses stats region.Memtrace.Region.id)
      in
      total_sim := !total_sim +. sim;
      total_model := !total_model +. List.assoc name modeled)
    names;
  let err =
    Dvf_util.Maths.rel_error ~expected:!total_sim ~actual:!total_model
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: model %.0f vs sim %.0f (err %.1f%%)" msg !total_model
       !total_sim (100.0 *. err))
    true (err <= tolerance)

(* --- Barnes-Hut --- *)

let test_nb_forces_match_direct () =
  let p = Nb.make_params ~theta:0.2 200 in
  let r = Nb.run_untraced p in
  let exact = Nb.direct_forces p in
  let worst = ref 0.0 in
  Array.iteri
    (fun i (fx, fy) ->
      let ex, ey = exact.(i) in
      let mag = sqrt ((ex *. ex) +. (ey *. ey)) in
      let d = sqrt (((fx -. ex) ** 2.0) +. ((fy -. ey) ** 2.0)) in
      if mag > 1.0 then worst := Float.max !worst (d /. mag))
    r.Nb.forces;
  Alcotest.(check bool)
    (Printf.sprintf "worst relative force error %.3f" !worst)
    true (!worst < 0.05)

let test_nb_theta_controls_visits () =
  let visits theta =
    (Nb.run_untraced (Nb.make_params ~theta 500)).Nb.avg_visits
  in
  let tight = visits 0.2 and loose = visits 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "visits(0.2)=%.0f > visits(1.0)=%.0f" tight loose)
    true (tight > loose)

let test_nb_traced_matches_untraced () =
  let p = Nb.verification in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let traced = Nb.run registry recorder p in
  let untraced = Nb.run_untraced p in
  Alcotest.(check int) "same node count" untraced.Nb.nodes traced.Nb.nodes;
  Alcotest.(check (float 1e-9)) "same visit count" untraced.Nb.avg_visits
    traced.Nb.avg_visits

let test_nb_model_vs_simulation () =
  let p = Nb.verification in
  List.iter
    (fun cfg ->
      let registry, stats, result = run_into_cache cfg (fun reg rc -> Nb.run reg rc p) in
      let spec = Nb.spec ~result p in
      compare_structures
        ~msg:("NB " ^ cfg.Cachesim.Config.name)
        ~tolerance:0.15 cfg registry stats spec [ "T"; "P" ])
    Cachesim.Config.[ small_verification; large_verification ]

(* --- Multigrid --- *)

let test_mg_vcycle_reduces_residual () =
  let p = Mg.make_params ~v_cycles:4 16 in
  let r = Mg.run_untraced p in
  Alcotest.(check bool)
    (Printf.sprintf "residual %.3e -> %.3e" r.Mg.initial_residual
       r.Mg.final_residual)
    true
    (r.Mg.final_residual < 0.1 *. r.Mg.initial_residual)

let test_mg_level_layout () =
  let p = Mg.make_params 32 in
  Alcotest.(check int) "finest" 32 (Mg.level_size p 0);
  Alcotest.(check int) "next" 16 (Mg.level_size p 1);
  Alcotest.(check int) "offset 1" (32 * 32 * 32) (Mg.level_offset p 1);
  Alcotest.(check int) "hierarchy"
    ((32 * 32 * 32) + (16 * 16 * 16) + (8 * 8 * 8) + (4 * 4 * 4))
    (Mg.hierarchy_elements p)

let test_mg_spec_ref_counts_match_trace () =
  (* The template generator and the traced kernel execute the same loops:
     the spec's R-template length must equal the number of traced R
     events. *)
  let p = Mg.make_params ~v_cycles:1 16 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let sink, counted = Memtrace.Recorder.buffer_sink () in
  ignore (Memtrace.Recorder.add_sink recorder sink);
  let _ = Mg.run registry recorder p in
  let r_owner = (Memtrace.Region.lookup registry "R").Memtrace.Region.id in
  let traced_r =
    List.length (List.filter (fun e -> e.Memtrace.Event.owner = r_owner) (counted ()))
  in
  let spec = Mg.spec p in
  let r_structure =
    List.find
      (fun s -> s.Access_patterns.App_spec.name = "R")
      spec.Access_patterns.App_spec.structures
  in
  let refs =
    match r_structure.Access_patterns.App_spec.pattern with
    | Some (Access_patterns.Pattern.Templated t) ->
        Array.length t.Access_patterns.Template.refs
    | _ -> Alcotest.fail "R should be templated"
  in
  Alcotest.(check int) "R refs = traced R events" traced_r refs

let test_mg_model_vs_simulation () =
  let p = Mg.make_params ~v_cycles:1 32 in
  List.iter
    (fun cfg ->
      let registry, stats, _ = run_into_cache cfg (fun reg rc -> Mg.run reg rc p) in
      compare_structures
        ~msg:("MG " ^ cfg.Cachesim.Config.name)
        ~tolerance:0.15 cfg registry stats (Mg.spec p) [ "R"; "U"; "V" ])
    Cachesim.Config.[ small_verification; large_verification ]

(* --- FFT --- *)

let test_fft_matches_naive_dft () =
  let n = 64 in
  let rng = Dvf_util.Rng.create 5 in
  let re = Array.init n (fun _ -> Dvf_util.Rng.float rng 2.0 -. 1.0) in
  let im = Array.init n (fun _ -> Dvf_util.Rng.float rng 2.0 -. 1.0) in
  let expected_re, expected_im = Ft.naive_dft re im in
  let work = Array.init n (fun i -> { Complex.re = re.(i); im = im.(i) }) in
  Ft.fft_in_place work;
  let worst = ref 0.0 in
  for k = 0 to n - 1 do
    let d_re = work.(k).Complex.re -. expected_re.(k) in
    let d_im = work.(k).Complex.im -. expected_im.(k) in
    worst := Float.max !worst (sqrt ((d_re *. d_re) +. (d_im *. d_im)))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max |FFT - DFT| = %.2e" !worst)
    true (!worst < 1e-9)

let test_fft_roundtrip_large () =
  let result = Ft.run_untraced (Ft.make_params 4096) in
  Alcotest.(check bool)
    (Printf.sprintf "roundtrip %.2e" result.Ft.max_roundtrip_error)
    true
    (result.Ft.max_roundtrip_error < 1e-8)

let test_fft_model_vs_simulation () =
  let p = Ft.make_params 4096 (* 64 KB signal: thrashes small, fits large *) in
  List.iter
    (fun cfg ->
      let registry, stats, _ = run_into_cache cfg (fun reg rc -> Ft.run reg rc p) in
      compare_structures
        ~msg:("FT " ^ cfg.Cachesim.Config.name)
        ~tolerance:0.15 cfg registry stats (Ft.spec p) [ "X" ])
    Cachesim.Config.[ small_verification; large_verification ]

(* --- Monte Carlo --- *)

let test_mc_deterministic () =
  let p = Mc.verification in
  let a = Mc.run_untraced p and b = Mc.run_untraced p in
  Alcotest.(check (float 0.0)) "same total" a.Mc.total_xs b.Mc.total_xs

let test_mc_total_plausible () =
  (* Each lookup adds nuclides values each in roughly [0, 3]. *)
  let p = Mc.verification in
  let r = Mc.run_untraced p in
  let per_lookup = r.Mc.total_xs /. float_of_int p.Mc.lookups in
  let expected_max = 3.0 *. float_of_int p.Mc.nuclides in
  Alcotest.(check bool)
    (Printf.sprintf "per-lookup %.1f in (0, %.0f)" per_lookup expected_max)
    true
    (per_lookup > 0.0 && per_lookup < expected_max)

let test_mc_traced_matches_untraced () =
  let p = Mc.make_params 500 in
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let traced = Mc.run registry recorder p in
  let untraced = Mc.run_untraced p in
  Alcotest.(check (float 1e-9)) "same accumulation" untraced.Mc.total_xs
    traced.Mc.total_xs

let test_mc_model_vs_simulation () =
  let p = Mc.verification in
  List.iter
    (fun cfg ->
      let registry, stats, _ = run_into_cache cfg (fun reg rc -> Mc.run reg rc p) in
      compare_structures
        ~msg:("MC " ^ cfg.Cachesim.Config.name)
        ~tolerance:0.15 cfg registry stats (Mc.spec p) [ "G"; "E" ])
    Cachesim.Config.[ small_verification; large_verification ]

let suite =
  [
    Alcotest.test_case "NB forces match direct sum" `Slow
      test_nb_forces_match_direct;
    Alcotest.test_case "NB theta controls visits" `Quick
      test_nb_theta_controls_visits;
    Alcotest.test_case "NB traced = untraced" `Quick
      test_nb_traced_matches_untraced;
    Alcotest.test_case "NB model vs simulation" `Slow test_nb_model_vs_simulation;
    Alcotest.test_case "MG V-cycle reduces residual" `Quick
      test_mg_vcycle_reduces_residual;
    Alcotest.test_case "MG level layout" `Quick test_mg_level_layout;
    Alcotest.test_case "MG spec refs = traced events" `Quick
      test_mg_spec_ref_counts_match_trace;
    Alcotest.test_case "MG model vs simulation" `Slow test_mg_model_vs_simulation;
    Alcotest.test_case "FT matches naive DFT" `Quick test_fft_matches_naive_dft;
    Alcotest.test_case "FT roundtrip large" `Quick test_fft_roundtrip_large;
    Alcotest.test_case "FT model vs simulation" `Slow test_fft_model_vs_simulation;
    Alcotest.test_case "MC deterministic" `Quick test_mc_deterministic;
    Alcotest.test_case "MC total plausible" `Quick test_mc_total_plausible;
    Alcotest.test_case "MC traced = untraced" `Quick
      test_mc_traced_matches_untraced;
    Alcotest.test_case "MC model vs simulation" `Slow test_mc_model_vs_simulation;
  ]
