(* dvf — command-line front end to the DVF library.

   Subcommands:
     profile     evaluate an Aspen model file and print per-structure DVF
     verify      Fig. 4 model-vs-simulation verification
     tables      print the paper's static tables
     fig5/6/7    reproduce the evaluation figures
     parse       syntax-check and pretty-print a model file
     models      list the builtin models and machines
     components  memory-DVF vs cache-DVF per structure
     protect     selective-protection coverage curves
     inject      parallel fault-injection campaigns vs the analytical DVF
     windows     vulnerability-vs-time: windowed residency vs flip-time SDC
     serve       long-lived line-JSON query daemon over warm trace tapes
     query       one-shot client for serve's protocol (or in-process)
     tape        inspect persistent .dvftape trace files (tape info)

   Shared arguments (-j/--jobs, --seed, --csv, -m/--machine, --metrics,
   --tape-store) are declared once in Cli_common and composed per
   subcommand. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle_aspen_errors f =
  try f () with
  | e -> (
      match Aspen.Errors.to_string e with
      | Some message ->
          Printf.eprintf "error: %s\n" message;
          exit 1
      | None -> raise e)

let load_models = function
  | None -> Aspen.Builtin_models.load ()
  | Some path -> Aspen.Parser.parse_file (read_file path)

(* --- profile --- *)

let profile_cmd =
  let app_names =
    let doc = "Apps to profile (default: every app in the file)." in
    Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc)
  in
  let run file machine_name overrides app_names =
    handle_aspen_errors (fun () ->
        let file = load_models file in
        let machine = Aspen.Compile.find_machine file machine_name in
        let apps =
          match app_names with
          | [] -> Aspen.Compile.apps ~overrides file
          | names ->
              List.map (Aspen.Compile.find_app ~overrides file) names
        in
        Printf.printf "machine %s: %s, FIT=%g\n\n"
          machine.Aspen.Compile.machine_name
          (Format.asprintf "%a" Cachesim.Config.pp machine.Aspen.Compile.cache)
          machine.Aspen.Compile.fit;
        List.iter
          (fun app ->
            let d = Aspen.Compile.dvf machine app in
            Format.printf "%a@.@." Core.Dvf.pp_app d)
          apps)
  in
  let term =
    Term.(
      const run $ Cli_common.model_file $ Cli_common.machine_name
      $ Cli_common.param_overrides $ app_names)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Evaluate Aspen models and print per-structure DVF")
    term

(* --- verify --- *)

let verify_cmd =
  let strategy =
    let doc =
      "Simulation strategy: $(b,replay) (default) captures each workload's \
       trace once and replays the tape per cache; $(b,fused) drives all \
       caches from one chunk walk; $(b,sharded) partitions the fused walk \
       by cache-set index into independent per-shard tasks (see \
       $(b,--shards)); $(b,retrace) re-executes the kernel per cache (the \
       historical baseline).  All strategies print identical rows."
    in
    Arg.(
      value
      & opt (enum Core.Verify.strategies) Core.Verify.Replay
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let time_weighted =
    let doc =
      "Report time-weighted residency per structure instead of the \
       Fig. 4 traffic comparison: clean/dirty line-time integrals over \
       the tape's logical clock, windowed into $(b,--bins) slices, and \
       the time-weighted DVF.  Requires a tape (any strategy but \
       retrace); honours $(b,--levels)."
    in
    Arg.(value & flag & info [ "time-weighted" ] ~doc)
  in
  let run jobs metrics strategy levels shards tape_store time_weighted bins
      workloads =
    let jobs = Cli_common.check_jobs jobs in
    let levels = Cli_common.check_levels levels in
    let shards = Cli_common.check_shards shards in
    let bins = Cli_common.check_bins bins in
    if tape_store <> None && strategy = Core.Verify.Retrace then begin
      Printf.eprintf
        "error: --tape-store cannot help --strategy retrace (it never \
         captures a tape); use replay, fused or sharded\n";
      exit 1
    end;
    Cli_common.with_metrics metrics (fun telemetry ->
        let store = Cli_common.open_tape_store ~telemetry tape_store in
        if time_weighted then begin
          if strategy = Core.Verify.Retrace then begin
            Printf.eprintf
              "error: --strategy retrace has no tape and therefore no \
               logical clock; --time-weighted needs replay, fused or \
               sharded\n";
            exit 1
          end;
          let rows =
            Core.Verify.run_all_timed ~jobs ~telemetry ~strategy ?shards
              ?store ~workloads ~levels ~bins ()
          in
          Dvf_util.Table.print (Core.Verify.to_time_table rows)
        end
        else if levels = 1 then
          let rows =
            Core.Verify.run_all ~jobs ~telemetry ~strategy ?shards ?store
              ~workloads ()
          in
          Dvf_util.Table.print (Core.Verify.to_table rows)
        else begin
          if strategy = Core.Verify.Retrace then begin
            Printf.eprintf
              "error: --strategy retrace cannot drive a multi-level \
               hierarchy; use replay, fused or sharded\n";
            exit 1
          end;
          let rows =
            Core.Verify.run_all_levels ~jobs ~telemetry ~strategy ?shards
              ?store ~workloads ~levels ()
          in
          Dvf_util.Table.print (Core.Verify.to_level_table rows)
        end)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Fig. 4: trace-driven simulation vs the analytical models \
          (per-level traffic with --levels > 1)")
    Term.(
      const run $ Cli_common.jobs $ Cli_common.metrics $ strategy
      $ Cli_common.levels $ Cli_common.shards $ Cli_common.tape_store
      $ time_weighted $ Cli_common.bins $ Cli_common.workload_pos_args)

(* --- figure/table reproductions --- *)

let simple_cmd name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let tables_cmd =
  simple_cmd "tables" "Print Tables II, IV, V, VI and VII" (fun () ->
      Dvf_util.Table.print (Core.Experiments.table2 ());
      Dvf_util.Table.print (Core.Experiments.table4 ());
      Dvf_util.Table.print (Core.Experiments.table5 ());
      Dvf_util.Table.print (Core.Experiments.table6 ());
      Dvf_util.Table.print (Core.Experiments.table7 ()))

let fig5_cmd =
  simple_cmd "fig5" "DVF profiling across the four Table IV caches" (fun () ->
      Dvf_util.Table.print (Core.Profile.to_table (Core.Profile.run_all ())))

let fig6_cmd =
  let run jobs metrics levels =
    let jobs = Cli_common.check_jobs jobs in
    let levels = Cli_common.check_levels levels in
    Cli_common.with_metrics metrics (fun telemetry ->
        (* One analytic sweep per hierarchy level: level 1 is the classic
           4MB profiling cache (stdout unchanged at --levels 1); deeper
           levels re-evaluate DVF at that level's derived geometry. *)
        let configs =
          Cachesim.Config.hierarchy_of ~levels Cachesim.Config.profiling_4mb
        in
        List.iteri
          (fun i cache ->
            if i > 0 then
              Printf.printf "=== L%d: %s ===\n" (i + 1)
                cache.Cachesim.Config.name;
            Dvf_util.Table.print
              (Core.Experiments.fig6_table
                 (Core.Experiments.fig6 ~jobs ~telemetry ~cache ())))
          configs)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "CG vs PCG vulnerability over problem size (one sweep per cache \
          level with --levels > 1)")
    Term.(const run $ Cli_common.jobs $ Cli_common.metrics $ Cli_common.levels)

let fig7_cmd =
  simple_cmd "fig7" "DVF vs ECC performance degradation" (fun () ->
      let rows = Core.Experiments.fig7 () in
      Dvf_util.Table.print (Core.Experiments.fig7_table rows);
      let s, c = Core.Experiments.fig7_optimum rows in
      Printf.printf "optimum degradation: SECDED %.0f%%, chipkill %.0f%%\n"
        (100.0 *. s) (100.0 *. c))

(* --- parse --- *)

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Model file to check.")
  in
  let run path =
    handle_aspen_errors (fun () ->
        let ast = Aspen.Parser.parse_file (read_file path) in
        print_string (Aspen.Pretty.to_string ast);
        (* Also compile every declaration so semantic errors surface. *)
        ignore (Aspen.Compile.machines ast);
        ignore (Aspen.Compile.apps ast);
        Printf.eprintf "%s: OK (%d declarations)\n" path (List.length ast))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Syntax- and semantics-check a model file, echo it")
    Term.(const run $ path)

let models_cmd =
  simple_cmd "models" "List the builtin models" (fun () ->
      List.iter
        (fun (name, _) -> Printf.printf "%s\n" name)
        Aspen.Builtin_models.sources)

(* --- component / protect: the library's extensions --- *)

let components_cmd =
  let run workloads =
    let cache = Cachesim.Config.profiling_4mb in
    List.iter
      (fun workload ->
        let instance = Core.Workloads.profiling_instance workload in
        let time =
          Core.Perf.app_time Core.Perf.default_machine ~cache
            ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
        in
        Dvf_util.Table.print
          (Core.Component.to_table
             (Core.Component.both ~cache ~time instance.Core.Workload.spec)))
      workloads
  in
  Cmd.v
    (Cmd.info "components"
       ~doc:"Memory vs cache-component DVF per structure")
    Term.(const run $ Cli_common.workload_pos_args)

let protect_cmd =
  let target =
    let doc = "Residual vulnerability target as a fraction (0,1]." in
    Arg.(value & opt float 0.10 & info [ "t"; "target" ] ~docv:"FRACTION" ~doc)
  in
  let run target workloads =
    let cache = Cachesim.Config.profiling_4mb in
    List.iter
      (fun workload ->
        let instance = Core.Workloads.profiling_instance workload in
        let time =
          Core.Perf.app_time Core.Perf.default_machine ~cache
            ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
        in
        let app =
          Core.Dvf.of_spec ~cache ~fit:(Core.Ecc.fit Core.Ecc.No_ecc) ~time
            instance.Core.Workload.spec
        in
        Printf.printf "=== %s ===\n" instance.Core.Workload.label;
        Dvf_util.Table.print
          (Core.Selective.to_table
             (Core.Selective.coverage_curve ~scheme:Core.Ecc.Chipkill app));
        match
          Core.Selective.structures_for_target ~scheme:Core.Ecc.Chipkill
            ~target_fraction:target app
        with
        | [] -> Printf.printf "already within target\n"
        | names ->
            Printf.printf "protect {%s} to keep <= %.0f%% of the DVF\n"
              (String.concat ", " names) (100.0 *. target)
        | exception Invalid_argument m -> Printf.printf "%s\n" m)
      workloads
  in
  Cmd.v
    (Cmd.info "protect"
       ~doc:"Selective-protection coverage curves (chipkill on top-k structures)")
    Term.(const run $ target $ Cli_common.workload_pos_args)

(* --- inject: fault-injection campaigns vs the analytical DVF --- *)

let inject_cmd =
  let run (c : Cli_common.campaign) workloads =
    List.iter
      (fun (w : Core.Workload.t) ->
        if Option.is_none w.Core.Workload.injector then
          Printf.eprintf "note: %s has no fault injector; skipping\n"
            w.Core.Workload.name)
      workloads;
    Cli_common.with_metrics c.Cli_common.c_metrics (fun telemetry ->
        let results =
          Core.Injection.run_all ~seed:c.Cli_common.c_seed
            ?trials:c.Cli_common.c_trials ~jobs:c.Cli_common.c_jobs ~telemetry
            workloads
        in
        if results = [] then begin
          Printf.eprintf
            "error: none of the selected workloads has an injector\n";
          exit 1
        end;
        List.iter
          (fun r -> Dvf_util.Table.print (Core.Injection.to_table r))
          results;
        let corr = Core.Injection.correlate results in
        Dvf_util.Table.print (Core.Injection.correlation_table corr);
        Format.printf "%a" Core.Injection.pp_spearman corr;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc
              (Dvf_util.Table.to_csv (Core.Injection.correlation_table corr));
            close_out oc;
            Printf.printf "wrote %s\n" path)
          c.Cli_common.c_csv)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Statistical fault injection per data structure (Wilson confidence \
          intervals on SDC rates), compared against the analytical DVF by \
          Spearman rank correlation")
    Term.(
      const run $ Cli_common.campaign_term $ Cli_common.workload_pos_args)

(* --- chaos: component-kill campaigns over service graphs --- *)

let chaos_cmd =
  let workloads =
    (* Unlike the other subcommands, the default set resolves inside
       [run]: the service workloads are registered on demand, so a
       module-initialization-time [Workloads.all ()] would miss them. *)
    let doc =
      "Workloads by registry name (default: the built-in service-graph \
       workloads)."
    in
    Arg.(value & pos_all Cli_common.workload_conv [] & info [] ~docv:"WORKLOAD" ~doc)
  in
  let run (c : Cli_common.campaign) kill_fraction workloads =
    let kill_fraction = Cli_common.check_kill_fraction kill_fraction in
    let workloads =
      match workloads with
      | [] ->
          Core.Service_workloads.ensure_registered ();
          List.filter
            (fun (w : Core.Workload.t) ->
              Option.is_some w.Core.Workload.topology)
            (Core.Workloads.all ())
      | ws -> ws
    in
    List.iter
      (fun (w : Core.Workload.t) ->
        if Option.is_none w.Core.Workload.topology then
          Printf.eprintf "note: %s has no service-graph topology; skipping\n"
            w.Core.Workload.name)
      workloads;
    Cli_common.with_metrics c.Cli_common.c_metrics (fun telemetry ->
        let reports =
          Core.Chaos.run_all ~seed:c.Cli_common.c_seed
            ?trials:c.Cli_common.c_trials ~jobs:c.Cli_common.c_jobs ~telemetry
            ~kill_fraction workloads
        in
        if reports = [] then begin
          Printf.eprintf
            "error: none of the selected workloads has a service-graph \
             topology\n";
          exit 1
        end;
        List.iter
          (fun r ->
            Dvf_util.Table.print (Core.Chaos.to_table r);
            Format.printf "%a" Core.Chaos.pp_summary r)
          reports;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Core.Chaos.to_csv reports);
            close_out oc;
            Printf.printf "wrote %s\n" path)
          c.Cli_common.c_csv)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Chaos campaigns over service-graph workloads: kill a random \
          component subset per trial, report per-endpoint availability \
          (Wilson confidence intervals) and the mix-weighted request loss, \
          and rank availability against the analytical DVF by Spearman \
          correlation.  Runs on the same fault-model campaign engine as \
          $(b,dvf inject)")
    Term.(
      const run $ Cli_common.campaign_term $ Cli_common.kill_fraction
      $ workloads)

(* --- windows: vulnerability vs. time --- *)

let windows_cmd =
  let strategy =
    let doc =
      "Timed-replay strategy for the residency side: $(b,replay) \
       (default), $(b,fused) or $(b,sharded).  $(b,retrace) is rejected \
       — it has no tape, hence no logical clock.  All strategies print \
       identical rows."
    in
    Arg.(
      value
      & opt (enum Core.Verify.strategies) Core.Verify.Replay
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let run (c : Cli_common.campaign) bins strategy shards tape_store workloads =
    let bins = Cli_common.check_bins bins in
    let shards = Cli_common.check_shards shards in
    if strategy = Core.Verify.Retrace then begin
      Printf.eprintf
        "error: --strategy retrace has no tape and therefore no logical \
         clock; use replay, fused or sharded\n";
      exit 1
    end;
    List.iter
      (fun (w : Core.Workload.t) ->
        if Option.is_none w.Core.Workload.injector then
          Printf.eprintf "note: %s has no fault injector; skipping\n"
            w.Core.Workload.name)
      workloads;
    Cli_common.with_metrics c.Cli_common.c_metrics (fun telemetry ->
        let store = Cli_common.open_tape_store ~telemetry tape_store in
        let report =
          Core.Windows.run ~jobs:c.Cli_common.c_jobs ~telemetry ~strategy
            ?shards ?store ~seed:c.Cli_common.c_seed
            ?trials:c.Cli_common.c_trials ~bins ~workloads ()
        in
        if report.Core.Windows.curves = [] then begin
          Printf.eprintf
            "error: none of the selected workloads has an injector\n";
          exit 1
        end;
        Dvf_util.Table.print (Core.Windows.to_table report);
        Dvf_util.Table.print (Core.Windows.curve_table report);
        Format.printf "%a" Core.Windows.pp_correlations report;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Core.Windows.to_csv report);
            close_out oc;
            Printf.printf "wrote %s\n" path)
          c.Cli_common.c_csv)
  in
  Cmd.v
    (Cmd.info "windows"
       ~doc:
         "Vulnerability vs. time: windowed residency from a timed replay \
          against flip-time-binned SDC rates from fault injection, with \
          Spearman rank correlations per structure and between the \
          time-weighted DVF and the overall SDC rate")
    Term.(
      const run $ Cli_common.campaign_term $ Cli_common.bins $ strategy
      $ Cli_common.shards $ Cli_common.tape_store
      $ Cli_common.workload_pos_args)

(* --- serve / query: long-lived query daemon over line JSON ---

   [Core.Serve] is computation only; this section owns the transport:
   a line-framed reader over a raw fd with select-based batching (all
   request lines already buffered are dispatched to the pool as one
   batch), writing one compact JSON response line per request. *)

module Json = Dvf_util.Json

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

type line_reader = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  partial : Buffer.t; (* current unterminated line *)
  queue : string Queue.t; (* complete lines, oldest first *)
  mutable eof : bool;
}

let make_reader fd =
  {
    fd;
    rbuf = Bytes.create 65536;
    partial = Buffer.create 4096;
    queue = Queue.create ();
    eof = false;
  }

let reader_readable r =
  match Unix.select [ r.fd ] [] [] 0.0 with
  | [ _ ], _, _ -> true
  | _ -> false

(* One read(2); splits complete lines into the queue.  At EOF a
   non-empty unterminated tail still counts as a final line. *)
let refill r =
  if not r.eof then begin
    let n = Unix.read r.fd r.rbuf 0 (Bytes.length r.rbuf) in
    if n = 0 then begin
      r.eof <- true;
      if Buffer.length r.partial > 0 then begin
        Queue.add (Buffer.contents r.partial) r.queue;
        Buffer.clear r.partial
      end
    end
    else
      for i = 0 to n - 1 do
        match Bytes.get r.rbuf i with
        | '\n' ->
            Queue.add (Buffer.contents r.partial) r.queue;
            Buffer.clear r.partial
        | c -> Buffer.add_char r.partial c
      done
  end

(* Block for at least one line, then opportunistically drain whatever
   else has already arrived (up to [max] lines) so concurrent clients'
   requests dispatch to the pool as one batch. *)
let next_batch r ~max =
  while Queue.is_empty r.queue && not r.eof do
    refill r
  done;
  while Queue.length r.queue < max && (not r.eof) && reader_readable r do
    refill r
  done;
  let batch = ref [] in
  while List.length !batch < max && not (Queue.is_empty r.queue) do
    batch := Queue.pop r.queue :: !batch
  done;
  List.rev !batch

let serve_connection srv ~in_fd ~out_fd =
  let r = make_reader in_fd in
  let rec loop () =
    match next_batch r ~max:64 with
    | [] -> () (* EOF *)
    | lines ->
        List.iter
          (fun resp -> write_all out_fd (resp ^ "\n"))
          (Core.Serve.handle_batch srv lines);
        loop ()
  in
  loop ()

let serve_socket srv path =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Printf.eprintf "dvf serve: listening on %s\n%!" path;
  let rec accept_loop () =
    let conn, _ = Unix.accept sock in
    (try serve_connection srv ~in_fd:conn ~out_fd:conn
     with Unix.Unix_error _ -> ());
    (try Unix.close conn with Unix.Unix_error _ -> ());
    accept_loop ()
  in
  accept_loop ()

let serve_cmd =
  let socket =
    let doc =
      "Listen on a Unix-domain socket at $(docv) (clients connect one at \
       a time) instead of answering requests on stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let run jobs metrics tape_store socket workloads =
    let jobs = Cli_common.check_jobs jobs in
    (* A signal flips the loop into a normal return so the pool shuts
       down and --metrics still gets written. *)
    let on_signal = Sys.Signal_handle (fun _ -> raise Exit) in
    Sys.set_signal Sys.sigint on_signal;
    Sys.set_signal Sys.sigterm on_signal;
    Cli_common.with_metrics metrics (fun telemetry ->
        let store = Cli_common.open_tape_store ~telemetry tape_store in
        let srv = Core.Serve.create ~telemetry ?store ~jobs ~workloads () in
        Fun.protect ~finally:(fun () -> Core.Serve.shutdown srv) @@ fun () ->
        Core.Serve.warm srv;
        Printf.eprintf "dvf serve: %d workloads warm, ready\n%!"
          (Core.Serve.warm_count srv);
        try
          match socket with
          | None -> serve_connection srv ~in_fd:Unix.stdin ~out_fd:Unix.stdout
          | Some path -> serve_socket srv path
        with Exit -> ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived query daemon: warm every workload's trace tape once \
          (optionally from a persistent --tape-store), then answer \
          verify/levels/timed/dvf/sweep requests as line JSON on \
          stdin/stdout or a Unix socket, batching concurrent requests \
          onto the domain pool")
    Term.(
      const run $ Cli_common.jobs $ Cli_common.metrics $ Cli_common.tape_store
      $ socket $ Cli_common.workload_pos_args)

(* --- query: one-shot client --- *)

let query_cmd =
  let socket =
    let doc =
      "Send the request to a running $(b,dvf serve --socket) daemon at \
       $(docv) instead of answering in-process."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let op =
    let doc =
      "Operation: verify, levels, timed, dvf, sweep, chaos, workloads, \
       stats or ping."
    in
    Arg.(value & opt string "verify" & info [ "op" ] ~docv:"OP" ~doc)
  in
  let workload =
    let doc = "Restrict to one workload (required for $(b,--op sweep))." in
    Arg.(
      value
      & pos 0 (some Cli_common.workload_conv) None
      & info [] ~docv:"WORKLOAD" ~doc)
  in
  let levels =
    let doc =
      "Hierarchy depth for $(b,--op levels) (server default 2) or \
       $(b,--op timed) (server default 1)."
    in
    Arg.(value & opt (some int) None & info [ "levels" ] ~docv:"N" ~doc)
  in
  let bins =
    let doc = "Time windows for $(b,--op timed) (server default)." in
    Arg.(value & opt (some int) None & info [ "bins" ] ~docv:"N" ~doc)
  in
  let capacities =
    let doc = "Comma-separated capacities in bytes for $(b,--op sweep)." in
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "capacities" ] ~docv:"BYTES,.." ~doc)
  in
  let no_simulate =
    let doc = "Skip the trace-driven totals in $(b,--op sweep)." in
    Arg.(value & flag & info [ "no-simulate" ] ~doc)
  in
  let trials =
    let doc = "Trials per endpoint for $(b,--op chaos) (server default)." in
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)
  in
  let q_kill_fraction =
    let doc =
      "Components killed per trial for $(b,--op chaos), as a fraction in \
       [0, 1] (server default)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "kill-fraction" ] ~docv:"F" ~doc)
  in
  let raw =
    let doc = "Print the raw JSON response line instead of a table." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let request =
    let doc =
      "Send this literal JSON request (one line) instead of building one \
       from the other options."
    in
    Arg.(value & opt (some string) None & info [ "request" ] ~docv:"JSON" ~doc)
  in
  let build_request ~op ~workload ~levels ~bins ~capacities ~no_simulate
      ~trials ~kill_fraction =
    Json.to_string ~indent:false
      (Json.Obj
         ([ ("id", Json.Int 1); ("op", Json.Str op) ]
         @ (match workload with
           | Some (w : Core.Workload.t) ->
               [ ("workload", Json.Str w.Core.Workload.name) ]
           | None -> [])
         @ (match levels with
           | Some l when op = "levels" || op = "timed" ->
               [ ("levels", Json.Int l) ]
           | _ -> [])
         @ (match bins with
           | Some b when op = "timed" -> [ ("bins", Json.Int b) ]
           | _ -> [])
         @ (match capacities with
           | Some caps when op = "sweep" ->
               [ ("capacities", Json.List (List.map (fun c -> Json.Int c) caps)) ]
           | _ -> [])
         @ (match trials with
           | Some t when op = "chaos" -> [ ("trials", Json.Int t) ]
           | _ -> [])
         @ (match kill_fraction with
           | Some f when op = "chaos" -> [ ("kill_fraction", Json.Float f) ]
           | _ -> [])
         @
         if no_simulate && op = "sweep" then
           [ ("simulate", Json.Bool false) ]
         else []))
  in
  let query_socket path line =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () ->
        try Unix.close sock with Unix.Unix_error _ -> ())
    @@ fun () ->
    (try Unix.connect sock (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "error: cannot connect to %s: %s\n" path
         (Unix.error_message e);
       exit 1);
    write_all sock (line ^ "\n");
    let ic = Unix.in_channel_of_descr sock in
    match input_line ic with
    | resp -> resp
    | exception End_of_file ->
        Printf.eprintf "error: server closed the connection\n";
        exit 1
  in
  let render ~raw ~op ~label response =
    if raw then print_endline response
    else
      match Json.of_string response with
      | Error msg ->
          Printf.eprintf "error: bad response: %s\n" msg;
          exit 1
      | Ok resp -> (
          match (Json.member "ok" resp, Json.member "result" resp) with
          | Some (Json.Bool true), Some result -> (
              try
                match op with
                | "verify" ->
                    Dvf_util.Table.print
                      (Core.Verify.to_table
                         (Core.Serve.verify_rows_of_result result))
                | "levels" ->
                    Dvf_util.Table.print
                      (Core.Verify.to_level_table
                         (Core.Serve.level_rows_of_result result))
                | "timed" ->
                    Dvf_util.Table.print
                      (Core.Verify.to_time_table
                         (Core.Serve.timed_rows_of_result result))
                | "dvf" ->
                    Dvf_util.Table.print
                      (Core.Profile.to_table
                         (Core.Serve.profile_rows_of_result result))
                | "sweep" ->
                    Dvf_util.Table.print
                      (Core.Experiments.cache_sweep_table ~label
                         (Core.Serve.sweep_rows_of_result result))
                | "chaos" ->
                    let report = Core.Serve.chaos_report_of_result result in
                    Dvf_util.Table.print (Core.Chaos.to_table report);
                    Format.printf "%a" Core.Chaos.pp_summary report
                | _ -> print_endline (Json.to_string result)
              with Failure msg ->
                Printf.eprintf "error: %s\n" msg;
                exit 1)
          | Some (Json.Bool false), _ ->
              let msg =
                match Json.member "error" resp with
                | Some (Json.Str m) -> m
                | _ -> "unknown server error"
              in
              Printf.eprintf "error: %s\n" msg;
              exit 1
          | _ ->
              Printf.eprintf "error: malformed response envelope\n";
              exit 1)
  in
  let run jobs tape_store socket op workload levels bins capacities
      no_simulate trials kill_fraction raw request =
    let jobs = Cli_common.check_jobs jobs in
    let line =
      match request with
      | Some r -> r
      | None ->
          build_request ~op ~workload ~levels ~bins ~capacities ~no_simulate
            ~trials ~kill_fraction
    in
    (* Render according to the op actually sent, so --request still gets
       a table when it names a tabular op. *)
    let op =
      match request with
      | None -> op
      | Some r -> (
          match Result.map (Json.member "op") (Json.of_string r) with
          | Ok (Some (Json.Str o)) -> o
          | _ -> op)
    in
    let label =
      match workload with
      | Some (w : Core.Workload.t) -> w.Core.Workload.name
      | None -> "sweep"
    in
    let response =
      match socket with
      | Some path -> query_socket path line
      | None -> (
          (* In-process: spin up a serving context, answer the one
             request (capturing only what it needs — no full warm-up),
             and shut down. *)
          let store =
            Cli_common.open_tape_store ~telemetry:Dvf_util.Telemetry.null
              tape_store
          in
          let srv = Core.Serve.create ?store ~jobs () in
          Fun.protect ~finally:(fun () -> Core.Serve.shutdown srv)
          @@ fun () ->
          match Core.Serve.handle_line srv line with
          | Some resp -> resp
          | None ->
              Printf.eprintf "error: blank request\n";
              exit 1)
    in
    render ~raw ~op ~label response
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "One-shot client for the dvf-query protocol: send one request to \
          a running serve daemon (--socket) or answer it in-process, and \
          render the rows as the matching CLI table (or --raw JSON)")
    Term.(
      const run $ Cli_common.jobs $ Cli_common.tape_store $ socket $ op
      $ workload $ levels $ bins $ capacities $ no_simulate $ trials
      $ q_kill_fraction $ raw $ request)

(* --- --model: any Aspen file through the full pipeline --- *)

let run_model path overrides jobs telemetry =
  handle_aspen_errors (fun () ->
      let ast = Aspen.Parser.parse_file (read_file path) in
      let apps = Aspen.Compile.apps ~overrides ast in
      if apps = [] then begin
        Printf.eprintf "error: %s declares no apps\n" path;
        exit 1
      end;
      let machines = Aspen.Compile.machines ast in
      (* Analytical DVF report: against every machine declared in the
         file, or the default profiling machine when it declares none. *)
      (match machines with
      | [] ->
          let cache = Cachesim.Config.profiling_4mb in
          Printf.printf "machine (default): %s, FIT=%g\n\n"
            (Format.asprintf "%a" Cachesim.Config.pp cache)
            (Core.Ecc.fit Core.Ecc.No_ecc);
          List.iter
            (fun (app : Aspen.Compile.app) ->
              let time =
                Core.Perf.app_time Core.Perf.default_machine ~cache
                  ~flops:app.Aspen.Compile.flops app.Aspen.Compile.spec
              in
              let d =
                Core.Dvf.of_spec ~cache
                  ~fit:(Core.Ecc.fit Core.Ecc.No_ecc)
                  ~time app.Aspen.Compile.spec
              in
              Format.printf "%a@.@." Core.Dvf.pp_app d)
            apps
      | machines ->
          List.iter
            (fun (machine : Aspen.Compile.machine) ->
              Printf.printf "machine %s: %s, FIT=%g\n\n"
                machine.Aspen.Compile.machine_name
                (Format.asprintf "%a" Cachesim.Config.pp
                   machine.Aspen.Compile.cache)
                machine.Aspen.Compile.fit;
              List.iter
                (fun app ->
                  let d = Aspen.Compile.dvf machine app in
                  Format.printf "%a@.@." Core.Dvf.pp_app d)
                apps)
            machines);
      (* Fig. 4-style trace verification: replay the declared patterns,
         simulate, compare against the analytical N_ha. *)
      let workloads =
        List.map
          (fun app ->
            match Aspen.Model_workload.register ~source:path app with
            | w -> w
            | exception Invalid_argument _ ->
                (* Name collision (re-run, or a model named like a
                   builtin): use the workload without registering. *)
                Aspen.Model_workload.of_app ~source:path app)
          apps
      in
      let rows =
        Core.Verify.run_all
          ~jobs:(Cli_common.check_jobs jobs)
          ~telemetry ~workloads ()
      in
      Dvf_util.Table.print (Core.Verify.to_table rows))

let default_term =
  let model =
    let doc =
      "Run the full DVF pipeline on an Aspen model file: compile every \
       app, print the analytical DVF report, then verify the pattern \
       models against trace-driven cache simulation."
    in
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE.aspen" ~doc)
  in
  let run model overrides jobs metrics =
    match model with
    | Some path ->
        Cli_common.with_metrics metrics (fun telemetry ->
            run_model path overrides jobs telemetry);
        `Ok ()
    | None -> `Help (`Pager, None)
  in
  Term.(
    ret
      (const run $ model $ Cli_common.param_overrides $ Cli_common.jobs
      $ Cli_common.metrics))

(* --- tape: on-disk trace tape inspection --- *)

let tape_cmd =
  let info_cmd =
    let file =
      let doc = "The .dvftape file to inspect." in
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
    in
    let json =
      let doc = "Print one JSON line instead of the table." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let run file json =
      match Core.Serve.tape_info_of_file file with
      | Error e ->
          Printf.eprintf "error: %s: %s\n" file
            (Memtrace.Tape_io.error_to_string e);
          exit 1
      | Ok ti ->
          if json then
            print_endline
              (Json.to_string ~indent:false (Core.Serve.tape_info_to_json ti))
          else Dvf_util.Table.print (Core.Serve.tape_info_table ti)
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Print a tape file's header, provenance and partition-index \
            summary (byte-stable; $(b,--json) for the machine-readable \
            line)")
      Term.(const run $ file $ json)
  in
  Cmd.group
    (Cmd.info "tape" ~doc:"Inspect persistent .dvftape trace files")
    [ info_cmd ]

let main_cmd =
  let doc = "Data Vulnerability Factor modeling (SC'14 reproduction)" in
  Cmd.group ~default:default_term
    (Cmd.info "dvf" ~version:"1.0.0" ~doc)
    [
      profile_cmd; verify_cmd; tables_cmd; fig5_cmd; fig6_cmd; fig7_cmd;
      parse_cmd; models_cmd; components_cmd; protect_cmd; inject_cmd;
      chaos_cmd; windows_cmd; serve_cmd; query_cmd; tape_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
