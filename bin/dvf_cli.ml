(* dvf — command-line front end to the DVF library.

   Subcommands:
     profile     evaluate an Aspen model file and print per-structure DVF
     verify      Fig. 4 model-vs-simulation verification
     tables      print the paper's static tables
     fig5/6/7    reproduce the evaluation figures
     parse       syntax-check and pretty-print a model file
     models      list the builtin models and machines
     components  memory-DVF vs cache-DVF per structure
     protect     selective-protection coverage curves
     inject      parallel fault-injection campaigns vs the analytical DVF

   Shared arguments (-j/--jobs, --seed, --csv, -m/--machine, --metrics)
   are declared once in Cli_common and composed per subcommand. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle_aspen_errors f =
  try f () with
  | e -> (
      match Aspen.Errors.to_string e with
      | Some message ->
          Printf.eprintf "error: %s\n" message;
          exit 1
      | None -> raise e)

let load_models = function
  | None -> Aspen.Builtin_models.load ()
  | Some path -> Aspen.Parser.parse_file (read_file path)

(* --- profile --- *)

let profile_cmd =
  let app_names =
    let doc = "Apps to profile (default: every app in the file)." in
    Arg.(value & pos_all string [] & info [] ~docv:"APP" ~doc)
  in
  let run file machine_name overrides app_names =
    handle_aspen_errors (fun () ->
        let file = load_models file in
        let machine = Aspen.Compile.find_machine file machine_name in
        let apps =
          match app_names with
          | [] -> Aspen.Compile.apps ~overrides file
          | names ->
              List.map (Aspen.Compile.find_app ~overrides file) names
        in
        Printf.printf "machine %s: %s, FIT=%g\n\n"
          machine.Aspen.Compile.machine_name
          (Format.asprintf "%a" Cachesim.Config.pp machine.Aspen.Compile.cache)
          machine.Aspen.Compile.fit;
        List.iter
          (fun app ->
            let d = Aspen.Compile.dvf machine app in
            Format.printf "%a@.@." Core.Dvf.pp_app d)
          apps)
  in
  let term =
    Term.(
      const run $ Cli_common.model_file $ Cli_common.machine_name
      $ Cli_common.param_overrides $ app_names)
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Evaluate Aspen models and print per-structure DVF")
    term

(* --- verify --- *)

let verify_cmd =
  let strategy =
    let doc =
      "Simulation strategy: $(b,replay) (default) captures each workload's \
       trace once and replays the tape per cache; $(b,fused) drives all \
       caches from one chunk walk; $(b,sharded) partitions the fused walk \
       by cache-set index into independent per-shard tasks (see \
       $(b,--shards)); $(b,retrace) re-executes the kernel per cache (the \
       historical baseline).  All strategies print identical rows."
    in
    Arg.(
      value
      & opt (enum Core.Verify.strategies) Core.Verify.Replay
      & info [ "strategy" ] ~docv:"STRATEGY" ~doc)
  in
  let run jobs metrics strategy levels shards workloads =
    let jobs = Cli_common.check_jobs jobs in
    let levels = Cli_common.check_levels levels in
    let shards = Cli_common.check_shards shards in
    Cli_common.with_metrics metrics (fun telemetry ->
        if levels = 1 then
          let rows =
            Core.Verify.run_all ~jobs ~telemetry ~strategy ?shards ~workloads ()
          in
          Dvf_util.Table.print (Core.Verify.to_table rows)
        else begin
          if strategy = Core.Verify.Retrace then begin
            Printf.eprintf
              "error: --strategy retrace cannot drive a multi-level \
               hierarchy; use replay, fused or sharded\n";
            exit 1
          end;
          let rows =
            Core.Verify.run_all_levels ~jobs ~telemetry ~strategy ?shards
              ~workloads ~levels ()
          in
          Dvf_util.Table.print (Core.Verify.to_level_table rows)
        end)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Fig. 4: trace-driven simulation vs the analytical models \
          (per-level traffic with --levels > 1)")
    Term.(
      const run $ Cli_common.jobs $ Cli_common.metrics $ strategy
      $ Cli_common.levels $ Cli_common.shards $ Cli_common.workload_pos_args)

(* --- figure/table reproductions --- *)

let simple_cmd name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let tables_cmd =
  simple_cmd "tables" "Print Tables II, IV, V, VI and VII" (fun () ->
      Dvf_util.Table.print (Core.Experiments.table2 ());
      Dvf_util.Table.print (Core.Experiments.table4 ());
      Dvf_util.Table.print (Core.Experiments.table5 ());
      Dvf_util.Table.print (Core.Experiments.table6 ());
      Dvf_util.Table.print (Core.Experiments.table7 ()))

let fig5_cmd =
  simple_cmd "fig5" "DVF profiling across the four Table IV caches" (fun () ->
      Dvf_util.Table.print (Core.Profile.to_table (Core.Profile.run_all ())))

let fig6_cmd =
  let run jobs metrics levels =
    let jobs = Cli_common.check_jobs jobs in
    let levels = Cli_common.check_levels levels in
    Cli_common.with_metrics metrics (fun telemetry ->
        (* One analytic sweep per hierarchy level: level 1 is the classic
           4MB profiling cache (stdout unchanged at --levels 1); deeper
           levels re-evaluate DVF at that level's derived geometry. *)
        let configs =
          Cachesim.Config.hierarchy_of ~levels Cachesim.Config.profiling_4mb
        in
        List.iteri
          (fun i cache ->
            if i > 0 then
              Printf.printf "=== L%d: %s ===\n" (i + 1)
                cache.Cachesim.Config.name;
            Dvf_util.Table.print
              (Core.Experiments.fig6_table
                 (Core.Experiments.fig6 ~jobs ~telemetry ~cache ())))
          configs)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "CG vs PCG vulnerability over problem size (one sweep per cache \
          level with --levels > 1)")
    Term.(const run $ Cli_common.jobs $ Cli_common.metrics $ Cli_common.levels)

let fig7_cmd =
  simple_cmd "fig7" "DVF vs ECC performance degradation" (fun () ->
      let rows = Core.Experiments.fig7 () in
      Dvf_util.Table.print (Core.Experiments.fig7_table rows);
      let s, c = Core.Experiments.fig7_optimum rows in
      Printf.printf "optimum degradation: SECDED %.0f%%, chipkill %.0f%%\n"
        (100.0 *. s) (100.0 *. c))

(* --- parse --- *)

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Model file to check.")
  in
  let run path =
    handle_aspen_errors (fun () ->
        let ast = Aspen.Parser.parse_file (read_file path) in
        print_string (Aspen.Pretty.to_string ast);
        (* Also compile every declaration so semantic errors surface. *)
        ignore (Aspen.Compile.machines ast);
        ignore (Aspen.Compile.apps ast);
        Printf.eprintf "%s: OK (%d declarations)\n" path (List.length ast))
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Syntax- and semantics-check a model file, echo it")
    Term.(const run $ path)

let models_cmd =
  simple_cmd "models" "List the builtin models" (fun () ->
      List.iter
        (fun (name, _) -> Printf.printf "%s\n" name)
        Aspen.Builtin_models.sources)

(* --- component / protect: the library's extensions --- *)

let components_cmd =
  let run workloads =
    let cache = Cachesim.Config.profiling_4mb in
    List.iter
      (fun workload ->
        let instance = Core.Workloads.profiling_instance workload in
        let time =
          Core.Perf.app_time Core.Perf.default_machine ~cache
            ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
        in
        Dvf_util.Table.print
          (Core.Component.to_table
             (Core.Component.both ~cache ~time instance.Core.Workload.spec)))
      workloads
  in
  Cmd.v
    (Cmd.info "components"
       ~doc:"Memory vs cache-component DVF per structure")
    Term.(const run $ Cli_common.workload_pos_args)

let protect_cmd =
  let target =
    let doc = "Residual vulnerability target as a fraction (0,1]." in
    Arg.(value & opt float 0.10 & info [ "t"; "target" ] ~docv:"FRACTION" ~doc)
  in
  let run target workloads =
    let cache = Cachesim.Config.profiling_4mb in
    List.iter
      (fun workload ->
        let instance = Core.Workloads.profiling_instance workload in
        let time =
          Core.Perf.app_time Core.Perf.default_machine ~cache
            ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
        in
        let app =
          Core.Dvf.of_spec ~cache ~fit:(Core.Ecc.fit Core.Ecc.No_ecc) ~time
            instance.Core.Workload.spec
        in
        Printf.printf "=== %s ===\n" instance.Core.Workload.label;
        Dvf_util.Table.print
          (Core.Selective.to_table
             (Core.Selective.coverage_curve ~scheme:Core.Ecc.Chipkill app));
        match
          Core.Selective.structures_for_target ~scheme:Core.Ecc.Chipkill
            ~target_fraction:target app
        with
        | [] -> Printf.printf "already within target\n"
        | names ->
            Printf.printf "protect {%s} to keep <= %.0f%% of the DVF\n"
              (String.concat ", " names) (100.0 *. target)
        | exception Invalid_argument m -> Printf.printf "%s\n" m)
      workloads
  in
  Cmd.v
    (Cmd.info "protect"
       ~doc:"Selective-protection coverage curves (chipkill on top-k structures)")
    Term.(const run $ target $ Cli_common.workload_pos_args)

(* --- inject: fault-injection campaigns vs the analytical DVF --- *)

let inject_cmd =
  let trials =
    let doc = "Trials per structure (default: each injector's own)." in
    Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)
  in
  let run jobs trials seed csv metrics workloads =
    let jobs = Cli_common.check_jobs jobs in
    (match trials with
    | Some t when t < 1 ->
        Printf.eprintf "error: --trials expects a positive integer (got %d)\n" t;
        exit 1
    | _ -> ());
    List.iter
      (fun (w : Core.Workload.t) ->
        if Option.is_none w.Core.Workload.injector then
          Printf.eprintf "note: %s has no fault injector; skipping\n"
            w.Core.Workload.name)
      workloads;
    Cli_common.with_metrics metrics (fun telemetry ->
        let results =
          Core.Injection.run_all ~seed ?trials ~jobs ~telemetry workloads
        in
        if results = [] then begin
          Printf.eprintf
            "error: none of the selected workloads has an injector\n";
          exit 1
        end;
        List.iter
          (fun r -> Dvf_util.Table.print (Core.Injection.to_table r))
          results;
        let corr = Core.Injection.correlate results in
        Dvf_util.Table.print (Core.Injection.correlation_table corr);
        Format.printf "%a" Core.Injection.pp_spearman corr;
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc
              (Dvf_util.Table.to_csv (Core.Injection.correlation_table corr));
            close_out oc;
            Printf.printf "wrote %s\n" path)
          csv)
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Statistical fault injection per data structure (Wilson confidence \
          intervals on SDC rates), compared against the analytical DVF by \
          Spearman rank correlation")
    Term.(
      const run $ Cli_common.jobs $ trials $ Cli_common.seed $ Cli_common.csv
      $ Cli_common.metrics $ Cli_common.workload_pos_args)

(* --- --model: any Aspen file through the full pipeline --- *)

let run_model path overrides jobs telemetry =
  handle_aspen_errors (fun () ->
      let ast = Aspen.Parser.parse_file (read_file path) in
      let apps = Aspen.Compile.apps ~overrides ast in
      if apps = [] then begin
        Printf.eprintf "error: %s declares no apps\n" path;
        exit 1
      end;
      let machines = Aspen.Compile.machines ast in
      (* Analytical DVF report: against every machine declared in the
         file, or the default profiling machine when it declares none. *)
      (match machines with
      | [] ->
          let cache = Cachesim.Config.profiling_4mb in
          Printf.printf "machine (default): %s, FIT=%g\n\n"
            (Format.asprintf "%a" Cachesim.Config.pp cache)
            (Core.Ecc.fit Core.Ecc.No_ecc);
          List.iter
            (fun (app : Aspen.Compile.app) ->
              let time =
                Core.Perf.app_time Core.Perf.default_machine ~cache
                  ~flops:app.Aspen.Compile.flops app.Aspen.Compile.spec
              in
              let d =
                Core.Dvf.of_spec ~cache
                  ~fit:(Core.Ecc.fit Core.Ecc.No_ecc)
                  ~time app.Aspen.Compile.spec
              in
              Format.printf "%a@.@." Core.Dvf.pp_app d)
            apps
      | machines ->
          List.iter
            (fun (machine : Aspen.Compile.machine) ->
              Printf.printf "machine %s: %s, FIT=%g\n\n"
                machine.Aspen.Compile.machine_name
                (Format.asprintf "%a" Cachesim.Config.pp
                   machine.Aspen.Compile.cache)
                machine.Aspen.Compile.fit;
              List.iter
                (fun app ->
                  let d = Aspen.Compile.dvf machine app in
                  Format.printf "%a@.@." Core.Dvf.pp_app d)
                apps)
            machines);
      (* Fig. 4-style trace verification: replay the declared patterns,
         simulate, compare against the analytical N_ha. *)
      let workloads =
        List.map
          (fun app ->
            match Aspen.Model_workload.register ~source:path app with
            | w -> w
            | exception Invalid_argument _ ->
                (* Name collision (re-run, or a model named like a
                   builtin): use the workload without registering. *)
                Aspen.Model_workload.of_app ~source:path app)
          apps
      in
      let rows =
        Core.Verify.run_all
          ~jobs:(Cli_common.check_jobs jobs)
          ~telemetry ~workloads ()
      in
      Dvf_util.Table.print (Core.Verify.to_table rows))

let default_term =
  let model =
    let doc =
      "Run the full DVF pipeline on an Aspen model file: compile every \
       app, print the analytical DVF report, then verify the pattern \
       models against trace-driven cache simulation."
    in
    Arg.(
      value
      & opt (some file) None
      & info [ "model" ] ~docv:"FILE.aspen" ~doc)
  in
  let run model overrides jobs metrics =
    match model with
    | Some path ->
        Cli_common.with_metrics metrics (fun telemetry ->
            run_model path overrides jobs telemetry);
        `Ok ()
    | None -> `Help (`Pager, None)
  in
  Term.(
    ret
      (const run $ model $ Cli_common.param_overrides $ Cli_common.jobs
      $ Cli_common.metrics))

let main_cmd =
  let doc = "Data Vulnerability Factor modeling (SC'14 reproduction)" in
  Cmd.group ~default:default_term
    (Cmd.info "dvf" ~version:"1.0.0" ~doc)
    [
      profile_cmd; verify_cmd; tables_cmd; fig5_cmd; fig6_cmd; fig7_cmd;
      parse_cmd; models_cmd; components_cmd; protect_cmd; inject_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
