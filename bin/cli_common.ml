(* Shared cmdliner terms for every dvf subcommand.

   Each subcommand used to re-declare its own --jobs/--seed/--csv/
   --machine arguments, and their docstrings and defaults drifted.  They
   are defined once here; a subcommand composes exactly the terms it
   needs, so `dvf verify --help` and `dvf inject --help` describe -j
   identically. *)

open Cmdliner

(* --- model-file / machine / parameter terms --- *)

let model_file =
  let doc = "Aspen model file; the builtin models are used when absent." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let machine_name =
  let doc = "Machine declaration to evaluate against." in
  Arg.(
    value & opt string "prof_8mb" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let param_overrides =
  let doc = "Override an app parameter, e.g. --param n=5000 (repeatable)." in
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
        let name = String.sub s 0 i in
        let value = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt value with
        | Some v -> Ok (name, v)
        | None -> Error (`Msg (Printf.sprintf "bad parameter value in %S" s)))
    | None -> Error (`Msg (Printf.sprintf "expected NAME=VALUE, got %S" s))
  in
  let print fmt (name, v) = Format.fprintf fmt "%s=%g" name v in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "p"; "param" ] ~docv:"NAME=VALUE" ~doc)

(* --- workload selection --- *)

let workload_conv =
  (* Case-insensitive registry lookup; the error names every registered
     workload so typos are self-correcting.  The built-in service-graph
     workloads are opt-in (they would otherwise grow the pinned default
     verify/inject tables), so a registry miss falls back to
     [Service_workloads.find], which registers the named one on the way
     out. *)
  let parse s =
    match Core.Workloads.find s with
    | Some w -> Ok w
    | None -> (
        match Core.Service_workloads.find s with
        | Some w -> Ok w
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown workload %S (registered: %s; on demand: %s)" s
                   (String.concat ", " (Core.Workloads.names ()))
                   (String.concat ", " (Core.Service_workloads.names ())))))
  in
  let print fmt (w : Core.Workload.t) =
    Format.pp_print_string fmt w.Core.Workload.name
  in
  Arg.conv (parse, print)

let workload_pos_args =
  let doc = "Workloads by registry name (default: every registered one)." in
  Arg.(
    value
    & pos_all workload_conv (Core.Workloads.all ())
    & info [] ~docv:"WORKLOAD" ~doc)

(* --- parallelism --- *)

let jobs =
  let doc =
    "Worker domains for parallel sweeps (default: the runtime's \
     recommended domain count).  $(b,-j 1) forces the serial path."
  in
  Arg.(
    value
    & opt int (Dvf_util.Parallel.recommended_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let check_jobs jobs =
  if jobs <= 0 then begin
    Printf.eprintf "error: -j expects a positive integer (got %d)\n" jobs;
    exit 1
  end;
  jobs

(* --- hierarchy / sharding --- *)

let levels =
  let doc =
    "Cache hierarchy depth (1..3).  Levels past L1 keep the base \
     geometry's associativity and line size with 8x the sets per level \
     and report their own per-level statistics; the default 1 is the \
     single-cache behaviour."
  in
  Arg.(value & opt int 1 & info [ "levels" ] ~docv:"N" ~doc)

let check_levels levels =
  if levels < 1 || levels > 3 then begin
    Printf.eprintf "error: --levels expects 1..3 (got %d)\n" levels;
    exit 1
  end;
  levels

let shards =
  let doc =
    "Set-index partitions for the sharded replay strategy (positive \
     power of two; default: the largest power of two <= --jobs).  \
     Results are bit-identical at any shard count."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let check_shards shards =
  match shards with
  | None -> None
  | Some s when s > 0 && s land (s - 1) = 0 -> Some s
  | Some s ->
      Printf.eprintf
        "error: --shards expects a positive power of two (got %d)\n" s;
      exit 1

(* --- time windows --- *)

let bins =
  let doc =
    "Time windows per run for time-resolved reports: the logical clock \
     (one tick per trace event) is split into $(docv) equal windows."
  in
  Arg.(
    value
    & opt int Cachesim.Residency.default_bins
    & info [ "bins" ] ~docv:"N" ~doc)

let check_bins bins =
  if bins < 1 then begin
    Printf.eprintf "error: --bins expects a positive integer (got %d)\n" bins;
    exit 1
  end;
  bins

(* --- persistent tape store --- *)

let tape_store =
  let doc =
    "Persist captured trace tapes in $(docv) (created if missing) and \
     reuse them across runs: a warm store skips workload capture \
     entirely and replays straight from disk.  Entries are \
     content-addressed by (workload, size, seed, format version); \
     corrupt or stale entries are evicted and recaptured.  Results are \
     bit-identical with or without the store."
  in
  Arg.(value & opt (some string) None & info [ "tape-store" ] ~docv:"DIR" ~doc)

(* Open the store (if requested) against the run's telemetry collector,
   so store/hits, store/misses and load/save byte counters land in the
   same --metrics document as everything else. *)
let open_tape_store ~telemetry = function
  | None -> None
  | Some dir -> Some (Memtrace.Tape_store.create ~telemetry ~dir ())

(* --- campaign knobs (dvf inject / dvf chaos / dvf windows) --- *)

let seed =
  let doc = "Campaign seed; trial RNGs are derived from it." in
  Arg.(
    value
    & opt int Core.Injection.default_seed
    & info [ "seed" ] ~docv:"SEED" ~doc)

let csv =
  let doc = "Also write the report rows to $(docv) as CSV." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let trials =
  let doc =
    "Trials per campaign target — per structure for bit flips, per \
     endpoint for component kills (default: the fault model's own)."
  in
  Arg.(value & opt (some int) None & info [ "trials" ] ~docv:"N" ~doc)

let kill_fraction =
  let doc =
    "Fraction of components killed per chaos trial, in [0, 1]; rounded \
     to the nearest whole component count.  0 kills nothing (every \
     trial is a clean run)."
  in
  Arg.(
    value
    & opt float Core.Fault_model.default_kill_fraction
    & info [ "kill-fraction" ] ~docv:"F" ~doc)

let check_kill_fraction f =
  if (not (Float.is_finite f)) || f < 0.0 || f > 1.0 then begin
    Printf.eprintf "error: --kill-fraction expects a value in [0, 1] (got %g)\n"
      f;
    exit 1
  end;
  f

(* The knobs every campaign subcommand shares, validated once:
   [dvf inject] and [dvf chaos] used to re-declare this plumbing. *)
type campaign = {
  c_jobs : int;
  c_trials : int option;
  c_seed : int;
  c_csv : string option;
  c_metrics : string option;
}

(* --- telemetry --- *)

let metrics =
  let doc =
    "Write machine-readable run metrics (phase wall-clock spans, \
     throughput counters and gauges) to $(docv) as versioned JSON.  \
     Collection is off — and costs nothing — when this option is absent, \
     and never changes the computed results."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* [with_metrics metrics f] runs [f] with a collector matching the
   [--metrics] choice: the zero-cost null sink when absent, a fresh
   enabled collector (serialized to the file afterwards) when present.
   The confirmation goes to stderr so stdout stays byte-identical with
   and without --metrics. *)
let with_metrics metrics f =
  match metrics with
  | None -> f Dvf_util.Telemetry.null
  | Some path ->
      let telemetry = Dvf_util.Telemetry.create () in
      let result = f telemetry in
      Dvf_util.Telemetry.write_file telemetry path;
      Printf.eprintf "metrics written to %s\n" path;
      result

let campaign_term =
  let make jobs trials seed csv metrics =
    let jobs = check_jobs jobs in
    (match trials with
    | Some t when t < 1 ->
        Printf.eprintf "error: --trials expects a positive integer (got %d)\n" t;
        exit 1
    | _ -> ());
    { c_jobs = jobs; c_trials = trials; c_seed = seed; c_csv = csv;
      c_metrics = metrics }
  in
  Term.(const make $ jobs $ trials $ seed $ csv $ metrics)
