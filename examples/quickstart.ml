(* Quickstart: model a small application's data structures with the
   CGPMAC access patterns and compute each structure's Data Vulnerability
   Factor (paper Eq. 1-2).

   Run with: dune exec examples/quickstart.exe *)

module Ap = Access_patterns

let () =
  (* A toy stencil application with three structures:
     - [grid]:   1 M doubles, swept sequentially and written back;
     - [coeffs]: 4 K doubles, visited randomly ~16 times per timestep;
     - [halo]:   16 K doubles, strided exchange buffer. *)
  let spec =
    Ap.App_spec.make ~app_name:"stencil-demo"
      ~structures:
        [
          {
            Ap.App_spec.name = "grid";
            bytes = 8 * 1_000_000;
            pattern =
              Some
                (Ap.Pattern.Stream
                   (Ap.Streaming.make ~writeback:true ~elem_size:8
                      ~elements:1_000_000 ~stride:1 ()));
          };
          {
            Ap.App_spec.name = "coeffs";
            bytes = 8 * 4_096;
            pattern =
              Some
                (Ap.Pattern.Random
                   (Ap.Random_access.make ~elements:4_096 ~elem_size:8
                      ~visits:16 ~iterations:1_000 ~cache_ratio:0.5 ()));
          };
          {
            Ap.App_spec.name = "halo";
            bytes = 8 * 16_384;
            pattern =
              Some
                (Ap.Pattern.Stream
                   (Ap.Streaming.make ~elem_size:8 ~elements:16_384 ~stride:8 ()));
          };
        ]
      ()
  in
  (* Pick a cache (Table IV's largest), estimate execution time with the
     roofline model, and evaluate Eq. 1 per structure. *)
  let cache = Cachesim.Config.profiling_4mb in
  let time =
    Core.Perf.app_time Core.Perf.default_machine ~cache ~flops:20_000_000 spec
  in
  let dvf =
    Core.Dvf.of_spec ~cache ~fit:(Core.Ecc.fit Core.Ecc.No_ecc) ~time spec
  in
  Format.printf "%a@." Core.Dvf.pp_app dvf;
  (* The structure with the highest DVF is where selective protection
     (e.g. software checksums, replication) pays off most. *)
  let most_vulnerable =
    List.fold_left
      (fun (best : Core.Dvf.structure_dvf) s ->
        if s.Core.Dvf.dvf > best.Core.Dvf.dvf then s else best)
      (List.hd dvf.Core.Dvf.structures)
      dvf.Core.Dvf.structures
  in
  Format.printf "@.protect '%s' first: it carries %.0f%% of the application DVF@."
    most_vulnerable.Core.Dvf.name
    (100.0 *. most_vulnerable.Core.Dvf.dvf /. dvf.Core.Dvf.total)
