(* Looking under the hood: instrument a kernel with the tracked-array
   substrate (the reproduction's Pin), stream its references through the
   LRU cache simulator, and compare per-structure traffic against the
   analytical model — the Fig. 4 methodology on one kernel.

   Run with: dune exec examples/trace_explorer.exe *)

let () =
  let params = Kernels.Barnes_hut.make_params ~theta:0.5 500 in
  let cache_config = Cachesim.Config.small_verification in

  (* Wire a recorder with two sinks: the cache simulator and a counter. *)
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.create () in
  let cache = Cachesim.Cache.create cache_config in
  ignore (Memtrace.Recorder.add_sink recorder (Memtrace.Recorder.cache_sink cache));
  let counting_sink, count = Memtrace.Recorder.counting_sink () in
  ignore (Memtrace.Recorder.add_sink recorder counting_sink);

  let result = Kernels.Barnes_hut.run registry recorder params in
  Cachesim.Cache.flush cache;

  Printf.printf "Barnes-Hut, %d particles, theta = %.1f\n" params.Kernels.Barnes_hut.particles
    params.Kernels.Barnes_hut.theta;
  Printf.printf "  quadtree nodes:            %d\n" result.Kernels.Barnes_hut.nodes;
  Printf.printf "  avg tree visits / particle: %.1f (the model's k)\n"
    result.Kernels.Barnes_hut.avg_visits;
  Printf.printf "  hot (always-visited) nodes: %d\n" result.Kernels.Barnes_hut.hot_nodes;
  Printf.printf "  memory references traced:   %d\n\n" (count ());

  let stats = Cachesim.Cache.stats cache in
  let spec = Kernels.Barnes_hut.spec ~result params in
  let modeled =
    Access_patterns.App_spec.main_memory_accesses ~cache:cache_config spec
  in
  let t =
    Dvf_util.Table.create
      ~title:
        (Format.asprintf "Per-structure traffic on '%a'" Cachesim.Config.pp
           cache_config)
      [
        ("structure", Dvf_util.Table.Left); ("lookups", Dvf_util.Table.Right);
        ("misses", Dvf_util.Table.Right); ("writebacks", Dvf_util.Table.Right);
        ("mem accesses", Dvf_util.Table.Right); ("model", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun region ->
      let owner = region.Memtrace.Region.id in
      let c = Cachesim.Stats.owner_counters stats owner in
      Dvf_util.Table.add_row t
        [
          region.Memtrace.Region.name;
          string_of_int (c.Cachesim.Stats.reads + c.Cachesim.Stats.writes);
          string_of_int c.Cachesim.Stats.misses;
          string_of_int c.Cachesim.Stats.writebacks;
          string_of_int (Cachesim.Stats.main_memory_accesses stats owner);
          Printf.sprintf "%.0f"
            (List.assoc region.Memtrace.Region.name modeled);
        ])
    (Memtrace.Region.regions registry);
  Dvf_util.Table.print t
