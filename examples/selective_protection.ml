(* Selective protection — the design loop the paper motivates: rank an
   application's data structures by DVF, then find the smallest set whose
   protection meets a resilience target, instead of paying for blanket
   protection.

   Run with: dune exec examples/selective_protection.exe *)

let () =
  let cache = Cachesim.Config.profiling_4mb in
  List.iter
    (fun kernel ->
      let instance = Core.Workloads.profiling_instance kernel in
      let time =
        Core.Perf.app_time Core.Perf.default_machine ~cache
          ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
      in
      let app =
        Core.Dvf.of_spec ~cache ~fit:(Core.Ecc.fit Core.Ecc.No_ecc) ~time
          instance.Core.Workload.spec
      in
      Printf.printf "=== %s (unprotected DVF_a %.4g) ===\n"
        instance.Core.Workload.label app.Core.Dvf.total;
      let curve = Core.Selective.coverage_curve ~scheme:Core.Ecc.Chipkill app in
      Dvf_util.Table.print (Core.Selective.to_table curve);
      (match
         Core.Selective.structures_for_target ~scheme:Core.Ecc.Chipkill
           ~target_fraction:0.10 app
       with
      | [] -> Printf.printf "already within 10%% of target\n\n"
      | names ->
          Printf.printf
            "-> chipkill-protecting {%s} keeps <= 10%% of the vulnerability\n\n"
            (String.concat ", " names)))
    [ Core.Workloads.vm; Core.Workloads.cg; Core.Workloads.mc ]
