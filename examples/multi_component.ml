(* Beyond main memory: DVF for the cache hierarchy (the paper's §I
   generalization).  The same application model yields a DVF per hardware
   component — the memory sees a structure's misses against its full
   footprint; the cache sees every load/store against only the bytes it
   actually holds.  Which component's protection a structure needs most
   depends on its access pattern.

   Run with: dune exec examples/multi_component.exe *)

let () =
  let cache = Cachesim.Config.profiling_4mb in
  List.iter
    (fun kernel ->
      let instance = Core.Workloads.profiling_instance kernel in
      let time =
        Core.Perf.app_time Core.Perf.default_machine ~cache
          ~flops:instance.Core.Workload.flops instance.Core.Workload.spec
      in
      let both =
        Core.Component.both ~cache ~time instance.Core.Workload.spec
      in
      Dvf_util.Table.print (Core.Component.to_table both))
    [ Core.Workloads.vm; Core.Workloads.mc ];
  print_endline
    "Streaming structures barely reuse the cache (memory dominates);\n\
     cache-resident hot data flips the dominant component — the signal a\n\
     designer needs to choose between DRAM ECC and SRAM parity/ECC."
