(* Hardware-protection study (paper §V-B, Fig. 7): how much performance is
   it worth sacrificing for ECC, and which code should you pick?

   Run with: dune exec examples/ecc_tradeoff.exe *)

let () =
  let cache = Cachesim.Config.profiling_4mb in
  let instance = Core.Workloads.profiling_instance Core.Workloads.vm in
  let spec = instance.Core.Workload.spec in
  let base_time =
    Core.Perf.app_time Core.Perf.default_machine ~cache
      ~flops:instance.Core.Workload.flops spec
  in
  Printf.printf "Application: %s, unprotected DVF_a = %.4g\n\n"
    instance.Core.Workload.label
    (Core.Dvf.of_spec ~cache ~fit:(Core.Ecc.fit Core.Ecc.No_ecc)
       ~time:base_time spec)
      .Core.Dvf.total;
  List.iter
    (fun scheme ->
      if scheme <> Core.Ecc.No_ecc then begin
        let degradation, dvf =
          Core.Ecc.optimal_degradation ~cache ~base_time ~max_degradation:0.30
            ~steps:60 scheme spec
        in
        Printf.printf
          "%-18s floor FIT %-8g best degradation %4.1f%%  ->  DVF %.4g\n"
          (Core.Ecc.name scheme) (Core.Ecc.fit scheme) (100.0 *. degradation)
          dvf
      end)
    Core.Ecc.all;
  print_newline ();
  (* Sweep a few degradation levels to show the U-shape. *)
  let t =
    Dvf_util.Table.create ~title:"DVF vs performance invested in protection"
      [
        ("degradation %", Dvf_util.Table.Right);
        ("SECDED", Dvf_util.Table.Right); ("Chipkill", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun pct ->
      let d = float_of_int pct /. 100.0 in
      let dvf scheme =
        (Core.Ecc.protected_dvf ~cache ~base_time ~degradation:d scheme spec)
          .Core.Dvf.total
      in
      Dvf_util.Table.add_row t
        [
          string_of_int pct;
          Dvf_util.Table.cell_float (dvf Core.Ecc.Secded);
          Dvf_util.Table.cell_float (dvf Core.Ecc.Chipkill);
        ])
    [ 0; 2; 5; 10; 20; 30 ];
  Dvf_util.Table.print t;
  Printf.printf
    "Past the protection's full strength (~5%%), extra slowdown only\n\
     lengthens the exposure window and vulnerability rises again.\n"
