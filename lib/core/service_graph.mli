(** Service dependency graphs — the workload family that carries DVF
    beyond single-kernel main memory (paper §I: DVF applies to any
    component whose errors corrupt application outcomes).

    A graph is a validated DAG of components (services, queues, stores)
    rooted at a client, plus a weighted endpoint mix in the style of the
    DeathStarBench resilience models: each endpoint names the component
    set that must be alive — and reachable from the client along call
    edges — for a request of that class to succeed.

    Two consumers share the declaration:
    - {!spec}/{!trace} synthesize the endpoint mix into memory traffic
      over each component's resident state, so a service graph flows
      through the existing tape/replay/hierarchy pipeline (DVF tables,
      [--levels], [--time-weighted], [dvf windows]) like any kernel;
    - {!evaluator} answers availability queries ("with these components
      killed, does this endpoint still succeed?") for
      {!Fault_model.component_kill} chaos campaigns. *)

type kind = Service | Queue | Store

val kind_name : kind -> string
(** ["service"], ["queue"], ["store"]. *)

type component = {
  name : string;
  kind : kind;
  state_bytes : int;   (** resident state: caches, buffers, rows *)
  calls : string list; (** direct downstream dependencies *)
}

type endpoint = {
  endpoint : string;
  targets : string list;
      (** components that must be alive and reachable for a request to
          succeed; the client is implicit in every endpoint *)
  weight : float;  (** share of the request mix, normalized to sum 1 *)
}

type t = private {
  graph_name : string;
  client : string;  (** entry component; every request starts here *)
  components : component list;
  endpoints : endpoint list;
}

val component :
  ?kind:kind -> ?calls:string list -> name:string -> state_bytes:int ->
  unit -> component
(** [kind] defaults to [Service], [calls] to []. *)

val endpoint : name:string -> weight:float -> targets:string list -> endpoint

val make :
  name:string -> client:string -> components:component list ->
  endpoints:endpoint list -> unit -> t
(** Validates the declaration and normalizes endpoint weights to sum 1.
    Raises [Invalid_argument] naming the offender when: a component name
    is empty or duplicated; a call or endpoint target names an unknown
    component; a component calls itself; the call graph has a cycle; the
    client is unknown; an endpoint name is duplicated or its target list
    empty; a weight is non-positive or non-finite; or a target is
    unreachable from the client even with every component alive. *)

val component_names : t -> string list
(** Declaration order. *)

val endpoint_names : t -> string list
(** Declaration order. *)

val touched : t -> endpoint -> component list
(** The components a request of this endpoint touches: the client plus
    the endpoint's targets, in graph declaration order. *)

val available : t -> killed:string list -> string -> bool
(** [available t ~killed endpoint]: with the [killed] components down,
    is the endpoint still served?  True iff the client is alive and
    every target is reachable from the client along call edges through
    alive components only.  Raises [Invalid_argument] on unknown
    endpoint or killed-component names. *)

val evaluator : t -> killed:int array -> endpoint:int -> bool
(** Index-based {!available} for campaign inner loops ([killed] holds
    component indices, [endpoint] an endpoint index, both in declaration
    order); adjacency is precomputed when the graph is partially
    applied. *)

val spec : requests:int -> t -> Access_patterns.App_spec.t
(** The CGPMAC view of [requests] requests drawn from the endpoint mix:
    one structure per touched component (client included), each modeled
    as {!Access_patterns.Random_access} visits into its resident state —
    per-request touch runs sized by component kind, iteration counts
    from the mix weights, cache shares proportional to state size.
    Raises [Invalid_argument] on [requests < 1]. *)

val flops : requests:int -> t -> int
(** Request-handling work for the {!Perf} roofline: proportional to the
    elements touched by the expected mix. *)

val trace :
  ?seed:int -> requests:int -> t -> Memtrace.Region.t ->
  Memtrace.Recorder.t -> unit
(** Emit the synthesized reference stream {!spec} models: one region per
    touched component, a construction traverse of each, then [requests]
    requests — endpoints scheduled by largest-remainder weighted
    round-robin (so executed counts match the mix deterministically),
    each touching its components with one contiguous random run per
    component.  Offsets come from per-component splitmix64 children of
    [seed] (default 42), so the trace is bit-reproducible. *)

val social_network : t
(** The built-in example: a DeathStarBench-style social network — web
    client, timeline/compose/user services, write-behind queue and three
    backing stores, with a 60/30/10 home-timeline / user-timeline /
    compose-post request mix. *)
