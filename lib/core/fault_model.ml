module Fi = Kernels.Fault_injection

type t = {
  model : string;
  label : string;
  targets : string list;
  default_trials : int;
  trial : target:int -> Dvf_util.Rng.t -> Fi.outcome * float;
}

let of_injector (inj : Fi.injector) =
  let structures = Array.of_list inj.Fi.structures in
  {
    model = "bit-flip";
    label = inj.Fi.label;
    targets = inj.Fi.structures;
    default_trials = inj.Fi.default_trials;
    trial = (fun ~target rng -> inj.Fi.trial ~structure:structures.(target) rng);
  }

let default_kill_fraction = 0.1

let kill_count ~kill_fraction ~components =
  if
    (not (Float.is_finite kill_fraction))
    || kill_fraction < 0.0 || kill_fraction > 1.0
  then
    invalid_arg
      (Printf.sprintf "Fault_model.kill_count: kill fraction %g not in [0, 1]"
         kill_fraction);
  Dvf_util.Maths.clampi ~lo:0 ~hi:components
    (int_of_float (Float.round (kill_fraction *. float_of_int components)))

let component_kill ?(kill_fraction = default_kill_fraction) g =
  let components = List.length g.Service_graph.components in
  let k = kill_count ~kill_fraction ~components in
  let served = Service_graph.evaluator g in
  let radius = float_of_int k /. float_of_int components in
  {
    model = "component-kill";
    label =
      Printf.sprintf "%s (kill %d of %d components per trial)"
        g.Service_graph.graph_name k components;
    targets = Service_graph.endpoint_names g;
    default_trials = 1000;
    trial =
      (fun ~target rng ->
        let killed =
          Dvf_util.Rng.sample_without_replacement rng ~n:components ~k
        in
        let outcome =
          if served ~killed ~endpoint:target then Fi.Benign else Fi.Sdc
        in
        (outcome, radius));
  }
