(** The paper's use cases and static tables (§V, Tables II, IV–VII).

    {!fig6} — CG vs PCG vulnerability over problem size: the paper finds
    PCG slightly {e more} vulnerable than CG at small sizes (its extra
    working set dominates) and {e less} vulnerable at large sizes (its
    faster convergence dominates).

    {!fig7} — DVF versus the performance degradation invested in ECC:
    protection lowers DVF steeply until the scheme reaches full strength
    (~5 %), after which the longer exposure raises it again; chipkill
    sits far below SECDED. *)

type fig6_row = {
  n : int;
  cg_iterations : int;
  pcg_iterations : int;
  cg_time : float;
  pcg_time : float;
  cg_dvf : float;
  pcg_dvf : float;
}

val fig6 :
  ?jobs:int -> ?telemetry:Dvf_util.Telemetry.t -> ?machine:Perf.machine ->
  ?fit:float -> ?cache:Cachesim.Config.t -> ?sizes:int list -> unit ->
  fig6_row list
(** Sweep problem sizes (default 100..800 in steps of 100, the paper's
    x-axis) solving the same SPD system with CG and Jacobi-PCG (dense
    auxiliary M, per Algorithm 5); iteration counts are measured on the
    real solvers, times come from the roofline model, cache defaults to
    the largest Table IV configuration (as in §V).  [jobs] (default
    [Domain.recommended_domain_count ()]) runs the independent sweep
    points on that many domains; output order is unchanged.

    [telemetry] (default {!Dvf_util.Telemetry.null}) records a
    ["fig6/points"] counter, per-point ["fig6/point"] span, the sweep's
    ["fig6/total"] wall-clock, and pool wait/compute when [jobs > 1]. *)

val fig6_table : fig6_row list -> Dvf_util.Table.t

type fig7_row = {
  degradation : float;     (** fraction of performance lost *)
  secded_dvf : float;
  chipkill_dvf : float;
}

val fig7 :
  ?machine:Perf.machine -> ?cache:Cachesim.Config.t -> ?steps:int ->
  ?max_degradation:float -> unit -> fig7_row list
(** VM (Table VI size) under SECDED and chipkill across performance
    degradations 0..30 % (the paper's x-axis). *)

val fig7_table : fig7_row list -> Dvf_util.Table.t

val fig7_optimum : fig7_row list -> float * float
(** [(secded_opt, chipkill_opt)] degradations minimizing DVF. *)

type sweep_row = {
  capacity : int;        (** bytes *)
  sweep_cache : Cachesim.Config.t;
  dvf_a : float;
  n_ha : float;            (** analytic (CGPMAC) total main-memory accesses *)
  sim_n_ha : float option; (** trace-driven total, when [simulate] was set *)
}

val cache_sweep :
  ?jobs:int -> ?telemetry:Dvf_util.Telemetry.t -> ?machine:Perf.machine ->
  ?fit:float -> ?line:int ->
  ?associativity:int -> ?capacities:int list -> ?simulate:bool ->
  ?store:Memtrace.Tape_store.t ->
  ?capture:Verify.capture ->
  Workload.instance ->
  sweep_row list
(** Generalization of Fig. 5's x-axis: DVF_a of one application over a
    continuous range of cache capacities (default 4 KB .. 16 MB doubling,
    8-way, 64 B lines).  Exposes each kernel's working-set cliffs at full
    resolution instead of Table IV's four points.  [jobs] and [telemetry]
    as in {!fig6} (telemetry paths use the ["cache_sweep"] label).

    [simulate] (default [false]) additionally runs the trace-driven
    simulator over every sweep geometry: the workload's trace is captured
    {e once} into a {!Memtrace.Tape} ({!Verify.capture}) and all
    geometries are driven by fused chunk walks
    ({!Memtrace.Tape.replay_fused}) — one walk for the whole sweep at
    [jobs = 1], one per job group otherwise; results are independent of
    the grouping.  Each row's [sim_n_ha] then holds the simulated total
    main-memory accesses next to the analytic [n_ha].  Telemetry adds
    ["cache_sweep/<workload>/replay"] spans plus the shared
    ["tape/*"]/["cache/accesses"] counters and
    ["verify/capture_total"]/["verify/replay_total"] accumulators.

    [store] (only meaningful with [simulate]) routes the capture through
    a persistent tape store — a warm store skips kernel tracing
    entirely; see {!Verify.capture}.  [capture] supplies an already-made
    capture of {e this} [instance] instead (the [dvf serve] path, which
    holds every workload's capture in memory); it must belong to the
    same instance, and when given, [store] is not consulted. *)

val cache_sweep_table : label:string -> sweep_row list -> Dvf_util.Table.t

(** Static table renderers. *)

(** Table II: the six algorithms. *)
val table2 : unit -> Dvf_util.Table.t

(** Table IV: cache configurations. *)
val table4 : unit -> Dvf_util.Table.t

(** Table V: verification input sizes. *)
val table5 : unit -> Dvf_util.Table.t

(** Table VI: profiling input sizes. *)
val table6 : unit -> Dvf_util.Table.t

(** Table VII: FIT with ECC in place. *)
val table7 : unit -> Dvf_util.Table.t
