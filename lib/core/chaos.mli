(** Chaos campaigns: component-kill fault models over service-graph
    workloads, reported as availability alongside DVF.

    Each trial kills a random component subset of the workload's
    {!Workload.t.topology} and asks, per endpoint, whether requests
    still succeed; the per-endpoint loss tallies come from the same
    campaign engine as [dvf inject] ({!Injection.run_model} over
    {!Fault_model.component_kill}), so chaos runs inherit the
    splitmix64 seeding grid and parallel bit-identity.  The report pairs
    each endpoint's availability (with its Wilson interval) against the
    summed DVF of the components the endpoint touches, and ranks the two
    with Spearman rho — the paper's §VI comparison, lifted from
    structures to service endpoints. *)

type row = {
  endpoint : string;
  weight : float;        (** share of the request mix *)
  trials : int;
  lost : int;            (** trials where the endpoint went unserved *)
  availability : float;  (** 1 - lost/trials *)
  ci : float * float;    (** 95% Wilson interval on the availability *)
  dvf : float;
      (** analytical DVF summed over the endpoint's touched components
          (client included), from the profiling-scale spec *)
}

type report = {
  workload : string;
  label : string;            (** fault-model label, e.g. the kill arity *)
  kill_fraction : float;
  killed_per_trial : int;
  components : int;
  seed : int;
  rows : row list;           (** endpoint declaration order *)
  requests_lost : float;
      (** mix-weighted loss rate: the fraction of all requests lost,
          [sum weight_e * (1 - availability_e)] *)
  rho : float option;
      (** Spearman rho, availability vs DVF across endpoints; [None]
          when undefined (fewer than two endpoints, or no rank
          variance) *)
}

val default_trials : int
(** 1000 — {!Fault_model.component_kill}'s default. *)

val run :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> ?kill_fraction:float ->
  ?cache:Cachesim.Config.t -> ?fit:float -> ?machine:Perf.machine ->
  Workload.t -> report option
(** Run one workload's chaos campaign ([None] if it has no topology).
    Defaults mirror {!Injection}: seed {!Injection.default_seed}, jobs 1
    (serial), cache {!Cachesim.Config.profiling_4mb}, fit
    {!Injection.default_fit}; [kill_fraction] defaults to
    {!Fault_model.default_kill_fraction}.  Telemetry lands under the
    ["chaos/"] namespace.  Results are bit-identical at any job
    count. *)

val run_all :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> ?kill_fraction:float ->
  ?cache:Cachesim.Config.t -> ?fit:float -> ?machine:Perf.machine ->
  Workload.t list -> report list
(** {!run} for every workload that has a topology, sharing one domain
    pool; the rest are skipped. *)

val to_table : report -> Dvf_util.Table.t
(** Per-endpoint mix weight, loss counts, availability with its Wilson
    interval, and DVF. *)

val pp_summary : Format.formatter -> report -> unit
(** The mix-weighted loss rate and the availability-vs-DVF rho. *)

val to_csv : report list -> string
(** One row per (workload, endpoint); floats in [%.17g] so the CSV
    round-trips exactly. *)
