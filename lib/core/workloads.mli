(** The six numerical kernels (paper Table II) with the paper's input
    sizes (Tables V and VI), registered in the open {!Workload} registry.

    Referencing this module guarantees the built-ins are registered: its
    initializer runs before any consumer code.  All lookups below are
    case-insensitive and see runtime registrations (e.g. workloads loaded
    from Aspen model files) as well as the six built-ins. *)

val vm : Workload.t
val cg : Workload.t
val nb : Workload.t
val mg : Workload.t
val ft : Workload.t
val mc : Workload.t

val all : unit -> Workload.t list
(** Every registered workload, Table II order first. *)

val names : unit -> string list

val find : string -> Workload.t option
(** Case-insensitive registry lookup. *)

val of_name : string -> Workload.t
(** Raises [Invalid_argument] naming the candidates on failure. *)

val register : Workload.t -> unit
(** Re-export of {!Workload.register}. *)

val verification_instance : Workload.t -> Workload.instance
(** Table V input sizes — small enough for trace-driven simulation. *)

val profiling_instance : Workload.t -> Workload.instance
(** Table VI input sizes (MG's class W scaled to 64^3 as documented in
    DESIGN.md). *)

val input_size_description : Workload.mode -> Workload.t -> string
(** The "Input size" column of Table V / Table VI. *)
