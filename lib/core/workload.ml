type mode = [ `Verification | `Profiling ]

type instance = {
  workload : string;
  label : string;
  spec : Access_patterns.App_spec.t;
  flops : int;
  trace : Memtrace.Region.t -> Memtrace.Recorder.t -> unit;
}

type t = {
  name : string;
  computational_class : string;
  major_structures : string list;
  pattern_classes : string;
  example_benchmark : string;
  input_size : mode -> string;
  instance : mode -> instance;
  injector : (unit -> Kernels.Fault_injection.injector) option;
  aspen_source : string option;
  topology : Service_graph.t option;
}

(* The smart constructor every registrant goes through: optional fields
   default here, so the record can grow (as it did with [injector],
   [aspen_source] and now [topology]) without touching each caller. *)
let make ~name ~computational_class ~major_structures ~pattern_classes
    ~example_benchmark ~input_size ~instance ?injector ?aspen_source ?topology
    () =
  {
    name;
    computational_class;
    major_structures;
    pattern_classes;
    example_benchmark;
    input_size;
    instance;
    injector;
    aspen_source;
    topology;
  }

let key name = String.uppercase_ascii name

(* The six built-ins register at module-initialization time in the main
   domain; the mutex guards runtime registrations (e.g. from a loaded
   model file) against concurrent lookups in parallel sweeps. *)
let lock = Mutex.create ()
let table : t list ref = ref []

let register w =
  Mutex.protect lock (fun () ->
      if List.exists (fun r -> key r.name = key w.name) !table then
        invalid_arg
          (Printf.sprintf "Workload.register: duplicate name %S" w.name);
      table := !table @ [ w ])

let find name =
  Mutex.protect lock (fun () ->
      List.find_opt (fun r -> key r.name = key name) !table)

let names () = Mutex.protect lock (fun () -> List.map (fun r -> r.name) !table)
let all () = Mutex.protect lock (fun () -> !table)

let of_name name =
  match find name with
  | Some w -> w
  | None ->
      invalid_arg
        (Printf.sprintf "Workload.of_name: unknown workload %S (registered: %s)"
           name
           (match names () with
           | [] -> "none"
           | ns -> String.concat ", " ns))
