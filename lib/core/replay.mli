(** Synthetic trace generation from a CGPMAC application spec.

    Native workloads trace their instrumented implementation; a workload
    loaded from an Aspen model file has no implementation to run.  This
    module closes the Fig. 4 loop for such workloads by replaying the
    spec's declared access patterns as a memory trace:

    - a streaming pattern emits one strided traverse (reads, plus a store
      per element when the pattern writes back);
    - a template emits its reference sequence with its store flags;
    - a random pattern emits the construction pass the model assumes
      (one sequential touch per element) followed by [iterations] rounds
      of [visits] uniformly-drawn element visits in runs of [run_length],
      from a fixed-seed generator;
    - a composition emits its phases in order, [iterations] times; the
      occurrences of a phase are interleaved by slicing each occurrence's
      reference stream into [max times] chunks emitted round-robin — a
      dense matrix–vector product becomes matrix row, vector traverse,
      matrix row, ... exactly as the kernel it models.

    The replay realizes the model's own assumptions, so simulating it is
    a consistency check of model vs simulator (the spirit of Fig. 4), not
    an independent measurement of a real implementation. *)

val trace :
  ?telemetry:Dvf_util.Telemetry.t ->
  Access_patterns.App_spec.t ->
  Memtrace.Region.t ->
  Memtrace.Recorder.t ->
  unit
(** Registers one region per spec structure, then replays the patterns.
    Deterministic: equal specs yield equal traces.  [telemetry] (default
    {!Dvf_util.Telemetry.null}) gets a ["replay"] span (nested under any
    open span) and a ["replay/events"] counter of references emitted. *)
