(** First-class fault models — the abstraction one campaign engine runs.

    A fault model is a grid of targets plus a trial function: given a
    target index and a per-trial RNG, perturb one run and classify the
    outcome.  {!Injection.run_model} fans the (target, trial) grid over
    {!Dvf_util.Parallel} domains with splitmix64-derived trial RNGs, so
    every model inherits the engine's contract for free: parallel runs
    are bit-identical to serial, tallies get Wilson intervals, and rates
    correlate against DVF via Spearman rho.

    Two implementations ship: {!of_injector} wraps the per-kernel
    bit-flip injectors (the paper's §VI methodology, [dvf inject]), and
    {!component_kill} draws random component-kill subsets of a service
    graph (chaos campaigns, [dvf chaos]). *)

type t = {
  model : string;          (** e.g. ["bit-flip"], ["component-kill"] *)
  label : string;          (** configuration label for reports *)
  targets : string list;
      (** the campaign grid: spec structures for bit flips, endpoints
          for component kills; one tallied campaign per target *)
  default_trials : int;
  trial :
    target:int -> Dvf_util.Rng.t -> Kernels.Fault_injection.outcome * float;
      (** run one perturbed trial against [targets[target]], classify
          it, and stamp a [0,1] fraction (flip time for bit flips,
          blast radius for kills).  Must draw all randomness from the
          supplied RNG — the bit-identity contract. *)
}

val of_injector : Kernels.Fault_injection.injector -> t
(** The bit-flip model: targets are the injector's structures and
    [trial ~target] is the injector's own trial on that structure, so an
    {!Injection.run_model} campaign over the wrapped model reproduces
    the historical [dvf inject] tallies bit for bit. *)

val kill_count : kill_fraction:float -> components:int -> int
(** Components killed per trial: [kill_fraction * components] rounded
    to nearest, clamped to [[0, components]].  Raises
    [Invalid_argument] unless [0 <= kill_fraction <= 1]. *)

val component_kill : ?kill_fraction:float -> Service_graph.t -> t
(** The chaos model over a service graph: targets are the graph's
    endpoints; each trial kills a uniformly random {!kill_count}-sized
    component subset ({!Dvf_util.Rng.sample_without_replacement}) and
    asks {!Service_graph.evaluator} whether the endpoint survives —
    [Benign] when served, [Sdc] when the request is lost.  The stamp is
    the fraction of components down.  [kill_fraction] defaults to 0.1;
    at 0 every subset is empty, so the campaign is a clean run (all
    benign) — the chaos analogue of identity-flip. *)

val default_kill_fraction : float
(** 0.1. *)
