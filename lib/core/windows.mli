(** The vulnerability-vs-time report behind `dvf windows`.

    Correlates two independently derived views of the same question —
    {e when} during a run is a structure's data at risk:

    - windowed residency from a timed replay
      ({!Verify.timed_level_snapshots} on the small verification cache):
      line-events resident (and dirty) per time window;
    - windowed ground truth from a flip-time-stamped injection campaign
      ({!Injection.run_timed}): SDC rate per window of the flip's
      arrival time.

    Per structure it reports Spearman's rho between windowed exposure
    and windowed SDC rate; across structures, the rho between the
    time-weighted DVF ({!Verify.tw_dvf}'s kernel) and the
    whole-campaign SDC rate.  Every number is derived from exact
    integer accumulators and order-independent trial RNGs, so reports
    are bit-identical at any job count and across the
    replay/fused/sharded strategies. *)

type bin_row = {
  w_workload : string;
  w_structure : string;
  bin : int;        (** 0-based window index *)
  lo : float;       (** window bounds, fractions of the run *)
  hi : float;
  resident : float; (** line-events resident in this window *)
  dirty : float;    (** the dirty share of [resident] *)
  trials : int;     (** trials whose flip landed in this window *)
  sdc : int;
}

type curve = {
  c_workload : string;
  c_structure : string;
  tw : float;               (** time-weighted DVF (bit-events) *)
  sdc_rate : float;         (** whole-campaign SDC rate *)
  rho_time : float option;  (** windowed exposure vs windowed SDC rate *)
}

type report = {
  r_cache : Cachesim.Config.t;
  r_bins : int;
  rows : bin_row list;      (** workload-major, structure, then window *)
  curves : curve list;
  rho_overall : float option;
      (** tw-DVF vs SDC rate across all structures *)
}

val run :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?strategy:Verify.strategy ->
  ?shards:int ->
  ?store:Memtrace.Tape_store.t ->
  ?seed:int ->
  ?trials:int ->
  ?bins:int ->
  ?workloads:Workload.t list -> unit -> report
(** Build the report over every workload with an injector ([workloads]
    defaults to the whole registry; others are skipped).  [seed]
    defaults to {!Injection.default_seed}, [trials] to each injector's
    default, [bins] to {!Cachesim.Residency.default_bins}; captures go
    through [store] when given (same key as `dvf verify`).  Raises
    [Invalid_argument] for the retrace strategy (no tape, no logical
    clock) or [bins <= 0]. *)

val to_table : report -> Dvf_util.Table.t
(** One row per (workload, structure, window). *)

val curve_table : report -> Dvf_util.Table.t
(** One row per structure: tw-DVF, SDC rate, windowed rho. *)

val pp_correlations : Format.formatter -> report -> unit
(** The per-structure and cross-structure Spearman lines. *)

val to_csv : report -> string
(** The windowed rows as CSV (the artifact CI uploads). *)
