(* The query engine behind [dvf serve] and [dvf query]: hold every
   workload's capture in memory (warmed once, optionally through a
   persistent tape store) and answer line-JSON requests against it.
   This module is protocol and computation only — no sockets, no
   stdin/stdout; the transport loop lives in the CLI, which feeds
   [handle_line]/[handle_batch] raw request lines and writes back the
   raw response lines they return. *)

module Telemetry = Dvf_util.Telemetry
module Json = Dvf_util.Json

let schema = "dvf-query"
let schema_version = 1

type t = {
  telemetry : Telemetry.t;
  store : Memtrace.Tape_store.t option;
  pool : Dvf_util.Parallel.Pool.t;
  workloads : Workload.t list;
  (* Both caches are keyed by lowercase registry name and guarded by
     [mutex]; request handlers run on pool domains. *)
  captures : (string, Verify.capture) Hashtbl.t;
  profiling : (string, Workload.instance) Hashtbl.t;
  mutex : Mutex.t;
  mutable requests : int;
}

let create ?(telemetry = Telemetry.null) ?store ?jobs ?workloads () =
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  {
    telemetry;
    store;
    pool = Dvf_util.Parallel.Pool.create ~telemetry ?jobs ();
    workloads;
    captures = Hashtbl.create 16;
    profiling = Hashtbl.create 16;
    mutex = Mutex.create ();
    requests = 0;
  }

let shutdown t = Dvf_util.Parallel.Pool.shutdown t.pool
let workload_names t = List.map (fun w -> w.Workload.name) t.workloads

let find_workload t name =
  let key = String.lowercase_ascii name in
  match
    List.find_opt
      (fun w -> String.lowercase_ascii w.Workload.name = key)
      t.workloads
  with
  | Some w -> w
  | None ->
      failwith
        (Printf.sprintf "unknown workload %S (serving: %s)" name
           (String.concat ", " (workload_names t)))

(* Request handlers run with [jobs = 1] — a handler must never fan work
   back onto [t.pool] (the pool's own domains would deadlock waiting on
   themselves); concurrency comes from [handle_batch] spreading whole
   requests across the pool instead. *)
let capture_for t (w : Workload.t) =
  let key = String.lowercase_ascii w.Workload.name in
  match
    Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.captures key)
  with
  | Some cap -> cap
  | None ->
      let cap =
        Verify.capture ~telemetry:t.telemetry ?store:t.store
          (Workloads.verification_instance w)
      in
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.captures key with
          | Some cap -> cap (* a concurrent request won the race *)
          | None ->
              Hashtbl.replace t.captures key cap;
              cap)

let profiling_instance_for t (w : Workload.t) =
  let key = String.lowercase_ascii w.Workload.name in
  match
    Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.profiling key)
  with
  | Some inst -> inst
  | None ->
      let inst = Workloads.profiling_instance w in
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.profiling key with
          | Some inst -> inst
          | None ->
              Hashtbl.replace t.profiling key inst;
              inst)

let warm t =
  Telemetry.span t.telemetry "serve/warm" @@ fun () ->
  ignore (Dvf_util.Parallel.Pool.map_list t.pool (capture_for t) t.workloads)

let warm_count t =
  Mutex.protect t.mutex (fun () -> Hashtbl.length t.captures)

(* {2 Row codecs}

   Floats are emitted by [Json.to_string] as [%.17g], which round-trips
   exactly; so a client that decodes these rows and renders them through
   [Verify.to_table] (etc.) reproduces the one-shot CLI output byte for
   byte. *)

let config_to_json (c : Cachesim.Config.t) =
  Json.Obj
    [
      ("name", Json.Str c.Cachesim.Config.name);
      ("associativity", Json.Int c.Cachesim.Config.associativity);
      ("sets", Json.Int c.Cachesim.Config.sets);
      ("line", Json.Int c.Cachesim.Config.line);
    ]

let get ~what k j =
  match Json.member k j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing field %S" what k)

let as_str ~what = function
  | Json.Str s -> s
  | _ -> failwith (what ^ ": expected a string")

let as_int ~what = function
  | Json.Int i -> i
  | _ -> failwith (what ^ ": expected an integer")

let as_float ~what = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> failwith (what ^ ": expected a number")

let str_field ~what k j = as_str ~what (get ~what k j)
let int_field ~what k j = as_int ~what (get ~what k j)
let float_field ~what k j = as_float ~what (get ~what k j)

let config_of_json j =
  let what = "cache config" in
  Cachesim.Config.make
    ~name:(str_field ~what "name" j)
    ~associativity:(int_field ~what "associativity" j)
    ~sets:(int_field ~what "sets" j)
    ~line:(int_field ~what "line" j)

let verify_row_to_json (r : Verify.row) =
  Json.Obj
    [
      ("workload", Json.Str r.Verify.workload);
      ("cache", config_to_json r.Verify.cache);
      ("structure", Json.Str r.Verify.structure);
      ("simulated", Json.Float r.Verify.simulated);
      ("modeled", Json.Float r.Verify.modeled);
    ]

let verify_row_of_json j =
  let what = "verify row" in
  {
    Verify.workload = str_field ~what "workload" j;
    cache = config_of_json (get ~what "cache" j);
    structure = str_field ~what "structure" j;
    simulated = float_field ~what "simulated" j;
    modeled = float_field ~what "modeled" j;
  }

let level_row_to_json (r : Verify.level_row) =
  Json.Obj
    [
      ("workload", Json.Str r.Verify.l_workload);
      ("base_cache", config_to_json r.Verify.base_cache);
      ("level", Json.Int r.Verify.level);
      ("level_cache", config_to_json r.Verify.level_cache);
      ("structure", Json.Str r.Verify.l_structure);
      ("accesses", Json.Float r.Verify.accesses);
      ("misses", Json.Float r.Verify.misses);
      ("writebacks", Json.Float r.Verify.l_writebacks);
    ]

let level_row_of_json j =
  let what = "level row" in
  {
    Verify.l_workload = str_field ~what "workload" j;
    base_cache = config_of_json (get ~what "base_cache" j);
    level = int_field ~what "level" j;
    level_cache = config_of_json (get ~what "level_cache" j);
    l_structure = str_field ~what "structure" j;
    accesses = float_field ~what "accesses" j;
    misses = float_field ~what "misses" j;
    l_writebacks = float_field ~what "writebacks" j;
  }

let floats_to_json a =
  Json.List (Array.to_list (Array.map (fun v -> Json.Float v) a))

let floats_of_json ~what = function
  | Json.List vs -> Array.of_list (List.map (as_float ~what) vs)
  | _ -> failwith (what ^ ": expected a list of numbers")

let time_row_to_json (r : Verify.time_row) =
  Json.Obj
    [
      ("workload", Json.Str r.Verify.t_workload);
      ("base_cache", config_to_json r.Verify.t_base);
      ("level", Json.Int r.Verify.t_level);
      ("level_cache", config_to_json r.Verify.t_cache);
      ("structure", Json.Str r.Verify.t_structure);
      ("horizon", Json.Int r.Verify.t_horizon);
      ("bins", Json.Int r.Verify.t_bins);
      ("clean_time", Json.Float r.Verify.clean_time);
      ("dirty_time", Json.Float r.Verify.dirty_time);
      ("fills", Json.Float r.Verify.t_fills);
      ("evictions", Json.Float r.Verify.t_evictions);
      ("flushes", Json.Float r.Verify.t_flushes);
      ("window", floats_to_json r.Verify.window);
      ("window_dirty", floats_to_json r.Verify.window_dirty);
    ]

let time_row_of_json j =
  let what = "time row" in
  {
    Verify.t_workload = str_field ~what "workload" j;
    t_base = config_of_json (get ~what "base_cache" j);
    t_level = int_field ~what "level" j;
    t_cache = config_of_json (get ~what "level_cache" j);
    t_structure = str_field ~what "structure" j;
    t_horizon = int_field ~what "horizon" j;
    t_bins = int_field ~what "bins" j;
    clean_time = float_field ~what "clean_time" j;
    dirty_time = float_field ~what "dirty_time" j;
    t_fills = float_field ~what "fills" j;
    t_evictions = float_field ~what "evictions" j;
    t_flushes = float_field ~what "flushes" j;
    window = floats_of_json ~what (get ~what "window" j);
    window_dirty = floats_of_json ~what (get ~what "window_dirty" j);
  }

let profile_row_to_json (r : Profile.row) =
  Json.Obj
    [
      ("workload", Json.Str r.Profile.workload);
      ("cache", config_to_json r.Profile.cache);
      ("structure", Json.Str r.Profile.structure);
      ("dvf", Json.Float r.Profile.dvf);
      ("n_ha", Json.Float r.Profile.n_ha);
      ("bytes", Json.Int r.Profile.bytes);
      ("time", Json.Float r.Profile.time);
    ]

let profile_row_of_json j =
  let what = "profile row" in
  {
    Profile.workload = str_field ~what "workload" j;
    cache = config_of_json (get ~what "cache" j);
    structure = str_field ~what "structure" j;
    dvf = float_field ~what "dvf" j;
    n_ha = float_field ~what "n_ha" j;
    bytes = int_field ~what "bytes" j;
    time = float_field ~what "time" j;
  }

let sweep_row_to_json (r : Experiments.sweep_row) =
  Json.Obj
    [
      ("capacity", Json.Int r.Experiments.capacity);
      ("cache", config_to_json r.Experiments.sweep_cache);
      ("dvf_a", Json.Float r.Experiments.dvf_a);
      ("n_ha", Json.Float r.Experiments.n_ha);
      ( "sim_n_ha",
        match r.Experiments.sim_n_ha with
        | Some v -> Json.Float v
        | None -> Json.Null );
    ]

let sweep_row_of_json j =
  let what = "sweep row" in
  {
    Experiments.capacity = int_field ~what "capacity" j;
    sweep_cache = config_of_json (get ~what "cache" j);
    dvf_a = float_field ~what "dvf_a" j;
    n_ha = float_field ~what "n_ha" j;
    sim_n_ha =
      (match get ~what "sim_n_ha" j with
      | Json.Null -> None
      | v -> Some (as_float ~what v));
  }

let chaos_row_to_json (r : Chaos.row) =
  let lo, hi = r.Chaos.ci in
  Json.Obj
    [
      ("endpoint", Json.Str r.Chaos.endpoint);
      ("weight", Json.Float r.Chaos.weight);
      ("trials", Json.Int r.Chaos.trials);
      ("lost", Json.Int r.Chaos.lost);
      ("availability", Json.Float r.Chaos.availability);
      ("ci_lo", Json.Float lo);
      ("ci_hi", Json.Float hi);
      ("dvf", Json.Float r.Chaos.dvf);
    ]

let chaos_row_of_json j =
  let what = "chaos row" in
  {
    Chaos.endpoint = str_field ~what "endpoint" j;
    weight = float_field ~what "weight" j;
    trials = int_field ~what "trials" j;
    lost = int_field ~what "lost" j;
    availability = float_field ~what "availability" j;
    ci = (float_field ~what "ci_lo" j, float_field ~what "ci_hi" j);
    dvf = float_field ~what "dvf" j;
  }

let chaos_report_to_json (r : Chaos.report) =
  Json.Obj
    [
      ("workload", Json.Str r.Chaos.workload);
      ("label", Json.Str r.Chaos.label);
      ("kill_fraction", Json.Float r.Chaos.kill_fraction);
      ("killed_per_trial", Json.Int r.Chaos.killed_per_trial);
      ("components", Json.Int r.Chaos.components);
      ("seed", Json.Int r.Chaos.seed);
      ("requests_lost", Json.Float r.Chaos.requests_lost);
      ( "rho",
        match r.Chaos.rho with Some rho -> Json.Float rho | None -> Json.Null
      );
      ("rows", Json.List (List.map chaos_row_to_json r.Chaos.rows));
    ]

let chaos_report_of_result result =
  let what = "chaos result" in
  {
    Chaos.workload = str_field ~what "workload" result;
    label = str_field ~what "label" result;
    kill_fraction = float_field ~what "kill_fraction" result;
    killed_per_trial = int_field ~what "killed_per_trial" result;
    components = int_field ~what "components" result;
    seed = int_field ~what "seed" result;
    requests_lost = float_field ~what "requests_lost" result;
    rho =
      (match get ~what "rho" result with
      | Json.Null -> None
      | v -> Some (as_float ~what v));
    rows =
      (match get ~what "rows" result with
      | Json.List rows -> List.map chaos_row_of_json rows
      | _ -> failwith (what ^ ": \"rows\" is not a list"));
  }

(* {2 Tape file inspection}

   The payload behind [dvf tape info]: the on-disk header and
   provenance plus a summary of the per-chunk partition index.  Lives
   here so it shares the row-codec helpers and the %.17g float
   convention — the JSON line round-trips exactly, and the rendered
   table is byte-stable for CI comparison. *)

type tape_info = {
  ti_version : int;
  ti_workload : string;
  ti_size : string;
  ti_seed : int;
  ti_chunk_events : int;
  ti_events : int;
  ti_chunks : int;
  ti_regions : int;
  ti_granule : int;  (* bytes per partition-index granule *)
  ti_buckets : int;
  ti_min_line : int;  (* smallest granule line in any chunk; -1 if empty *)
  ti_max_line : int;  (* largest; -1 if empty *)
  ti_buckets_covered : int;  (* distinct buckets set across all chunks *)
  ti_saturated_chunks : int;  (* chunks whose bitmap covers every bucket *)
  ti_mean_coverage : float;  (* mean covered-bucket fraction per chunk *)
}

let popcount w =
  let n = ref 0 and w = ref w in
  while !w <> 0 do
    n := !n + 1;
    w := !w land (!w - 1)
  done;
  !n

let tape_info_of_file path =
  match Memtrace.Tape_io.read_version path with
  | Error e -> Error e
  | Ok version -> (
      match Memtrace.Tape_io.load path with
      | Error e -> Error e
      | Ok (meta, registry, tape) ->
          let infos = Memtrace.Tape.chunk_infos tape in
          let union = Array.make Memtrace.Tape.coverage_words 0 in
          let min_line = ref max_int and max_line = ref (-1) in
          let saturated = ref 0 and covered_sum = ref 0 in
          List.iter
            (fun (ci : Memtrace.Tape.chunk_info) ->
              Array.iteri
                (fun i w -> union.(i) <- union.(i) lor w)
                ci.Memtrace.Tape.ci_coverage;
              let covered =
                Array.fold_left
                  (fun acc w -> acc + popcount w)
                  0 ci.Memtrace.Tape.ci_coverage
              in
              covered_sum := !covered_sum + covered;
              if covered = Memtrace.Tape.partition_buckets then incr saturated;
              min_line := min !min_line ci.Memtrace.Tape.ci_min_line;
              max_line := max !max_line ci.Memtrace.Tape.ci_max_line)
            infos;
          let chunks = List.length infos in
          Ok
            {
              ti_version = version;
              ti_workload = meta.Memtrace.Tape_io.workload;
              ti_size = meta.Memtrace.Tape_io.size;
              ti_seed = meta.Memtrace.Tape_io.seed;
              ti_chunk_events = Memtrace.Tape.chunk_events tape;
              ti_events = Memtrace.Tape.length tape;
              ti_chunks = chunks;
              ti_regions = List.length (Memtrace.Region.regions registry);
              ti_granule = 1 lsl Memtrace.Tape.granule_shift;
              ti_buckets = Memtrace.Tape.partition_buckets;
              ti_min_line = (if chunks = 0 then -1 else !min_line);
              ti_max_line = (if chunks = 0 then -1 else !max_line);
              ti_buckets_covered =
                Array.fold_left (fun acc w -> acc + popcount w) 0 union;
              ti_saturated_chunks = !saturated;
              ti_mean_coverage =
                (if chunks = 0 then 0.0
                 else
                   float_of_int !covered_sum
                   /. float_of_int (chunks * Memtrace.Tape.partition_buckets));
            })

let tape_info_to_json i =
  Json.Obj
    [
      ("version", Json.Int i.ti_version);
      ("workload", Json.Str i.ti_workload);
      ("size", Json.Str i.ti_size);
      ("seed", Json.Int i.ti_seed);
      ("chunk_events", Json.Int i.ti_chunk_events);
      ("events", Json.Int i.ti_events);
      ("chunks", Json.Int i.ti_chunks);
      ("regions", Json.Int i.ti_regions);
      ("granule", Json.Int i.ti_granule);
      ("buckets", Json.Int i.ti_buckets);
      ("min_line", Json.Int i.ti_min_line);
      ("max_line", Json.Int i.ti_max_line);
      ("buckets_covered", Json.Int i.ti_buckets_covered);
      ("saturated_chunks", Json.Int i.ti_saturated_chunks);
      ("mean_coverage", Json.Float i.ti_mean_coverage);
    ]

let tape_info_of_json j =
  let what = "tape info" in
  {
    ti_version = int_field ~what "version" j;
    ti_workload = str_field ~what "workload" j;
    ti_size = str_field ~what "size" j;
    ti_seed = int_field ~what "seed" j;
    ti_chunk_events = int_field ~what "chunk_events" j;
    ti_events = int_field ~what "events" j;
    ti_chunks = int_field ~what "chunks" j;
    ti_regions = int_field ~what "regions" j;
    ti_granule = int_field ~what "granule" j;
    ti_buckets = int_field ~what "buckets" j;
    ti_min_line = int_field ~what "min_line" j;
    ti_max_line = int_field ~what "max_line" j;
    ti_buckets_covered = int_field ~what "buckets_covered" j;
    ti_saturated_chunks = int_field ~what "saturated_chunks" j;
    ti_mean_coverage = float_field ~what "mean_coverage" j;
  }

let tape_info_table i =
  let t =
    Dvf_util.Table.create ~title:"Tape file: header and partition index"
      [ ("field", Dvf_util.Table.Left); ("value", Dvf_util.Table.Right) ]
  in
  let line v = if v < 0 then "-" else string_of_int v in
  List.iter
    (fun (k, v) -> Dvf_util.Table.add_row t [ k; v ])
    [
      ("format version", string_of_int i.ti_version);
      ("workload", i.ti_workload);
      ("size", i.ti_size);
      ("seed", string_of_int i.ti_seed);
      ("chunk capacity (events)", string_of_int i.ti_chunk_events);
      ("events", string_of_int i.ti_events);
      ("chunks", string_of_int i.ti_chunks);
      ("regions", string_of_int i.ti_regions);
      ("granule (bytes)", string_of_int i.ti_granule);
      ("partition buckets", string_of_int i.ti_buckets);
      ("min granule line", line i.ti_min_line);
      ("max granule line", line i.ti_max_line);
      ( "buckets covered",
        Printf.sprintf "%d/%d" i.ti_buckets_covered i.ti_buckets );
      ("saturated chunks", string_of_int i.ti_saturated_chunks);
      ( "mean chunk coverage",
        Printf.sprintf "%.1f%%" (100.0 *. i.ti_mean_coverage) );
    ];
  t

let rows_field result = get ~what:"response result" "rows" result

let json_rows ~what of_row result =
  match rows_field result with
  | Json.List rows -> List.map of_row rows
  | _ -> failwith (what ^ ": \"rows\" is not a list")

let verify_rows_of_result = json_rows ~what:"verify result" verify_row_of_json
let level_rows_of_result = json_rows ~what:"levels result" level_row_of_json
let timed_rows_of_result = json_rows ~what:"timed result" time_row_of_json

let profile_rows_of_result =
  json_rows ~what:"dvf result" profile_row_of_json

let sweep_rows_of_result = json_rows ~what:"sweep result" sweep_row_of_json

(* {2 Request dispatch} *)

let requested_workloads t req =
  match Json.member "workload" req with
  | None | Some Json.Null -> t.workloads
  | Some (Json.Str name) -> [ find_workload t name ]
  | Some _ -> failwith "\"workload\" must be a string"

let required_workload t req =
  match Json.member "workload" req with
  | Some (Json.Str name) -> find_workload t name
  | Some _ -> failwith "\"workload\" must be a string"
  | None -> failwith "this op requires a \"workload\" field"

let rows_result to_row rows =
  Json.Obj [ ("rows", Json.List (List.map to_row rows)) ]

let op_verify t req =
  let caches = Cachesim.Config.verification_set in
  rows_result verify_row_to_json
    (List.concat_map
       (fun w ->
         Verify.replay_capture_fused ~telemetry:t.telemetry ~caches
           (capture_for t w))
       (requested_workloads t req))

let op_levels t req =
  let levels =
    match Json.member "levels" req with
    | Some (Json.Int l) -> l
    | Some _ -> failwith "\"levels\" must be an integer"
    | None -> 2
  in
  rows_result level_row_to_json
    (List.concat_map
       (fun w ->
         Verify.capture_level_rows ~telemetry:t.telemetry ~levels
           (capture_for t w))
       (requested_workloads t req))

let op_timed t req =
  let levels =
    match Json.member "levels" req with
    | Some (Json.Int l) -> l
    | Some _ -> failwith "\"levels\" must be an integer"
    | None -> 1
  in
  let bins =
    match Json.member "bins" req with
    | Some (Json.Int b) -> b
    | Some _ -> failwith "\"bins\" must be an integer"
    | None -> Cachesim.Residency.default_bins
  in
  rows_result time_row_to_json
    (List.concat_map
       (fun w ->
         Verify.capture_time_rows ~telemetry:t.telemetry ~levels ~bins
           (capture_for t w))
       (requested_workloads t req))

let op_dvf t req =
  let caches = Cachesim.Config.profiling_set in
  rows_result profile_row_to_json
    (List.concat_map
       (fun w ->
         let instance = profiling_instance_for t w in
         List.concat_map
           (fun cache -> Profile.profile_instance ~cache instance)
           caches)
       (requested_workloads t req))

let op_sweep t req =
  let w = required_workload t req in
  let capacities =
    match Json.member "capacities" req with
    | None | Some Json.Null -> None
    | Some (Json.List vs) ->
        Some (List.map (as_int ~what:"\"capacities\" entry") vs)
    | Some _ -> failwith "\"capacities\" must be a list of integers"
  in
  let simulate =
    match Json.member "simulate" req with
    | None -> true
    | Some (Json.Bool b) -> b
    | Some _ -> failwith "\"simulate\" must be a boolean"
  in
  let capture = capture_for t w in
  rows_result sweep_row_to_json
    (Experiments.cache_sweep ~jobs:1 ~telemetry:t.telemetry ?capacities
       ~simulate ~capture capture.Verify.instance)

(* Chaos runs take any workload with a topology: a served one, or a
   built-in service workload registered on demand — so the op works
   against a default server (which serves only the auto-registered
   kernels) without changing any other op's workload set. *)
let op_chaos t req =
  let w =
    match Json.member "workload" req with
    | None | Some Json.Null -> Service_workloads.workload ()
    | Some (Json.Str name) -> (
        let key = String.lowercase_ascii name in
        match
          List.find_opt
            (fun w -> String.lowercase_ascii w.Workload.name = key)
            t.workloads
        with
        | Some w -> w
        | None -> (
            match Service_workloads.find name with
            | Some w -> w
            | None -> find_workload t name))
    | Some _ -> failwith "\"workload\" must be a string"
  in
  let trials =
    match Json.member "trials" req with
    | None | Some Json.Null -> None
    | Some (Json.Int n) -> Some n
    | Some _ -> failwith "\"trials\" must be an integer"
  in
  let kill_fraction =
    match Json.member "kill_fraction" req with
    | None | Some Json.Null -> None
    | Some v -> Some (as_float ~what:"\"kill_fraction\"" v)
  in
  let seed =
    match Json.member "seed" req with
    | None | Some Json.Null -> None
    | Some (Json.Int s) -> Some s
    | Some _ -> failwith "\"seed\" must be an integer"
  in
  match
    Chaos.run ?seed ?trials ?kill_fraction ~telemetry:t.telemetry w
  with
  | Some report -> chaos_report_to_json report
  | None ->
      failwith
        (Printf.sprintf "workload %S has no service-graph topology"
           w.Workload.name)

let op_stats t =
  Json.Obj
    [
      ("requests", Json.Int (Mutex.protect t.mutex (fun () -> t.requests)));
      ("workloads", Json.Int (List.length t.workloads));
      ("warm_captures", Json.Int (warm_count t));
      ( "store",
        match t.store with
        | Some s -> Json.Str (Memtrace.Tape_store.dir s)
        | None -> Json.Null );
    ]

let ops =
  [
    "ping"; "workloads"; "verify"; "levels"; "timed"; "dvf"; "sweep"; "chaos";
    "stats";
  ]

let dispatch t ~op req =
  match op with
  | "ping" -> Json.Obj [ ("pong", Json.Bool true) ]
  | "workloads" ->
      Json.Obj
        [
          ( "workloads",
            Json.List (List.map (fun n -> Json.Str n) (workload_names t)) );
        ]
  | "verify" -> op_verify t req
  | "levels" -> op_levels t req
  | "timed" -> op_timed t req
  | "dvf" -> op_dvf t req
  | "sweep" -> op_sweep t req
  | "chaos" -> op_chaos t req
  | "stats" -> op_stats t
  | other ->
      failwith
        (Printf.sprintf "unknown op %S (supported: %s)" other
           (String.concat ", " ops))

let envelope ~id fields =
  Json.to_string ~indent:false
    (Json.Obj
       ([
          ("schema", Json.Str schema);
          ("schema_version", Json.Int schema_version);
          ("id", id);
        ]
       @ fields))

let ok_response ~id result =
  envelope ~id [ ("ok", Json.Bool true); ("result", result) ]

let error_response ~id msg =
  envelope ~id [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let handle_request t req =
  let id = Option.value (Json.member "id" req) ~default:Json.Null in
  match Json.member "op" req with
  | Some (Json.Str op) -> (
      Mutex.protect t.mutex (fun () -> t.requests <- t.requests + 1);
      Telemetry.add t.telemetry "serve/requests";
      match
        Telemetry.span t.telemetry ("serve/op/" ^ op) (fun () ->
            dispatch t ~op req)
      with
      | result -> ok_response ~id result
      | exception Failure msg -> error_response ~id msg
      | exception Invalid_argument msg -> error_response ~id msg
      | exception Not_found -> error_response ~id "not found")
  | Some _ -> error_response ~id "\"op\" must be a string"
  | None -> error_response ~id "request has no \"op\" field"

let handle_line t line =
  match Json.parse_line line with
  | Ok None -> None (* blank keep-alive line: no response *)
  | Ok (Some req) -> Some (handle_request t req)
  | Error msg -> Some (error_response ~id:Json.Null msg)

(* Order-preserving: response [i] answers request line [i] (blank lines
   produce no response).  Requests run concurrently on the pool — each
   handler is internally serial, so no handler re-enters the pool. *)
let handle_batch t lines =
  List.filter_map Fun.id
    (Dvf_util.Parallel.Pool.map_list t.pool (handle_line t) lines)
