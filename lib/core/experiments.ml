module Table = Dvf_util.Table

type fig6_row = {
  n : int;
  cg_iterations : int;
  pcg_iterations : int;
  cg_time : float;
  pcg_time : float;
  cg_dvf : float;
  pcg_dvf : float;
}

module Telemetry = Dvf_util.Telemetry

(* Sweep points are independent (each builds its own solvers and specs),
   so both fig6 and cache_sweep fan out over a domain pool.  [jobs = 1]
   (or an empty pool budget) degrades to List.map in the calling domain;
   Parallel.map_list preserves order either way.  Each point is timed
   under ["<label>/point"] and counted under ["<label>/points"]; the whole
   sweep's wall-clock lands in ["<label>/total"]. *)
let sweep_map ?jobs ?(telemetry = Telemetry.null) ~label f xs =
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let f =
    if not (Telemetry.enabled telemetry) then f
    else fun x ->
      Telemetry.add telemetry (label ^ "/points");
      Telemetry.span telemetry (label ^ "/point") (fun () -> f x)
  in
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then List.map f xs
    else Dvf_util.Parallel.map_list ~telemetry ~jobs f xs
  in
  if Telemetry.enabled telemetry then
    Telemetry.time_ns telemetry (label ^ "/total")
      (Int64.sub (Telemetry.now_ns telemetry) t0);
  rows

let fig6 ?jobs ?telemetry ?(machine = Perf.default_machine)
    ?(fit = Ecc.fit Ecc.No_ecc)
    ?(cache = Cachesim.Config.profiling_4mb)
    ?(sizes = [ 100; 200; 300; 400; 500; 600; 700; 800 ]) () =
  sweep_map ?jobs ?telemetry ~label:"fig6"
    (fun n ->
      let cg_params = Kernels.Cg.make_params ~max_iterations:5000 ~tolerance:1e-8 n in
      let pcg_params =
        Kernels.Pcg.make_params ~max_iterations:5000 ~tolerance:1e-8 n
      in
      let cg_result = Kernels.Cg.run_untraced cg_params in
      let pcg_result = Kernels.Pcg.run_untraced pcg_params in
      let cg_spec =
        Kernels.Cg.spec ~iterations:cg_result.Kernels.Cg.iterations cg_params
      in
      let pcg_spec =
        Kernels.Pcg.spec ~iterations:pcg_result.Kernels.Pcg.iterations pcg_params
      in
      let cg_time =
        Perf.app_time machine ~cache ~flops:cg_result.Kernels.Cg.flops cg_spec
      in
      let pcg_time =
        Perf.app_time machine ~cache ~flops:pcg_result.Kernels.Pcg.flops pcg_spec
      in
      let cg_dvf = (Dvf.of_spec ~cache ~fit ~time:cg_time cg_spec).Dvf.total in
      let pcg_dvf =
        (Dvf.of_spec ~cache ~fit ~time:pcg_time pcg_spec).Dvf.total
      in
      {
        n;
        cg_iterations = cg_result.Kernels.Cg.iterations;
        pcg_iterations = pcg_result.Kernels.Pcg.iterations;
        cg_time;
        pcg_time;
        cg_dvf;
        pcg_dvf;
      })
    sizes

let fig6_table rows =
  let t =
    Table.create ~title:"Fig. 6 - CG vs PCG (DVF over problem size)"
      [
        ("n", Table.Right); ("CG iters", Table.Right);
        ("PCG iters", Table.Right); ("CG T(s)", Table.Right);
        ("PCG T(s)", Table.Right); ("CG DVF", Table.Right);
        ("PCG DVF", Table.Right); ("winner", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.n; Table.cell_int r.cg_iterations;
          Table.cell_int r.pcg_iterations; Table.cell_float r.cg_time;
          Table.cell_float r.pcg_time; Table.cell_float r.cg_dvf;
          Table.cell_float r.pcg_dvf;
          (if r.pcg_dvf < r.cg_dvf then "PCG" else "CG");
        ])
    rows;
  t

type fig7_row = {
  degradation : float;
  secded_dvf : float;
  chipkill_dvf : float;
}

let fig7 ?(machine = Perf.default_machine)
    ?(cache = Cachesim.Config.profiling_4mb) ?(steps = 30)
    ?(max_degradation = 0.30) () =
  let instance = Workloads.profiling_instance Workloads.vm in
  let spec = instance.Workload.spec in
  let base_time =
    Perf.app_time machine ~cache ~flops:instance.Workload.flops spec
  in
  List.init (steps + 1) (fun i ->
      let degradation =
        max_degradation *. float_of_int i /. float_of_int steps
      in
      let dvf scheme =
        (Ecc.protected_dvf ~cache ~base_time ~degradation scheme spec).Dvf.total
      in
      { degradation; secded_dvf = dvf Ecc.Secded; chipkill_dvf = dvf Ecc.Chipkill })

let fig7_table rows =
  let t =
    Table.create
      ~title:"Fig. 7 - Impact of ECC on DVF (Vector Multiplication)"
      [
        ("degradation %", Table.Right); ("SECDED DVF", Table.Right);
        ("Chipkill DVF", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" (100.0 *. r.degradation);
          Table.cell_float r.secded_dvf; Table.cell_float r.chipkill_dvf;
        ])
    rows;
  t

let fig7_optimum rows =
  let best get =
    fst
      (List.fold_left
         (fun (bd, bv) r -> if get r < bv then (r.degradation, get r) else (bd, bv))
         (0.0, infinity) rows)
  in
  (best (fun r -> r.secded_dvf), best (fun r -> r.chipkill_dvf))

type sweep_row = {
  capacity : int;
  sweep_cache : Cachesim.Config.t;
  dvf_a : float;
  n_ha : float;
  sim_n_ha : float option;
}

let pow2_floor n =
  if n < 1 then 1
  else begin
    let p = ref 1 in
    while !p * 2 <= n do p := !p * 2 done;
    !p
  end

(* Trace-driven half of a simulated sweep: capture the workload's tape
   once, then drive every sweep geometry from set-sharded fused chunk
   walks — one task per shard, each owning a private replica of every
   cache, statistics merged in shard order afterwards
   ({!Memtrace.Tape.replay_fused_sharded}).  Each cache clamps the shard
   count to its own set count, so the heterogeneous sweep geometries
   (8 sets up to 32K sets) all partition correctly; totals are
   bit-identical at any [jobs].  Returns each cache's simulated total
   main-memory accesses (misses + writebacks), in [caches] order. *)
let simulate_totals ~jobs ~telemetry ~caches cap =
  let instance = cap.Verify.instance in
  let shards = pow2_floor (max 1 jobs) in
  Telemetry.span telemetry
    (Printf.sprintf "cache_sweep/%s/replay" instance.Workload.workload)
    (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      let run_shard shard =
        let sims = Array.of_list (List.map Cachesim.Cache.create caches) in
        Memtrace.Tape.replay_fused_sharded cap.Verify.tape sims ~shards ~shard;
        Array.iter Cachesim.Cache.flush sims;
        Array.map Cachesim.Cache.stats sims
      in
      let shard_ids = List.init shards (fun s -> s) in
      let per_shard =
        if jobs <= 1 then List.map run_shard shard_ids
        else Dvf_util.Parallel.map_list ~telemetry ~jobs run_shard shard_ids
      in
      if Telemetry.enabled telemetry then begin
        Telemetry.add telemetry
          ~n:(List.length caches * Memtrace.Tape.length cap.Verify.tape)
          "tape/replay_events";
        Telemetry.add telemetry ~n:shards "shard/tasks";
        Telemetry.set_gauge telemetry "shard/count" (float_of_int shards);
        Telemetry.time_ns telemetry "verify/replay_total"
          (Int64.sub (Telemetry.now_ns telemetry) t0)
      end;
      List.mapi
        (fun i _ ->
          let merged =
            Cachesim.Stats.sum (List.map (fun stats -> stats.(i)) per_shard)
          in
          let snapshot = Cachesim.Stats.snapshot merged in
          if Telemetry.enabled telemetry then
            Telemetry.add telemetry
              ~n:
                (Cachesim.Stats.Snapshot.accesses
                   snapshot.Cachesim.Stats.totals)
              "cache/accesses";
          float_of_int (Cachesim.Stats.Snapshot.total_main_memory snapshot))
        caches)

let cache_sweep ?jobs ?(telemetry = Telemetry.null)
    ?(machine = Perf.default_machine) ?(fit = Ecc.fit Ecc.No_ecc) ?(line = 64)
    ?(associativity = 8) ?capacities ?(simulate = false) ?store ?capture
    (instance : Workload.instance) =
  let capacities =
    match capacities with
    | Some c -> c
    | None ->
        let rec doubling acc c =
          if c > 16 * 1024 * 1024 then List.rev acc else doubling (c :: acc) (2 * c)
        in
        doubling [] 4096
  in
  let caches =
    List.map
      (fun capacity ->
        let sets = capacity / (associativity * line) in
        if sets <= 0 then
          invalid_arg "Experiments.cache_sweep: capacity too small";
        Cachesim.Config.make
          ~name:(Format.asprintf "%a" Dvf_util.Units.pp_bytes capacity)
          ~associativity ~sets ~line)
      capacities
  in
  let effective_jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let sim_totals =
    if not simulate then List.map (fun _ -> None) caches
    else
      let cap =
        match capture with
        | Some c -> c
        | None -> Verify.capture ~telemetry ?store instance
      in
      List.map
        (fun v -> Some v)
        (simulate_totals ~jobs:effective_jobs ~telemetry ~caches cap)
  in
  let points = List.combine (List.combine capacities caches) sim_totals in
  sweep_map ?jobs ~telemetry ~label:"cache_sweep"
    (fun ((capacity, cache), sim_n_ha) ->
      let spec = instance.Workload.spec in
      let time = Perf.app_time machine ~cache ~flops:instance.Workload.flops spec in
      let n_ha =
        List.fold_left
          (fun acc (_, v) -> acc +. v)
          0.0
          (Access_patterns.App_spec.main_memory_accesses ~cache spec)
      in
      {
        capacity;
        sweep_cache = cache;
        dvf_a = (Dvf.of_spec ~cache ~fit ~time spec).Dvf.total;
        n_ha;
        sim_n_ha;
      })
    points

let cache_sweep_table ~label rows =
  let simulated = List.exists (fun r -> r.sim_n_ha <> None) rows in
  let t =
    Table.create ~title:(Printf.sprintf "DVF_a vs cache capacity: %s" label)
      ([ ("capacity", Table.Right); ("DVF_a", Table.Right);
         ("N_ha model", Table.Right) ]
      @ if simulated then [ ("N_ha sim", Table.Right) ] else [])
  in
  List.iter
    (fun r ->
      Table.add_row t
        ([
           Format.asprintf "%a" Dvf_util.Units.pp_bytes r.capacity;
           Table.cell_float r.dvf_a;
           Table.cell_float r.n_ha;
         ]
        @
        match r.sim_n_ha with
        | Some v when simulated -> [ Table.cell_float v ]
        | None when simulated -> [ "-" ]
        | _ -> []))
    rows;
  t

let table2 () =
  let t =
    Table.create ~title:"Table II - Six numerical algorithms"
      [
        ("algorithm", Table.Left); ("class", Table.Left);
        ("major structures", Table.Left); ("patterns", Table.Left);
        ("example benchmark", Table.Left);
      ]
  in
  List.iter
    (fun (w : Workload.t) ->
      Table.add_row t
        [
          w.Workload.name; w.Workload.computational_class;
          String.concat ", " w.Workload.major_structures;
          w.Workload.pattern_classes; w.Workload.example_benchmark;
        ])
    (Workloads.all ());
  t

let table4 () =
  let t =
    Table.create ~title:"Table IV - Cache configurations"
      [
        ("cache", Table.Left); ("CA", Table.Right); ("NA", Table.Right);
        ("CL", Table.Right); ("Cc", Table.Right);
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.Cachesim.Config.name;
          Table.cell_int c.Cachesim.Config.associativity;
          Table.cell_int c.Cachesim.Config.sets;
          Table.cell_int c.Cachesim.Config.line;
          Format.asprintf "%a" Dvf_util.Units.pp_bytes
            (Cachesim.Config.capacity c);
        ])
    (Cachesim.Config.verification_set @ Cachesim.Config.profiling_set);
  t

let input_table ~title mode =
  let t =
    Table.create ~title [ ("application", Table.Left); ("input size", Table.Left) ]
  in
  List.iter
    (fun (w : Workload.t) ->
      Table.add_row t [ w.Workload.name; w.Workload.input_size mode ])
    (Workloads.all ());
  t

let table5 () =
  input_table ~title:"Table V - Application input size (verification)"
    `Verification

let table6 () =
  input_table ~title:"Table VI - Application input size (profiling)" `Profiling

let table7 () =
  let t =
    Table.create ~title:"Table VII - Error rate with ECC in place"
      [ ("ECC protection", Table.Left); ("error rate (FIT/Mbit)", Table.Right) ]
  in
  List.iter
    (fun s -> Table.add_row t [ Ecc.name s; Table.cell_float (Ecc.fit s) ])
    Ecc.all;
  t
