module Fi = Kernels.Fault_injection
module Ap = Access_patterns
module Telemetry = Dvf_util.Telemetry

type result = {
  workload : string;
  label : string;
  spec : Ap.App_spec.t;
  flops : int;
  seed : int;
  campaigns : Fi.campaign list;
}

let default_seed = 1234

(* THE campaign engine: fan the full (target, trial) grid of one fault
   model over the pool.  Each trial's RNG comes from [Fi.trial_rng], the
   same derivation the serial [Fi.run_campaigns] uses, and [Pool.map]
   preserves input order, so the tallies are bit-identical to the serial
   run at any job count.  [section] namespaces the telemetry ("inject"
   for bit flips, "chaos" for component kills) so the two campaign kinds
   stay separable in one metrics document.  Returns the raw per-trial
   (outcome, fraction) grid alongside the tallies so [run_timed] can
   re-bin it. *)
let grid_raw ~telemetry ~section ~seed ~trials pool ~workload
    (fm : Fault_model.t) =
  let trials = Option.value trials ~default:fm.Fault_model.default_trials in
  if trials < 1 then invalid_arg "Injection.run: trials < 1";
  let targets = Array.of_list fm.Fault_model.targets in
  let tasks =
    Array.init
      (Array.length targets * trials)
      (fun i -> (i / trials, i mod trials))
  in
  let t0 = Telemetry.now_ns telemetry in
  let outcomes =
    Dvf_util.Parallel.Pool.map pool
      (fun (ti, t) ->
        fm.Fault_model.trial ~target:ti
          (Fi.trial_rng ~seed ~structure_index:ti ~trial:t))
      tasks
  in
  if Telemetry.enabled telemetry then begin
    let trial_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
    Telemetry.time_ns telemetry
      (Printf.sprintf "%s/%s/trials" section workload)
      trial_ns;
    Telemetry.time_ns telemetry (section ^ "/trials_total") trial_ns;
    Telemetry.add telemetry ~n:(Array.length tasks) (section ^ "/trials")
  end;
  let campaigns =
    List.mapi
      (fun ti target ->
        Fi.tally target
          (List.map fst
             (Array.to_list (Array.sub outcomes (ti * trials) trials))))
      fm.Fault_model.targets
  in
  (campaigns, outcomes, trials)

(* The historical bit-flip entry point, now a wrapper over the shared
   grid: same seeding coordinates, same tallies, byte for byte. *)
let run_raw ~telemetry ~seed ~trials pool ~workload (inj : Fi.injector) =
  let campaigns, outcomes, trials =
    grid_raw ~telemetry ~section:"inject" ~seed ~trials pool ~workload
      (Fault_model.of_injector inj)
  in
  let result =
    {
      workload;
      label = inj.Fi.label;
      spec = inj.Fi.spec;
      flops = inj.Fi.flops;
      seed;
      campaigns;
    }
  in
  (result, outcomes, trials)

let run_in_pool ~telemetry ~seed ~trials pool ~workload inj =
  let result, _, _ = run_raw ~telemetry ~seed ~trials pool ~workload inj in
  result

(* Building an injector runs each kernel once uninjected (the clean
   reference output trials compare against).  Time it separately so the
   metrics expose how that fixed cost amortizes over the campaign. *)
let make_injector ~telemetry ~workload make =
  let t0 = Telemetry.now_ns telemetry in
  let inj =
    Telemetry.span telemetry
      (Printf.sprintf "inject/%s/setup" workload)
      make
  in
  if Telemetry.enabled telemetry then
    Telemetry.time_ns telemetry "inject/setup_total"
      (Int64.sub (Telemetry.now_ns telemetry) t0);
  inj

let finalize_metrics ?(section = "inject") telemetry =
  if Telemetry.enabled telemetry then begin
    Telemetry.gauge_rate telemetry
      ~name:(section ^ "/trials_per_sec")
      ~counter:(section ^ "/trials")
      ~span:(section ^ "/trials_total");
    (* Only bit-flip campaigns have a clean reference run to amortize. *)
    let trials = Telemetry.counter_value telemetry (section ^ "/trials") in
    if String.equal section "inject" && trials > 0 then
      Telemetry.set_gauge telemetry "inject/clean_run_amortization_sec"
        (Int64.to_float (Telemetry.span_ns telemetry "inject/setup_total")
        /. 1e9 /. float_of_int trials)
  end

(* --- the generic fault-model entry points (chaos campaigns &c.) --- *)

let default_section = "campaign"

let run_model ?(seed = default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Telemetry.null) ?(section = default_section) ~workload fm =
  let campaigns =
    Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
        let campaigns, _, _ =
          grid_raw ~telemetry ~section ~seed ~trials pool ~workload fm
        in
        campaigns)
  in
  finalize_metrics ~section telemetry;
  campaigns

let run_model_all ?(seed = default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Telemetry.null) ?(section = default_section) models =
  let results =
    Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
        List.map
          (fun (workload, fm) ->
            let campaigns, _, _ =
              grid_raw ~telemetry ~section ~seed ~trials pool ~workload fm
            in
            (workload, campaigns))
          models)
  in
  finalize_metrics ~section telemetry;
  results

let run ?(seed = default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Telemetry.null) (w : Workload.t) =
  let result =
    Option.map
      (fun make ->
        Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
            run_in_pool ~telemetry ~seed ~trials pool
              ~workload:w.Workload.name
              (make_injector ~telemetry ~workload:w.Workload.name make)))
      w.Workload.injector
  in
  finalize_metrics telemetry;
  result

let run_all ?(seed = default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Telemetry.null) ws =
  let results =
    Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
        List.filter_map
          (fun (w : Workload.t) ->
            Option.map
              (fun make ->
                run_in_pool ~telemetry ~seed ~trials pool
                  ~workload:w.Workload.name
                  (make_injector ~telemetry ~workload:w.Workload.name make))
              w.Workload.injector)
          ws)
  in
  finalize_metrics telemetry;
  results

let to_table r = Fi.to_table ~title:("Fault injection: " ^ r.label) r.campaigns

(* --- flip-time-binned campaigns (`dvf windows` ground truth) --- *)

type timed = {
  base : result;
  time_bins : int;
  (* per structure: how many trials' flips landed in each flip-time bin
     of [0, 1], and how many of those were SDC *)
  windows : (string * (int array * int array)) list;
}

let default_bins = 20

let bin_of ~bins frac =
  let b = int_of_float (frac *. float_of_int bins) in
  if b < 0 then 0 else if b >= bins then bins - 1 else b

let run_timed ?(seed = default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Telemetry.null) ?(bins = default_bins) (w : Workload.t) =
  if bins <= 0 then invalid_arg "Injection.run_timed: bins <= 0";
  let result =
    Option.map
      (fun make ->
        Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
            let inj =
              make_injector ~telemetry ~workload:w.Workload.name make
            in
            let base, outcomes, trials =
              run_raw ~telemetry ~seed ~trials pool ~workload:w.Workload.name
                inj
            in
            let windows =
              List.mapi
                (fun si structure ->
                  let per_bin = Array.make bins 0
                  and sdc_bin = Array.make bins 0 in
                  for t = 0 to trials - 1 do
                    let o, frac = outcomes.((si * trials) + t) in
                    let b = bin_of ~bins frac in
                    per_bin.(b) <- per_bin.(b) + 1;
                    if o = Fi.Sdc then sdc_bin.(b) <- sdc_bin.(b) + 1
                  done;
                  (structure, (per_bin, sdc_bin)))
                inj.Fi.structures
            in
            { base; time_bins = bins; windows }))
      w.Workload.injector
  in
  finalize_metrics telemetry;
  result

(* --- correlation against the analytical DVF --- *)

type row = {
  row_workload : string;
  structure : string;
  trials : int;
  sdc : int;
  rate : float;
  ci : float * float;
  dvf : float;
}

type correlation = {
  cache : Cachesim.Config.t;
  fit : float;
  rows : row list;
  per_workload : (string * float) list;
  overall : float;
}

let default_fit = 5_000.0

(* [None] when rho is undefined (single structure, or zero rank
   variance) — those workloads are dropped from the per-workload report
   and the pooled line prints "n/a". *)
let spearman_of rows =
  Dvf_util.Maths.spearman_opt
    (Array.of_list (List.map (fun r -> r.rate) rows))
    (Array.of_list (List.map (fun r -> r.dvf) rows))

let correlate ?(cache = Cachesim.Config.profiling_4mb) ?(fit = default_fit)
    ?(machine = Perf.default_machine) results =
  let rows =
    List.concat_map
      (fun r ->
        let time = Perf.app_time machine ~cache ~flops:r.flops r.spec in
        let app = Dvf.of_spec ~cache ~fit ~time r.spec in
        List.map
          (fun (c : Fi.campaign) ->
            let dvf =
              match
                List.find_opt
                  (fun (s : Dvf.structure_dvf) ->
                    String.equal s.Dvf.name c.Fi.structure)
                  app.Dvf.structures
              with
              | Some s -> s.Dvf.dvf
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Injection.correlate: workload %s has no spec \
                        structure %S"
                       r.workload c.Fi.structure)
            in
            {
              row_workload = r.workload;
              structure = c.Fi.structure;
              trials = c.Fi.trials;
              sdc = c.Fi.sdc;
              rate = Fi.sdc_rate c;
              ci = Fi.sdc_interval c;
              dvf;
            })
          r.campaigns)
      results
  in
  let per_workload =
    List.filter_map
      (fun r ->
        let mine =
          List.filter (fun row -> String.equal row.row_workload r.workload) rows
        in
        Option.map (fun rho -> (r.workload, rho)) (spearman_of mine))
      results
  in
  let overall =
    match spearman_of rows with Some rho -> rho | None -> Float.nan
  in
  { cache; fit; rows; per_workload; overall }

let correlation_table c =
  let t =
    Dvf_util.Table.create
      ~title:
        (Printf.sprintf "Empirical SDC rate vs. analytical DVF (%s, FIT %g)"
           c.cache.Cachesim.Config.name c.fit)
      [
        ("workload", Dvf_util.Table.Left); ("structure", Dvf_util.Table.Left);
        ("trials", Dvf_util.Table.Right); ("SDC", Dvf_util.Table.Right);
        ("SDC rate", Dvf_util.Table.Right); ("95% CI", Dvf_util.Table.Right);
        ("DVF", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let lo, hi = r.ci in
      Dvf_util.Table.add_row t
        [
          r.row_workload; r.structure; string_of_int r.trials;
          string_of_int r.sdc;
          Printf.sprintf "%.4f" r.rate;
          Printf.sprintf "[%.4f, %.4f]" lo hi;
          Printf.sprintf "%.4g" r.dvf;
        ])
    c.rows;
  t

let pp_spearman ppf c =
  List.iter
    (fun (w, rho) -> Format.fprintf ppf "Spearman rho (%s): %+.3f@." w rho)
    c.per_workload;
  if Float.is_nan c.overall then
    Format.fprintf ppf "Spearman rho (all structures): n/a@."
  else
    Format.fprintf ppf "Spearman rho (all structures): %+.3f@." c.overall
