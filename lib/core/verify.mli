(** Model verification (paper §IV-A, Fig. 4).

    Runs each workload's instrumented implementation (or synthetic replay
    for model-only workloads), feeds the trace to the LRU cache simulator,
    and compares the per-structure main-memory access counts (misses +
    writebacks) against the CGPMAC analytical estimate.  The paper reports
    estimation error within 15 % in all cases.

    Like the paper's methodology (one Pin trace per application, reused
    for every cache configuration), the default {!strategy} captures each
    workload's trace {e once} into a {!Memtrace.Tape} and replays it into
    every verification cache, instead of re-executing the kernel per
    geometry.  All strategies produce bit-identical rows. *)

type row = {
  workload : string;   (** registry name, e.g. "CG" *)
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;   (** misses + writebacks from the cache simulator *)
  modeled : float;     (** CGPMAC estimate *)
}

val error : row -> float
(** |modeled - simulated| / simulated. *)

type strategy =
  | Retrace  (** re-execute and re-trace the kernel for every cache —
                 the historical path, kept as the measurable baseline *)
  | Replay   (** capture one tape per workload, replay it per cache *)
  | Fused    (** capture one tape per workload, drive all caches from a
                 single chunk walk ({!Memtrace.Tape.replay_fused}) *)

val strategies : (string * strategy) list
(** CLI-friendly names, e.g. for [Cmdliner.Arg.enum]. *)

val strategy_name : strategy -> string

val verify_instance :
  ?telemetry:Dvf_util.Telemetry.t ->
  cache:Cachesim.Config.t -> Workload.instance -> row list
(** One workload instance against one cache configuration, re-executing
    the kernel ({!Retrace} unit of work).

    [telemetry] (default {!Dvf_util.Telemetry.null}) receives a span
    ["verify/<workload>/<cache>"] with nested ["trace"] (kernel execution,
    recorder fan-out and cache simulation) and ["model"] (analytical
    N_ha) phases, plus global ["recorder/events"], ["recorder/batches"]
    and ["cache/accesses"] counters and the ["verify/trace_total"]
    accumulator behind the throughput gauges. *)

type capture = {
  instance : Workload.instance;
  registry : Memtrace.Region.t;  (** the address space the tape's events
                                     refer to *)
  tape : Memtrace.Tape.t;
}
(** One workload's recorded trace, ready to replay into any cache.  After
    {!capture} returns, the tape is never mutated again, so one capture
    may be replayed from several domains concurrently. *)

val capture :
  ?telemetry:Dvf_util.Telemetry.t -> Workload.instance -> capture
(** Execute the workload kernel once, recording its reference stream into
    a fresh tape.  Telemetry: span ["verify/<workload>/capture"], the
    ["recorder/*"] counters, ["tape/capture_events"] and
    ["tape/allocated_bytes"] counters, and the ["verify/capture_total"]
    accumulator — kernel execution time is now separable from simulation
    time, which the old ["verify/trace_total"] lumped together. *)

val replay_capture :
  ?telemetry:Dvf_util.Telemetry.t ->
  cache:Cachesim.Config.t -> capture -> row list
(** Replay a captured tape into one cache configuration and model it —
    no kernel re-execution.  Rows are bit-identical to
    {!verify_instance} on the same workload/cache.  Telemetry: span
    ["verify/<workload>/<cache>"] with nested ["replay"] and ["model"],
    ["tape/replay_events"] and ["cache/accesses"] counters, and the
    ["verify/replay_total"] accumulator. *)

val replay_capture_fused :
  ?telemetry:Dvf_util.Telemetry.t ->
  caches:Cachesim.Config.t list -> capture -> row list
(** Replay one tape into all [caches] in a single fused chunk walk; rows
    are concatenated in [caches] order and bit-identical to sequential
    {!replay_capture} calls.  Telemetry: span ["verify/<workload>/fused"]
    and the same replay counters/accumulator ([tape/replay_events] grows
    by events x caches — every cache consumed the full stream). *)

val run_all :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?strategy:strategy ->
  ?workloads:Workload.t list -> unit -> row list
(** Fig. 4: every workload (Table V sizes) against both verification cache
    configurations.  [workloads] defaults to everything registered;
    [strategy] defaults to {!Replay}.

    [jobs] (default [Domain.recommended_domain_count ()]) spreads the
    independent jobs over that many domains; each job owns its private
    mutable state, so the rows are identical to the serial run in value
    and order — at any job count, with any strategy, with or without
    telemetry.  [jobs = 1] takes the serial code path exactly.

    With an enabled [telemetry], each phase reports as described at
    {!verify_instance}/{!capture}/{!replay_capture}; the sweep
    additionally records ["verify/total"] wall-clock and, at the end,
    derives the throughput gauges for whichever strategy ran:
    ["recorder/events_per_sec"] and ["tape/capture_events_per_sec"] (over
    capture time), ["tape/replay_events_per_sec"] and
    ["cache/accesses_per_sec"] (over replay time; over the combined
    trace time under {!Retrace}), ["tape/bytes_per_event"] and
    ["recorder/mean_batch_size"].  Counters and span paths are identical
    at every job count; only the time fields differ. *)

val workload_error : rows:row list -> string -> Cachesim.Config.t -> float
(** Aggregate (total-traffic) error for one workload/cache pair, by
    registry name. *)

val to_table : row list -> Dvf_util.Table.t
