(** Model verification (paper §IV-A, Fig. 4).

    Runs each kernel's instrumented implementation, feeds the trace to the
    LRU cache simulator, and compares the per-structure main-memory access
    counts (misses + writebacks) against the CGPMAC analytical estimate.
    The paper reports estimation error within 15 % in all cases. *)

type row = {
  kernel : Workloads.kernel;
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;   (** misses + writebacks from the cache simulator *)
  modeled : float;     (** CGPMAC estimate *)
}

val error : row -> float
(** |modeled - simulated| / simulated. *)

val verify_instance :
  cache:Cachesim.Config.t -> Workloads.instance -> row list
(** One kernel instance against one cache configuration. *)

val run_all : ?jobs:int -> ?kernels:Workloads.kernel list -> unit -> row list
(** Fig. 4: every kernel (Table V sizes) against both verification cache
    configurations.  [kernels] defaults to all six.

    [jobs] (default [Domain.recommended_domain_count ()]) spreads the
    independent kernel x cache simulations over that many domains; each
    job owns its private region registry, recorder and cache, so the rows
    are identical to the serial run in value and order.  [jobs = 1] takes
    the serial code path exactly. *)

val kernel_error :
  rows:row list -> Workloads.kernel -> Cachesim.Config.t -> float
(** Aggregate (total-traffic) error for one kernel/cache pair. *)

val to_table : row list -> Dvf_util.Table.t
