(** Model verification (paper §IV-A, Fig. 4).

    Runs each workload's instrumented implementation (or synthetic replay
    for model-only workloads), feeds the trace to the LRU cache simulator,
    and compares the per-structure main-memory access counts (misses +
    writebacks) against the CGPMAC analytical estimate.  The paper reports
    estimation error within 15 % in all cases. *)

type row = {
  workload : string;   (** registry name, e.g. "CG" *)
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;   (** misses + writebacks from the cache simulator *)
  modeled : float;     (** CGPMAC estimate *)
}

val error : row -> float
(** |modeled - simulated| / simulated. *)

val verify_instance :
  cache:Cachesim.Config.t -> Workload.instance -> row list
(** One workload instance against one cache configuration. *)

val run_all : ?jobs:int -> ?workloads:Workload.t list -> unit -> row list
(** Fig. 4: every workload (Table V sizes) against both verification cache
    configurations.  [workloads] defaults to everything registered.

    [jobs] (default [Domain.recommended_domain_count ()]) spreads the
    independent workload x cache simulations over that many domains; each
    job owns its private region registry, recorder and cache, so the rows
    are identical to the serial run in value and order.  [jobs = 1] takes
    the serial code path exactly. *)

val workload_error : rows:row list -> string -> Cachesim.Config.t -> float
(** Aggregate (total-traffic) error for one workload/cache pair, by
    registry name. *)

val to_table : row list -> Dvf_util.Table.t
