(** Model verification (paper §IV-A, Fig. 4).

    Runs each workload's instrumented implementation (or synthetic replay
    for model-only workloads), feeds the trace to the LRU cache simulator,
    and compares the per-structure main-memory access counts (misses +
    writebacks) against the CGPMAC analytical estimate.  The paper reports
    estimation error within 15 % in all cases.

    Like the paper's methodology (one Pin trace per application, reused
    for every cache configuration), the default {!strategy} captures each
    workload's trace {e once} into a {!Memtrace.Tape} and replays it into
    every verification cache, instead of re-executing the kernel per
    geometry.  All strategies produce bit-identical rows. *)

type row = {
  workload : string;   (** registry name, e.g. "CG" *)
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;   (** misses + writebacks from the cache simulator *)
  modeled : float;     (** CGPMAC estimate *)
}

val error : row -> float
(** |modeled - simulated| / simulated. *)

type strategy =
  | Retrace  (** re-execute and re-trace the kernel for every cache —
                 the historical path, kept as the measurable baseline *)
  | Replay   (** capture one tape per workload, replay it per cache *)
  | Fused    (** capture one tape per workload, drive all caches from a
                 single chunk walk ({!Memtrace.Tape.replay_fused}) *)
  | Sharded  (** fused walk partitioned by cache-set index: one
                 independent task per shard over private cache replicas,
                 statistics merged afterwards — bit-identical to
                 {!Fused}.  The tape is pre-partitioned
                 ({!Memtrace.Tape.partition}): each task walks only the
                 chunks whose partition index intersects its shard. *)

val strategies : (string * strategy) list
(** CLI-friendly names, e.g. for [Cmdliner.Arg.enum]. *)

val strategy_name : strategy -> string

val verify_instance :
  ?telemetry:Dvf_util.Telemetry.t ->
  cache:Cachesim.Config.t -> Workload.instance -> row list
(** One workload instance against one cache configuration, re-executing
    the kernel ({!Retrace} unit of work).

    [telemetry] (default {!Dvf_util.Telemetry.null}) receives a span
    ["verify/<workload>/<cache>"] with nested ["trace"] (kernel execution,
    recorder fan-out and cache simulation) and ["model"] (analytical
    N_ha) phases, plus global ["recorder/events"], ["recorder/batches"]
    and ["cache/accesses"] counters and the ["verify/trace_total"]
    accumulator behind the throughput gauges. *)

type capture = {
  instance : Workload.instance;
  registry : Memtrace.Region.t;  (** the address space the tape's events
                                     refer to *)
  tape : Memtrace.Tape.t;
}
(** One workload's recorded trace, ready to replay into any cache.  After
    {!capture} returns, the tape is never mutated again, so one capture
    may be replayed from several domains concurrently. *)

val store_key : Workload.instance -> Memtrace.Tape_store.key
(** The tape-store key for an instance: its registry name and size
    label, seed 0 (the workloads take no per-run seed). *)

val capture :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?store:Memtrace.Tape_store.t ->
  Workload.instance -> capture
(** Execute the workload kernel once, recording its reference stream into
    a fresh tape.  Telemetry: span ["verify/<workload>/capture"], the
    ["recorder/*"] counters, ["tape/capture_events"] and
    ["tape/allocated_bytes"] counters, and the ["verify/capture_total"]
    accumulator — kernel execution time is now separable from simulation
    time, which the old ["verify/trace_total"] lumped together.

    With [store], the capture goes through
    {!Memtrace.Tape_store.find_or_capture} under {!store_key}: a warm
    store skips kernel execution and tracing entirely (the capture
    telemetry above stays silent — ["tape/capture_events"] does not
    advance — while the ["store/*"] counters do), a cold store captures
    as usual and persists the tape for the next process. *)

val replay_capture :
  ?telemetry:Dvf_util.Telemetry.t ->
  cache:Cachesim.Config.t -> capture -> row list
(** Replay a captured tape into one cache configuration and model it —
    no kernel re-execution.  Rows are bit-identical to
    {!verify_instance} on the same workload/cache.  Telemetry: span
    ["verify/<workload>/<cache>"] with nested ["replay"] and ["model"],
    ["tape/replay_events"] and ["cache/accesses"] counters, and the
    ["verify/replay_total"] accumulator. *)

val replay_capture_fused :
  ?telemetry:Dvf_util.Telemetry.t ->
  caches:Cachesim.Config.t list -> capture -> row list
(** Replay one tape into all [caches] in a single fused chunk walk; rows
    are concatenated in [caches] order and bit-identical to sequential
    {!replay_capture} calls.  Telemetry: span ["verify/<workload>/fused"]
    and the same replay counters/accumulator ([tape/replay_events] grows
    by events x caches — every cache consumed the full stream). *)

val replay_capture_sharded :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?pool:Dvf_util.Parallel.Pool.t ->
  caches:Cachesim.Config.t list ->
  shards:int -> capture -> row list
(** Replay one tape into all [caches] as set-partitioned tasks: each
    task owns a private replica of every cache and walks only the chunks
    its pre-partitioned view ({!Memtrace.Tape.partition}) selected,
    touching only its shard's lines; replica statistics are merged in
    shard order afterwards.  Rows are bit-identical to
    {!replay_capture_fused}.  [shards] is clamped centrally to the
    smallest cache's set count (so the partition view, the task fan-out
    and the walk agree on one effective width); tasks run on [pool]'s
    domains when given, serially otherwise (same results either way).
    Raises [Invalid_argument] unless [shards] is a positive power of
    two.  Telemetry: span ["verify/<workload>/sharded"], the usual
    replay counters (["tape/replay_events"] counts the logical stream —
    events x caches — independent of the fan-out), plus ["shard/tasks"],
    ["shard/walked_events"] (engine-side work: caches x the events in
    the chunks the views actually walk — the basis of the aggregate
    all-domains throughput figure), ["tape/chunks_skipped"] (chunks the
    partition index excluded) and the ["shard/count"] gauge (the clamped
    width). *)

val run_all :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?strategy:strategy ->
  ?shards:int ->
  ?store:Memtrace.Tape_store.t ->
  ?workloads:Workload.t list -> unit -> row list
(** Fig. 4: every workload (Table V sizes) against both verification cache
    configurations.  [workloads] defaults to everything registered;
    [strategy] defaults to {!Replay}.  [shards] (used by {!Sharded} only;
    default: largest power of two <= [jobs], clamped to the smallest
    verification cache's set count) is the set-partition width; rows do
    not depend on it.  [store] routes every capture through a
    persistent tape store (see {!capture}); rows are bit-identical with
    or without it.  Raises [Invalid_argument] when [store] is combined
    with {!Retrace}, which never captures.

    [jobs] (default [Domain.recommended_domain_count ()]) spreads the
    independent jobs over that many domains; each job owns its private
    mutable state, so the rows are identical to the serial run in value
    and order — at any job count, with any strategy, with or without
    telemetry.  [jobs = 1] takes the serial code path exactly.

    With an enabled [telemetry], each phase reports as described at
    {!verify_instance}/{!capture}/{!replay_capture}; the sweep
    additionally records ["verify/total"] wall-clock and, at the end,
    derives the throughput gauges for whichever strategy ran:
    ["recorder/events_per_sec"] and ["tape/capture_events_per_sec"] (over
    capture time), ["tape/replay_events_per_sec"] and
    ["cache/accesses_per_sec"] (over replay time; over the combined
    trace time under {!Retrace}), ["tape/bytes_per_event"] and
    ["recorder/mean_batch_size"].  Counters and span paths are identical
    at every job count; only the time fields differ. *)

(** {2 Per-level rows}

    A multi-level run reports raw traffic per hardware level instead of
    the modeled-vs-simulated pair: the analytical model targets a single
    (last-level) cache, while per-level misses and writebacks are the
    access counts a per-level vulnerability formulation (Thales)
    consumes. *)

type level_row = {
  l_workload : string;
  base_cache : Cachesim.Config.t;   (** the L1/base geometry *)
  level : int;                      (** 1-based *)
  level_cache : Cachesim.Config.t;  (** this level's geometry *)
  l_structure : string;
  accesses : float;                 (** line lookups this level served *)
  misses : float;
  l_writebacks : float;
}

val capture_level_rows :
  ?telemetry:Dvf_util.Telemetry.t -> levels:int -> capture -> level_row list
(** One capture's per-level rows over every verification base geometry,
    serially (the {!Replay} unit of work in {!run_all_levels}, and what a
    [dvf serve] levels request runs against its warm capture).  Rows are
    bit-identical to the corresponding slice of {!run_all_levels}. *)

val run_all_levels :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?strategy:strategy ->
  ?shards:int ->
  ?store:Memtrace.Tape_store.t ->
  ?workloads:Workload.t list ->
  levels:int -> unit -> level_row list
(** Every workload against both verification geometries extended to
    [levels]-deep hierarchies ({!Cachesim.Config.hierarchy_of}).  Rows
    are ordered workload-major, then base cache, then level, then
    structure (registration order).  [levels = 1] reports exactly the
    single-cache traffic the classic rows simulate.  Raises
    [Invalid_argument] for {!Retrace} (a hierarchy can only be driven
    from a captured tape) and outside [1 <= levels <= 3].  Under
    {!Sharded} the tape is pre-partitioned per base geometry
    ({!Memtrace.Tape.partition_hierarchies}, width clamped centrally to
    the base set counts) and ["tape/chunks_skipped"] records the chunks
    the partition index excluded.  Telemetry: per-level
    ["hierarchy/l<n>/accesses"|"misses"|"writebacks"] counters
    (deterministic at any [jobs]/[shards]) and a ["hierarchy/levels"]
    gauge. *)

val to_level_table : level_row list -> Dvf_util.Table.t

(** {2 Time-weighted rows}

    The classic rows weight vulnerability by access counts (the paper's
    N_ha); these weight it by {e residency time}: how long each
    structure's lines sit in each level, clean or dirty, on the logical
    event clock (the tape's event ordinal — Jaulmes et al.'s
    delayed-error-reporting axis).  All integrals are exact integers
    ({!Cachesim.Residency}), so rows are bit-identical at any job
    count, with any shard width, across {!Replay}/{!Fused}/{!Sharded}. *)

type time_row = {
  t_workload : string;
  t_base : Cachesim.Config.t;   (** the L1/base geometry *)
  t_level : int;                (** 1-based *)
  t_cache : Cachesim.Config.t;  (** this level's geometry *)
  t_structure : string;
  t_horizon : int;              (** run length in events (tape length) *)
  t_bins : int;
  clean_time : float;           (** line-events resident and clean *)
  dirty_time : float;           (** line-events resident and dirty *)
  t_fills : float;
  t_evictions : float;
  t_flushes : float;
  window : float array;         (** clean+dirty residency per time bin *)
  window_dirty : float array;   (** dirty share of each bin *)
}

val tw_dvf : time_row -> float
(** Time-weighted DVF kernel: resident bits integrated over logical time
    ([8 x line x (clean + dirty)] bit-events).  The FIT-rate and
    execution-time factors of the full DVF scale every structure alike
    and are omitted; rankings (and Spearman correlations against
    injection ground truth) are unchanged by that. *)

val timed_level_snapshots :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?pool:Dvf_util.Parallel.Pool.t ->
  ?strategy:strategy ->
  ?shards:int ->
  ?bins:int ->
  configs:Cachesim.Config.t list ->
  capture -> Cachesim.Residency.snapshot list
(** Replay one capture through one hierarchy geometry with a residency
    accumulator attached per level; returns one snapshot per level.  The
    horizon is the tape length.  {!Sharded} runs one replica per shard
    (on [pool] when given) and merges with {!Cachesim.Residency.sum};
    {!Replay} and {!Fused} take the same single-walk path — all three
    produce bit-identical snapshots.  [shards] is clamped centrally to
    the smallest level's set count; chunk skipping stays off here (a
    residency accumulator needs the logical clock to advance over every
    event), so every shard walks the full tape.  Raises
    [Invalid_argument] for {!Retrace} (no tape, no logical clock), a bad
    [shards], or [bins <= 0].  Telemetry: ["tape/timed_replay_events"],
    ["residency/clean_line_events"|"dirty_line_events"|"fills"|
    "evictions"] counters and the ["verify/timed_total"] accumulator. *)

val capture_time_rows :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?pool:Dvf_util.Parallel.Pool.t ->
  ?strategy:strategy ->
  ?shards:int ->
  ?bins:int ->
  levels:int -> capture -> time_row list
(** One capture's time-weighted rows over every verification base
    geometry (the per-workload unit of work in {!run_all_timed}, and
    what a [dvf serve] timed request runs against its warm capture). *)

val run_all_timed :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?strategy:strategy ->
  ?shards:int ->
  ?store:Memtrace.Tape_store.t ->
  ?workloads:Workload.t list ->
  ?levels:int ->
  ?bins:int -> unit -> time_row list
(** Every workload against both verification geometries extended to
    [levels]-deep hierarchies (default 1), with per-level residency
    tracking ([bins] time windows, default
    {!Cachesim.Residency.default_bins}).  Rows are ordered
    workload-major, then base cache, then level, then structure, and
    are bit-identical at any [jobs], any [shards], across
    {!Replay}/{!Fused}/{!Sharded}.  Raises [Invalid_argument] for
    {!Retrace}.  Telemetry: the counters of
    {!timed_level_snapshots} plus a ["residency/bins"] gauge and the
    derived ["tape/timed_replay_events_per_sec"]. *)

val to_time_table : time_row list -> Dvf_util.Table.t
(** Per-structure clean/dirty line-event integrals, average resident
    lines, dirty share, and the time-weighted DVF. *)

val workload_error : rows:row list -> string -> Cachesim.Config.t -> float
(** Aggregate (total-traffic) error for one workload/cache pair, by
    registry name. *)

val to_table : row list -> Dvf_util.Table.t
