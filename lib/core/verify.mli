(** Model verification (paper §IV-A, Fig. 4).

    Runs each workload's instrumented implementation (or synthetic replay
    for model-only workloads), feeds the trace to the LRU cache simulator,
    and compares the per-structure main-memory access counts (misses +
    writebacks) against the CGPMAC analytical estimate.  The paper reports
    estimation error within 15 % in all cases. *)

type row = {
  workload : string;   (** registry name, e.g. "CG" *)
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;   (** misses + writebacks from the cache simulator *)
  modeled : float;     (** CGPMAC estimate *)
}

val error : row -> float
(** |modeled - simulated| / simulated. *)

val verify_instance :
  ?telemetry:Dvf_util.Telemetry.t ->
  cache:Cachesim.Config.t -> Workload.instance -> row list
(** One workload instance against one cache configuration.

    [telemetry] (default {!Dvf_util.Telemetry.null}) receives a span
    ["verify/<workload>/<cache>"] with nested ["trace"] (kernel execution,
    recorder fan-out and cache simulation) and ["model"] (analytical
    N_ha) phases, plus global ["recorder/events"], ["recorder/batches"]
    and ["cache/accesses"] counters and the ["verify/trace_total"]
    accumulator behind the throughput gauges. *)

val run_all :
  ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t ->
  ?workloads:Workload.t list -> unit -> row list
(** Fig. 4: every workload (Table V sizes) against both verification cache
    configurations.  [workloads] defaults to everything registered.

    [jobs] (default [Domain.recommended_domain_count ()]) spreads the
    independent workload x cache simulations over that many domains; each
    job owns its private region registry, recorder and cache, so the rows
    are identical to the serial run in value and order — with or without
    telemetry.  [jobs = 1] takes the serial code path exactly.

    With an enabled [telemetry], each instance reports as described at
    {!verify_instance}; the sweep additionally records ["verify/total"]
    wall-clock and, at the end, derives ["cache/accesses_per_sec"],
    ["recorder/events_per_sec"] and ["recorder/mean_batch_size"] gauges.
    Counters and span paths are identical at every job count; only the
    time fields differ. *)

val workload_error : rows:row list -> string -> Cachesim.Config.t -> float
(** Aggregate (total-traffic) error for one workload/cache pair, by
    registry name. *)

val to_table : row list -> Dvf_util.Table.t
