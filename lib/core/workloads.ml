let instance ~workload ~label ~spec ~flops ~trace =
  { Workload.workload; label; spec; flops; trace }

let vm_instance p label =
  instance ~workload:"VM" ~label ~spec:(Kernels.Vm.spec p)
    ~flops:(Kernels.Vm.flop_count p)
    ~trace:(fun reg rc -> ignore (Kernels.Vm.run reg rc p))

let cg_instance p label =
  (* The spec's iteration count is what the kernel actually executes
     (capped by max_iterations), measured on an untraced run. *)
  let result = Kernels.Cg.run_untraced p in
  instance ~workload:"CG" ~label
    ~spec:(Kernels.Cg.spec ~iterations:result.Kernels.Cg.iterations p)
    ~flops:result.Kernels.Cg.flops
    ~trace:(fun reg rc -> ignore (Kernels.Cg.run reg rc p))

let nb_instance p label =
  let result = Kernels.Barnes_hut.run_untraced p in
  instance ~workload:"NB" ~label
    ~spec:(Kernels.Barnes_hut.spec ~result p)
    ~flops:result.Kernels.Barnes_hut.flops
    ~trace:(fun reg rc -> ignore (Kernels.Barnes_hut.run reg rc p))

let mg_instance p label =
  let result = Kernels.Multigrid.run_untraced p in
  instance ~workload:"MG" ~label ~spec:(Kernels.Multigrid.spec p)
    ~flops:result.Kernels.Multigrid.flops
    ~trace:(fun reg rc -> ignore (Kernels.Multigrid.run reg rc p))

let ft_instance p label =
  let result = Kernels.Fft.run_untraced p in
  instance ~workload:"FT" ~label ~spec:(Kernels.Fft.spec p)
    ~flops:result.Kernels.Fft.flops
    ~trace:(fun reg rc -> ignore (Kernels.Fft.run reg rc p))

let mc_instance p label =
  let result = Kernels.Monte_carlo.run_untraced p in
  instance ~workload:"MC" ~label ~spec:(Kernels.Monte_carlo.spec p)
    ~flops:result.Kernels.Monte_carlo.flops
    ~trace:(fun reg rc -> ignore (Kernels.Monte_carlo.run reg rc p))

let sizes ~verification ~profiling = function
  | `Verification -> verification
  | `Profiling -> profiling

let vm =
  Workload.make ~name:"VM" ~computational_class:"Dense linear algebra"
    ~major_structures:[ "A"; "B"; "C" ] ~pattern_classes:"Streaming"
    ~example_benchmark:"Homemade code"
    ~input_size:
      (sizes ~verification:"10^3 integer array" ~profiling:"10^5 integer array")
    ~instance:(function
      | `Verification -> vm_instance Kernels.Vm.verification "VM 10^3"
      | `Profiling -> vm_instance Kernels.Vm.profiling "VM 10^5")
    ~injector:(fun () ->
      Kernels.Fault_injection.vm_injector (Kernels.Vm.make_params 2_000))
    ~aspen_source:"models/vm.aspen" ()

let cg =
  Workload.make ~name:"CG" ~computational_class:"Sparse linear algebra"
    ~major_structures:[ "A"; "x"; "p"; "r" ]
    ~pattern_classes:"Template+Reuse+Streaming" ~example_benchmark:"NPB CG"
    ~input_size:
      (sizes ~verification:"500x500 double matrix"
         ~profiling:"800x800 double matrix")
    ~instance:(function
      | `Verification ->
          (* Trace-driven simulation of the full 500x500 solve is feasible
             but slow in CI; 8 capped iterations exercise every phase. *)
          cg_instance
            (Kernels.Cg.make_params ~max_iterations:8 ~tolerance:0.0 500)
            "CG 500x500 (8 iters)"
      | `Profiling ->
          cg_instance
            (Kernels.Cg.make_params ~max_iterations:25 ~tolerance:0.0 800)
            "CG 800x800")
    ~injector:(fun () ->
      Kernels.Fault_injection.cg_injector
        (Kernels.Cg.make_params ~max_iterations:200 ~tolerance:1e-9 60))
    ~aspen_source:"models/cg.aspen" ()

let nb =
  Workload.make ~name:"NB" ~computational_class:"N-body method"
    ~major_structures:[ "T"; "P" ] ~pattern_classes:"Random"
    ~example_benchmark:"Barnes-Hut (GitHub)"
    ~input_size:
      (sizes ~verification:"1000 particles" ~profiling:"6000 particles")
    ~instance:(function
      | `Verification ->
          nb_instance Kernels.Barnes_hut.verification "NB 1000 particles"
      | `Profiling ->
          nb_instance Kernels.Barnes_hut.profiling "NB 6000 particles")
    ~injector:(fun () ->
      Kernels.Fault_injection.nb_injector (Kernels.Barnes_hut.make_params 400))
    ~aspen_source:"models/nb.aspen" ()

let mg =
  Workload.make ~name:"MG" ~computational_class:"Structured grids"
    ~major_structures:[ "R" ] ~pattern_classes:"Template-based"
    ~example_benchmark:"NPB MG"
    ~input_size:
      (sizes ~verification:"Problem class = S (32^3)"
         ~profiling:"Problem class = W (scaled to 64^3)")
    ~instance:(function
      | `Verification ->
          mg_instance (Kernels.Multigrid.make_params ~v_cycles:1 32) "MG 32^3"
      | `Profiling -> mg_instance Kernels.Multigrid.profiling "MG 64^3")
    ~injector:(fun () ->
      Kernels.Fault_injection.mg_injector
        (Kernels.Multigrid.make_params ~v_cycles:1 16))
    ~aspen_source:"models/mg.aspen" ()

let ft =
  Workload.make ~name:"FT" ~computational_class:"Spectral methods"
    ~major_structures:[ "X" ] ~pattern_classes:"Template-based"
    ~example_benchmark:"NPB FT"
    ~input_size:
      (sizes ~verification:"Problem class = S (2^14 points)"
         ~profiling:"Problem class = S (2^11 points, ~32KB)")
    ~instance:(function
      | `Verification -> ft_instance Kernels.Fft.verification "FT 2^14"
      | `Profiling -> ft_instance Kernels.Fft.profiling "FT 2^11")
    ~injector:(fun () ->
      Kernels.Fault_injection.ft_injector (Kernels.Fft.make_params 512))
    ~aspen_source:"models/ft.aspen" ()

let mc =
  Workload.make ~name:"MC" ~computational_class:"Monte Carlo"
    ~major_structures:[ "G"; "E" ] ~pattern_classes:"Random"
    ~example_benchmark:"XSBench"
    ~input_size:
      (sizes ~verification:"Size = small, lookups = 10^3"
         ~profiling:"Size = small (16384x32 grid), lookups = 10^5")
    ~instance:(function
      | `Verification ->
          mc_instance Kernels.Monte_carlo.verification "MC 10^3 lookups"
      | `Profiling ->
          mc_instance Kernels.Monte_carlo.profiling "MC 10^5 lookups")
    ~injector:(fun () ->
      Kernels.Fault_injection.mc_injector
        (Kernels.Monte_carlo.make_params ~grid_points:2_048 ~nuclides:16 2_000))
    ~aspen_source:"models/mc.aspen" ()

(* Registration happens when this module is initialized — before any
   consumer code runs, since every consumer references this module. *)
let () = List.iter Workload.register [ vm; cg; nb; mg; ft; mc ]

let all = Workload.all
let names = Workload.names
let find = Workload.find
let of_name = Workload.of_name
let register = Workload.register
let verification_instance (w : Workload.t) = w.Workload.instance `Verification
let profiling_instance (w : Workload.t) = w.Workload.instance `Profiling
let input_size_description mode (w : Workload.t) = w.Workload.input_size mode
