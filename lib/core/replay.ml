module Ap = Access_patterns

(* A replayed reference: element index plus store flag. *)
type ref_stream = { idx : int array; store : bool array }

let stream_refs (s : Ap.Streaming.t) =
  let touched = Ap.Streaming.touched_elements s in
  let idx = Array.init touched (fun i -> i * s.Ap.Streaming.stride) in
  { idx; store = Array.make touched s.Ap.Streaming.writeback }

let template_refs (t : Ap.Template.t) =
  let n = Array.length t.Ap.Template.refs in
  let store =
    match t.Ap.Template.writes with
    | Some w -> Array.copy w
    | None -> Array.make n false
  in
  { idx = Array.copy t.Ap.Template.refs; store }

let full_traverse ~elements =
  { idx = Array.init elements (fun i -> i); store = Array.make elements false }

let concat_streams streams =
  {
    idx = Array.concat (List.map (fun s -> s.idx) streams);
    store = Array.concat (List.map (fun s -> s.store) streams);
  }

let structure_elem_size (spec : Ap.App_spec.t) (s : Ap.App_spec.structure) =
  let of_pattern = function
    | Ap.Pattern.Stream st -> Some st.Ap.Streaming.elem_size
    | Ap.Pattern.Random r -> Some r.Ap.Random_access.elem_size
    | Ap.Pattern.Templated t -> Some t.Ap.Template.elem_size
  in
  let of_occurrence = function
    | Ap.Compose.Stream st -> Some st.Ap.Streaming.elem_size
    | Ap.Compose.Tmpl t -> Some t.Ap.Template.elem_size
    | Ap.Compose.Reuse_only -> None
  in
  let from_composition () =
    match spec.Ap.App_spec.composition with
    | None -> None
    | Some c ->
        List.find_map
          (fun phase ->
            List.find_map
              (fun (o : Ap.Compose.occurrence) ->
                if o.Ap.Compose.structure = s.Ap.App_spec.name then
                  of_occurrence o.Ap.Compose.pattern
                else None)
              phase)
          c.Ap.Compose.order
  in
  match s.Ap.App_spec.pattern with
  | Some p -> ( match of_pattern p with Some e -> e | None -> 8)
  | None -> ( match from_composition () with Some e -> e | None -> 8)

let emit recorder (region : Memtrace.Region.region) stream =
  let elements = max 1 (region.Memtrace.Region.bytes / region.elem_size) in
  let size = region.Memtrace.Region.elem_size in
  Array.iteri
    (fun i e ->
      let addr = Memtrace.Region.elem_addr region (e mod elements) in
      Memtrace.Recorder.read recorder ~owner:region.Memtrace.Region.id ~addr
        ~size;
      if stream.store.(i) then
        Memtrace.Recorder.write recorder ~owner:region.Memtrace.Region.id ~addr
          ~size)
    stream.idx

let replay_random recorder region (r : Ap.Random_access.t) =
  let elements = r.Ap.Random_access.elements in
  (* The model assumes every element is traversed once (construction)
     before the random visits begin. *)
  emit recorder region (full_traverse ~elements);
  let rng = Dvf_util.Rng.create (42 + region.Memtrace.Region.id) in
  let run = max 1 r.Ap.Random_access.run_length in
  let runs = max 1 (r.Ap.Random_access.visits / run) in
  let size = region.Memtrace.Region.elem_size in
  for _ = 1 to r.Ap.Random_access.iterations do
    for _ = 1 to runs do
      let start = Dvf_util.Rng.int rng elements in
      for k = 0 to run - 1 do
        let addr = Memtrace.Region.elem_addr region ((start + k) mod elements) in
        Memtrace.Recorder.read recorder ~owner:region.Memtrace.Region.id ~addr
          ~size
      done
    done
  done

(* One phase: interleave the occurrences by slicing each occurrence's
   reference stream into [max times] chunks, emitted round-robin. *)
let replay_phase recorder lookup (phase : Ap.Compose.phase) =
  let occurrence_stream (o : Ap.Compose.occurrence) =
    let region : Memtrace.Region.region = lookup o.Ap.Compose.structure in
    let elements = max 1 (region.Memtrace.Region.bytes / region.elem_size) in
    let one =
      match o.Ap.Compose.pattern with
      | Ap.Compose.Stream s -> stream_refs s
      | Ap.Compose.Tmpl t -> template_refs t
      | Ap.Compose.Reuse_only -> full_traverse ~elements
    in
    let repeated =
      if o.Ap.Compose.times <= 1 then one
      else concat_streams (List.init o.Ap.Compose.times (fun _ -> one))
    in
    (region, repeated)
  in
  let streams = List.map occurrence_stream phase in
  let slices =
    List.fold_left (fun acc (o : Ap.Compose.occurrence) -> max acc o.times) 1
      phase
  in
  let chunk stream t =
    (* Balanced contiguous slicing: chunk t covers [t*len/slices,
       (t+1)*len/slices). *)
    let len = Array.length stream.idx in
    let lo = t * len / slices and hi = (t + 1) * len / slices in
    {
      idx = Array.sub stream.idx lo (hi - lo);
      store = Array.sub stream.store lo (hi - lo);
    }
  in
  for t = 0 to slices - 1 do
    List.iter
      (fun (region, stream) -> emit recorder region (chunk stream t))
      streams
  done

let trace ?(telemetry = Dvf_util.Telemetry.null) (spec : Ap.App_spec.t)
    registry recorder =
  Dvf_util.Telemetry.span telemetry "replay" @@ fun () ->
  let events_before = Memtrace.Recorder.events_emitted recorder in
  let regions =
    List.map
      (fun (s : Ap.App_spec.structure) ->
        let elem_size = structure_elem_size spec s in
        let elements = max 1 ((s.Ap.App_spec.bytes + elem_size - 1) / elem_size) in
        ( s.Ap.App_spec.name,
          Memtrace.Region.register registry ~name:s.Ap.App_spec.name ~elements
            ~elem_size ))
      spec.Ap.App_spec.structures
  in
  let lookup name = List.assoc name regions in
  (* Standalone patterns, in declaration order. *)
  List.iter
    (fun (s : Ap.App_spec.structure) ->
      match s.Ap.App_spec.pattern with
      | None -> ()
      | Some (Ap.Pattern.Stream st) ->
          emit recorder (lookup s.Ap.App_spec.name) (stream_refs st)
      | Some (Ap.Pattern.Templated t) ->
          emit recorder (lookup s.Ap.App_spec.name) (template_refs t)
      | Some (Ap.Pattern.Random r) ->
          replay_random recorder (lookup s.Ap.App_spec.name) r)
    spec.Ap.App_spec.structures;
  (* Composition phases. *)
  (match spec.Ap.App_spec.composition with
  | None -> ()
  | Some c ->
      for _ = 1 to c.Ap.Compose.iterations do
        List.iter (replay_phase recorder lookup) c.Ap.Compose.order
      done);
  if Dvf_util.Telemetry.enabled telemetry then
    Dvf_util.Telemetry.add telemetry
      ~n:(Memtrace.Recorder.events_emitted recorder - events_before)
      "replay/events"
