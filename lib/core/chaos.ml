module Fi = Kernels.Fault_injection

type row = {
  endpoint : string;
  weight : float;
  trials : int;
  lost : int;
  availability : float;
  ci : float * float;
  dvf : float;
}

type report = {
  workload : string;
  label : string;
  kill_fraction : float;
  killed_per_trial : int;
  components : int;
  seed : int;
  rows : row list;
  requests_lost : float;
  rho : float option;
}

let default_trials = 1000

(* Pair each endpoint's campaign with the analytical DVF of the
   components its requests touch, evaluated on the profiling-scale spec
   with the same cache/FIT/roofline defaults as Injection.correlate. *)
let report_of ~cache ~fit ~machine ~seed ~kill_fraction (w : Workload.t) graph
    campaigns =
  let inst = w.Workload.instance `Profiling in
  let time =
    Perf.app_time machine ~cache ~flops:inst.Workload.flops inst.Workload.spec
  in
  let app = Dvf.of_spec ~cache ~fit ~time inst.Workload.spec in
  let dvf_of name =
    match
      List.find_opt
        (fun (s : Dvf.structure_dvf) -> String.equal s.Dvf.name name)
        app.Dvf.structures
    with
    | Some s -> s.Dvf.dvf
    | None ->
        invalid_arg
          (Printf.sprintf "Chaos.run: workload %s has no spec structure %S"
             w.Workload.name name)
  in
  let rows =
    List.map2
      (fun (e : Service_graph.endpoint) (c : Fi.campaign) ->
        let lo, hi = Fi.sdc_interval c in
        {
          endpoint = e.Service_graph.endpoint;
          weight = e.Service_graph.weight;
          trials = c.Fi.trials;
          lost = c.Fi.sdc;
          availability = 1.0 -. Fi.sdc_rate c;
          ci = (1.0 -. hi, 1.0 -. lo);
          dvf =
            List.fold_left
              (fun acc (comp : Service_graph.component) ->
                acc +. dvf_of comp.Service_graph.name)
              0.0
              (Service_graph.touched graph e);
        })
      graph.Service_graph.endpoints campaigns
  in
  let components = List.length graph.Service_graph.components in
  {
    workload = w.Workload.name;
    label =
      (Fault_model.component_kill ~kill_fraction graph).Fault_model.label;
    kill_fraction;
    killed_per_trial = Fault_model.kill_count ~kill_fraction ~components;
    components;
    seed;
    rows;
    requests_lost =
      List.fold_left
        (fun acc r -> acc +. (r.weight *. (1.0 -. r.availability)))
        0.0 rows;
    rho =
      Dvf_util.Maths.spearman_opt
        (Array.of_list (List.map (fun r -> r.availability) rows))
        (Array.of_list (List.map (fun r -> r.dvf) rows));
  }

let run ?(seed = Injection.default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Dvf_util.Telemetry.null)
    ?(kill_fraction = Fault_model.default_kill_fraction)
    ?(cache = Cachesim.Config.profiling_4mb) ?(fit = Injection.default_fit)
    ?(machine = Perf.default_machine) (w : Workload.t) =
  Option.map
    (fun graph ->
      let fm = Fault_model.component_kill ~kill_fraction graph in
      let campaigns =
        Injection.run_model ~seed ?trials ~jobs ~telemetry ~section:"chaos"
          ~workload:w.Workload.name fm
      in
      report_of ~cache ~fit ~machine ~seed ~kill_fraction w graph campaigns)
    w.Workload.topology

let run_all ?(seed = Injection.default_seed) ?trials ?(jobs = 1)
    ?(telemetry = Dvf_util.Telemetry.null)
    ?(kill_fraction = Fault_model.default_kill_fraction)
    ?(cache = Cachesim.Config.profiling_4mb) ?(fit = Injection.default_fit)
    ?(machine = Perf.default_machine) ws =
  let with_graph =
    List.filter_map
      (fun (w : Workload.t) ->
        Option.map (fun g -> (w, g)) w.Workload.topology)
      ws
  in
  let results =
    Injection.run_model_all ~seed ?trials ~jobs ~telemetry ~section:"chaos"
      (List.map
         (fun ((w : Workload.t), g) ->
           (w.Workload.name, Fault_model.component_kill ~kill_fraction g))
         with_graph)
  in
  List.map2
    (fun (w, graph) (_, campaigns) ->
      report_of ~cache ~fit ~machine ~seed ~kill_fraction w graph campaigns)
    with_graph results

let to_table r =
  let t =
    Dvf_util.Table.create
      ~title:(Printf.sprintf "Chaos campaign: %s" r.label)
      [
        ("endpoint", Dvf_util.Table.Left); ("weight", Dvf_util.Table.Right);
        ("trials", Dvf_util.Table.Right); ("lost", Dvf_util.Table.Right);
        ("availability", Dvf_util.Table.Right);
        ("95% CI", Dvf_util.Table.Right); ("DVF", Dvf_util.Table.Right);
      ]
  in
  List.iter
    (fun row ->
      let lo, hi = row.ci in
      Dvf_util.Table.add_row t
        [
          row.endpoint;
          Printf.sprintf "%.2f" row.weight;
          string_of_int row.trials; string_of_int row.lost;
          Printf.sprintf "%.4f" row.availability;
          Printf.sprintf "[%.4f, %.4f]" lo hi;
          Printf.sprintf "%.4g" row.dvf;
        ])
    r.rows;
  t

let pp_summary ppf r =
  Format.fprintf ppf "requests lost (mix-weighted): %.4f@." r.requests_lost;
  match r.rho with
  | Some rho ->
      Format.fprintf ppf "Spearman rho (availability vs DVF): %+.3f@." rho
  | None -> Format.fprintf ppf "Spearman rho (availability vs DVF): n/a@."

let to_csv reports =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "workload,endpoint,weight,trials,lost,availability,ci_lo,ci_hi,dvf\n";
  List.iter
    (fun r ->
      List.iter
        (fun row ->
          let lo, hi = row.ci in
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%.17g,%d,%d,%.17g,%.17g,%.17g,%.17g\n"
               r.workload row.endpoint row.weight row.trials row.lost
               row.availability lo hi row.dvf))
        r.rows)
    reports;
  Buffer.contents buf
