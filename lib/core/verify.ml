module Table = Dvf_util.Table

type row = {
  workload : string;
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;
  modeled : float;
}

let error row =
  Dvf_util.Maths.rel_error ~expected:row.simulated ~actual:row.modeled

module Telemetry = Dvf_util.Telemetry

let verify_instance ?(telemetry = Telemetry.null) ~cache
    (instance : Workload.instance) =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/%s" instance.Workload.workload
       cache.Cachesim.Config.name)
  @@ fun () ->
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.buffered () in
  let sim_cache = Cachesim.Cache.create cache in
  ignore
    (Memtrace.Recorder.add_batch_sink recorder
       (Memtrace.Recorder.cache_batch_sink sim_cache));
  let trace_ns = ref 0L in
  Telemetry.span telemetry "trace" (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      instance.Workload.trace registry recorder;
      Memtrace.Recorder.flush recorder;
      Cachesim.Cache.flush sim_cache;
      trace_ns := Int64.sub (Telemetry.now_ns telemetry) t0);
  let snapshot =
    Cachesim.Stats.snapshot (Cachesim.Cache.stats sim_cache)
  in
  if Telemetry.enabled telemetry then begin
    (* Global accumulators the throughput gauges divide at the end of the
       sweep; counters are deterministic, the [trace_total] span is not. *)
    Telemetry.add telemetry ~n:(Memtrace.Recorder.events_emitted recorder)
      "recorder/events";
    Telemetry.add telemetry
      ~n:(Memtrace.Recorder.batches_dispatched recorder)
      "recorder/batches";
    Telemetry.add telemetry
      ~n:(Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
      "cache/accesses";
    Telemetry.time_ns telemetry "verify/trace_total" !trace_ns
  end;
  let modeled =
    Telemetry.span telemetry "model" (fun () ->
        Access_patterns.App_spec.main_memory_accesses ~cache
          instance.Workload.spec)
  in
  List.map
    (fun (structure, model_value) ->
      let region = Memtrace.Region.lookup registry structure in
      let simulated =
        float_of_int
          (Cachesim.Stats.Snapshot.owner_main_memory snapshot
             region.Memtrace.Region.id)
      in
      { workload = instance.Workload.workload; cache; structure; simulated;
        modeled = model_value })
    modeled

(* Every workload x cache job owns a private registry/recorder/cache (all
   mutable), so jobs share nothing and the parallel sweep is bit-identical
   to the serial one.  [Parallel.map_list] preserves input order; the
   serial path below enumerates workloads (outer) then caches (inner), and
   the parallel path enumerates the same pairs in the same order. *)
let finalize_metrics telemetry =
  if Telemetry.enabled telemetry then begin
    Telemetry.gauge_rate telemetry ~name:"cache/accesses_per_sec"
      ~counter:"cache/accesses" ~span:"verify/trace_total";
    Telemetry.gauge_rate telemetry ~name:"recorder/events_per_sec"
      ~counter:"recorder/events" ~span:"verify/trace_total";
    let batches = Telemetry.counter_value telemetry "recorder/batches" in
    if batches > 0 then
      Telemetry.set_gauge telemetry "recorder/mean_batch_size"
        (float_of_int (Telemetry.counter_value telemetry "recorder/events")
        /. float_of_int batches)
  end

let run_all ?jobs ?(telemetry = Telemetry.null) ?workloads () =
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  (* Absolute timer rather than an enclosing [span]: instance spans run in
     worker domains (fresh span stacks) under [-j N], so an enclosing span
     would prefix their paths only in the serial case and the two metrics
     documents would disagree on structure. *)
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then
      List.concat_map
        (fun workload ->
          let instance = Workloads.verification_instance workload in
          List.concat_map
            (fun cache -> verify_instance ~telemetry ~cache instance)
            Cachesim.Config.verification_set)
        workloads
    else
      Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
          (* Building an instance runs the kernel untraced (to learn its
             iteration count); parallelize that too, then fan out over the
             workload x cache cross product. *)
          let instances =
            Dvf_util.Parallel.Pool.map_list pool Workloads.verification_instance
              workloads
          in
          let pairs =
            List.concat_map
              (fun instance ->
                List.map
                  (fun cache -> (instance, cache))
                  Cachesim.Config.verification_set)
              instances
          in
          List.concat
            (Dvf_util.Parallel.Pool.map_list pool
               (fun (instance, cache) -> verify_instance ~telemetry ~cache instance)
               pairs))
  in
  if Telemetry.enabled telemetry then
    Telemetry.time_ns telemetry "verify/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0);
  finalize_metrics telemetry;
  rows

let workload_error ~rows workload cache =
  let relevant =
    List.filter
      (fun r -> r.workload = workload && r.cache.Cachesim.Config.name = cache.Cachesim.Config.name)
      rows
  in
  if relevant = [] then invalid_arg "Verify.workload_error: no rows";
  let total_sim = List.fold_left (fun acc r -> acc +. r.simulated) 0.0 relevant in
  let total_model = List.fold_left (fun acc r -> acc +. r.modeled) 0.0 relevant in
  Dvf_util.Maths.rel_error ~expected:total_sim ~actual:total_model

let to_table rows =
  let t =
    Table.create
      ~title:
        "Fig. 4 - Model verification: estimated vs simulated main-memory \
         accesses"
      [
        ("kernel", Table.Left); ("cache", Table.Left);
        ("structure", Table.Left); ("simulated", Table.Right);
        ("modeled", Table.Right); ("error %", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload; r.cache.Cachesim.Config.name; r.structure;
          Table.cell_float r.simulated; Table.cell_float r.modeled;
          Printf.sprintf "%.1f" (100.0 *. error r);
        ])
    rows;
  t
