module Table = Dvf_util.Table

type row = {
  workload : string;
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;
  modeled : float;
}

let error row =
  Dvf_util.Maths.rel_error ~expected:row.simulated ~actual:row.modeled

module Telemetry = Dvf_util.Telemetry

type strategy = Retrace | Replay | Fused

let strategies = [ ("retrace", Retrace); ("replay", Replay); ("fused", Fused) ]
let strategy_name s = fst (List.find (fun (_, v) -> v = s) strategies)

(* Turn one simulated cache's final state into Fig. 4 rows: run the
   analytical model (under a ["model"] span) and pair each structure's
   estimate with the simulator's per-owner main-memory count. *)
let rows_of_snapshot ~telemetry ~cache ~registry (instance : Workload.instance)
    snapshot =
  let modeled =
    Telemetry.span telemetry "model" (fun () ->
        Access_patterns.App_spec.main_memory_accesses ~cache
          instance.Workload.spec)
  in
  List.map
    (fun (structure, model_value) ->
      let region = Memtrace.Region.lookup registry structure in
      let simulated =
        float_of_int
          (Cachesim.Stats.Snapshot.owner_main_memory snapshot
             region.Memtrace.Region.id)
      in
      { workload = instance.Workload.workload; cache; structure; simulated;
        modeled = model_value })
    modeled

let verify_instance ?(telemetry = Telemetry.null) ~cache
    (instance : Workload.instance) =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/%s" instance.Workload.workload
       cache.Cachesim.Config.name)
  @@ fun () ->
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.buffered () in
  let sim_cache = Cachesim.Cache.create cache in
  ignore
    (Memtrace.Recorder.add_batch_sink recorder
       (Memtrace.Recorder.cache_batch_sink sim_cache));
  let trace_ns = ref 0L in
  Telemetry.span telemetry "trace" (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      instance.Workload.trace registry recorder;
      Memtrace.Recorder.flush recorder;
      Cachesim.Cache.flush sim_cache;
      trace_ns := Int64.sub (Telemetry.now_ns telemetry) t0);
  let snapshot =
    Cachesim.Stats.snapshot (Cachesim.Cache.stats sim_cache)
  in
  if Telemetry.enabled telemetry then begin
    (* Global accumulators the throughput gauges divide at the end of the
       sweep; counters are deterministic, the [trace_total] span is not. *)
    Telemetry.add telemetry ~n:(Memtrace.Recorder.events_emitted recorder)
      "recorder/events";
    Telemetry.add telemetry
      ~n:(Memtrace.Recorder.batches_dispatched recorder)
      "recorder/batches";
    Telemetry.add telemetry
      ~n:(Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
      "cache/accesses";
    Telemetry.time_ns telemetry "verify/trace_total" !trace_ns
  end;
  rows_of_snapshot ~telemetry ~cache ~registry instance snapshot

(* --- capture once, replay many --- *)

type capture = {
  instance : Workload.instance;
  registry : Memtrace.Region.t;
  tape : Memtrace.Tape.t;
}

let capture ?(telemetry = Telemetry.null) (instance : Workload.instance) =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/capture" instance.Workload.workload)
  @@ fun () ->
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.buffered () in
  let tape = Memtrace.Tape.create () in
  ignore
    (Memtrace.Recorder.add_batch_sink recorder (Memtrace.Tape.batch_sink tape));
  let t0 = Telemetry.now_ns telemetry in
  instance.Workload.trace registry recorder;
  Memtrace.Recorder.flush recorder;
  let capture_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
  if Telemetry.enabled telemetry then begin
    Telemetry.add telemetry ~n:(Memtrace.Recorder.events_emitted recorder)
      "recorder/events";
    Telemetry.add telemetry
      ~n:(Memtrace.Recorder.batches_dispatched recorder)
      "recorder/batches";
    Telemetry.add telemetry ~n:(Memtrace.Tape.length tape)
      "tape/capture_events";
    Telemetry.add telemetry ~n:(Memtrace.Tape.allocated_bytes tape)
      "tape/allocated_bytes";
    Telemetry.time_ns telemetry "verify/capture_total" capture_ns
  end;
  { instance; registry; tape }

let replay_capture ?(telemetry = Telemetry.null) ~cache cap =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/%s" cap.instance.Workload.workload
       cache.Cachesim.Config.name)
  @@ fun () ->
  let sim_cache = Cachesim.Cache.create cache in
  let replay_ns = ref 0L in
  Telemetry.span telemetry "replay" (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      Memtrace.Tape.replay cap.tape sim_cache;
      Cachesim.Cache.flush sim_cache;
      replay_ns := Int64.sub (Telemetry.now_ns telemetry) t0);
  let snapshot = Cachesim.Stats.snapshot (Cachesim.Cache.stats sim_cache) in
  if Telemetry.enabled telemetry then begin
    Telemetry.add telemetry ~n:(Memtrace.Tape.length cap.tape)
      "tape/replay_events";
    Telemetry.add telemetry
      ~n:(Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
      "cache/accesses";
    Telemetry.time_ns telemetry "verify/replay_total" !replay_ns
  end;
  rows_of_snapshot ~telemetry ~cache ~registry:cap.registry cap.instance
    snapshot

let replay_capture_fused ?(telemetry = Telemetry.null) ~caches cap =
  let sims =
    Telemetry.span telemetry
      (Printf.sprintf "verify/%s/fused" cap.instance.Workload.workload)
      (fun () ->
        let sims = Array.of_list (List.map Cachesim.Cache.create caches) in
        let t0 = Telemetry.now_ns telemetry in
        Memtrace.Tape.replay_fused cap.tape sims;
        Array.iter Cachesim.Cache.flush sims;
        let replay_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
        if Telemetry.enabled telemetry then begin
          Telemetry.add telemetry
            ~n:(Array.length sims * Memtrace.Tape.length cap.tape)
            "tape/replay_events";
          Telemetry.time_ns telemetry "verify/replay_total" replay_ns
        end;
        sims)
  in
  List.concat
    (List.mapi
       (fun i cache ->
         let snapshot =
           Cachesim.Stats.snapshot (Cachesim.Cache.stats sims.(i))
         in
         if Telemetry.enabled telemetry then
           Telemetry.add telemetry
             ~n:
               (Cachesim.Stats.Snapshot.accesses
                  snapshot.Cachesim.Stats.totals)
             "cache/accesses";
         rows_of_snapshot ~telemetry ~cache ~registry:cap.registry
           cap.instance snapshot)
       caches)

(* Every job owns private mutable state (registry/recorder/cache for a
   retrace job; the tape is append-only during capture and read-only
   during replay), so jobs share nothing mutable and the parallel sweep is
   bit-identical to the serial one.  [Parallel.map_list] preserves input
   order; every path below enumerates workloads (outer) then caches
   (inner) in the same order. *)
let finalize_metrics telemetry =
  if Telemetry.enabled telemetry then begin
    (* Retrace: whole-pipeline rates (kernel execution + simulation in one
       denominator).  [gauge_rate] is a no-op for a span with no time, so
       only the gauges of the strategy that actually ran appear. *)
    Telemetry.gauge_rate telemetry ~name:"cache/accesses_per_sec"
      ~counter:"cache/accesses" ~span:"verify/trace_total";
    Telemetry.gauge_rate telemetry ~name:"recorder/events_per_sec"
      ~counter:"recorder/events" ~span:"verify/trace_total";
    (* Capture/replay: the two phases rated separately — the retrace-era
       recorder rate divided by a span that lumped kernel execution in
       with cache simulation and understated both. *)
    Telemetry.gauge_rate telemetry ~name:"recorder/events_per_sec"
      ~counter:"recorder/events" ~span:"verify/capture_total";
    Telemetry.gauge_rate telemetry ~name:"tape/capture_events_per_sec"
      ~counter:"tape/capture_events" ~span:"verify/capture_total";
    Telemetry.gauge_rate telemetry ~name:"tape/replay_events_per_sec"
      ~counter:"tape/replay_events" ~span:"verify/replay_total";
    Telemetry.gauge_rate telemetry ~name:"cache/accesses_per_sec"
      ~counter:"cache/accesses" ~span:"verify/replay_total";
    let captured = Telemetry.counter_value telemetry "tape/capture_events" in
    if captured > 0 then
      Telemetry.set_gauge telemetry "tape/bytes_per_event"
        (float_of_int (Telemetry.counter_value telemetry "tape/allocated_bytes")
        /. float_of_int captured);
    let batches = Telemetry.counter_value telemetry "recorder/batches" in
    if batches > 0 then
      Telemetry.set_gauge telemetry "recorder/mean_batch_size"
        (float_of_int (Telemetry.counter_value telemetry "recorder/events")
        /. float_of_int batches)
  end

let run_all ?jobs ?(telemetry = Telemetry.null) ?(strategy = Replay)
    ?workloads () =
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let caches = Cachesim.Config.verification_set in
  (* Absolute timer rather than an enclosing [span]: instance spans run in
     worker domains (fresh span stacks) under [-j N], so an enclosing span
     would prefix their paths only in the serial case and the two metrics
     documents would disagree on structure. *)
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then
      List.concat_map
        (fun workload ->
          let instance = Workloads.verification_instance workload in
          match strategy with
          | Retrace ->
              List.concat_map
                (fun cache -> verify_instance ~telemetry ~cache instance)
                caches
          | Replay ->
              let cap = capture ~telemetry instance in
              List.concat_map
                (fun cache -> replay_capture ~telemetry ~cache cap)
                caches
          | Fused ->
              replay_capture_fused ~telemetry ~caches
                (capture ~telemetry instance))
        workloads
    else
      Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
          (* Building an instance runs the kernel untraced (to learn its
             iteration count); parallelize that too, then fan out over the
             workload x cache cross product (or, for [Fused], over
             workloads — each job walks its tape once for all caches). *)
          let instances =
            Dvf_util.Parallel.Pool.map_list pool Workloads.verification_instance
              workloads
          in
          match strategy with
          | Retrace ->
              let pairs =
                List.concat_map
                  (fun instance ->
                    List.map (fun cache -> (instance, cache)) caches)
                  instances
              in
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun (instance, cache) ->
                     verify_instance ~telemetry ~cache instance)
                   pairs)
          | Replay ->
              (* Capture each workload's tape once (in parallel), then fan
                 the replays over the pool: tapes are immutable after
                 capture, so concurrent replays of one tape are safe. *)
              let captures =
                Dvf_util.Parallel.Pool.map_list pool
                  (fun instance -> capture ~telemetry instance)
                  instances
              in
              let pairs =
                List.concat_map
                  (fun cap -> List.map (fun cache -> (cap, cache)) caches)
                  captures
              in
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun (cap, cache) -> replay_capture ~telemetry ~cache cap)
                   pairs)
          | Fused ->
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun instance ->
                     replay_capture_fused ~telemetry ~caches
                       (capture ~telemetry instance))
                   instances))
  in
  if Telemetry.enabled telemetry then
    Telemetry.time_ns telemetry "verify/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0);
  finalize_metrics telemetry;
  rows

let workload_error ~rows workload cache =
  let relevant =
    List.filter
      (fun r -> r.workload = workload && r.cache.Cachesim.Config.name = cache.Cachesim.Config.name)
      rows
  in
  if relevant = [] then invalid_arg "Verify.workload_error: no rows";
  let total_sim = List.fold_left (fun acc r -> acc +. r.simulated) 0.0 relevant in
  let total_model = List.fold_left (fun acc r -> acc +. r.modeled) 0.0 relevant in
  Dvf_util.Maths.rel_error ~expected:total_sim ~actual:total_model

let to_table rows =
  let t =
    Table.create
      ~title:
        "Fig. 4 - Model verification: estimated vs simulated main-memory \
         accesses"
      [
        ("kernel", Table.Left); ("cache", Table.Left);
        ("structure", Table.Left); ("simulated", Table.Right);
        ("modeled", Table.Right); ("error %", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload; r.cache.Cachesim.Config.name; r.structure;
          Table.cell_float r.simulated; Table.cell_float r.modeled;
          Printf.sprintf "%.1f" (100.0 *. error r);
        ])
    rows;
  t
