module Table = Dvf_util.Table

type row = {
  workload : string;
  cache : Cachesim.Config.t;
  structure : string;
  simulated : float;
  modeled : float;
}

let error row =
  Dvf_util.Maths.rel_error ~expected:row.simulated ~actual:row.modeled

module Telemetry = Dvf_util.Telemetry

type strategy = Retrace | Replay | Fused | Sharded

let strategies =
  [
    ("retrace", Retrace); ("replay", Replay); ("fused", Fused);
    ("sharded", Sharded);
  ]

let strategy_name s = fst (List.find (fun (_, v) -> v = s) strategies)

(* Largest power of two <= n; the set-sharded walks require a
   power-of-two shard count so the shard bits nest inside the set
   index bits. *)
let pow2_floor n =
  if n < 1 then 1
  else begin
    let p = ref 1 in
    while !p * 2 <= n do p := !p * 2 done;
    !p
  end

let check_shard_count shards =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Verify: shards must be a positive power of two (got %d)" shards)

(* Central shard-count clamp.  The engine clamps per call
   ([access_batch_sharded] lowers its effective width to the cache's set
   count), but a width above the smallest consumer's set count would
   still spawn tasks that own no line of that consumer — and would leave
   the partition view and the walk disagreeing about how many tasks
   exist.  Clamping once, where the width is chosen, keeps task fan-out,
   partition views and telemetry on the same number.  Set counts are
   powers of two, so the clamped width still is; rows never depend on
   the width, so the clamp is invisible in the output. *)
let clamp_shards ~configs shards =
  List.fold_left
    (fun acc (c : Cachesim.Config.t) -> min acc c.Cachesim.Config.sets)
    shards configs

(* Turn one simulated cache's final state into Fig. 4 rows: run the
   analytical model (under a ["model"] span) and pair each structure's
   estimate with the simulator's per-owner main-memory count. *)
let rows_of_snapshot ~telemetry ~cache ~registry (instance : Workload.instance)
    snapshot =
  let modeled =
    Telemetry.span telemetry "model" (fun () ->
        Access_patterns.App_spec.main_memory_accesses ~cache
          instance.Workload.spec)
  in
  List.map
    (fun (structure, model_value) ->
      let region = Memtrace.Region.lookup registry structure in
      let simulated =
        float_of_int
          (Cachesim.Stats.Snapshot.owner_main_memory snapshot
             region.Memtrace.Region.id)
      in
      { workload = instance.Workload.workload; cache; structure; simulated;
        modeled = model_value })
    modeled

let verify_instance ?(telemetry = Telemetry.null) ~cache
    (instance : Workload.instance) =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/%s" instance.Workload.workload
       cache.Cachesim.Config.name)
  @@ fun () ->
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.buffered () in
  let sim_cache = Cachesim.Cache.create cache in
  ignore
    (Memtrace.Recorder.add_batch_sink recorder
       (Memtrace.Recorder.cache_batch_sink sim_cache));
  let trace_ns = ref 0L in
  Telemetry.span telemetry "trace" (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      instance.Workload.trace registry recorder;
      Memtrace.Recorder.flush recorder;
      Cachesim.Cache.flush sim_cache;
      trace_ns := Int64.sub (Telemetry.now_ns telemetry) t0);
  let snapshot =
    Cachesim.Stats.snapshot (Cachesim.Cache.stats sim_cache)
  in
  if Telemetry.enabled telemetry then begin
    (* Global accumulators the throughput gauges divide at the end of the
       sweep; counters are deterministic, the [trace_total] span is not. *)
    Telemetry.add telemetry ~n:(Memtrace.Recorder.events_emitted recorder)
      "recorder/events";
    Telemetry.add telemetry
      ~n:(Memtrace.Recorder.batches_dispatched recorder)
      "recorder/batches";
    Telemetry.add telemetry
      ~n:(Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
      "cache/accesses";
    Telemetry.time_ns telemetry "verify/trace_total" !trace_ns
  end;
  rows_of_snapshot ~telemetry ~cache ~registry instance snapshot

(* --- capture once, replay many --- *)

type capture = {
  instance : Workload.instance;
  registry : Memtrace.Region.t;
  tape : Memtrace.Tape.t;
}

let capture_fresh ~telemetry (instance : Workload.instance) =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/capture" instance.Workload.workload)
  @@ fun () ->
  let registry = Memtrace.Region.create () in
  let recorder = Memtrace.Recorder.buffered () in
  let tape = Memtrace.Tape.create () in
  ignore
    (Memtrace.Recorder.add_batch_sink recorder (Memtrace.Tape.batch_sink tape));
  let t0 = Telemetry.now_ns telemetry in
  instance.Workload.trace registry recorder;
  Memtrace.Recorder.flush recorder;
  let capture_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
  if Telemetry.enabled telemetry then begin
    Telemetry.add telemetry ~n:(Memtrace.Recorder.events_emitted recorder)
      "recorder/events";
    Telemetry.add telemetry
      ~n:(Memtrace.Recorder.batches_dispatched recorder)
      "recorder/batches";
    Telemetry.add telemetry ~n:(Memtrace.Tape.length tape)
      "tape/capture_events";
    Telemetry.add telemetry ~n:(Memtrace.Tape.allocated_bytes tape)
      "tape/allocated_bytes";
    Telemetry.time_ns telemetry "verify/capture_total" capture_ns
  end;
  (registry, tape)

(* The workloads take no per-run seed (instances are deterministic given
   their size label), so the store key's seed slot is fixed at 0 until a
   seeded workload family needs it. *)
let store_key (instance : Workload.instance) =
  {
    Memtrace.Tape_store.workload = instance.Workload.workload;
    size = instance.Workload.label;
    seed = 0;
  }

let capture ?(telemetry = Telemetry.null) ?store
    (instance : Workload.instance) =
  let registry, tape =
    match store with
    | None -> capture_fresh ~telemetry instance
    | Some st ->
        (* On a store hit the kernel never runs and no tape events are
           captured: [tape/capture_events] stays 0 while [store/hits]
           advances — the pair CI asserts on a warm store. *)
        let registry, tape, _hit =
          Memtrace.Tape_store.find_or_capture st (store_key instance)
            ~capture:(fun () -> capture_fresh ~telemetry instance)
        in
        (registry, tape)
  in
  { instance; registry; tape }

let replay_capture ?(telemetry = Telemetry.null) ~cache cap =
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/%s" cap.instance.Workload.workload
       cache.Cachesim.Config.name)
  @@ fun () ->
  let sim_cache = Cachesim.Cache.create cache in
  let replay_ns = ref 0L in
  Telemetry.span telemetry "replay" (fun () ->
      let t0 = Telemetry.now_ns telemetry in
      Memtrace.Tape.replay cap.tape sim_cache;
      Cachesim.Cache.flush sim_cache;
      replay_ns := Int64.sub (Telemetry.now_ns telemetry) t0);
  let snapshot = Cachesim.Stats.snapshot (Cachesim.Cache.stats sim_cache) in
  if Telemetry.enabled telemetry then begin
    Telemetry.add telemetry ~n:(Memtrace.Tape.length cap.tape)
      "tape/replay_events";
    Telemetry.add telemetry
      ~n:(Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
      "cache/accesses";
    Telemetry.time_ns telemetry "verify/replay_total" !replay_ns
  end;
  rows_of_snapshot ~telemetry ~cache ~registry:cap.registry cap.instance
    snapshot

let replay_capture_fused ?(telemetry = Telemetry.null) ~caches cap =
  let sims =
    Telemetry.span telemetry
      (Printf.sprintf "verify/%s/fused" cap.instance.Workload.workload)
      (fun () ->
        let sims = Array.of_list (List.map Cachesim.Cache.create caches) in
        let t0 = Telemetry.now_ns telemetry in
        Memtrace.Tape.replay_fused cap.tape sims;
        Array.iter Cachesim.Cache.flush sims;
        let replay_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
        if Telemetry.enabled telemetry then begin
          Telemetry.add telemetry
            ~n:(Array.length sims * Memtrace.Tape.length cap.tape)
            "tape/replay_events";
          Telemetry.time_ns telemetry "verify/replay_total" replay_ns
        end;
        sims)
  in
  List.concat
    (List.mapi
       (fun i cache ->
         let snapshot =
           Cachesim.Stats.snapshot (Cachesim.Cache.stats sims.(i))
         in
         if Telemetry.enabled telemetry then
           Telemetry.add telemetry
             ~n:
               (Cachesim.Stats.Snapshot.accesses
                  snapshot.Cachesim.Stats.totals)
             "cache/accesses";
         rows_of_snapshot ~telemetry ~cache ~registry:cap.registry
           cap.instance snapshot)
       caches)

(* --- set-sharded fused replay ---

   The shard task for shard [s] creates a private replica of every cache,
   walks the whole tape once touching only [s]'s lines in each replica,
   and flushes.  Replicas share nothing, so the tasks run on any domains
   with zero locking; merging each cache's replica statistics in shard
   order ([Stats.sum], commutative addition) reproduces the serial fused
   statistics bit for bit.

   The tape is partitioned up front ([Tape.partition]): each shard task
   walks only the chunks whose partition index intersects its shard,
   instead of rescanning the whole tape and discarding.  Returns the
   views alongside the merged statistics so the caller can report the
   skip telemetry. *)
let sharded_shard_stats ?pool ~caches ~shards cap =
  let views =
    Memtrace.Tape.partition cap.tape
      (Array.of_list (List.map Cachesim.Cache.create caches))
      ~shards
  in
  let run_shard shard =
    let sims = Array.of_list (List.map Cachesim.Cache.create caches) in
    Memtrace.Tape.replay_view views.(shard) sims;
    Array.iter Cachesim.Cache.flush sims;
    Array.map Cachesim.Cache.stats sims
  in
  let shard_ids = List.init shards (fun s -> s) in
  let per_shard =
    match pool with
    | Some pool -> Dvf_util.Parallel.Pool.map_list pool run_shard shard_ids
    | None -> List.map run_shard shard_ids
  in
  let merged =
    List.mapi
      (fun i _ ->
        Cachesim.Stats.sum (List.map (fun stats -> stats.(i)) per_shard))
      caches
  in
  (merged, views)

let sum_over_views views f =
  Array.fold_left (fun acc v -> acc + f v) 0 views

let replay_capture_sharded ?(telemetry = Telemetry.null) ?pool ~caches ~shards
    cap =
  check_shard_count shards;
  let shards = clamp_shards ~configs:caches shards in
  Telemetry.span telemetry
    (Printf.sprintf "verify/%s/sharded" cap.instance.Workload.workload)
  @@ fun () ->
  let t0 = Telemetry.now_ns telemetry in
  let merged, views = sharded_shard_stats ?pool ~caches ~shards cap in
  let replay_ns = Int64.sub (Telemetry.now_ns telemetry) t0 in
  if Telemetry.enabled telemetry then begin
    (* Logical event count, independent of the shard fan-out: every cache
       consumed the full stream exactly once (each shard touched a
       disjoint slice of it). *)
    Telemetry.add telemetry
      ~n:(List.length caches * Memtrace.Tape.length cap.tape)
      "tape/replay_events";
    Telemetry.add telemetry ~n:shards "shard/tasks";
    (* Engine-side work: after the central clamp every cache owns lines
       in every shard task, and each task walks only the chunks its
       partition view selected — so the walked total is caches x sum
       over shards of the view's event count.  The aggregate
       walked-events rate is the sharded engine's throughput summed over
       its domains — the figure wall-clock converges to when the shard
       tasks really run in parallel. *)
    Telemetry.add telemetry
      ~n:
        (List.length caches
        * sum_over_views views Memtrace.Tape.view_events)
      "shard/walked_events";
    Telemetry.add telemetry
      ~n:(sum_over_views views Memtrace.Tape.view_chunks_skipped)
      "tape/chunks_skipped";
    Telemetry.set_gauge telemetry "shard/count" (float_of_int shards);
    Telemetry.time_ns telemetry "verify/replay_total" replay_ns
  end;
  List.concat
    (List.map2
       (fun cache stats ->
         let snapshot = Cachesim.Stats.snapshot stats in
         if Telemetry.enabled telemetry then
           Telemetry.add telemetry
             ~n:
               (Cachesim.Stats.Snapshot.accesses snapshot.Cachesim.Stats.totals)
             "cache/accesses";
         rows_of_snapshot ~telemetry ~cache ~registry:cap.registry cap.instance
           snapshot)
       caches merged)

(* Every job owns private mutable state (registry/recorder/cache for a
   retrace job; the tape is append-only during capture and read-only
   during replay), so jobs share nothing mutable and the parallel sweep is
   bit-identical to the serial one.  [Parallel.map_list] preserves input
   order; every path below enumerates workloads (outer) then caches
   (inner) in the same order. *)
let finalize_metrics telemetry =
  if Telemetry.enabled telemetry then begin
    (* Retrace: whole-pipeline rates (kernel execution + simulation in one
       denominator).  [gauge_rate] is a no-op for a span with no time, so
       only the gauges of the strategy that actually ran appear. *)
    Telemetry.gauge_rate telemetry ~name:"cache/accesses_per_sec"
      ~counter:"cache/accesses" ~span:"verify/trace_total";
    Telemetry.gauge_rate telemetry ~name:"recorder/events_per_sec"
      ~counter:"recorder/events" ~span:"verify/trace_total";
    (* Capture/replay: the two phases rated separately — the retrace-era
       recorder rate divided by a span that lumped kernel execution in
       with cache simulation and understated both. *)
    Telemetry.gauge_rate telemetry ~name:"recorder/events_per_sec"
      ~counter:"recorder/events" ~span:"verify/capture_total";
    Telemetry.gauge_rate telemetry ~name:"tape/capture_events_per_sec"
      ~counter:"tape/capture_events" ~span:"verify/capture_total";
    Telemetry.gauge_rate telemetry ~name:"tape/replay_events_per_sec"
      ~counter:"tape/replay_events" ~span:"verify/replay_total";
    Telemetry.gauge_rate telemetry ~name:"tape/timed_replay_events_per_sec"
      ~counter:"tape/timed_replay_events" ~span:"verify/timed_total";
    Telemetry.gauge_rate telemetry ~name:"cache/accesses_per_sec"
      ~counter:"cache/accesses" ~span:"verify/replay_total";
    let captured = Telemetry.counter_value telemetry "tape/capture_events" in
    if captured > 0 then
      Telemetry.set_gauge telemetry "tape/bytes_per_event"
        (float_of_int (Telemetry.counter_value telemetry "tape/allocated_bytes")
        /. float_of_int captured);
    let batches = Telemetry.counter_value telemetry "recorder/batches" in
    if batches > 0 then
      Telemetry.set_gauge telemetry "recorder/mean_batch_size"
        (float_of_int (Telemetry.counter_value telemetry "recorder/events")
        /. float_of_int batches)
  end

let run_all ?jobs ?(telemetry = Telemetry.null) ?(strategy = Replay) ?shards
    ?store ?workloads () =
  if strategy = Retrace && store <> None then
    invalid_arg
      "Verify.run_all: the retrace strategy re-executes the kernel per cache \
       and never captures a tape, so a tape store cannot help it; use \
       replay, fused or sharded";
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let caches = Cachesim.Config.verification_set in
  let shards =
    clamp_shards ~configs:caches
      (match shards with
      | Some s ->
          check_shard_count s;
          s
      | None -> pow2_floor (max 1 jobs))
  in
  (* Absolute timer rather than an enclosing [span]: instance spans run in
     worker domains (fresh span stacks) under [-j N], so an enclosing span
     would prefix their paths only in the serial case and the two metrics
     documents would disagree on structure. *)
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then
      List.concat_map
        (fun workload ->
          let instance = Workloads.verification_instance workload in
          match strategy with
          | Retrace ->
              List.concat_map
                (fun cache -> verify_instance ~telemetry ~cache instance)
                caches
          | Replay ->
              let cap = capture ~telemetry ?store instance in
              List.concat_map
                (fun cache -> replay_capture ~telemetry ~cache cap)
                caches
          | Fused ->
              replay_capture_fused ~telemetry ~caches
                (capture ~telemetry ?store instance)
          | Sharded ->
              replay_capture_sharded ~telemetry ~caches ~shards
                (capture ~telemetry ?store instance))
        workloads
    else
      Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
          (* Building an instance runs the kernel untraced (to learn its
             iteration count); parallelize that too, then fan out over the
             workload x cache cross product (or, for [Fused], over
             workloads — each job walks its tape once for all caches). *)
          let instances =
            Dvf_util.Parallel.Pool.map_list pool Workloads.verification_instance
              workloads
          in
          match strategy with
          | Retrace ->
              let pairs =
                List.concat_map
                  (fun instance ->
                    List.map (fun cache -> (instance, cache)) caches)
                  instances
              in
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun (instance, cache) ->
                     verify_instance ~telemetry ~cache instance)
                   pairs)
          | Replay ->
              (* Capture each workload's tape once (in parallel), then fan
                 the replays over the pool: tapes are immutable after
                 capture, so concurrent replays of one tape are safe. *)
              let captures =
                Dvf_util.Parallel.Pool.map_list pool
                  (fun instance -> capture ~telemetry ?store instance)
                  instances
              in
              let pairs =
                List.concat_map
                  (fun cap -> List.map (fun cache -> (cap, cache)) caches)
                  captures
              in
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun (cap, cache) -> replay_capture ~telemetry ~cache cap)
                   pairs)
          | Fused ->
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun instance ->
                     replay_capture_fused ~telemetry ~caches
                       (capture ~telemetry ?store instance))
                   instances)
          | Sharded ->
              (* Captures fan out over the pool first; then each capture's
                 shard tasks do (the pool is handed down, and the shard
                 fan-out runs from this orchestrating domain). *)
              let captures =
                Dvf_util.Parallel.Pool.map_list pool
                  (fun instance -> capture ~telemetry ?store instance)
                  instances
              in
              List.concat_map
                (fun cap ->
                  replay_capture_sharded ~telemetry ~pool ~caches ~shards cap)
                captures)
  in
  if Telemetry.enabled telemetry then
    Telemetry.time_ns telemetry "verify/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0);
  finalize_metrics telemetry;
  rows

(* --- per-level rows: DVF input per hardware level ---

   A hierarchy run reports raw traffic per level instead of the
   modeled-vs-simulated pair: the analytical model targets a single
   (last-level) cache, but per-level misses and writebacks are exactly
   the per-level access counts a Thales-style vulnerability formulation
   consumes.  Level 1 of a 1-level run is bit-identical to the single
   cache the classic rows simulate. *)

type level_row = {
  l_workload : string;
  base_cache : Cachesim.Config.t;
  level : int; (* 1-based *)
  level_cache : Cachesim.Config.t;
  l_structure : string;
  accesses : float;
  misses : float;
  l_writebacks : float;
}

let level_rows_of_stats ~registry (instance : Workload.instance) ~base ~configs
    stats_list =
  List.concat
    (List.mapi
       (fun li (config, stats) ->
         let snapshot = Cachesim.Stats.snapshot stats in
         List.map
           (fun (r : Memtrace.Region.region) ->
             let c =
               Cachesim.Stats.Snapshot.owner snapshot r.Memtrace.Region.id
             in
             {
               l_workload = instance.Workload.workload;
               base_cache = base;
               level = li + 1;
               level_cache = config;
               l_structure = r.Memtrace.Region.name;
               accesses = float_of_int (Cachesim.Stats.Snapshot.accesses c);
               misses = float_of_int c.Cachesim.Stats.misses;
               l_writebacks = float_of_int c.Cachesim.Stats.writebacks;
             })
           (Memtrace.Region.regions registry))
       (List.combine configs stats_list))

let hierarchy_level_stats h =
  List.init (Cachesim.Hierarchy.depth h) (fun li ->
      Cachesim.Cache.stats (Cachesim.Hierarchy.level_cache h li))

let record_level_counters telemetry ~configs stats_list =
  if Telemetry.enabled telemetry then
    List.iteri
      (fun li ((_ : Cachesim.Config.t), stats) ->
        let totals = Cachesim.Stats.totals stats in
        let name fmt = Printf.sprintf fmt (li + 1) in
        Telemetry.add telemetry
          ~n:(Cachesim.Stats.Snapshot.accesses totals)
          (name "hierarchy/l%d/accesses");
        Telemetry.add telemetry ~n:totals.Cachesim.Stats.misses
          (name "hierarchy/l%d/misses");
        Telemetry.add telemetry ~n:totals.Cachesim.Stats.writebacks
          (name "hierarchy/l%d/writebacks"))
      (List.combine configs stats_list)

(* One capture's per-level rows over every verification base geometry,
   serially — the [Replay]/[Fused] unit of work in [run_all_levels] and
   the whole job for a [Serve] levels request. *)
let capture_level_rows ?(telemetry = Telemetry.null) ~levels cap =
  List.concat_map
    (fun base ->
      let configs = Cachesim.Config.hierarchy_of ~levels base in
      let h = Cachesim.Hierarchy.create configs in
      Memtrace.Tape.replay_hierarchies cap.tape [| h |];
      Cachesim.Hierarchy.flush h;
      let stats_list = hierarchy_level_stats h in
      record_level_counters telemetry ~configs stats_list;
      level_rows_of_stats ~registry:cap.registry cap.instance ~base ~configs
        stats_list)
    Cachesim.Config.verification_set

let run_all_levels ?jobs ?(telemetry = Telemetry.null) ?(strategy = Replay)
    ?shards ?store ?workloads ~levels () =
  if strategy = Retrace then
    invalid_arg
      "Verify.run_all_levels: the retrace strategy re-executes the kernel \
       straight into a single cache and cannot drive a hierarchy; use \
       replay, fused or sharded";
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let bases = Cachesim.Config.verification_set in
  (* Deeper hierarchy levels only ever gain sets ([hierarchy_of]), so the
     base geometries bound the hierarchy-wide effective width. *)
  let shards =
    clamp_shards ~configs:bases
      (match shards with
      | Some s ->
          check_shard_count s;
          s
      | None -> pow2_floor (max 1 jobs))
  in
  let process ?pool cap =
    match strategy with
    | Retrace -> assert false (* rejected above *)
    | Replay | Fused -> capture_level_rows ~telemetry ~levels cap
    | Sharded ->
        List.concat_map
          (fun base ->
            let configs = Cachesim.Config.hierarchy_of ~levels base in
            let views =
              Memtrace.Tape.partition_hierarchies cap.tape
                [| Cachesim.Hierarchy.create configs |]
                ~shards
            in
            let run_shard shard =
              let h = Cachesim.Hierarchy.create configs in
              Memtrace.Tape.replay_view_hierarchies views.(shard) [| h |];
              Cachesim.Hierarchy.flush h;
              hierarchy_level_stats h
            in
            let shard_ids = List.init shards (fun s -> s) in
            let per_shard =
              match pool with
              | Some pool ->
                  Dvf_util.Parallel.Pool.map_list pool run_shard shard_ids
              | None -> List.map run_shard shard_ids
            in
            let stats_list =
              List.init levels (fun li ->
                  Cachesim.Stats.sum
                    (List.map (fun stats -> List.nth stats li) per_shard))
            in
            if Telemetry.enabled telemetry then
              Telemetry.add telemetry
                ~n:(sum_over_views views Memtrace.Tape.view_chunks_skipped)
                "tape/chunks_skipped";
            record_level_counters telemetry ~configs stats_list;
            level_rows_of_stats ~registry:cap.registry cap.instance ~base
              ~configs stats_list)
          bases
  in
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then
      List.concat_map
        (fun workload ->
          process (capture ~telemetry ?store (Workloads.verification_instance workload)))
        workloads
    else
      Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
          let captures =
            Dvf_util.Parallel.Pool.map_list pool
              (fun workload ->
                capture ~telemetry ?store (Workloads.verification_instance workload))
              workloads
          in
          match strategy with
          | Sharded ->
              (* Shard tasks are the parallel unit; captures process in
                 order so telemetry counters accumulate deterministically. *)
              List.concat_map (fun cap -> process ~pool cap) captures
          | _ ->
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun cap -> process cap)
                   captures))
  in
  if Telemetry.enabled telemetry then begin
    Telemetry.set_gauge telemetry "hierarchy/levels" (float_of_int levels);
    Telemetry.time_ns telemetry "verify/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0)
  end;
  finalize_metrics telemetry;
  rows

let to_level_table rows =
  let t =
    Table.create
      ~title:
        "Per-level hierarchy traffic: accesses, misses and writebacks by \
         cache level"
      [
        ("kernel", Table.Left); ("cache", Table.Left); ("level", Table.Left);
        ("structure", Table.Left); ("accesses", Table.Right);
        ("misses", Table.Right); ("writebacks", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.l_workload; r.base_cache.Cachesim.Config.name;
          Printf.sprintf "L%d" r.level; r.l_structure;
          Table.cell_float r.accesses; Table.cell_float r.misses;
          Table.cell_float r.l_writebacks;
        ])
    rows;
  t

(* --- time-weighted rows: residency-based vulnerability per level ---

   The classic rows weight vulnerability by access counts (the paper's
   N_ha); these weight it by *residency time* — how long each
   structure's lines actually sit in a level, clean or dirty, on the
   logical event clock (Jaulmes et al.'s delayed-error-reporting
   argument).  The replay attaches a [Cachesim.Residency.t] to every
   level, the clock is the tape's event ordinal, and the horizon is the
   tape length, so every integral is an exact integer and the sharded
   strategy merges to the serial result bit for bit. *)

type time_row = {
  t_workload : string;
  t_base : Cachesim.Config.t;
  t_level : int; (* 1-based *)
  t_cache : Cachesim.Config.t;
  t_structure : string;
  t_horizon : int;   (* run length in events (tape length) *)
  t_bins : int;
  clean_time : float;   (* line-events resident and clean *)
  dirty_time : float;   (* line-events resident and dirty *)
  t_fills : float;
  t_evictions : float;
  t_flushes : float;
  window : float array;        (* clean+dirty residency per time bin *)
  window_dirty : float array;  (* dirty share of each bin *)
}

(* Exposure in bit-events: every resident bit of the structure's lines,
   integrated over logical time.  This is the time-weighted analogue of
   the paper's DVF kernel (bits x main-memory accesses); the FIT-rate
   and execution-time factors scale every structure alike, so rankings
   — and the Spearman correlation `dvf windows` reports — are
   unaffected by omitting them here. *)
let tw_dvf r =
  float_of_int (8 * r.t_cache.Cachesim.Config.line)
  *. (r.clean_time +. r.dirty_time)

let time_rows_of_snaps ~registry (instance : Workload.instance) ~base ~configs
    snaps =
  List.concat
    (List.mapi
       (fun li (config, snap) ->
         List.map
           (fun (r : Memtrace.Region.region) ->
             let c =
               Cachesim.Residency.Snapshot.owner snap r.Memtrace.Region.id
             in
             {
               t_workload = instance.Workload.workload;
               t_base = base;
               t_level = li + 1;
               t_cache = config;
               t_structure = r.Memtrace.Region.name;
               t_horizon = Cachesim.Residency.Snapshot.horizon snap;
               t_bins = Cachesim.Residency.Snapshot.bins snap;
               clean_time =
                 float_of_int c.Cachesim.Residency.clean_time;
               dirty_time =
                 float_of_int c.Cachesim.Residency.dirty_time;
               t_fills = float_of_int c.Cachesim.Residency.fills;
               t_evictions = float_of_int c.Cachesim.Residency.evictions;
               t_flushes = float_of_int c.Cachesim.Residency.flushes;
               window =
                 Array.map float_of_int
                   (Cachesim.Residency.Snapshot.resident_bins c);
               window_dirty =
                 Array.map float_of_int c.Cachesim.Residency.dirty_bins;
             })
           (Memtrace.Region.regions registry))
       (List.combine configs snaps))

let record_residency_counters telemetry snaps =
  if Telemetry.enabled telemetry then
    List.iter
      (fun snap ->
        let tot = Cachesim.Residency.Snapshot.totals snap in
        Telemetry.add telemetry ~n:tot.Cachesim.Residency.clean_time
          "residency/clean_line_events";
        Telemetry.add telemetry ~n:tot.Cachesim.Residency.dirty_time
          "residency/dirty_line_events";
        Telemetry.add telemetry ~n:tot.Cachesim.Residency.fills
          "residency/fills";
        Telemetry.add telemetry ~n:tot.Cachesim.Residency.evictions
          "residency/evictions")
      snaps

(* One timed walk of a capture through one hierarchy geometry: create,
   attach one accumulator per level, replay, pin the clock to the
   horizon, flush (closing every surviving line's phase at the horizon),
   snapshot. *)
let timed_replay_once ~bins ~configs cap =
  let horizon = Memtrace.Tape.length cap.tape in
  let h = Cachesim.Hierarchy.create configs in
  let res =
    Array.init (List.length configs) (fun _ ->
        Cachesim.Residency.create ~bins ~horizon ())
  in
  Cachesim.Hierarchy.attach_residency h res;
  Memtrace.Tape.replay_hierarchies cap.tape [| h |];
  Cachesim.Hierarchy.set_now h horizon;
  Cachesim.Hierarchy.flush h;
  res

let timed_level_snapshots ?(telemetry = Telemetry.null) ?pool
    ?(strategy = Replay) ?(shards = 1) ?(bins = Cachesim.Residency.default_bins)
    ~configs cap =
  if strategy = Retrace then
    invalid_arg
      "Verify.timed_level_snapshots: the retrace strategy has no tape and \
       therefore no logical clock; use replay, fused or sharded";
  check_shard_count shards;
  let shards = clamp_shards ~configs shards in
  if bins <= 0 then
    invalid_arg "Verify.timed_level_snapshots: bins must be positive";
  let t0 = Telemetry.now_ns telemetry in
  let residencies =
    match strategy with
    | Retrace -> assert false (* rejected above *)
    | Replay | Fused ->
        (* Fused gains nothing here (residency walks are generic), so
           both strategies take the same single-walk path — which is
           what makes cross-strategy bit-identity trivial to assert. *)
        Array.to_list (timed_replay_once ~bins ~configs cap)
    | Sharded ->
        let horizon = Memtrace.Tape.length cap.tape in
        let run_shard shard =
          let h = Cachesim.Hierarchy.create configs in
          let res =
            Array.init (List.length configs) (fun _ ->
                Cachesim.Residency.create ~bins ~horizon ())
          in
          Cachesim.Hierarchy.attach_residency h res;
          Memtrace.Tape.replay_hierarchies_sharded cap.tape [| h |] ~shards
            ~shard;
          Cachesim.Hierarchy.set_now h horizon;
          Cachesim.Hierarchy.flush h;
          res
        in
        let shard_ids = List.init shards (fun s -> s) in
        let per_shard =
          match pool with
          | Some pool -> Dvf_util.Parallel.Pool.map_list pool run_shard shard_ids
          | None -> List.map run_shard shard_ids
        in
        List.init (List.length configs) (fun li ->
            Cachesim.Residency.sum
              (List.map (fun res -> res.(li)) per_shard))
  in
  let snaps = List.map Cachesim.Residency.snapshot residencies in
  if Telemetry.enabled telemetry then begin
    Telemetry.add telemetry ~n:(Memtrace.Tape.length cap.tape)
      "tape/timed_replay_events";
    Telemetry.time_ns telemetry "verify/timed_total"
      (Int64.sub (Telemetry.now_ns telemetry) t0)
  end;
  record_residency_counters telemetry snaps;
  snaps

(* One capture's time-weighted rows over every verification base
   geometry — the per-workload unit of work in [run_all_timed] and the
   whole job for a [Serve] timed request. *)
let capture_time_rows ?(telemetry = Telemetry.null) ?pool ?strategy ?shards
    ?bins ~levels cap =
  List.concat_map
    (fun base ->
      let configs = Cachesim.Config.hierarchy_of ~levels base in
      let snaps =
        timed_level_snapshots ~telemetry ?pool ?strategy ?shards ?bins ~configs
          cap
      in
      time_rows_of_snaps ~registry:cap.registry cap.instance ~base ~configs
        snaps)
    Cachesim.Config.verification_set

let run_all_timed ?jobs ?(telemetry = Telemetry.null) ?(strategy = Replay)
    ?shards ?store ?workloads ?(levels = 1)
    ?(bins = Cachesim.Residency.default_bins) () =
  if strategy = Retrace then
    invalid_arg
      "Verify.run_all_timed: the retrace strategy has no tape and therefore \
       no logical clock; use replay, fused or sharded";
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let shards =
    match shards with
    | Some s ->
        check_shard_count s;
        s
    | None -> pow2_floor (max 1 jobs)
  in
  let shards = match strategy with Sharded -> shards | _ -> 1 in
  let t0 = Telemetry.now_ns telemetry in
  let rows =
    if jobs <= 1 then
      List.concat_map
        (fun workload ->
          capture_time_rows ~telemetry ~strategy ~shards ~bins ~levels
            (capture ~telemetry ?store (Workloads.verification_instance workload)))
        workloads
    else
      Dvf_util.Parallel.with_pool ~telemetry ~jobs (fun pool ->
          let captures =
            Dvf_util.Parallel.Pool.map_list pool
              (fun workload ->
                capture ~telemetry ?store
                  (Workloads.verification_instance workload))
              workloads
          in
          match strategy with
          | Sharded ->
              (* Shard tasks are the parallel unit; captures process in
                 order so telemetry counters accumulate deterministically. *)
              List.concat_map
                (fun cap ->
                  capture_time_rows ~telemetry ~pool ~strategy ~shards ~bins
                    ~levels cap)
                captures
          | _ ->
              List.concat
                (Dvf_util.Parallel.Pool.map_list pool
                   (fun cap ->
                     capture_time_rows ~telemetry ~strategy ~shards ~bins
                       ~levels cap)
                   captures))
  in
  if Telemetry.enabled telemetry then begin
    Telemetry.set_gauge telemetry "residency/bins" (float_of_int bins);
    Telemetry.time_ns telemetry "verify/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0)
  end;
  finalize_metrics telemetry;
  rows

let to_time_table rows =
  let t =
    Table.create
      ~title:
        "Time-weighted vulnerability: per-structure residency (line-events) \
         by cache level"
      [
        ("kernel", Table.Left); ("cache", Table.Left); ("level", Table.Left);
        ("structure", Table.Left); ("clean", Table.Right);
        ("dirty", Table.Right); ("avg lines", Table.Right);
        ("dirty %", Table.Right); ("tw-DVF", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let resident = r.clean_time +. r.dirty_time in
      let avg =
        if r.t_horizon = 0 then 0.0 else resident /. float_of_int r.t_horizon
      in
      let dirty_pct =
        if resident = 0.0 then 0.0 else 100.0 *. r.dirty_time /. resident
      in
      Table.add_row t
        [
          r.t_workload; r.t_base.Cachesim.Config.name;
          Printf.sprintf "L%d" r.t_level; r.t_structure;
          Table.cell_float r.clean_time; Table.cell_float r.dirty_time;
          Printf.sprintf "%.2f" avg;
          Printf.sprintf "%.1f" dirty_pct;
          Printf.sprintf "%.4g" (tw_dvf r);
        ])
    rows;
  t

let workload_error ~rows workload cache =
  let relevant =
    List.filter
      (fun r -> r.workload = workload && r.cache.Cachesim.Config.name = cache.Cachesim.Config.name)
      rows
  in
  if relevant = [] then invalid_arg "Verify.workload_error: no rows";
  let total_sim = List.fold_left (fun acc r -> acc +. r.simulated) 0.0 relevant in
  let total_model = List.fold_left (fun acc r -> acc +. r.modeled) 0.0 relevant in
  Dvf_util.Maths.rel_error ~expected:total_sim ~actual:total_model

let to_table rows =
  let t =
    Table.create
      ~title:
        "Fig. 4 - Model verification: estimated vs simulated main-memory \
         accesses"
      [
        ("kernel", Table.Left); ("cache", Table.Left);
        ("structure", Table.Left); ("simulated", Table.Right);
        ("modeled", Table.Right); ("error %", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload; r.cache.Cachesim.Config.name; r.structure;
          Table.cell_float r.simulated; Table.cell_float r.modeled;
          Printf.sprintf "%.1f" (100.0 *. error r);
        ])
    rows;
  t
