let name = "service_graph"

let requests_of = function `Verification -> 4_000 | `Profiling -> 40_000

let size_of = function `Verification -> "4x10^3" | `Profiling -> "4x10^4"

let instance graph mode =
  let requests = requests_of mode in
  {
    Workload.workload = name;
    label =
      Printf.sprintf "%s %s requests" graph.Service_graph.graph_name
        (size_of mode);
    spec = Service_graph.spec ~requests graph;
    flops = Service_graph.flops ~requests graph;
    trace = Service_graph.trace ~requests graph;
  }

let builtin () =
  let graph = Service_graph.social_network in
  Workload.make ~name ~computational_class:"Service dependency graph"
    ~major_structures:(Service_graph.component_names graph)
    ~pattern_classes:"Random (request mix)"
    ~example_benchmark:"DeathStarBench social network"
    ~input_size:(fun mode ->
      Printf.sprintf "%s requests over %d components" (size_of mode)
        (List.length graph.Service_graph.components))
    ~instance:(instance graph) ~topology:graph ()

let builtins = [ (name, builtin) ]

let names () = List.map fst builtins

let ensure_registered () =
  List.iter
    (fun (n, build) ->
      match Workload.find n with
      | Some _ -> ()
      | None -> Workload.register (build ()))
    builtins

let workload () =
  ensure_registered ();
  Workload.of_name name

let find candidate =
  let key = String.uppercase_ascii candidate in
  Option.map
    (fun (n, _) ->
      ensure_registered ();
      Workload.of_name n)
    (List.find_opt (fun (n, _) -> String.uppercase_ascii n = key) builtins)
