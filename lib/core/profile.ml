module Table = Dvf_util.Table

type row = {
  workload : string;
  cache : Cachesim.Config.t;
  structure : string;
  dvf : float;
  n_ha : float;
  bytes : int;
  time : float;
}

let profile_instance ?(machine = Perf.default_machine) ?(fit = Ecc.fit Ecc.No_ecc)
    ~cache (instance : Workload.instance) =
  let spec = instance.Workload.spec in
  let time = Perf.app_time machine ~cache ~flops:instance.Workload.flops spec in
  let app = Dvf.of_spec ~cache ~fit ~time spec in
  let structure_rows =
    List.map
      (fun (s : Dvf.structure_dvf) ->
        {
          workload = instance.Workload.workload;
          cache;
          structure = s.Dvf.name;
          dvf = s.Dvf.dvf;
          n_ha = s.Dvf.n_ha;
          bytes = s.Dvf.bytes;
          time;
        })
      app.Dvf.structures
  in
  structure_rows
  @ [
      {
        workload = instance.Workload.workload;
        cache;
        structure = instance.Workload.workload;
        dvf = app.Dvf.total;
        n_ha = List.fold_left (fun acc r -> acc +. r.n_ha) 0.0 structure_rows;
        bytes = Access_patterns.App_spec.total_bytes spec;
        time;
      };
    ]

let run_all ?machine ?fit ?(caches = Cachesim.Config.profiling_set)
    ?workloads () =
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  List.concat_map
    (fun workload ->
      let instance = Workloads.profiling_instance workload in
      List.concat_map
        (fun cache -> profile_instance ?machine ?fit ~cache instance)
        caches)
    workloads

let to_table rows =
  let t =
    Table.create
      ~title:"Fig. 5 - DVF profiling (per data structure, per cache)"
      [
        ("kernel", Table.Left); ("structure", Table.Left);
        ("cache", Table.Left); ("S_d", Table.Right); ("N_ha", Table.Right);
        ("T (s)", Table.Right); ("DVF", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.workload; r.structure; r.cache.Cachesim.Config.name;
          Format.asprintf "%a" Dvf_util.Units.pp_bytes r.bytes;
          Table.cell_float r.n_ha; Table.cell_float r.time;
          Table.cell_float r.dvf;
        ])
    rows;
  t
