(** The open workload registry.

    A workload is everything the experiment drivers need to evaluate and
    verify an application: Table II metadata, input-size descriptions, and
    an instance builder producing the CGPMAC spec, flop count and tracer
    for either problem scale.  The six paper kernels are registered at
    startup by {!Workloads}; additional workloads — e.g. compiled from an
    Aspen model file — can be registered at runtime and then flow through
    {!Verify}, {!Profile}, {!Experiments} and the CLI exactly like the
    built-ins. *)

type mode = [ `Verification | `Profiling ]
(** The two problem scales of the paper (Tables V and VI). *)

type instance = {
  workload : string;                  (** registry name, e.g. "CG" *)
  label : string;                     (** e.g. "CG 500x500" *)
  spec : Access_patterns.App_spec.t;
  flops : int;
  trace : Memtrace.Region.t -> Memtrace.Recorder.t -> unit;
}

type t = {
  name : string;                      (** unique, case-insensitive *)
  computational_class : string;       (** Table II "computational method class" *)
  major_structures : string list;     (** Table II "major data structures" *)
  pattern_classes : string;           (** Table II "memory access patterns" *)
  example_benchmark : string;         (** Table II "example benchmarks" *)
  input_size : mode -> string;        (** Table V / Table VI "input size" *)
  instance : mode -> instance;        (** may run the kernel untraced *)
  injector : (unit -> Kernels.Fault_injection.injector) option;
      (** fault injector at an injection-friendly scale, for {!Injection}
          campaigns; [None] for workloads with no executable kernel
          (e.g. ones compiled from Aspen models).  A thunk, so clean-run
          precomputation is deferred past registration time. *)
  aspen_source : string option;       (** path of an equivalent .aspen model *)
  topology : Service_graph.t option;
      (** the service dependency graph behind a service-graph workload;
          [None] for single-kernel workloads.  Drives {!Chaos}
          component-kill campaigns — analytics and tracing go through
          [instance] like every other workload. *)
}

val make :
  name:string -> computational_class:string -> major_structures:string list ->
  pattern_classes:string -> example_benchmark:string ->
  input_size:(mode -> string) -> instance:(mode -> instance) ->
  ?injector:(unit -> Kernels.Fault_injection.injector) ->
  ?aspen_source:string -> ?topology:Service_graph.t -> unit -> t
(** The smart constructor: registrants name the fields they have and the
    optional ones default to [None], so the record can gain fields
    without breaking every construction site. *)

val register : t -> unit
(** Raises [Invalid_argument] if a workload with the same name (ignoring
    case) is already registered. *)

val find : string -> t option
(** Case-insensitive lookup. *)

val of_name : string -> t
(** Like {!find} but raises [Invalid_argument] naming the registered
    candidates when the lookup fails. *)

val names : unit -> string list
(** Registered names, in registration order. *)

val all : unit -> t list
(** Registered workloads, in registration order. *)
