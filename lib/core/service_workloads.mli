(** The built-in service-graph workloads, registered on demand.

    Unlike the six paper kernels in {!Workloads}, service graphs do NOT
    register at module-initialization time: the default [dvf verify] /
    [dvf inject] tables over "every registered workload" are pinned
    golden outputs, and silently growing them would change byte-stable
    CLI behaviour.  Service workloads are opt-in instead — naming one on
    a command line (or running [dvf chaos], whose default workload set
    is the service family) registers it first, after which it flows
    through the registry like any other workload. *)

val name : string
(** ["service_graph"] — the registry name of the built-in
    {!Service_graph.social_network} workload. *)

val names : unit -> string list
(** The built-in service workload names, registered or not. *)

val ensure_registered : unit -> unit
(** Register every built-in service workload that is not yet in the
    registry.  Idempotent. *)

val workload : unit -> Workload.t
(** The built-in social-network workload, registering it first if
    needed. *)

val find : string -> Workload.t option
(** Case-insensitive lookup among the built-in service workloads,
    registering the match on the way out; [None] for other names.  The
    CLI's workload parser falls back to this after a registry miss. *)
