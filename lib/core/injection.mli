(** Parallel fault campaigns over registered workloads, and their
    comparison against the analytical DVF (the paper's §VI argument, run
    in both directions: DVF is cheap where injection is expensive, and
    the two should rank structures alike).

    One engine serves every {!Fault_model}: it fans the (target, trial)
    grid over {!Dvf_util.Parallel} domains with trial RNGs derived from
    [(seed, target index, trial index)] via splitmix64
    ({!Kernels.Fault_injection.trial_rng}), so the tallies are
    bit-identical to the serial {!Kernels.Fault_injection.run_campaigns}
    at any job count.  {!run}/{!run_all}/{!run_timed} are the historical
    bit-flip entry points (wrapping {!Fault_model.of_injector});
    {!run_model}/{!run_model_all} run any model — {!Chaos} drives them
    with {!Fault_model.component_kill}. *)

type result = {
  workload : string;                (** registry name, e.g. "CG" *)
  label : string;                   (** injector label, e.g. "CG n=60" *)
  spec : Access_patterns.App_spec.t;
  flops : int;
  seed : int;
  campaigns : Kernels.Fault_injection.campaign list;
}

val default_seed : int
(** 1234. *)

val run :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> Workload.t -> result option
(** Run one workload's injector ([None] if it has none).  [trials]
    overrides the injector's default, per structure; [jobs] defaults to
    1 (serial).

    [telemetry] (default {!Dvf_util.Telemetry.null}) records, per
    workload, an ["inject/<workload>/setup"] span (the uninjected clean
    reference run an injector is built around) and an
    ["inject/<workload>/trials"] timer, plus campaign-wide
    ["inject/trials"], the derived ["inject/trials_per_sec"] gauge and
    ["inject/clean_run_amortization_sec"] — setup seconds amortized per
    trial.  Tallies are unaffected: counters are identical at every job
    count. *)

val run_all :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> Workload.t list -> result list
(** {!run} for every workload that has an injector, sharing one domain
    pool across the whole batch.  Workloads without injectors are
    skipped. *)

val to_table : result -> Dvf_util.Table.t
(** Per-structure outcome counts, SDC rates and Wilson intervals. *)

val run_model :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> ?section:string -> workload:string ->
  Fault_model.t -> Kernels.Fault_injection.campaign list
(** Run the shared engine over an arbitrary fault model: one campaign
    per model target, [trials] trials each (default the model's own).
    [section] (default ["campaign"]) namespaces the telemetry —
    ["<section>/<workload>/trials"], ["<section>/trials"] and the
    derived ["<section>/trials_per_sec"] gauge.  The seeding grid is the
    one {!run} uses, so a bit-flip model round-trips bit-identically. *)

val run_model_all :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> ?section:string ->
  (string * Fault_model.t) list ->
  (string * Kernels.Fault_injection.campaign list) list
(** {!run_model} for several [(workload, model)] pairs, sharing one
    domain pool across the whole batch. *)

(** A campaign re-binned by {e when} each trial's flip landed (the
    fraction of the run completed at injection time), the ground truth
    `dvf windows` correlates the time-weighted DVF against. *)
type timed = {
  base : result;
  time_bins : int;
  windows : (string * (int array * int array)) list;
      (** per structure: trials whose flip landed in each bin of [0,1],
          and how many of those were SDC *)
}

val default_bins : int
(** 20. *)

val run_timed :
  ?seed:int -> ?trials:int -> ?jobs:int ->
  ?telemetry:Dvf_util.Telemetry.t -> ?bins:int -> Workload.t -> timed option
(** {!run}, also binning each trial by its flip-time fraction into
    [bins] (default {!default_bins}) windows.  The flip-time stamp is
    derived from the flip slot the trial already draws, so [base] is
    bit-identical to {!run} with the same seed/trials at any job count.
    Raises [Invalid_argument] on [bins <= 0]. *)

(** One (workload, structure) point of the comparison. *)
type row = {
  row_workload : string;
  structure : string;
  trials : int;
  sdc : int;
  rate : float;          (** empirical SDC rate *)
  ci : float * float;    (** its 95% Wilson interval *)
  dvf : float;           (** analytical DVF of the same structure *)
}

type correlation = {
  cache : Cachesim.Config.t;
  fit : float;
  rows : row list;
  per_workload : (string * float) list;
      (** Spearman rho per workload, where defined (needs >= 2
          structures with rank variance) *)
  overall : float;       (** Spearman rho pooled over all rows *)
}

val default_fit : float
(** 5000 failures / (10^9 h * Mbit), the paper's Fig. 5 baseline. *)

val correlate :
  ?cache:Cachesim.Config.t -> ?fit:float -> ?machine:Perf.machine ->
  result list -> correlation
(** Evaluate each result's spec with {!Dvf.of_spec} (execution time from
    the {!Perf} roofline) and pair every structure's empirical SDC rate
    with its analytical DVF.  [cache] defaults to
    {!Cachesim.Config.profiling_4mb}.  Raises [Invalid_argument] if a
    campaign structure is missing from the spec. *)

val correlation_table : correlation -> Dvf_util.Table.t

val pp_spearman : Format.formatter -> correlation -> unit
(** The per-workload and pooled rank correlations, one per line. *)
