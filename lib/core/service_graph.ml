module Ap = Access_patterns

type kind = Service | Queue | Store

let kind_name = function
  | Service -> "service"
  | Queue -> "queue"
  | Store -> "store"

type component = {
  name : string;
  kind : kind;
  state_bytes : int;
  calls : string list;
}

type endpoint = { endpoint : string; targets : string list; weight : float }

type t = {
  graph_name : string;
  client : string;
  components : component list;
  endpoints : endpoint list;
}

let component ?(kind = Service) ?(calls = []) ~name ~state_bytes () =
  { name; kind; state_bytes; calls }

let endpoint ~name ~weight ~targets = { endpoint = name; targets; weight }

let fail fmt = Printf.ksprintf invalid_arg ("Service_graph.make: " ^^ fmt)

(* --- validation --- *)

let index_of components =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i (c : component) -> Hashtbl.replace tbl c.name i) components;
  fun name -> Hashtbl.find_opt tbl name

let check_components components =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : component) ->
      if String.length c.name = 0 then fail "empty component name";
      if Hashtbl.mem seen c.name then
        fail "duplicate component %S" c.name;
      Hashtbl.replace seen c.name ();
      if c.state_bytes < 8 then
        fail "component %S: state_bytes must be >= 8 (got %d)" c.name
          c.state_bytes)
    components;
  List.iter
    (fun (c : component) ->
      List.iter
        (fun callee ->
          if not (Hashtbl.mem seen callee) then
            fail "component %S calls unknown component %S" c.name callee;
          if String.equal callee c.name then
            fail "component %S calls itself" c.name)
        c.calls)
    components

(* DFS three-coloring over the call edges; a gray-to-gray edge is a
   cycle. *)
let check_acyclic components =
  let idx = index_of components in
  let arr = Array.of_list components in
  let color = Array.make (Array.length arr) `White in
  let rec visit i =
    match color.(i) with
    | `Black -> ()
    | `Gray -> fail "call cycle through component %S" arr.(i).name
    | `White ->
        color.(i) <- `Gray;
        List.iter
          (fun callee -> visit (Option.get (idx callee)))
          arr.(i).calls;
        color.(i) <- `Black
  in
  Array.iteri (fun i _ -> visit i) arr

let check_endpoints ~idx endpoints =
  if endpoints = [] then fail "no endpoints declared";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : endpoint) ->
      if String.length e.endpoint = 0 then fail "empty endpoint name";
      if Hashtbl.mem seen e.endpoint then
        fail "duplicate endpoint %S" e.endpoint;
      Hashtbl.replace seen e.endpoint ();
      if e.targets = [] then fail "endpoint %S has no targets" e.endpoint;
      List.iter
        (fun t ->
          if idx t = None then
            fail "endpoint %S targets unknown component %S" e.endpoint t)
        e.targets;
      if (not (Float.is_finite e.weight)) || e.weight <= 0.0 then
        fail "endpoint %S: weight must be positive and finite (got %g)"
          e.endpoint e.weight)
    endpoints

(* Reachability from the client with every component alive: indices of
   all components reachable along call edges. *)
let reachable_from ~adjacency start =
  let n = Array.length adjacency in
  let seen = Array.make n false in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter go adjacency.(i)
    end
  in
  go start;
  seen

let build_adjacency components =
  let idx = index_of components in
  Array.of_list
    (List.map
       (fun (c : component) ->
         List.map (fun callee -> Option.get (idx callee)) c.calls)
       components)

let make ~name ~client ~components ~endpoints () =
  if String.length name = 0 then fail "empty graph name";
  check_components components;
  check_acyclic components;
  let idx = index_of components in
  (match idx client with
  | Some _ -> ()
  | None -> fail "client %S is not a declared component" client);
  check_endpoints ~idx endpoints;
  let adjacency = build_adjacency components in
  let reach = reachable_from ~adjacency (Option.get (idx client)) in
  List.iter
    (fun (e : endpoint) ->
      List.iter
        (fun t ->
          if not reach.(Option.get (idx t)) then
            fail
              "endpoint %S target %S is not reachable from client %S along \
               call edges"
              e.endpoint t client)
        e.targets)
    endpoints;
  let total = List.fold_left (fun a (e : endpoint) -> a +. e.weight) 0.0 endpoints in
  let endpoints =
    List.map (fun (e : endpoint) -> { e with weight = e.weight /. total }) endpoints
  in
  { graph_name = name; client; components; endpoints }

(* --- lookups --- *)

let component_names t = List.map (fun (c : component) -> c.name) t.components
let endpoint_names t = List.map (fun (e : endpoint) -> e.endpoint) t.endpoints

let touched t (e : endpoint) =
  List.filter
    (fun (c : component) ->
      String.equal c.name t.client || List.mem c.name e.targets)
    t.components

(* --- availability --- *)

let evaluator t =
  let adjacency = build_adjacency t.components in
  let n = Array.length adjacency in
  let idx = index_of t.components in
  let client = Option.get (idx t.client) in
  let targets =
    Array.of_list
      (List.map
         (fun (e : endpoint) ->
           Array.of_list (List.map (fun s -> Option.get (idx s)) e.targets))
         t.endpoints)
  in
  let n_endpoints = Array.length targets in
  fun ~killed ~endpoint ->
    if endpoint < 0 || endpoint >= n_endpoints then
      invalid_arg "Service_graph.evaluator: endpoint index out of range";
    let alive = Array.make n true in
    Array.iter
      (fun k ->
        if k < 0 || k >= n then
          invalid_arg "Service_graph.evaluator: component index out of range";
        alive.(k) <- false)
      killed;
    alive.(client)
    &&
    let reach = Array.make n false in
    let rec go i =
      if alive.(i) && not reach.(i) then begin
        reach.(i) <- true;
        List.iter go adjacency.(i)
      end
    in
    go client;
    Array.for_all (fun ti -> reach.(ti)) targets.(endpoint)

let available t ~killed name =
  let idx = index_of t.components in
  let killed =
    Array.of_list
      (List.map
         (fun k ->
           match idx k with
           | Some i -> i
           | None ->
               invalid_arg
                 (Printf.sprintf "Service_graph.available: unknown component %S"
                    k))
         killed)
  in
  let rec find i = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Service_graph.available: unknown endpoint %S" name)
    | (e : endpoint) :: rest ->
        if String.equal e.endpoint name then i else find (i + 1) rest
  in
  evaluator t ~killed ~endpoint:(find 0 t.endpoints)

(* --- traffic synthesis --- *)

(* Elements (8 B each) one request touches in a component: a service
   handler reads a small working set, a queue appends a batch, a store
   scans a row group.  Contiguous (run_length = visits), matching the
   synthesized trace below. *)
let touch_elems = function Service -> 8 | Queue -> 16 | Store -> 32

let elem_size = 8

(* Deterministic largest-remainder schedule of the endpoint mix: each
   request goes to the endpoint with the highest accumulated credit
   (ties to the earliest declared), so executed per-endpoint counts
   match [requests * weight] within one request — the spec's iteration
   counts below are derived from this same schedule and agree exactly
   with the trace. *)
let schedule t ~requests =
  let eps = Array.of_list t.endpoints in
  let credit = Array.map (fun _ -> 0.0) eps in
  Array.init requests (fun _ ->
      Array.iteri (fun i (e : endpoint) -> credit.(i) <- credit.(i) +. e.weight) eps;
      let best = ref 0 in
      Array.iteri (fun i c -> if c > credit.(!best) then best := i) credit;
      credit.(!best) <- credit.(!best) -. 1.0;
      !best)

let endpoint_counts t ~requests =
  let counts = Array.make (List.length t.endpoints) 0 in
  Array.iter (fun e -> counts.(e) <- counts.(e) + 1) (schedule t ~requests);
  counts

(* Per touched component: how many requests of the schedule touch it.
   The client is touched by every request. *)
let touch_plan t ~requests =
  let counts = endpoint_counts t ~requests in
  List.filter_map
    (fun (c : component) ->
      let hits =
        if String.equal c.name t.client then requests
        else
          List.fold_left
            (fun (acc, i) (e : endpoint) ->
              ((if List.mem c.name e.targets then acc + counts.(i) else acc),
               i + 1))
            (0, 0) t.endpoints
          |> fst
      in
      if hits = 0 then None else Some (c, hits))
    t.components

let spec ~requests t =
  if requests < 1 then invalid_arg "Service_graph.spec: requests < 1";
  let plan = touch_plan t ~requests in
  let total_bytes =
    List.fold_left (fun a ((c : component), _) -> a + c.state_bytes) 0 plan
  in
  let structures =
    List.map
      (fun ((c : component), hits) ->
        let elements = c.state_bytes / elem_size in
        let visits = min (touch_elems c.kind) elements in
        let pattern =
          Ap.Random_access.make ~run_length:visits ~elements ~elem_size
            ~visits ~iterations:hits
            ~cache_ratio:(float_of_int c.state_bytes /. float_of_int total_bytes)
            ()
        in
        {
          Ap.App_spec.name = c.name;
          bytes = c.state_bytes;
          pattern = Some (Ap.Pattern.Random pattern);
        })
      plan
  in
  Ap.App_spec.make ~app_name:t.graph_name ~structures ()

(* Work per touched element for the roofline: deserialization, handler
   logic, serialization — a fixed small constant keeps the graphs
   memory-bound, like real request fan-out. *)
let flops_per_elem = 16

let flops ~requests t =
  List.fold_left
    (fun acc ((c : component), hits) ->
      let elements = c.state_bytes / elem_size in
      acc + (hits * min (touch_elems c.kind) elements * flops_per_elem))
    0
    (touch_plan t ~requests)

let trace ?(seed = 42) ~requests t registry recorder =
  if requests < 1 then invalid_arg "Service_graph.trace: requests < 1";
  let plan = touch_plan t ~requests in
  let regions =
    List.mapi
      (fun i ((c : component), _) ->
        let elements = c.state_bytes / elem_size in
        ( c.name,
          ( Memtrace.Region.register registry ~name:c.name ~elements ~elem_size,
            min (touch_elems c.kind) elements,
            Dvf_util.Rng.create (Dvf_util.Rng.sub_seed seed i) ) ))
      plan
  in
  (* Construction traverse: every component's state is touched once at
     startup — the initial full traversal the Random_access model
     assumes before random visits begin. *)
  List.iter
    (fun (_, (region, _, _)) ->
      let elements = max 1 (region.Memtrace.Region.bytes / elem_size) in
      for e = 0 to elements - 1 do
        Memtrace.Recorder.read recorder ~owner:region.Memtrace.Region.id
          ~addr:(Memtrace.Region.elem_addr region e)
          ~size:elem_size
      done)
    regions;
  let eps = Array.of_list t.endpoints in
  let touched_regions =
    (* per endpoint: the (region, visits, rng) triples its requests
       touch, client first in declaration order *)
    Array.map
      (fun (e : endpoint) ->
        List.filter_map
          (fun ((c : component), _) ->
            if String.equal c.name t.client || List.mem c.name e.targets then
              Some (List.assoc c.name regions)
            else None)
          plan)
      eps
  in
  Array.iter
    (fun ei ->
      List.iter
        (fun (region, visits, rng) ->
          let elements = max 1 (region.Memtrace.Region.bytes / elem_size) in
          let start = Dvf_util.Rng.int rng elements in
          for k = 0 to visits - 1 do
            Memtrace.Recorder.read recorder ~owner:region.Memtrace.Region.id
              ~addr:(Memtrace.Region.elem_addr region ((start + k) mod elements))
              ~size:elem_size
          done)
        touched_regions.(ei))
    (schedule t ~requests)

(* --- the built-in example graph --- *)

let kb n = n * 1024

let social_network =
  let c = component in
  make ~name:"social-network" ~client:"nginx-web-server"
    ~components:
      [
        c ~name:"nginx-web-server" ~state_bytes:(kb 64)
          ~calls:
            [
              "home-timeline-service"; "user-timeline-service";
              "compose-post-service"; "user-service";
            ]
          ();
        c ~name:"home-timeline-service" ~state_bytes:(kb 128)
          ~calls:[ "post-storage-service"; "social-graph-service" ]
          ();
        c ~name:"user-timeline-service" ~state_bytes:(kb 128)
          ~calls:[ "post-storage-service" ] ();
        c ~name:"compose-post-service" ~state_bytes:(kb 96)
          ~calls:
            [
              "unique-id-service"; "text-service"; "user-service";
              "post-storage-service"; "user-timeline-service";
              "home-timeline-service"; "write-behind-queue";
            ]
          ();
        c ~name:"unique-id-service" ~state_bytes:(kb 16) ();
        c ~name:"text-service" ~state_bytes:(kb 32) ();
        c ~name:"user-service" ~state_bytes:(kb 64) ~calls:[ "user-db" ] ();
        c ~name:"social-graph-service" ~state_bytes:(kb 96)
          ~calls:[ "social-graph-db" ] ();
        c ~name:"post-storage-service" ~state_bytes:(kb 64)
          ~calls:[ "post-storage-db" ] ();
        c ~kind:Queue ~name:"write-behind-queue" ~state_bytes:(kb 64)
          ~calls:[ "post-storage-db" ] ();
        c ~kind:Store ~name:"post-storage-db" ~state_bytes:(kb 512) ();
        c ~kind:Store ~name:"social-graph-db" ~state_bytes:(kb 256) ();
        c ~kind:Store ~name:"user-db" ~state_bytes:(kb 128) ();
      ]
    ~endpoints:
      [
        endpoint ~name:"home-timeline" ~weight:0.60
          ~targets:
            [
              "home-timeline-service"; "post-storage-service";
              "social-graph-service"; "post-storage-db"; "social-graph-db";
            ];
        endpoint ~name:"user-timeline" ~weight:0.30
          ~targets:
            [ "user-timeline-service"; "post-storage-service"; "post-storage-db" ];
        endpoint ~name:"compose-post" ~weight:0.10
          ~targets:
            [
              "compose-post-service"; "unique-id-service"; "text-service";
              "user-service"; "user-db"; "write-behind-queue";
              "post-storage-service"; "post-storage-db";
              "user-timeline-service"; "home-timeline-service";
              "social-graph-service";
            ];
      ]
    ()
