(** DVF profiling (paper §IV-B, Fig. 5).

    Evaluates each workload's CGPMAC spec at the Table VI profiling sizes
    across the four Table IV cache configurations, with execution time
    from the roofline model and the unprotected FIT (Table VII).
    Everything is analytical — this is the fast path the paper
    advertises ("evaluation cost at the time granularity of seconds"). *)

type row = {
  workload : string;        (** registry name, e.g. "CG" *)
  cache : Cachesim.Config.t;
  structure : string;       (** data-structure name, or the workload name for DVF_a *)
  dvf : float;
  n_ha : float;
  bytes : int;
  time : float;             (** modeled execution time, s *)
}

val profile_instance :
  ?machine:Perf.machine -> ?fit:float -> cache:Cachesim.Config.t ->
  Workload.instance -> row list
(** Per-structure rows followed by one aggregate row (Eq. 2) whose
    [structure] is the workload name. *)

val run_all :
  ?machine:Perf.machine -> ?fit:float ->
  ?caches:Cachesim.Config.t list -> ?workloads:Workload.t list -> unit ->
  row list
(** Fig. 5: all workloads x the four profiling caches.  [fit] defaults to
    the unprotected 5000 FIT/Mbit; [workloads] to everything registered. *)

val to_table : row list -> Dvf_util.Table.t
