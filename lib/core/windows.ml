(* `dvf windows`: the vulnerability-vs-time report.

   Two instruments are pointed at the same question — "when during the
   run is a structure's data actually at risk?" — and correlated:

   - the *model* side is the residency histogram from a timed replay
     ([Verify.timed_level_snapshots] on the small verification cache):
     for each structure, how many line-events sat resident (and dirty)
     in each window of the run;
   - the *ground-truth* side is a flip-time-binned injection campaign
     ([Injection.run_timed]): each trial's flip is stamped with the
     fraction of the run completed when it landed, so SDC rate can be
     reported per window.

   Per structure we report Spearman's rho between windowed exposure and
   windowed SDC rate, and across structures the rho between the
   time-weighted DVF and the overall SDC rate — the Fig. 5-style
   ranking check, on the time axis (Jaulmes et al.'s
   delayed-error-reporting question, answered with data). *)

module Table = Dvf_util.Table
module Telemetry = Dvf_util.Telemetry

type bin_row = {
  w_workload : string;
  w_structure : string;
  bin : int;        (* 0-based *)
  lo : float;       (* window bounds, fractions of the run *)
  hi : float;
  resident : float; (* line-events resident in this window (clean+dirty) *)
  dirty : float;    (* the dirty share of [resident] *)
  trials : int;     (* injection trials whose flip landed in this window *)
  sdc : int;
}

type curve = {
  c_workload : string;
  c_structure : string;
  tw : float;               (* time-weighted DVF (bit-events) *)
  sdc_rate : float;         (* whole-campaign SDC rate *)
  rho_time : float option;  (* windowed exposure vs windowed SDC rate *)
}

type report = {
  r_cache : Cachesim.Config.t;
  r_bins : int;
  rows : bin_row list;
  curves : curve list;
  rho_overall : float option;  (* tw-DVF vs SDC rate across structures *)
}

let bin_rate r = if r.trials = 0 then 0.0 else float_of_int r.sdc /. float_of_int r.trials

(* rho over the windows where injection actually landed trials: empty
   windows carry no rate evidence and would only add tied zeros. *)
let rho_of_rows rows =
  let hit = List.filter (fun r -> r.trials > 0) rows in
  Dvf_util.Maths.spearman_opt
    (Array.of_list (List.map (fun r -> r.resident) hit))
    (Array.of_list (List.map bin_rate hit))

let run ?jobs ?(telemetry = Telemetry.null) ?(strategy = Verify.Replay)
    ?shards ?store ?(seed = Injection.default_seed) ?trials
    ?(bins = Cachesim.Residency.default_bins) ?workloads () =
  if strategy = Verify.Retrace then
    invalid_arg
      "Windows.run: the retrace strategy has no tape and therefore no \
       logical clock; use replay, fused or sharded";
  if bins <= 0 then invalid_arg "Windows.run: bins must be positive";
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.all ()
  in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Dvf_util.Parallel.recommended_jobs ()
  in
  let cache = Cachesim.Config.small_verification in
  let t0 = Telemetry.now_ns telemetry in
  let per_workload =
    List.filter_map
      (fun (w : Workload.t) ->
        match
          Injection.run_timed ~seed ?trials ~jobs ~telemetry ~bins w
        with
        | None -> None
        | Some timed ->
            let cap =
              Verify.capture ~telemetry ?store
                (Workloads.verification_instance w)
            in
            let snap =
              List.hd
                (Verify.timed_level_snapshots ~telemetry ~strategy ?shards
                   ~bins ~configs:[ cache ] cap)
            in
            let line_bits = float_of_int (8 * cache.Cachesim.Config.line) in
            let per_structure =
              List.map
                (fun (structure, (bin_trials, bin_sdc)) ->
                  let region =
                    Memtrace.Region.lookup cap.Verify.registry structure
                  in
                  let c =
                    Cachesim.Residency.Snapshot.owner snap
                      region.Memtrace.Region.id
                  in
                  let res_bins =
                    Cachesim.Residency.Snapshot.resident_bins c
                  in
                  let rows =
                    List.init bins (fun b ->
                        {
                          w_workload = w.Workload.name;
                          w_structure = structure;
                          bin = b;
                          lo = float_of_int b /. float_of_int bins;
                          hi = float_of_int (b + 1) /. float_of_int bins;
                          resident = float_of_int res_bins.(b);
                          dirty =
                            float_of_int
                              c.Cachesim.Residency.dirty_bins.(b);
                          trials = bin_trials.(b);
                          sdc = bin_sdc.(b);
                        })
                  in
                  let campaign =
                    List.find
                      (fun (c : Kernels.Fault_injection.campaign) ->
                        String.equal c.Kernels.Fault_injection.structure
                          structure)
                      timed.Injection.base.Injection.campaigns
                  in
                  let curve =
                    {
                      c_workload = w.Workload.name;
                      c_structure = structure;
                      tw =
                        line_bits
                        *. float_of_int
                             (Cachesim.Residency.Snapshot.resident_time c);
                      sdc_rate = Kernels.Fault_injection.sdc_rate campaign;
                      rho_time = rho_of_rows rows;
                    }
                  in
                  (rows, curve))
                timed.Injection.windows
            in
            Some per_structure)
      workloads
  in
  let per_structure = List.concat per_workload in
  let rows = List.concat_map fst per_structure in
  let curves = List.map snd per_structure in
  let rho_overall =
    Dvf_util.Maths.spearman_opt
      (Array.of_list (List.map (fun c -> c.tw) curves))
      (Array.of_list (List.map (fun c -> c.sdc_rate) curves))
  in
  if Telemetry.enabled telemetry then begin
    Telemetry.set_gauge telemetry "windows/bins" (float_of_int bins);
    Telemetry.add telemetry ~n:(List.length curves) "windows/structures";
    Telemetry.time_ns telemetry "windows/total"
      (Int64.sub (Telemetry.now_ns telemetry) t0)
  end;
  { r_cache = cache; r_bins = bins; rows; curves; rho_overall }

let window_label r =
  Printf.sprintf "[%.2f,%.2f%s" r.lo r.hi (if r.hi >= 1.0 then "]" else ")")

let to_table report =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Vulnerability vs. time (%s): windowed residency and flip-time \
            SDC rate"
           report.r_cache.Cachesim.Config.name)
      [
        ("workload", Table.Left); ("structure", Table.Left);
        ("window", Table.Left); ("resident", Table.Right);
        ("dirty", Table.Right); ("trials", Table.Right);
        ("SDC", Table.Right); ("SDC rate", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.w_workload; r.w_structure; window_label r;
          Table.cell_float r.resident; Table.cell_float r.dirty;
          string_of_int r.trials; string_of_int r.sdc;
          Printf.sprintf "%.4f" (bin_rate r);
        ])
    report.rows;
  t

let curve_table report =
  let t =
    Table.create
      ~title:"Time-weighted DVF vs. whole-campaign SDC rate"
      [
        ("workload", Table.Left); ("structure", Table.Left);
        ("tw-DVF", Table.Right); ("SDC rate", Table.Right);
        ("rho(time)", Table.Right);
      ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.c_workload; c.c_structure;
          Printf.sprintf "%.4g" c.tw;
          Printf.sprintf "%.4f" c.sdc_rate;
          (match c.rho_time with
          | Some rho -> Printf.sprintf "%+.3f" rho
          | None -> "n/a");
        ])
    report.curves;
  t

let pp_correlations ppf report =
  List.iter
    (fun c ->
      match c.rho_time with
      | Some rho ->
          Format.fprintf ppf
            "Spearman rho (%s/%s, windowed exposure vs SDC): %+.3f@."
            c.c_workload c.c_structure rho
      | None -> ())
    report.curves;
  match report.rho_overall with
  | Some rho ->
      Format.fprintf ppf
        "Spearman rho (tw-DVF vs SDC rate, all structures): %+.3f@." rho
  | None ->
      Format.fprintf ppf
        "Spearman rho (tw-DVF vs SDC rate, all structures): n/a@."

(* CSV of the windowed rows, one line per (workload, structure, window)
   — the artifact CI uploads. *)
let to_csv report =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "workload,structure,bin,lo,hi,resident,dirty,trials,sdc,sdc_rate\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%.4f,%.4f,%.17g,%.17g,%d,%d,%.6f\n"
           r.w_workload r.w_structure r.bin r.lo r.hi r.resident r.dirty
           r.trials r.sdc (bin_rate r)))
    report.rows;
  Buffer.contents buf
