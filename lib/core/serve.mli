(** The query engine behind [dvf serve] / [dvf query].

    The paper's methodology captures one trace per application and
    reuses it for every experiment; a {!t} takes that to serving scale:
    it warms every workload's capture once (optionally through a
    persistent {!Memtrace.Tape_store}, so even the first warm-up of a
    process can skip kernel execution) and then answers any number of
    verify / levels / dvf / sweep queries from memory.

    This module is protocol and computation only.  The transport —
    stdin/stdout or a Unix socket — lives in the CLI, which reads raw
    request lines and writes back exactly the response lines
    {!handle_line}/{!handle_batch} return.

    {2 Protocol}

    One JSON document per line ({!Dvf_util.Json.parse_line}).  Request:
    [{"id": <any>, "op": "<name>", ...params}].  Response (compact, one
    line): [{"schema": "dvf-query", "schema_version": 1, "id": <echoed>,
    "ok": true, "result": {...}}], or [{..., "ok": false, "error":
    "<message>"}].  Ops:

    - [ping] — liveness; result [{"pong": true}].
    - [workloads] — names being served.
    - [verify] — Fig. 4 rows over the verification cache set; optional
      ["workload"] restricts to one workload (default: all).  Rows are
      bit-identical to [dvf verify].
    - [levels] — per-level hierarchy traffic rows; optional ["workload"],
      optional ["levels"] (default 2).
    - [timed] — time-weighted residency rows over the verification cache
      set; optional ["workload"], optional ["levels"] (default 1) and
      ["bins"] (default {!Cachesim.Residency.default_bins}).  Rows are
      bit-identical to [dvf verify --time-weighted].
    - [dvf] — DVF profile rows over the profiling cache set (analytic,
      like [dvf profile]); optional ["workload"].
    - [sweep] — capacity sweep for one required ["workload"]; optional
      ["capacities"] (byte sizes) and ["simulate"] (default [true],
      trace-driven totals from the warm capture).
    - [chaos] — component-kill chaos campaign over a service-graph
      workload: optional ["workload"] (default the built-in
      [service_graph]; a served workload, or a built-in service
      workload registered on demand), ["trials"], ["kill_fraction"] and
      ["seed"].  The result is one {!Chaos.report}: availability rows
      (with Wilson intervals and per-endpoint DVF), the mix-weighted
      loss rate and the availability-vs-DVF Spearman rho.  Decoded via
      {!chaos_report_of_result}, it renders byte-identically to
      [dvf chaos].
    - [stats] — request count, workload count, warm capture count, store
      directory.

    Malformed requests and handler failures produce [ok: false]
    responses, never a crash of the serving process. *)

type t

val schema : string
val schema_version : int

val create :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?store:Memtrace.Tape_store.t ->
  ?jobs:int ->
  ?workloads:Workload.t list ->
  unit ->
  t
(** A serving context over [workloads] (default: all registered).  Owns
    a domain pool of [jobs] workers (default
    {!Dvf_util.Parallel.recommended_jobs}) used to warm captures and to
    run concurrent requests; individual request handlers are internally
    serial.  [store] routes capture through a persistent tape store. *)

val warm : t -> unit
(** Capture (or load from the store) every served workload's
    verification tape, in parallel over the pool.  Optional — a request
    for a workload not yet warm captures it on demand — but a warmed
    server answers its first real query at replay speed.  Telemetry:
    span ["serve/warm"]. *)

val shutdown : t -> unit
(** Shut the domain pool down.  The context must not be used after. *)

val workload_names : t -> string list
val warm_count : t -> int

val handle_line : t -> string -> string option
(** Process one raw request line; the result is the raw response line
    (no trailing newline), or [None] for a blank keep-alive line.
    Telemetry per request: ["serve/requests"] counter and a
    ["serve/op/<op>"] span. *)

val handle_batch : t -> string list -> string list
(** Process a batch of request lines concurrently on the pool,
    preserving order: response [i] answers the [i]-th non-blank line.
    Results are identical to mapping {!handle_line} serially. *)

(** {2 Row codecs}

    JSON encodings of the row types served in results.  Floats are
    emitted as [%.17g] (exact round-trip), so decoding rows and
    rendering them through [Verify.to_table] / [Verify.to_level_table] /
    [Profile.to_table] / [Experiments.cache_sweep_table] reproduces the
    one-shot CLI tables byte for byte — [dvf query]'s default output
    mode, and what the end-to-end tests assert.  The [*_of_json] and
    [*_of_result] decoders raise [Failure] on malformed input. *)

val config_to_json : Cachesim.Config.t -> Dvf_util.Json.t
val config_of_json : Dvf_util.Json.t -> Cachesim.Config.t
val verify_row_to_json : Verify.row -> Dvf_util.Json.t
val verify_row_of_json : Dvf_util.Json.t -> Verify.row
val level_row_to_json : Verify.level_row -> Dvf_util.Json.t
val level_row_of_json : Dvf_util.Json.t -> Verify.level_row
val time_row_to_json : Verify.time_row -> Dvf_util.Json.t
val time_row_of_json : Dvf_util.Json.t -> Verify.time_row
val profile_row_to_json : Profile.row -> Dvf_util.Json.t
val profile_row_of_json : Dvf_util.Json.t -> Profile.row
val sweep_row_to_json : Experiments.sweep_row -> Dvf_util.Json.t
val sweep_row_of_json : Dvf_util.Json.t -> Experiments.sweep_row
val chaos_row_to_json : Chaos.row -> Dvf_util.Json.t
val chaos_row_of_json : Dvf_util.Json.t -> Chaos.row
val chaos_report_to_json : Chaos.report -> Dvf_util.Json.t

val verify_rows_of_result : Dvf_util.Json.t -> Verify.row list
(** Decode the ["rows"] of a [verify] response's [result]. *)

val level_rows_of_result : Dvf_util.Json.t -> Verify.level_row list
val timed_rows_of_result : Dvf_util.Json.t -> Verify.time_row list
val profile_rows_of_result : Dvf_util.Json.t -> Profile.row list
val sweep_rows_of_result : Dvf_util.Json.t -> Experiments.sweep_row list

val chaos_report_of_result : Dvf_util.Json.t -> Chaos.report
(** Decode a [chaos] response's [result] back into the report. *)

(** {2 Tape file inspection}

    The payload behind [dvf tape info]: a .dvftape file's header and
    provenance plus a summary of its per-chunk partition index
    ({!Memtrace.Tape.chunk_infos}).  Shares the row-codec conventions —
    the JSON line round-trips exactly and the rendered table is
    byte-stable, which CI uses to pin the subcommand's output. *)

type tape_info = {
  ti_version : int;  (** on-disk format version the file declares *)
  ti_workload : string;
  ti_size : string;
  ti_seed : int;
  ti_chunk_events : int;  (** per-chunk capacity in events *)
  ti_events : int;
  ti_chunks : int;
  ti_regions : int;
  ti_granule : int;  (** bytes per partition-index granule *)
  ti_buckets : int;  (** coverage-bitmap buckets per chunk *)
  ti_min_line : int;  (** smallest granule line any chunk touches; -1 if empty *)
  ti_max_line : int;  (** largest; -1 if empty *)
  ti_buckets_covered : int;  (** distinct buckets set across all chunks *)
  ti_saturated_chunks : int;  (** chunks whose bitmap covers every bucket *)
  ti_mean_coverage : float;  (** mean covered-bucket fraction per chunk *)
}

val tape_info_of_file : string -> (tape_info, Memtrace.Tape_io.error) result
(** Load (header, regions and chunk table only — deferred chunks are
    never decoded) and summarize one tape file. *)

val tape_info_to_json : tape_info -> Dvf_util.Json.t
val tape_info_of_json : Dvf_util.Json.t -> tape_info
val tape_info_table : tape_info -> Dvf_util.Table.t
