type env = (string * int) list
type t = env -> int array * bool array option

(* Registrations happen at module-initialization time (single domain);
   the mutex guards against lookups from parallel sweeps racing a late
   registration. *)
let lock = Mutex.create ()
let table : (string * t) list ref = ref []

let register name provider =
  Mutex.protect lock (fun () ->
      if List.mem_assoc name !table then
        invalid_arg
          (Printf.sprintf "Template_provider.register: duplicate name %S" name);
      table := !table @ [ (name, provider) ])

let find name = Mutex.protect lock (fun () -> List.assoc_opt name !table)
let names () = Mutex.protect lock (fun () -> List.map fst !table)
