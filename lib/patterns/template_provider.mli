(** Registry of named reference-stream generators for template patterns.

    Some kernels' access templates cannot be written down declaratively —
    an FFT's butterfly passes or a multigrid V-cycle's hierarchy walk are
    produced by {e executing} the loop nest with phantom values.  Kernel
    modules register those generators here under stable names
    (["ft/X"], ["mg/R"], ...); an Aspen model then references one with
    [pattern template(elem = 16, provider = "ft/X")] and the compiler
    resolves the reference at lowering time.

    A provider receives the model's integer-valued parameters and returns
    the element-reference sequence plus optional per-reference store
    flags — exactly the inputs of {!Template.make}. *)

type env = (string * int) list
(** The integer-valued app parameters, name -> value. *)

type t = env -> int array * bool array option
(** [provider env] is [(refs, writes)]; may raise [Failure] on a missing
    or invalid parameter. *)

val register : string -> t -> unit
(** Raises [Invalid_argument] if the name is already taken. *)

val find : string -> t option

val names : unit -> string list
(** Registered names, in registration order. *)
