open Ast

type state = { mutable tokens : Token.located list }

let current st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* the lexer always appends Eof *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let fail_at (t : Token.located) message =
  Errors.fail ~line:t.Token.line ~col:t.Token.col message

let expect st token =
  let t = current st in
  if t.Token.token = token then advance st
  else
    fail_at t
      (Printf.sprintf "expected %s but found %s" (Token.describe token)
         (Token.describe t.Token.token))

let expect_ident st =
  let t = current st in
  match t.Token.token with
  | Token.Ident name ->
      advance st;
      name
  | other -> fail_at t ("expected an identifier but found " ^ Token.describe other)

let expect_keyword st kw =
  let t = current st in
  match t.Token.token with
  | Token.Ident name when name = kw -> advance st
  | other ->
      fail_at t
        (Printf.sprintf "expected keyword '%s' but found %s" kw
           (Token.describe other))

let peek_is st token = (current st).Token.token = token

let peek_keyword st kw =
  match (current st).Token.token with
  | Token.Ident name -> name = kw
  | _ -> false

(* --- Expressions: precedence climbing --- *)

let rec parse_expression st = parse_additive st

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match (current st).Token.token with
    | Token.Plus ->
        advance st;
        lhs := Binop (Add, !lhs, parse_multiplicative st);
        loop ()
    | Token.Minus ->
        advance st;
        lhs := Binop (Sub, !lhs, parse_multiplicative st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_power st) in
  let rec loop () =
    match (current st).Token.token with
    | Token.Star ->
        advance st;
        lhs := Binop (Mul, !lhs, parse_power st);
        loop ()
    | Token.Slash ->
        advance st;
        lhs := Binop (Div, !lhs, parse_power st);
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_power st =
  let base = parse_unary st in
  if peek_is st Token.Caret then begin
    advance st;
    (* Right associative. *)
    Binop (Pow, base, parse_power st)
  end
  else base

and parse_unary st =
  match (current st).Token.token with
  | Token.Minus ->
      advance st;
      Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = current st in
  match t.Token.token with
  | Token.Int n ->
      advance st;
      Num (float_of_int n)
  | Token.Float f ->
      advance st;
      Num f
  | Token.Ident name ->
      advance st;
      Var name
  | Token.Lparen ->
      advance st;
      let e = parse_expression st in
      expect st Token.Rparen;
      e
  | other -> fail_at t ("expected an expression but found " ^ Token.describe other)

(* --- References: R(2, 1, 1) --- *)

let parse_reference st =
  let array = expect_ident st in
  expect st Token.Lparen;
  let rec indices acc =
    let e = parse_expression st in
    if peek_is st Token.Comma then begin
      advance st;
      indices (e :: acc)
    end
    else begin
      expect st Token.Rparen;
      List.rev (e :: acc)
    end
  in
  { array; indices = indices [] }

let parse_reference_tuple st =
  expect st Token.Lparen;
  let rec loop acc =
    let r = parse_reference st in
    if peek_is st Token.Comma then begin
      advance st;
      loop (r :: acc)
    end
    else begin
      expect st Token.Rparen;
      List.rev (r :: acc)
    end
  in
  loop []

(* --- Named argument lists: (elem = 8, shape = (a, b), writeback) --- *)

let parse_args st =
  expect st Token.Lparen;
  if peek_is st Token.Rparen then begin
    advance st;
    []
  end
  else begin
    let parse_one () =
      let name = expect_ident st in
      if peek_is st Token.Equals then begin
        advance st;
        match (current st).Token.token with
        | Token.Str s ->
            advance st;
            (name, Text s)
        | _ ->
        if peek_is st Token.Lparen then begin
          (* Either a tuple or a scalar that merely starts with a
             parenthesized term: decide by whether a comma follows the
             first expression, backtracking for the scalar case so that
             e.g. [(a + b) / c] parses as one expression. *)
          let saved = st.tokens in
          advance st;
          let first = parse_expression st in
          if peek_is st Token.Comma then begin
            let rec loop acc =
              advance st (* the comma *);
              let e = parse_expression st in
              if peek_is st Token.Comma then loop (e :: acc)
              else begin
                expect st Token.Rparen;
                List.rev (e :: acc)
              end
            in
            (name, Tuple (loop [ first ]))
          end
          else begin
            st.tokens <- saved;
            (name, Scalar (parse_expression st))
          end
        end
        else (name, Scalar (parse_expression st))
      end
      else (name, Flag)
    in
    let rec loop acc =
      let a = parse_one () in
      if peek_is st Token.Comma then begin
        advance st;
        loop (a :: acc)
      end
      else begin
        expect st Token.Rparen;
        List.rev (a :: acc)
      end
    in
    loop []
  end

(* --- Template generators --- *)

let rec parse_generator st =
  let t = current st in
  match t.Token.token with
  | Token.Ident "range" ->
      advance st;
      expect_keyword st "step";
      let step = parse_expression st in
      expect_keyword st "from";
      let from_ = parse_reference_tuple st in
      expect_keyword st "to";
      let to_ = parse_reference_tuple st in
      Range { step; from_; to_ }
  | Token.Ident "pass" ->
      advance st;
      let args = parse_args st in
      let get name =
        match List.assoc_opt name args with
        | Some (Scalar e) -> e
        | _ ->
            fail_at t (Printf.sprintf "pass requires argument '%s'" name)
      in
      Pass { start = get "start"; count = get "count"; stride = get "stride" }
  | Token.Ident "refs" ->
      advance st;
      Refs (parse_reference_tuple st)
  | Token.Ident "zip" ->
      advance st;
      expect_keyword st "count";
      let count = parse_expression st in
      expect st Token.Lbrace;
      let rec loop acc =
        if peek_is st Token.Rbrace then begin
          advance st;
          List.rev acc
        end
        else begin
          let r = parse_reference st in
          expect_keyword st "step";
          let step = parse_expression st in
          if peek_is st Token.Semicolon then advance st;
          loop ((r, step) :: acc)
        end
      in
      Zip { count; streams = loop [] }
  | Token.Ident "repeat" ->
      advance st;
      let count = parse_expression st in
      expect st Token.Lbrace;
      let body = parse_generators st in
      Repeat (count, body)
  | other -> fail_at t ("expected a template generator but found " ^ Token.describe other)

and parse_generators st =
  let rec loop acc =
    if peek_is st Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_generator st :: acc)
  in
  loop []

(* --- Patterns --- *)

let parse_pattern st =
  let t = current st in
  match t.Token.token with
  | Token.Ident "stream" ->
      advance st;
      Stream (parse_args st)
  | Token.Ident "random" ->
      advance st;
      Random (parse_args st)
  | Token.Ident "template" ->
      advance st;
      let args = parse_args st in
      (* The generator block is optional: provider-backed templates have
         no inline generators. *)
      let generators =
        if peek_is st Token.Lbrace then begin
          advance st;
          parse_generators st
        end
        else []
      in
      Template { args; generators }
  | Token.Ident "reuse" ->
      advance st;
      Reuse
  | other ->
      fail_at t
        ("expected a pattern (stream/random/template/reuse) but found "
        ^ Token.describe other)

(* --- data declarations --- *)

let parse_data st =
  let data_name = expect_ident st in
  expect st Token.Lbrace;
  let size = ref None and data_pattern = ref None in
  let rec loop () =
    if peek_is st Token.Rbrace then advance st
    else begin
      let t = current st in
      (match t.Token.token with
      | Token.Ident "size" ->
          advance st;
          expect st Token.Equals;
          size := Some (parse_expression st)
      | Token.Ident "pattern" ->
          advance st;
          data_pattern := Some (parse_pattern st)
      | other ->
          fail_at t
            ("expected 'size' or 'pattern' in data block but found "
            ^ Token.describe other));
      if peek_is st Token.Semicolon then advance st;
      loop ()
    end
  in
  loop ();
  { data_name; size = !size; data_pattern = !data_pattern }

(* --- order --- *)

let parse_occurrence st =
  let occ_structure = expect_ident st in
  expect st Token.Colon;
  let occ_pattern = parse_pattern st in
  let times =
    if peek_is st Token.Star then begin
      advance st;
      Some (parse_expression st)
    end
    else None
  in
  { occ_structure; occ_pattern; times }

let parse_phase st =
  expect_keyword st "phase";
  expect st Token.Lbrace;
  let rec loop acc =
    if peek_is st Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else begin
      let occ = parse_occurrence st in
      if peek_is st Token.Semicolon then advance st;
      loop (occ :: acc)
    end
  in
  loop []

let parse_order st =
  let iterations =
    if peek_keyword st "iterations" then begin
      advance st;
      expect st Token.Equals;
      Some (parse_expression st)
    end
    else None
  in
  expect st Token.Lbrace;
  let rec loop acc =
    if peek_is st Token.Rbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_phase st :: acc)
  in
  { iterations; phases = loop [] }

(* --- app / machine --- *)

let parse_app st =
  let app_name = expect_ident st in
  expect st Token.Lbrace;
  let params = ref [] and datas = ref [] in
  let order = ref None and flops = ref None and time = ref None in
  let rec loop () =
    if peek_is st Token.Rbrace then advance st
    else begin
      let t = current st in
      (match t.Token.token with
      | Token.Ident "param" ->
          advance st;
          let name = expect_ident st in
          expect st Token.Equals;
          params := (name, parse_expression st) :: !params
      | Token.Ident "data" ->
          advance st;
          datas := parse_data st :: !datas
      | Token.Ident "order" ->
          advance st;
          if !order <> None then fail_at t "duplicate order block";
          order := Some (parse_order st)
      | Token.Ident "flops" ->
          advance st;
          flops := Some (parse_expression st)
      | Token.Ident "time" ->
          advance st;
          time := Some (parse_expression st)
      | other ->
          fail_at t
            ("expected 'param', 'data', 'order', 'flops' or 'time' but found "
            ^ Token.describe other));
      if peek_is st Token.Semicolon then advance st;
      loop ()
    end
  in
  loop ();
  {
    app_name;
    params = List.rev !params;
    datas = List.rev !datas;
    order = !order;
    flops = !flops;
    time = !time;
  }

let parse_machine st =
  let machine_name = expect_ident st in
  expect st Token.Lbrace;
  let sections = ref [] in
  let rec loop () =
    if peek_is st Token.Rbrace then advance st
    else begin
      let section_name = expect_ident st in
      expect st Token.Lbrace;
      let fields = ref [] in
      let rec fields_loop () =
        if peek_is st Token.Rbrace then advance st
        else begin
          let name = expect_ident st in
          expect st Token.Equals;
          fields := (name, parse_expression st) :: !fields;
          if peek_is st Token.Semicolon then advance st;
          fields_loop ()
        end
      in
      fields_loop ();
      sections := { section_name; fields = List.rev !fields } :: !sections;
      loop ()
    end
  in
  loop ();
  { machine_name; sections = List.rev !sections }

let parse_file src =
  let st = { tokens = Lexer.tokenize src } in
  let rec loop acc =
    let t = current st in
    match t.Token.token with
    | Token.Eof -> List.rev acc
    | Token.Ident "app" ->
        advance st;
        loop (App (parse_app st) :: acc)
    | Token.Ident "machine" ->
        advance st;
        loop (Machine (parse_machine st) :: acc)
    | other ->
        fail_at t
          ("expected 'app' or 'machine' at top level but found "
          ^ Token.describe other)
  in
  loop []

let parse_expr src =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_expression st in
  let t = current st in
  (match t.Token.token with
  | Token.Eof -> ()
  | other -> fail_at t ("trailing input after expression: " ^ Token.describe other));
  e
