let machines =
  {|
// Table IV cache configurations; main memory without ECC (Table VII).
machine small_verif {
  cache  { assoc = 4; sets = 64; line = 32 }
  memory { fit = 5000 }
  perf   { flops = 100e9; bandwidth = 50e9 }
}

machine large_verif {
  cache  { assoc = 16; sets = 4096; line = 64 }
  memory { fit = 5000 }
  perf   { flops = 100e9; bandwidth = 50e9 }
}

machine prof_16kb {
  cache  { assoc = 2; sets = 1024; line = 8 }
  memory { fit = 5000 }
}

machine prof_128kb {
  cache  { assoc = 4; sets = 2048; line = 16 }
  memory { fit = 5000 }
}

machine prof_1mb {
  cache  { assoc = 6; sets = 4096; line = 32 }
  memory { fit = 5000 }
}

machine prof_8mb {
  cache  { assoc = 8; sets = 8192; line = 64 }
  memory { fit = 5000 }
}
|}

let vm =
  {|
// Vector multiplication (Algorithm 1): C_i += A_{i*sa} * B_{i*sb}.
// Streaming patterns; A's larger stride is what makes it the most
// vulnerable structure in Fig. 5(a).
app vm {
  param n = 100000
  param esize = 4
  param stride_a = 4

  data A { pattern stream(elem = esize, count = n * stride_a, stride = stride_a) }
  data B { pattern stream(elem = esize, count = n, stride = 1) }
  data C { pattern stream(elem = esize, count = n, stride = 1, writeback) }

  flops 2 * n
}
|}

let cg =
  {|
// Conjugate gradient (Algorithm 4), paper access order:
//   r (A p) p (x p) (A p) r (r p)   with patterns s (tt) s (ss) (tt) s (ss).
// The matrix-vector phases stream A and re-touch p once per row.
app cg {
  param n = 500
  param iters = 8

  data A { size = 8 * n * n }
  data x { size = 8 * n }
  data p { size = 8 * n }
  data r { size = 8 * n }

  order iterations = iters {
    phase { r : stream(elem = 8, count = n, stride = 1) }
    phase { A : stream(elem = 8, count = n * n, stride = 1);
            p : reuse * n }
    phase { p : stream(elem = 8, count = n, stride = 1) }
    phase { x : stream(elem = 8, count = n, stride = 1, writeback);
            p : stream(elem = 8, count = n, stride = 1) }
    phase { A : stream(elem = 8, count = n * n, stride = 1);
            p : reuse * n }
    phase { r : stream(elem = 8, count = n, stride = 1, writeback) }
    phase { r : stream(elem = 8, count = n, stride = 1);
            p : stream(elem = 8, count = n, stride = 1, writeback) }
  }

  flops iters * (4 * n * n + 10 * n)
}
|}

let nb =
  {|
// Barnes-Hut (Algorithm 2).  The tree T is visited randomly during force
// evaluation; the quadtree geometry (node count, always-cached hot set,
// cold-node visits per body) is measured on the reference implementation.
// The defaults below are the verification run: 1000 bodies, seed 7.
app nb {
  param bodies = 1000
  param passes = 1
  param nodes = 1722    // quadtree nodes built for this body distribution
  param hot = 37        // nodes revisited by at least half the traversals
  param k = 95          // cold visits per body: round(avg visits - hot visits)

  data T {
    size = 32 * nodes
    pattern random(elems = nodes - hot, elem = 32, visits = k,
                   iters = bodies * passes, ratio = 1.0, resident = 32 * hot)
  }
  data P {
    size = 32 * bodies
    pattern stream(elem = 32, count = bodies * passes, stride = 1, writeback)
  }

  flops 12 * k * bodies * passes
}
|}

let mg =
  {|
// Multi-grid V-cycle (Algorithm 3).  The hierarchy walks of the residual
// R, the solution U and the m^3 right-hand side V are executed reference
// streams published by the OCaml kernel as template providers; each
// structure's cache share is its byte share of the working set.
app mg {
  param m = 32
  param cycles = 1
  param levels = 4      // coarsest grid is m / 2^(levels-1), at least 4
  param hier = m*m*m + (m/2)*(m/2)*(m/2) + (m/4)*(m/4)*(m/4) + (m/8)*(m/8)*(m/8)
  param rbytes = 8 * hier
  param vbytes = 8 * m * m * m
  param wset = 2 * rbytes + vbytes

  data R {
    size = rbytes
    pattern template(elem = 8, ratio = rbytes / wset, provider = "mg/R")
  }
  data U {
    size = rbytes
    pattern template(elem = 8, ratio = rbytes / wset, provider = "mg/U")
  }
  data V {
    size = vbytes
    pattern template(elem = 8, ratio = vbytes / wset, provider = "mg/V")
  }

  flops 8 * hier * cycles
}
|}

let ft =
  {|
// 1-D FFT: a bit-reversal shuffle then log2(n) butterfly passes over the
// signal.  The reference stream (with per-reference store flags) is the
// executed radix-2 transform, published by the OCaml kernel as template
// provider "ft/X" -- a declarative repeated-pass approximation would lose
// the shuffle and the writeback traffic.
app ft {
  param n = 16384
  param passes = 14     // log2 n
  param repeats = 1

  data X {
    size = 16 * n
    pattern template(elem = 16, provider = "ft/X")
  }

  flops 5 * n * passes * repeats
}
|}

let mc =
  {|
// Monte Carlo cross-section lookups (XSBench): the unionized grid G and
// the nuclide data E are accessed randomly and concurrently; each gets a
// cache share proportional to its byte share of the working set (paper
// SS III-C).  A lookup reads 2 adjacent grid points and gathers 2 rows of
// nuclide values (runs of [nuclides] contiguous elements).
app mc {
  param grid = 4096
  param nuclides = 16
  param lookups = 100000

  data G { pattern random(elems = grid, elem = 8, visits = 2,
                          iters = lookups, run = 2,
                          ratio = (8 * grid) / (8 * grid + 8 * grid * nuclides)) }
  data E { pattern random(elems = grid * nuclides, elem = 8,
                          visits = 2 * nuclides, iters = lookups,
                          run = nuclides,
                          ratio = (8 * grid * nuclides) / (8 * grid + 8 * grid * nuclides)) }

  flops 4 * nuclides * lookups
}
|}

let sources =
  [
    ("machines", machines); ("vm", vm); ("cg", cg); ("nb", nb); ("mg", mg);
    ("ft", ft); ("mc", mc);
  ]

let everything = String.concat "\n" (List.map snd sources)

let load () = Parser.parse_file everything
