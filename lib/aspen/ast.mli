(** Abstract syntax of the extended-Aspen language.

    The language models the paper's §III-D programs.  A file holds
    [machine] and [app] declarations:

    {v
    machine small_verif {
      cache  { assoc = 4; sets = 64; line = 32 }
      memory { fit = 5000 }
      perf   { flops = 100e9; bandwidth = 50e9 }
    }

    app vm {
      param n = 100000
      data A { pattern stream(elem = 4, count = n * 4, stride = 4) }
      data B { pattern stream(elem = 4, count = n, stride = 1) }
      data C { pattern stream(elem = 4, count = n, stride = 1, writeback) }
      flops 2 * n
    }
    v}

    Template patterns carry the paper's Matlab-like generators:

    {v
    data R {
      pattern template(elem = 8, shape = (n3, n2, n1)) {
        range step 1
          from (R(2,1,1), R(2,3,1), R(1,2,1), R(2,2,1))
          to   (R(n3-1,n2-2,n1), R(n3-1,n2,n1), R(n3-2,n2-1,n1), R(n3,n2-1,n1))
      }
    }
    v}

    and compositions mirror the CG access-order strings:

    {v
    order iterations = iters {
      phase { r : stream(elem = 8, count = n, stride = 1) }
      phase { A : stream(elem = 8, count = n * n, stride = 1);
              p : reuse * n }
      ...
    }
    v} *)

type binop = Add | Sub | Mul | Div | Pow

type expr =
  | Num of float
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr

type arg_value =
  | Scalar of expr
  | Tuple of expr list
  | Text of string  (** string argument, e.g. [provider = "ft/X"] *)
  | Flag            (** bare identifier argument, e.g. [writeback] *)

type args = (string * arg_value) list

type reference = { array : string; indices : expr list }

type generator =
  | Refs of reference list
  | Range of { step : expr; from_ : reference list; to_ : reference list }
  | Pass of { start : expr; count : expr; stride : expr }
  | Zip of { count : expr; streams : (reference * expr) list }
  | Repeat of expr * generator list

type pattern =
  | Stream of args
  | Random of args
  | Template of { args : args; generators : generator list }
  | Reuse

type data_decl = {
  data_name : string;
  size : expr option;       (** bytes; inferred from the pattern if absent *)
  data_pattern : pattern option;
}

type occurrence = {
  occ_structure : string;
  occ_pattern : pattern;
  times : expr option;
}

type order_decl = {
  iterations : expr option;  (** defaults to 1 *)
  phases : occurrence list list;
}

type app = {
  app_name : string;
  params : (string * expr) list;
  datas : data_decl list;
  order : order_decl option;
  flops : expr option;
  time : expr option;        (** seconds; overrides the roofline model *)
}

type machine_section = {
  section_name : string;     (** "cache", "memory", "perf" *)
  fields : (string * expr) list;
}

type machine = {
  machine_name : string;
  sections : machine_section list;
}

type decl = Machine of machine | App of app

type file = decl list
