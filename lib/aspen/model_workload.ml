module Ap = Access_patterns

let pattern_classes (spec : Ap.App_spec.t) =
  let add acc name = if List.mem name acc then acc else acc @ [ name ] in
  let of_pattern acc = function
    | Ap.Pattern.Stream _ -> add acc "Streaming"
    | Ap.Pattern.Random _ -> add acc "Random"
    | Ap.Pattern.Templated _ -> add acc "Template-based"
  in
  let acc =
    List.fold_left
      (fun acc (s : Ap.App_spec.structure) ->
        match s.Ap.App_spec.pattern with
        | Some p -> of_pattern acc p
        | None -> acc)
      [] spec.Ap.App_spec.structures
  in
  let acc =
    match spec.Ap.App_spec.composition with
    | None -> acc
    | Some c ->
        List.fold_left
          (fun acc phase ->
            List.fold_left
              (fun acc (o : Ap.Compose.occurrence) ->
                match o.Ap.Compose.pattern with
                | Ap.Compose.Stream _ -> add acc "Streaming"
                | Ap.Compose.Tmpl _ -> add acc "Template-based"
                | Ap.Compose.Reuse_only -> add acc "Reuse")
              acc phase)
          acc c.Ap.Compose.order
  in
  match acc with [] -> "(declared sizes only)" | classes -> String.concat "+" classes

let describe_params (app : Compile.app) =
  match app.Compile.env with
  | [] -> "(no parameters)"
  | env ->
      String.concat ", "
        (List.rev_map (fun (name, v) -> Printf.sprintf "%s=%g" name v) env)

let of_app ?source (app : Compile.app) =
  let instance =
    {
      Core.Workload.workload = app.Compile.app_name;
      label = app.Compile.app_name;
      spec = app.Compile.spec;
      flops = app.Compile.flops;
      trace = Core.Replay.trace app.Compile.spec;
    }
  in
  Core.Workload.make ~name:app.Compile.app_name
    ~computational_class:"Aspen model"
    ~major_structures:
      (List.map
         (fun (s : Ap.App_spec.structure) -> s.Ap.App_spec.name)
         app.Compile.spec.Ap.App_spec.structures)
    ~pattern_classes:(pattern_classes app.Compile.spec)
    ~example_benchmark:
      (match source with Some path -> path | None -> "user model")
    ~input_size:(fun _ -> describe_params app)
    (* A model has one problem scale: its parameter values.  Both modes
       return the same instance.  An Aspen model has no executable
       kernel to bombard, so no injector. *)
    ~instance:(fun _ -> instance)
    ?aspen_source:source ()

let register ?source app =
  let w = of_app ?source app in
  Core.Workload.register w;
  w
