module Ap = Access_patterns
module TL = Access_patterns.Template_lang

type machine = {
  machine_name : string;
  cache : Cachesim.Config.t;
  fit : float;
  perf : Core.Perf.machine;
}

type app = {
  app_name : string;
  spec : Ap.App_spec.t;
  flops : int;
  declared_time : float option;
  env : Eval.env;
}

let fail message = Errors.fail ~line:0 ~col:0 message

(* --- argument helpers --- *)

let scalar_arg args name =
  match List.assoc_opt name args with
  | Some (Ast.Scalar e) -> Some e
  | Some _ -> fail (Printf.sprintf "argument '%s' must be a scalar" name)
  | None -> None

let required_int env args ~context name =
  match scalar_arg args name with
  | Some e -> Eval.int_expr env e
  | None -> fail (Printf.sprintf "%s requires argument '%s'" context name)

let optional_int env args name ~default =
  match scalar_arg args name with
  | Some e -> Eval.int_expr env e
  | None -> default

let optional_float env args name ~default =
  match scalar_arg args name with
  | Some e -> Eval.expr env e
  | None -> default

let text_arg args name =
  match List.assoc_opt name args with
  | Some (Ast.Text s) -> Some s
  | Some _ -> fail (Printf.sprintf "argument '%s' must be a string" name)
  | None -> None

let has_flag args name =
  match List.assoc_opt name args with
  | Some Ast.Flag -> true
  | Some (Ast.Scalar (Ast.Num f)) -> f <> 0.0
  | Some _ -> fail (Printf.sprintf "argument '%s' must be a bare flag" name)
  | None -> false

let tuple_arg args name =
  match List.assoc_opt name args with
  | Some (Ast.Tuple es) -> Some es
  | Some (Ast.Scalar e) -> Some [ e ]
  | Some (Ast.Flag | Ast.Text _) ->
      fail (Printf.sprintf "argument '%s' must be a tuple" name)
  | None -> None

let known_args ~context args allowed =
  List.iter
    (fun (name, _) ->
      if not (List.mem name allowed) then
        fail (Printf.sprintf "%s: unknown argument '%s'" context name))
    args

(* --- pattern lowering --- *)

let lower_stream env args =
  known_args ~context:"stream" args
    [ "elem"; "count"; "stride"; "writeback" ];
  Ap.Streaming.make
    ~writeback:(has_flag args "writeback")
    ~elem_size:(required_int env args ~context:"stream" "elem")
    ~elements:(required_int env args ~context:"stream" "count")
    ~stride:(optional_int env args "stride" ~default:1)
    ()

let lower_random env args =
  known_args ~context:"random" args
    [ "elems"; "elem"; "visits"; "iters"; "ratio"; "run"; "resident" ];
  Ap.Random_access.make
    ~run_length:(optional_int env args "run" ~default:1)
    ~resident_bytes:(optional_int env args "resident" ~default:0)
    ~elements:(required_int env args ~context:"random" "elems")
    ~elem_size:(required_int env args ~context:"random" "elem")
    ~visits:(required_int env args ~context:"random" "visits")
    ~iterations:(required_int env args ~context:"random" "iters")
    ~cache_ratio:(optional_float env args "ratio" ~default:1.0)
    ()

let lower_reference (r : Ast.reference) = List.map Eval.to_template_expr r.Ast.indices

let rec lower_generator (g : Ast.generator) : TL.t =
  match g with
  | Ast.Refs rs -> TL.Refs (List.map lower_reference rs)
  | Ast.Range { step; from_; to_ } ->
      TL.Range
        {
          start = List.map lower_reference from_;
          step = Eval.to_template_expr step;
          stop = List.map lower_reference to_;
        }
  | Ast.Pass { start; count; stride } ->
      TL.Pass
        {
          start = Eval.to_template_expr start;
          count = Eval.to_template_expr count;
          stride = Eval.to_template_expr stride;
        }
  | Ast.Zip { count; streams } ->
      TL.Zip
        {
          count = Eval.to_template_expr count;
          streams =
            List.map
              (fun (r, step) -> (lower_reference r, Eval.to_template_expr step))
              streams;
        }
  | Ast.Repeat (count, body) ->
      TL.Repeat (Eval.to_template_expr count, List.map lower_generator body)

let lower_template env args generators =
  known_args ~context:"template" args
    [ "elem"; "ratio"; "shape"; "raw"; "provider" ];
  let elem = required_int env args ~context:"template" "elem" in
  let ratio = optional_float env args "ratio" ~default:1.0 in
  let tl_env =
    List.filter_map
      (fun (name, v) ->
        if Float.is_integer v then Some (name, int_of_float v) else None)
      env
  in
  let distance = if has_flag args "raw" then `Raw else `Stack in
  match text_arg args "provider" with
  | Some provider_name ->
      (* The reference stream comes from a generator registered by a
         kernel module (executed pseudocode), not from inline
         generators. *)
      if generators <> [] then
        fail
          (Printf.sprintf
             "template: provider %S cannot be combined with inline generators"
             provider_name);
      if List.mem_assoc "shape" args then
        fail
          (Printf.sprintf "template: provider %S takes no shape" provider_name);
      let provider =
        match Ap.Template_provider.find provider_name with
        | Some p -> p
        | None ->
            fail
              (Printf.sprintf "template: unknown provider %S (registered: %s)"
                 provider_name
                 (match Ap.Template_provider.names () with
                 | [] -> "none"
                 | names -> String.concat ", " names))
      in
      let refs, writes =
        try provider tl_env with Failure message -> fail message
      in
      Ap.Template.make ~cache_ratio:ratio ~distance ?writes ~elem_size:elem
        refs
  | None ->
      let shape =
        match tuple_arg args "shape" with
        | Some es -> List.map Eval.to_template_expr es
        | None -> [ TL.Expr.Int max_int ]
          (* rank-1 references with a virtually unbounded extent *)
      in
      let generator = TL.Seq (List.map lower_generator generators) in
      let refs =
        try TL.expand ~env:tl_env ~shape generator with
        | Failure message -> fail message
        | Invalid_argument message -> fail message
      in
      Ap.Template.make ~cache_ratio:ratio ~distance ~elem_size:elem refs

let lower_standalone_pattern env (p : Ast.pattern) =
  match p with
  | Ast.Stream args -> Some (Ap.Pattern.Stream (lower_stream env args))
  | Ast.Random args -> Some (Ap.Pattern.Random (lower_random env args))
  | Ast.Template { args; generators } ->
      Some (Ap.Pattern.Templated (lower_template env args generators))
  | Ast.Reuse -> fail "'reuse' is only meaningful inside an order phase"

let lower_occurrence_pattern env (p : Ast.pattern) =
  match p with
  | Ast.Stream args -> Ap.Compose.Stream (lower_stream env args)
  | Ast.Template { args; generators } ->
      Ap.Compose.Tmpl (lower_template env args generators)
  | Ast.Reuse -> Ap.Compose.Reuse_only
  | Ast.Random _ -> fail "random patterns cannot appear inside an order phase"

let inferred_size env (p : Ast.pattern) =
  match p with
  | Ast.Stream args ->
      required_int env args ~context:"stream" "elem"
      * required_int env args ~context:"stream" "count"
  | Ast.Random args ->
      required_int env args ~context:"random" "elem"
      * required_int env args ~context:"random" "elems"
  | Ast.Template { args; generators } ->
      let t = lower_template env args generators in
      let hi = Array.fold_left max 0 t.Ap.Template.refs in
      (hi + 1) * t.Ap.Template.elem_size
  | Ast.Reuse -> fail "cannot infer a size from 'reuse'"

(* --- app compilation --- *)

let eval_params ?(overrides = []) decls =
  List.fold_left
    (fun env (name, e) ->
      match List.assoc_opt name overrides with
      | Some v -> (name, v) :: env
      | None -> (name, Eval.expr env e) :: env)
    [] decls

let compile_app ?overrides (a : Ast.app) =
  let env = eval_params ?overrides a.Ast.params in
  let structures =
    List.map
      (fun (d : Ast.data_decl) ->
        let bytes =
          match d.Ast.size with
          | Some e -> Eval.int_expr env e
          | None -> (
              match d.Ast.data_pattern with
              | Some p -> inferred_size env p
              | None ->
                  fail
                    (Printf.sprintf
                       "data '%s' needs either a size or a pattern"
                       d.Ast.data_name))
        in
        let pattern =
          match d.Ast.data_pattern with
          | Some p -> lower_standalone_pattern env p
          | None -> None
        in
        { Ap.App_spec.name = d.Ast.data_name; bytes; pattern })
      a.Ast.datas
  in
  let composition =
    match a.Ast.order with
    | None -> None
    | Some { iterations; phases } ->
        let iterations =
          match iterations with Some e -> Eval.int_expr env e | None -> 1
        in
        let compose_structures =
          List.map
            (fun (s : Ap.App_spec.structure) ->
              { Ap.Compose.name = s.Ap.App_spec.name; bytes = s.Ap.App_spec.bytes })
            structures
        in
        let order =
          List.map
            (fun phase ->
              List.map
                (fun (occ : Ast.occurrence) ->
                  let times =
                    match occ.Ast.times with
                    | Some e -> Eval.int_expr env e
                    | None -> 1
                  in
                  Ap.Compose.occ ~times occ.Ast.occ_structure
                    (lower_occurrence_pattern env occ.Ast.occ_pattern))
                phase)
            phases
        in
        (try Some (Ap.Compose.make ~structures:compose_structures ~order ~iterations)
         with Invalid_argument message -> fail message)
  in
  let spec =
    try Ap.App_spec.make ~app_name:a.Ast.app_name ~structures ?composition ()
    with Invalid_argument message -> fail message
  in
  {
    app_name = a.Ast.app_name;
    spec;
    flops = (match a.Ast.flops with Some e -> Eval.int_expr env e | None -> 0);
    declared_time =
      (match a.Ast.time with Some e -> Some (Eval.expr env e) | None -> None);
    env;
  }

(* --- machine compilation --- *)

let compile_machine (m : Ast.machine) =
  let section name =
    List.find_opt (fun s -> s.Ast.section_name = name) m.Ast.sections
  in
  List.iter
    (fun s ->
      if not (List.mem s.Ast.section_name [ "cache"; "memory"; "perf" ]) then
        fail
          (Printf.sprintf "machine '%s': unknown section '%s'" m.Ast.machine_name
             s.Ast.section_name))
    m.Ast.sections;
  let field ~section_name fields name =
    match List.assoc_opt name fields with
    | Some e -> Eval.expr [] e
    | None ->
        fail
          (Printf.sprintf "machine '%s': section '%s' needs field '%s'"
             m.Ast.machine_name section_name name)
  in
  let cache =
    match section "cache" with
    | None -> fail (Printf.sprintf "machine '%s' has no cache section" m.Ast.machine_name)
    | Some s ->
        let get = field ~section_name:"cache" s.Ast.fields in
        (try
           Cachesim.Config.make ~name:m.Ast.machine_name
             ~associativity:(int_of_float (get "assoc"))
             ~sets:(int_of_float (get "sets"))
             ~line:(int_of_float (get "line"))
         with Invalid_argument message -> fail message)
  in
  let fit =
    match section "memory" with
    | None -> Core.Ecc.fit Core.Ecc.No_ecc
    | Some s -> field ~section_name:"memory" s.Ast.fields "fit"
  in
  let perf =
    match section "perf" with
    | None -> Core.Perf.default_machine
    | Some s ->
        let get = field ~section_name:"perf" s.Ast.fields in
        (try
           Core.Perf.make_machine ~name:m.Ast.machine_name
             ~peak_flops:(get "flops") ~memory_bandwidth:(get "bandwidth")
         with Invalid_argument message -> fail message)
  in
  { machine_name = m.Ast.machine_name; cache; fit; perf }

let machines file =
  List.filter_map
    (function Ast.Machine m -> Some (compile_machine m) | Ast.App _ -> None)
    file

let apps ?overrides file =
  List.filter_map
    (function
      | Ast.App a -> Some (compile_app ?overrides a)
      | Ast.Machine _ -> None)
    file

let find_machine file name =
  match
    List.find_opt (fun (m : machine) -> m.machine_name = name) (machines file)
  with
  | Some m -> m
  | None -> fail (Printf.sprintf "no machine named '%s' in this file" name)

let find_app ?overrides file name =
  let decl =
    List.find_opt
      (function Ast.App a -> a.Ast.app_name = name | Ast.Machine _ -> false)
      file
  in
  match decl with
  | Some (Ast.App a) -> compile_app ?overrides a
  | _ -> fail (Printf.sprintf "no app named '%s' in this file" name)

let execution_time machine app =
  match app.declared_time with
  | Some t -> t
  | None ->
      Core.Perf.app_time machine.perf ~cache:machine.cache ~flops:app.flops
        app.spec

let dvf machine app =
  let time = execution_time machine app in
  Core.Dvf.of_spec ~cache:machine.cache ~fit:machine.fit ~time app.spec
