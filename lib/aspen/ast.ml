type binop = Add | Sub | Mul | Div | Pow

type expr =
  | Num of float
  | Var of string
  | Binop of binop * expr * expr
  | Neg of expr

type arg_value =
  | Scalar of expr
  | Tuple of expr list
  | Text of string  (** string argument, e.g. [provider = "ft/X"] *)
  | Flag            (** bare identifier argument, e.g. [writeback] *)

type args = (string * arg_value) list

type reference = { array : string; indices : expr list }

type generator =
  | Refs of reference list
  | Range of { step : expr; from_ : reference list; to_ : reference list }
  | Pass of { start : expr; count : expr; stride : expr }
  | Zip of { count : expr; streams : (reference * expr) list }
  | Repeat of expr * generator list

type pattern =
  | Stream of args
  | Random of args
  | Template of { args : args; generators : generator list }
  | Reuse

type data_decl = {
  data_name : string;
  size : expr option;       (** bytes; inferred from the pattern if absent *)
  data_pattern : pattern option;
}

type occurrence = {
  occ_structure : string;
  occ_pattern : pattern;
  times : expr option;
}

type order_decl = {
  iterations : expr option;  (** defaults to 1 *)
  phases : occurrence list list;
}

type app = {
  app_name : string;
  params : (string * expr) list;
  datas : data_decl list;
  order : order_decl option;
  flops : expr option;
  time : expr option;        (** seconds; overrides the roofline model *)
}

type machine_section = {
  section_name : string;     (** "cache", "memory", "perf" *)
  fields : (string * expr) list;
}

type machine = {
  machine_name : string;
  sections : machine_section list;
}

type decl = Machine of machine | App of app

type file = decl list
