(** Aspen models as first-class workloads (the paper's Fig. 3 workflow:
    Aspen program in, DVF out).

    A compiled app becomes a {!Core.Workload.t} whose spec and flop count
    come from the model and whose tracer is the synthetic replay of the
    declared patterns ({!Core.Replay}), so registry consumers — DVF
    profiling, Fig. 4 trace verification, the CLI — treat it exactly like
    a built-in kernel. *)

val of_app : ?source:string -> Compile.app -> Core.Workload.t
(** [of_app ~source app] wraps a compiled app; [source] (e.g. the .aspen
    path) is recorded as provenance.  Both instance modes return the
    model's single problem scale. *)

val register : ?source:string -> Compile.app -> Core.Workload.t
(** {!of_app} followed by {!Core.Workload.register}; returns the
    workload.  Raises [Invalid_argument] on a name collision (e.g. a
    model named like a built-in kernel). *)
