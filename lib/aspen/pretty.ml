open Ast

(* Fully parenthesized binary operators: simple and unambiguous to
   re-parse. *)
let rec pp_expr fmt = function
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf fmt "%.0f" f
      else Format.fprintf fmt "%g" f
  | Var v -> Format.pp_print_string fmt v
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e
  | Binop (op, a, b) ->
      let sym =
        match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "^"
      in
      Format.fprintf fmt "(%a %s %a)" pp_expr a sym pp_expr b

let pp_list pp fmt xs =
  Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp fmt xs

let pp_reference fmt (r : reference) =
  Format.fprintf fmt "%s(%a)" r.array (pp_list pp_expr) r.indices

let pp_arg fmt (name, value) =
  match value with
  | Scalar e -> Format.fprintf fmt "%s = %a" name pp_expr e
  | Tuple es -> Format.fprintf fmt "%s = (%a)" name (pp_list pp_expr) es
  | Text s -> Format.fprintf fmt "%s = %S" name s
  | Flag -> Format.pp_print_string fmt name

let pp_args fmt args = Format.fprintf fmt "(%a)" (pp_list pp_arg) args

let rec pp_generator fmt = function
  | Refs rs -> Format.fprintf fmt "refs (%a)" (pp_list pp_reference) rs
  | Range { step; from_; to_ } ->
      Format.fprintf fmt "range step %a@ from (%a)@ to (%a)" pp_expr step
        (pp_list pp_reference) from_ (pp_list pp_reference) to_
  | Pass { start; count; stride } ->
      Format.fprintf fmt "pass(start = %a, count = %a, stride = %a)" pp_expr
        start pp_expr count pp_expr stride
  | Zip { count; streams } ->
      Format.fprintf fmt "zip count %a {@ %a }" pp_expr count
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
           (fun fmt (r, step) ->
             Format.fprintf fmt "%a step %a" pp_reference r pp_expr step))
        streams
  | Repeat (count, body) ->
      Format.fprintf fmt "repeat %a {@ %a }" pp_expr count
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_generator)
        body

let pp_pattern fmt = function
  | Stream args -> Format.fprintf fmt "stream%a" pp_args args
  | Random args -> Format.fprintf fmt "random%a" pp_args args
  | Template { args; generators = [] } -> Format.fprintf fmt "template%a" pp_args args
  | Template { args; generators } ->
      Format.fprintf fmt "@[<v 2>template%a {@,%a@]@,}" pp_args args
        (Format.pp_print_list pp_generator)
        generators
  | Reuse -> Format.pp_print_string fmt "reuse"

let pp_data fmt (d : data_decl) =
  Format.fprintf fmt "@[<v 2>data %s {" d.data_name;
  (match d.size with
  | Some e -> Format.fprintf fmt "@,size = %a" pp_expr e
  | None -> ());
  (match d.data_pattern with
  | Some p -> Format.fprintf fmt "@,pattern %a" pp_pattern p
  | None -> ());
  Format.fprintf fmt "@]@,}"

let pp_occurrence fmt (o : occurrence) =
  Format.fprintf fmt "%s : %a" o.occ_structure pp_pattern o.occ_pattern;
  match o.times with
  | Some e -> Format.fprintf fmt " * %a" pp_expr e
  | None -> ()

let pp_phase fmt phase =
  Format.fprintf fmt "@[<v 2>phase {@,%a@]@,}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@,")
       pp_occurrence)
    phase

let pp_order fmt (o : order_decl) =
  Format.fprintf fmt "@[<v 2>order";
  (match o.iterations with
  | Some e -> Format.fprintf fmt " iterations = %a" pp_expr e
  | None -> ());
  Format.fprintf fmt " {@,%a@]@,}"
    (Format.pp_print_list pp_phase)
    o.phases

let pp_app fmt (a : app) =
  Format.fprintf fmt "@[<v 2>app %s {" a.app_name;
  List.iter
    (fun (name, e) -> Format.fprintf fmt "@,param %s = %a" name pp_expr e)
    a.params;
  List.iter (fun d -> Format.fprintf fmt "@,%a" pp_data d) a.datas;
  (match a.order with
  | Some o -> Format.fprintf fmt "@,%a" pp_order o
  | None -> ());
  (match a.flops with
  | Some e -> Format.fprintf fmt "@,flops %a" pp_expr e
  | None -> ());
  (match a.time with
  | Some e -> Format.fprintf fmt "@,time %a" pp_expr e
  | None -> ());
  Format.fprintf fmt "@]@,}"

let pp_machine fmt (m : machine) =
  Format.fprintf fmt "@[<v 2>machine %s {" m.machine_name;
  List.iter
    (fun s ->
      Format.fprintf fmt "@,%s { %a }" s.section_name
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
           (fun fmt (name, e) -> Format.fprintf fmt "%s = %a" name pp_expr e))
        s.fields)
    m.sections;
  Format.fprintf fmt "@]@,}"

let pp_file fmt file =
  Format.fprintf fmt "@[<v>";
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,@,")
    (fun fmt -> function
      | Machine m -> pp_machine fmt m
      | App a -> pp_app fmt a)
    fmt file;
  Format.fprintf fmt "@]"

let to_string file = Format.asprintf "%a@." pp_file file
