(** Deterministic pseudo-random numbers (splitmix64 + xoshiro256-star-star).

    Every stochastic component of the reproduction (particle placement in
    Barnes–Hut, Monte Carlo lookups, random SPD systems, property-test
    workload generators) draws from this generator so runs are exactly
    reproducible from a seed, independent of OCaml's [Random] state. *)

type t

val create : int -> t
(** [create seed] seeds a xoshiro256-star-star state via splitmix64
    expansion. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0; bound)].  Raises [Invalid_argument]
    if [bound <= 0].  Uses rejection sampling, so it is exactly uniform. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0; bound)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** [sample_without_replacement t ~n ~k] draws [k] distinct values from
    [\[0; n)].  Raises [Invalid_argument] if [k > n] or [k < 0]. *)

val split : t -> t
(** Derive an independent child generator (for per-structure streams). *)

val sub_seed : int -> int -> int
(** [sub_seed seed index] derives the [index]-th child seed of [seed]
    through the splitmix64 finalizer.  A pure function of the two
    integers — unlike [Hashtbl.hash]-based schemes it cannot collide two
    distinct indices of the same seed in practice, and it is stable
    across OCaml versions.  Chain calls to derive from a path, e.g.
    [sub_seed (sub_seed seed structure) trial]. *)
