(* A fixed-size pool of worker domains fed from a mutex/condition work
   queue.  Everything here is stdlib-only (Domain + Mutex + Condition);
   OCaml 5's runtime gives each domain its own minor heap, so the
   independent simulation jobs this module exists for (one kernel x one
   cache configuration each) never contend on allocation.

   Jobs must be independent: they may freely allocate and mutate their
   own state but must not share mutable structures.  [map] preserves
   input order in its output, so a parallel sweep returns exactly the
   rows a serial sweep would. *)

let recommended_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  type t = {
    mutex : Mutex.t;
    work_available : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable stopping : bool;
    mutable workers : unit Domain.t array;
    size : int;
    telemetry : Telemetry.t;
  }

  let size t = t.size

  (* Workers drain the queue even while stopping, so a [shutdown] racing
     with in-flight [map] calls never strands a job. *)
  let rec worker_loop t =
    Mutex.lock t.mutex;
    let rec take () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stopping then None
      else begin
        Condition.wait t.work_available t.mutex;
        take ()
      end
    in
    let task = take () in
    Mutex.unlock t.mutex;
    match task with
    | Some task ->
        task ();
        worker_loop t
    | None -> ()

  let create ?(telemetry = Telemetry.null) ?jobs () =
    let jobs =
      match jobs with Some j -> j | None -> recommended_jobs ()
    in
    if jobs <= 0 then
      invalid_arg
        (Printf.sprintf "Parallel.Pool.create: jobs must be positive (got %d)"
           jobs);
    let t =
      {
        mutex = Mutex.create ();
        work_available = Condition.create ();
        queue = Queue.create ();
        stopping = false;
        workers = [||];
        size = jobs;
        telemetry;
      }
    in
    (* The caller's domain only enqueues and waits, so all [jobs] workers
       are spawned domains; [jobs = 1] spawns none and [map] degrades to
       the serial path in the calling domain. *)
    if jobs > 1 then
      t.workers <-
        Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  type 'b outcome =
    | Pending
    | Done of 'b
    | Failed of exn * Printexc.raw_backtrace

  let map t f xs =
    let n = Array.length xs in
    if n = 0 then [||]
    else if Array.length t.workers = 0 then
      (* jobs = 1: run in the calling domain, bit-for-bit the serial path. *)
      Array.map f xs
    else begin
      let results = Array.make n Pending in
      let remaining = ref n in
      let all_done = Condition.create () in
      let record i outcome =
        Mutex.lock t.mutex;
        results.(i) <- outcome;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        invalid_arg "Parallel.Pool.map: pool already shut down"
      end;
      let instrumented = Telemetry.enabled t.telemetry in
      for i = 0 to n - 1 do
        let x = xs.(i) in
        let run () =
          match f x with
          | v -> record i (Done v)
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              record i (Failed (e, bt))
        in
        let task =
          if not instrumented then run
          else begin
            (* Queue-wait vs compute accounting: the time from enqueue to a
               worker picking the task up is wait; the task body is
               compute.  Aggregated per pool, not per task, so the counters
               stay deterministic — only the times vary with scheduling. *)
            let enqueued = Telemetry.now_ns t.telemetry in
            fun () ->
              let started = Telemetry.now_ns t.telemetry in
              Telemetry.time_ns t.telemetry "pool/queue_wait"
                (Int64.sub started enqueued);
              Telemetry.add t.telemetry "pool/tasks";
              run ();
              Telemetry.time_ns t.telemetry "pool/compute"
                (Int64.sub (Telemetry.now_ns t.telemetry) started)
          end
        in
        Queue.add task t.queue
      done;
      Condition.broadcast t.work_available;
      while !remaining > 0 do
        Condition.wait all_done t.mutex
      done;
      Mutex.unlock t.mutex;
      (* Every job ran to completion; surface the first failure in input
         order (deterministic regardless of scheduling). *)
      Array.map
        (function
          | Done v -> v
          | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
          | Pending -> assert false)
        results
    end

  let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

  let shutdown t =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
end

let with_pool ?telemetry ?jobs f =
  let pool = Pool.create ?telemetry ?jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let map ?telemetry ?jobs f xs =
  match jobs with
  | Some 1 -> Array.map f xs
  | _ -> with_pool ?telemetry ?jobs (fun pool -> Pool.map pool f xs)

let map_list ?telemetry ?jobs f xs =
  match jobs with
  | Some 1 -> List.map f xs
  | _ -> with_pool ?telemetry ?jobs (fun pool -> Pool.map_list pool f xs)
