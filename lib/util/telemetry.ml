(* The collector is a variant so the disabled case carries no state at
   all: every recording function dispatches on it once and falls through.
   Enabled collectors guard their tables with a mutex (cheap next to the
   simulation work between updates) and keep the span-nesting stack in
   domain-local storage so workers sharing one collector cannot corrupt
   each other's paths. *)

type span_stat = { mutable calls : int; mutable ns : int64 }

type enabled = {
  clock : unit -> int64;
  mutex : Mutex.t;
  spans : (string, span_stat) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  stack_key : string list Domain.DLS.key;
}

type t = Disabled | Enabled of enabled

let null = Disabled

let monotonic_ns () = Monotonic_clock.now ()

let create ?(clock = monotonic_ns) () =
  Enabled
    {
      clock;
      mutex = Mutex.create ();
      spans = Hashtbl.create 32;
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      stack_key = Domain.DLS.new_key (fun () -> []);
    }

let enabled = function Disabled -> false | Enabled _ -> true

let now_ns = function Disabled -> 0L | Enabled e -> e.clock ()

let record_span e path dt =
  Mutex.protect e.mutex (fun () ->
      match Hashtbl.find_opt e.spans path with
      | Some s ->
          s.calls <- s.calls + 1;
          s.ns <- Int64.add s.ns dt
      | None -> Hashtbl.add e.spans path { calls = 1; ns = dt })

let span t name f =
  match t with
  | Disabled -> f ()
  | Enabled e -> (
      let stack = Domain.DLS.get e.stack_key in
      let path =
        match stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
      in
      Domain.DLS.set e.stack_key (path :: stack);
      let t0 = e.clock () in
      let finish () =
        record_span e path (Int64.sub (e.clock ()) t0);
        Domain.DLS.set e.stack_key stack
      in
      match f () with
      | v ->
          finish ();
          v
      | exception ex ->
          finish ();
          raise ex)

let time_ns t path dt =
  match t with
  | Disabled -> ()
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          match Hashtbl.find_opt e.spans path with
          | Some s ->
              (* An externally timed interval still counts one call. *)
              s.calls <- s.calls + 1;
              s.ns <- Int64.add s.ns dt
          | None -> Hashtbl.add e.spans path { calls = 1; ns = dt })

let add t ?(n = 1) name =
  match t with
  | Disabled -> ()
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          match Hashtbl.find_opt e.counters name with
          | Some r -> r := !r + n
          | None -> Hashtbl.add e.counters name (ref n))

let set_gauge t name v =
  match t with
  | Disabled -> ()
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          match Hashtbl.find_opt e.gauges name with
          | Some r -> r := v
          | None -> Hashtbl.add e.gauges name (ref v))

let gauge_value t name =
  match t with
  | Disabled -> None
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          Option.map ( ! ) (Hashtbl.find_opt e.gauges name))

let counter_value t name =
  match t with
  | Disabled -> 0
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          match Hashtbl.find_opt e.counters name with
          | Some r -> !r
          | None -> 0)

let span_stat t path =
  match t with
  | Disabled -> None
  | Enabled e ->
      Mutex.protect e.mutex (fun () ->
          Option.map
            (fun s -> (s.calls, s.ns))
            (Hashtbl.find_opt e.spans path))

let span_ns t path =
  match span_stat t path with Some (_, ns) -> ns | None -> 0L

let span_calls t path =
  match span_stat t path with Some (calls, _) -> calls | None -> 0

let gauge_rate t ~name ~counter ~span =
  match t with
  | Disabled -> ()
  | Enabled _ ->
      let ns = span_ns t span in
      if Int64.compare ns 0L > 0 then
        set_gauge t name
          (float_of_int (counter_value t counter)
          /. (Int64.to_float ns /. 1e9))

let fork = function
  | Disabled -> Disabled
  | Enabled e -> create ~clock:e.clock ()

let sorted_bindings table =
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let merge ~into src =
  match (into, src) with
  | Disabled, _ | _, Disabled -> ()
  | Enabled into_e, Enabled src_e ->
      (* Snapshot the source under its own lock, then apply under the
         destination's — never hold both (merge ~into:a b racing
         merge ~into:b a must not deadlock). *)
      let spans, counters, gauges =
        Mutex.protect src_e.mutex (fun () ->
            ( List.map
                (fun (k, (s : span_stat)) -> (k, (s.calls, s.ns)))
                (sorted_bindings src_e.spans),
              List.map (fun (k, r) -> (k, !r)) (sorted_bindings src_e.counters),
              List.map (fun (k, r) -> (k, !r)) (sorted_bindings src_e.gauges) ))
      in
      Mutex.protect into_e.mutex (fun () ->
          List.iter
            (fun (path, (calls, ns)) ->
              match Hashtbl.find_opt into_e.spans path with
              | Some s ->
                  s.calls <- s.calls + calls;
                  s.ns <- Int64.add s.ns ns
              | None -> Hashtbl.add into_e.spans path { calls; ns })
            spans;
          List.iter
            (fun (name, n) ->
              match Hashtbl.find_opt into_e.counters name with
              | Some r -> r := !r + n
              | None -> Hashtbl.add into_e.counters name (ref n))
            counters;
          List.iter
            (fun (name, v) ->
              match Hashtbl.find_opt into_e.gauges name with
              | Some r -> r := v
              | None -> Hashtbl.add into_e.gauges name (ref v))
            gauges)

let schema_version = 1

let to_json t =
  let spans, counters, gauges =
    match t with
    | Disabled -> ([], [], [])
    | Enabled e ->
        Mutex.protect e.mutex (fun () ->
            ( List.map
                (fun (path, (s : span_stat)) ->
                  ( path,
                    Json.Obj
                      [
                        ("calls", Json.Int s.calls);
                        ("seconds", Json.Float (Int64.to_float s.ns /. 1e9));
                      ] ))
                (sorted_bindings e.spans),
              List.map
                (fun (name, r) -> (name, Json.Int !r))
                (sorted_bindings e.counters),
              List.map
                (fun (name, r) -> (name, Json.Float !r))
                (sorted_bindings e.gauges) ))
  in
  Json.Obj
    [
      ("schema", Json.Str "dvf-telemetry");
      ("schema_version", Json.Int schema_version);
      ("spans", Json.Obj spans);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
    ]

let validate doc =
  let ( let* ) = Result.bind in
  let section name check =
    match Json.member name doc with
    | Some (Json.Obj members) ->
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            if check v then Ok ()
            else Error (Printf.sprintf "%s/%s has the wrong type" name k))
          (Ok ()) members
    | Some _ -> Error (Printf.sprintf "%S is not an object" name)
    | None -> Error (Printf.sprintf "missing %S" name)
  in
  let* () =
    match Json.member "schema" doc with
    | Some (Json.Str "dvf-telemetry") -> Ok ()
    | _ -> Error "missing or wrong \"schema\""
  in
  let* () =
    match Json.member "schema_version" doc with
    | Some (Json.Int v) when v = schema_version -> Ok ()
    | Some (Json.Int v) ->
        Error (Printf.sprintf "unsupported schema_version %d" v)
    | _ -> Error "missing \"schema_version\""
  in
  let* () =
    section "spans" (fun v ->
        match (Json.member "calls" v, Json.member "seconds" v) with
        | Some (Json.Int _), Some (Json.Float _) -> true
        | _ -> false)
  in
  let* () =
    section "counters" (function Json.Int _ -> true | _ -> false)
  in
  section "gauges" (function Json.Float _ -> true | _ -> false)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json t)))
