(** Parallel execution of independent jobs on OCaml 5 domains.

    Stdlib-only (Domain + Mutex + Condition): a fixed-size pool of worker
    domains pulls closures from a shared work queue.  Designed for the
    embarrassingly parallel sweeps in this repository — every kernel x
    cache-configuration simulation owns its private [Region], [Recorder]
    and [Cache], so jobs share nothing mutable and the parallel result is
    bit-identical to the serial one.

    Restrictions: jobs must not themselves call back into the same pool
    (a worker blocking on a nested [map] can starve the queue), and the
    mapped function must not rely on ambient mutable globals. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default worker count. *)

module Pool : sig
  type t

  val create : ?telemetry:Telemetry.t -> ?jobs:int -> unit -> t
  (** [create ~jobs ()] spawns [jobs] worker domains (default
      {!recommended_jobs}).  [jobs = 1] spawns none: every [map] then runs
      serially in the calling domain, preserving the exact serial code
      path.  Raises [Invalid_argument] when [jobs <= 0].

      [telemetry] (default {!Telemetry.null}) receives, for every task run
      on a spawned worker, the queue-wait time (enqueue to pickup) and the
      compute time under span paths ["pool/queue_wait"] and
      ["pool/compute"], plus a ["pool/tasks"] counter.  The serial
      [jobs = 1] path records nothing, keeping it exactly the historical
      code. *)

  val size : t -> int
  (** The job count the pool was created with. *)

  val map : t -> ('a -> 'b) -> 'a array -> 'b array
  (** Order-preserving parallel map: [map t f xs] runs [f] on every
      element and places results at the input's index.  All jobs run to
      completion even if some raise; afterwards the first failure in
      input order is re-raised with its original backtrace.  Raises
      [Invalid_argument] if the pool has been shut down. *)

  val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
  (** [map] over lists. *)

  val shutdown : t -> unit
  (** Drain the queue, stop the workers and join their domains.
      Idempotent-safe to call once; the pool is unusable afterwards. *)
end

val with_pool : ?telemetry:Telemetry.t -> ?jobs:int -> (Pool.t -> 'a) -> 'a
(** Create a pool, run the callback, always shut the pool down. *)

val map : ?telemetry:Telemetry.t -> ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** One-shot [Pool.map] on a transient pool.  [~jobs:1] bypasses pool
    machinery entirely ([Array.map]). *)

val map_list :
  ?telemetry:Telemetry.t -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [Pool.map_list] on a transient pool.  [~jobs:1] bypasses
    pool machinery entirely ([List.map]). *)
