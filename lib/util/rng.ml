type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the seed into the xoshiro state, per the
   generator authors' recommendation. *)
let splitmix64_mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  splitmix64_mix !state

let sub_seed seed index =
  let open Int64 in
  (* Key the golden-ratio increment by [index] and mix twice: one pass of
     the finalizer on an attacker-free input is already a fine integer
     hash, the second breaks the residual affinity between adjacent
     (seed, index) pairs.  Unlike [Hashtbl.hash] this is a documented
     function of the two integers alone — stable across OCaml versions
     and never truncated to 30 bits. *)
  let z = add (of_int seed) (mul (add (of_int index) 1L) 0x9E3779B97F4A7C15L) in
  to_int (splitmix64_mix (splitmix64_mix z))

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** step. *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Rejection sampling on the top 63 bits for exact uniformity. *)
  let mask = Int64.max_int in
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int b) in
    if r >= limit then draw () else Int64.to_int (Int64.rem r b)
  in
  draw ()

let float t bound =
  (* 53 random bits mapped to [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Maths.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher–Yates over an index array; O(n) space but n is bounded
     by data-structure element counts which fit comfortably. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k

let split t =
  let seed = Int64.to_int (bits64 t) in
  create seed
