(** A minimal JSON value type with an emitter and a parser.

    Just enough JSON for the telemetry subsystem: {!Telemetry} serializes
    its metrics with {!to_string}, tests and CI round-trip the emitted
    documents with {!of_string}, and [bench/main.exe] builds its
    [BENCH_dvf.json] snapshot from {!t} values directly.  No external
    dependency (yojson is not in the toolchain this repo builds against).

    Object member order is preserved as given; emitters that need
    deterministic output (telemetry does) sort their members before
    constructing the object. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serialize.  [indent] (default [true]) pretty-prints with two-space
    indentation; [false] emits a compact single line.  Floats are printed
    with enough digits to round-trip ([%.17g]); non-finite floats are
    emitted as [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Numbers without [.]/[e] that fit in
    an OCaml [int] parse as [Int], everything else as [Float].  The error
    string names the offending byte offset.  Trailing garbage after the
    toplevel value is rejected. *)

val parse_line : string -> (t option, string) result
(** One line of a line-JSON protocol ([dvf serve]/[dvf query]).  Strips
    an optional trailing ['\r'], maps a blank line to [Ok None], and
    otherwise parses the line as one complete document ([Ok (Some v)]).
    Garbage after the value is an error, same as {!of_string}. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to the first [k]; [None] for
    a missing key or a non-object. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] <> [Float 1.]). *)
