let pi = 4.0 *. atan 1.0

(* Lanczos approximation, g = 7, 9 coefficients.  Standard table; gives
   ~1e-13 relative accuracy for x > 0.5, extended below via the reflection
   formula. *)
let lanczos_g = 7.0

let lanczos_coeff =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    log (pi /. abs_float (sin (pi *. x))) -. lgamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coeff.(0) in
    for i = 1 to Array.length lanczos_coeff - 1 do
      acc := !acc +. (lanczos_coeff.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_factorial_cache_size = 1025

let log_factorial_cache =
  lazy
    (let tbl = Array.make log_factorial_cache_size 0.0 in
     for n = 2 to log_factorial_cache_size - 1 do
       tbl.(n) <- tbl.(n - 1) +. log (float_of_int n)
     done;
     tbl)

let log_factorial n =
  if n < 0 then invalid_arg "Maths.log_factorial: negative argument";
  if n < log_factorial_cache_size then (Lazy.force log_factorial_cache).(n)
  else lgamma (float_of_int n +. 1.0)

let log_choose n k =
  if k < 0 || k > n || n < 0 then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k =
  if k < 0 || k > n || n < 0 then 0.0
  else begin
    let k = min k (n - k) in
    if k <= 30 && n <= 300 then begin
      (* Exact product form for small coefficients. *)
      let acc = ref 1.0 in
      for i = 1 to k do
        acc := !acc *. float_of_int (n - k + i) /. float_of_int i
      done;
      !acc
    end
    else exp (log_choose n k)
  end

let binomial_pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then if k = 0 then 1.0 else 0.0
  else if p >= 1.0 then if k = n then 1.0 else 0.0
  else
    let logp =
      log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p))
    in
    exp logp

let binomial_sf ~n ~p k =
  if k <= 0 then 1.0
  else if k > n then 0.0
  else begin
    (* Sum the smaller tail directly; n is at most a few thousand in our
       models (cache blocks per structure), so direct summation is fine. *)
    let acc = ref 0.0 in
    for i = k to n do
      acc := !acc +. binomial_pmf ~n ~p i
    done;
    min 1.0 !acc
  end

let hypergeom_pmf ~total ~marked ~drawn k =
  if
    k < 0 || k > marked || k > drawn
    || drawn - k > total - marked
    || marked < 0 || drawn < 0 || total < 0 || marked > total || drawn > total
  then 0.0
  else
    exp
      (log_choose marked k
      +. log_choose (total - marked) (drawn - k)
      -. log_choose total drawn)

let hypergeom_mean ~total ~marked ~drawn =
  if total = 0 then 0.0
  else float_of_int drawn *. float_of_int marked /. float_of_int total

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let clampi ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let cdiv a b =
  if b <= 0 then invalid_arg "Maths.cdiv: non-positive divisor";
  if a < 0 then invalid_arg "Maths.cdiv: negative dividend";
  (a + b - 1) / b

let fceil a b =
  if b <= 0.0 then invalid_arg "Maths.fceil: non-positive divisor";
  ceil (a /. b)

let approx_equal ?(eps = 1e-9) a b =
  abs_float (a -. b) <= eps *. Float.max 1.0 (Float.max (abs_float a) (abs_float b))

let sum xs =
  (* Kahan summation: the profiling sweeps sum thousands of small DVF
     contributions and we want the totals reproducible bit-for-bit. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Maths.mean: empty array";
  sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Maths.geomean: empty array";
  let logs = Array.map (fun x ->
      if x <= 0.0 then invalid_arg "Maths.geomean: non-positive element";
      log x) xs
  in
  exp (sum logs /. float_of_int n)

let rel_error ~expected ~actual =
  if expected = 0.0 then abs_float actual
  else abs_float (actual -. expected) /. abs_float expected

let log1p = Float.log1p
let expm1 = Float.expm1

let wilson_interval ?(z = 1.959963984540054) ~successes ~trials () =
  if trials < 0 then invalid_arg "Maths.wilson_interval: negative trials";
  if successes < 0 || successes > max trials 0 then
    invalid_arg "Maths.wilson_interval: successes outside 0..trials";
  if z < 0.0 then invalid_arg "Maths.wilson_interval: negative z";
  if trials = 0 then (0.0, 1.0)
  else begin
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let center = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
  in
  (Float.max 0.0 (center -. half), Float.min 1.0 (center +. half))
  end

(* Average ranks (1-based), ties sharing the mean of the positions they
   occupy — the standard fractional ranking Spearman's rho requires. *)
let fractional_ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let ranks = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    (* positions !i .. !j hold equal values; mean 1-based rank *)
    let r = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      ranks.(order.(k)) <- r
    done;
    i := !j + 1
  done;
  ranks

let spearman_opt xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Maths.spearman: length mismatch";
  if n < 2 then None
  else begin
    let rx = fractional_ranks xs and ry = fractional_ranks ys in
    let mean_rank = float_of_int (n + 1) /. 2.0 in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mean_rank and dy = ry.(i) -. mean_rank in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then None
    else
      (* rounding in the product can push |rho| epsilon past 1 *)
      Some (clamp ~lo:(-1.0) ~hi:1.0 (!sxy /. sqrt (!sxx *. !syy)))
  end

let spearman xs ys = match spearman_opt xs ys with Some r -> r | None -> 0.0
