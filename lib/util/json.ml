type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emitter --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* "%.17g" can print "1e+20" or "42"; the latter must keep a marker so
       the value reparses as a float. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  let pad depth =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            emit (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            emit (depth + 1) item)
          members;
        pad depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parser: plain recursive descent over the input string --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> error "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then error "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> error (Printf.sprintf "bad \\u escape %S" hex)
                  in
                  pos := !pos + 4;
                  (* UTF-8 encode the code point (no surrogate pairing —
                     the telemetry emitter only escapes control bytes). *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char buf
                      (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                  end
              | c -> error (Printf.sprintf "bad escape \\%c" c));
              loop ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* Line-JSON: one toplevel value per line.  Strips an optional trailing
   CR (so piping through tools that emit CRLF still parses) and maps a
   blank line to [None] rather than a parse error, which lets protocol
   loops skip keep-alive newlines without special-casing. *)
let parse_line line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if String.for_all (fun c -> c = ' ' || c = '\t') line then Ok None
  else Result.map Option.some (of_string line)

let member k = function
  | Obj members -> List.assoc_opt k members
  | _ -> None

let equal (a : t) (b : t) = a = b
