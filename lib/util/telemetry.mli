(** Pipeline telemetry: span timers, counters, gauges, JSON emission.

    Every long-running layer of the DVF pipeline — trace recording, cache
    simulation, verification sweeps, injection campaigns — accepts an
    optional telemetry collector and reports into it: hierarchical
    wall-clock {e spans} (monotonic clock), monotone integer {e counters}
    and point-in-time float {e gauges}.  A collector serializes to a
    versioned JSON document ({!to_json}) consumed by [--metrics] and by
    [bench/main.exe]'s [BENCH_dvf.json] snapshot.

    {2 Zero cost when disabled}

    The default collector everywhere is {!null}: every recording function
    starts with a single [enabled] check and returns without allocating,
    and {!span} tail-calls its thunk directly.  Instrumented code
    therefore behaves identically — in output {e and} in allocation
    profile — whether or not metrics are requested.

    {2 Domains}

    An enabled collector is safe to share across domains: counter, gauge
    and span-total updates take an internal mutex, and the span {e stack}
    (which turns nested {!span} calls into [parent/child] paths) lives in
    domain-local storage, so concurrently running workers cannot corrupt
    each other's nesting.  Alternatively {!fork} per-domain collectors
    and {!merge} them after the join — counter and span addition
    commutes, so the merged result is independent of worker scheduling.

    Everything recorded is deterministic except the time fields: counters
    and span {e call counts} depend only on the work done, never on [-j]
    scheduling. *)

type t

val null : t
(** The disabled collector.  All recording functions are no-ops that
    allocate nothing; {!enabled} is [false].  Stateless, so one shared
    value serves every caller. *)

val create : ?clock:(unit -> int64) -> unit -> t
(** A fresh enabled collector.  [clock] returns nanoseconds and defaults
    to the process monotonic clock; tests substitute a fake clock to make
    durations deterministic. *)

val enabled : t -> bool

val now_ns : t -> int64
(** Current clock reading, [0L] when disabled.  For instrumentation that
    needs to time a region not expressible as a {!span} thunk. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()] and accumulates the duration (and a call
    count) under [name], nested beneath any span currently open {e in
    this domain}: [span t "a" (fun () -> span t "b" ...)] records paths
    ["a"] and ["a/b"].  Exceptions propagate; the duration up to the
    raise is still recorded.  When disabled, [f] is called directly. *)

val time_ns : t -> string -> int64 -> unit
(** [time_ns t path ns] accumulates an externally measured duration under
    the absolute [path] (no nesting).  Used where a span's start and end
    are observed in different places, e.g. queue-wait time in
    {!Parallel}. *)

val add : t -> ?n:int -> string -> unit
(** Increment counter [name] by [n] (default 1). *)

val set_gauge : t -> string -> float -> unit
(** Set gauge [name] (last write wins). *)

val counter_value : t -> string -> int
(** Current value, [0] for unknown counters (always [0] when disabled). *)

val gauge_value : t -> string -> float option
(** Current gauge value, [None] when the gauge was never set (always
    [None] when disabled).  Lets report writers (the bench snapshot)
    read back derived gauges without re-deriving them. *)

val span_ns : t -> string -> int64
(** Accumulated nanoseconds under a span path, [0L] when absent. *)

val span_calls : t -> string -> int

val gauge_rate : t -> name:string -> counter:string -> span:string -> unit
(** Derive a throughput gauge: [name] := counter value / span seconds.
    No-op when the span has accumulated no time (avoids infinities). *)

val fork : t -> t
(** A fresh collector sharing the parent's clock and enabled-ness:
    [fork null == null].  Give one to each worker domain, then {!merge}
    into the parent after the join. *)

val merge : into:t -> t -> unit
(** Add every counter and span (durations and call counts) of the source
    into [into]; gauges are copied (last write wins, sources applied in
    sorted-name order).  Merging disabled collectors is a no-op.
    Counter/span merging commutes. *)

val schema_version : int
(** Version stamped into every emitted document (currently 1). *)

val to_json : t -> Json.t
(** The versioned metrics document:
    {v
    { "schema": "dvf-telemetry", "schema_version": 1,
      "spans":    { "<path>": { "calls": int, "seconds": float }, ... },
      "counters": { "<name>": int, ... },
      "gauges":   { "<name>": float, ... } }
    v}
    Member names are sorted, so two collectors that recorded the same
    events differ only in the time-derived fields. *)

val validate : Json.t -> (unit, string) result
(** Check that a document has the shape {!to_json} emits (schema name and
    version, correctly typed sections).  Used by tests and CI smoke
    runs. *)

val write_file : t -> string -> unit
(** Serialize {!to_json} to a file (pretty-printed, trailing newline). *)
