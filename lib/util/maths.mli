(** Numerical substrate for the CGPMAC probability models.

    All combinatorial quantities are computed in log space via the Lanczos
    approximation of [lgamma], so the hypergeometric and binomial models in
    {!Access_patterns} remain stable for data structures with up to ~10^9
    elements.  Notation follows Table III of the paper. *)

val pi : float

val lgamma : float -> float
(** [lgamma x] is [log (Gamma x)] for [x > 0].  Accurate to ~1e-13 relative
    error (Lanczos g=7, n=9 coefficients). *)

val log_factorial : int -> float
(** [log_factorial n] is [log n!]; results for [n <= 1024] are memoized. *)

val log_choose : int -> int -> float
(** [log_choose n k] is [log (n choose k)].  [neg_infinity] when the
    coefficient is zero ([k < 0] or [k > n]). *)

val choose : int -> int -> float
(** [choose n k] as a float; [exp (log_choose n k)] for large arguments,
    exact products for small ones. *)

val binomial_pmf : n:int -> p:float -> int -> float
(** [binomial_pmf ~n ~p k] is P[Bin(n,p) = k]. *)

val binomial_sf : n:int -> p:float -> int -> float
(** [binomial_sf ~n ~p k] is P[Bin(n,p) >= k] (survival function, inclusive). *)

val hypergeom_pmf : total:int -> marked:int -> drawn:int -> int -> float
(** [hypergeom_pmf ~total:n ~marked:m ~drawn:d k] is the probability of
    drawing exactly [k] marked items when drawing [d] items without
    replacement from a population of [n] containing [m] marked items. *)

val hypergeom_mean : total:int -> marked:int -> drawn:int -> float
(** Closed-form mean [d * m / n] of the hypergeometric distribution. *)

val clamp : lo:float -> hi:float -> float -> float
val clampi : lo:int -> hi:int -> int -> int

val cdiv : int -> int -> int
(** [cdiv a b] is [ceil (a / b)] on non-negative integers. Raises
    [Invalid_argument] if [b <= 0] or [a < 0]. *)

val fceil : float -> float -> float
(** [fceil a b] is [ceil (a /. b)] as a float, for possibly fractional
    block counts. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** Relative comparison: |a-b| <= eps * max(1, |a|, |b|).  [eps] defaults to
    1e-9. *)

val sum : float array -> float
(** Kahan-compensated summation. *)

val mean : float array -> float
val geomean : float array -> float

val rel_error : expected:float -> actual:float -> float
(** |actual - expected| / |expected|, or |actual| when [expected = 0]. *)

val log1p : float -> float
val expm1 : float -> float

val wilson_interval :
  ?z:float -> successes:int -> trials:int -> unit -> float * float
(** Wilson score interval for a binomial proportion, clamped to [\[0;1\]].
    [z] defaults to 1.96 (the two-sided 95% normal quantile).  Unlike the
    Wald interval it stays informative at 0 or [trials] successes — the
    regime small fault-injection campaigns live in — and an empty
    campaign ([trials = 0]) returns the vacuous [(0, 1)] instead of
    raising: time-binned campaigns (`dvf windows`) routinely produce
    empty bins.  Raises [Invalid_argument] on negative [trials],
    successes outside [0..trials], or negative [z]. *)

val spearman_opt : float array -> float array -> float option
(** Spearman's rank correlation coefficient, with fractional (average)
    ranks for ties, clamped to [\[-1;1\]].  [None] when the coefficient
    is undefined: fewer than two points, or zero rank variance (all
    values of one input equal).  Raises [Invalid_argument] on length
    mismatch. *)

val spearman : float array -> float array -> float
(** {!spearman_opt}, with the undefined cases collapsed to [0.0] (no
    rank evidence either way) rather than [nan] — callers that must
    distinguish "no correlation" from "undefined" use the [_opt]
    variant. *)
