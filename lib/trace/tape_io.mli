(** Persistent on-disk tape files.

    A saved tape is the whole capture artifact: provenance (workload,
    size label, seed), the simulated address-space layout
    ({!Region.export}), and the raw 16 B/event columnar chunks, behind a
    magic/versioned header with a payload checksum.  {!save} then
    {!load} round-trips bit-identically — the loaded tape replays (fused
    and sharded, at any job count) to exactly the statistics of the
    in-memory original — and the load path adopts whole chunks via
    {!Tape.append_raw_chunk} without per-event re-validation: the
    checksum vouches for the words.

    All multi-byte fields are little-endian and fixed-width; the format
    assumes a 64-bit platform (as does the in-memory layout).  The
    layout is documented at the top of [tape_io.ml] and in DESIGN.md.
    Any layout change bumps {!format_version}; readers reject other
    versions with {!Version_mismatch} rather than guessing ([Tape_store]
    turns that into eviction and recapture). *)

val format_version : int
(** Version written by {!save} and required by {!load}. *)

type meta = {
  workload : string;  (** registry name of the traced workload *)
  size : string;  (** instance size label, e.g. ["n=64 (verification)"] *)
  seed : int;  (** capture seed (0 when the workload takes none) *)
}

type error =
  | Bad_magic  (** not a tape file at all *)
  | Version_mismatch of int  (** a tape, but written by another version *)
  | Corrupt of string  (** truncated, checksum mismatch, bad field... *)
  | Io_error of string  (** could not open/read the file *)

val error_to_string : error -> string

val save :
  path:string -> meta:meta -> registry:Region.t -> tape:Tape.t -> unit
(** Write [tape] (with its provenance and registry) to [path]
    atomically: the bytes go to [path ^ ".tmp"] which is renamed into
    place, so a crash mid-save never leaves a half-written tape at
    [path].  Raises [Sys_error] on I/O failure. *)

val load : string -> (meta * Region.t * Tape.t, error) result
(** Read a tape file back.  Verifies magic, version, structural
    invariants (chunk lengths, region layout) and the payload checksum;
    any failure is a structured [Error], never a partial tape. *)

val read_meta : string -> (meta, error) result
(** Provenance only — reads just the fixed header, not the region table
    or chunks, so it is cheap enough to call on every store entry. *)

val hash_string : string -> int
(** Deterministic FNV-1a-shaped 63-bit hash (native-int arithmetic,
    stable across runs and processes on 64-bit platforms).  Used by
    {!Tape_store} for content-addressed file names; exposed so tests
    and external tooling can predict store paths. *)
