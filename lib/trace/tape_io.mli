(** Persistent on-disk tape files.

    A saved tape is the whole capture artifact: provenance (workload,
    size label, seed), the simulated address-space layout
    ({!Region.export}), the per-chunk partition index
    ({!Tape.chunk_infos}), and the raw 16 B/event columnar chunks,
    behind a magic/versioned header with payload and index checksums.
    {!save} then {!load} round-trips bit-identically — the loaded tape
    replays (fused and sharded, at any job count) to exactly the
    statistics of the in-memory original.

    {!save} writes format version 2: the chunk table up front carries
    each chunk's length and partition index, and the payload is a
    contiguous, 8-byte-aligned block of addr/meta words.  {!load} maps
    that block with [Unix.map_file] and adopts chunks zero-copy via
    {!Tape.append_deferred_chunk}: the payload checksum is verified over
    the mapping before any chunk is adopted, and a chunk's [int] arrays
    are only decoded when a replay first touches it — so sharded walks
    that skip a chunk never pay for decoding it.  On a big-endian host
    or an unmappable file the same layout is streamed eagerly instead.
    Version 1 files (no chunk table, per-chunk length prefixes) still
    load through the original streaming path, with the partition index
    recomputed by {!Tape.append_raw_chunk}.

    All multi-byte fields are little-endian and fixed-width; the format
    assumes a 64-bit platform (as does the in-memory layout).  The
    layout is documented at the top of [tape_io.ml] and in DESIGN.md.
    A layout change bumps {!format_version}; readers accept versions
    [oldest_readable_version ..  format_version] and reject anything
    else with {!Version_mismatch} rather than guessing ([Tape_store]
    keys entries on {!format_version}, so a bump retires stale entries
    by plain cache miss and {!Tape_store.gc} reaps the files). *)

val format_version : int
(** Version written by {!save}. *)

val oldest_readable_version : int
(** Oldest version {!load} still reads (via its legacy streaming
    path). *)

type meta = {
  workload : string;  (** registry name of the traced workload *)
  size : string;  (** instance size label, e.g. ["n=64 (verification)"] *)
  seed : int;  (** capture seed (0 when the workload takes none) *)
}

type error =
  | Bad_magic  (** not a tape file at all *)
  | Version_mismatch of int  (** a tape, but written by another version *)
  | Corrupt of string  (** truncated, checksum mismatch, bad field... *)
  | Io_error of string  (** could not open/read the file *)

val error_to_string : error -> string

val save :
  path:string -> meta:meta -> registry:Region.t -> tape:Tape.t -> unit
(** Write [tape] (with its provenance, registry and partition index) to
    [path] atomically: the bytes go to [path ^ ".tmp"] which is renamed
    into place, so a crash mid-save never leaves a half-written tape at
    [path].  Materializes any deferred chunks.  Raises [Sys_error] on
    I/O failure. *)

val save_v1 :
  path:string -> meta:meta -> registry:Region.t -> tape:Tape.t -> unit
(** Write the legacy version-1 layout (no chunk table, streamed loads
    only).  For compatibility tests and tooling that must interoperate
    with v1-era readers; new code wants {!save}. *)

val load :
  ?telemetry:Dvf_util.Telemetry.t ->
  ?eager:bool ->
  string ->
  (meta * Region.t * Tape.t, error) result
(** Read a tape file back.  Verifies magic, version, structural
    invariants (chunk table, region layout) and both checksums; any
    failure is a structured [Error], never a partial tape.  For a v2
    file the chunks arrive deferred over a shared mapping (the
    ["tape/mmap_bytes"] counter on [telemetry] records the mapped
    payload size); [~eager:true] forces every chunk immediately —
    the benchmark baseline, and the v1/fallback behaviour. *)

val read_meta : string -> (meta, error) result
(** Provenance only — reads just the fixed header, not the region table
    or chunks, so it is cheap enough to call on every store entry. *)

val read_version : string -> (int, error) result
(** The format version a file declares, magic checked but {e without}
    the readable-range check — so {!Tape_store.list} can label entries
    from any other build as stale rather than corrupt. *)

val hash_string : string -> int
(** Deterministic FNV-1a-shaped 63-bit hash (native-int arithmetic,
    stable across runs and processes on 64-bit platforms).  Used by
    {!Tape_store} for content-addressed file names; exposed so tests
    and external tooling can predict store paths. *)
