type region = {
  id : int;
  name : string;
  base : int;
  bytes : int;
  elem_size : int;
}

type t = {
  page : int;
  stagger : int;
  mutable next_base : int;
  mutable next_id : int;
  mutable ordered : region list; (* reversed *)
  by_name : (string, region) Hashtbl.t;
}

let create ?(page = 4096) ?(stagger = 832) () =
  if page <= 0 then invalid_arg "Region.create: non-positive page";
  if stagger < 0 then invalid_arg "Region.create: negative stagger";
  if stagger mod 64 <> 0 then
    invalid_arg "Region.create: stagger must be a multiple of 64 (line-aligned)";
  {
    page;
    stagger;
    (* Start away from address 0 so a zero address is always a bug. *)
    next_base = page;
    next_id = 1;
    ordered = [];
    by_name = Hashtbl.create 16;
  }

let round_up n granule = (n + granule - 1) / granule * granule

let register t ~name ~elements ~elem_size =
  if elements < 0 then invalid_arg "Region.register: negative element count";
  if elem_size <= 0 then invalid_arg "Region.register: non-positive element size";
  if Hashtbl.mem t.by_name name then
    invalid_arg ("Region.register: duplicate region name " ^ name);
  let bytes = elements * elem_size in
  let base = t.next_base + (t.next_id * t.stagger) in
  let r = { id = t.next_id; name; base; bytes; elem_size } in
  t.next_id <- t.next_id + 1;
  (* Pad with one extra page so distinct regions never share a line, on
     top of the set-decorrelating stagger. *)
  t.next_base <-
    round_up (base + max bytes 1) t.page + t.page;
  t.ordered <- r :: t.ordered;
  Hashtbl.add t.by_name name r;
  r

let lookup t name = Hashtbl.find t.by_name name

let find_id t id = List.find_opt (fun r -> r.id = id) (List.rev t.ordered)

let regions t = List.rev t.ordered

let elem_addr r i =
  if i < 0 || (i + 1) * r.elem_size > r.bytes then
    invalid_arg (Printf.sprintf "Region.elem_addr: index %d out of %s" i r.name);
  r.base + (i * r.elem_size)

let owner_name t id =
  match find_id t id with
  | Some r -> r.name
  | None -> Printf.sprintf "<anon:%d>" id

(* Persistence hooks for [Tape_io]: a registry is fully determined by its
   layout parameters plus the ordered region list, so exporting those and
   replaying them through [restore] reproduces an indistinguishable
   registry — including [next_base]/[next_id], so further registrations
   land exactly where they would have on the original. *)

let export t =
  ( t.page,
    t.stagger,
    List.rev_map
      (fun r -> (r.id, r.name, r.base, r.bytes, r.elem_size))
      t.ordered )

let restore ~page ~stagger entries =
  let t = create ~page ~stagger () in
  List.iter
    (fun (id, name, base, bytes, elem_size) ->
      if id <> t.next_id then
        invalid_arg
          (Printf.sprintf "Region.restore: region %s has id %d, expected %d"
             name id t.next_id);
      if elem_size <= 0 then
        invalid_arg ("Region.restore: non-positive element size for " ^ name);
      if bytes < 0 then
        invalid_arg ("Region.restore: negative extent for " ^ name);
      if base <> t.next_base + (t.next_id * t.stagger) then
        invalid_arg
          (Printf.sprintf
             "Region.restore: region %s base %d does not match layout \
              (expected %d)"
             name base
             (t.next_base + (t.next_id * t.stagger)));
      if Hashtbl.mem t.by_name name then
        invalid_arg ("Region.restore: duplicate region name " ^ name);
      let r = { id; name; base; bytes; elem_size } in
      t.next_id <- t.next_id + 1;
      t.next_base <- round_up (base + max bytes 1) t.page + t.page;
      t.ordered <- r :: t.ordered;
      Hashtbl.add t.by_name name r)
    entries;
  t
