type sink = Event.t -> unit
type batch_sink = Event.t array -> int -> unit

(* Sinks live in growable arrays (doubling, amortized O(1) append) kept in
   registration order — the old [sinks <- sinks @ [sink]] was O(n^2) across
   many registrations and the list traversal sat on the hot emit path.

   Registration returns a handle; [unsubscribe] swaps the slot for an inert
   closure in O(1), so a telemetry probe can attach around one phase and
   detach without perturbing the other sinks' order or indices.

   A recorder may also buffer: events accumulate in a fixed chunk and are
   fanned out in bulk when it fills (or on [flush]).  Per-event sinks still
   observe every event in emission order; they just observe them a chunk at
   a time, with one closure dispatch per sink per chunk instead of one per
   event.  Unbuffered recorders (the default) dispatch immediately, exactly
   as before. *)

type handle = { kind : [ `Sink | `Batch ]; index : int }

type t = {
  mutable sinks : sink array;
  mutable nsinks : int;
  mutable batch_sinks : batch_sink array;
  mutable nbatch : int;
  mutable count : int;
  mutable batches : int; (* dispatch calls that delivered >= 1 event *)
  buffer : Event.t array; (* [||] when unbuffered *)
  mutable fill : int;
  scratch : Event.t array; (* 1-slot carrier for unbuffered -> batch sink *)
  inert : bool; (* the null recorder: drops events, rejects sinks *)
}

let placeholder = Event.read ~owner:0 ~addr:0 ~size:1

let default_buffer_capacity = 4096

let make ~buffer_capacity ~inert =
  if buffer_capacity < 0 then
    invalid_arg
      (Printf.sprintf "Recorder.create: negative buffer capacity (%d)"
         buffer_capacity);
  {
    sinks = [||];
    nsinks = 0;
    batch_sinks = [||];
    nbatch = 0;
    count = 0;
    batches = 0;
    buffer =
      (if buffer_capacity = 0 then [||]
       else Array.make buffer_capacity placeholder);
    fill = 0;
    scratch = Array.make 1 placeholder;
    inert;
  }

let create ?(buffer_capacity = 0) () = make ~buffer_capacity ~inert:false

let buffered ?(buffer_capacity = default_buffer_capacity) () =
  make ~buffer_capacity ~inert:false

let null () = make ~buffer_capacity:0 ~inert:true

let grow arr n filler =
  if n < Array.length arr then arr
  else begin
    let arr' = Array.make (max 4 (2 * n)) filler in
    Array.blit arr 0 arr' 0 n;
    arr'
  end

let noop_sink (_ : Event.t) = ()
let noop_batch_sink (_ : Event.t array) (_ : int) = ()

let add_sink t sink =
  if t.inert then
    invalid_arg "Recorder.add_sink: the null recorder accepts no sinks";
  t.sinks <- grow t.sinks t.nsinks sink;
  t.sinks.(t.nsinks) <- sink;
  t.nsinks <- t.nsinks + 1;
  { kind = `Sink; index = t.nsinks - 1 }

let add_batch_sink t sink =
  if t.inert then
    invalid_arg "Recorder.add_batch_sink: the null recorder accepts no sinks";
  t.batch_sinks <- grow t.batch_sinks t.nbatch sink;
  t.batch_sinks.(t.nbatch) <- sink;
  t.nbatch <- t.nbatch + 1;
  { kind = `Batch; index = t.nbatch - 1 }

(* Unsubscription keeps the slot (indices in outstanding handles stay
   valid, dispatch order is stable) and replaces the closure with an inert
   one.  Idempotent; delivery stops with the next dispatch, so a buffering
   recorder's still-pending chunk is not delivered to the removed sink —
   [flush] before unsubscribing to observe every emitted event. *)
let unsubscribe t h =
  match h.kind with
  | `Sink ->
      if h.index < 0 || h.index >= t.nsinks then
        invalid_arg "Recorder.unsubscribe: stale handle";
      t.sinks.(h.index) <- noop_sink
  | `Batch ->
      if h.index < 0 || h.index >= t.nbatch then
        invalid_arg "Recorder.unsubscribe: stale handle";
      t.batch_sinks.(h.index) <- noop_batch_sink

let cache_sink cache (e : Event.t) =
  Cachesim.Cache.access cache ~owner:e.owner ~write:e.write ~addr:e.addr
    ~size:e.size

let cache_batch_sink cache : batch_sink =
 fun events n ->
  for i = 0 to n - 1 do
    let e = events.(i) in
    Cachesim.Cache.access cache ~owner:e.owner ~write:e.write ~addr:e.addr
      ~size:e.size
  done

let buffer_sink () =
  let buf = ref [] in
  let sink e = buf := e :: !buf in
  (sink, fun () -> List.rev !buf)

let counting_sink () =
  let n = ref 0 in
  let sink _ = incr n in
  (sink, fun () -> !n)

(* Fan a block of events out to every sink.  Per-event sinks run first, in
   registration order, then batch sinks in registration order. *)
let dispatch t events n =
  if n > 0 then t.batches <- t.batches + 1;
  for s = 0 to t.nsinks - 1 do
    let sink = t.sinks.(s) in
    for i = 0 to n - 1 do
      sink events.(i)
    done
  done;
  for s = 0 to t.nbatch - 1 do
    t.batch_sinks.(s) events n
  done

let flush t =
  if t.fill > 0 then begin
    let n = t.fill in
    (* Reset before dispatch so a sink that re-enters the recorder (e.g. a
       tracing sink that emits) never re-delivers the same chunk. *)
    t.fill <- 0;
    dispatch t t.buffer n
  end

let emit t e =
  if not t.inert then begin
    t.count <- t.count + 1;
    let cap = Array.length t.buffer in
    if cap = 0 then begin
      t.scratch.(0) <- e;
      dispatch t t.scratch 1
    end
    else begin
      t.buffer.(t.fill) <- e;
      t.fill <- t.fill + 1;
      if t.fill = cap then flush t
    end
  end

let emit_batch t events n =
  if n < 0 || n > Array.length events then
    invalid_arg
      (Printf.sprintf "Recorder.emit_batch: bad length %d (array has %d)" n
         (Array.length events));
  if (not t.inert) && n > 0 then begin
    t.count <- t.count + n;
    (* A batch bypasses the chunk buffer; flush first so sinks still see
       events in emission order. *)
    flush t;
    dispatch t events n
  end

let read t ~owner ~addr ~size = emit t (Event.read ~owner ~addr ~size)
let write t ~owner ~addr ~size = emit t (Event.write ~owner ~addr ~size)

let events_emitted t = t.count
let batches_dispatched t = t.batches
let pending t = t.fill
