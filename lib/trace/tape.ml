(* A captured trace lives in chunks of two parallel unboxed [int] arrays:
   byte address, and the packed metadata word defined by
   [Cachesim.Cache.pack_access].  Chunks are fixed-size (default 65536
   events = two 512 KiB arrays, far past the minor-heap threshold, so
   capture never churns the minor collector) and are only ever appended
   to, which keeps [append] at two stores and an increment. *)

type chunk = {
  addrs : int array;
  metas : int array;
  mutable len : int;
}

type t = {
  chunk_capacity : int;
  mutable filled : chunk list; (* full chunks, most recent first *)
  mutable head : chunk; (* current partially filled chunk *)
  mutable total : int;
}

let default_chunk_events = 65536
let bytes_per_event = 2 * (Sys.word_size / 8)

let fresh_chunk capacity =
  { addrs = Array.make capacity 0; metas = Array.make capacity 0; len = 0 }

let create ?(chunk_events = default_chunk_events) () =
  if chunk_events <= 0 then
    invalid_arg
      (Printf.sprintf "Tape.create: chunk_events must be positive (got %d)"
         chunk_events);
  {
    chunk_capacity = chunk_events;
    filled = [];
    head = fresh_chunk chunk_events;
    total = 0;
  }

let length t = t.total
let chunk_events t = t.chunk_capacity

let chunk_count t =
  List.length t.filled + if t.head.len > 0 then 1 else 0

let allocated_bytes t =
  (List.length t.filled + 1) * t.chunk_capacity * bytes_per_event

let append t (e : Event.t) =
  if e.addr < 0 then invalid_arg "Tape.append: negative address";
  let c = t.head in
  let c =
    if c.len = t.chunk_capacity then begin
      t.filled <- c :: t.filled;
      let fresh = fresh_chunk t.chunk_capacity in
      t.head <- fresh;
      fresh
    end
    else c
  in
  c.addrs.(c.len) <- e.addr;
  c.metas.(c.len) <-
    Cachesim.Cache.pack_access ~owner:e.owner ~write:e.write ~size:e.size;
  c.len <- c.len + 1;
  t.total <- t.total + 1

let append_batch t events n =
  for i = 0 to n - 1 do
    append t events.(i)
  done

let sink t : Recorder.sink = fun e -> append t e
let batch_sink t : Recorder.batch_sink = fun events n -> append_batch t events n

(* Chunks in capture order: [filled] is most-recent-first, then the
   partial head (skipped when empty, so replay never dispatches an empty
   batch). *)
let iter_chunks t f =
  List.iter f (List.rev t.filled);
  if t.head.len > 0 then f t.head

let replay t cache =
  iter_chunks t (fun c ->
      Cachesim.Cache.access_batch cache ~addrs:c.addrs ~metas:c.metas ~pos:0
        ~len:c.len)

let replay_fused t caches =
  iter_chunks t (fun c ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch cache ~addrs:c.addrs ~metas:c.metas
            ~pos:0 ~len:c.len)
        caches)

let iter t f =
  iter_chunks t (fun c ->
      for i = 0 to c.len - 1 do
        let owner, write, size = Cachesim.Cache.unpack_access c.metas.(i) in
        f { Event.owner; write; addr = c.addrs.(i); size }
      done)

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
