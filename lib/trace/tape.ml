(* A captured trace lives in chunks of two parallel unboxed [int] arrays:
   byte address, and the packed metadata word defined by
   [Cachesim.Cache.pack_access].  Chunks are fixed-size (default 65536
   events = two 512 KiB arrays, far past the minor-heap threshold, so
   capture never churns the minor collector) and are only ever appended
   to, which keeps [append] at two stores and an increment. *)

type chunk = {
  addrs : int array;
  metas : int array;
  mutable len : int;
}

type t = {
  chunk_capacity : int;
  mutable filled : chunk list; (* full chunks, most recent first *)
  mutable filled_count : int; (* List.length filled, tracked incrementally *)
  mutable head : chunk; (* current partially filled chunk *)
  mutable total : int;
}

let default_chunk_events = 65536
let bytes_per_event = 2 * (Sys.word_size / 8)

let fresh_chunk capacity =
  { addrs = Array.make capacity 0; metas = Array.make capacity 0; len = 0 }

let create ?(chunk_events = default_chunk_events) () =
  if chunk_events <= 0 then
    invalid_arg
      (Printf.sprintf "Tape.create: chunk_events must be positive (got %d)"
         chunk_events);
  {
    chunk_capacity = chunk_events;
    filled = [];
    filled_count = 0;
    head = fresh_chunk chunk_events;
    total = 0;
  }

let length t = t.total
let chunk_events t = t.chunk_capacity

(* [filled_count] is maintained on every chunk retirement; telemetry
   gauges sample these per chunk, so recomputing [List.length t.filled]
   here used to make capture quadratic in tape length. *)
let chunk_count t = t.filled_count + if t.head.len > 0 then 1 else 0
let allocated_bytes t = (t.filled_count + 1) * t.chunk_capacity * bytes_per_event

let retire_head t =
  t.filled <- t.head :: t.filled;
  t.filled_count <- t.filled_count + 1;
  t.head <- fresh_chunk t.chunk_capacity

let append t (e : Event.t) =
  if e.addr < 0 then invalid_arg "Tape.append: negative address";
  if t.head.len = t.chunk_capacity then retire_head t;
  let c = t.head in
  c.addrs.(c.len) <- e.addr;
  c.metas.(c.len) <-
    Cachesim.Cache.pack_access ~owner:e.owner ~write:e.write ~size:e.size;
  c.len <- c.len + 1;
  t.total <- t.total + 1

(* Packed layout mirrored from [Cachesim.Cache.pack_access]; the shift is
   derived from [Cache.max_size] so the two cannot drift, and the
   equivalence is asserted once at module initialization. *)
let meta_owner_shift =
  let rec bits n = if n = 0 then 0 else 1 + bits (n lsr 1) in
  bits Cachesim.Cache.max_size + 1

let () =
  assert (
    Cachesim.Cache.pack_access ~owner:3 ~write:true ~size:5
    = (3 lsl meta_owner_shift) lor (5 lsl 1) lor 1)

(* Bulk capture: validate the whole batch up front (a failed batch
   leaves the tape untouched), then store runs directly into the chunk
   arrays, splitting only at chunk boundaries — no per-event boundary
   re-check and no per-event validation inside [pack_access].  Capture
   is the pipeline bottleneck, so this path is what [batch_sink] rides. *)
let append_batch t events n =
  if n < 0 || n > Array.length events then
    invalid_arg
      (Printf.sprintf "Tape.append_batch: bad count %d (have %d events)" n
         (Array.length events));
  for i = 0 to n - 1 do
    let e : Event.t = events.(i) in
    if e.addr < 0 then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: negative address at index %d" i);
    if e.size <= 0 || e.size > Cachesim.Cache.max_size then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: size %d out of range at index %d"
           e.size i);
    if e.owner < 0 || e.owner > Cachesim.Cache.max_owner then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: owner %d out of range at index %d"
           e.owner i)
  done;
  let i = ref 0 in
  while !i < n do
    if t.head.len = t.chunk_capacity then retire_head t;
    let c = t.head in
    let run = min (n - !i) (t.chunk_capacity - c.len) in
    for k = 0 to run - 1 do
      let e : Event.t = Array.unsafe_get events (!i + k) in
      Array.unsafe_set c.addrs (c.len + k) e.addr;
      Array.unsafe_set c.metas (c.len + k)
        ((e.owner lsl meta_owner_shift)
        lor (e.size lsl 1)
        lor (if e.write then 1 else 0))
    done;
    c.len <- c.len + run;
    i := !i + run
  done;
  t.total <- t.total + n

let sink t : Recorder.sink = fun e -> append t e
let batch_sink t : Recorder.batch_sink = fun events n -> append_batch t events n

(* Chunks in capture order: [filled] is most-recent-first, then the
   partial head (skipped when empty, so replay never dispatches an empty
   batch).  Every walk over the tape — replay in all its variants, raw
   iteration, decoding, and [Tape_io.save] — goes through this one fold,
   handing out the chunk arrays themselves (no copying, no decoding). *)
let fold_chunks t ~init ~f =
  let acc =
    List.fold_left
      (fun acc c -> f acc ~addrs:c.addrs ~metas:c.metas ~len:c.len)
      init (List.rev t.filled)
  in
  if t.head.len > 0 then
    f acc ~addrs:t.head.addrs ~metas:t.head.metas ~len:t.head.len
  else acc

let iter_raw t f =
  fold_chunks t ~init:() ~f:(fun () ~addrs ~metas ~len -> f ~addrs ~metas ~len)

(* Adopt a whole pre-built chunk (the [Tape_io.load] path: words straight
   off disk, no per-event re-validation — the file's checksum already
   vouches for them). *)
let append_raw_chunk t ~addrs ~metas ~len =
  if Array.length addrs <> t.chunk_capacity
     || Array.length metas <> t.chunk_capacity then
    invalid_arg
      (Printf.sprintf
         "Tape.append_raw_chunk: arrays must hold chunk_events=%d words \
          (got %d/%d)"
         t.chunk_capacity (Array.length addrs) (Array.length metas));
  if len < 0 || len > t.chunk_capacity then
    invalid_arg
      (Printf.sprintf "Tape.append_raw_chunk: bad length %d (capacity %d)"
         len t.chunk_capacity);
  if t.head.len > 0 then
    invalid_arg
      "Tape.append_raw_chunk: tape ends in a partial chunk; raw chunks can \
       only follow full ones";
  if len = t.chunk_capacity then begin
    t.filled <- { addrs; metas; len } :: t.filled;
    t.filled_count <- t.filled_count + 1
  end
  else if len > 0 then t.head <- { addrs; metas; len };
  t.total <- t.total + len

let replay t cache =
  iter_raw t (fun ~addrs ~metas ~len ->
      Cachesim.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len)

let replay_fused t caches =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len)
        caches)

(* Set-sharded fused walk: one pass over the tape, each cache touched
   only on [shard]'s lines.  Every cache clamps the shard count to its
   own set count ([Cache.access_batch_sharded] skips shards beyond the
   clamp), so heterogeneous sweep geometries neither drop nor duplicate
   work.  Running all shards of [0 .. shards-1] — serially or on
   separate domains over per-shard cache replicas — reproduces
   [replay_fused]'s statistics bit for bit. *)
let replay_fused_sharded t caches ~shards ~shard =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len
            ~shards ~shard)
        caches)

let replay_hierarchies t hierarchies =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun h ->
          Cachesim.Hierarchy.access_batch h ~addrs ~metas ~pos:0 ~len)
        hierarchies)

let replay_hierarchies_sharded t hierarchies ~shards ~shard =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun h ->
          Cachesim.Hierarchy.access_batch_sharded h ~addrs ~metas ~pos:0 ~len
            ~shards ~shard)
        hierarchies)

let iter t f =
  iter_raw t (fun ~addrs ~metas ~len ->
      for i = 0 to len - 1 do
        let owner, write, size = Cachesim.Cache.unpack_access metas.(i) in
        f { Event.owner; write; addr = addrs.(i); size }
      done)

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
