(* A captured trace lives in chunks of two parallel unboxed [int] arrays:
   byte address, and the packed metadata word defined by
   [Cachesim.Cache.pack_access].  Chunks are fixed-size (default 65536
   events = two 512 KiB arrays, far past the minor-heap threshold, so
   capture never churns the minor collector) and are only ever appended
   to, which keeps [append] at two stores and an increment.

   Each chunk additionally carries a partition index, maintained at
   capture time: a coverage bitmap over [partition_buckets] buckets of
   the event's granule-line number ([addr lsr granule_shift], 8-byte
   granules) plus the min/max granule line the chunk touches.  The
   set-sharded walks consult it to skip whole chunks that cannot contain
   any line of the requested shard — see [bucket_mask] for why the
   bitmap can answer that question for any cache whose line size is a
   multiple of the granule.

   Chunks may also be deferred: a loaded tape ([Tape_io] v2) adopts
   chunks as (length, index, decode closure) triples over an mmap'd
   payload and only materializes the [int] arrays when a walk actually
   needs them — a chunk skipped by every shard is never decoded at all.
   Materialization is idempotent and lock-free ([Atomic]
   compare-and-set), so concurrent shard domains may race to decode the
   same chunk and simply agree on one winner. *)

type index = {
  coverage : int array; (* [coverage_words] words of [coverage_bits] bits *)
  mutable min_line : int; (* granule lines; [max_int] while empty *)
  mutable max_line : int; (* -1 while empty *)
}

type chunk = {
  addrs : int array;
  metas : int array;
  mutable len : int;
  index : index;
}

type deferred = {
  d_len : int;
  d_index : index;
  d_cell : chunk option Atomic.t;
  d_decode : unit -> int array * int array;
}

type entry = Ready of chunk | Deferred of deferred

type t = {
  chunk_capacity : int;
  mutable filled : entry list; (* full chunks, most recent first *)
  mutable filled_count : int; (* List.length filled, tracked incrementally *)
  mutable head : chunk; (* current partially filled chunk *)
  mutable total : int;
}

let default_chunk_events = 65536
let bytes_per_event = 2 * (Sys.word_size / 8)

(* {2 Partition index} *)

let granule_shift = 3 (* 8-byte granules: no config has a smaller line *)
let coverage_words = 8
let coverage_bits = 32
let partition_buckets = coverage_words * coverage_bits (* 256 *)
let bucket_bits = 8 (* log2 partition_buckets *)
let full_word = (1 lsl coverage_bits) - 1

let fresh_index () =
  { coverage = Array.make coverage_words 0; min_line = max_int; max_line = -1 }

(* Record one event's granule footprint.  [size] is in bytes; events
   spanning [>= partition_buckets] granules (>= 2 KiB) saturate the
   bitmap rather than looping. *)
let index_note idx ~addr ~size =
  let first = addr lsr granule_shift in
  let last = (addr + size - 1) lsr granule_shift in
  if first < idx.min_line then idx.min_line <- first;
  if last > idx.max_line then idx.max_line <- last;
  if last - first >= partition_buckets then
    Array.fill idx.coverage 0 coverage_words full_word
  else
    for g = first to last do
      let b = g land (partition_buckets - 1) in
      Array.unsafe_set idx.coverage (b lsr 5)
        (Array.unsafe_get idx.coverage (b lsr 5) lor (1 lsl (b land 31)))
    done

let fresh_chunk capacity =
  {
    addrs = Array.make capacity 0;
    metas = Array.make capacity 0;
    len = 0;
    index = fresh_index ();
  }

let create ?(chunk_events = default_chunk_events) () =
  if chunk_events <= 0 then
    invalid_arg
      (Printf.sprintf "Tape.create: chunk_events must be positive (got %d)"
         chunk_events);
  {
    chunk_capacity = chunk_events;
    filled = [];
    filled_count = 0;
    head = fresh_chunk chunk_events;
    total = 0;
  }

let length t = t.total
let chunk_events t = t.chunk_capacity

(* [filled_count] is maintained on every chunk retirement; telemetry
   gauges sample these per chunk, so recomputing [List.length t.filled]
   here used to make capture quadratic in tape length. *)
let chunk_count t = t.filled_count + if t.head.len > 0 then 1 else 0
let allocated_bytes t = (t.filled_count + 1) * t.chunk_capacity * bytes_per_event

let retire_head t =
  t.filled <- Ready t.head :: t.filled;
  t.filled_count <- t.filled_count + 1;
  t.head <- fresh_chunk t.chunk_capacity

let append t (e : Event.t) =
  if e.addr < 0 then invalid_arg "Tape.append: negative address";
  if t.head.len = t.chunk_capacity then retire_head t;
  let c = t.head in
  c.addrs.(c.len) <- e.addr;
  c.metas.(c.len) <-
    Cachesim.Cache.pack_access ~owner:e.owner ~write:e.write ~size:e.size;
  c.len <- c.len + 1;
  index_note c.index ~addr:e.addr ~size:e.size;
  t.total <- t.total + 1

(* Packed layout mirrored from [Cachesim.Cache.pack_access]; the shift is
   derived from [Cache.max_size] so the two cannot drift, and the
   equivalence is asserted once at module initialization. *)
let meta_owner_shift =
  let rec bits n = if n = 0 then 0 else 1 + bits (n lsr 1) in
  bits Cachesim.Cache.max_size + 1

let () =
  assert (
    Cachesim.Cache.pack_access ~owner:3 ~write:true ~size:5
    = (3 lsl meta_owner_shift) lor (5 lsl 1) lor 1)

(* Bulk capture: validate the whole batch up front (a failed batch
   leaves the tape untouched), then store runs directly into the chunk
   arrays, splitting only at chunk boundaries — no per-event boundary
   re-check and no per-event validation inside [pack_access].  Capture
   is the pipeline bottleneck, so this path is what [batch_sink] rides. *)
let append_batch t events n =
  if n < 0 || n > Array.length events then
    invalid_arg
      (Printf.sprintf "Tape.append_batch: bad count %d (have %d events)" n
         (Array.length events));
  for i = 0 to n - 1 do
    let e : Event.t = events.(i) in
    if e.addr < 0 then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: negative address at index %d" i);
    if e.size <= 0 || e.size > Cachesim.Cache.max_size then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: size %d out of range at index %d"
           e.size i);
    if e.owner < 0 || e.owner > Cachesim.Cache.max_owner then
      invalid_arg
        (Printf.sprintf "Tape.append_batch: owner %d out of range at index %d"
           e.owner i)
  done;
  let i = ref 0 in
  while !i < n do
    if t.head.len = t.chunk_capacity then retire_head t;
    let c = t.head in
    let run = min (n - !i) (t.chunk_capacity - c.len) in
    for k = 0 to run - 1 do
      let e : Event.t = Array.unsafe_get events (!i + k) in
      Array.unsafe_set c.addrs (c.len + k) e.addr;
      Array.unsafe_set c.metas (c.len + k)
        ((e.owner lsl meta_owner_shift)
        lor (e.size lsl 1)
        lor (if e.write then 1 else 0));
      index_note c.index ~addr:e.addr ~size:e.size
    done;
    c.len <- c.len + run;
    i := !i + run
  done;
  t.total <- t.total + n

let sink t : Recorder.sink = fun e -> append t e
let batch_sink t : Recorder.batch_sink = fun events n -> append_batch t events n

(* {2 Entries: materialization} *)

let entry_len = function Ready c -> c.len | Deferred d -> d.d_len
let entry_index = function Ready c -> c.index | Deferred d -> d.d_index

(* Decode a deferred chunk; on a CAS race the loser adopts the winner's
   arrays (both decoded the same mapped words, so either result is
   correct, and dropping one keeps every domain reading one copy). *)
let force t = function
  | Ready c -> c
  | Deferred d -> (
      match Atomic.get d.d_cell with
      | Some c -> c
      | None ->
          let addrs, metas = d.d_decode () in
          if
            Array.length addrs <> t.chunk_capacity
            || Array.length metas <> t.chunk_capacity
          then
            invalid_arg
              (Printf.sprintf
                 "Tape: deferred chunk decoder returned %d/%d-word arrays \
                  (chunk capacity %d)"
                 (Array.length addrs) (Array.length metas) t.chunk_capacity);
          let c = { addrs; metas; len = d.d_len; index = d.d_index } in
          if Atomic.compare_and_set d.d_cell None (Some c) then c
          else
            (match Atomic.get d.d_cell with
            | Some c -> c
            | None -> assert false))

let materialize t = List.iter (fun e -> ignore (force t e)) t.filled

(* Chunks in capture order: [filled] is most-recent-first, then the
   partial head (skipped when empty, so replay never dispatches an empty
   batch).  Every walk over the tape — replay in all its variants, raw
   iteration, decoding, and [Tape_io.save] — goes through this one fold,
   handing out the chunk arrays themselves (no copying, no decoding a
   chunk more than once). *)
let fold_chunks t ~init ~f =
  let acc =
    List.fold_left
      (fun acc e ->
        let c = force t e in
        f acc ~addrs:c.addrs ~metas:c.metas ~len:c.len)
      init (List.rev t.filled)
  in
  if t.head.len > 0 then
    f acc ~addrs:t.head.addrs ~metas:t.head.metas ~len:t.head.len
  else acc

let iter_raw t f =
  fold_chunks t ~init:() ~f:(fun () ~addrs ~metas ~len -> f ~addrs ~metas ~len)

type chunk_info = {
  ci_len : int;
  ci_coverage : int array;
  ci_min_line : int;
  ci_max_line : int;
}

let chunk_infos t =
  let info e =
    let idx = entry_index e in
    {
      ci_len = entry_len e;
      ci_coverage = Array.copy idx.coverage;
      ci_min_line = idx.min_line;
      ci_max_line = idx.max_line;
    }
  in
  let infos = List.rev_map info t.filled in
  if t.head.len > 0 then infos @ [ info (Ready t.head) ] else infos

(* {2 Chunk adoption (the [Tape_io] load paths)} *)

let check_adoptable t ~len =
  if len < 0 || len > t.chunk_capacity then
    invalid_arg
      (Printf.sprintf "Tape: bad adopted chunk length %d (capacity %d)" len
         t.chunk_capacity);
  if t.head.len > 0 then
    invalid_arg
      "Tape: tape ends in a partial chunk; adopted chunks can only follow \
       full ones"

(* Size field of a packed meta word, without the tuple allocation of
   [unpack_access]. *)
let meta_size m = (m lsr 1) land Cachesim.Cache.max_size

let index_of_words ~addrs ~metas ~len =
  let idx = fresh_index () in
  for i = 0 to len - 1 do
    index_note idx ~addr:(Array.unsafe_get addrs i)
      ~size:(meta_size (Array.unsafe_get metas i))
  done;
  idx

(* Adopt a whole pre-built chunk (the [Tape_io] v1 streaming path: words
   straight off disk, no per-event re-validation — the file's checksum
   already vouches for them).  The partition index is recomputed here;
   the v2 format stores it and adopts via [append_deferred_chunk]. *)
let append_raw_chunk t ~addrs ~metas ~len =
  if Array.length addrs <> t.chunk_capacity
     || Array.length metas <> t.chunk_capacity then
    invalid_arg
      (Printf.sprintf
         "Tape.append_raw_chunk: arrays must hold chunk_events=%d words \
          (got %d/%d)"
         t.chunk_capacity (Array.length addrs) (Array.length metas));
  check_adoptable t ~len;
  if len = 0 then ()
  else begin
    let c = { addrs; metas; len; index = index_of_words ~addrs ~metas ~len } in
    if len = t.chunk_capacity then begin
      t.filled <- Ready c :: t.filled;
      t.filled_count <- t.filled_count + 1
    end
    else t.head <- c;
    t.total <- t.total + len
  end

let check_index ~coverage ~min_line ~max_line ~len =
  if Array.length coverage <> coverage_words then
    invalid_arg
      (Printf.sprintf "Tape: adopted chunk index has %d coverage words (want %d)"
         (Array.length coverage) coverage_words);
  Array.iter
    (fun w ->
      if w < 0 || w > full_word then
        invalid_arg "Tape: adopted chunk coverage word out of range")
    coverage;
  if len > 0 && (min_line < 0 || max_line < min_line) then
    invalid_arg
      (Printf.sprintf "Tape: adopted chunk line range [%d, %d] invalid"
         min_line max_line)

let append_deferred_chunk t ~len ~coverage ~min_line ~max_line ~decode =
  check_adoptable t ~len;
  check_index ~coverage ~min_line ~max_line ~len;
  if len = 0 then ()
  else begin
    let index = { coverage = Array.copy coverage; min_line; max_line } in
    if len = t.chunk_capacity then begin
      t.filled <-
        Deferred { d_len = len; d_index = index; d_cell = Atomic.make None;
                   d_decode = decode }
        :: t.filled;
      t.filled_count <- t.filled_count + 1
    end
    else begin
      (* A partial chunk becomes the (mutable, appendable) head, so it is
         decoded eagerly; at most one per tape. *)
      let addrs, metas = decode () in
      if
        Array.length addrs <> t.chunk_capacity
        || Array.length metas <> t.chunk_capacity
      then
        invalid_arg
          "Tape.append_deferred_chunk: decoder returned arrays of the wrong \
           capacity";
      t.head <- { addrs; metas; len; index }
    end;
    t.total <- t.total + len
  end

(* {2 Shard selectors}

   [bucket_mask ~line_shift ~eff ~shard] answers: which coverage buckets
   could an event occupy if it touches a cache line owned by [shard]
   (i.e. [line land (eff - 1) = shard] for a cache whose lines are
   [1 lsl line_shift] bytes)?  With [d = line_shift - granule_shift],
   a granule [g] lies in cache line [g lsr d], and its bucket is
   [g land (partition_buckets - 1)] — the low [bucket_bits] bits of
   [g].  The shard condition constrains bits [d .. d + log2 eff - 1] of
   [g]; when that bit range fits inside the recorded low [bucket_bits]
   bits, membership is decidable from the bucket alone and the mask is
   exact: a chunk whose coverage misses the mask contains no event
   touching any of [shard]'s lines.  When it does not fit (a line
   smaller than the granule, or [d + log2 eff > bucket_bits]) the bitmap
   cannot restrict that consumer and the walk falls back to scanning
   every chunk — never the other way around. *)

type selector = Walk_all | Skip_all | Buckets of int array

let log2_pow2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let bucket_mask ~line_shift ~eff ~shard =
  let d = line_shift - granule_shift in
  if d < 0 || d + log2_pow2 eff > bucket_bits then None
  else begin
    let m = Array.make coverage_words 0 in
    for b = 0 to partition_buckets - 1 do
      if (b lsr d) land (eff - 1) = shard then
        m.(b lsr 5) <- m.(b lsr 5) lor (1 lsl (b land 31))
    done;
    Some m
  end

(* Union of per-consumer masks.  [keys] lists (line_shift, eff) for every
   consumer that actually owns sets of this shard; an empty list means no
   consumer does and the whole walk is a no-op. *)
let selector_union keys ~shard =
  List.fold_left
    (fun acc (line_shift, eff) ->
      match acc with
      | Walk_all -> Walk_all
      | acc -> (
          match bucket_mask ~line_shift ~eff ~shard with
          | None -> Walk_all
          | Some m -> (
              match acc with
              | Skip_all -> Buckets m
              | Buckets m0 ->
                  Buckets (Array.init coverage_words (fun i -> m0.(i) lor m.(i)))
              | Walk_all -> assert false)))
    Skip_all keys

(* Chunk skipping must not break the logical event clock: a skipped
   chunk's events never advance [Cache.now], which is unobservable
   except under residency accounting — so any attached residency
   accumulator forces the full walk. *)
let cache_selector caches ~shards ~shard =
  if Array.exists (fun c -> Cachesim.Cache.residency c <> None) caches then
    Walk_all
  else
    selector_union ~shard
      (Array.to_list caches
      |> List.filter_map (fun c ->
             let eff = Cachesim.Cache.effective_shards c ~shards in
             if shard >= eff then None
             else
               Some
                 ( log2_pow2 (Cachesim.Cache.config c).Cachesim.Config.line,
                   eff )))

let hierarchy_selector hierarchies ~shards ~shard =
  let has_residency h =
    let rec go i =
      i < Cachesim.Hierarchy.depth h
      && (Cachesim.Cache.residency (Cachesim.Hierarchy.level_cache h i) <> None
         || go (i + 1))
    in
    go 0
  in
  if Array.exists has_residency hierarchies then Walk_all
  else
    selector_union ~shard
      (Array.to_list hierarchies
      |> List.filter_map (fun h ->
             let eff = min shards (Cachesim.Hierarchy.max_shards h) in
             if shard >= eff then None
             else
               let line =
                 (List.hd (Cachesim.Hierarchy.configs h)).Cachesim.Config.line
               in
               Some (log2_pow2 line, eff)))

let check_shards ~shards ~shard =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Tape: shards must be a positive power of two (got %d)"
         shards);
  if shard < 0 || shard >= shards then
    invalid_arg
      (Printf.sprintf "Tape: shard %d out of range (0..%d)" shard (shards - 1))

let index_intersects idx mask =
  let rec go i =
    i < coverage_words
    && (Array.unsafe_get idx.coverage i land Array.unsafe_get mask i <> 0
       || go (i + 1))
  in
  go 0

let selected sel idx =
  match sel with
  | Walk_all -> true
  | Skip_all -> false
  | Buckets m -> index_intersects idx m

(* Walk only the chunks [sel] cannot prove irrelevant, counting the
   rest into [skipped]. *)
let iter_selected t sel ?skipped f =
  let skip () = match skipped with Some r -> incr r | None -> () in
  List.iter
    (fun e ->
      if selected sel (entry_index e) then begin
        let c = force t e in
        f ~addrs:c.addrs ~metas:c.metas ~len:c.len
      end
      else skip ())
    (List.rev t.filled);
  if t.head.len > 0 then
    if selected sel t.head.index then
      f ~addrs:t.head.addrs ~metas:t.head.metas ~len:t.head.len
    else skip ()

(* {2 Replay} *)

let replay t cache =
  iter_raw t (fun ~addrs ~metas ~len ->
      Cachesim.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len)

let replay_fused t caches =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch cache ~addrs ~metas ~pos:0 ~len)
        caches)

(* Set-sharded fused walk: one pass over the tape, each cache touched
   only on [shard]'s lines.  Every cache clamps the shard count to its
   own set count ([Cache.access_batch_sharded] skips shards beyond the
   clamp), so heterogeneous sweep geometries neither drop nor duplicate
   work.  Running all shards of [0 .. shards-1] — serially or on
   separate domains over per-shard cache replicas — reproduces
   [replay_fused]'s statistics bit for bit.  Chunks whose partition
   index proves them disjoint from [shard]'s lines (for every cache) are
   skipped without being walked — or, for deferred chunks, decoded. *)
let replay_fused_sharded ?skipped t caches ~shards ~shard =
  check_shards ~shards ~shard;
  let sel = cache_selector caches ~shards ~shard in
  iter_selected t sel ?skipped (fun ~addrs ~metas ~len ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len
            ~shards ~shard)
        caches)

let replay_hierarchies t hierarchies =
  iter_raw t (fun ~addrs ~metas ~len ->
      Array.iter
        (fun h ->
          Cachesim.Hierarchy.access_batch h ~addrs ~metas ~pos:0 ~len)
        hierarchies)

let replay_hierarchies_sharded ?skipped t hierarchies ~shards ~shard =
  check_shards ~shards ~shard;
  let sel = hierarchy_selector hierarchies ~shards ~shard in
  iter_selected t sel ?skipped (fun ~addrs ~metas ~len ->
      Array.iter
        (fun h ->
          Cachesim.Hierarchy.access_batch_sharded h ~addrs ~metas ~pos:0 ~len
            ~shards ~shard)
        hierarchies)

(* {2 Pre-partitioned views} *)

type view = {
  v_tape : t;
  v_shards : int;
  v_shard : int;
  v_selector : selector;
  v_entries : entry list; (* selected chunks, capture order, head included *)
  v_events : int;
  v_skipped : int;
}

let view_shard v = v.v_shard
let view_shards v = v.v_shards
let view_chunks v = List.length v.v_entries
let view_events v = v.v_events
let view_chunks_skipped v = v.v_skipped

let partition_with t ~shards ~selector_of =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg
      (Printf.sprintf
         "Tape.partition: shards must be a positive power of two (got %d)"
         shards);
  let all_entries =
    List.rev
      (if t.head.len > 0 then Ready t.head :: t.filled else t.filled)
  in
  Array.init shards (fun shard ->
      let sel = selector_of ~shard in
      let entries, events, skipped =
        List.fold_left
          (fun (es, ev, sk) e ->
            if selected sel (entry_index e) then
              (e :: es, ev + entry_len e, sk)
            else (es, ev, sk + 1))
          ([], 0, 0) all_entries
      in
      {
        v_tape = t;
        v_shards = shards;
        v_shard = shard;
        v_selector = sel;
        v_entries = List.rev entries;
        v_events = events;
        v_skipped = skipped;
      })

let partition t caches ~shards =
  partition_with t ~shards ~selector_of:(fun ~shard ->
      cache_selector caches ~shards ~shard)

let partition_hierarchies t hierarchies ~shards =
  partition_with t ~shards ~selector_of:(fun ~shard ->
      hierarchy_selector hierarchies ~shards ~shard)

(* A view's chunk selection is only sound for consumers with the same
   partition key the view was built from, so the replays recompute the
   selector from the consumers they are handed and refuse a mismatch
   (different geometry, or a residency accumulator that appeared since
   [partition]) instead of silently dropping events. *)
let check_view_selector v sel =
  if sel <> v.v_selector then
    invalid_arg
      "Tape.replay_view: consumers do not match the ones this view was \
       partitioned for (geometry or residency accounting changed)"

let iter_view v f =
  List.iter
    (fun e ->
      let c = force v.v_tape e in
      f ~addrs:c.addrs ~metas:c.metas ~len:c.len)
    v.v_entries

let replay_view v caches =
  check_view_selector v (cache_selector caches ~shards:v.v_shards ~shard:v.v_shard);
  iter_view v (fun ~addrs ~metas ~len ->
      Array.iter
        (fun cache ->
          Cachesim.Cache.access_batch_sharded cache ~addrs ~metas ~pos:0 ~len
            ~shards:v.v_shards ~shard:v.v_shard)
        caches)

let replay_view_hierarchies v hierarchies =
  check_view_selector v
    (hierarchy_selector hierarchies ~shards:v.v_shards ~shard:v.v_shard);
  iter_view v (fun ~addrs ~metas ~len ->
      Array.iter
        (fun h ->
          Cachesim.Hierarchy.access_batch_sharded h ~addrs ~metas ~pos:0 ~len
            ~shards:v.v_shards ~shard:v.v_shard)
        hierarchies)

let iter t f =
  iter_raw t (fun ~addrs ~metas ~len ->
      for i = 0 to len - 1 do
        let owner, write, size = Cachesim.Cache.unpack_access metas.(i) in
        f { Event.owner; write; addr = addrs.(i); size }
      done)

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
