(* Content-addressed on-disk tape cache.  An entry's file name is
   derived deterministically from its key — sanitized workload name plus
   a 16-hex-digit hash of (format version, workload, size, seed) — so a
   lookup is a single path probe, and bumping [Tape_io.format_version]
   retires every old entry by construction (their names no longer match
   any key this build computes; [gc] reaps them).  Entries that do exist
   but fail to load — corrupt, stale version, or provenance that does
   not match the key (a hash collision or a renamed file) — are evicted,
   never trusted: the store recaptures instead. *)

module Telemetry = Dvf_util.Telemetry

type t = { dir : string; telemetry : Telemetry.t }

type key = { workload : string; size : string; seed : int }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let create ?(telemetry = Telemetry.null) ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    invalid_arg ("Tape_store.create: not a directory: " ^ dir);
  { dir; telemetry }

let dir t = t.dir
let suffix = ".dvftape"

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    name

let key_hash key =
  Tape_io.hash_string
    (Printf.sprintf "v%d|%s|%s|%d" Tape_io.format_version key.workload
       key.size key.seed)

let filename key =
  Printf.sprintf "%s-%016Lx%s" (sanitize key.workload)
    (Int64.of_int (key_hash key))
    suffix

let path t key = Filename.concat t.dir (filename key)

let file_bytes path =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
      let n = in_channel_length ic in
      close_in_noerr ic;
      n

let count t name n = Telemetry.add t.telemetry ~n name

let evict t path =
  (try Sys.remove path with Sys_error _ -> ());
  count t "store/evictions" 1

let meta_matches (m : Tape_io.meta) key =
  m.workload = key.workload && m.size = key.size && m.seed = key.seed

(* A missing file is a plain miss; anything else untrustworthy about an
   existing file gets it evicted so the caller recaptures over it. *)
let timed_load t p =
  let start = Telemetry.now_ns t.telemetry in
  let r = Tape_io.load ~telemetry:t.telemetry p in
  Telemetry.time_ns t.telemetry "store/load_ns"
    (Int64.sub (Telemetry.now_ns t.telemetry) start);
  r

let find t key =
  let p = path t key in
  if not (Sys.file_exists p) then None
  else
    let bytes = file_bytes p in
    match timed_load t p with
    | Ok (meta, registry, tape) when meta_matches meta key ->
        count t "store/load_bytes" bytes;
        (* Touch the entry so [gc ~max_bytes] evicts least-recently-used
           first; a store that cannot be touched (read-only) still
           serves. *)
        (try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ());
        Some (registry, tape)
    | Ok _ | Error (Tape_io.Bad_magic | Version_mismatch _ | Corrupt _) ->
        evict t p;
        None
    | Error (Io_error _) -> None

let save t key ~registry ~tape =
  let p = path t key in
  Tape_io.save ~path:p
    ~meta:{ workload = key.workload; size = key.size; seed = key.seed }
    ~registry ~tape;
  count t "store/save_bytes" (file_bytes p)

let find_or_capture t key ~capture =
  match find t key with
  | Some (registry, tape) ->
      count t "store/hits" 1;
      (registry, tape, true)
  | None ->
      count t "store/misses" 1;
      let registry, tape = capture () in
      save t key ~registry ~tape;
      (registry, tape, false)

type entry = {
  file : string;
  status :
    [ `Ok of Tape_io.meta | `Stale of int | `Corrupt of string ];
}

let list t =
  Sys.readdir t.dir |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun file ->
         if not (Filename.check_suffix file suffix) then None
         else
           let p = Filename.concat t.dir file in
           (* [Tape_io.load] still reads v1 files, but the store keys
              entries on the current format version: any other version
              on disk is a retired entry no lookup will ever hit again —
              label it stale so [gc] reaps it. *)
           let status =
             match Tape_io.read_version p with
             | Ok v when v <> Tape_io.format_version -> `Stale v
             | Ok _ -> (
                 match Tape_io.read_meta p with
                 | Ok meta -> `Ok meta
                 | Error (Tape_io.Version_mismatch v) -> `Stale v
                 | Error e -> `Corrupt (Tape_io.error_to_string e))
             | Error (Tape_io.Version_mismatch v) -> `Stale v
             | Error e -> `Corrupt (Tape_io.error_to_string e)
           in
           Some { file; status })

(* Orphaned temporaries: [Tape_io.save] writes [<entry>.tmp] and renames
   it into place, so any [.dvftape.tmp] still on disk is the residue of
   an interrupted save — never a live entry (a concurrent save would be
   racing gc either way, and loses nothing but its cache warmth). *)
let orphaned_temps t =
  Sys.readdir t.dir |> Array.to_list |> List.sort String.compare
  |> List.filter (fun file -> Filename.check_suffix file (suffix ^ ".tmp"))

let entry_age_and_size t file =
  match Unix.stat (Filename.concat t.dir file) with
  | st -> Some (st.Unix.st_mtime, st.Unix.st_size)
  | exception Unix.Unix_error _ -> None

let gc ?max_bytes t =
  let bad =
    List.filter_map
      (fun e ->
        match e.status with
        | `Ok _ -> None
        | `Stale _ | `Corrupt _ ->
            evict t (Filename.concat t.dir e.file);
            Some e.file)
      (list t)
  in
  let temps =
    List.map
      (fun file ->
        evict t (Filename.concat t.dir file);
        file)
      (orphaned_temps t)
  in
  let lru =
    match max_bytes with
    | None -> []
    | Some budget ->
        if budget < 0 then
          invalid_arg "Tape_store.gc: max_bytes must be non-negative";
        (* Healthy entries, least-recently-used first (mtime is bumped
           on every [find] hit), name as the deterministic tie-break. *)
        let entries =
          List.filter_map
            (fun e ->
              match e.status with
              | `Ok _ ->
                  Option.map
                    (fun (mtime, size) -> (mtime, e.file, size))
                    (entry_age_and_size t e.file)
              | `Stale _ | `Corrupt _ -> None)
            (list t)
          |> List.sort compare
        in
        let total =
          List.fold_left (fun acc (_, _, size) -> acc + size) 0 entries
        in
        let rec drop total = function
          | _ when total <= budget -> []
          | [] -> []
          | (_, file, size) :: rest ->
              evict t (Filename.concat t.dir file);
              file :: drop (total - size) rest
        in
        drop total entries
  in
  bad @ temps @ lru
