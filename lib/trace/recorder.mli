(** Trace recording: where instrumented kernels send their references.

    A recorder fans each {!Event.t} out to zero or more sinks.  The usual
    setup streams events straight into a {!Cachesim.Cache} (no trace is
    materialized — multi-gigabyte traces never touch memory), but tests and
    the trace-explorer example also attach a buffering sink.

    Recorders are single-domain objects: a parallel sweep gives every
    domain its own recorder (see {!Dvf_util.Parallel}) rather than sharing
    one.

    {2 Batching}

    [create ()] dispatches each event to every sink immediately.  A
    recorder created with a non-zero [buffer_capacity] (or with
    {!buffered}) instead accumulates events in a fixed-size chunk and fans
    the chunk out when it fills — one closure dispatch per sink per chunk
    instead of per event, which matters in the trace->cache hot loop.
    Every sink still observes every event in emission order.  Callers of a
    buffering recorder must {!flush} before reading downstream state
    (e.g. cache statistics). *)

type t

type sink = Event.t -> unit

type batch_sink = Event.t array -> int -> unit
(** [bsink events n] consumes [events.(0 .. n-1)]; the array is the
    recorder's internal chunk and must not be retained. *)

val create : ?buffer_capacity:int -> unit -> t
(** [create ()] is an unbuffered recorder (the historical behaviour).
    [buffer_capacity > 0] enables chunked dispatch as described above.
    Raises [Invalid_argument] on a negative capacity. *)

val buffered : ?buffer_capacity:int -> unit -> t
(** A buffering recorder with a default chunk size (4096 events). *)

val null : unit -> t
(** A fresh inert recorder for running kernels untraced: events are
    dropped (and not counted), and {!add_sink}/{!add_batch_sink} raise
    [Invalid_argument].  Each call returns a new value, so no state can
    leak between users (the old shared [lazy] recorder could). *)

type handle
(** A subscription, returned by registration and consumed by
    {!unsubscribe}.  Handles are only meaningful on the recorder that
    issued them. *)

val add_sink : t -> sink -> handle
(** Sinks run in registration order.  Amortized O(1). *)

val add_batch_sink : t -> batch_sink -> handle
(** Batch sinks run after per-event sinks, in registration order. *)

val unsubscribe : t -> handle -> unit
(** Detach a previously registered sink: O(1), idempotent, and stable —
    the other sinks keep their dispatch order.  A buffering recorder's
    pending chunk is {e not} delivered to the removed sink; [flush] first
    if the probe must observe every emitted event.  Raises
    [Invalid_argument] on a handle the recorder never issued.  Telemetry
    uses this to attach counting probes around one phase without leaking
    them into the next. *)

val cache_sink : Cachesim.Cache.t -> sink
(** Forward each event into the cache simulator. *)

val cache_batch_sink : Cachesim.Cache.t -> batch_sink
(** Forward a whole chunk into the cache simulator with a single closure
    dispatch — the fast path for trace-driven simulation. *)

val buffer_sink : unit -> sink * (unit -> Event.t list)
(** [buffer_sink ()] returns a sink and a function extracting everything
    recorded so far (in order). *)

val counting_sink : unit -> sink * (unit -> int)

val emit : t -> Event.t -> unit

val emit_batch : t -> Event.t array -> int -> unit
(** [emit_batch t events n] emits [events.(0 .. n-1)] as one block:
    counted, ordered after anything already buffered (the pending chunk is
    flushed first), and handed to batch sinks without copying. *)

val read : t -> owner:int -> addr:int -> size:int -> unit
val write : t -> owner:int -> addr:int -> size:int -> unit

val flush : t -> unit
(** Deliver any buffered events now.  No-op on unbuffered recorders. *)

val events_emitted : t -> int
(** Total events seen by this recorder (including still-buffered ones). *)

val batches_dispatched : t -> int
(** Number of non-empty sink dispatches so far.  For a buffering recorder
    this counts delivered chunks ([events_emitted / batches_dispatched]
    approximates the mean batch size); for an unbuffered one it equals the
    delivered event count. *)

val pending : t -> int
(** Events currently buffered and not yet delivered to sinks. *)
