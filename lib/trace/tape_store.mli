(** Content-addressed on-disk tape cache.

    The paper captures one trace per application and reuses it for every
    cache configuration; the store extends that across processes.  An
    entry is keyed by (workload, size label, seed, tape format version):
    the key hashes deterministically ({!Tape_io.hash_string}) into the
    entry's file name, so lookup is a single path probe and a format
    version bump retires every old entry by construction.

    Trust policy: entries that exist but cannot be loaded cleanly —
    corrupt payload, stale format version, or provenance that does not
    match the key — are {e evicted, never trusted}; the caller
    recaptures and the fresh capture overwrites the bad file.

    Telemetry (when the store carries a live collector): counters
    [store/hits], [store/misses], [store/load_bytes],
    [store/save_bytes], [store/evictions], [tape/mmap_bytes] (payload
    bytes the loader mapped zero-copy), and the [store/load_ns]
    duration accumulating wall-clock {!Tape_io.load} time. *)

type t

type key = {
  workload : string;  (** registry name, e.g. ["vm"] *)
  size : string;  (** instance size label *)
  seed : int;  (** capture seed (0 when unseeded) *)
}

val create : ?telemetry:Dvf_util.Telemetry.t -> dir:string -> unit -> t
(** Open (creating directories as needed, like [mkdir -p]) a store
    rooted at [dir].  Raises [Invalid_argument] if [dir] exists and is
    not a directory. *)

val dir : t -> string

val path : t -> key -> string
(** The deterministic on-disk path for [key] (whether or not an entry
    exists yet). *)

val find : t -> key -> (Region.t * Tape.t) option
(** Probe the store.  [None] on a missing entry; a present entry is
    fully loaded and checksummed, and evicted (returning [None]) if
    anything about it is untrustworthy. *)

val save : t -> key -> registry:Region.t -> tape:Tape.t -> unit
(** Persist a capture under [key] (atomic via {!Tape_io.save}). *)

val find_or_capture :
  t ->
  key ->
  capture:(unit -> Region.t * Tape.t) ->
  Region.t * Tape.t * bool
(** The store's main operation: return the cached capture for [key], or
    run [capture], persist its result, and return it.  The [bool] is
    [true] on a store hit (capture skipped entirely). *)

(** {2 Maintenance} *)

type entry = {
  file : string;  (** file name within the store directory *)
  status : [ `Ok of Tape_io.meta | `Stale of int | `Corrupt of string ];
}

val list : t -> entry list
(** All [.dvftape] entries (sorted by file name) with their header
    status.  Any format version other than {!Tape_io.format_version} is
    [`Stale] — even ones {!Tape_io.load} could still read — because the
    store keys entries on the current version, so no lookup will ever
    hit them again.  Cheap: reads headers only, does not checksum
    payloads. *)

val gc : ?max_bytes:int -> t -> string list
(** Remove every [`Stale] and [`Corrupt] entry, plus any orphaned
    [.dvftape.tmp] left behind by an interrupted atomic save.  With
    [max_bytes], additionally evict healthy entries least-recently-used
    first ({!find} bumps an entry's mtime on every hit; ties break by
    file name) until the store's total size is within the budget.
    Returns the removed file names.  Raises [Invalid_argument] on a
    negative [max_bytes]. *)
